// Tests for the observability layer (src/obs/): latency-histogram error
// bounds, metrics-registry merge determinism under multi-threaded recording,
// exporter formats, span recording/sampling/reconciliation, the leveled
// logger, and CacheStats::merge.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_stats.hpp"
#include "common/stats.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/wear.hpp"

namespace kdd {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram: bounded relative error
// ---------------------------------------------------------------------------

// The histogram's documented contract (common/stats.hpp): values below
// kSubBuckets are exact; larger values land in a sub-bucket spanning
// 1/(kSubBuckets/2) of their octave, so percentile_us() — which reports the
// bucket's upper bound — overstates the true value by at most
// 2/kSubBuckets = 1/64 ~= 1.6 %.
constexpr double kHistMaxRelError = 1.0 / 64.0;

TEST(LatencyHistogram, SmallValuesExact) {
  for (SimTime v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{17},
                    std::uint64_t{127}}) {
    LatencyHistogram h;
    h.record(v);
    EXPECT_EQ(h.percentile_us(0.5), v) << "v=" << v;
  }
}

TEST(LatencyHistogram, RelativeErrorBoundAcrossOctaves) {
  // Sweep values across many octaves, deliberately including the boundaries
  // (2^k - 1, 2^k, 2^k + 1) where bucket-indexing bugs live.
  std::vector<SimTime> values;
  for (int oct = 7; oct <= 30; ++oct) {
    const SimTime base = SimTime{1} << oct;
    values.push_back(base - 1);
    values.push_back(base);
    values.push_back(base + 1);
    values.push_back(base + base / 3);
    values.push_back(base + base / 2);
    values.push_back(2 * base - 1);
  }
  for (const SimTime v : values) {
    LatencyHistogram h;
    h.record(v);
    const SimTime q = h.percentile_us(0.5);
    EXPECT_GE(q, v) << "v=" << v;  // upper bound never understates
    const double rel =
        (static_cast<double>(q) - static_cast<double>(v)) / static_cast<double>(v);
    EXPECT_LE(rel, kHistMaxRelError) << "v=" << v << " q=" << q;
  }
}

TEST(LatencyHistogram, HighOctavePercentilesKeepErrorBound) {
  // Octaves far above any realistic latency (2^35 µs ~= 9.5 hours and up,
  // to the top of the 40-octave bucket table at 2^44): the 1/64 contract
  // must hold there too — the health engine merges sub-histograms whose
  // values can reach these magnitudes.
  for (int oct = 35; oct <= 44; ++oct) {
    const SimTime base = SimTime{1} << oct;
    for (const SimTime v : {base - 1, base, base + 1, base + base / 3,
                            2 * base - 1}) {
      LatencyHistogram h;
      h.record(v);
      const SimTime q = h.percentile_us(0.5);
      EXPECT_GE(q, v) << "oct=" << oct << " v=" << v;
      const double rel = (static_cast<double>(q) - static_cast<double>(v)) /
                         static_cast<double>(v);
      EXPECT_LE(rel, kHistMaxRelError) << "oct=" << oct << " v=" << v;
      EXPECT_EQ(h.max_us(), v);
    }
  }
  // Beyond the table the histogram saturates into the top bucket instead of
  // indexing out of bounds: the percentile clamps to the table's upper
  // bound while max_us() stays exact.
  constexpr SimTime kTableTop = (SimTime{1} << 45) - 1;
  LatencyHistogram sat;
  sat.record(SimTime{1} << 50);
  EXPECT_EQ(sat.percentile_us(0.5), kTableTop);
  EXPECT_EQ(sat.max_us(), SimTime{1} << 50);
  // A mixed population spanning 40 octaves still ranks correctly.
  LatencyHistogram h;
  h.record(100);
  h.record(SimTime{1} << 20);
  h.record(SimTime{1} << 40);
  EXPECT_EQ(h.percentile_us(0.01), 100u);
  EXPECT_GE(h.percentile_us(0.99), SimTime{1} << 40);
}

TEST(LatencyHistogram, PercentilesOnUniformRamp) {
  LatencyHistogram h;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t i = 1; i <= kN; ++i) h.record(i);
  EXPECT_EQ(h.count(), kN);
  EXPECT_NEAR(h.mean_us(), (kN + 1) / 2.0, 1.0);
  EXPECT_EQ(h.max_us(), kN);
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double exact = q * static_cast<double>(kN);
    const double got = static_cast<double>(h.percentile_us(q));
    EXPECT_GE(got, exact * (1.0 - 1e-9)) << "q=" << q;
    // Upper bound of the containing bucket: within the 1/64 contract plus
    // one count of quantile rounding.
    EXPECT_LE(got, exact * (1.0 + kHistMaxRelError) + 1.0) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const SimTime va = (i * 2654435761u) % 1000000;
    const SimTime vb = (i * 40503u) % 3000;
    a.record(va);
    b.record(vb);
    combined.record(va);
    combined.record(vb);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean_us(), combined.mean_us());
  EXPECT_EQ(a.max_us(), combined.max_us());
  for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_EQ(a.percentile_us(q), combined.percentile_us(q)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  const obs::MetricId a = reg.counter("kdd_test_total");
  const obs::MetricId b = reg.counter("kdd_test_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("kdd_other_total"), a);
  EXPECT_EQ(reg.num_counters(), 2u);
  // The three kinds have independent namespaces.
  const obs::MetricId g = reg.gauge("kdd_test_total");
  const obs::MetricId h = reg.histogram("kdd_test_total");
  EXPECT_EQ(reg.num_gauges(), 1u);
  EXPECT_EQ(reg.num_histograms(), 1u);
  (void)g;
  (void)h;
}

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTrip) {
  obs::MetricsRegistry reg;
  const obs::MetricId c = reg.counter("c_total");
  const obs::MetricId g = reg.gauge("g");
  const obs::MetricId h = reg.histogram("h_ns");
  reg.add(c, 3);
  reg.add(c);
  reg.gauge_set(g, -7);
  reg.gauge_add(g, 10);
  reg.observe(h, 100);
  reg.observe(h, 300);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c_total"), 4u);
  EXPECT_EQ(snap.gauge("g"), 3);
  ASSERT_NE(snap.histogram("h_ns"), nullptr);
  EXPECT_EQ(snap.histogram("h_ns")->count(), 2u);
  EXPECT_EQ(snap.counter("absent_total"), 0u);
  EXPECT_EQ(snap.histogram("absent"), nullptr);

  reg.reset();
  const obs::MetricsSnapshot zero = reg.snapshot();
  EXPECT_EQ(zero.counter("c_total"), 0u);
  EXPECT_EQ(zero.gauge("g"), 0);
  ASSERT_NE(zero.histogram("h_ns"), nullptr);
  EXPECT_EQ(zero.histogram("h_ns")->count(), 0u);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  obs::MetricsRegistry reg;
  reg.counter("zeta_total");
  reg.counter("alpha_total");
  reg.counter("mid_total");
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[1].name, "mid_total");
  EXPECT_EQ(snap.counters[2].name, "zeta_total");
}

// After recorders quiesce, the shard merge must be exact and deterministic:
// two consecutive snapshots agree with each other and with arithmetic.
TEST(MetricsRegistry, MergeDeterministicUnderThreadedRecording) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 20000;
  const obs::MetricId shared = reg.counter("shared_total");
  const obs::MetricId hist = reg.histogram("lat_us");
  std::vector<obs::MetricId> per_thread;
  per_thread.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    per_thread.push_back(reg.counter("thread_" + std::to_string(t) + "_total"));
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) {
        reg.add(shared);
        reg.add(per_thread[static_cast<std::size_t>(t)], 2);
        if (i % 16 == 0) reg.observe(hist, i % 4096);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const obs::MetricsSnapshot s1 = reg.snapshot();
  const obs::MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s1.counter("shared_total"), kThreads * kIncsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(s1.counter("thread_" + std::to_string(t) + "_total"),
              2 * kIncsPerThread);
  }
  ASSERT_NE(s1.histogram("lat_us"), nullptr);
  EXPECT_EQ(s1.histogram("lat_us")->count(),
            kThreads * (kIncsPerThread / 16 + (kIncsPerThread % 16 ? 1 : 0)));
  // Deterministic: the second snapshot is byte-identical in content.
  EXPECT_EQ(obs::snapshot_json(s1), obs::snapshot_json(s2));
  EXPECT_EQ(obs::prometheus_text(s1), obs::prometheus_text(s2));
}

TEST(MetricsRegistry, HandlesAreUsableAndNullSafe) {
  obs::MetricsRegistry reg;
  obs::Counter c(&reg, "h_total");
  obs::Gauge g(&reg, "h_gauge");
  obs::Histogram h(&reg, "h_hist");
  c.inc();
  c.inc(4);
  g.set(5);
  g.add(-2);
  h.observe(9);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("h_total"), 5u);
  EXPECT_EQ(snap.gauge("h_gauge"), 3);
  // Default-constructed handles are inert, not crashing.
  obs::Counter c0;
  obs::Gauge g0;
  obs::Histogram h0;
  c0.inc();
  g0.set(1);
  h0.observe(1);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Exporters, PrometheusTextFormat) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("kdd_reads_total"), 12);
  reg.gauge_set(reg.gauge("kdd_dez_pages"), 34);
  reg.observe(reg.histogram("kdd_request_ns"), 1000);
  const std::string text = obs::prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE kdd_reads_total counter"), std::string::npos);
  EXPECT_NE(text.find("kdd_reads_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE kdd_dez_pages gauge"), std::string::npos);
  EXPECT_NE(text.find("kdd_dez_pages 34"), std::string::npos);
  EXPECT_NE(text.find("kdd_request_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Exporters, PrometheusLabelledFamiliesEmitOneTypeLine) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("kdd_span_stage_count{stage=\"rmw\"}"), 1);
  reg.add(reg.counter("kdd_span_stage_count{stage=\"parity\"}"), 2);
  const std::string text = obs::prometheus_text(reg.snapshot());
  // One TYPE comment for the family, two labelled series.
  std::size_t type_lines = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE kdd_span_stage_count", pos)) != std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("kdd_span_stage_count{stage=\"rmw\"} 1"), std::string::npos);
  EXPECT_NE(text.find("kdd_span_stage_count{stage=\"parity\"} 2"),
            std::string::npos);
}

TEST(Exporters, LabelValueEscaping) {
  EXPECT_EQ(obs::prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::prom_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prom_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prom_escape_label_value("a\nb"), "a\\nb");
  // All three at once, in the order they appear.
  EXPECT_EQ(obs::prom_escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Exporters, SeriesNameBuildsEscapedLabel) {
  EXPECT_EQ(obs::prom_series_name("kdd_alerts_active", "rule", "latency_burn"),
            "kdd_alerts_active{rule=\"latency_burn\"}");
  EXPECT_EQ(obs::prom_series_name("f", "k", "bad\"v"), "f{k=\"bad\\\"v\"}");
}

TEST(Exporters, HostileLabelValuesKeepExpositionWellFormed) {
  // A label value carrying quotes, backslashes and newlines must neither
  // break the series line nor smuggle in extra lines: every line of the
  // exposition is a comment or exactly `name{...} value` / `name value`.
  obs::MetricsRegistry reg;
  reg.add(reg.counter(obs::prom_series_name("kdd_hostile_total", "rule",
                                            "evil\"} 99\ninjected 1\\")),
          5);
  reg.gauge_set(reg.gauge("kdd_plain_gauge"), 2);
  const std::string text = obs::prometheus_text(reg.snapshot());

  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lines;
    if (line.rfind("# ", 0) == 0) continue;  // HELP/TYPE comments
    // A series line: metric name, optional {labels} with only escaped
    // quotes inside, one space, one value token.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string value = line.substr(sp + 1);
    EXPECT_FALSE(value.empty()) << line;
    EXPECT_EQ(value.find_first_not_of("-0123456789.eginf+"),
              std::string::npos)
        << line;
  }
  // The injected payload never starts a line of its own.
  EXPECT_EQ(text.find("\ninjected"), std::string::npos);
  // And the hostile series round-trips with its escapes intact.
  EXPECT_NE(text.find("rule=\"evil\\\"} 99\\ninjected 1\\\\\"} 5"),
            std::string::npos);
  EXPECT_GE(lines, 4u);
}

TEST(Exporters, SnapshotJsonCarriesSchemaAndValues) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("a_total"), 7);
  reg.gauge_set(reg.gauge("b"), -2);
  reg.observe(reg.histogram("c_ns"), 500);
  const std::string json = obs::snapshot_json(reg.snapshot());
  EXPECT_NE(json.find(obs::kSnapshotSchema), std::string::npos);
  EXPECT_NE(json.find("\"a_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"b\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"c_ns\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

TEST(Exporters, WearSeriesJsonl) {
  obs::WearSeries series("sim_us");
  series.set_kind_names({"read_fill", "write_alloc"});
  obs::WearSample s;
  s.t = 123.0;
  s.ops = 10;
  s.ssd_writes_by_kind[0] = 4;
  s.ssd_writes_by_kind[1] = 6;
  s.dez_pages = 99;
  s.stale_groups = 3;
  series.add(s);
  const std::string jsonl = series.to_jsonl();
  // Header line carries the schema + units; bucket line expands kinds.
  EXPECT_NE(jsonl.find(obs::WearSeries::kSchema), std::string::npos);
  EXPECT_NE(jsonl.find("\"t_unit\":\"sim_us\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ssd_writes_read_fill\":4"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ssd_writes_write_alloc\":6"), std::string::npos);
  EXPECT_NE(jsonl.find("\"dez_pages\":99"), std::string::npos);
  EXPECT_NE(jsonl.find("\"stale_groups\":3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceBuffer::global().set_capacity(1u << 14);
    obs::TraceBuffer::global().clear();
    obs::TraceBuffer::set_sample_period(1);
    obs::TraceBuffer::set_enabled(true);
  }
  void TearDown() override {
    obs::TraceBuffer::set_enabled(false);
    obs::TraceBuffer::set_sample_period(1);
    obs::TraceBuffer::global().clear();
  }

  static std::size_t count_stage(const std::vector<obs::SpanEvent>& spans,
                                 obs::Stage stage) {
    std::size_t n = 0;
    for (const obs::SpanEvent& ev : spans) n += ev.stage == stage ? 1 : 0;
    return n;
  }
};

TEST_F(SpanTest, DisabledRecordsNothing) {
  obs::TraceBuffer::set_enabled(false);
  {
    const obs::TraceContextScope root;
    const obs::SpanScope span(obs::Stage::kCacheLookup);
  }
  EXPECT_TRUE(obs::TraceBuffer::global().spans().empty());
}

TEST_F(SpanTest, RootAndChildrenShareRequestId) {
  {
    const obs::TraceContextScope root;
    const obs::SpanScope a(obs::Stage::kCacheLookup);
    const obs::SpanScope b(obs::Stage::kRmw);
  }
  const std::vector<obs::SpanEvent> spans = obs::TraceBuffer::global().spans();
  ASSERT_EQ(spans.size(), 3u);
  const std::uint64_t id = spans[0].request;
  EXPECT_NE(id, 0u);
  for (const obs::SpanEvent& ev : spans) EXPECT_EQ(ev.request, id);
  EXPECT_EQ(count_stage(spans, obs::Stage::kRequest), 1u);
}

TEST_F(SpanTest, ChildDurationsReconcileWithRoot) {
  {
    const obs::TraceContextScope root;
    for (int i = 0; i < 4; ++i) {
      const obs::SpanScope child(obs::Stage::kDevice);
      // A little real work so durations are non-trivial.
      volatile std::uint64_t sink = 0;
      for (int j = 0; j < 2000; ++j) sink = sink + static_cast<std::uint64_t>(j);
    }
  }
  const std::vector<obs::SpanEvent> spans = obs::TraceBuffer::global().spans();
  ASSERT_EQ(spans.size(), 5u);
  std::uint64_t child_sum = 0;
  std::uint64_t root_dur = 0;
  std::uint64_t root_start = 0, root_end = 0;
  for (const obs::SpanEvent& ev : spans) {
    if (ev.stage == obs::Stage::kRequest) {
      root_dur = ev.dur_ns;
      root_start = ev.start_ns;
      root_end = ev.start_ns + ev.dur_ns;
    } else {
      child_sum += ev.dur_ns;
    }
  }
  // Children (sequential, non-overlapping) must fit inside the root.
  EXPECT_LE(child_sum, root_dur);
  for (const obs::SpanEvent& ev : spans) {
    EXPECT_GE(ev.start_ns, root_start);
    EXPECT_LE(ev.start_ns + ev.dur_ns, root_end);
  }
}

TEST_F(SpanTest, SamplingRecordsRootAndChildrenTogether) {
  obs::TraceBuffer::set_sample_period(4);
  for (int i = 0; i < 32; ++i) {
    const obs::TraceContextScope root;
    const obs::SpanScope child(obs::Stage::kCacheLookup);
  }
  const std::vector<obs::SpanEvent> spans = obs::TraceBuffer::global().spans();
  const std::size_t roots = count_stage(spans, obs::Stage::kRequest);
  const std::size_t children = count_stage(spans, obs::Stage::kCacheLookup);
  EXPECT_EQ(roots, 8u);  // 32 roots at period 4 (per-thread wheel)
  EXPECT_EQ(children, roots);  // recorded or skipped together
}

TEST_F(SpanTest, UnsampledRootInstallsNoContext) {
  obs::TraceBuffer::set_sample_period(1u << 30);  // effectively never
  for (int i = 0; i < 8; ++i) {
    const obs::TraceContextScope root;
    EXPECT_EQ(obs::TraceContext::current(), nullptr);
    EXPECT_FALSE(obs::span_sampled());
  }
  EXPECT_TRUE(obs::TraceBuffer::global().spans().empty());
}

TEST_F(SpanTest, ForcedRootRecordsDespiteSampling) {
  obs::TraceBuffer::set_sample_period(1u << 30);
  {
    const obs::TraceContextScope root(obs::Stage::kRecovery,
                                      /*always_sample=*/true);
    const obs::SpanScope child(obs::Stage::kMetadataLog);
  }
  const std::vector<obs::SpanEvent> spans = obs::TraceBuffer::global().spans();
  EXPECT_EQ(count_stage(spans, obs::Stage::kRecovery), 1u);
  EXPECT_EQ(count_stage(spans, obs::Stage::kMetadataLog), 1u);
}

TEST_F(SpanTest, BackgroundRootAttributesToItsStage) {
  {
    const obs::TraceContextScope root(obs::Stage::kClean);
    const obs::SpanScope child(obs::Stage::kParity);
  }
  const std::vector<obs::SpanEvent> spans = obs::TraceBuffer::global().spans();
  EXPECT_EQ(count_stage(spans, obs::Stage::kClean), 1u);
  EXPECT_EQ(count_stage(spans, obs::Stage::kParity), 1u);
  EXPECT_EQ(count_stage(spans, obs::Stage::kRequest), 0u);
}

TEST_F(SpanTest, RingBoundsMemoryAndCountsDrops) {
  obs::TraceBuffer::global().set_capacity(8);
  obs::TraceBuffer::global().clear();
  for (int i = 0; i < 20; ++i) {
    const obs::TraceContextScope root;
  }
  const std::vector<obs::SpanEvent> spans = obs::TraceBuffer::global().spans();
  EXPECT_EQ(spans.size(), 8u);
  EXPECT_EQ(obs::TraceBuffer::global().dropped(), 12u);
  // Ring returns chronological order.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

TEST_F(SpanTest, ChromeTraceJsonShape) {
  {
    const obs::TraceContextScope root;
    const obs::SpanScope child(obs::Stage::kDeltaEncode);
  }
  obs::TraceBuffer::global().instant("test \"quoted\" instant");
  const std::string json = obs::TraceBuffer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"delta_encode\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("test \\\"quoted\\\" instant"), std::string::npos);
}

TEST_F(SpanTest, StageAggregatesFeedGlobalRegistry) {
  // Span aggregates land in the *global* registry; take before/after deltas
  // so this test is robust to other activity in the process.
  obs::register_span_metrics();
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  {
    const obs::TraceContextScope root;
    const obs::SpanScope child(obs::Stage::kRmw);
  }
  const obs::MetricsSnapshot after = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(after.counter("kdd_span_stage_count{stage=\"rmw\"}") -
                before.counter("kdd_span_stage_count{stage=\"rmw\"}"),
            1u);
  EXPECT_EQ(after.counter("kdd_span_stage_count{stage=\"request\"}") -
                before.counter("kdd_span_stage_count{stage=\"request\"}"),
            1u);
  EXPECT_GE(after.counter("kdd_span_stage_ns_total{stage=\"request\"}"),
            before.counter("kdd_span_stage_ns_total{stage=\"request\"}"));
  // The request root also feeds the latency histogram.
  ASSERT_NE(after.histogram("kdd_request_ns"), nullptr);
  ASSERT_NE(before.histogram("kdd_request_ns"), nullptr);
  EXPECT_EQ(after.histogram("kdd_request_ns")->count() -
                before.histogram("kdd_request_ns")->count(),
            1u);
}

TEST(SpanNames, AllStagesNamed) {
  for (int s = 0; s < obs::kNumSpanStages; ++s) {
    const std::string name = obs::stage_name(static_cast<obs::Stage>(s));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "stage " << s << " is missing a name";
  }
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

TEST(Log, LevelFilteringAndCounting) {
  const obs::LogLevel prev = obs::log_level();
  obs::set_log_level(obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kTrace));

  const std::uint64_t before = obs::log_messages_emitted();
  KDD_LOG(Warn, "test warn %d", 1);
  KDD_LOG(Info, "filtered info %d", 2);  // below threshold: not emitted
  EXPECT_EQ(obs::log_messages_emitted() - before, 1u);
  obs::set_log_level(prev);
}

TEST(Log, EmittedMessagesMirrorIntoTraceBuffer) {
  const obs::LogLevel prev = obs::log_level();
  obs::set_log_level(obs::LogLevel::kWarn);
  obs::TraceBuffer::global().clear();
  obs::TraceBuffer::set_enabled(true);
  KDD_LOG(Warn, "mirrored-%d", 42);
  obs::TraceBuffer::set_enabled(false);
  obs::set_log_level(prev);

  bool found = false;
  for (const obs::InstantEvent& ev : obs::TraceBuffer::global().instants()) {
    if (ev.name.find("mirrored-42") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  obs::TraceBuffer::global().clear();
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kError), "error");
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kWarn), "warn");
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kInfo), "info");
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kDebug), "debug");
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kTrace), "trace");
}

// ---------------------------------------------------------------------------
// CacheStats::merge
// ---------------------------------------------------------------------------

TEST(CacheStats, MergeIsElementwiseSum) {
  CacheStats a, b;
  a.read_hits = 1;
  a.write_misses = 2;
  a.ssd_reads = 3;
  a.ssd_writes[static_cast<int>(SsdWriteKind::kDeltaCommit)] = 4;
  a.disk_writes = 5;
  a.cleanings = 6;
  b.read_hits = 10;
  b.write_misses = 20;
  b.ssd_reads = 30;
  b.ssd_writes[static_cast<int>(SsdWriteKind::kDeltaCommit)] = 40;
  b.ssd_writes[static_cast<int>(SsdWriteKind::kMetadata)] = 7;
  b.disk_writes = 50;
  b.cleanings = 60;
  b.log_gc_passes = 2;
  a.merge(b);
  EXPECT_EQ(a.read_hits, 11u);
  EXPECT_EQ(a.write_misses, 22u);
  EXPECT_EQ(a.ssd_reads, 33u);
  EXPECT_EQ(a.ssd_writes[static_cast<int>(SsdWriteKind::kDeltaCommit)], 44u);
  EXPECT_EQ(a.ssd_writes[static_cast<int>(SsdWriteKind::kMetadata)], 7u);
  EXPECT_EQ(a.disk_writes, 55u);
  EXPECT_EQ(a.cleanings, 66u);
  EXPECT_EQ(a.log_gc_passes, 2u);
  EXPECT_EQ(a.total_ssd_writes(), 51u);
}

}  // namespace
}  // namespace kdd
