// Tests for the continuous health engine (src/obs/health.hpp), the black-box
// flight recorder (src/obs/flight.hpp) and the live serving surface
// (src/obs/serve.hpp): rolling-window bucket rotation across boundaries,
// burn-rate rule fire/resolve edges for every rule, the byte-deterministic
// reliability drill the issue's acceptance criteria name, the double-fault
// auto-dump event chain, and the scrape handler/server round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blockdev/fault_device.hpp"
#include "blockdev/mem_device.hpp"
#include "blockdev/retry.hpp"
#include "common/bytes.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "raid/raid_array.hpp"
#include "raid/rebuild.hpp"

namespace kdd {
namespace {

using obs::AlertRule;
using obs::FlightKind;
using obs::FlightRecorder;
using obs::HealthConfig;
using obs::HealthEngine;
using obs::RollingCounter;
using obs::RollingHistogram;
using obs::RollingMax;

constexpr std::uint64_t kSec = 1'000'000;  // sim microseconds

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Rolling-window primitives
// ---------------------------------------------------------------------------

TEST(RollingCounter, BucketBoundaryNeitherDoubleCountsNorGaps) {
  RollingCounter c(/*bucket_us=*/1000, /*slots=*/8);
  c.add(999, 1);   // epoch 0, last microsecond
  c.add(1000, 1);  // epoch 1, first microsecond
  // A 1-bucket window at t=1000 sees only epoch 1.
  EXPECT_EQ(c.sum(1000, 1000), 1u);
  // A 2-bucket window sees both, exactly once each.
  EXPECT_EQ(c.sum(1000, 2000), 2u);
  // Advancing the query time out of range drops epoch 0, then epoch 1.
  EXPECT_EQ(c.sum(2999, 2000), 1u);
  EXPECT_EQ(c.sum(3999, 2000), 0u);
}

TEST(RollingCounter, IdleGapLazilyResetsReusedSlots) {
  RollingCounter c(1000, /*slots=*/4);
  c.add(500, 5);  // epoch 0 -> slot 0
  // Jump far past the ring (epoch 8 also maps to slot 0): the stale value
  // must not leak into the new epoch.
  c.add(8000, 7);
  EXPECT_EQ(c.sum(8000, 4000), 7u);
  // And the old epoch is gone even for the widest query the ring answers.
  EXPECT_EQ(c.sum(8000, 4 * 1000), 7u);
}

TEST(RollingCounter, WindowSumIsMonotoneInWindowSize) {
  RollingCounter c(1000, 16);
  for (std::uint64_t t = 0; t < 10'000; t += 250) c.add(t, 1);
  std::uint64_t prev = 0;
  for (std::uint64_t w = 1000; w <= 16'000; w += 1000) {
    const std::uint64_t s = c.sum(9999, w);
    EXPECT_GE(s, prev) << "window " << w;
    prev = s;
  }
  EXPECT_EQ(c.sum(9999, 16'000), 40u);  // everything recorded
}

TEST(RollingMax, WindowMaxTracksAndExpires) {
  RollingMax m(1000, 8);
  m.record(100, 3);
  m.record(1100, 9);
  m.record(2100, 4);
  EXPECT_EQ(m.max(2100, 1000), 4u);
  EXPECT_EQ(m.max(2100, 3000), 9u);
  // Epoch 1 (the 9) leaves a 2-bucket window at t=3100.
  EXPECT_EQ(m.max(3100, 2000), 4u);
  EXPECT_EQ(m.max(9999, 1000), 0u);
}

TEST(RollingHistogram, RotationAcrossBoundariesKeepsWindowCounts) {
  RollingHistogram h(1000, /*slots=*/4);
  // One value per epoch, 6 epochs, through a 4-slot ring (wraps twice).
  for (std::uint64_t e = 0; e < 6; ++e) h.record(e * 1000 + 500, 100 * (e + 1));
  // At t in epoch 5, a 3-bucket window holds epochs 3..5.
  EXPECT_EQ(h.count(5500, 3000), 3u);
  LatencyHistogram merged;
  h.merge_window(5500, 3000, &merged);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.max_us(), 600u);
  // The full ring (4 slots) can hold at most epochs 2..5: the wrapped-away
  // epochs 0 and 1 must not resurface in any window.
  h.merge_window(5500, 60'000, &merged);
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_EQ(merged.max_us(), 600u);
  // Epoch 2's 300 is the smallest surviving value (100/200 wrapped away);
  // allow the histogram's bucket-representative error.
  ASSERT_GE(merged.percentile_us(0.01), 250u);
}

TEST(RollingHistogram, MergeIsMonotoneInWindowSize) {
  RollingHistogram h(1000, 16);
  for (std::uint64_t t = 0; t < 12'000; t += 400) h.record(t, t + 1);
  std::uint64_t prev = 0;
  LatencyHistogram merged;
  for (std::uint64_t w = 1000; w <= 16'000; w += 1000) {
    h.merge_window(11'999, w, &merged);
    EXPECT_GE(merged.count(), prev) << "window " << w;
    prev = merged.count();
  }
}

// ---------------------------------------------------------------------------
// HealthEngine rules
// ---------------------------------------------------------------------------

HealthConfig test_config() {
  HealthConfig cfg;  // defaults: 1 s buckets, 5 s fast, 60 s slow
  return cfg;
}

const obs::AlertStatus& status_of(const std::vector<obs::AlertStatus>& all,
                                  AlertRule rule) {
  return all[static_cast<std::size_t>(rule)];
}

TEST(HealthEngine, LatencyBurnFiresOnRegressionAndResolvesOnRecovery) {
  HealthEngine eng(test_config());
  // 2 s of healthy traffic, 10 requests/s at 2 ms.
  std::uint64_t t = 0;
  for (int i = 0; i < 20; ++i) {
    t += 100'000;
    eng.observe_request(t, 2'000);
  }
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kLatencyBurn).active);

  // Latency regression: 3 s of 50 ms requests (SLO threshold is 20 ms).
  for (int i = 0; i < 30; ++i) {
    t += 100'000;
    eng.observe_request(t, 50'000);
  }
  EXPECT_TRUE(status_of(eng.alerts(), AlertRule::kLatencyBurn).active);
  EXPECT_TRUE(eng.any_active());

  // Recovery: enough healthy traffic to flush the fast window.
  for (int i = 0; i < 80; ++i) {
    t += 100'000;
    eng.observe_request(t, 2'000);
  }
  const obs::AlertStatus st = status_of(eng.alerts(), AlertRule::kLatencyBurn);
  EXPECT_FALSE(st.active);
  EXPECT_EQ(st.fired_count, 1u);
  // The event log holds the fire edge then the resolve edge.
  std::vector<obs::AlertEvent> edges;
  for (const obs::AlertEvent& ev : eng.events()) {
    if (ev.rule == AlertRule::kLatencyBurn) edges.push_back(ev);
  }
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].fired);
  EXPECT_FALSE(edges[1].fired);
  EXPECT_LT(edges[0].t_us, edges[1].t_us);
}

TEST(HealthEngine, BatchObserveMatchesSequential) {
  // observe_requests() is the batched session feed; it must be
  // indistinguishable from the same stream fed one call at a time — same
  // window stats, same eval points, same alert edges. Replay a stream that
  // crosses a fire and a resolve edge through both entry points, in uneven
  // batch sizes that straddle the edges.
  HealthEngine seq(test_config());
  HealthEngine bat(test_config());
  std::vector<std::uint64_t> ts;
  std::vector<std::uint64_t> lat;
  std::uint64_t t = 0;
  for (int i = 0; i < 20; ++i) { t += 100'000; ts.push_back(t); lat.push_back(2'000); }
  for (int i = 0; i < 30; ++i) { t += 100'000; ts.push_back(t); lat.push_back(50'000); }
  for (int i = 0; i < 80; ++i) { t += 100'000; ts.push_back(t); lat.push_back(2'000); }

  for (std::size_t i = 0; i < ts.size(); ++i) seq.observe_request(ts[i], lat[i]);
  const std::size_t batch_sizes[] = {1, 7, 32, 3, 19, 45, 64};
  std::size_t off = 0;
  for (std::size_t b = 0; off < ts.size(); b = (b + 1) % std::size(batch_sizes)) {
    const std::size_t n = std::min(batch_sizes[b], ts.size() - off);
    bat.observe_requests(ts.data() + off, lat.data() + off, n);
    off += n;
  }

  for (const bool fast : {true, false}) {
    const auto ws = seq.window_stats(fast);
    const auto wb = bat.window_stats(fast);
    EXPECT_EQ(ws.requests, wb.requests);
    EXPECT_EQ(ws.bad_requests, wb.bad_requests);
    EXPECT_EQ(ws.burn_rate, wb.burn_rate);
    EXPECT_EQ(ws.p50_us, wb.p50_us);
    EXPECT_EQ(ws.p99_us, wb.p99_us);
    EXPECT_EQ(ws.p999_us, wb.p999_us);
  }
  const auto ev_s = seq.events();
  const auto ev_b = bat.events();
  ASSERT_EQ(ev_s.size(), ev_b.size());
  for (std::size_t i = 0; i < ev_s.size(); ++i) {
    EXPECT_EQ(ev_s[i].t_us, ev_b[i].t_us);
    EXPECT_EQ(ev_s[i].rule, ev_b[i].rule);
    EXPECT_EQ(ev_s[i].fired, ev_b[i].fired);
    EXPECT_EQ(ev_s[i].value, ev_b[i].value);
  }
  const auto al_s = seq.alerts();
  const auto al_b = bat.alerts();
  ASSERT_EQ(al_s.size(), al_b.size());
  for (std::size_t i = 0; i < al_s.size(); ++i) {
    EXPECT_EQ(al_s[i].active, al_b[i].active);
    EXPECT_EQ(al_s[i].fired_count, al_b[i].fired_count);
    EXPECT_EQ(al_s[i].since_us, al_b[i].since_us);
  }
}

TEST(HealthEngine, LatencyBurnNeedsBothWindowsBurning) {
  // A short blip that burns the fast window but not the slow one must not
  // fire (the multi-window guard). 55 s of good traffic dilutes the slow
  // window well below the fire bound before a 1 s blip of bad requests.
  HealthEngine eng(test_config());
  std::uint64_t t = 0;
  for (int i = 0; i < 550; ++i) {
    t += 100'000;
    eng.observe_request(t, 2'000);
  }
  for (int i = 0; i < 10; ++i) {
    t += 100'000;
    eng.observe_request(t, 50'000);
  }
  // Fast window burn: 10 bad / 50 req = 0.2/0.01 = 20x. Slow window:
  // 10 / 560 ~= 1.8x < 2x -> must stay quiet.
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kLatencyBurn).active);
}

TEST(HealthEngine, HitRatioCollapseFiresAndRecovers) {
  HealthEngine eng(test_config());
  eng.tick(1 * kSec);
  for (int i = 0; i < 20; ++i) eng.note_cache_miss();
  eng.tick(2 * kSec);
  EXPECT_TRUE(status_of(eng.alerts(), AlertRule::kHitRatioCollapse).active);

  // 6 s later the misses have left the fast window; fresh hits resolve it.
  eng.tick(8 * kSec);
  for (int i = 0; i < 20; ++i) eng.note_cache_hit();
  eng.tick(9 * kSec);
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kHitRatioCollapse).active);
}

TEST(HealthEngine, RejectSpikeFiresOnAdmissionPressure) {
  HealthEngine eng(test_config());
  eng.tick(1 * kSec);
  for (int i = 0; i < 30; ++i) eng.note_submission();
  for (int i = 0; i < 10; ++i) eng.note_admission_reject();  // 25% rejects
  eng.tick(2 * kSec);
  EXPECT_TRUE(status_of(eng.alerts(), AlertRule::kRejectSpike).active);
  eng.tick(8 * kSec);  // attempts age out of the fast window
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kRejectSpike).active);
}

TEST(HealthEngine, QueueStallFiresWhenInflightHighAndCompletionsFlat) {
  HealthEngine eng(test_config());
  eng.tick(1 * kSec);
  eng.note_inflight(64);
  eng.tick(6 * kSec);  // a full fast window with zero completions
  EXPECT_TRUE(status_of(eng.alerts(), AlertRule::kQueueStall).active);
  eng.note_completion();
  eng.tick(7 * kSec);
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kQueueStall).active);
}

TEST(HealthEngine, QueueStallNeedsAFullWindowOfHistory) {
  // Cold start: a submit burst with inflight high at t < fast_window must
  // not false-fire before any completion had a chance to land.
  HealthEngine eng(test_config());
  eng.note_inflight(64);
  eng.tick(2 * kSec);  // fast window is 5 s
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kQueueStall).active);
}

TEST(HealthEngine, WearImbalanceFiresOnSkewAndResolvesWithHysteresis) {
  HealthEngine eng(test_config());
  eng.observe_region_wear(0, 10.0);
  eng.observe_region_wear(1, 10.0);
  eng.observe_region_wear(2, 10.0);
  eng.observe_region_wear(3, 100.0);  // skew = 100 / 32.5 ~= 3.1
  eng.tick(1 * kSec);
  EXPECT_TRUE(status_of(eng.alerts(), AlertRule::kWearImbalance).active);
  EXPECT_NEAR(eng.wear_skew(), 100.0 / 32.5, 1e-9);

  // Wear converges: skew 1.18 is below the 1.25 resolve bound (hysteresis
  // means 1.4 — between resolve and fire — would have kept it active).
  for (std::size_t r = 0; r < 3; ++r) eng.observe_region_wear(r, 100.0);
  eng.observe_region_wear(3, 118.0);
  eng.tick(2 * kSec);
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kWearImbalance).active);
}

TEST(HealthEngine, WearImbalanceNeedsEnoughTotalWear) {
  HealthEngine eng(test_config());
  eng.observe_region_wear(0, 1.0);
  eng.observe_region_wear(1, 10.0);  // huge skew, tiny absolute wear
  eng.tick(1 * kSec);
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kWearImbalance).active);
}

TEST(HealthEngine, ArrayDegradedTracksStateAndExportsGauges) {
  obs::MetricsRegistry::global().reset();
  HealthEngine eng(test_config());
  eng.note_array_state(1);
  eng.tick(1 * kSec);
  EXPECT_TRUE(status_of(eng.alerts(), AlertRule::kArrayDegraded).active);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  bool found_active = false;
  bool found_fired = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "kdd_alerts_active{rule=\"array_degraded\"}") {
      found_active = true;
      EXPECT_EQ(g.value, 1);
    }
  }
  for (const auto& c : snap.counters) {
    if (c.name == "kdd_alerts_fired_total{rule=\"array_degraded\"}") {
      found_fired = true;
      EXPECT_EQ(c.value, 1u);
    }
  }
  EXPECT_TRUE(found_active);
  EXPECT_TRUE(found_fired);

  eng.note_array_state(0);
  eng.tick(2 * kSec);
  EXPECT_FALSE(status_of(eng.alerts(), AlertRule::kArrayDegraded).active);
}

TEST(HealthEngine, WindowStatsReportSlidingPercentiles) {
  HealthEngine eng(test_config());
  std::uint64_t t = 0;
  // 100 old requests at 1 ms, then 100 recent at 10 ms; the fast window
  // only sees the recent ones.
  for (int i = 0; i < 100; ++i) {
    t += 100'000;
    eng.observe_request(t, 1'000);
  }
  for (int i = 0; i < 100; ++i) {
    t += 40'000;  // 4 ms spacing: 100 requests in 4 s < fast window
    eng.observe_request(t, 10'000);
  }
  const HealthEngine::WindowStats fast = eng.window_stats(/*fast=*/true);
  const HealthEngine::WindowStats slow = eng.window_stats(/*fast=*/false);
  EXPECT_GE(fast.p50_us, 10'000u * 63 / 64);
  EXPECT_LE(fast.p50_us, 10'000u * 66 / 64);
  EXPECT_GT(slow.requests, fast.requests);
  // Slow window p50 sits between the two modes.
  EXPECT_GE(slow.p50_us, 1'000u);
  EXPECT_LE(slow.p50_us, 10'500u);
}

TEST(HealthEngine, HealthJsonCarriesSchemaWindowsAndRules) {
  HealthEngine eng(test_config());
  eng.observe_request(kSec, 2'000);
  eng.tick(2 * kSec);
  const std::string json = eng.health_json();
  EXPECT_NE(json.find("\"schema\":\"kdd-health-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"fast\""), std::string::npos);
  EXPECT_NE(json.find("\"slow\""), std::string::npos);
  EXPECT_NE(json.find("\"attainment\""), std::string::npos);
  for (int i = 0; i < obs::kNumAlertRules; ++i) {
    EXPECT_NE(json.find(obs::alert_rule_name(static_cast<AlertRule>(i))),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The issue's reliability drill: latency regression while degraded
// mid-rebuild plus a skewed-wear workload; burn-rate and wear-imbalance
// alerts fire, then resolve after recovery. Byte-deterministic on the sim
// clock across reruns.
// ---------------------------------------------------------------------------

struct DrillResult {
  std::string health_json;
  std::vector<obs::AlertEvent> events;
  bool burn_fired = false, burn_resolved = false;
  bool wear_fired = false, wear_resolved = false;
  bool degraded_fired = false, degraded_resolved = false;
  bool any_active_at_end = true;
};

DrillResult run_drill() {
  HealthEngine eng(test_config());
  std::uint64_t t = 0;
  const auto requests = [&](int n, std::uint64_t spacing_us,
                            std::uint64_t latency_us) {
    for (int i = 0; i < n; ++i) {
      t += spacing_us;
      eng.observe_request(t, latency_us);
    }
  };

  // Phase 1 — healthy baseline: 10 s of 2 ms requests, balanced wear.
  for (std::size_t r = 0; r < 4; ++r) eng.observe_region_wear(r, 50.0);
  requests(100, 100'000, 2'000);

  // Phase 2 — a disk fails mid-run; the array degrades and the rebuild
  // drives foreground latency over the SLO threshold while GC burns one
  // region of the cache SSD.
  eng.note_array_state(1);  // degraded
  eng.observe_region_wear(3, 400.0);
  requests(50, 100'000, 60'000);
  eng.note_array_state(2);  // rebuilding
  requests(50, 100'000, 45'000);

  // Phase 3 — recovery: rebuild completes, latency returns to baseline,
  // wear-leveling evens the regions back out.
  eng.note_array_state(0);
  for (std::size_t r = 0; r < 3; ++r) eng.observe_region_wear(r, 380.0);
  eng.observe_region_wear(3, 420.0);
  requests(120, 100'000, 2'000);

  DrillResult out;
  out.health_json = eng.health_json();
  out.events = eng.events();
  for (const obs::AlertEvent& ev : out.events) {
    if (ev.rule == AlertRule::kLatencyBurn) {
      (ev.fired ? out.burn_fired : out.burn_resolved) = true;
    }
    if (ev.rule == AlertRule::kWearImbalance) {
      (ev.fired ? out.wear_fired : out.wear_resolved) = true;
    }
    if (ev.rule == AlertRule::kArrayDegraded) {
      (ev.fired ? out.degraded_fired : out.degraded_resolved) = true;
    }
  }
  out.any_active_at_end = eng.any_active();
  return out;
}

TEST(HealthDrill, BurnAndWearAlertsFireAndResolveDeterministically) {
  const DrillResult a = run_drill();
  EXPECT_TRUE(a.burn_fired);
  EXPECT_TRUE(a.burn_resolved);
  EXPECT_TRUE(a.wear_fired);
  EXPECT_TRUE(a.wear_resolved);
  EXPECT_TRUE(a.degraded_fired);
  EXPECT_TRUE(a.degraded_resolved);
  EXPECT_FALSE(a.any_active_at_end);

  // Byte-deterministic on the sim clock: an identical rerun produces the
  // identical health document and the identical edge sequence.
  const DrillResult b = run_drill();
  EXPECT_EQ(a.health_json, b.health_json);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].t_us, b.events[i].t_us) << "event " << i;
    EXPECT_EQ(a.events[i].rule, b.events[i].rule) << "event " << i;
    EXPECT_EQ(a.events[i].fired, b.events[i].fired) << "event " << i;
  }
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

struct FlightGuard {
  FlightGuard() {
    FlightRecorder::global().clear();
    FlightRecorder::global().set_capacity(4096);
    FlightRecorder::set_enabled(true);
  }
  ~FlightGuard() {
    FlightRecorder::set_enabled(false);
    FlightRecorder::global().set_auto_dump_path("");
    FlightRecorder::global().clear();
  }
};

TEST(FlightRecorder, RingKeepsNewestAndCountsDrops) {
  FlightGuard guard;
  FlightRecorder& fr = FlightRecorder::global();
  fr.set_capacity(4);
  for (int i = 0; i < 6; ++i) {
    fr.set_now_us(static_cast<std::uint64_t>(100 * (i + 1)));
    fr.note(FlightKind::kFault, "f", i);
  }
  const std::vector<obs::FlightEvent> evs = fr.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(fr.dropped(), 2u);
  // Chronological: oldest surviving first, seq strictly increasing.
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_GT(evs[i].seq, evs[i - 1].seq);
    EXPECT_GE(evs[i].t_us, evs[i - 1].t_us);
  }
  EXPECT_EQ(evs.back().a, 5);
}

TEST(FlightRecorder, ClockClampIsMonotone) {
  FlightGuard guard;
  FlightRecorder& fr = FlightRecorder::global();
  // The singleton's clock persists across tests, so work relative to it.
  const std::uint64_t base = fr.now_us() + 500;
  fr.set_now_us(base);
  fr.set_now_us(base - 300);  // must not go backwards
  EXPECT_EQ(fr.now_us(), base);
  fr.set_now_us(base + 200);
  EXPECT_EQ(fr.now_us(), base + 200);
}

TEST(FlightRecorder, DisabledNoteIsANoOp) {
  FlightGuard guard;
  FlightRecorder::set_enabled(false);
  obs::flight_note(FlightKind::kFault, "ignored");
  EXPECT_TRUE(FlightRecorder::global().events().empty());
}

TEST(FlightRecorder, DumpWritesSchemaAndDumpMark) {
  FlightGuard guard;
  FlightRecorder& fr = FlightRecorder::global();
  fr.note(FlightKind::kPowerCut, "torn_write", 42);
  const std::string path = testing::TempDir() + "kdd_flight_dump.json";
  ASSERT_TRUE(fr.dump(path, "unit_test"));
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"schema\":\"kdd-flight-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"power_cut\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"dump\""), std::string::npos);
  std::remove(path.c_str());
}

// The issue's black-box acceptance: an injected double fault auto-dumps a
// flight.json whose events reconstruct the chain fault -> retry exhaustion
// -> alert -> state transition -> double fault.
TEST(FlightRecorder, DoubleFaultAutoDumpReconstructsEventChain) {
  FlightGuard guard;
  FlightRecorder& fr = FlightRecorder::global();
  const std::string path = testing::TempDir() + "kdd_flight_double_fault.json";
  std::remove(path.c_str());
  fr.set_auto_dump_path(path);

  HealthEngine eng(test_config());
  HealthEngine::install(&eng);

  // 1. A latent sector error surfaces on a read (kFault).
  MemBlockDevice mem(64);
  FaultInjectingDevice fdev(&mem);
  fdev.inject_media_error(3);
  Page page = make_page();
  EXPECT_EQ(fdev.read(3, page), IoStatus::kMediaError);

  // 2. A retry budget runs dry against a persistent transient fault
  // (kRetryExhausted; this is also an auto-dump trigger).
  const RetryResult rr = with_retry([] { return IoStatus::kTransient; });
  EXPECT_EQ(rr.status, IoStatus::kFailed);

  // 3. The health engine raises the degraded-array alert (kAlertFired).
  eng.note_array_state(1);
  eng.tick(1 * kSec);

  // 4. The rebuild engine publishes the array-state transition
  // (kStateTransition) for a two-disk-failed RAID-5...
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  RaidArray array(geo);
  array.fail_disk(0);
  array.fail_disk(1);
  RebuildEngine rebuild(&array);

  // 5. ...and a read that needs both lost members is the double fault that
  // triggers the final auto dump. Sweep one full stripe so the scan hits a
  // chunk on a failed disk regardless of the layout's rotation.
  Page out = make_page();
  bool double_faulted = false;
  const std::uint64_t stripe_pages =
      static_cast<std::uint64_t>(geo.chunk_pages) * geo.data_disks();
  for (Lba lba = 0; lba < stripe_pages; ++lba) {
    if (array.read_page(lba, out) == IoStatus::kFailed) {
      double_faulted = true;
      break;
    }
  }
  EXPECT_TRUE(double_faulted);
  HealthEngine::install(nullptr);

  // The chain appears in order in the recorder...
  const std::vector<obs::FlightEvent> evs = fr.events();
  const FlightKind chain[] = {FlightKind::kFault, FlightKind::kRetryExhausted,
                              FlightKind::kAlertFired,
                              FlightKind::kStateTransition,
                              FlightKind::kDoubleFault};
  std::size_t want = 0;
  for (const obs::FlightEvent& ev : evs) {
    if (want < std::size(chain) && ev.kind == chain[want]) ++want;
  }
  EXPECT_EQ(want, std::size(chain))
      << "matched only " << want << " of the expected event chain";

  // ...and the auto dump landed on disk with the schema tag and the chain.
  const std::string body = slurp(path);
  ASSERT_FALSE(body.empty()) << "double fault did not auto-dump " << path;
  EXPECT_NE(body.find("\"schema\":\"kdd-flight-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"double_fault\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"retry_exhausted\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"alert_fired\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"state_transition\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serving surface
// ---------------------------------------------------------------------------

TEST(HealthHandler, RoutesMetricsHealthFlightAnd404) {
  obs::MetricsRegistry::global().reset();
  obs::Counter probe(&obs::MetricsRegistry::global(), "kdd_probe_total");
  probe.inc(3);
  HealthEngine eng(test_config());
  eng.observe_request(kSec, 2'000);

  obs::HealthHandler handler(&eng);
  const obs::ScrapeResponse metrics = handler.handle("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("kdd_probe_total 3"), std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE kdd_probe_total counter"),
            std::string::npos);

  const obs::ScrapeResponse health = handler.handle("/health");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("kdd-health-v1"), std::string::npos);

  const obs::ScrapeResponse flight = handler.handle("/flight");
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.body.find("kdd-flight-v1"), std::string::npos);

  // Query strings are ignored; unknown paths 404.
  EXPECT_EQ(handler.handle("/health?verbose=1").status, 200);
  EXPECT_EQ(handler.handle("/nope").status, 404);
}

TEST(HealthHandler, NullEngineStillServes) {
  const obs::HealthHandler handler(nullptr);
  const obs::ScrapeResponse health = handler.handle("/health");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"engine_installed\":false"), std::string::npos);
}

TEST(ScrapeServer, ServesOverLoopbackWithEphemeralPort) {
  HealthEngine eng(test_config());
  eng.observe_request(kSec, 2'000);
  obs::HealthHandler handler(&eng);
  obs::ScrapeServer server(handler);
  if (!server.start(0)) {
    GTEST_SKIP() << "cannot bind loopback in this environment";
  }
  ASSERT_NE(server.port(), 0);

  std::string body;
  int status = 0;
  ASSERT_TRUE(obs::http_get(server.port(), "/health", &body, &status));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, handler.handle("/health").body);

  ASSERT_TRUE(obs::http_get(server.port(), "/bogus", &body, &status));
  EXPECT_EQ(status, 404);
  EXPECT_GE(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace kdd
