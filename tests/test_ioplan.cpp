#include "raid/io_plan.hpp"

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "policies/nocache.hpp"

namespace kdd {
namespace {

DeviceOp op(std::uint32_t device, Lba page, IoKind kind) {
  return {DeviceOp::Target::kHdd, device, page, kind};
}

TEST(IoPlan, AddGrowsPhases) {
  IoPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.add(2, op(0, 1, IoKind::kRead));
  EXPECT_EQ(plan.phases().size(), 3u);
  EXPECT_TRUE(plan.phases()[0].empty());
  EXPECT_EQ(plan.total_ops(), 1u);
  EXPECT_EQ(plan.next_phase(), 3u);
}

TEST(IoPlan, AppendSequentialSkipsEmptyPhases) {
  IoPlan a;
  a.add(0, op(0, 1, IoKind::kRead));
  IoPlan b;
  b.add(1, op(1, 2, IoKind::kWrite));  // phase 0 of b is empty
  a.append_sequential(b);
  ASSERT_EQ(a.phases().size(), 2u);
  EXPECT_EQ(a.phases()[1][0].device, 1u);
}

TEST(IoPlan, MergeParallelAlignsPhases) {
  IoPlan a;
  a.add(0, op(0, 1, IoKind::kRead));
  a.add(1, op(0, 1, IoKind::kWrite));
  IoPlan b;
  b.add(0, op(1, 2, IoKind::kRead));
  b.add(1, op(1, 2, IoKind::kWrite));
  b.add(2, op(2, 3, IoKind::kWrite));
  a.merge_parallel(b);
  ASSERT_EQ(a.phases().size(), 3u);
  EXPECT_EQ(a.phases()[0].size(), 2u);  // both reads in phase 0
  EXPECT_EQ(a.phases()[1].size(), 2u);
  EXPECT_EQ(a.phases()[2].size(), 1u);
  EXPECT_EQ(a.total_ops(), 5u);
}

TEST(IoPlan, ClearResets) {
  IoPlan a;
  a.add(0, op(0, 1, IoKind::kRead));
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.total_ops(), 0u);
}

TEST(IoPlan, MultiPageRequestKeepsPagesParallel) {
  // Through the simulator's execute path: a 4-page read on Nossd should be
  // one phase of 4 parallel disk reads, so its latency is far below 4 serial
  // reads.
  const RaidGeometry geo = paper_geometry(60000);
  NoCachePolicy policy(geo);
  EventSimulator sim(paper_sim_config(geo.num_disks), &policy);
  Trace multi;
  multi.records = {{0, 40000, 4, true}};  // away from the parked head
  const SimResult one_req = sim.run_open_loop(multi);

  NoCachePolicy policy2(geo);
  EventSimulator sim2(paper_sim_config(geo.num_disks), &policy2);
  Trace serial;
  for (Lba i = 0; i < 4; ++i) {
    // Scattered pages (within the array), far-apart arrivals: each pays
    // seek + rotation.
    serial.records.push_back({i * 1000000, 30000 + i * 5000, 1, true});
  }
  const SimResult four_reqs = sim2.run_open_loop(serial);
  // The 4-page request pays positioning once (its pages are adjacent on one
  // chunk), the four random requests pay it four times.
  EXPECT_LT(one_req.latency.max_us(), four_reqs.latency.mean_us() * 3);
}

}  // namespace
}  // namespace kdd
