// Equivalence suite for the dispatched bulk kernels (common/kernels.hpp).
//
// Every supported dispatch tier must be bit-exact against the naive scalar
// references across awkward sizes (sub-word, sub-vector, vector-multiple,
// off-by-one) and unaligned base addresses — SIMD tails and head-alignment
// handling are where bulk kernels classically go wrong.
#include "common/kernels.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace kdd {
namespace {

using kern::Tier;

constexpr std::size_t kSizes[] = {1, 7, 64, 4095, 4096};
constexpr std::size_t kOffsets[] = {0, 1, 3, 13};  // misalign the buffers
constexpr std::uint8_t kCoeffs[] = {0x00, 0x01, 0x02, 0x1d, 0x37, 0x80, 0xff};

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers{Tier::kScalar};
  for (const Tier t : {Tier::kSse2, Tier::kAvx2, Tier::kNeon}) {
    if (kern::set_tier(t)) tiers.push_back(t);
  }
  kern::set_tier(kern::widest_supported_tier());
  return tiers;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

class KernelTierTest : public ::testing::TestWithParam<Tier> {
 protected:
  void SetUp() override {
    if (!kern::set_tier(GetParam())) {
      GTEST_SKIP() << "tier " << kern::tier_name(GetParam())
                   << " not supported on this CPU";
    }
  }
  void TearDown() override { kern::set_tier(kern::widest_supported_tier()); }
};

TEST_P(KernelTierTest, XorIntoMatchesReference) {
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto src = random_bytes(n + off, 17 * n + off);
      auto dst = random_bytes(n + off, 31 * n + off);
      auto expect = dst;
      kern::ref::xor_into(expect.data() + off, src.data() + off, n);
      kern::xor_into(dst.data() + off, src.data() + off, n);
      ASSERT_EQ(dst, expect) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelTierTest, XorPages3MatchesReference) {
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto a = random_bytes(n + off, 7 * n + off);
      const auto b = random_bytes(n + off, 11 * n + off);
      auto dst = random_bytes(n + off, 13 * n + off);
      auto expect = dst;
      kern::ref::xor_pages3(expect.data() + off, a.data() + off, b.data() + off, n);
      kern::xor_pages3(dst.data() + off, a.data() + off, b.data() + off, n);
      ASSERT_EQ(dst, expect) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelTierTest, XorPages3ToleratesAliasing) {
  for (const std::size_t n : kSizes) {
    const auto a0 = random_bytes(n, 23 * n);
    const auto b = random_bytes(n, 29 * n);
    auto expect = std::vector<std::uint8_t>(n);
    kern::ref::xor_pages3(expect.data(), a0.data(), b.data(), n);
    auto dst = a0;  // dst aliases a
    kern::xor_pages3(dst.data(), dst.data(), b.data(), n);
    ASSERT_EQ(dst, expect) << "n=" << n << " (dst == a)";
    dst = b;  // dst aliases b
    kern::xor_pages3(dst.data(), a0.data(), dst.data(), n);
    ASSERT_EQ(dst, expect) << "n=" << n << " (dst == b)";
  }
}

TEST_P(KernelTierTest, AllZeroMatchesReference) {
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      std::vector<std::uint8_t> buf(n + off, 0);
      ASSERT_TRUE(kern::all_zero(buf.data() + off, n)) << "n=" << n;
      // Flip one byte at a time through a spread of positions, including the
      // very first and very last byte (head/tail handling).
      for (const std::size_t flip :
           {std::size_t{0}, n / 3, n / 2, n - 1}) {
        buf[off + flip] = 0x40;
        ASSERT_EQ(kern::all_zero(buf.data() + off, n),
                  kern::ref::all_zero(buf.data() + off, n));
        ASSERT_FALSE(kern::all_zero(buf.data() + off, n))
            << "n=" << n << " flip=" << flip;
        buf[off + flip] = 0;
      }
    }
  }
}

TEST_P(KernelTierTest, Gf256MulAccMatchesReference) {
  for (const std::size_t n : kSizes) {
    for (const std::size_t off : kOffsets) {
      for (const std::uint8_t c : kCoeffs) {
        const auto src = random_bytes(n + off, 41 * n + off + c);
        auto dst = random_bytes(n + off, 43 * n + off + c);
        auto expect = dst;
        kern::ref::gf256_mul_acc(expect.data() + off, c, src.data() + off, n);
        kern::gf256_mul_acc(dst.data() + off, c, src.data() + off, n);
        ASSERT_EQ(dst, expect)
            << "n=" << n << " off=" << off << " c=" << unsigned(c);
      }
    }
  }
}

TEST_P(KernelTierTest, Gf256MulAccMatchesPeasantMultiply) {
  // Cross-check the table construction itself against a table-free
  // Russian-peasant multiply, for every coefficient over one page.
  const auto src = random_bytes(kPageSize, 97);
  std::vector<std::uint8_t> dst(kPageSize, 0);
  std::vector<std::uint8_t> expect(kPageSize);
  for (unsigned c = 0; c < 256; c += 5) {  // sampled: full sweep is slow
    std::memset(dst.data(), 0, dst.size());
    for (std::size_t i = 0; i < kPageSize; ++i) {
      expect[i] = kern::ref::gf256_mul(static_cast<std::uint8_t>(c), src[i]);
    }
    kern::gf256_mul_acc(dst.data(), static_cast<std::uint8_t>(c), src.data(),
                        kPageSize);
    ASSERT_EQ(dst, expect) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, KernelTierTest,
                         ::testing::ValuesIn(supported_tiers()),
                         [](const ::testing::TestParamInfo<Tier>& param_info) {
                           return kern::tier_name(param_info.param);
                         });

TEST(KernelDispatch, WidestTierIsSupported) {
  EXPECT_TRUE(kern::set_tier(kern::widest_supported_tier()));
  EXPECT_EQ(kern::active_tier(), kern::widest_supported_tier());
}

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(kern::set_tier(Tier::kScalar));
  EXPECT_EQ(kern::active_tier(), Tier::kScalar);
  kern::set_tier(kern::widest_supported_tier());
}

TEST(KernelDispatch, UnsupportedTierIsRejected) {
#if defined(KDD_ARCH_NEON)
  const Tier unsupported = Tier::kAvx2;
#else
  const Tier unsupported = Tier::kNeon;
#endif
  const Tier before = kern::active_tier();
  EXPECT_FALSE(kern::set_tier(unsupported));
  EXPECT_EQ(kern::active_tier(), before);
}

TEST(KernelDispatch, BytesWrappersRouteThroughKernels) {
  // The span-level helpers in common/bytes.hpp must agree with the raw
  // kernels (they are the entry point the RAID/delta layers actually use).
  const Page a = [] {
    Page p(kPageSize);
    Rng rng(5);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
    return p;
  }();
  Page b = make_page();
  xor_into(b, a);
  EXPECT_EQ(b, a);  // 0 ^ a == a
  Page c(kPageSize);
  xor_pages3(c, a, b);
  EXPECT_TRUE(all_zero(c));  // a ^ a == 0
}

}  // namespace
}  // namespace kdd
