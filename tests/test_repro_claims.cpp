// The paper's evaluation claims, asserted as tests.
//
// Each TEST checks one qualitative statement from Section IV (orderings,
// crossovers, "reduced by up to" directions) on scaled-down versions of the
// corresponding experiments. The expensive sweeps run once in the fixture's
// SetUpTestSuite and are shared by all assertions.
#include <gtest/gtest.h>

#include <map>

#include "harness/harness.hpp"
#include "kdd/kdd_cache.hpp"
#include "trace/generators.hpp"
#include "trace/zipf_workload.hpp"

namespace kdd {
namespace {

constexpr double kScale = 0.06;

struct SweepResult {
  double hit_ratio = 0.0;
  std::uint64_t ssd_writes = 0;
};

/// Results keyed by (workload, policy label, cache fraction).
using SweepTable = std::map<std::string, std::map<std::string, std::map<int, SweepResult>>>;

class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    results_ = new SweepTable;
    for (const char* workload : {"Fin1", "Hm0", "Fin2", "Web0"}) {
      const Trace trace = generate_preset(workload, kScale);
      const TraceStats tstats = compute_stats(trace);
      const RaidGeometry geo = paper_geometry(tstats.max_page);
      for (const int frac_pct : {10, 40}) {
        const auto ssd_pages = static_cast<std::uint64_t>(
            frac_pct / 100.0 * static_cast<double>(tstats.unique_pages_total));
        auto run = [&](PolicyKind kind, double locality, const std::string& label) {
          PolicyConfig cfg;
          cfg.ssd_pages = ssd_pages;
          cfg.delta_ratio_mean = locality;
          auto policy = make_policy(kind, cfg, geo);
          const CacheStats s = run_counter_trace(*policy, trace, geo.data_pages());
          (*results_)[workload][label][frac_pct] = {s.hit_ratio(),
                                                    s.total_ssd_writes()};
        };
        run(PolicyKind::kWA, 0.25, "WA");
        run(PolicyKind::kWT, 0.25, "WT");
        run(PolicyKind::kLeavO, 0.25, "LeavO");
        run(PolicyKind::kKdd, 0.50, "KDD-50");
        run(PolicyKind::kKdd, 0.25, "KDD-25");
        run(PolicyKind::kKdd, 0.12, "KDD-12");
      }
    }
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const SweepResult& at(const std::string& workload, const std::string& policy,
                               int frac) {
    return (*results_)[workload][policy][frac];
  }

  static SweepTable* results_;
};

SweepTable* PaperClaims::results_ = nullptr;

// --- Figure 5: hit ratios, write-dominant traces ---------------------------

TEST_F(PaperClaims, Fig5_WtHasHighestHitRatio) {
  for (const char* w : {"Fin1", "Hm0"}) {
    for (const int f : {10, 40}) {
      EXPECT_GT(at(w, "WT", f).hit_ratio, at(w, "KDD-12", f).hit_ratio) << w << f;
      EXPECT_GT(at(w, "WT", f).hit_ratio, at(w, "LeavO", f).hit_ratio) << w << f;
    }
  }
}

TEST_F(PaperClaims, Fig5_KddConvincinglyOutperformsLeavO) {
  for (const char* w : {"Fin1", "Hm0"}) {
    for (const int f : {10, 40}) {
      EXPECT_GT(at(w, "KDD-25", f).hit_ratio, at(w, "LeavO", f).hit_ratio) << w << f;
    }
  }
}

TEST_F(PaperClaims, Fig5_StrongerContentLocalityHigherHitRatio) {
  for (const char* w : {"Fin1", "Hm0"}) {
    for (const int f : {10, 40}) {
      EXPECT_GE(at(w, "KDD-12", f).hit_ratio, at(w, "KDD-25", f).hit_ratio) << w << f;
      EXPECT_GE(at(w, "KDD-25", f).hit_ratio, at(w, "KDD-50", f).hit_ratio) << w << f;
    }
  }
}

// --- Figure 6: SSD write traffic, write-dominant traces --------------------

TEST_F(PaperClaims, Fig6_TrafficOrderingWaKddWtLeavO) {
  for (const char* w : {"Fin1", "Hm0"}) {
    for (const int f : {10, 40}) {
      EXPECT_LT(at(w, "WA", f).ssd_writes, at(w, "KDD-12", f).ssd_writes) << w << f;
      EXPECT_LT(at(w, "KDD-12", f).ssd_writes, at(w, "KDD-25", f).ssd_writes) << w << f;
      EXPECT_LT(at(w, "KDD-25", f).ssd_writes, at(w, "KDD-50", f).ssd_writes) << w << f;
      EXPECT_LT(at(w, "KDD-50", f).ssd_writes, at(w, "WT", f).ssd_writes) << w << f;
      EXPECT_LT(at(w, "WT", f).ssd_writes, at(w, "LeavO", f).ssd_writes) << w << f;
    }
  }
}

TEST_F(PaperClaims, Fig6_ReductionGrowsWithCacheSize) {
  for (const char* w : {"Fin1", "Hm0"}) {
    auto reduction = [&](int f) {
      return 1.0 - static_cast<double>(at(w, "KDD-25", f).ssd_writes) /
                       static_cast<double>(at(w, "WT", f).ssd_writes);
    };
    EXPECT_GT(reduction(40), reduction(10)) << w;
    EXPECT_GT(reduction(40), 0.35) << w;  // the paper reports 45-68 % "up to"
  }
}

TEST_F(PaperClaims, Fig6_LifetimeExtensionVsLeavO) {
  // Paper: up to 5.1x. At this scale and the largest swept cache we demand
  // at least 2.5x for KDD-12.
  for (const char* w : {"Fin1", "Hm0"}) {
    const double ratio = static_cast<double>(at(w, "LeavO", 40).ssd_writes) /
                         static_cast<double>(at(w, "KDD-12", 40).ssd_writes);
    EXPECT_GT(ratio, 2.5) << w;
  }
}

// --- Figure 7: hit ratios, read-dominant traces ----------------------------

TEST_F(PaperClaims, Fig7_LeavOSmallestHitRatios) {
  for (const char* w : {"Fin2", "Web0"}) {
    for (const int f : {10, 40}) {
      EXPECT_LE(at(w, "LeavO", f).hit_ratio, at(w, "KDD-25", f).hit_ratio + 0.005)
          << w << f;
      EXPECT_LT(at(w, "LeavO", f).hit_ratio, at(w, "WT", f).hit_ratio) << w << f;
    }
  }
}

TEST_F(PaperClaims, Fig7_Web0AnomalyKddRivalsWtAtSmallCache) {
  // "KDD even outperforms WT when the cache size is small" — we assert KDD-12
  // reaches at least parity (within 1 pp) at the small cache point.
  EXPECT_GT(at("Web0", "KDD-12", 10).hit_ratio,
            at("Web0", "WT", 10).hit_ratio - 0.01);
}

// --- Figure 8: SSD write traffic, read-dominant traces ---------------------

TEST_F(PaperClaims, Fig8_ReductionsSmallerThanWriteDominant) {
  auto reduction = [&](const char* w) {
    return 1.0 - static_cast<double>(at(w, "KDD-25", 10).ssd_writes) /
                     static_cast<double>(at(w, "WT", 10).ssd_writes);
  };
  EXPECT_LT(reduction("Fin2"), reduction("Fin1"));
  EXPECT_LT(reduction("Web0"), reduction("Hm0"));
}

TEST_F(PaperClaims, Fig8_Fin2LargeCacheKdd12BeatsWa) {
  // "For Fin2 under large cache sizes ... KDD-12% even has less cache writes
  // than WA."
  EXPECT_LT(at("Fin2", "KDD-12", 40).ssd_writes, at("Fin2", "WA", 40).ssd_writes);
}

// --- Figures 9/10: response times -------------------------------------------

TEST_F(PaperClaims, Fig10_LatencyOrderingUnderZipf) {
  const RaidGeometry geo = paper_geometry(30000);
  std::map<std::string, double> ms;
  for (const auto& [label, kind] :
       std::map<std::string, PolicyKind>{{"Nossd", PolicyKind::kNossd},
                                         {"WT", PolicyKind::kWT},
                                         {"WA", PolicyKind::kWA},
                                         {"LeavO", PolicyKind::kLeavO},
                                         {"KDD", PolicyKind::kKdd}}) {
    PolicyConfig cfg;
    cfg.ssd_pages = 8192;
    cfg.delta_ratio_mean = 0.25;
    auto policy = make_policy(kind, cfg, geo);
    EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = 16384;
    wcfg.total_requests = 6000;
    wcfg.read_rate = 0.25;
    wcfg.array_pages = geo.data_pages();
    ZipfWorkload workload(wcfg);
    ms[label] = sim.run_closed_loop(workload, 16).mean_response_ms();
  }
  // KDD ~ LeavO, both far below WT/WA/Nossd (write-dominant mix).
  EXPECT_LT(ms["KDD"], ms["WT"] * 0.7);
  EXPECT_LT(ms["KDD"], ms["Nossd"] * 0.7);
  EXPECT_NEAR(ms["KDD"], ms["LeavO"], ms["LeavO"] * 0.25);
  // WT/WA bring little at 25 % reads (paper: they only help read-heavy mixes).
  EXPECT_GT(ms["WT"], ms["Nossd"] * 0.75);
}

TEST_F(PaperClaims, Fig10_WtBeatsNossdOnlyAtHighReadRates) {
  const RaidGeometry geo = paper_geometry(30000);
  auto run = [&](PolicyKind kind, double read_rate) {
    PolicyConfig cfg;
    cfg.ssd_pages = 8192;
    auto policy = make_policy(kind, cfg, geo);
    EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = 16384;
    wcfg.total_requests = 5000;
    wcfg.read_rate = read_rate;
    wcfg.array_pages = geo.data_pages();
    ZipfWorkload workload(wcfg);
    return sim.run_closed_loop(workload, 16).mean_response_ms();
  };
  const double gain_low = run(PolicyKind::kNossd, 0.0) / run(PolicyKind::kWT, 0.0);
  const double gain_high = run(PolicyKind::kNossd, 0.75) / run(PolicyKind::kWT, 0.75);
  EXPECT_GT(gain_high, gain_low);  // caching pays off as reads grow
  EXPECT_LT(gain_low, 1.1);        // ~no benefit on pure writes
  EXPECT_GT(gain_high, 1.2);       // clear benefit at 75 % reads
}

TEST_F(PaperClaims, Fig9_TraceReplayOrdering) {
  // Open-loop replay: KDD ~ LeavO, both well ahead of everything; WT/WA gain
  // clearly over Nossd on the read-dominant Fin2 but little on the
  // write-dominant Fin1.
  auto run_all = [](const char* workload) {
    Trace trace = generate_preset(workload, kScale);
    rescale_duration(trace, static_cast<SimTime>(
                                static_cast<double>(trace.duration_us()) * kScale));
    const RaidGeometry geo = paper_geometry(compute_stats(trace).max_page);
    std::map<std::string, double> ms;
    for (const auto& [label, kind] :
         std::map<std::string, PolicyKind>{{"Nossd", PolicyKind::kNossd},
                                           {"WT", PolicyKind::kWT},
                                           {"LeavO", PolicyKind::kLeavO},
                                           {"KDD", PolicyKind::kKdd}}) {
      PolicyConfig cfg;
      cfg.ssd_pages = static_cast<std::uint64_t>(262144.0 * kScale);
      cfg.delta_ratio_mean = 0.25;
      auto policy = make_policy(kind, cfg, geo);
      EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
      ms[label] = sim.run_open_loop(trace).mean_response_ms();
    }
    return ms;
  };
  const auto fin1 = run_all("Fin1");
  EXPECT_LT(fin1.at("KDD"), fin1.at("Nossd") * 0.6);
  EXPECT_LT(fin1.at("KDD"), fin1.at("WT") * 0.6);
  EXPECT_NEAR(fin1.at("KDD"), fin1.at("LeavO"), fin1.at("LeavO") * 0.3);
  const auto fin2 = run_all("Fin2");
  EXPECT_LT(fin2.at("WT"), fin2.at("Nossd") * 0.8);  // caching pays on Fin2
  EXPECT_LT(fin2.at("KDD"), fin2.at("WT"));
}

TEST_F(PaperClaims, PureReadWorkloadDegradesLeavOAndKddToWt) {
  // Section IV-B3 omits the 100 % read rate "because in that case both LeavO
  // and KDD will degrade to WT": with no writes there are no deltas and no
  // version pairs, so all three see identical fill traffic (KDD additionally
  // persists its mappings, a ~1 % overhead).
  const RaidGeometry geo = paper_geometry(30000);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 16384;
  wcfg.total_requests = 30000;
  wcfg.read_rate = 1.0;
  std::map<std::string, CacheStats> s;
  for (const auto& [label, kind] :
       std::map<std::string, PolicyKind>{{"WT", PolicyKind::kWT},
                                         {"LeavO", PolicyKind::kLeavO},
                                         {"KDD", PolicyKind::kKdd}}) {
    PolicyConfig cfg;
    cfg.ssd_pages = 8192;
    auto policy = make_policy(kind, cfg, geo);
    const Trace trace = generate_zipf_trace(wcfg);
    s[label] = run_counter_trace(*policy, trace, geo.data_pages());
  }
  // With no writes, the *data* traffic (fills) of all three is identical;
  // LeavO/KDD additionally persist their mappings (LeavO's direct-mapped
  // table costs visibly more than KDD's batched log even here).
  auto data_writes = [&](const char* label) {
    return static_cast<double>(s[label].total_ssd_writes() -
                               s[label].metadata_ssd_writes());
  };
  const double wt = data_writes("WT");
  EXPECT_NEAR(data_writes("KDD"), wt, wt * 0.02);
  EXPECT_NEAR(data_writes("LeavO"), wt, wt * 0.02);
  EXPECT_LT(s["KDD"].metadata_ssd_writes(), s["LeavO"].metadata_ssd_writes());
  // Hit ratios converge too (the cache managers behave identically).
  EXPECT_NEAR(s["KDD"].hit_ratio(), s["WT"].hit_ratio(), 0.02);
}

// --- Figure 4: metadata I/O share -------------------------------------------

TEST_F(PaperClaims, Fig4_MetadataShareSmallAtDefaultPartition) {
  // Paper: < 1.8 % at the 0.59 % partition across all four workloads. Allow
  // 3 % at this reduced scale.
  for (const char* w : {"Fin1", "Fin2", "Hm0", "Web0"}) {
    const Trace trace = generate_preset(w, kScale);
    const TraceStats tstats = compute_stats(trace);
    const RaidGeometry geo = paper_geometry(tstats.max_page);
    PolicyConfig cfg;
    cfg.ssd_pages = static_cast<std::uint64_t>(
        0.2 * static_cast<double>(tstats.unique_pages_total));
    cfg.delta_ratio_mean = 0.25;
    KddCache kdd(cfg, geo);
    const CacheStats s = run_counter_trace(kdd, trace, geo.data_pages());
    const double share = static_cast<double>(s.metadata_ssd_writes()) /
                         static_cast<double>(s.total_ssd_writes());
    EXPECT_LT(share, 0.03) << w;
  }
}

}  // namespace
}  // namespace kdd
