#include "policies/write_back.hpp"

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "kdd/kdd_cache.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry small_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig small_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  return cfg;
}

TEST(WriteBack, WritesAvoidRaidUntilFlush) {
  WriteBackPolicy wb(small_config(), small_geo());
  IoPlan plan;
  wb.write(5, {}, &plan);
  // A write-back write touches only the SSD.
  for (const auto& phase : plan.phases()) {
    for (const DeviceOp& op : phase) {
      EXPECT_EQ(op.target, DeviceOp::Target::kSsd);
    }
  }
  EXPECT_EQ(wb.dirty_pages(), 1u);
  EXPECT_EQ(wb.stats().disk_writes, 0u);
  wb.flush(nullptr);
  EXPECT_EQ(wb.dirty_pages(), 0u);
  EXPECT_GT(wb.stats().disk_writes, 0u);  // flushed with parity update
}

TEST(WriteBack, RepeatedWritesCoalesceOnFlush) {
  WriteBackPolicy wb(small_config(), small_geo());
  for (int i = 0; i < 50; ++i) wb.write(9, {}, nullptr);
  EXPECT_EQ(wb.dirty_pages(), 1u);
  wb.flush(nullptr);
  // One RMW (2 writes), not 50.
  EXPECT_EQ(wb.stats().disk_writes, 2u);
}

TEST(WriteBack, ReadYourWritesRealMode) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  scfg.pages_per_block = 16;
  SsdModel ssd(scfg);
  WriteBackPolicy wb(small_config(), &array, &ssd);
  ReferenceModel model;
  Rng rng(1);
  Page buf = make_page();
  for (int i = 0; i < 3000; ++i) {
    const Lba lba = rng.next_below(512);
    if (rng.next_bool(0.5)) {
      const Page data = test_page(lba, static_cast<std::uint64_t>(i));
      ASSERT_EQ(wb.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(wb.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba)) << "lba " << lba;
    }
  }
  wb.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
    ASSERT_EQ(buf, page);
  }
}

TEST(WriteBack, SsdFailureLosesDirtyDataUnlikeKdd) {
  // The reason the paper excludes write-back (Section IV-A1), demonstrated:
  // the same workload through WB and KDD, then the cache device dies.
  const RaidGeometry geo = small_geo();

  // --- Write-back: dirty pages are lost. ---
  {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 256;
    SsdModel ssd(scfg);
    PolicyConfig cfg = small_config();
    cfg.clean_high_watermark = 0.9;  // keep plenty dirty
    WriteBackPolicy wb(cfg, &array, &ssd);
    ReferenceModel model;
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
      const Lba lba = rng.next_below(64);
      const Page data = test_page(lba, static_cast<std::uint64_t>(i));
      ASSERT_EQ(wb.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    }
    const std::uint64_t lost = wb.fail_ssd_and_count_lost();
    EXPECT_GT(lost, 0u);
    // At least one page on the array is stale relative to what was acked.
    Page buf = make_page();
    std::uint64_t mismatches = 0;
    for (const auto& [lba, page] : model.pages()) {
      ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
      if (buf != page) ++mismatches;
    }
    EXPECT_GT(mismatches, 0u) << "write-back should lose acked data";
  }

  // --- KDD: RPO = 0. ---
  {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 256;
    SsdModel ssd(scfg);
    KddCache kdd(small_config(), &array, &ssd);
    ReferenceModel model;
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
      const Lba lba = rng.next_below(64);
      const Page data = test_page(lba, static_cast<std::uint64_t>(i));
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    }
    kdd.handle_ssd_failure();
    Page buf = make_page();
    for (const auto& [lba, page] : model.pages()) {
      ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
      ASSERT_EQ(buf, page) << "KDD must not lose acked data";
    }
    EXPECT_TRUE(array.scrub().empty());
  }
}

TEST(WriteBack, FullStripeWritebackSkipsParityReads) {
  // Dirty all data members of one parity group, then flush: the stripe goes
  // out as one full-stripe write (5 disk writes, 0 disk reads) instead of
  // four RMWs (8 reads + 8 writes) — the Section I claim that caching turns
  // small writes into full-stripe writes.
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  WriteBackPolicy wb(small_config(), &array, &ssd);
  const GroupId g = 5;
  for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
    const Lba lba = array.layout().group_member(g, k);
    ASSERT_EQ(wb.write(lba, test_page(lba), nullptr), IoStatus::kOk);
  }
  array.reset_counters();
  wb.flush(nullptr);
  EXPECT_EQ(wb.full_stripe_writebacks(), 1u);
  EXPECT_EQ(array.total_disk_reads(), 0u);
  EXPECT_EQ(array.total_disk_writes(), 5u);  // 4 data + parity
  EXPECT_TRUE(array.scrub().empty());
  Page buf = make_page();
  for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
    const Lba lba = array.layout().group_member(g, k);
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
    EXPECT_EQ(buf, test_page(lba));
  }
}

TEST(WriteBack, FullStripeWritebackWorksInCounterMode) {
  const RaidGeometry geo = small_geo();
  WriteBackPolicy wb(small_config(), geo);
  const GroupId g = 7;
  RaidLayout layout(geo);
  for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
    ASSERT_EQ(wb.write(layout.group_member(g, k), {}, nullptr), IoStatus::kOk);
  }
  const std::uint64_t reads_before = wb.stats().disk_reads;
  wb.flush(nullptr);
  EXPECT_EQ(wb.full_stripe_writebacks(), 1u);
  EXPECT_EQ(wb.stats().disk_reads, reads_before);  // no RMW reads
}

TEST(WriteBack, LowestDiskTrafficOfAllPolicies) {
  const RaidGeometry geo = paper_geometry(8191);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 4096;
  wcfg.total_requests = 30000;
  wcfg.read_rate = 0.3;
  std::uint64_t wb_disk = 0, wt_disk = 0;
  for (const PolicyKind kind : {PolicyKind::kWB, PolicyKind::kWT}) {
    PolicyConfig cfg;
    cfg.ssd_pages = 4096;
    auto policy = make_policy(kind, cfg, geo);
    const Trace trace = generate_zipf_trace(wcfg);
    const CacheStats s = run_counter_trace(*policy, trace, geo.data_pages());
    if (kind == PolicyKind::kWB) wb_disk = s.disk_writes;
    if (kind == PolicyKind::kWT) wt_disk = s.disk_writes;
  }
  EXPECT_LT(wb_disk, wt_disk / 2);  // coalescing pays off
}

}  // namespace
}  // namespace kdd
