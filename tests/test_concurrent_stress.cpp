// Stress tests for the sharded ConcurrentCache facade and the deterministic
// multi-threaded replay mode.
//
// Run these under ThreadSanitizer (`cmake -DKDD_SANITIZE=thread` or env
// KDD_SANITIZE=thread at configure time) to prove the striped-front-lock /
// inner-policy-mutex locking model: N writer threads over both disjoint and
// overlapping parity groups, with the background cleaner racing all of them.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blockdev/ssd_model.hpp"
#include "harness/harness.hpp"
#include "kdd/concurrent.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"
#include "test_util.hpp"
#include "trace/generators.hpp"

namespace kdd {
namespace {

using ::kdd::testing::ReferenceModel;
using ::kdd::testing::test_page;

RaidGeometry stress_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig stress_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  cfg.clean_high_watermark = 0.25;
  cfg.clean_low_watermark = 0.10;
  return cfg;
}

// N writer threads over *disjoint* parity groups: each thread owns the LBAs
// whose group is congruent to its id, so every thread can check
// read-your-writes against its own private reference model while all of them
// run concurrently (plus the cleaner).
TEST(ConcurrentStress, DisjointGroupWritersReadTheirWrites) {
  const RaidGeometry geo = stress_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(stress_config(), &array, &ssd);
  ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2));

  constexpr unsigned kThreads = 8;
  constexpr int kOpsPerThread = 600;
  const Lba span = std::min<Lba>(array.data_pages(), 640);
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(1000 + t);
      ReferenceModel model;
      Page buf = make_page();
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Draw until the LBA's group belongs to this thread.
        Lba lba = rng.next_below(span);
        while (array.layout().group_of(lba) % kThreads != t) {
          lba = rng.next_below(span);
        }
        if (rng.next_bool(0.6)) {
          const Page data = test_page(lba, static_cast<std::uint64_t>(i) * kThreads + t);
          if (cache.write(lba, data) != IoStatus::kOk) ++failures;
          model.write(lba, data);
        } else {
          if (cache.read(lba, buf) != IoStatus::kOk) ++failures;
          if (model.contains(lba) && buf != model.read(lba)) ++failures;
        }
      }
      // Final readback of everything this thread wrote.
      for (const auto& [lba, expect] : model.pages()) {
        if (cache.read(lba, buf) != IoStatus::kOk || buf != expect) ++failures;
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);

  cache.flush();
  EXPECT_TRUE(array.scrub().empty());
  const ConcurrentCache::FrontStats front = cache.front_stats();
  EXPECT_GT(front.reads + front.writes,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

// N writer threads over *overlapping* parity groups: every thread hammers
// the same narrow LBA range. Interleaving is nondeterministic, so the
// invariants checked are structural: no request fails, parity scrubs clean
// after a flush, and the cache's internal bookkeeping stays consistent.
TEST(ConcurrentStress, OverlappingGroupWritersKeepParityConsistent) {
  const RaidGeometry geo = stress_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(stress_config(), &array, &ssd);
  ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2));

  constexpr unsigned kThreads = 8;
  constexpr int kOpsPerThread = 500;
  constexpr Lba kHotSpan = 64;  // a handful of groups, all shared
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(2000 + t);
      Page buf = make_page();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Lba lba = rng.next_below(kHotSpan);
        if (rng.next_bool(0.7)) {
          const Page data = test_page(lba, rng.next_u64());
          if (cache.write(lba, data) != IoStatus::kOk) ++failures;
        } else {
          if (cache.read(lba, buf) != IoStatus::kOk) ++failures;
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);

  cache.flush();
  kdd.check_invariants();
  EXPECT_TRUE(array.scrub().empty());
  const ConcurrentCache::FrontStats front = cache.front_stats();
  EXPECT_EQ(front.reads + front.writes,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

// The cleaner must keep running while submitters are active, without ever
// tripping invariants (it takes the inner mutex only).
TEST(ConcurrentStress, CleanerRacesSubmitters) {
  const RaidGeometry geo = stress_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(stress_config(), &array, &ssd);
  ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(1));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(7);
    while (!stop.load()) {
      const Lba lba = rng.next_below(128);
      cache.write(lba, test_page(lba, rng.next_u64()));
      // Brief pauses give the cleaner idle windows to claim.
      if (rng.next_bool(0.05)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  writer.join();
  cache.flush();
  EXPECT_TRUE(array.scrub().empty());
  EXPECT_GT(cache.cleaner_passes(), 0u);
}

// Cleaner-pool stress: N writer threads over disjoint parity groups with a
// 4-worker destage pool racing them. Read-your-writes must hold while the
// pool claims groups, folds deltas without the policy lock and commits
// parity behind the writers' backs. (TSan posture: the pool's queue/stripe/
// policy lock ordering is exactly what this test hammers.)
TEST(ConcurrentStress, CleanerPoolRacesDisjointWriters) {
  const RaidGeometry geo = stress_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(stress_config(), &array, &ssd);
  ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(1),
                        /*cleaner_threads=*/4);
  ASSERT_EQ(cache.pool_threads(), 4u);

  constexpr unsigned kThreads = 4;
  constexpr int kOpsPerThread = 500;
  const Lba span = std::min<Lba>(array.data_pages(), 640);
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(3000 + t);
      ReferenceModel model;
      Page buf = make_page();
      for (int i = 0; i < kOpsPerThread; ++i) {
        Lba lba = rng.next_below(span);
        while (array.layout().group_of(lba) % kThreads != t) {
          lba = rng.next_below(span);
        }
        if (rng.next_bool(0.7)) {
          const Page data = test_page(lba, static_cast<std::uint64_t>(i) * kThreads + t);
          if (cache.write(lba, data) != IoStatus::kOk) ++failures;
          model.write(lba, data);
        } else {
          if (cache.read(lba, buf) != IoStatus::kOk) ++failures;
          if (model.contains(lba) && buf != model.read(lba)) ++failures;
        }
      }
      for (const auto& [lba, expect] : model.pages()) {
        if (cache.read(lba, buf) != IoStatus::kOk || buf != expect) ++failures;
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);

  cache.flush();
  kdd.check_invariants();
  EXPECT_TRUE(array.scrub().empty());
}

// Repeated blocking flushes racing writers and the pool: every flush must
// reach its deterministic drain barrier (queues empty, no in-flight batch)
// and leave parity scrubbed clean, while writers keep dirtying new groups.
TEST(ConcurrentStress, PoolFlushBarrierUnderTraffic) {
  const RaidGeometry geo = stress_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(stress_config(), &array, &ssd);
  ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(1),
                        /*cleaner_threads=*/3);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(4000 + t);
      while (!stop.load()) {
        const Lba lba = rng.next_below(256);
        if (cache.write(lba, test_page(lba, rng.next_u64())) != IoStatus::kOk) {
          ++failures;
        }
      }
    });
  }
  std::thread flusher([&] {
    for (int i = 0; i < 8; ++i) {
      cache.flush();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  flusher.join();
  stop.store(true);
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);

  cache.flush();
  kdd.check_invariants();
  EXPECT_TRUE(array.scrub().empty());
  EXPECT_GT(cache.front_stats().flushes, 0u);
}

// The acceptance property of the replay mode: the final logical state after
// a multi-threaded replay is byte-identical to the single-threaded replay of
// the same trace (ops partitioned by parity group, payloads deterministic).
TEST(ConcurrentReplay, MultiThreadedStateMatchesSingleThreaded) {
  SyntheticTraceConfig tcfg = fin1_config(0.01);
  tcfg.seed = 5;
  const Trace trace = generate_synthetic_trace(tcfg);
  const RaidGeometry geo = paper_geometry(tcfg.unique_total());

  std::uint64_t digest1 = 0;
  CacheStats stats1;
  for (const unsigned threads : {1u, 4u}) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 1024;
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = scfg.logical_pages;
    KddCache kdd(cfg, &array, &ssd);
    ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(5));

    const ConcurrentReplayResult r = run_concurrent_trace(
        cache, array.layout(), trace, geo.data_pages(), threads, /*seed=*/3);
    EXPECT_EQ(r.front.reads + r.front.writes, r.ops);
    EXPECT_TRUE(array.scrub().empty());  // parity current at every count
    const std::uint64_t digest = replay_readback_digest(cache, geo.data_pages());
    if (threads == 1) {
      digest1 = digest;
      stats1 = r.stats;
    } else {
      EXPECT_EQ(digest, digest1);
      // Logical request counts are partition-invariant too.
      EXPECT_EQ(r.stats.read_hits + r.stats.read_misses,
                stats1.read_hits + stats1.read_misses);
      EXPECT_EQ(r.stats.write_hits + r.stats.write_misses,
                stats1.write_hits + stats1.write_misses);
    }
  }
}

// fill_replay_page is a pure function of (lba, version, seed).
TEST(ConcurrentReplay, ReplayPagesAreDeterministic) {
  Page a = make_page();
  Page b = make_page();
  fill_replay_page(17, 3, 42, a);
  fill_replay_page(17, 3, 42, b);
  EXPECT_EQ(a, b);
  fill_replay_page(17, 4, 42, b);
  EXPECT_NE(a, b);
  fill_replay_page(18, 3, 42, b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace kdd
