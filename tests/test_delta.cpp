#include "compress/delta.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compress/content.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::test_page;

TEST(Delta, IdenticalPagesProduceTinyDelta) {
  const Page a = test_page(1);
  const Delta d = make_delta(a, a);
  EXPECT_FALSE(d.raw);
  EXPECT_LT(d.packed_size(), 64u);
  EXPECT_EQ(apply_delta(a, d), a);
}

TEST(Delta, CompletelyDifferentPagesFallBackToRaw) {
  const Page a = test_page(1);
  const Page b = test_page(2);
  const Delta d = make_delta(a, b);
  EXPECT_TRUE(d.raw);
  EXPECT_EQ(d.payload.size(), kPageSize);
  EXPECT_EQ(apply_delta(a, d), b);
}

TEST(Delta, SparseChangeRoundTrips) {
  const Page a = test_page(3);
  Page b = a;
  for (int i = 100; i < 164; ++i) b[static_cast<std::size_t>(i)] ^= 0x5a;
  const Delta d = make_delta(a, b);
  EXPECT_FALSE(d.raw);
  EXPECT_LT(d.packed_size(), 256u);
  EXPECT_EQ(apply_delta(a, d), b);
}

TEST(Delta, XorOfDeltaEqualsPageDiff) {
  const Page a = test_page(4);
  Page b = a;
  b[0] ^= 0xff;
  b[4095] ^= 0x01;
  const Delta d = make_delta(a, b);
  EXPECT_EQ(delta_to_xor(d), xor_pages(a, b));
}

TEST(Delta, PackUnpackSingle) {
  const Page a = test_page(5);
  Page b = a;
  b[7] ^= 1;
  const Delta d = make_delta(a, b);
  Page buf = make_page();
  const std::size_t written = pack_delta(d, buf, 100);
  EXPECT_EQ(written, d.packed_size());
  Delta out;
  ASSERT_TRUE(unpack_delta(buf, 100, out));
  EXPECT_EQ(out.raw, d.raw);
  EXPECT_EQ(out.payload, d.payload);
}

TEST(Delta, PackMultipleIntoOnePage) {
  // The DEZ page format: several deltas packed back to back.
  Page dez = make_page();
  std::vector<Delta> deltas;
  std::vector<std::size_t> offsets;
  std::size_t off = 0;
  Rng rng(6);
  for (int i = 0; i < 6; ++i) {
    const Page a = test_page(static_cast<std::uint64_t>(10 + i));
    Page b = a;
    const std::size_t start = rng.next_below(kPageSize - 80);
    for (std::size_t j = 0; j < 80; ++j) b[start + j] ^= 0x33;
    Delta d = make_delta(a, b);
    ASSERT_LE(off + d.packed_size(), kPageSize);
    offsets.push_back(off);
    off += pack_delta(d, dez, off);
    deltas.push_back(std::move(d));
  }
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    Delta out;
    ASSERT_TRUE(unpack_delta(dez, offsets[i], out));
    EXPECT_EQ(out.payload, deltas[i].payload);
  }
}

TEST(Delta, UnpackRejectsOutOfBounds) {
  Page buf(16, 0);
  Delta out;
  EXPECT_FALSE(unpack_delta(buf, 15, out));  // header would overrun
  buf[0] = 0;
  buf[1] = 0xff;
  buf[2] = 0x3f;  // length 16383 overruns
  EXPECT_FALSE(unpack_delta(buf, 0, out));
  buf[0] = 7;  // invalid flag
  buf[1] = buf[2] = 0;
  EXPECT_FALSE(unpack_delta(buf, 0, out));
}

class ContentLocalityTest : public ::testing::TestWithParam<double> {};

TEST_P(ContentLocalityTest, MutationHitsTargetCompressionRatio) {
  const double target = GetParam();
  const ContentGenerator gen(42);
  Rng rng(43);
  OnlineStats ratios;
  for (int i = 0; i < 30; ++i) {
    const Page base = gen.base_page(static_cast<Lba>(i));
    const Page mutated = gen.mutate(base, target, rng);
    const Delta d = make_delta(base, mutated);
    ratios.add(static_cast<double>(d.packed_size()) / kPageSize);
    // Correctness regardless of ratio:
    EXPECT_EQ(apply_delta(base, d), mutated);
  }
  EXPECT_NEAR(ratios.mean(), target, target * 0.35 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ContentLocalityTest,
                         ::testing::Values(0.12, 0.25, 0.50));

TEST(ContentGenerator, BasePagesAreDeterministicAndDistinct) {
  const ContentGenerator gen(1);
  EXPECT_EQ(gen.base_page(5), gen.base_page(5));
  EXPECT_NE(gen.base_page(5), gen.base_page(6));
  const ContentGenerator gen2(2);
  EXPECT_NE(gen.base_page(5), gen2.base_page(5));
}

TEST(Bytes, XorHelpers) {
  const Page a = test_page(20);
  const Page b = test_page(21);
  Page c = xor_pages(a, b);
  EXPECT_NE(c, a);
  xor_into(c, b);
  EXPECT_EQ(c, a);
  EXPECT_FALSE(all_zero(a));
  EXPECT_TRUE(all_zero(make_page()));
  EXPECT_TRUE(all_zero(xor_pages(a, a)));
}

}  // namespace
}  // namespace kdd
