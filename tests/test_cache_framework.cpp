#include <gtest/gtest.h>

#include "cache/backend.hpp"
#include "cache/metadata_log.hpp"
#include "cache/nvram.hpp"
#include "cache/sets.hpp"
#include "common/rng.hpp"

namespace kdd {
namespace {

TEST(CacheSets, InitialStateAllFree) {
  CacheSets sets(64, 8);
  EXPECT_EQ(sets.num_sets(), 8u);
  EXPECT_EQ(sets.pages(), 64u);
  for (std::uint32_t s = 0; s < sets.num_sets(); ++s) {
    EXPECT_EQ(sets.free_count(s), 8u);
    EXPECT_EQ(sets.dez_count(s), 0u);
    EXPECT_EQ(sets.lru_tail(s), CacheSets::kNone);
  }
  EXPECT_EQ(sets.count_state(PageState::kFree), 64u);
}

TEST(CacheSets, StateTransitionsMaintainCounters) {
  CacheSets sets(16, 8);
  sets.set_state(0, PageState::kClean);
  EXPECT_EQ(sets.free_count(0), 7u);
  sets.set_state(0, PageState::kOld);
  EXPECT_EQ(sets.free_count(0), 7u);
  sets.set_state(1, PageState::kDelta);
  EXPECT_EQ(sets.dez_count(0), 1u);
  EXPECT_EQ(sets.free_count(0), 6u);
  sets.reset_slot(1);
  EXPECT_EQ(sets.dez_count(0), 0u);
  EXPECT_EQ(sets.free_count(0), 7u);
  sets.reset_slot(0);
  EXPECT_EQ(sets.free_count(0), 8u);
}

TEST(CacheSets, LruEvictionOrder) {
  CacheSets sets(8, 8);
  for (std::uint32_t i = 0; i < 4; ++i) {
    sets.slot(i).lba = i;
    sets.set_state(i, PageState::kClean);
  }
  // LRU tail is the first-inserted slot.
  EXPECT_EQ(sets.lru_tail(0), 0u);
  sets.lru_touch(0);
  EXPECT_EQ(sets.lru_tail(0), 1u);
  sets.reset_slot(1);
  EXPECT_EQ(sets.lru_tail(0), 2u);
}

TEST(CacheSets, OnlyCleanPagesInLru) {
  CacheSets sets(8, 8);
  sets.slot(0).lba = 0;
  sets.set_state(0, PageState::kClean);
  sets.set_state(0, PageState::kOld);  // leaves the LRU
  EXPECT_EQ(sets.lru_tail(0), CacheSets::kNone);
  sets.set_state(0, PageState::kClean);  // rejoins
  EXPECT_EQ(sets.lru_tail(0), 0u);
}

TEST(CacheSets, FindVariants) {
  CacheSets sets(16, 8);
  sets.slot(3).lba = 77;
  sets.set_state(3, PageState::kOld);
  sets.slot(4).lba = 77;
  sets.set_state(4, PageState::kOldVersion);  // LeavO pinned old version
  EXPECT_EQ(sets.find_data(0, 77), 3u);       // kOldVersion is not current data
  EXPECT_EQ(sets.find_state(0, 77, PageState::kOldVersion), 4u);
  EXPECT_EQ(sets.find_data(0, 99), CacheSets::kNone);
  EXPECT_NE(sets.find_free(0), CacheSets::kNone);
  EXPECT_EQ(sets.find_free(1), 8u);
}

TEST(StagingBuffer, FifoOrderAndCoalescing) {
  StagingBuffer buf(kPageSize);
  buf.put({10, 0, 100, {}});
  buf.put({20, 1, 200, {}});
  buf.put({10, 0, 150, {}});  // coalesces: newest delta for page 10 wins
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.bytes_used(), 350u);
  const auto all = buf.take_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].lba, 20u);  // 10 was re-staged after 20
  EXPECT_EQ(all[1].lba, 10u);
  EXPECT_EQ(all[1].packed_size, 150u);
  EXPECT_TRUE(buf.empty());
}

TEST(StagingBuffer, CapacityAccounting) {
  StagingBuffer buf(kPageSize);
  EXPECT_TRUE(buf.fits(kPageSize));
  buf.put({1, 0, 4000, {}});
  EXPECT_FALSE(buf.fits(200));
  EXPECT_TRUE(buf.fits(96));
  buf.erase(1);
  EXPECT_TRUE(buf.fits(kPageSize));
}

TEST(StagingBuffer, FindAndErase) {
  StagingBuffer buf(kPageSize);
  buf.put({5, 9, 64, {}});
  ASSERT_NE(buf.find(5), nullptr);
  EXPECT_EQ(buf.find(5)->daz_idx, 9u);
  EXPECT_EQ(buf.find(6), nullptr);
  EXPECT_TRUE(buf.erase(5));
  EXPECT_FALSE(buf.erase(5));
  EXPECT_EQ(buf.bytes_used(), 0u);
}

TEST(MetadataBuffer, CoalescesByDazSlot) {
  MetadataBuffer buf(4);
  MetadataEntry e;
  e.daz_idx = 1;
  e.state = PageState::kClean;
  buf.put(e);
  e.state = PageState::kOld;
  buf.put(e);  // overwrites
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_TRUE(buf.contains(1));
  EXPECT_EQ(buf.entries()[0].state, PageState::kOld);
  e.daz_idx = 2;
  buf.put(e);
  e.daz_idx = 3;
  buf.put(e);
  e.daz_idx = 4;
  buf.put(e);
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.drain().size(), 4u);
  EXPECT_TRUE(buf.empty());
}

class MetadataLogTest : public ::testing::Test {
 protected:
  MetadataLogTest()
      : ssd_(/*metadata_pages=*/8, /*cache_pages=*/1024),
        nvram_(kPageSize, 16),
        sets_(1024, 16),
        log_(&ssd_, &nvram_, &sets_, 0.75) {}

  MetadataEntry entry(std::uint32_t idx, PageState state = PageState::kClean) {
    MetadataEntry e;
    e.daz_idx = idx;
    e.lba_raid = idx * 10;
    e.state = state;
    return e;
  }

  CacheSsd ssd_;
  NvramState nvram_;
  CacheSets sets_;
  MetadataLog log_;
};

TEST_F(MetadataLogTest, BufferCommitsWhenFull) {
  for (std::uint32_t i = 0; i < 15; ++i) log_.add_entry(entry(i), nullptr);
  EXPECT_EQ(log_.pages_written(), 0u);
  log_.add_entry(entry(15), nullptr);  // 16th entry fills the buffer
  EXPECT_EQ(log_.pages_written(), 1u);
  EXPECT_EQ(log_.used_pages(), 1u);
  // Homes updated on commit.
  EXPECT_EQ(sets_.slot(3).home_log_page, 0u);
}

TEST_F(MetadataLogTest, ReplayReturnsCommittedEntries) {
  for (std::uint32_t i = 0; i < 16; ++i) log_.add_entry(entry(i), nullptr);
  const auto entries = log_.replay();
  ASSERT_EQ(entries.size(), 16u);
  EXPECT_EQ(entries[7].daz_idx, 7u);
  EXPECT_EQ(entries[7].lba_raid, 70u);
}

TEST_F(MetadataLogTest, GcRewritesLiveEntriesOldestFirst) {
  // Keep slot 0's entry live forever while churning others: GC must carry it
  // forward and the used window must stay under the threshold.
  sets_.slot(0).lba = 0;
  sets_.set_state(0, PageState::kClean);
  log_.add_entry(entry(0), nullptr);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto idx = static_cast<std::uint32_t>(1 + rng.next_below(64));
    sets_.slot(idx).lba = idx;
    if (sets_.slot(idx).state == PageState::kFree) {
      sets_.set_state(idx, PageState::kClean);
    }
    log_.add_entry(entry(idx), nullptr);
  }
  log_.commit_buffer(nullptr);
  EXPECT_GT(log_.gc_passes(), 0u);
  EXPECT_LT(log_.used_pages(), log_.partition_pages());
  // Slot 0's mapping must still be recoverable.
  bool found = false;
  for (const MetadataEntry& e : log_.replay()) {
    if (e.daz_idx == 0 && e.lba_raid == 0) found = true;
  }
  for (const MetadataEntry& e : nvram_.metadata.entries()) {
    if (e.daz_idx == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(MetadataLogTest, FreeEntriesAreDroppedAtGc) {
  // Slots that end free should not be carried forward forever.
  for (std::uint32_t round = 0; round < 50; ++round) {
    for (std::uint32_t i = 0; i < 32; ++i) {
      sets_.slot(i).lba = i;
      if (sets_.slot(i).state == PageState::kFree) {
        sets_.set_state(i, PageState::kClean);
      }
      log_.add_entry(entry(i), nullptr);
      sets_.reset_slot(i);
      log_.add_entry(entry(i, PageState::kFree), nullptr);
    }
  }
  log_.commit_buffer(nullptr);
  // Replay must leave every slot free (free entries win).
  std::unordered_map<std::uint32_t, MetadataEntry> latest;
  for (const MetadataEntry& e : log_.replay()) latest[e.daz_idx] = e;
  for (const MetadataEntry& e : nvram_.metadata.entries()) latest[e.daz_idx] = e;
  for (const auto& [idx, e] : latest) {
    EXPECT_EQ(e.state, PageState::kFree) << "slot " << idx;
  }
}

TEST_F(MetadataLogTest, MetadataWritesAreCounted) {
  for (std::uint32_t i = 0; i < 64; ++i) log_.add_entry(entry(i % 16), nullptr);
  CacheStats stats;
  ssd_.export_stats(stats);
  EXPECT_EQ(stats.metadata_ssd_writes(), log_.pages_written());
}

TEST(CacheSsdTest, WriteKindsTracked) {
  CacheSsd ssd(4, 64);
  ssd.write_data(0, SsdWriteKind::kReadFill, {}, nullptr);
  ssd.write_data(1, SsdWriteKind::kReadFill, {}, nullptr);
  ssd.write_data(2, SsdWriteKind::kDeltaCommit, {}, nullptr);
  ssd.write_metadata(0, {}, nullptr);
  EXPECT_EQ(ssd.total_writes(), 4u);
  CacheStats stats;
  ssd.export_stats(stats);
  EXPECT_EQ(stats.ssd_writes[static_cast<int>(SsdWriteKind::kReadFill)], 2u);
  EXPECT_EQ(stats.ssd_writes[static_cast<int>(SsdWriteKind::kDeltaCommit)], 1u);
  EXPECT_EQ(stats.metadata_ssd_writes(), 1u);
}

TEST(CacheSsdTest, PlanRecordsSsdTarget) {
  CacheSsd ssd(4, 64);
  IoPlan plan;
  ssd.read_data(10, {}, &plan);
  ssd.write_data(10, SsdWriteKind::kWriteUpdate, {}, &plan);
  ASSERT_EQ(plan.total_ops(), 2u);
  EXPECT_EQ(plan.phases()[0][0].target, DeviceOp::Target::kSsd);
  EXPECT_EQ(plan.phases()[0][0].page, 14u);  // metadata partition offset applied
}

TEST(RaidBackendTest, CounterModeCountsAndStaleness) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  RaidBackend raid(geo);
  EXPECT_FALSE(raid.real());
  IoPlan plan;
  raid.write_page(0, {}, &plan);
  EXPECT_EQ(raid.disk_reads(), 2u);
  EXPECT_EQ(raid.disk_writes(), 2u);
  EXPECT_EQ(plan.phases().size(), 2u);

  raid.write_page_nopar(1, {}, nullptr);
  EXPECT_TRUE(raid.group_stale(raid.layout().group_of(1)));
  EXPECT_EQ(raid.stale_group_count(), 1u);
  raid.update_parity_rmw(raid.layout().group_of(1), {}, nullptr);
  EXPECT_EQ(raid.stale_group_count(), 0u);
}

// ---------------------------------------------------------------------------
// Metadata log torn-write detection (prototype mode)
// ---------------------------------------------------------------------------

class MetadataLogTornTest : public ::testing::Test {
 protected:
  static SsdConfig ssd_cfg() {
    SsdConfig cfg;
    cfg.logical_pages = 512;
    cfg.pages_per_block = 16;
    return cfg;
  }

  MetadataLogTornTest()
      : ssd_(ssd_cfg()),
        cssd_(/*metadata_pages=*/8, /*cache_pages=*/256, &ssd_),
        nvram_(kPageSize, MetadataLog::kEntriesPerPage),
        sets_(256, 16),
        log_(&cssd_, &nvram_, &sets_, 0.9) {}

  MetadataEntry entry(std::uint32_t idx) {
    MetadataEntry e;
    e.daz_idx = idx;
    e.lba_raid = idx * 7;
    e.state = PageState::kClean;
    return e;
  }

  SsdModel ssd_;
  CacheSsd cssd_;
  NvramState nvram_;
  CacheSets sets_;
  MetadataLog log_;
};

TEST_F(MetadataLogTornTest, TornTailEntriesAreDiscardedOnReplay) {
  // Commit one full log page (240 checksummed entries).
  for (std::uint32_t i = 0; i < MetadataLog::kEntriesPerPage; ++i) {
    log_.add_entry(entry(i), nullptr);
  }
  ASSERT_EQ(log_.pages_written(), 1u);

  // Simulate a torn page write: re-write the physical page with the last 40
  // entries garbled, going through the fault decorator so the stored page
  // checksum matches the torn contents (the device cannot detect a torn
  // write on its own — only the per-entry CRC can).
  Page page = make_page();
  ASSERT_EQ(cssd_.read_metadata(0, page, nullptr), IoStatus::kOk);
  const std::size_t keep = MetadataLog::kEntriesPerPage - 40;
  const std::size_t torn_at =
      MetadataLog::kPageHeaderSize + keep * MetadataEntry::kSerializedSize;
  for (std::size_t b = torn_at; b < page.size(); ++b) page[b] ^= 0x5a;
  ASSERT_EQ(cssd_.faults()->write(0, page), IoStatus::kOk);

  const std::vector<MetadataEntry> entries = log_.replay();
  EXPECT_EQ(entries.size(), keep);
  EXPECT_EQ(log_.torn_entries_dropped(), 40u);
  EXPECT_EQ(log_.bad_pages_skipped(), 0u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].lba_raid, i * 7);  // valid prefix intact
  }
}

TEST_F(MetadataLogTornTest, NeverPersistedPageIsSkippedOnReplay) {
  for (std::uint32_t i = 0; i < MetadataLog::kEntriesPerPage; ++i) {
    log_.add_entry(entry(i), nullptr);
  }
  ASSERT_EQ(log_.pages_written(), 1u);
  // A power cut can strike after NVRAM's tail counter was bumped but before
  // the page write reached the media: the physical slot still holds an old
  // lap (here: a blank page), whose sequence number cannot match.
  ++nvram_.log_tail;
  const std::vector<MetadataEntry> entries = log_.replay();
  EXPECT_EQ(entries.size(), MetadataLog::kEntriesPerPage);  // page 0 intact
  EXPECT_EQ(log_.bad_pages_skipped(), 1u);
  --nvram_.log_tail;
}

TEST_F(MetadataLogTornTest, EntryCrcCoversPageSequence) {
  // A stale page from a previous lap of the circular log must not replay,
  // even if its own contents are internally consistent. Write seq-0's page,
  // then pretend the log has wrapped so the same physical slot is expected
  // to hold seq-8 (partition_pages == 8).
  for (std::uint32_t i = 0; i < MetadataLog::kEntriesPerPage; ++i) {
    log_.add_entry(entry(i), nullptr);
  }
  ASSERT_EQ(log_.pages_written(), 1u);
  nvram_.log_head = 8;
  nvram_.log_tail = 9;  // expect seq 8 in physical slot 0, which holds seq 0
  const std::vector<MetadataEntry> entries = log_.replay();
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(log_.bad_pages_skipped(), 1u);
}

TEST(RaidBackendTest, PartialRmwKeepsCounterStale) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  RaidBackend raid(geo);
  raid.write_page_nopar(1, {}, nullptr);
  const GroupId g = raid.layout().group_of(1);
  raid.update_parity_rmw(g, {}, nullptr, /*finalize=*/false);
  EXPECT_TRUE(raid.group_stale(g));
  raid.update_parity_reconstruct_cached(g, std::vector<const Page*>(4, nullptr),
                                        nullptr);
  EXPECT_FALSE(raid.group_stale(g));
}

}  // namespace
}  // namespace kdd
