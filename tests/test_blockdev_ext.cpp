// Tests for the block-device extensions: GC policy options, static wear
// leveling and the file-backed device.
#include <gtest/gtest.h>

#include <filesystem>

#include "blockdev/file_device.hpp"
#include "blockdev/ssd_model.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

SsdConfig base_cfg() {
  SsdConfig cfg;
  cfg.logical_pages = 512;
  cfg.pages_per_block = 16;
  cfg.overprovision = 0.10;
  cfg.gc_free_block_threshold = 3;
  return cfg;
}

TEST(SsdGcPolicy, CostBenefitPreservesData) {
  SsdConfig cfg = base_cfg();
  cfg.gc_policy = GcPolicy::kCostBenefit;
  SsdModel ssd(cfg);
  ReferenceModel model;
  Rng rng(1);
  for (int i = 0; i < 15000; ++i) {
    const Lba lba = rng.next_below(ssd.num_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(ssd.write(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  Page out = make_page();
  for (Lba lba = 0; lba < ssd.num_pages(); ++lba) {
    ASSERT_EQ(ssd.read(lba, out), IoStatus::kOk);
    ASSERT_EQ(out, model.read(lba));
  }
}

TEST(SsdGcPolicy, CostBenefitHelpsSkewedWorkloads) {
  // 90 % of writes hit 10 % of pages: cost-benefit segregates hot and cold
  // blocks and should not be dramatically worse than greedy (it often wins
  // on WA for such skew; we assert it stays within 1.5x).
  auto run = [&](GcPolicy policy) {
    SsdConfig cfg = base_cfg();
    cfg.gc_policy = policy;
    SsdModel ssd(cfg);
    Rng rng(2);
    for (Lba lba = 0; lba < ssd.num_pages(); ++lba) ssd.write(lba, test_page(lba));
    for (int i = 0; i < 30000; ++i) {
      const Lba lba = rng.next_bool(0.9) ? rng.next_below(51)
                                         : rng.next_below(ssd.num_pages());
      ssd.write(lba, test_page(lba));
    }
    return ssd.wear().write_amplification();
  };
  const double greedy = run(GcPolicy::kGreedy);
  const double cb = run(GcPolicy::kCostBenefit);
  EXPECT_LT(cb, greedy * 1.5);
  EXPECT_GT(cb, 1.0);
}

TEST(SsdWearLeveling, ReducesEraseSpreadUnderStaticData) {
  // Half the device holds never-updated (static) data; the other half churns.
  auto spread = [&](std::uint32_t wear_level_spread) {
    SsdConfig cfg = base_cfg();
    cfg.wear_level_spread = wear_level_spread;
    SsdModel ssd(cfg);
    for (Lba lba = 0; lba < ssd.num_pages(); ++lba) ssd.write(lba, test_page(lba));
    Rng rng(3);
    for (int i = 0; i < 60000; ++i) {
      ssd.write(rng.next_below(ssd.num_pages() / 2), test_page(7));
    }
    const SsdWearStats wear = ssd.wear();
    return wear.max_erase_count -
           static_cast<std::uint32_t>(wear.mean_erase_count);
  };
  EXPECT_LT(spread(4), spread(0));
}

TEST(SsdWearLeveling, DataIntactWithLevelingEnabled) {
  SsdConfig cfg = base_cfg();
  cfg.wear_level_spread = 2;
  SsdModel ssd(cfg);
  ReferenceModel model;
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const Lba lba = rng.next_bool(0.8) ? rng.next_below(64)
                                       : rng.next_below(ssd.num_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(ssd.write(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  Page out = make_page();
  for (Lba lba = 0; lba < ssd.num_pages(); ++lba) {
    ASSERT_EQ(ssd.read(lba, out), IoStatus::kOk);
    ASSERT_EQ(out, model.read(lba));
  }
}

class FileDeviceTest : public ::testing::Test {
 protected:
  FileDeviceTest() : path_(::testing::TempDir() + "kdd_file_device.img") {}
  ~FileDeviceTest() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(FileDeviceTest, ReadWriteRoundTrip) {
  FileBlockDevice dev(path_, 64);
  ASSERT_EQ(dev.write(5, test_page(5)), IoStatus::kOk);
  Page out = make_page();
  ASSERT_EQ(dev.read(5, out), IoStatus::kOk);
  EXPECT_EQ(out, test_page(5));
  EXPECT_TRUE(dev.sync());
}

TEST_F(FileDeviceTest, UnwrittenReadsZero) {
  FileBlockDevice dev(path_, 64);
  Page out(kPageSize, 0xcc);
  ASSERT_EQ(dev.read(63, out), IoStatus::kOk);
  EXPECT_TRUE(all_zero(out));
}

TEST_F(FileDeviceTest, ContentsSurviveReopen) {
  {
    FileBlockDevice dev(path_, 64);
    ASSERT_EQ(dev.write(9, test_page(9)), IoStatus::kOk);
    ASSERT_TRUE(dev.sync());
  }
  FileBlockDevice reopened(path_, 64);
  Page out = make_page();
  ASSERT_EQ(reopened.read(9, out), IoStatus::kOk);
  EXPECT_EQ(out, test_page(9));
}

TEST_F(FileDeviceTest, FailureBlocksIo) {
  FileBlockDevice dev(path_, 16);
  dev.fail();
  Page buf = make_page();
  EXPECT_EQ(dev.read(0, buf), IoStatus::kFailed);
  EXPECT_EQ(dev.write(0, buf), IoStatus::kFailed);
  EXPECT_FALSE(dev.sync());
}

TEST(FileDevice, BadPathThrows) {
  EXPECT_THROW(FileBlockDevice("/nonexistent-dir/x.img", 4), std::runtime_error);
}

}  // namespace
}  // namespace kdd
