#include "raid/raid_array.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry geo5() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  return geo;
}

RaidGeometry geo6() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid6;
  geo.num_disks = 6;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  return geo;
}

void verify_all(RaidArray& array, const ReferenceModel& model) {
  Page buf = make_page();
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk) << "lba " << lba;
    ASSERT_EQ(buf, model.read(lba)) << "lba " << lba;
  }
}

TEST(RaidArray, WriteReadRoundTrip) {
  RaidArray array(geo5());
  ReferenceModel model;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  verify_all(array, model);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RaidArray, RmwPlanShape) {
  RaidArray array(geo5());
  IoPlan plan;
  ASSERT_EQ(array.write_page(7, test_page(7), &plan), IoStatus::kOk);
  // RAID-5 small write: 2 reads then 2 writes.
  ASSERT_EQ(plan.phases().size(), 2u);
  EXPECT_EQ(plan.phases()[0].size(), 2u);
  EXPECT_EQ(plan.phases()[1].size(), 2u);
  EXPECT_EQ(plan.phases()[0][0].kind, IoKind::kRead);
  EXPECT_EQ(plan.phases()[1][0].kind, IoKind::kWrite);
}

TEST(RaidArray, Raid6RmwTouchesBothParities) {
  RaidArray array(geo6());
  IoPlan plan;
  ASSERT_EQ(array.write_page(3, test_page(3), &plan), IoStatus::kOk);
  ASSERT_EQ(plan.phases().size(), 2u);
  EXPECT_EQ(plan.phases()[0].size(), 3u);  // data + P + Q reads
  EXPECT_EQ(plan.phases()[1].size(), 3u);
  EXPECT_TRUE(array.scrub().empty());
}

class DegradedReadTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DegradedReadTest, Raid5SurvivesAnySingleDiskLoss) {
  RaidArray array(geo5());
  ReferenceModel model;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  array.fail_disk(GetParam());
  verify_all(array, model);
}

INSTANTIATE_TEST_SUITE_P(EachDisk, DegradedReadTest, ::testing::Values(0u, 1u, 2u, 3u, 4u));

TEST(RaidArray, Raid6SurvivesTwoDiskLoss) {
  RaidArray array(geo6());
  ReferenceModel model;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  for (std::uint32_t d1 = 0; d1 < 6; ++d1) {
    for (std::uint32_t d2 = d1 + 1; d2 < 6; ++d2) {
      RaidArray fresh(geo6());
      for (const auto& [lba, page] : model.pages()) {
        ASSERT_EQ(fresh.write_page(lba, page), IoStatus::kOk);
      }
      fresh.fail_disk(d1);
      fresh.fail_disk(d2);
      Page buf = make_page();
      for (Lba lba = 0; lba < fresh.data_pages(); lba += 7) {
        ASSERT_EQ(fresh.read_page(lba, buf), IoStatus::kOk)
            << "disks " << d1 << "," << d2 << " lba " << lba;
        ASSERT_EQ(buf, model.read(lba));
      }
    }
  }
}

TEST(RaidArray, Raid5ThreeLossesFail) {
  RaidArray array(geo5());
  array.fail_disk(0);
  array.fail_disk(1);
  Page buf = make_page();
  // Some page on disk 0 or 1 becomes unreadable (double failure on RAID-5).
  bool any_failed = false;
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    if (array.read_page(lba, buf) == IoStatus::kFailed) any_failed = true;
  }
  EXPECT_TRUE(any_failed);
}

TEST(RaidArray, DegradedWritesKeepDataReadable) {
  RaidArray array(geo5());
  ReferenceModel model;
  Rng rng(4);
  array.fail_disk(2);
  for (int i = 0; i < 200; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    const Page data = test_page(lba, 1000u + static_cast<std::uint64_t>(i));
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  verify_all(array, model);
}

TEST(RaidArray, RebuildRestoresFailedDisk) {
  RaidArray array(geo5());
  ReferenceModel model;
  Rng rng(5);
  for (int i = 0; i < 250; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  array.fail_disk(1);
  EXPECT_EQ(array.rebuild_disk(1), 0u);  // no stale parity -> safe rebuild
  EXPECT_FALSE(array.disk_failed(1));
  verify_all(array, model);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RaidArray, NoParWriteMarksGroupStaleAndScrubAgrees) {
  RaidArray array(geo5());
  Rng rng(6);
  std::set<GroupId> expected;
  for (int i = 0; i < 40; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    ASSERT_EQ(array.write_page_nopar(lba, test_page(lba, 9)), IoStatus::kOk);
    expected.insert(array.layout().group_of(lba));
  }
  EXPECT_EQ(array.stale_group_count(), expected.size());
  const std::vector<GroupId> bad = array.scrub();
  // Every scrub mismatch must be a tracked-stale group. (A nopar write can
  // coincidentally leave parity consistent if the data did not change, but
  // test_page contents always differ from zero-initialised disks.)
  EXPECT_EQ(std::set<GroupId>(bad.begin(), bad.end()), expected);
}

TEST(RaidArray, UpdateParityRmwRepairsStaleGroups) {
  RaidArray array(geo5());
  const Lba lba = 13;
  const Page before = test_page(lba, 0);
  ASSERT_EQ(array.write_page(lba, before), IoStatus::kOk);
  const Page after = test_page(lba, 1);
  ASSERT_EQ(array.write_page_nopar(lba, after), IoStatus::kOk);
  EXPECT_EQ(array.stale_group_count(), 1u);

  const Page diff = xor_pages(before, after);
  const GroupId g = array.layout().group_of(lba);
  const GroupDelta delta{array.layout().index_in_group(lba), &diff};
  ASSERT_EQ(array.update_parity_rmw(g, {&delta, 1}), IoStatus::kOk);
  EXPECT_EQ(array.stale_group_count(), 0u);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RaidArray, PartialRmwKeepsGroupStale) {
  RaidArray array(geo5());
  const Lba a = 0;
  const Lba b = array.layout().group_member(array.layout().group_of(0), 1);
  ASSERT_EQ(array.write_page(a, test_page(a, 0)), IoStatus::kOk);
  ASSERT_EQ(array.write_page(b, test_page(b, 0)), IoStatus::kOk);
  ASSERT_EQ(array.write_page_nopar(a, test_page(a, 1)), IoStatus::kOk);
  ASSERT_EQ(array.write_page_nopar(b, test_page(b, 1)), IoStatus::kOk);

  const Page diff_a = xor_pages(test_page(a, 0), test_page(a, 1));
  const GroupId g = array.layout().group_of(a);
  const GroupDelta delta{array.layout().index_in_group(a), &diff_a};
  ASSERT_EQ(array.update_parity_rmw(g, {&delta, 1}, nullptr, /*finalize=*/false),
            IoStatus::kOk);
  EXPECT_TRUE(array.group_stale(g));
  // Folding in the second delta finalizes the group.
  const Page diff_b = xor_pages(test_page(b, 0), test_page(b, 1));
  const GroupDelta delta_b{array.layout().index_in_group(b), &diff_b};
  ASSERT_EQ(array.update_parity_rmw(g, {&delta_b, 1}), IoStatus::kOk);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RaidArray, ResyncAllStaleRepairsEverything) {
  RaidArray array(geo5());
  Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    ASSERT_EQ(array.write_page_nopar(lba, test_page(lba, 2)), IoStatus::kOk);
  }
  const std::uint64_t stale = array.stale_group_count();
  EXPECT_GT(stale, 0u);
  EXPECT_EQ(array.resync_all_stale(), stale);
  EXPECT_EQ(array.stale_group_count(), 0u);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RaidArray, RebuildFromStaleParityIsDetected) {
  // The vulnerability window of Section II-B: rebuilding data from stale
  // parity yields corrupted contents, and rebuild_disk reports it.
  RaidArray array(geo5());
  const Lba lba = 5;
  ASSERT_EQ(array.write_page(lba, test_page(lba, 0)), IoStatus::kOk);
  ASSERT_EQ(array.write_page_nopar(lba, test_page(lba, 1)), IoStatus::kOk);
  const std::uint32_t disk = array.layout().map(lba).disk;
  array.fail_disk(disk);
  EXPECT_GT(array.rebuild_disk(disk), 0u);
  Page buf = make_page();
  ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
  EXPECT_NE(buf, test_page(lba, 1)) << "rebuild from stale parity should corrupt";
}

TEST(RaidArray, UpdateParityReconstructUsesCallerData) {
  RaidArray array(geo5());
  const GroupId g = 3;
  const std::uint32_t dd = array.geometry().data_disks();
  std::vector<Page> current(dd);
  for (std::uint32_t k = 0; k < dd; ++k) {
    const Lba lba = array.layout().group_member(g, k);
    current[k] = test_page(lba, 7);
    ASSERT_EQ(array.write_page_nopar(lba, current[k]), IoStatus::kOk);
  }
  std::vector<const Page*> ptrs;
  for (const Page& p : current) ptrs.push_back(&p);
  IoPlan plan;
  ASSERT_EQ(array.update_parity_reconstruct(g, ptrs, &plan), IoStatus::kOk);
  // All data supplied: no disk reads, only the parity write.
  ASSERT_EQ(plan.phases().size(), 1u);
  EXPECT_EQ(plan.phases()[0].size(), 1u);
  EXPECT_EQ(plan.phases()[0][0].kind, IoKind::kWrite);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RaidArray, FullStripeWriteNeedsNoReads) {
  RaidArray array(geo5());
  const GroupId g = 9;
  std::vector<Page> data;
  for (std::uint32_t k = 0; k < array.geometry().data_disks(); ++k) {
    data.push_back(test_page(array.layout().group_member(g, k), 4));
  }
  IoPlan plan;
  ASSERT_EQ(array.write_group(g, data, &plan), IoStatus::kOk);
  ASSERT_EQ(plan.phases().size(), 1u);
  EXPECT_EQ(plan.phases()[0].size(), 5u);  // 4 data + parity
  EXPECT_TRUE(array.scrub().empty());
  Page buf = make_page();
  for (std::uint32_t k = 0; k < array.geometry().data_disks(); ++k) {
    ASSERT_EQ(array.read_page(array.layout().group_member(g, k), buf), IoStatus::kOk);
    EXPECT_EQ(buf, data[k]);
  }
}

TEST(RaidArray, Raid6ScrubCatchesCorruption) {
  RaidArray array(geo6());
  ASSERT_EQ(array.write_page(11, test_page(11)), IoStatus::kOk);
  EXPECT_TRUE(array.scrub().empty());
  const DiskAddr a = array.layout().map(11);
  array.disk(a.disk).corrupt_page(a.page, 0x42);
  const std::vector<GroupId> bad = array.scrub();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], array.layout().group_of(11));
}

TEST(RaidArray, ScrubAndRepairFixesCorruptedParity) {
  RaidArray array(geo5());
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    ASSERT_EQ(array.write_page(lba, test_page(lba)), IoStatus::kOk);
  }
  // Corrupt two parity pages directly (e.g. latent media error).
  const DiskAddr p1 = array.layout().parity_addr(3);
  const DiskAddr p2 = array.layout().parity_addr(17);
  array.disk(p1.disk).corrupt_page(p1.page, 0x81);
  array.disk(p2.disk).corrupt_page(p2.page, 0x42);
  EXPECT_EQ(array.scrub().size(), 2u);
  EXPECT_EQ(array.scrub_and_repair(), 2u);
  EXPECT_TRUE(array.scrub().empty());
  // Data (the authority) is untouched.
  Page buf = make_page();
  for (int i = 0; i < 50; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
  }
}

TEST(RaidArray, Raid0HasNoParityOverhead) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid0;
  geo.num_disks = 4;
  geo.chunk_pages = 4;
  geo.disk_pages = 32;
  RaidArray array(geo);
  IoPlan plan;
  ASSERT_EQ(array.write_page(0, test_page(0), &plan), IoStatus::kOk);
  EXPECT_EQ(plan.total_ops(), 1u);
  Page buf = make_page();
  ASSERT_EQ(array.read_page(0, buf), IoStatus::kOk);
  EXPECT_EQ(buf, test_page(0));
}

TEST(RaidArray, CountersTrackDeviceIo) {
  RaidArray array(geo5());
  array.reset_counters();
  ASSERT_EQ(array.write_page(0, test_page(0)), IoStatus::kOk);
  EXPECT_EQ(array.total_disk_reads(), 2u);   // RMW: old data + old parity
  EXPECT_EQ(array.total_disk_writes(), 2u);  // data + parity
}

// ---------------------------------------------------------------------------
// Partial faults and self-healing
// ---------------------------------------------------------------------------

TEST(RaidFaults, ReadRepairHealsLatentSectorError) {
  RaidArray array(geo5());
  ReferenceModel model;
  for (Lba lba = 0; lba < 32; ++lba) {
    const Page data = test_page(lba);
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  // A latent sector error under lba 5: the disk is healthy, one page is not.
  const Lba victim = 5;
  const DiskAddr a = array.layout().map(victim);
  array.faults(a.disk).inject_media_error(a.page);
  ASSERT_EQ(array.faults(a.disk).pending_media_errors(), 1u);

  // The read succeeds anyway (parity reconstruction) and the healing path is
  // visible in the fault counters: the error was *hit* and then *healed* by
  // the write-back — not just papered over.
  Page buf = make_page();
  ASSERT_EQ(array.read_page(victim, buf), IoStatus::kOk);
  EXPECT_EQ(buf, model.read(victim));
  EXPECT_EQ(array.read_repairs(), 1u);
  const FaultCounters& fc = array.faults(a.disk).fault_counters();
  EXPECT_EQ(fc.media_error_reads, 1u);
  EXPECT_EQ(fc.media_errors_healed, 1u);
  EXPECT_EQ(array.faults(a.disk).pending_media_errors(), 0u);

  // Healed for real: the next read is served by the media, no second repair.
  ASSERT_EQ(array.read_page(victim, buf), IoStatus::kOk);
  EXPECT_EQ(buf, model.read(victim));
  EXPECT_EQ(array.read_repairs(), 1u);
  EXPECT_EQ(array.faults(a.disk).fault_counters().media_error_reads, 1u);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RaidFaults, RebuildDoubleFaultReportsExactLostStripes) {
  const RaidGeometry geo = geo5();
  RaidArray array(geo);
  ReferenceModel model;
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    const Page data = test_page(lba);
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }

  const std::uint32_t failed = 2;
  // Pick two stripes in different rows where disk 2 holds *data*, and plant a
  // latent sector error on a survivor member of each — the classic
  // double-fault during rebuild.
  std::vector<GroupId> sabotaged;
  std::vector<Lba> lost_lbas;
  for (std::uint64_t row = 0; row < geo.stripe_rows() && sabotaged.size() < 2;
       row += 3) {
    if (array.layout().parity_disk(row) == failed) continue;
    const GroupId g = row * geo.chunk_pages;  // first group of the row
    std::uint32_t failed_idx = geo.data_disks();
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      if (array.layout().data_disk(row, k) == failed) failed_idx = k;
    }
    ASSERT_LT(failed_idx, geo.data_disks());
    // Survivor member: any other data member of the group.
    const std::uint32_t survivor_idx = failed_idx == 0 ? 1 : 0;
    const Lba survivor_lba = array.layout().group_member(g, survivor_idx);
    const DiskAddr s = array.layout().map(survivor_lba);
    array.faults(s.disk).inject_media_error(s.page);
    sabotaged.push_back(g);
    lost_lbas.push_back(array.layout().group_member(g, failed_idx));
    // The sabotaged survivor itself is also unreconstructable afterwards
    // (its stripe now has two bad members), so it must fail cleanly too.
    lost_lbas.push_back(survivor_lba);
  }
  ASSERT_EQ(sabotaged.size(), 2u);

  array.fail_disk(failed);
  EXPECT_EQ(array.rebuild_disk(failed), 0u);  // parity was fresh everywhere

  // The data-loss report names exactly the sabotaged stripes — no more, no less.
  std::set<GroupId> lost(array.last_rebuild_lost().begin(),
                         array.last_rebuild_lost().end());
  EXPECT_EQ(lost, std::set<GroupId>(sabotaged.begin(), sabotaged.end()));

  // Reads of the unreconstructable pages fail *cleanly*: an error status,
  // never fabricated bytes.
  Page buf = make_page();
  for (const Lba lba : lost_lbas) {
    EXPECT_NE(array.read_page(lba, buf), IoStatus::kOk) << "lba " << lba;
  }
  // Every other page is intact.
  std::set<Lba> lost_set(lost_lbas.begin(), lost_lbas.end());
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    if (lost_set.contains(lba)) continue;
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk) << "lba " << lba;
    ASSERT_EQ(buf, model.read(lba)) << "lba " << lba;
  }
}

TEST(RaidFaults, DoubleFaultOnSurvivorMidRebuildLosesOnlyThatStripe) {
  const RaidGeometry geo = geo5();
  RaidArray array(geo);
  ReferenceModel model;
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    const Page data = test_page(lba);
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }

  // Incremental (online) rebuild: lose disk 2, reconstruct the first chunks,
  // THEN a survivor dies under a not-yet-rebuilt stripe — the mid-rebuild
  // double fault. Only that one stripe may be reported lost.
  const std::uint32_t failed = 2;
  array.fail_disk(failed);
  array.rebuild_begin(failed);
  ASSERT_EQ(array.rebuild_step(8), 8u);  // cursor now at group 8

  std::uint64_t row = 8 / geo.chunk_pages;  // first un-rebuilt row
  while (array.layout().parity_disk(row) == failed) ++row;
  const GroupId g = row * geo.chunk_pages;
  ASSERT_GE(g, array.rebuild_cursor());
  std::uint32_t failed_idx = geo.data_disks();
  for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
    if (array.layout().data_disk(row, k) == failed) failed_idx = k;
  }
  ASSERT_LT(failed_idx, geo.data_disks());
  const std::uint32_t survivor_idx = failed_idx == 0 ? 1 : 0;
  const Lba survivor_lba = array.layout().group_member(g, survivor_idx);
  const Lba lost_lba = array.layout().group_member(g, failed_idx);
  const DiskAddr s = array.layout().map(survivor_lba);
  array.faults(s.disk).inject_media_error(s.page);

  while (array.rebuild_step(16) != 0) {
  }
  array.rebuild_finish();
  EXPECT_FALSE(array.degraded());

  // Exactly the sabotaged stripe is lost — groups already past the cursor and
  // every healthy stripe after it came through intact.
  ASSERT_EQ(array.last_rebuild_lost().size(), 1u);
  EXPECT_EQ(array.last_rebuild_lost().front(), g);

  // Both unreconstructable members fail cleanly — no fabricated bytes.
  Page buf = make_page();
  EXPECT_NE(array.read_page(lost_lba, buf), IoStatus::kOk);
  EXPECT_NE(array.read_page(survivor_lba, buf), IoStatus::kOk);
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    if (lba == lost_lba || lba == survivor_lba) continue;
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk) << "lba " << lba;
    ASSERT_EQ(buf, model.read(lba)) << "lba " << lba;
  }
}

TEST(RaidFaults, Raid6RebuildAbsorbsSurvivorMediaError) {
  const RaidGeometry geo = geo6();
  RaidArray array(geo);
  ReferenceModel model;
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    const Page data = test_page(lba, 1);
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  const std::uint32_t failed = 1;
  // One survivor media error in a stripe where disk 1 holds data: RAID-6 has
  // two erasures' worth of redundancy, so the rebuild must absorb it.
  std::uint64_t row = 0;
  while (array.layout().parity_disk(row) == failed ||
         array.layout().q_parity_disk(row) == failed) {
    ++row;
  }
  const GroupId g = row * geo.chunk_pages;
  std::uint32_t failed_idx = geo.data_disks();
  for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
    if (array.layout().data_disk(row, k) == failed) failed_idx = k;
  }
  ASSERT_LT(failed_idx, geo.data_disks());
  const std::uint32_t survivor_idx = failed_idx == 0 ? 1 : 0;
  const DiskAddr s = array.layout().map(array.layout().group_member(g, survivor_idx));
  array.faults(s.disk).inject_media_error(s.page);

  array.fail_disk(failed);
  EXPECT_EQ(array.rebuild_disk(failed), 0u);
  EXPECT_TRUE(array.last_rebuild_lost().empty());
  verify_all(array, model);
}

}  // namespace
}  // namespace kdd
