#include "raid/layout.hpp"

#include <gtest/gtest.h>

#include <set>

namespace kdd {
namespace {

RaidGeometry small_geo(RaidLevel level, std::uint32_t disks) {
  RaidGeometry geo;
  geo.level = level;
  geo.num_disks = disks;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  return geo;
}

class LayoutTest
    : public ::testing::TestWithParam<std::tuple<RaidLevel, std::uint32_t>> {};

TEST_P(LayoutTest, MappingIsInjectiveAndAvoidsParity) {
  const auto [level, disks] = GetParam();
  const RaidGeometry geo = small_geo(level, disks);
  const RaidLayout layout(geo);
  std::set<std::pair<std::uint32_t, Lba>> used;
  for (Lba lba = 0; lba < geo.data_pages(); ++lba) {
    const DiskAddr a = layout.map(lba);
    EXPECT_LT(a.disk, geo.num_disks);
    EXPECT_LT(a.page, geo.disk_pages);
    EXPECT_TRUE(used.insert({a.disk, a.page}).second) << "collision at lba " << lba;
    const std::uint64_t row = a.page / geo.chunk_pages;
    if (level != RaidLevel::kRaid0) {
      EXPECT_NE(a.disk, layout.parity_disk(row));
      if (level == RaidLevel::kRaid6) {
        EXPECT_NE(a.disk, layout.q_parity_disk(row));
      }
    }
  }
}

TEST_P(LayoutTest, GroupMemberInvertsIndexing) {
  const auto [level, disks] = GetParam();
  const RaidGeometry geo = small_geo(level, disks);
  const RaidLayout layout(geo);
  for (Lba lba = 0; lba < geo.data_pages(); ++lba) {
    const GroupId g = layout.group_of(lba);
    EXPECT_LT(g, geo.num_groups());
    const std::uint32_t idx = layout.index_in_group(lba);
    EXPECT_LT(idx, geo.data_disks());
    EXPECT_EQ(layout.group_member(g, idx), lba);
  }
}

TEST_P(LayoutTest, GroupMembersShareRowDifferentDisks) {
  const auto [level, disks] = GetParam();
  const RaidGeometry geo = small_geo(level, disks);
  const RaidLayout layout(geo);
  for (GroupId g = 0; g < geo.num_groups(); g += 3) {
    std::set<std::uint32_t> disks_used;
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      const DiskAddr a = layout.map(layout.group_member(g, k));
      EXPECT_TRUE(disks_used.insert(a.disk).second);
    }
    if (level != RaidLevel::kRaid0) {
      const DiskAddr pa = layout.parity_addr(g);
      EXPECT_FALSE(disks_used.contains(pa.disk));
      if (level == RaidLevel::kRaid6) {
        const DiskAddr qa = layout.q_parity_addr(g);
        EXPECT_FALSE(disks_used.contains(qa.disk));
        EXPECT_NE(pa.disk, qa.disk);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutTest,
    ::testing::Values(std::make_tuple(RaidLevel::kRaid0, 4u),
                      std::make_tuple(RaidLevel::kRaid5, 3u),
                      std::make_tuple(RaidLevel::kRaid5, 5u),
                      std::make_tuple(RaidLevel::kRaid5, 8u),
                      std::make_tuple(RaidLevel::kRaid6, 4u),
                      std::make_tuple(RaidLevel::kRaid6, 6u)));

TEST(Layout, ParityRotatesAcrossAllDisks) {
  const RaidGeometry geo = small_geo(RaidLevel::kRaid5, 5);
  const RaidLayout layout(geo);
  std::set<std::uint32_t> parity_disks;
  for (std::uint64_t row = 0; row < geo.stripe_rows(); ++row) {
    parity_disks.insert(layout.parity_disk(row));
  }
  EXPECT_EQ(parity_disks.size(), geo.num_disks);
}

TEST(Layout, DataCapacityExcludesParity) {
  const RaidGeometry geo = small_geo(RaidLevel::kRaid5, 5);
  EXPECT_EQ(geo.data_pages(), geo.disk_pages * 4);
  const RaidGeometry geo6 = small_geo(RaidLevel::kRaid6, 6);
  EXPECT_EQ(geo6.data_pages(), geo6.disk_pages * 4);
}

TEST(Layout, SequentialPagesInChunkShareDiskConsecutiveGroups) {
  const RaidGeometry geo = small_geo(RaidLevel::kRaid5, 5);
  const RaidLayout layout(geo);
  // Pages 0..chunk-1 are one chunk on one disk, in consecutive groups.
  const DiskAddr a0 = layout.map(0);
  for (Lba lba = 1; lba < geo.chunk_pages; ++lba) {
    const DiskAddr a = layout.map(lba);
    EXPECT_EQ(a.disk, a0.disk);
    EXPECT_EQ(a.page, a0.page + lba);
    EXPECT_EQ(layout.group_of(lba), layout.group_of(0) + lba);
  }
}

}  // namespace
}  // namespace kdd
