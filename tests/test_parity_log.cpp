#include "raid/parity_log.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry geo5() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 128;
  return geo;
}

TEST(ParityLog, WriteAvoidsParityUpdateUntilApply) {
  RaidArray array(geo5());
  ParityLogRaid plog(&array, /*log_pages=*/64);
  IoPlan plan;
  ASSERT_EQ(plog.write_page(3, test_page(3), &plan), IoStatus::kOk);
  EXPECT_EQ(plog.log_used_pages(), 1u);
  EXPECT_TRUE(array.group_stale(array.layout().group_of(3)));
  // 1 data read + 1 data write + 1 log append — no parity I/O.
  EXPECT_EQ(plan.total_ops(), 3u);
  plog.apply_log();
  EXPECT_EQ(plog.log_used_pages(), 0u);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(ParityLog, RandomWorkloadStaysConsistent) {
  RaidArray array(geo5());
  ParityLogRaid plog(&array, 32);
  ReferenceModel model;
  Rng rng(1);
  Page buf = make_page();
  for (int i = 0; i < 2000; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    if (rng.next_bool(0.6)) {
      const Page data = test_page(lba, static_cast<std::uint64_t>(i));
      ASSERT_EQ(plog.write_page(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(plog.read_page(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
  }
  EXPECT_GT(plog.applies(), 0u);  // the small log forced several applies
  plog.apply_log();
  EXPECT_TRUE(array.scrub().empty());
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
    ASSERT_EQ(buf, page);
  }
}

TEST(ParityLog, MultipleImagesForSamePageCompose) {
  RaidArray array(geo5());
  ParityLogRaid plog(&array, 64);
  const Lba lba = 9;
  for (int v = 0; v < 5; ++v) {
    ASSERT_EQ(plog.write_page(lba, test_page(lba, static_cast<std::uint64_t>(v)),
                              nullptr),
              IoStatus::kOk);
  }
  EXPECT_EQ(plog.log_used_pages(), 5u);
  plog.apply_log();
  EXPECT_TRUE(array.scrub().empty());
  Page buf = make_page();
  ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
  EXPECT_EQ(buf, test_page(lba, 4));
}

TEST(ParityLog, DegradedReadForcesApply) {
  RaidArray array(geo5());
  ParityLogRaid plog(&array, 64);
  const Lba lba = 20;
  ASSERT_EQ(plog.write_page(lba, test_page(lba, 1), nullptr), IoStatus::kOk);
  EXPECT_GT(plog.log_used_pages(), 0u);
  const std::uint32_t disk = array.layout().map(lba).disk;
  array.fail_disk(disk);
  Page buf = make_page();
  ASSERT_EQ(plog.read_page(lba, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, test_page(lba, 1));  // reconstruction used fresh parity
  EXPECT_EQ(plog.log_used_pages(), 0u);
}

TEST(ParityLog, CheaperPerWriteThanRmw) {
  // 1 random read + 1 random write + 1 sequential log write, vs RMW's
  // 2 random reads + 2 random writes.
  RaidArray array(geo5());
  ParityLogRaid plog(&array, 1024);
  array.reset_counters();
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    plog.write_page(rng.next_below(array.data_pages()), test_page(1), nullptr);
  }
  // Array-side ops (excluding the dedicated log disk): 1R + 1W per write.
  EXPECT_EQ(array.total_disk_reads(), 100u);
  EXPECT_EQ(array.total_disk_writes(), 100u);
  EXPECT_EQ(plog.log_appends(), 100u);
}

}  // namespace
}  // namespace kdd
