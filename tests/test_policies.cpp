#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "policies/leavo.hpp"
#include "policies/nocache.hpp"
#include "policies/write_around.hpp"
#include "policies/write_through.hpp"
#include "test_util.hpp"
#include "trace/zipf_workload.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry small_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig small_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  return cfg;
}

// ---------------------------------------------------------------------------
// Counter-mode behaviour
// ---------------------------------------------------------------------------

TEST(NoCachePolicy, EverythingIsMissAndRmw) {
  NoCachePolicy policy(small_geo());
  IoPlan plan;
  policy.write(0, {}, &plan);
  EXPECT_EQ(plan.total_ops(), 4u);  // RAID-5 small write
  policy.read(0, {}, nullptr);
  const CacheStats s = policy.stats();
  EXPECT_EQ(s.read_misses, 1u);
  EXPECT_EQ(s.write_misses, 1u);
  EXPECT_EQ(s.hit_ratio(), 0.0);
}

TEST(WriteThrough, HitAndMissAccounting) {
  WriteThroughPolicy policy(small_config(), small_geo());
  policy.read(5, {}, nullptr);   // miss + fill
  policy.read(5, {}, nullptr);   // hit
  policy.write(5, {}, nullptr);  // write hit (updates cache + RAID)
  policy.write(6, {}, nullptr);  // write miss (alloc)
  const CacheStats s = policy.stats();
  EXPECT_EQ(s.read_misses, 1u);
  EXPECT_EQ(s.read_hits, 1u);
  EXPECT_EQ(s.write_hits, 1u);
  EXPECT_EQ(s.write_misses, 1u);
  EXPECT_EQ(s.ssd_writes[static_cast<int>(SsdWriteKind::kReadFill)], 1u);
  EXPECT_EQ(s.ssd_writes[static_cast<int>(SsdWriteKind::kWriteUpdate)], 1u);
  EXPECT_EQ(s.ssd_writes[static_cast<int>(SsdWriteKind::kWriteAlloc)], 1u);
  EXPECT_EQ(s.metadata_ssd_writes(), 0u);  // WT persists nothing
}

TEST(WriteThrough, EveryWriteCostsFullParityUpdate) {
  WriteThroughPolicy policy(small_config(), small_geo());
  IoPlan plan;
  policy.write(0, {}, &plan);
  // RMW on RAID (2R+2W) plus the SSD page program.
  EXPECT_EQ(plan.total_ops(), 5u);
  EXPECT_EQ(policy.raid().stale_group_count(), 0u);
}

TEST(WriteThrough, LruEvictionWithinSet) {
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 17;  // one set of 16 ways
  cfg.ways = 16;
  WriteThroughPolicy policy(cfg, small_geo());
  // Touch 17 distinct pages: the first becomes the eviction victim.
  for (Lba lba = 0; lba < 17; ++lba) policy.read(lba, {}, nullptr);
  policy.read(0, {}, nullptr);  // must be a miss again
  policy.read(16, {}, nullptr);  // most recent survives
  const CacheStats s = policy.stats();
  EXPECT_EQ(s.read_misses, 18u);
  EXPECT_EQ(s.read_hits, 1u);
}

TEST(WriteAround, WritesBypassAndInvalidate) {
  WriteAroundPolicy policy(small_config(), small_geo());
  policy.read(7, {}, nullptr);   // fill
  policy.write(7, {}, nullptr);  // bypass + invalidate
  policy.read(7, {}, nullptr);   // miss again (no stale data served)
  const CacheStats s = policy.stats();
  EXPECT_EQ(s.read_misses, 2u);
  EXPECT_EQ(s.read_hits, 0u);
  EXPECT_EQ(s.write_bypasses, 1u);
  // Only read fills write the SSD.
  EXPECT_EQ(s.total_ssd_writes(),
            s.ssd_writes[static_cast<int>(SsdWriteKind::kReadFill)]);
}

TEST(LeavO, WriteHitCreatesPinnedPairAndSkipsParity) {
  LeavOPolicy policy(small_config(), small_geo());
  policy.read(3, {}, nullptr);  // admit clean
  IoPlan plan;
  policy.write(3, {}, &plan);  // delayed write: 1 disk write + 1 SSD write
  EXPECT_EQ(policy.pinned_pages(), 2u);
  EXPECT_EQ(policy.raid().stale_group_count(), 1u);
  std::size_t disk_writes = 0;
  for (const auto& phase : plan.phases()) {
    for (const DeviceOp& op : phase) {
      if (op.target == DeviceOp::Target::kHdd && op.kind == IoKind::kWrite) {
        ++disk_writes;
      }
    }
  }
  EXPECT_EQ(disk_writes, 1u);  // no parity write
}

TEST(LeavO, SecondWriteHitOverwritesNewVersion) {
  LeavOPolicy policy(small_config(), small_geo());
  policy.read(3, {}, nullptr);
  policy.write(3, {}, nullptr);
  policy.write(3, {}, nullptr);
  EXPECT_EQ(policy.pinned_pages(), 2u);  // still one pair
  EXPECT_EQ(policy.stats().write_hits, 2u);
}

TEST(LeavO, FlushRestoresParityAndReclaimsPairs) {
  LeavOPolicy policy(small_config(), small_geo());
  policy.read(3, {}, nullptr);
  policy.write(3, {}, nullptr);
  policy.flush(nullptr);
  EXPECT_EQ(policy.pinned_pages(), 0u);
  EXPECT_EQ(policy.raid().stale_group_count(), 0u);
  // Cleaning reclaims the whole pair, so the next access misses again (the
  // space-inefficiency the paper attributes to LeavO).
  policy.read(3, {}, nullptr);
  EXPECT_EQ(policy.stats().read_hits, 0u);
  EXPECT_EQ(policy.stats().read_misses, 2u);
}

TEST(LeavO, PersistsMetadata) {
  LeavOPolicy policy(small_config(), small_geo());
  for (Lba lba = 0; lba < 200; ++lba) policy.read(lba, {}, nullptr);
  policy.flush(nullptr);
  EXPECT_GT(policy.stats().metadata_ssd_writes(), 0u);
}

TEST(LeavO, ConsumesMoreCacheSpaceThanWT) {
  // With pinned version pairs LeavO holds fewer unique pages -> lower hit
  // ratio on a re-read scan (the effect behind Figures 5/7).
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 64;
  cfg.clean_high_watermark = 1.0;  // avoid cleaning during the test
  const RaidGeometry geo = small_geo();

  auto exercise = [&](CachePolicy& policy) {
    for (Lba lba = 0; lba < 48; ++lba) policy.read(lba, {}, nullptr);
    for (Lba lba = 0; lba < 24; ++lba) policy.write(lba, {}, nullptr);
    for (Lba lba = 0; lba < 48; ++lba) policy.read(lba, {}, nullptr);
    return policy.stats().read_hits;
  };
  WriteThroughPolicy wt(cfg, geo);
  LeavOPolicy leavo(cfg, geo);
  EXPECT_GT(exercise(wt), exercise(leavo));
}

// ---------------------------------------------------------------------------
// Prototype-mode data correctness (real bytes through real devices)
// ---------------------------------------------------------------------------

class PolicyDataTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyDataTest, ReadYourWritesUnderRandomWorkload) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig ssd_cfg;
  ssd_cfg.logical_pages = 256;
  ssd_cfg.pages_per_block = 16;
  SsdModel ssd(ssd_cfg);
  PolicyConfig cfg = small_config();
  auto policy = make_policy(GetParam(), cfg, &array, &ssd);

  ReferenceModel model;
  Rng rng(77);
  Page buf = make_page();
  for (int i = 0; i < 3000; ++i) {
    const Lba lba = rng.next_below(512);
    if (rng.next_bool(0.5)) {
      const Page data = test_page(lba, static_cast<std::uint64_t>(i));
      ASSERT_EQ(policy->write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(policy->read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba)) << policy->name() << " lba " << lba;
    }
  }
  policy->flush(nullptr);
  EXPECT_TRUE(array.scrub().empty()) << policy->name();
  // After flush, everything must also be readable directly from the array.
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
    ASSERT_EQ(buf, page) << policy->name() << " lba " << lba;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyDataTest,
                         ::testing::Values(PolicyKind::kNossd, PolicyKind::kWT,
                                           PolicyKind::kWA, PolicyKind::kLeavO,
                                           PolicyKind::kKdd),
                         [](const auto& param_info) {
                           return policy_kind_name(param_info.param);
                         });

// ---------------------------------------------------------------------------
// Comparative traffic properties (the qualitative content of Figs. 6/8/11)
// ---------------------------------------------------------------------------

TEST(PolicyComparison, WaWritesLeastKddBeatsWtAndLeavoOnWriteHeavyWorkload) {
  const RaidGeometry geo = paper_geometry(20000);
  PolicyConfig cfg;
  cfg.ssd_pages = 4096;
  cfg.delta_ratio_mean = 0.25;
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 8192;
  wcfg.total_requests = 60000;
  wcfg.read_rate = 0.25;

  std::uint64_t traffic[5] = {};
  for (const PolicyKind kind : {PolicyKind::kWT, PolicyKind::kWA, PolicyKind::kLeavO,
                                PolicyKind::kKdd}) {
    auto policy = make_policy(kind, cfg, geo);
    const Trace trace = generate_zipf_trace(wcfg);
    const CacheStats s = run_counter_trace(*policy, trace, geo.data_pages());
    traffic[static_cast<int>(kind)] = s.total_ssd_writes();
  }
  const std::uint64_t wt = traffic[static_cast<int>(PolicyKind::kWT)];
  const std::uint64_t wa = traffic[static_cast<int>(PolicyKind::kWA)];
  const std::uint64_t leavo = traffic[static_cast<int>(PolicyKind::kLeavO)];
  const std::uint64_t kdd = traffic[static_cast<int>(PolicyKind::kKdd)];
  EXPECT_LT(wa, kdd);    // WA allocates only on read misses
  EXPECT_LT(kdd, wt);    // the headline claim
  EXPECT_LT(wt, leavo);  // LeavO writes the most (Fig. 6)
}

}  // namespace
}  // namespace kdd
