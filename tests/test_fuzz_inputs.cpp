// Adversarial-input safety: decoders must reject (not crash on) arbitrary
// byte soup. These are the paths that parse data read back from flash.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/delta.hpp"
#include "compress/lz.hpp"

namespace kdd {
namespace {

class DecoderFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzzTest, LzDecompressNeverCrashesOnGarbage) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> out;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> garbage(rng.next_below(300));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    const std::size_t expected = rng.next_below(8192);
    // Must return cleanly either way; sanitizer/assert failures are the bug.
    const bool ok = lz_decompress(garbage, expected, out);
    if (ok) {
      EXPECT_EQ(out.size(), expected);
    }
  }
}

TEST_P(DecoderFuzzTest, LzDecompressSurvivesBitFlipsInValidStreams) {
  Rng rng(GetParam() * 7 + 1);
  std::vector<std::uint8_t> input(2048);
  for (auto& b : input) {
    b = rng.next_bool(0.8) ? 0 : static_cast<std::uint8_t>(rng.next_u64());
  }
  const auto compressed = lz_compress(input);
  std::vector<std::uint8_t> out;
  for (int iter = 0; iter < 500; ++iter) {
    auto mutated = compressed;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const bool ok = lz_decompress(mutated, input.size(), out);
    if (ok) {
      EXPECT_EQ(out.size(), input.size());
    }
  }
}

TEST_P(DecoderFuzzTest, UnpackDeltaNeverCrashesOnGarbage) {
  Rng rng(GetParam() * 13 + 5);
  Delta d;
  for (int iter = 0; iter < 2000; ++iter) {
    Page page(kPageSize);
    for (auto& b : page) b = static_cast<std::uint8_t>(rng.next_u64());
    const std::size_t offset = rng.next_below(kPageSize + 8);
    (void)unpack_delta(page, offset, d);  // reject or parse, never crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest, ::testing::Values(1, 2, 3));

TEST(DecoderFuzz, TruncationSweepOfValidStream) {
  // Every prefix of a valid stream must be rejected (or, in rare cases where
  // the prefix happens to be self-consistent, produce exactly the expected
  // size) — no OOB reads either way.
  Rng rng(99);
  std::vector<std::uint8_t> input(1024);
  for (auto& b : input) {
    b = rng.next_bool(0.7) ? 0x55 : static_cast<std::uint8_t>(rng.next_u64());
  }
  const auto compressed = lz_compress(input);
  std::vector<std::uint8_t> out;
  for (std::size_t cut = 0; cut < compressed.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(compressed.data(), cut);
    const bool ok = lz_decompress(prefix, input.size(), out);
    if (ok) {
      EXPECT_EQ(out.size(), input.size());
    }
  }
}

}  // namespace
}  // namespace kdd
