// Shared helpers for the test suite: deterministic page content and a
// reference model for read-your-writes verification against real arrays.
#pragma once

#include <cstring>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace kdd::testing {

/// Deterministic incompressible page keyed by (tag, version).
inline Page test_page(std::uint64_t tag, std::uint64_t version = 0) {
  Rng rng(tag * 0x9e3779b97f4a7c15ull + version * 0xda942042e4dd58b5ull + 1);
  Page p(kPageSize);
  for (std::size_t i = 0; i < kPageSize; i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(p.data() + i, &v, 8);
  }
  return p;
}

/// Ground-truth contents of a block store, by page address.
class ReferenceModel {
 public:
  void write(Lba lba, const Page& data) { pages_[lba] = data; }

  /// Expected contents (zero page if never written).
  Page read(Lba lba) const {
    const auto it = pages_.find(lba);
    return it == pages_.end() ? make_page() : it->second;
  }

  bool contains(Lba lba) const { return pages_.contains(lba); }
  const std::unordered_map<Lba, Page>& pages() const { return pages_; }

 private:
  std::unordered_map<Lba, Page> pages_;
};

}  // namespace kdd::testing
