// Crash-point torture: hundreds of seeded power cuts at uniformly random
// media-write indices, each followed by recovery and full integrity
// verification (ISSUE tentpole part 3). The contract being enforced:
//
//   * acked writes are durable across the cut,
//   * the in-flight request is atomic (old or new, never a blend),
//   * the recovered cache keeps serving traffic,
//   * a post-flush parity scrub is clean.

#include "harness/torture.hpp"

#include <gtest/gtest.h>

namespace kdd {
namespace {

void expect_clean(const TortureReport& rep) {
  for (const std::string& v : rep.violations) {
    ADD_FAILURE() << "seed " << rep.seed << " (cut after " << rep.cut_after
                  << "/" << rep.total_media_writes << " media writes): " << v;
  }
}

// The headline guarantee: 200 independent seeds, 200 random crash points,
// zero data-integrity violations.
TEST(Torture, TwoHundredRandomCrashPointsZeroViolations) {
  TortureRunner runner;
  int cuts_fired = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t rejected_ops = 0;
  std::size_t pages_verified = 0;
  std::uint64_t seg_recovered = 0;
  std::uint64_t seg_discarded = 0;
  std::uint64_t seg_pages_discarded = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const TortureReport rep = runner.run_seed(seed);
    expect_clean(rep);
    ASSERT_TRUE(rep.ok()) << "seed " << seed;
    cuts_fired += rep.cut_fired ? 1 : 0;
    torn_writes += rep.cache_faults.torn_writes;
    rejected_ops += rep.domain_power_cut_rejects;
    pages_verified += rep.pages_verified;
    seg_recovered += rep.segments_recovered;
    seg_discarded += rep.segments_discarded;
    seg_pages_discarded += rep.segment_pages_discarded;
  }
  // Every seed must actually have crashed (the cut index is < the dry-run
  // write count by construction) and torn exactly one cache page write.
  EXPECT_EQ(cuts_fired, 200);
  EXPECT_EQ(torn_writes, 200u);
  // At least some requests must have raced the dead rail, proving the cut
  // lands mid-workload rather than after it.
  EXPECT_GT(rejected_ops, 0u);
  EXPECT_GT(pages_verified, 0u);
  // With segment staging on (the torture config enables it), most cache
  // media writes happen inside a vectored segment flush, so a uniform crash
  // point must land mid-flush for many seeds: the CRC check must have
  // invalidated torn segments — and discarded at least one page each —
  // rather than every cut conveniently missing the segment path.
  EXPECT_GT(seg_discarded, 0u);
  EXPECT_GE(seg_pages_discarded, seg_discarded);
  EXPECT_GT(seg_recovered + seg_discarded, 0u);
}

// Corner case: the very first media write of the run is the torn one — the
// cache dies before it holds anything. Recovery must come up empty-but-sane.
TEST(Torture, CutOnVeryFirstCacheWriteRecovers) {
  TortureRunner runner;
  for (std::uint64_t seed = 501; seed <= 520; ++seed) {
    const TortureReport rep = runner.run_case(seed, 0);
    expect_clean(rep);
    ASSERT_TRUE(rep.ok()) << "seed " << seed;
    EXPECT_TRUE(rep.cut_fired);
    EXPECT_EQ(rep.cache_faults.torn_writes, 1u);
  }
}

// Corner case: a cut index beyond the workload never fires — the cycle
// degenerates to a clean restart, which must also verify perfectly.
TEST(Torture, UnfiredTriggerIsCleanRestart)  {
  TortureRunner runner;
  const TortureReport rep = runner.run_case(42, 1u << 30);
  expect_clean(rep);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep.cut_fired);
  EXPECT_EQ(rep.cache_faults.torn_writes, 0u);
  EXPECT_EQ(rep.requests_completed, runner.config().requests);
}

// The dry run (and hence the chosen crash point) must be deterministic, or
// failures would not reproduce from a seed.
TEST(Torture, SeedsAreReproducible) {
  TortureRunner runner;
  const TortureReport a = runner.run_seed(77);
  const TortureReport b = runner.run_seed(77);
  EXPECT_EQ(a.total_media_writes, b.total_media_writes);
  EXPECT_EQ(a.cut_after, b.cut_after);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.in_flight_lba, b.in_flight_lba);
  EXPECT_EQ(a.ok(), b.ok());
}

// Reports must carry enough forensic detail to localise a failure: the cut
// index is within the dry-run write range and the fault counters show the
// injected tear.
TEST(Torture, ReportExposesFaultTelemetry) {
  TortureRunner runner;
  const TortureReport rep = runner.run_seed(99);
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep.total_media_writes, 0u);
  EXPECT_LT(rep.cut_after, rep.total_media_writes);
  EXPECT_TRUE(rep.cut_fired);
  EXPECT_EQ(rep.cache_faults.torn_writes, 1u);
  EXPECT_GT(rep.pages_verified, 0u);
}

// Crash pinned mid-GC-relocation: the torture config runs with the elastic
// delta zone, GC and adaptive boundary ON, and run_gc_crash_case tears power
// exactly at a GC relocation write (the hook marks the media-write index of
// every live-delta move). The write-before-map discipline must hold: a live
// delta is never lost (old mapping -> intact victim, or new mapping ->
// written destination) and a reclaimed extent is never resurrected. Seeds
// without a GC victim degenerate to clean no-ops; the sweep must still find
// plenty of real mid-relocation cuts.
TEST(Torture, PowerCutPinnedMidGcRelocationZeroViolations) {
  TortureRunner runner;
  int gc_cuts = 0;
  for (std::uint64_t seed = 301; seed <= 340; ++seed) {
    const TortureReport rep = runner.run_gc_crash_case(seed);
    expect_clean(rep);
    ASSERT_TRUE(rep.ok()) << "seed " << seed;
    if (rep.gc_relocation_writes > 0) {
      ++gc_cuts;
      EXPECT_TRUE(rep.cut_fired) << "seed " << seed;
    }
  }
  // The workload shape (55% writes, working set > cache, high locality) must
  // fragment enough DEZ extents that a healthy majority of seeds actually
  // exercise a mid-relocation cut.
  EXPECT_GE(gc_cuts, 10);
}

// Power cut DURING an online rebuild (ISSUE 6 tentpole): the NVRAM rebuild
// checkpoint survives, the resumed cursor never regresses below the cut
// threshold, completed chunks are not reconstructed twice, and the fully
// rebuilt stack verifies byte-for-byte against the model.
TEST(Torture, PowerCutDuringOnlineRebuildResumesFromCheckpoint) {
  TortureRunner runner;
  for (const std::uint64_t seed : {11ull, 23ull, 37ull, 51ull, 64ull}) {
    const TortureReport rep = runner.run_rebuild_case(seed);
    expect_clean(rep);
    ASSERT_TRUE(rep.ok()) << "seed " << seed;
    EXPECT_TRUE(rep.cut_fired);
    EXPECT_TRUE(rep.checkpoint_survived);
    EXPECT_TRUE(rep.rebuild_completed);
    EXPECT_GE(rep.rebuild_cursor_at_resume, rep.rebuild_cursor_at_cut);
    EXPECT_GT(rep.pages_verified, 0u);
  }
}

// The cut fraction is honoured: a later threshold tears later, and the
// checkpoint at the cut reflects at least that much progress.
TEST(Torture, RebuildCutThresholdControlsCheckpoint) {
  TortureConfig ecfg;
  ecfg.rebuild_cut_fraction = 0.2;
  TortureConfig lcfg;
  lcfg.rebuild_cut_fraction = 0.6;
  TortureRunner early(ecfg);
  TortureRunner late(lcfg);
  const TortureReport a = early.run_rebuild_case(7);
  const TortureReport b = late.run_rebuild_case(7);
  expect_clean(a);
  expect_clean(b);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::uint64_t total = early.config().geo.num_groups();
  EXPECT_GE(a.rebuild_cursor_at_cut, total / 5);
  EXPECT_GE(b.rebuild_cursor_at_cut, (total * 3) / 5);
  EXPECT_GT(b.rebuild_cursor_at_cut, a.rebuild_cursor_at_cut);
}

}  // namespace
}  // namespace kdd
