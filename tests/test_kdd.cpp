#include "kdd/kdd_cache.hpp"

#include <gtest/gtest.h>

#include "compress/content.hpp"
#include "harness/harness.hpp"
#include "raid/rebuild.hpp"
#include "test_util.hpp"
#include "trace/zipf_workload.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry small_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig small_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  return cfg;
}

SsdConfig small_ssd() {
  SsdConfig cfg;
  cfg.logical_pages = 256;
  cfg.pages_per_block = 16;
  return cfg;
}

// ---------------------------------------------------------------------------
// Counter-mode state machine
// ---------------------------------------------------------------------------

TEST(KddCounter, WriteHitDefersParityAndStagesDelta) {
  KddCache kdd(small_config(), small_geo());
  kdd.read(5, {}, nullptr);  // admit clean
  IoPlan plan;
  kdd.write(5, {}, &plan);
  EXPECT_EQ(kdd.old_pages(), 1u);
  EXPECT_EQ(kdd.staged_deltas(), 1u);
  EXPECT_EQ(kdd.stale_groups(), 1u);
  // The write-without-parity-update path: exactly one disk write, no disk read.
  std::size_t disk_writes = 0, disk_reads = 0;
  for (const auto& phase : plan.phases()) {
    for (const DeviceOp& op : phase) {
      if (op.target != DeviceOp::Target::kHdd) continue;
      (op.kind == IoKind::kWrite ? disk_writes : disk_reads)++;
    }
  }
  EXPECT_EQ(disk_writes, 1u);
  EXPECT_EQ(disk_reads, 0u);
}

TEST(KddCounter, WriteMissUsesConventionalParityUpdate) {
  KddCache kdd(small_config(), small_geo());
  IoPlan plan;
  kdd.write(5, {}, &plan);
  EXPECT_EQ(kdd.old_pages(), 0u);
  EXPECT_EQ(kdd.stale_groups(), 0u);
  std::size_t disk_ops = 0;
  for (const auto& phase : plan.phases()) {
    for (const DeviceOp& op : phase) {
      if (op.target == DeviceOp::Target::kHdd) ++disk_ops;
    }
  }
  EXPECT_EQ(disk_ops, 4u);  // RMW
}

TEST(KddCounter, StagingCommitPacksMultipleDeltasPerPage) {
  PolicyConfig cfg = small_config();
  cfg.delta_ratio_mean = 0.12;  // high content locality: ~500 B deltas
  KddCache kdd(cfg, small_geo());
  // Create many write hits so staging overflows into DEZ pages.
  for (Lba lba = 0; lba < 40; ++lba) kdd.read(lba, {}, nullptr);
  for (Lba lba = 0; lba < 40; ++lba) kdd.write(lba, {}, nullptr);
  const CacheStats s = kdd.stats();
  const std::uint64_t commits =
      s.ssd_writes[static_cast<int>(SsdWriteKind::kDeltaCommit)];
  EXPECT_GT(commits, 0u);
  // 40 deltas of ~500 B pack ~7-8 per 4 KiB page.
  EXPECT_LT(commits + kdd.staged_deltas() / 4, 15u);
  EXPECT_EQ(kdd.old_pages(), 40u);
  EXPECT_GT(kdd.dez_pages(), 0u);
}

TEST(KddCounter, ReadHitOnOldPageChargesDeltaRead) {
  PolicyConfig cfg = small_config();
  cfg.staging_buffer_bytes = kPageSize;
  cfg.delta_ratio_mean = 0.50;
  KddCache kdd(cfg, small_geo());
  kdd.read(5, {}, nullptr);
  kdd.write(5, {}, nullptr);
  const std::uint64_t reads_before = kdd.stats().ssd_reads;
  kdd.read(5, {}, nullptr);  // staged delta: DAZ read only
  const std::uint64_t staged_cost = kdd.stats().ssd_reads - reads_before;
  EXPECT_EQ(staged_cost, 1u);
  // Force the delta into a DEZ page; now a hit costs DAZ + DEZ reads.
  for (Lba lba = 10; lba < 20; ++lba) {
    kdd.read(lba, {}, nullptr);
    kdd.write(lba, {}, nullptr);
  }
  if (kdd.staged_deltas() == 0 || kdd.dez_pages() > 0) {
    const std::uint64_t before = kdd.stats().ssd_reads;
    kdd.read(5, {}, nullptr);
    EXPECT_GE(kdd.stats().ssd_reads - before, 1u);
  }
}

TEST(KddCounter, CleaningBoundsDirtyPages) {
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 512;
  cfg.clean_high_watermark = 0.20;
  cfg.clean_low_watermark = 0.10;
  KddCache kdd(cfg, small_geo());
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const Lba lba = rng.next_below(600);
    if (rng.next_bool(0.7)) {
      kdd.write(lba, {}, nullptr);
    } else {
      kdd.read(lba, {}, nullptr);
    }
    const auto dirty = kdd.old_pages() + kdd.dez_pages();
    ASSERT_LE(dirty, static_cast<std::uint64_t>(
                         0.20 * static_cast<double>(kdd.sets().pages())) +
                         kdd.sets().ways())
        << "iteration " << i;
  }
  EXPECT_GT(kdd.stats().cleanings, 0u);
  EXPECT_GT(kdd.stats().groups_cleaned, 0u);
}

TEST(KddCounter, FlushLeavesNoPendingState) {
  KddCache kdd(small_config(), small_geo());
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const Lba lba = rng.next_below(400);
    if (rng.next_bool(0.6)) {
      kdd.write(lba, {}, nullptr);
    } else {
      kdd.read(lba, {}, nullptr);
    }
  }
  kdd.flush(nullptr);
  EXPECT_EQ(kdd.old_pages(), 0u);
  EXPECT_EQ(kdd.dez_pages(), 0u);
  EXPECT_EQ(kdd.staged_deltas(), 0u);
  EXPECT_EQ(kdd.stale_groups(), 0u);
}

TEST(KddCounter, MetadataTrafficIsSmallFraction) {
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 2048;
  KddCache kdd(cfg, small_geo());
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    const Lba lba = rng.next_below(3000);
    if (rng.next_bool(0.5)) {
      kdd.write(lba % small_geo().data_pages(), {}, nullptr);
    } else {
      kdd.read(lba % small_geo().data_pages(), {}, nullptr);
    }
  }
  kdd.flush(nullptr);
  const CacheStats s = kdd.stats();
  const double fraction = static_cast<double>(s.metadata_ssd_writes()) /
                          static_cast<double>(s.total_ssd_writes());
  EXPECT_LT(fraction, 0.05);  // paper reports < 2 % at the default partition
  EXPECT_GT(s.metadata_ssd_writes(), 0u);
}

TEST(KddCounter, HigherContentLocalityWritesLess) {
  const RaidGeometry geo = paper_geometry(8191);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 4096;
  wcfg.total_requests = 40000;
  wcfg.read_rate = 0.2;
  std::uint64_t prev = ~0ull;
  for (const double mean : {0.50, 0.25, 0.12}) {
    PolicyConfig cfg;
    cfg.ssd_pages = 2048;
    cfg.delta_ratio_mean = mean;
    KddCache kdd(cfg, geo);
    const Trace trace = generate_zipf_trace(wcfg);
    const CacheStats s = run_counter_trace(kdd, trace, geo.data_pages());
    EXPECT_LT(s.total_ssd_writes(), prev) << "mean " << mean;
    prev = s.total_ssd_writes();
  }
}

TEST(KddCounter, StalenessExposureIsRecorded) {
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 512;
  cfg.clean_high_watermark = 0.15;  // frequent repairs
  cfg.clean_low_watermark = 0.05;
  KddCache kdd(cfg, small_geo());
  Rng rng(9);
  for (int i = 0; i < 8000; ++i) {
    const Lba lba = rng.next_below(500);
    if (rng.next_bool(0.7)) {
      kdd.write(lba, {}, nullptr);
    } else {
      kdd.read(lba, {}, nullptr);
    }
  }
  kdd.flush(nullptr);
  const LatencyHistogram& exposure = kdd.staleness_exposure();
  EXPECT_GT(exposure.count(), 0u);           // groups got stale and repaired
  EXPECT_GT(exposure.mean_us(), 0.0);        // ...after a nonzero interval
  // Tighter cleaning watermarks must shrink the exposure window.
  PolicyConfig lazy = cfg;
  lazy.clean_high_watermark = 0.60;
  lazy.clean_low_watermark = 0.30;
  KddCache kdd_lazy(lazy, small_geo());
  Rng rng2(9);
  for (int i = 0; i < 8000; ++i) {
    const Lba lba = rng2.next_below(500);
    if (rng2.next_bool(0.7)) {
      kdd_lazy.write(lba, {}, nullptr);
    } else {
      kdd_lazy.read(lba, {}, nullptr);
    }
  }
  kdd_lazy.flush(nullptr);
  EXPECT_LT(exposure.mean_us(), kdd_lazy.staleness_exposure().mean_us());
}

// ---------------------------------------------------------------------------
// Prototype-mode end-to-end correctness with realistic content locality
// ---------------------------------------------------------------------------

class KddRealContentTest : public ::testing::TestWithParam<double> {};

TEST_P(KddRealContentTest, ReadYourWritesWithContentLocality) {
  const double ratio = GetParam();
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdModel ssd(small_ssd());
  KddCache kdd(small_config(), &array, &ssd);

  const ContentGenerator gen(9);
  ReferenceModel model;
  Rng rng(10);
  Page buf = make_page();
  for (int i = 0; i < 4000; ++i) {
    const Lba lba = rng.next_below(512);
    if (rng.next_bool(0.5)) {
      // New version: mutate the current contents with the target locality.
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data = model.contains(lba) ? gen.mutate(base, ratio, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba)) << "lba " << lba << " iter " << i;
    }
  }
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
    ASSERT_EQ(buf, page) << "lba " << lba;
  }
}

INSTANTIATE_TEST_SUITE_P(Localities, KddRealContentTest,
                         ::testing::Values(0.12, 0.25, 0.50, 1.0));

// Geometry sweep: associativity and chunk size must not affect correctness.
class KddGeometryTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(KddGeometryTest, ReadYourWritesAcrossGeometries) {
  const auto [ways, chunk_pages] = GetParam();
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = chunk_pages;
  geo.disk_pages = 64 * chunk_pages;
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = ways;
  KddCache kdd(cfg, &array, &ssd);
  const ContentGenerator gen(55);
  ReferenceModel model;
  Rng rng(56);
  Page buf = make_page();
  for (int i = 0; i < 1500; ++i) {
    const Lba lba = rng.next_below(std::min<std::uint64_t>(400, geo.data_pages()));
    if (rng.next_bool(0.55)) {
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data = model.contains(lba) ? gen.mutate(base, 0.25, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
  }
  kdd.check_invariants();
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, KddGeometryTest,
    ::testing::Combine(::testing::Values(4u, 8u, 32u),   // associativity
                       ::testing::Values(1u, 4u, 16u)),  // chunk pages
    [](const auto& param_info) {
      return "ways" + std::to_string(std::get<0>(param_info.param)) + "_chunk" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(KddReal, IncompressibleContentTakesFallbacksButStaysCorrect) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdModel ssd(small_ssd());
  KddCache kdd(small_config(), &array, &ssd);
  ReferenceModel model;
  Rng rng(11);
  Page buf = make_page();
  for (int i = 0; i < 1500; ++i) {
    const Lba lba = rng.next_below(128);
    // Fully random contents: deltas never compress.
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
    model.write(lba, data);
    if (i % 7 == 0) {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
  }
  EXPECT_GT(kdd.delta_fallbacks(), 0u);
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(KddReal, ReclaimAsCleanKeepsPagesCached) {
  const RaidGeometry geo = small_geo();
  PolicyConfig cfg = small_config();
  cfg.reclaim_as_clean = true;
  RaidArray array(geo);
  SsdModel ssd(small_ssd());
  KddCache kdd(cfg, &array, &ssd);
  const ContentGenerator gen(12);
  Rng rng(13);

  const Lba lba = 9;
  Page cur = gen.base_page(lba);
  ASSERT_EQ(kdd.write(lba, cur, nullptr), IoStatus::kOk);
  cur = gen.mutate(cur, 0.2, rng);
  ASSERT_EQ(kdd.write(lba, cur, nullptr), IoStatus::kOk);
  EXPECT_EQ(kdd.old_pages(), 1u);
  kdd.flush(nullptr);
  EXPECT_EQ(kdd.old_pages(), 0u);
  // Scheme 1: the page stays cached as clean and the next read hits.
  const std::uint64_t hits_before = kdd.stats().read_hits;
  Page buf = make_page();
  ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, cur);
  EXPECT_EQ(kdd.stats().read_hits, hits_before + 1);
  EXPECT_TRUE(array.scrub().empty());
}

// ---------------------------------------------------------------------------
// Failure handling (Section III-E)
// ---------------------------------------------------------------------------

struct CrashRig {
  CrashRig()
      : array(small_geo()),
        ssd(small_ssd()),
        nvram(kPageSize, 255),
        kdd(std::make_unique<KddCache>(small_config(), &array, &ssd, &nvram)) {}

  void run_workload(int iters, double locality, std::uint64_t seed) {
    const ContentGenerator gen(21);
    Rng rng(seed);
    for (int i = 0; i < iters; ++i) {
      const Lba lba = rng.next_below(300);
      if (rng.next_bool(0.55)) {
        const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
        const Page data =
            model.contains(lba) ? gen.mutate(base, locality, rng) : base;
        ASSERT_EQ(kdd->write(lba, data, nullptr), IoStatus::kOk);
        model.write(lba, data);
      } else {
        Page buf = make_page();
        ASSERT_EQ(kdd->read(lba, buf, nullptr), IoStatus::kOk);
        ASSERT_EQ(buf, model.read(lba));
      }
    }
  }

  void verify_reads() {
    Page buf = make_page();
    for (const auto& [lba, page] : model.pages()) {
      ASSERT_EQ(kdd->read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, page) << "lba " << lba;
    }
  }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  std::unique_ptr<KddCache> kdd;
  ReferenceModel model;
};

TEST(KddFailure, PowerFailureRecoveryRestoresCacheState) {
  CrashRig rig;
  rig.run_workload(3000, 0.25, 31);
  const std::uint64_t old_before = rig.kdd->old_pages();
  const std::uint64_t stale_before = rig.kdd->stale_groups();
  EXPECT_GT(stale_before, 0u);  // crash with deferred parity pending

  // Power failure: DRAM state (the primary map) is lost; the SSD, the disks
  // and NVRAM survive. Rebuild from the metadata log + NVRAM buffers.
  rig.kdd = std::make_unique<KddCache>(small_config(), &rig.array, &rig.ssd,
                                       &rig.nvram, /*recover=*/true);
  EXPECT_EQ(rig.kdd->old_pages(), old_before);
  EXPECT_EQ(rig.kdd->stale_groups(), stale_before);
  rig.verify_reads();
  // Recovery must leave enough state to finish the deferred parity updates.
  rig.kdd->flush(nullptr);
  EXPECT_TRUE(rig.array.scrub().empty());
  rig.verify_reads();
}

TEST(KddFailure, PowerFailureThenMoreWritesStaysConsistent) {
  CrashRig rig;
  rig.run_workload(1500, 0.25, 32);
  rig.kdd = std::make_unique<KddCache>(small_config(), &rig.array, &rig.ssd,
                                       &rig.nvram, /*recover=*/true);
  rig.run_workload(1500, 0.25, 33);
  rig.kdd->flush(nullptr);
  EXPECT_TRUE(rig.array.scrub().empty());
  rig.verify_reads();
}

TEST(KddFailure, SsdFailureResyncsArrayWithNoDataLoss) {
  CrashRig rig;
  rig.run_workload(2000, 0.25, 34);
  EXPECT_GT(rig.kdd->stale_groups(), 0u);
  const std::uint64_t resynced = rig.kdd->handle_ssd_failure();
  EXPECT_GT(resynced, 0u);
  EXPECT_TRUE(rig.array.scrub().empty());  // RPO = 0: array fully consistent
  rig.verify_reads();                      // cache is cold but data is intact
}

TEST(KddFailure, HddFailureFlushesParityBeforeRebuild) {
  CrashRig rig;
  rig.run_workload(2000, 0.25, 35);
  EXPECT_GT(rig.kdd->stale_groups(), 0u);
  // KDD's protocol: parity_update everything, then rebuild. Zero groups may
  // be rebuilt from stale parity.
  EXPECT_EQ(rig.kdd->handle_disk_failure(2), 0u);
  EXPECT_TRUE(rig.array.scrub().empty());
  rig.verify_reads();
}

TEST(KddFailure, EveryDiskPositionIsRebuildable) {
  for (std::uint32_t disk = 0; disk < 5; ++disk) {
    CrashRig rig;
    rig.run_workload(800, 0.25, 36 + disk);
    EXPECT_EQ(rig.kdd->handle_disk_failure(disk), 0u) << "disk " << disk;
    rig.verify_reads();
  }
}

// ---------------------------------------------------------------------------
// Degraded service through the cache (ISSUE 6): a lost member's newest
// version can live only in the cache (DAZ base + delta) while the array's
// parity is still stale — the cache must serve it without ever consulting
// (or trusting) the degraded array.
// ---------------------------------------------------------------------------

/// Crawl-speed engine: the group under test stays un-rebuilt (member down)
/// for as long as the test needs it to be.
OnlineRebuildConfig crawl_rebuild() {
  OnlineRebuildConfig cfg;
  cfg.chunk_groups = 1;
  cfg.min_chunk_groups = 1;
  cfg.ops_between_steps = 1024;
  return cfg;
}

TEST(KddDegraded, ReadOfLostPageServedFromCachedDelta) {
  RaidArray array(small_geo());
  SsdModel ssd(small_ssd());
  NvramState nvram(kPageSize, 255);
  RebuildEngine engine(&array, crawl_rebuild());
  KddCache kdd(small_config(), &array, &ssd, &nvram);
  kdd.bind_rebuild_engine(&engine);

  // A page well past the initial cursor, written twice: the second write is a
  // deferred-parity hit, so the member disk holds v2 but parity still covers
  // v1 — the newest version is only reachable as DAZ base + cached delta.
  const GroupId g = 40;
  const Lba lba = array.layout().group_member(g, 0);
  const std::uint32_t disk = array.layout().map(lba).disk;
  const ContentGenerator gen(51);
  Rng rng(52);
  const Page v1 = gen.base_page(lba);
  ASSERT_EQ(kdd.write(lba, v1, nullptr), IoStatus::kOk);
  Page buf = make_page();
  ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
  const Page v2 = gen.mutate(v1, 0.25, rng);
  ASSERT_EQ(kdd.write(lba, v2, nullptr), IoStatus::kOk);
  ASSERT_EQ(kdd.old_pages(), 1u);
  ASSERT_GE(kdd.stale_groups(), 1u);

  // The member fails online. No stop-the-world flush: the delta stays staged
  // and the group is still dirty when the degraded read arrives.
  ASSERT_TRUE(kdd.handle_disk_failure_online(disk));
  ASSERT_TRUE(array.member_down(disk, g));
  const std::uint64_t raid_reads_before = array.total_disk_reads();
  ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, v2);
  EXPECT_EQ(kdd.degraded_cache_hits(), 1u);
  // Cache-resident service: the degraded read never touched the array.
  EXPECT_EQ(array.total_disk_reads(), raid_reads_before);

  // Finish the rebuild; the barrier folds the delta first, so no group is
  // ever reconstructed from stale parity, and the data survives end to end.
  int guard = 0;
  while (engine.rebuild_active()) {
    ASSERT_LT(++guard, 10000);
    kdd.on_idle(nullptr);
  }
  EXPECT_EQ(array.rebuild_stale_folds(), 0u);
  ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, v2);
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(KddDegraded, MissOnLostPageFoldsPeerDeltaThenReconstructs) {
  RaidArray array(small_geo());
  SsdModel ssd(small_ssd());
  NvramState nvram(kPageSize, 255);
  RebuildEngine engine(&array, crawl_rebuild());
  KddCache kdd(small_config(), &array, &ssd, &nvram);
  kdd.bind_rebuild_engine(&engine);

  // Cold victim page, written straight to the array; a PEER in the same
  // stripe then takes a deferred-parity write, leaving the group stale.
  const GroupId g = 40;
  const Lba victim = array.layout().group_member(g, 0);
  const Lba peer = array.layout().group_member(g, 1);
  const Page vdata = test_page(victim, 7);
  ASSERT_EQ(array.write_page(victim, vdata), IoStatus::kOk);
  const ContentGenerator gen(53);
  Rng rng(54);
  const Page p1 = gen.base_page(peer);
  ASSERT_EQ(kdd.write(peer, p1, nullptr), IoStatus::kOk);
  Page buf = make_page();
  ASSERT_EQ(kdd.read(peer, buf, nullptr), IoStatus::kOk);
  const Page p2 = gen.mutate(p1, 0.25, rng);
  ASSERT_EQ(kdd.write(peer, p2, nullptr), IoStatus::kOk);
  ASSERT_EQ(kdd.old_pages(), 1u);
  ASSERT_TRUE(array.group_stale(g));

  // Lose the victim's disk. A read of the victim is a cache miss in a stale
  // group: the array must refuse to reconstruct from stale parity (it would
  // fabricate the pre-delta peer into the result); the cache folds the
  // group's deltas and retries — and the retry must yield the real data.
  const std::uint32_t disk = array.layout().map(victim).disk;
  ASSERT_TRUE(kdd.handle_disk_failure_online(disk));
  ASSERT_TRUE(array.member_down(disk, g));
  ASSERT_EQ(kdd.read(victim, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, vdata);
  EXPECT_EQ(kdd.degraded_delta_folds(), 1u);
  EXPECT_FALSE(array.group_stale(g));

  // The peer's newest version survived the fold, and the rebuilt array is
  // fully consistent.
  ASSERT_EQ(kdd.read(peer, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, p2);
  int guard = 0;
  while (engine.rebuild_active()) {
    ASSERT_LT(++guard, 10000);
    kdd.on_idle(nullptr);
  }
  EXPECT_EQ(array.rebuild_stale_folds(), 0u);
  ASSERT_EQ(kdd.read(victim, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, vdata);
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

}  // namespace
}  // namespace kdd
