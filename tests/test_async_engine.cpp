// Async submission/completion engine (ISSUE 7 tentpole): the BlockDevice
// submit() interface with its sim-clock completion queue, the per-shard
// submission queues behind ConcurrentCache, admission control/backpressure,
// quiesce-on-failure semantics, and the sync-vs-async replay equivalence
// guarantee (byte-identical digests at every thread count and queue depth).
//
// The *Stress tests run under ThreadSanitizer in CI (submitters racing
// engine workers, completions racing flush barriers, a disk failure landing
// mid-flight).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blockdev/mem_device.hpp"
#include "blockdev/ssd_model.hpp"
#include "cache/nvram.hpp"
#include "common/rng.hpp"
#include "harness/harness.hpp"
#include "kdd/concurrent.hpp"
#include "kdd/kdd_cache.hpp"
#include "obs/metrics.hpp"
#include "raid/raid_array.hpp"
#include "raid/rebuild.hpp"
#include "sim/async_queue.hpp"
#include "test_util.hpp"
#include "trace/generators.hpp"

namespace kdd {
namespace {

using ::kdd::testing::ReferenceModel;
using ::kdd::testing::test_page;

// ---------------------------------------------------------------------------
// SimCompletionQueue / SimAsyncDevice / default sync fallback
// ---------------------------------------------------------------------------

TEST(SimCompletionQueue, FiresInDueOrderAcrossAdvanceAndDrain) {
  SimCompletionQueue cq;
  std::vector<int> order;
  cq.schedule(30, IoStatus::kOk, [&](IoStatus) { order.push_back(3); });
  cq.schedule(10, IoStatus::kOk, [&](IoStatus) { order.push_back(1); });
  cq.schedule(20, IoStatus::kOk, [&](IoStatus) { order.push_back(2); });
  EXPECT_EQ(cq.pending(), 3u);
  EXPECT_EQ(cq.next_due(), 10u);

  EXPECT_EQ(cq.advance_to(15), 1u);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(cq.now(), 15u);

  EXPECT_EQ(cq.drain(), 2u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(cq.pending(), 0u);
}

TEST(SimCompletionQueue, SameDueTimeCompletesInSubmissionOrder) {
  SimCompletionQueue cq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    cq.schedule(7, IoStatus::kOk, [&order, i](IoStatus) { order.push_back(i); });
  }
  cq.drain();
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimCompletionQueue, CompletionMayScheduleFurtherIo) {
  SimCompletionQueue cq;
  int fired = 0;
  cq.schedule(5, IoStatus::kOk, [&](IoStatus) {
    ++fired;
    cq.schedule(cq.now() + 5, IoStatus::kOk, [&](IoStatus) { ++fired; });
  });
  cq.drain();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(cq.now(), 10u);
}

TEST(SimAsyncDevice, ExecutesDataPlaneNowButDefersCompletion) {
  MemBlockDevice inner(16);
  SimCompletionQueue cq;
  SimAsyncDevice dev(&inner, &cq, [](AsyncIo::Op, Lba) { return SimTime{25}; });

  const Page data = test_page(3, 42);
  bool completed = false;
  AsyncIo io;
  io.op = AsyncIo::Op::kWrite;
  io.page = 3;
  io.data = data;
  dev.submit(io, [&](IoStatus st) {
    EXPECT_EQ(st, IoStatus::kOk);
    completed = true;
  });

  // The write already landed on the medium; only the completion is delayed.
  Page buf = make_page();
  EXPECT_EQ(inner.read(3, buf), IoStatus::kOk);
  EXPECT_EQ(buf, data);
  EXPECT_FALSE(completed);
  cq.advance_to(25);
  EXPECT_TRUE(completed);
}

TEST(SimAsyncDevice, ReadCompletionCarriesDeviceStatus) {
  MemBlockDevice inner(16);
  SimCompletionQueue cq;
  SimAsyncDevice dev(&inner, &cq, [](AsyncIo::Op, Lba) { return SimTime{5}; });
  inner.fail();

  Page buf = make_page();
  AsyncIo io;
  io.page = 1;
  io.out = buf;
  IoStatus seen = IoStatus::kOk;
  dev.submit(io, [&](IoStatus st) { seen = st; });
  cq.drain();
  EXPECT_NE(seen, IoStatus::kOk);
}

TEST(BlockDevice, DefaultSubmitIsSynchronousFallback) {
  MemBlockDevice dev(8);
  const Page data = test_page(2, 7);
  bool completed = false;
  AsyncIo io;
  io.op = AsyncIo::Op::kWrite;
  io.page = 2;
  io.data = data;
  static_cast<BlockDevice&>(dev).submit(io, [&](IoStatus st) {
    EXPECT_EQ(st, IoStatus::kOk);
    completed = true;
  });
  // No queue to drain: the base-class fallback completes inline.
  EXPECT_TRUE(completed);
  Page buf = make_page();
  EXPECT_EQ(dev.read(2, buf), IoStatus::kOk);
  EXPECT_EQ(buf, data);
}

// ---------------------------------------------------------------------------
// ConcurrentCache async engine
// ---------------------------------------------------------------------------

RaidGeometry engine_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

struct EngineRig {
  explicit EngineRig(std::uint32_t workers = 2, std::size_t shard_depth = 64,
                     std::size_t high = 1024, std::size_t low = 512)
      : array(engine_geo()), ssd(ssd_cfg()), kdd(cache_cfg(), &array, &ssd),
        cache(&kdd, &array.layout(), std::chrono::milliseconds(2)) {
    AsyncEngineOptions opts;
    opts.workers = workers;
    opts.shard_queue_depth = shard_depth;
    opts.high_watermark = high;
    opts.low_watermark = low;
    cache.start_async(opts);
  }

  static SsdConfig ssd_cfg() {
    SsdConfig cfg;
    cfg.logical_pages = 256;
    return cfg;
  }
  static PolicyConfig cache_cfg() {
    PolicyConfig cfg;
    cfg.ssd_pages = 256;
    cfg.ways = 8;
    return cfg;
  }

  RaidArray array;
  SsdModel ssd;
  KddCache kdd;
  ConcurrentCache cache;
};

TEST(AsyncEngine, CompletesSubmittedRequestsAndCountsThem) {
  EngineRig rig;
  std::atomic<int> done{0};
  const Page data = test_page(5, 1);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(rig.cache.submit_write(
        static_cast<Lba>(i), data, [&](IoStatus st) {
          EXPECT_EQ(st, IoStatus::kOk);
          done.fetch_add(1);
        }));
  }
  rig.cache.drain_async();
  EXPECT_EQ(done.load(), 32);
  const AsyncEngineStats st = rig.cache.async_stats();
  EXPECT_EQ(st.submitted, 32u);
  EXPECT_EQ(st.completed, 32u);
  EXPECT_EQ(st.inflight, 0u);
  EXPECT_EQ(st.rejected, 0u);
  // The inflight gauge settles back to zero once the engine drains.
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().gauge(
                "kdd_inflight_requests"),
            0);
}

TEST(AsyncEngine, ReadObservesEarlierWriteToSameLba) {
  EngineRig rig;
  const Lba lba = 9;
  const Page v1 = test_page(lba, 1);
  const Page v2 = test_page(lba, 2);
  Page out = make_page();
  std::atomic<int> step{0};
  // Same LBA -> same shard FIFO: write v1, write v2, read must see v2.
  ASSERT_TRUE(rig.cache.submit_write(lba, v1, [&](IoStatus) { ++step; }));
  ASSERT_TRUE(rig.cache.submit_write(lba, v2, [&](IoStatus) { ++step; }));
  ASSERT_TRUE(rig.cache.submit_read(lba, out, [&](IoStatus st) {
    EXPECT_EQ(st, IoStatus::kOk);
    ++step;
  }));
  rig.cache.drain_async();
  EXPECT_EQ(step.load(), 3);
  EXPECT_EQ(out, v2);
}

TEST(AsyncEngine, TrySubmitRejectsWhenShardQueueFullAndGateClosed) {
  // One worker, tiny bounds: depth 2 per shard, gate closes at 3 in flight.
  EngineRig rig(/*workers=*/1, /*shard_depth=*/2, /*high=*/3, /*low=*/1);
  const std::uint64_t rejected_before =
      obs::MetricsRegistry::global().snapshot().counter(
          "kdd_admission_rejected_total");

  std::mutex mu;
  std::condition_variable cv;
  bool worker_blocked = false;
  bool release = false;
  const Lba lba = 4;
  const Page data = test_page(lba, 3);
  // First request parks the only worker inside its completion callback.
  ASSERT_TRUE(rig.cache.submit_write(lba, data, [&](IoStatus) {
    std::unique_lock<std::mutex> lock(mu);
    worker_blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  }));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_blocked; });
  }
  // Two more fill the (now unclaimed) shard queue to its depth bound and
  // push inflight to the high watermark.
  ASSERT_TRUE(rig.cache.submit_write(lba, data, {}));
  ASSERT_TRUE(rig.cache.submit_write(lba, data, {}));
  // Shard full *and* gate closed: non-blocking submission must bounce.
  bool cb_ran = false;
  EXPECT_FALSE(rig.cache.try_submit_write(lba, data,
                                          [&](IoStatus) { cb_ran = true; }));
  EXPECT_FALSE(cb_ran);
  const AsyncEngineStats mid = rig.cache.async_stats();
  EXPECT_EQ(mid.rejected, 1u);
  EXPECT_EQ(mid.submitted, 3u);
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().counter(
                "kdd_admission_rejected_total"),
            rejected_before + 1);

  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  rig.cache.drain_async();
  // Watermark hysteresis reopened the gate; submission works again.
  EXPECT_TRUE(rig.cache.try_submit_write(lba, data, {}));
  rig.cache.drain_async();
  const AsyncEngineStats st = rig.cache.async_stats();
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.inflight, 0u);
}

TEST(AsyncEngine, BlockingSubmitStallsInsteadOfRejecting) {
  EngineRig rig(/*workers=*/1, /*shard_depth=*/1, /*high=*/64, /*low=*/32);
  std::mutex mu;
  std::condition_variable cv;
  bool worker_blocked = false;
  bool release = false;
  const Lba lba = 4;
  const Page data = test_page(lba, 3);
  ASSERT_TRUE(rig.cache.submit_write(lba, data, [&](IoStatus) {
    std::unique_lock<std::mutex> lock(mu);
    worker_blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  }));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_blocked; });
  }
  ASSERT_TRUE(rig.cache.submit_write(lba, data, {}));  // fills depth-1 queue
  // This submission must wait for shard space rather than bounce. Release
  // the worker from another thread after it is provably waiting.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      const std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  });
  EXPECT_TRUE(rig.cache.submit_write(lba, data, {}));
  releaser.join();
  rig.cache.drain_async();
  const AsyncEngineStats st = rig.cache.async_stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_GE(st.stalls, 1u);
}

TEST(AsyncEngine, QuiesceRejectsNewSubmissionsUntilResume) {
  EngineRig rig;
  const Page data = test_page(1, 1);
  rig.cache.quiesce_submissions();
  EXPECT_FALSE(rig.cache.submit_write(1, data, {}));
  Page out = make_page();
  EXPECT_FALSE(rig.cache.try_submit_read(1, out, {}));
  EXPECT_EQ(rig.cache.async_stats().rejected, 2u);
  rig.cache.resume_submissions();
  EXPECT_TRUE(rig.cache.submit_write(1, data, {}));
  rig.cache.drain_async();
  EXPECT_EQ(rig.cache.async_stats().completed, 1u);
}

TEST(AsyncEngine, FlushWaitsForOutstandingAsyncWrites) {
  EngineRig rig;
  std::vector<Page> pages;
  for (Lba lba = 0; lba < 24; ++lba) {
    pages.push_back(test_page(lba, 100 + lba));
    ASSERT_TRUE(rig.cache.submit_write(lba, pages.back(), {}));
  }
  // flush() must act as a drain barrier: every submitted write lands in the
  // flushed state without an explicit drain_async() first.
  rig.cache.flush();
  EXPECT_EQ(rig.cache.async_stats().inflight, 0u);
  Page buf = make_page();
  for (Lba lba = 0; lba < 24; ++lba) {
    ASSERT_EQ(rig.cache.read(lba, buf), IoStatus::kOk);
    EXPECT_EQ(buf, pages[lba]) << "lba " << lba;
  }
}

TEST(AsyncEngine, QueueWaitHistogramRecordsEveryRequest) {
  const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
  const std::uint64_t count_before =
      before.histogram("kdd_queue_wait_ns") != nullptr
          ? before.histogram("kdd_queue_wait_ns")->count()
          : 0;
  {
    EngineRig rig;
    const Page data = test_page(0, 9);
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(rig.cache.submit_write(static_cast<Lba>(i), data, {}));
    }
    rig.cache.drain_async();
  }
  const obs::MetricsSnapshot after = obs::MetricsRegistry::global().snapshot();
  ASSERT_NE(after.histogram("kdd_queue_wait_ns"), nullptr);
  EXPECT_EQ(after.histogram("kdd_queue_wait_ns")->count(), count_before + 16);
}

// ---------------------------------------------------------------------------
// Sync-vs-async replay equivalence (the acceptance digest check)
// ---------------------------------------------------------------------------

TEST(AsyncEngine, SyncAndAsyncReplayDigestsAreByteIdentical) {
  SyntheticTraceConfig tcfg = fin1_config(0.01);
  tcfg.seed = 11;
  const Trace trace = generate_synthetic_trace(tcfg);
  const RaidGeometry geo = paper_geometry(tcfg.unique_total());
  const std::uint64_t array_pages = geo.data_pages();

  const auto sync_digest = [&](unsigned threads) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 1024;
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = scfg.logical_pages;
    KddCache kdd(cfg, &array, &ssd);
    ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2));
    (void)run_concurrent_trace(cache, array.layout(), trace, array_pages,
                               threads, /*seed=*/7);
    return replay_readback_digest(cache, array_pages);
  };
  const auto async_digest = [&](unsigned threads, unsigned qd) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 1024;
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = scfg.logical_pages;
    KddCache kdd(cfg, &array, &ssd);
    ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2));
    AsyncEngineOptions opts;
    opts.workers = threads;
    opts.shard_queue_depth = qd;
    opts.high_watermark = 4ull * threads * qd;
    opts.low_watermark = 2ull * threads * qd;
    cache.start_async(opts);
    (void)run_concurrent_trace_async(cache, array.layout(), trace, array_pages,
                                     threads, /*seed=*/7, qd);
    return replay_readback_digest(cache, array_pages);
  };

  const std::uint64_t want = sync_digest(1);
  EXPECT_EQ(sync_digest(4), want);
  const unsigned points[][2] = {{1, 4}, {2, 16}, {4, 64}, {8, 256}};
  for (const auto& p : points) {
    EXPECT_EQ(async_digest(p[0], p[1]), want)
        << "threads=" << p[0] << " qd=" << p[1];
  }
}

// ---------------------------------------------------------------------------
// Disk failure mid-flight: quiesce discipline
// ---------------------------------------------------------------------------

OnlineRebuildConfig slow_rebuild() {
  OnlineRebuildConfig cfg;
  cfg.chunk_groups = 8;
  cfg.min_chunk_groups = 2;
  cfg.ops_between_steps = 4;
  cfg.pressure_window = 64;
  return cfg;
}

struct OnlineAsyncRig {
  OnlineAsyncRig()
      : array(engine_geo()), ssd(EngineRig::ssd_cfg()), nvram(kPageSize, 255),
        engine(&array, slow_rebuild()),
        kdd(EngineRig::cache_cfg(), &array, &ssd, &nvram),
        cache(&kdd, &array.layout(), std::chrono::milliseconds(2)) {
    kdd.bind_rebuild_engine(&engine);
    AsyncEngineOptions opts;
    opts.workers = 2;
    opts.shard_queue_depth = 32;
    opts.high_watermark = 256;
    opts.low_watermark = 128;
    cache.start_async(opts);
  }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  RebuildEngine engine;
  KddCache kdd;
  ConcurrentCache cache;
};

TEST(AsyncEngine, OnlineDiskFailureQuiescesThenRecovers) {
  OnlineAsyncRig rig;
  const Lba span = 200;
  // Submitter writes each LBA exactly once while the main thread fails a
  // disk mid-flight. Quiesce bounces submissions during the handoff, so the
  // client retries — exactly the backpressure contract.
  std::thread submitter([&] {
    for (Lba lba = 0; lba < span; ++lba) {
      const Page data = test_page(lba, 1000 + lba);
      while (!rig.cache.submit_write(lba, data, [](IoStatus st) {
        ASSERT_EQ(st, IoStatus::kOk);
      })) {
        std::this_thread::yield();
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(rig.cache.handle_disk_failure_online(1));
  EXPECT_NE(rig.engine.health(), ArrayHealth::kHealthy);
  submitter.join();
  rig.cache.drain_async();

  // Degraded/rebuilding reads must still return every committed write.
  Page buf = make_page();
  for (Lba lba = 0; lba < span; ++lba) {
    ASSERT_EQ(rig.cache.read(lba, buf), IoStatus::kOk) << "lba " << lba;
    ASSERT_EQ(buf, test_page(lba, 1000 + lba)) << "lba " << lba;
  }
  const AsyncEngineStats st = rig.cache.async_stats();
  EXPECT_EQ(st.submitted, st.completed);
  EXPECT_EQ(st.inflight, 0u);
}

// ---------------------------------------------------------------------------
// TSan stress: submitters racing completions, flush barriers, and a disk
// failure landing mid-flight. Run with KDD_SANITIZE=thread in CI.
// ---------------------------------------------------------------------------

TEST(AsyncEngineStress, SubmittersRacingCompletionsFlushAndDiskFailure) {
  OnlineAsyncRig rig;
  constexpr unsigned kSubmitters = 4;
  constexpr int kOpsPerThread = 300;
  const Lba span = std::min<Lba>(rig.array.data_pages(), 640);
  std::atomic<std::uint64_t> completions{0};

  std::vector<std::thread> submitters;
  for (unsigned t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(500 + t);
      // Each submitter owns the parity groups congruent to its id, so the
      // per-group order invariant holds without cross-thread coordination.
      std::vector<Page> slots(8, make_page());
      std::atomic<unsigned> outstanding{0};
      for (int i = 0; i < kOpsPerThread; ++i) {
        Lba lba = rng.next_below(span);
        while (rig.array.layout().group_of(lba) % kSubmitters != t) {
          lba = rng.next_below(span);
        }
        while (outstanding.load(std::memory_order_acquire) >= slots.size()) {
          std::this_thread::yield();
        }
        const unsigned slot = static_cast<unsigned>(i) % slots.size();
        auto cb = [&completions, &outstanding](IoStatus st) {
          ASSERT_EQ(st, IoStatus::kOk);
          completions.fetch_add(1, std::memory_order_relaxed);
          outstanding.fetch_sub(1, std::memory_order_release);
        };
        outstanding.fetch_add(1, std::memory_order_relaxed);
        bool ok;
        if (rng.next_bool(0.7)) {
          fill_replay_page(lba, static_cast<std::uint64_t>(i), 7, slots[slot]);
          ok = rig.cache.submit_write(lba, slots[slot], cb);
        } else {
          ok = rig.cache.submit_read(lba, slots[slot], cb);
        }
        if (!ok) {
          // Quiesce window (disk failure below): drop and move on.
          outstanding.fetch_sub(1, std::memory_order_release);
        }
      }
      while (outstanding.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
    });
  }
  // Flush barriers racing the submitters.
  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    while (!stop_flusher.load(std::memory_order_relaxed)) {
      rig.cache.flush();
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  // Disk failure mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(rig.cache.handle_disk_failure_online(2));

  for (std::thread& s : submitters) s.join();
  stop_flusher.store(true, std::memory_order_relaxed);
  flusher.join();
  rig.cache.drain_async();
  rig.cache.flush();

  const AsyncEngineStats st = rig.cache.async_stats();
  EXPECT_EQ(st.submitted, st.completed);
  EXPECT_EQ(st.inflight, 0u);
  EXPECT_EQ(completions.load(), st.completed);
}

// Destroying the cache with requests still in flight must quiesce cleanly
// (destructor drains before joining the workers).
TEST(AsyncEngineStress, DestructorQuiescesWithRequestsInFlight) {
  std::atomic<int> done{0};
  {
    EngineRig rig;
    const Page data = test_page(0, 1);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(rig.cache.submit_write(static_cast<Lba>(i % 100), data,
                                         [&](IoStatus) { ++done; }));
    }
    // No drain: the destructor must wait for all 64 completions itself.
  }
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace kdd
