// Cross-cutting integration tests: the timed simulator over real data
// planes, parity maintenance with failed parity disks, and trace utilities'
// degenerate inputs.
#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "policies/nocache.hpp"
#include "kdd/kdd_cache.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace kdd {
namespace {

using testing::test_page;

TEST(Integration, TimedSimulatorOverRealDataPlane) {
  // The event simulator drives a prototype-mode KDD: timing comes from the
  // plans while real bytes flow underneath; afterwards the array must scrub
  // clean and the SSD must show real wear.
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 8;
  geo.disk_pages = 1024;
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 512;
  SsdModel ssd(scfg);
  PolicyConfig cfg;
  cfg.ssd_pages = 512;
  KddCache kdd(cfg, &array, &ssd);

  EventSimulator sim(paper_sim_config(geo.num_disks), &kdd);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 1024;
  wcfg.total_requests = 4000;
  wcfg.read_rate = 0.4;
  wcfg.array_pages = geo.data_pages();
  ZipfWorkload workload(wcfg);
  const SimResult r = sim.run_closed_loop(workload, 8);
  EXPECT_EQ(r.requests, 4000u);
  EXPECT_GT(r.latency.mean_us(), 0.0);
  EXPECT_GT(ssd.wear().host_page_writes, 0u);
  kdd.check_invariants();
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(Integration, SimulatorReportsUtilization) {
  RaidGeometry geo = paper_geometry(8191);
  NoCachePolicy policy(geo);
  EventSimulator sim(paper_sim_config(geo.num_disks), &policy);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 4096;
  wcfg.total_requests = 1000;
  wcfg.read_rate = 0.0;  // all RMW: disks saturate
  wcfg.array_pages = geo.data_pages();
  ZipfWorkload workload(wcfg);
  const SimResult r = sim.run_closed_loop(workload, 16);
  ASSERT_EQ(r.hdd_busy_us.size(), geo.num_disks);
  EXPECT_GT(r.max_hdd_utilization(), 0.3);
  EXPECT_LE(r.max_hdd_utilization(), 1.0);
  EXPECT_GT(r.throughput_iops(), 0.0);
  EXPECT_EQ(r.ssd_busy_us, 0u);  // Nossd never touches the SSD
}

TEST(Integration, ParityUpdateWithFailedParityDiskIsGraceful) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  RaidArray array(geo);
  const Lba lba = 3;
  ASSERT_EQ(array.write_page(lba, test_page(lba, 0)), IoStatus::kOk);
  ASSERT_EQ(array.write_page_nopar(lba, test_page(lba, 1)), IoStatus::kOk);
  const GroupId g = array.layout().group_of(lba);
  array.fail_disk(array.layout().parity_addr(g).disk);
  // Nothing to update on a dead parity disk; the call must still succeed and
  // clear the deferred state.
  const Page diff = xor_pages(test_page(lba, 0), test_page(lba, 1));
  const GroupDelta delta{array.layout().index_in_group(lba), &diff};
  EXPECT_EQ(array.update_parity_rmw(g, {&delta, 1}), IoStatus::kOk);
  EXPECT_FALSE(array.group_stale(g));
  // Rebuilding the parity disk recomputes fresh parity from current data.
  EXPECT_EQ(array.rebuild_disk(array.layout().parity_addr(g).disk), 0u);
  EXPECT_TRUE(array.scrub().empty());
  Page buf = make_page();
  ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
  EXPECT_EQ(buf, test_page(lba, 1));
}

TEST(Integration, RescaleDurationHandlesDegenerateTraces) {
  Trace empty;
  rescale_duration(empty, 1000);  // no crash
  Trace burst;
  burst.records = {{5, 0, 1, true}, {5, 1, 1, true}, {5, 2, 1, true}};
  rescale_duration(burst, 3000);  // zero span: spread evenly
  EXPECT_EQ(burst.records[0].time_us, 0u);
  EXPECT_LT(burst.records[1].time_us, 3000u);
  EXPECT_GT(burst.records[2].time_us, burst.records[1].time_us);
}

TEST(Integration, AllPoliciesSurviveEmptyAndSingleRequestTraces) {
  const RaidGeometry geo = paper_geometry(1000);
  PolicyConfig cfg;
  cfg.ssd_pages = 2048;
  for (const PolicyKind kind : {PolicyKind::kNossd, PolicyKind::kWT, PolicyKind::kWA,
                                PolicyKind::kLeavO, PolicyKind::kKdd, PolicyKind::kWB}) {
    auto policy = make_policy(kind, cfg, geo);
    Trace empty;
    const CacheStats s0 = run_counter_trace(*policy, empty, geo.data_pages());
    EXPECT_EQ(s0.requests(), 0u);
    Trace one;
    one.records = {{0, 5, 1, false}};
    const CacheStats s1 = run_counter_trace(*policy, one, geo.data_pages());
    EXPECT_EQ(s1.requests(), 1u) << policy->name();
  }
}

}  // namespace
}  // namespace kdd
