// Log-structured segment staging (src/cache/segment.*): stager unit tests
// (buffering, coalescing, header format, CRC rejection), the staged cache
// end-to-end against a reference model, and crash recovery's accept/discard
// exactness for the one in-flight segment.

#include "cache/segment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

SegmentConfig small_segment() {
  SegmentConfig cfg;
  cfg.segment_pages = 4;
  cfg.ring_pages = 4;
  cfg.ring_base = 100;
  return cfg;
}

// ---------------------------------------------------------------------------
// SegmentStager unit tests (no device involved)
// ---------------------------------------------------------------------------

TEST(SegmentStager, StageCoalesceReadThroughAndDrop) {
  SegmentStager stager(small_segment(), /*counter_mode=*/false);
  EXPECT_TRUE(stager.empty());
  EXPECT_FALSE(stager.stage(10, test_page(10, 0)));
  EXPECT_FALSE(stager.stage(20, test_page(20, 0)));
  EXPECT_EQ(stager.live_pages(), 2u);
  EXPECT_TRUE(stager.pending(10));
  EXPECT_FALSE(stager.pending(11));

  Page out = make_page();
  ASSERT_TRUE(stager.read_pending(10, out));
  EXPECT_EQ(out, test_page(10, 0));

  // Re-staging the same LBA coalesces in place: live count unchanged, the
  // newer bytes win.
  EXPECT_FALSE(stager.stage(10, test_page(10, 1)));
  EXPECT_EQ(stager.live_pages(), 2u);
  ASSERT_TRUE(stager.read_pending(10, out));
  EXPECT_EQ(out, test_page(10, 1));

  stager.drop(20);
  EXPECT_FALSE(stager.pending(20));
  EXPECT_EQ(stager.live_pages(), 1u);
  EXPECT_FALSE(stager.read_pending(20, out));
}

TEST(SegmentStager, FullAtConfiguredSegmentPages) {
  SegmentStager stager(small_segment(), /*counter_mode=*/false);
  EXPECT_FALSE(stager.stage(1, test_page(1)));
  EXPECT_FALSE(stager.stage(2, test_page(2)));
  EXPECT_FALSE(stager.stage(3, test_page(3)));
  EXPECT_FALSE(stager.full());
  // The 4th distinct page fills the segment: stage() demands a seal.
  EXPECT_TRUE(stager.stage(4, test_page(4)));
  EXPECT_TRUE(stager.full());
}

TEST(SegmentStager, SealBatchIsHeaderFirstAndHeaderRoundTrips) {
  SegmentStager stager(small_segment(), /*counter_mode=*/false);
  stager.set_open_segment_id(7);
  stager.stage(10, test_page(10));
  stager.stage(30, test_page(30));
  stager.stage(20, test_page(20));
  stager.drop(30);

  Page header = make_page();
  const std::vector<PageWrite> batch = stager.build_seal(&header);
  ASSERT_EQ(batch.size(), 3u);  // header + 2 live payloads
  // Header page FIRST, at the ring slot for id 7 (base 100, 4 slots).
  EXPECT_EQ(batch.front().page, stager.header_slot());
  EXPECT_EQ(stager.header_slot(), 100u + 7u % 4u);

  std::uint64_t id = 0;
  std::vector<Lba> lbas;
  std::uint64_t payload_crc = 0;
  ASSERT_TRUE(SegmentStager::parse_header(header, &id, &lbas, &payload_crc));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(lbas, stager.live_lbas());
  ASSERT_EQ(lbas.size(), 2u);

  // The advertised payload CRC matches FNV-1a over the payload bytes in
  // batch order — recovery recomputes exactly this.
  std::uint64_t crc = SegmentStager::kFnvSeed;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].page, lbas[i - 1]);
    crc = SegmentStager::fnv1a(crc, batch[i].data);
  }
  EXPECT_EQ(crc, payload_crc);

  stager.finish_seal();
  EXPECT_TRUE(stager.empty());
  EXPECT_EQ(stager.open_segment_id(), 8u);
  EXPECT_EQ(stager.header_slot(), 100u + 8u % 4u);
}

TEST(SegmentStager, ParseHeaderRejectsTornForeignAndBlankPages) {
  SegmentStager stager(small_segment(), /*counter_mode=*/false);
  stager.stage(10, test_page(10));
  stager.stage(20, test_page(20));
  Page header = make_page();
  stager.build_seal(&header);

  std::uint64_t id = 0;
  std::vector<Lba> lbas;
  std::uint64_t crc = 0;
  ASSERT_TRUE(SegmentStager::parse_header(header, &id, &lbas, &crc));

  // A blank (never-written ring slot) page is not a header.
  const Page blank = make_page();
  EXPECT_FALSE(SegmentStager::parse_header(blank, &id, &lbas, &crc));

  // Any torn byte — in the fixed fields or the entry list — breaks the
  // header CRC.
  Page torn = header;
  torn[9] ^= 0x01;  // segment id field
  EXPECT_FALSE(SegmentStager::parse_header(torn, &id, &lbas, &crc));
  torn = header;
  torn[SegmentStager::kHeaderFixedBytes + 3] ^= 0x80;  // first LBA entry
  EXPECT_FALSE(SegmentStager::parse_header(torn, &id, &lbas, &crc));

  // A foreign page with the wrong magic fails immediately.
  Page foreign = header;
  foreign[0] ^= 0xff;
  EXPECT_FALSE(SegmentStager::parse_header(foreign, &id, &lbas, &crc));
}

TEST(SegmentStager, CounterModeStagesAddressesWithoutBytes) {
  SegmentStager stager(small_segment(), /*counter_mode=*/true);
  EXPECT_FALSE(stager.stage(5, {}));
  EXPECT_FALSE(stager.stage(6, {}));
  EXPECT_TRUE(stager.pending(5));
  Page out = make_page();
  EXPECT_FALSE(stager.read_pending(5, out));  // no bytes to read through
  Page header = make_page();
  const std::vector<PageWrite> batch = stager.build_seal(&header);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[1].data.empty());
  std::uint64_t id = 0;
  std::vector<Lba> lbas;
  std::uint64_t crc = 0;
  EXPECT_TRUE(SegmentStager::parse_header(header, &id, &lbas, &crc));
  EXPECT_EQ(lbas.size(), 2u);
}

TEST(SegmentStager, AbandonDiscardsWithoutAdvancingId) {
  SegmentStager stager(small_segment(), /*counter_mode=*/false);
  stager.set_open_segment_id(3);
  stager.stage(10, test_page(10));
  stager.stage(20, test_page(20));
  stager.abandon();
  EXPECT_TRUE(stager.empty());
  EXPECT_FALSE(stager.pending(10));
  EXPECT_EQ(stager.open_segment_id(), 3u);
}

// ---------------------------------------------------------------------------
// Staged cache end-to-end (prototype mode)
// ---------------------------------------------------------------------------

RaidGeometry small_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig staged_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  cfg.segment_staging = true;
  cfg.segment_pages = 16;
  return cfg;
}

SsdConfig small_ssd() {
  SsdConfig cfg;
  cfg.logical_pages = 256;
  cfg.pages_per_block = 16;
  return cfg;
}

TEST(SegmentCache, ReadYourWritesWithStagingEnabled) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdModel ssd(small_ssd());
  KddCache kdd(staged_config(), &array, &ssd);
  const ContentGenerator gen(21);
  ReferenceModel model;
  Rng rng(22);
  Page buf = make_page();
  for (int i = 0; i < 1500; ++i) {
    const Lba lba = rng.next_below(200);
    if (rng.next_bool(0.55)) {
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data = model.contains(lba) ? gen.mutate(base, 0.25, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
  }
  kdd.check_invariants();
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());

  const SegmentStats& ss = kdd.cache_ssd().segment_stats();
  EXPECT_GT(ss.seals, 0u);
  EXPECT_GT(ss.pages_sealed, 0u);
  EXPECT_EQ(ss.lost_pages, 0u);
  // The whole point: far fewer SSD write commands than committed pages.
  EXPECT_LT(kdd.cache_ssd().write_ops() * 4, kdd.cache_ssd().pages_committed());
}

TEST(SegmentCache, StagingCutsWriteCommandsVsUnstagedSameTrace) {
  auto run = [](bool staged) {
    const RaidGeometry geo = small_geo();
    RaidArray array(geo);
    SsdModel ssd(small_ssd());
    PolicyConfig cfg = staged_config();
    cfg.segment_staging = staged;
    KddCache kdd(cfg, &array, &ssd);
    const ContentGenerator gen(31);
    Rng rng(32);
    for (int i = 0; i < 1200; ++i) {
      const Lba lba = rng.next_below(160);
      const Page data = gen.base_page(lba);
      EXPECT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
    }
    kdd.flush(nullptr);
    struct {
      std::uint64_t ops, pages;
      SsdWearStats wear;
    } r{kdd.cache_ssd().write_ops(), kdd.cache_ssd().pages_committed(), ssd.wear()};
    return r;
  };
  const auto staged = run(true);
  const auto unstaged = run(false);
  // Both commit the same page stream; the staged run batches them into a
  // handful of sequential commands instead of one random command per page.
  EXPECT_EQ(staged.pages, unstaged.pages);
  EXPECT_LT(staged.ops * 4, unstaged.ops);
  EXPECT_GT(staged.wear.host_write_ops_seq, 0u);
  EXPECT_EQ(unstaged.wear.host_write_ops_seq, 0u);
  EXPECT_LT(staged.wear.host_write_ops_rand, unstaged.wear.host_write_ops_rand);
}

// ---------------------------------------------------------------------------
// Crash recovery: accept / discard exactness for the one in-flight segment
// ---------------------------------------------------------------------------

struct RecoveryRig {
  RaidGeometry geo = small_geo();
  std::unique_ptr<RaidArray> array;
  std::unique_ptr<SsdModel> ssd;
  NvramState nvram;
  std::unique_ptr<KddCache> kdd;

  explicit RecoveryRig(const PolicyConfig& cfg)
      : nvram(cfg.staging_buffer_bytes, cfg.metadata_buffer_entries) {
    array = std::make_unique<RaidArray>(geo);
    ssd = std::make_unique<SsdModel>(small_ssd());
    kdd = std::make_unique<KddCache>(cfg, array.get(), ssd.get(), &nvram);
  }
  void reopen(const PolicyConfig& cfg) {
    kdd = std::make_unique<KddCache>(cfg, array.get(), ssd.get(), &nvram,
                                     /*recover=*/true);
  }
};

TEST(SegmentRecovery, TornFlushDiscardsExactlyTheListedPages) {
  const PolicyConfig cfg = staged_config();
  RecoveryRig rig(cfg);
  const ContentGenerator gen(41);
  ReferenceModel model;

  // A settled base state, fully sealed.
  for (Lba lba = 0; lba < 24; ++lba) {
    const Page data = gen.base_page(lba);
    ASSERT_EQ(rig.kdd->write(lba, data, nullptr), IoStatus::kOk);
    model.write(lba, data);
  }
  rig.kdd->flush(nullptr);
  const std::uint64_t seq_before = rig.nvram.segment_seq;

  // Stage a few more commits (RAM only — no media writes yet), then tear the
  // seal mid-vector: the header passes, the first payload page is torn.
  Rng rng(42);
  for (Lba lba = 30; lba < 35; ++lba) {
    const Page data = gen.base_page(lba);
    ASSERT_EQ(rig.kdd->write(lba, data, nullptr), IoStatus::kOk);
    model.write(lba, data);
  }
  SegmentStager* stager = rig.kdd->cache_ssd().stager();
  ASSERT_NE(stager, nullptr);
  const std::size_t staged_pages = stager->live_pages();
  ASSERT_GT(staged_pages, 0u);
  rig.kdd->cache_ssd().faults()->arm_power_cut(1);
  EXPECT_NE(rig.kdd->force_seal(nullptr), IoStatus::kOk);
  EXPECT_EQ(rig.kdd->cache_ssd().faults()->fault_counters().torn_writes, 1u);
  EXPECT_FALSE(rig.kdd->cache_ssd().faults()->powered());
  EXPECT_EQ(rig.nvram.segment_seq, seq_before);  // seal never completed

  // Power-cycle: destroy the cache (its teardown I/O is rejected by the dead
  // rail, exactly like a real cut) and recover a fresh instance.
  rig.reopen(cfg);
  const SegmentStats& ss = rig.kdd->cache_ssd().segment_stats();
  EXPECT_EQ(ss.discarded_segments, 1u);
  EXPECT_EQ(ss.discarded_pages, staged_pages);
  EXPECT_EQ(ss.recovered_segments, 0u);

  // Acked data survives: every page reads back from the recovered stack
  // (discarded cache pages fall back to the always-current RAID copy).
  Page buf = make_page();
  for (Lba lba = 0; lba < 35; ++lba) {
    if (!model.contains(lba)) continue;
    ASSERT_EQ(rig.kdd->read(lba, buf, nullptr), IoStatus::kOk) << "lba " << lba;
    EXPECT_EQ(buf, model.read(lba)) << "lba " << lba;
  }
  rig.kdd->flush(nullptr);
  EXPECT_TRUE(rig.array->scrub().empty());
}

TEST(SegmentRecovery, CompletedFlushWithLaggingNvramSeqIsAccepted) {
  const PolicyConfig cfg = staged_config();
  RecoveryRig rig(cfg);
  const ContentGenerator gen(51);
  ReferenceModel model;
  for (Lba lba = 0; lba < 40; ++lba) {
    const Page data = gen.base_page(lba);
    ASSERT_EQ(rig.kdd->write(lba, data, nullptr), IoStatus::kOk);
    model.write(lba, data);
  }
  rig.kdd->flush(nullptr);
  rig.kdd.reset();  // clean shutdown: every segment sealed, media complete
  const std::uint64_t seq_after = rig.nvram.segment_seq;
  ASSERT_GT(seq_after, 0u);

  // Model NVRAM lagging the media (the seq bump is not ordered against the
  // segment write): recovery re-examines the last sealed segment, proves it
  // fully persisted via the payload CRC, and accepts it.
  rig.nvram.segment_seq = seq_after - 1;
  rig.reopen(cfg);
  const SegmentStats& ss = rig.kdd->cache_ssd().segment_stats();
  EXPECT_EQ(ss.recovered_segments, 1u);
  EXPECT_EQ(ss.discarded_segments, 0u);
  EXPECT_EQ(rig.nvram.segment_seq, seq_after);  // epoch re-advanced

  Page buf = make_page();
  for (Lba lba = 0; lba < 40; ++lba) {
    ASSERT_EQ(rig.kdd->read(lba, buf, nullptr), IoStatus::kOk) << "lba " << lba;
    EXPECT_EQ(buf, model.read(lba)) << "lba " << lba;
  }
  rig.kdd->flush(nullptr);
  EXPECT_TRUE(rig.array->scrub().empty());
}

}  // namespace
}  // namespace kdd
