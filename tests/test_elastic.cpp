// Elastic compression-aware delta zone (ROADMAP item 3): the variable-size
// extent allocator (src/cache/dez_space), the online delta-zone GC/defrag,
// and the adaptive DAZ/DEZ boundary with its elastic spare.

#include "cache/dez_space.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "cache/nvram.hpp"
#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/rebuild.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;

// ---------------------------------------------------------------------------
// DezSpace: the variable-size slot allocator
// ---------------------------------------------------------------------------

TEST(DezSpace, AppendTracksTailLiveAndOffsets) {
  DezSpace sp;
  sp.reset(16);
  sp.open_page(3);
  EXPECT_TRUE(sp.tracked(3));
  EXPECT_EQ(sp.extent(3).remaining(), kPageSize);
  EXPECT_EQ(sp.append(3, 100), 0u);
  EXPECT_EQ(sp.append(3, 200), 100u);
  EXPECT_EQ(sp.append(3, 50), 300u);
  const DezSpace::Extent& e = sp.extent(3);
  EXPECT_EQ(e.tail, 350u);
  EXPECT_EQ(e.live_bytes, 350u);
  EXPECT_EQ(e.live_count, 3u);
  EXPECT_EQ(e.dead_bytes(), 0u);
  EXPECT_EQ(e.remaining(), kPageSize - 350u);
  EXPECT_EQ(sp.pages(), 1u);
  EXPECT_EQ(sp.live_bytes(), 350u);
}

TEST(DezSpace, BestFitPrefersSmallestClassThatFits) {
  DezSpace sp;
  sp.reset(16);
  // Extent 0: 3900 B free. Extent 1: 600 B free. Extent 2: 90 B free.
  sp.open_page(0);
  sp.append(0, 196);
  sp.open_page(1);
  sp.append(1, kPageSize - 600);
  sp.open_page(2);
  sp.append(2, kPageSize - 90);
  // A 500 B delta fits extents 0 and 1; best-fit-by-class picks the tighter 1.
  EXPECT_EQ(sp.find_open(500), 1u);
  // A 64 B delta fits everywhere; the tightest class that fits is extent 2.
  EXPECT_EQ(sp.find_open(64), 2u);
  // A 2000 B delta only fits the big extent.
  EXPECT_EQ(sp.find_open(2000), 0u);
  // Nothing has a whole page of slack.
  EXPECT_EQ(sp.find_open(kPageSize), DezSpace::kNone);
}

TEST(DezSpace, AppendRebinsAsSlackShrinks) {
  DezSpace sp;
  sp.reset(8);
  sp.open_page(0);
  sp.append(0, 100);
  EXPECT_EQ(sp.find_open(3000), 0u);  // plenty of slack
  // Consume nearly everything: the extent must migrate to a smaller class
  // and stop being offered for large requests, while small ones still fit.
  sp.append(0, kPageSize - 100 - 80);
  EXPECT_EQ(sp.find_open(3000), DezSpace::kNone);
  EXPECT_EQ(sp.find_open(70), 0u);
  // Below the 64 B grain the extent leaves the bins entirely (but stays open
  // for accounting purposes: it was never explicitly closed).
  sp.append(0, 40);
  EXPECT_EQ(sp.find_open(64), DezSpace::kNone);
  EXPECT_TRUE(sp.extent(0).open);
}

TEST(DezSpace, CloseRemovesFromPlacementButKeepsAccounting) {
  DezSpace sp;
  sp.reset(8);
  sp.open_page(5);
  sp.append(5, 128);
  EXPECT_EQ(sp.find_open(128), 5u);
  sp.close_page(5);
  EXPECT_EQ(sp.find_open(128), DezSpace::kNone);
  EXPECT_TRUE(sp.tracked(5));
  EXPECT_EQ(sp.extent(5).live_bytes, 128u);
  EXPECT_EQ(sp.open_pages(), 0u);
}

TEST(DezSpace, DeadAndFreeAccounting) {
  DezSpace sp;
  sp.reset(8);
  sp.open_page(1);
  sp.append(1, 1000);
  sp.append(1, 500);
  sp.on_dead(1, 1000);
  EXPECT_EQ(sp.extent(1).live_bytes, 500u);
  EXPECT_EQ(sp.extent(1).live_count, 1u);
  EXPECT_EQ(sp.extent(1).dead_bytes(), 1000u);
  EXPECT_EQ(sp.dead_bytes(), 1000u);
  sp.on_dead(1, 500);
  sp.on_free(1);
  EXPECT_FALSE(sp.tracked(1));
  EXPECT_EQ(sp.pages(), 0u);
  EXPECT_EQ(sp.live_bytes(), 0u);
  EXPECT_EQ(sp.dead_bytes(), 0u);
  // The slot is reusable as a fresh extent afterwards.
  sp.open_page(1);
  EXPECT_EQ(sp.append(1, 64), 0u);
}

TEST(DezSpace, PickVictimsHonoursThresholdAndOrdersMostDeadFirst) {
  DezSpace sp;
  sp.reset(16);
  // Four extents, seven 500 B deltas each; kill 6 / 2 / 5 / 0 of them, so the
  // dead-byte ledgers read 3000 / 1000 / 2500 / 0 with at least one live
  // delta left everywhere (fully-dead pages free on the spot, never GC).
  const int dead_counts[4] = {6, 2, 5, 0};
  for (std::uint32_t idx = 0; idx < 4; ++idx) {
    sp.open_page(idx);
    for (int i = 0; i < 7; ++i) sp.append(idx, 500);
    for (int i = 0; i < dead_counts[idx]; ++i) sp.on_dead(idx, 500);
  }
  // Threshold 0.5 * 4096 = 2048 dead bytes: extents 0 and 2, most-dead first.
  const std::vector<std::uint32_t> victims = sp.pick_victims(0.5, 8);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 0u);
  EXPECT_EQ(victims[1], 2u);
  ASSERT_EQ(sp.pick_victims(0.5, 1).size(), 1u);
  EXPECT_EQ(sp.pick_victims(0.5, 1)[0], 0u);
  EXPECT_EQ(sp.pick_victims(0.9, 8).size(), 0u);
}

TEST(DezSpace, RestoredExtentsStayClosedToAppends) {
  DezSpace sp;
  sp.reset(8);
  // Recovery rebuilt a census from the mappings: the tail is a lower bound,
  // so the extent must never be offered for appends (a crash-era delta could
  // live beyond it) — but it is still a GC victim candidate.
  sp.restore_page(2, 1024, 256, 1);
  EXPECT_TRUE(sp.tracked(2));
  EXPECT_FALSE(sp.extent(2).open);
  EXPECT_EQ(sp.find_open(64), DezSpace::kNone);
  const std::vector<std::uint32_t> victims = sp.pick_victims(0.15, 4);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

// ---------------------------------------------------------------------------
// End-to-end: elastic placement, GC, boundary, spare
// ---------------------------------------------------------------------------

RaidGeometry small_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

SsdConfig small_ssd() {
  SsdConfig cfg;
  cfg.logical_pages = 256;
  cfg.pages_per_block = 16;
  return cfg;
}

PolicyConfig elastic_cfg() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  cfg.dez_elastic = true;
  cfg.dez_gc = true;
  return cfg;
}

/// Seeded read/write mix against a reference model; every read is verified.
void run_mix(KddCache& kdd, ReferenceModel& model, const ContentGenerator& gen,
             Rng& rng, int iters, Lba span, double mutate_ratio) {
  Page buf = make_page();
  for (int i = 0; i < iters; ++i) {
    const Lba lba = rng.next_below(span);
    if (rng.next_bool(0.6)) {
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data =
          model.contains(lba) ? gen.mutate(base, mutate_ratio, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk) << "iter " << i;
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk) << "iter " << i;
      ASSERT_EQ(buf, model.read(lba)) << "lba " << lba << " iter " << i;
    }
  }
}

TEST(ElasticDez, ElasticPlacementPacksDenserThanFixed) {
  // Same seeded compressible workload twice; only the placement differs.
  // Elastic commits append into open-extent slack, so the surviving DEZ
  // extents carry more packed bytes per page than fixed write-once pages.
  double density[2] = {0.0, 0.0};
  std::uint64_t pages[2] = {0, 0};
  for (const bool elastic : {false, true}) {
    RaidArray array(small_geo());
    SsdModel ssd(small_ssd());
    PolicyConfig cfg = elastic_cfg();
    cfg.dez_elastic = elastic;
    cfg.dez_gc = false;  // isolate the allocator effect
    // High watermark: keep deltas resident instead of cleaning them away.
    cfg.clean_high_watermark = 0.9;
    KddCache kdd(cfg, &array, &ssd);
    ReferenceModel model;
    const ContentGenerator gen(21);
    Rng rng(22);
    run_mix(kdd, model, gen, rng, 1200, 120, 0.05);
    kdd.check_invariants();
    ASSERT_GT(kdd.dez_pages(), 0u);
    pages[elastic ? 1 : 0] = kdd.dez_pages();
    density[elastic ? 1 : 0] =
        static_cast<double>(kdd.dez_live_bytes() + kdd.dez_dead_bytes()) /
        static_cast<double>(kdd.dez_pages());
    kdd.flush(nullptr);
    EXPECT_TRUE(array.scrub().empty());
  }
  EXPECT_GT(density[1], density[0])
      << "elastic placement should pack more bytes into each DEZ page";
  EXPECT_LE(pages[1], pages[0])
      << "denser packing must not cost extra DEZ pages";
}

TEST(ElasticDez, GcReclaimsFragmentedPagesAndDataSurvives) {
  RaidArray array(small_geo());
  SsdModel ssd(small_ssd());
  PolicyConfig cfg = elastic_cfg();
  cfg.clean_high_watermark = 0.9;  // cleaning would reclaim pages first
  cfg.dez_gc_dead_ratio = 0.3;
  KddCache kdd(cfg, &array, &ssd);
  ReferenceModel model;
  const ContentGenerator gen(31);
  Rng rng(32);
  // Round 1 populates DEZ pages; round 2 overwrites the same LBAs, so every
  // superseded delta leaves a dead hole behind.
  run_mix(kdd, model, gen, rng, 900, 100, 0.05);
  run_mix(kdd, model, gen, rng, 900, 100, 0.05);
  EXPECT_GT(kdd.dez_dead_bytes(), 0u);
  kdd.on_idle(nullptr);  // idle runs the GC
  EXPECT_GT(kdd.gc_passes(), 0u);
  EXPECT_GT(kdd.gc_deltas_relocated(), 0u);
  EXPECT_GT(kdd.gc_pages_reclaimed(), 0u);
  kdd.check_invariants();
  // Every relocated delta must still combine correctly.
  Page buf = make_page();
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
    ASSERT_EQ(buf, page) << "lba " << lba;
  }
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(ElasticDez, BoundaryTracksCompressibilityWithoutThrashing) {
  RaidArray array(small_geo());
  SsdModel ssd(small_ssd());
  PolicyConfig cfg = elastic_cfg();
  cfg.adaptive_boundary = true;
  cfg.boundary_epoch_ops = 64;
  KddCache kdd(cfg, &array, &ssd);
  ReferenceModel model;
  const ContentGenerator gen(41);
  Rng rng(42);

  // Incompressible phase: the boundary must shrink the delta zone.
  run_mix(kdd, model, gen, rng, 1000, 120, 0.95);
  const std::uint64_t limit_incompressible = kdd.dez_boundary_pages();
  ASSERT_GT(limit_incompressible, 0u);

  // Compressible phase: the zone earns pages back.
  run_mix(kdd, model, gen, rng, 1000, 120, 0.05);
  const std::uint64_t limit_compressible = kdd.dez_boundary_pages();
  EXPECT_GT(limit_compressible, limit_incompressible);

  // Hysteresis: compressibility flipping on every single update must not
  // thrash the boundary. The EWMA settles near the blend and the dead band
  // absorbs its residual ripple, so across 32 epochs the boundary makes at
  // most a short initial approach — not a move per epoch.
  const std::uint64_t moves_before = kdd.boundary_moves();
  Page buf = make_page();
  for (int i = 0; i < 2048; ++i) {
    const Lba lba = rng.next_below(120);
    const double ratio = (i % 2) == 0 ? 0.95 : 0.05;
    if (rng.next_bool(0.6)) {
      const Page base =
          model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data =
          model.contains(lba) ? gen.mutate(base, ratio, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk) << "iter " << i;
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk) << "iter " << i;
      ASSERT_EQ(buf, model.read(lba)) << "iter " << i;
    }
  }
  const std::uint64_t moves = kdd.boundary_moves() - moves_before;
  EXPECT_LE(moves, 10u) << "boundary thrashes under alternating compressibility";
  kdd.check_invariants();
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(ElasticDez, ElasticSpareBoostsCleaningHeadroomWhenDegraded) {
  RaidArray array(small_geo());
  SsdModel ssd(small_ssd());
  NvramState nvram(kPageSize, 255);
  OnlineRebuildConfig rcfg;
  rcfg.chunk_groups = 4;
  rcfg.min_chunk_groups = 2;
  rcfg.ops_between_steps = 8;
  RebuildEngine engine(&array, rcfg);
  PolicyConfig cfg = elastic_cfg();
  cfg.adaptive_boundary = true;
  cfg.boundary_epoch_ops = 64;
  auto kdd = std::make_unique<KddCache>(cfg, &array, &ssd, &nvram);
  kdd->bind_rebuild_engine(&engine);
  ReferenceModel model;
  const ContentGenerator gen(51);
  Rng rng(52);

  // Compressible traffic keeps DEZ usage small: the gap to the boundary is
  // the elastic spare, and a quarter of it pads the healthy-mode watermark.
  run_mix(*kdd, model, gen, rng, 1500, 150, 0.05);
  const std::uint64_t base_high = static_cast<std::uint64_t>(
      cfg.clean_high_watermark * static_cast<double>(kdd->sets().pages()));
  ASSERT_GT(kdd->elastic_spare_pages(), 0u);
  const std::uint64_t healthy_high = kdd->effective_clean_high_pages();
  EXPECT_GT(healthy_high, base_high);

  // Degraded: the whole spare absorbs rebuild-era cleaning pressure.
  ASSERT_TRUE(kdd->handle_disk_failure_online(2));
  const std::uint64_t degraded_high = kdd->effective_clean_high_pages();
  EXPECT_GT(degraded_high, healthy_high);

  // Live traffic through the rebuild, then verify everything survived.
  int guard = 0;
  while (engine.rebuild_active()) {
    ASSERT_LT(++guard, 40);
    run_mix(*kdd, model, gen, rng, 200, 150, 0.05);
  }
  Page buf = make_page();
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(kdd->read(lba, buf, nullptr), IoStatus::kOk);
    ASSERT_EQ(buf, page) << "lba " << lba;
  }
  kdd->check_invariants();
  kdd->flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(ElasticDez, CounterModeAccountingMatchesInvariants) {
  // Counter mode: extent accounting is always-on and must stay consistent
  // with the slot mappings even with every elastic behaviour enabled.
  PolicyConfig cfg = elastic_cfg();
  cfg.adaptive_boundary = true;
  cfg.boundary_epoch_ops = 64;
  cfg.delta_ratio_mean = 0.15;
  KddCache kdd(cfg, small_geo());
  Rng rng(61);
  for (int i = 0; i < 3000; ++i) {
    const Lba lba = rng.next_below(200);
    if (rng.next_bool(0.6)) {
      kdd.write(lba, {}, nullptr);
    } else {
      kdd.read(lba, {}, nullptr);
    }
    if (i % 500 == 499) kdd.check_invariants();
  }
  kdd.on_idle(nullptr);
  kdd.check_invariants();
}

}  // namespace
}  // namespace kdd
