#include "compress/lz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"

namespace kdd {
namespace {

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& input) {
  const std::vector<std::uint8_t> compressed = lz_compress(input);
  EXPECT_LE(compressed.size(), lz_max_compressed_size(input.size()));
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(lz_decompress(compressed, input.size(), out));
  return out;
}

TEST(Lz, EmptyInput) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(roundtrip(empty), empty);
}

TEST(Lz, SingleByte) {
  const std::vector<std::uint8_t> one{42};
  EXPECT_EQ(roundtrip(one), one);
}

TEST(Lz, ShortLiteralRun) {
  const std::vector<std::uint8_t> input{1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Lz, AllZerosCompressesHard) {
  const std::vector<std::uint8_t> zeros(4096, 0);
  const auto compressed = lz_compress(zeros);
  EXPECT_LT(compressed.size(), 64u);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(lz_decompress(compressed, zeros.size(), out));
  EXPECT_EQ(out, zeros);
}

TEST(Lz, RepeatingPatternCompresses) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 512; ++i) {
    input.push_back(static_cast<std::uint8_t>(i % 7));
  }
  const auto compressed = lz_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(lz_decompress(compressed, input.size(), out));
  EXPECT_EQ(out, input);
}

TEST(Lz, IncompressibleRandomRoundTrips) {
  Rng rng(7);
  std::vector<std::uint8_t> input(4096);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Lz, SparseXorLikeDeltaCompresses) {
  // The workload shape KDD cares about: mostly zeros with scattered runs.
  Rng rng(11);
  std::vector<std::uint8_t> input(4096, 0);
  for (int run = 0; run < 8; ++run) {
    const std::size_t start = rng.next_below(4096 - 32);
    for (std::size_t i = 0; i < 32; ++i) {
      input[start + i] = static_cast<std::uint8_t>(rng.next_u64());
    }
  }
  const auto compressed = lz_compress(input);
  EXPECT_LT(compressed.size(), 1024u);  // ~256 nonzero bytes + tokens
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(lz_decompress(compressed, input.size(), out));
  EXPECT_EQ(out, input);
}

TEST(Lz, OverlappingMatchRun) {
  // "abcabcabc..." exercises matches that overlap their own output.
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<std::uint8_t>("abc"[i % 3]));
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Lz, LongMatchNeedsLengthExtensionBytes) {
  std::vector<std::uint8_t> input(10000, 0xAB);
  input[0] = 1;  // break the leading literal
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Lz, ManyLiteralsNeedLengthExtensionBytes) {
  // > 15 literals before the first match forces literal-length extension.
  Rng rng(13);
  std::vector<std::uint8_t> input(400);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u64());
  input.resize(500, 0x11);  // trailing run gives one match
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Lz, DecompressRejectsTruncatedStream) {
  std::vector<std::uint8_t> input(512, 3);
  auto compressed = lz_compress(input);
  compressed.resize(compressed.size() / 2);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(lz_decompress(compressed, input.size(), out));
}

TEST(Lz, DecompressRejectsWrongExpectedSize) {
  std::vector<std::uint8_t> input(512, 3);
  const auto compressed = lz_compress(input);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(lz_decompress(compressed, input.size() + 1, out));
  EXPECT_FALSE(lz_decompress(compressed, input.size() - 1, out));
}

TEST(Lz, DecompressRejectsBadOffset) {
  // Token demanding a match at offset beyond produced output.
  const std::vector<std::uint8_t> bogus{0x10, 0x41, 0xff, 0x00};
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(lz_decompress(bogus, 64, out));
}

TEST(Lz, DecompressRejectsZeroOffset) {
  const std::vector<std::uint8_t> bogus{0x10, 0x41, 0x00, 0x00};
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(lz_decompress(bogus, 64, out));
}

// Property sweep: random contents with varying mutation density round-trip.
class LzPropertyTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LzPropertyTest, RoundTrip) {
  const auto [size, density] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 1000003 +
          static_cast<std::uint64_t>(density * 1000));
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::uint8_t> input(static_cast<std::size_t>(size), 0);
    for (auto& b : input) {
      if (rng.next_double() < density) b = static_cast<std::uint8_t>(rng.next_u64());
    }
    const auto compressed = lz_compress(input);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(lz_decompress(compressed, input.size(), out));
    ASSERT_EQ(out, input);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, LzPropertyTest,
    ::testing::Combine(::testing::Values(1, 5, 64, 333, 4096, 16384),
                       ::testing::Values(0.0, 0.05, 0.3, 1.0)));

}  // namespace
}  // namespace kdd
