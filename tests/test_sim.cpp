#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "kdd/kdd_cache.hpp"
#include "policies/nocache.hpp"
#include "policies/write_through.hpp"

namespace kdd {
namespace {

RaidGeometry geo() { return paper_geometry(60000); }

SimConfig fast_sim() {
  SimConfig cfg = paper_sim_config(5);
  cfg.seed = 5;
  return cfg;
}

Trace single_request(bool is_read) {
  Trace t;
  t.records = {{0, 1234, 1, is_read}};
  return t;
}

TEST(EventSim, SingleDiskReadLatencyMatchesServiceModel) {
  NoCachePolicy policy(geo());
  EventSimulator sim(fast_sim(), &policy);
  const SimResult r = sim.run_open_loop(single_request(true));
  EXPECT_EQ(r.requests, 1u);
  // One random HDD access: a few ms to ~25 ms.
  EXPECT_GT(r.latency.mean_us(), 800.0);
  EXPECT_LT(r.latency.mean_us(), 26000.0);
}

TEST(EventSim, SmallWriteCostsTwoSerialDiskPhases) {
  NoCachePolicy policy(geo());
  EventSimulator sim(fast_sim(), &policy);
  const SimResult write = sim.run_open_loop(single_request(false));
  NoCachePolicy policy2(geo());
  EventSimulator sim2(fast_sim(), &policy2);
  const SimResult read = sim2.run_open_loop(single_request(true));
  // RMW = read phase + write phase on disks: roughly twice a read.
  EXPECT_GT(write.latency.mean_us(), read.latency.mean_us() * 1.4);
}

TEST(EventSim, CacheHitIsOrdersOfMagnitudeFaster) {
  PolicyConfig cfg;
  cfg.ssd_pages = 4096;
  WriteThroughPolicy policy(cfg, geo());
  EventSimulator sim(fast_sim(), &policy);
  Trace t;
  t.records = {{0, 42, 1, true},                      // miss, fills
               {2 * kUsPerSec, 42, 1, true}};         // hit from SSD
  const SimResult r = sim.run_open_loop(t);
  EXPECT_EQ(r.requests, 2u);
  // p50 is the hit (~0.1 ms), max is the miss (several ms).
  EXPECT_LT(r.latency.percentile_us(0.5), 1000u);
  EXPECT_GT(r.latency.max_us(), 2000u);
}

TEST(EventSim, QueueingDelaysBackToBackRequests) {
  NoCachePolicy policy(geo());
  EventSimulator sim(fast_sim(), &policy);
  // 50 simultaneous reads of the same page: they serialise on one disk.
  Trace t;
  for (int i = 0; i < 50; ++i) t.records.push_back({0, 777, 1, true});
  const SimResult r = sim.run_open_loop(t);
  EXPECT_EQ(r.requests, 50u);
  EXPECT_GT(r.latency.max_us(), r.latency.percentile_us(0.1) * 5);
}

TEST(EventSim, ParallelismAcrossDisksHelps) {
  // Reads scattered over all disks finish much faster than the same number
  // hammering one disk.
  auto run = [&](bool scattered) {
    NoCachePolicy policy(geo());
    EventSimulator sim(fast_sim(), &policy);
    Trace t;
    for (Lba i = 0; i < 40; ++i) {
      // Consecutive chunks land on different disks.
      const Lba lba = scattered ? i * geo().chunk_pages : 0;
      t.records.push_back({0, lba, 1, true});
    }
    return sim.run_open_loop(t).makespan_us;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(EventSim, ClosedLoopCompletesAllRequests) {
  PolicyConfig cfg;
  cfg.ssd_pages = 4096;
  KddCache policy(cfg, geo());
  EventSimulator sim(fast_sim(), &policy);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 8192;
  wcfg.total_requests = 3000;
  wcfg.read_rate = 0.5;
  wcfg.array_pages = geo().data_pages();
  ZipfWorkload workload(wcfg);
  const SimResult r = sim.run_closed_loop(workload, 16);
  EXPECT_EQ(r.requests, 3000u);
  EXPECT_GT(r.makespan_us, 0u);
}

TEST(EventSim, MoreThreadsIncreaseLatencyButThroughput) {
  auto run = [&](std::uint32_t threads) {
    NoCachePolicy policy(geo());
    EventSimulator sim(fast_sim(), &policy);
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = 8192;
    wcfg.total_requests = 2000;
    wcfg.read_rate = 1.0;
    wcfg.array_pages = geo().data_pages();
    ZipfWorkload workload(wcfg);
    return sim.run_closed_loop(workload, threads);
  };
  const SimResult one = run(1);
  const SimResult sixteen = run(16);
  EXPECT_GT(sixteen.latency.mean_us(), one.latency.mean_us());
  EXPECT_LT(sixteen.makespan_us, one.makespan_us);  // parallelism wins
}

TEST(EventSim, IdleGapTriggersBackgroundCleaning) {
  PolicyConfig cfg;
  cfg.ssd_pages = 4096;
  cfg.clean_high_watermark = 0.95;  // never trigger by threshold
  KddCache policy(cfg, geo());
  SimConfig scfg = fast_sim();
  scfg.idle_threshold_us = 100 * kUsPerMs;
  EventSimulator sim(scfg, &policy);
  Trace t;
  // A write-hit burst, then a long idle gap, then one more access.
  t.records.push_back({0, 50, 1, true});
  t.records.push_back({1000, 50, 1, false});
  t.records.push_back({10ull * kUsPerSec, 60, 1, true});
  sim.run_open_loop(t);
  EXPECT_EQ(policy.old_pages(), 0u);  // idle cleaner ran
  EXPECT_EQ(policy.stale_groups(), 0u);
}

TEST(EventSim, KddBeatsWriteThroughOnWriteHeavyWorkload) {
  // The qualitative content of Figures 9/10: deferring parity updates cuts
  // response time on write-dominant workloads.
  auto run = [&](PolicyKind kind) {
    PolicyConfig cfg;
    cfg.ssd_pages = 4096;
    auto policy = make_policy(kind, cfg, geo());
    EventSimulator sim(fast_sim(), policy.get());
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = 8192;
    wcfg.total_requests = 4000;
    wcfg.read_rate = 0.25;
    wcfg.array_pages = geo().data_pages();
    ZipfWorkload workload(wcfg);
    return sim.run_closed_loop(workload, 16).mean_response_ms();
  };
  const double kdd = run(PolicyKind::kKdd);
  const double wt = run(PolicyKind::kWT);
  const double nossd = run(PolicyKind::kNossd);
  EXPECT_LT(kdd, wt);
  EXPECT_LT(kdd, nossd);
}

TEST(EventSim, BackgroundWorkIsNotChargedToRequests) {
  // With an aggressive cleaning threshold, KDD cleans constantly; the
  // background plan keeps those device ops out of request latency, so the
  // mean must stay in the same ballpark as with cleaning disabled.
  auto run = [&](double high_wm) {
    PolicyConfig cfg;
    cfg.ssd_pages = 2048;
    cfg.clean_high_watermark = high_wm;
    cfg.clean_low_watermark = high_wm / 2;
    KddCache policy(cfg, geo());
    EventSimulator sim(fast_sim(), &policy);
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = 4096;
    wcfg.total_requests = 3000;
    wcfg.read_rate = 0.25;
    wcfg.array_pages = geo().data_pages();
    ZipfWorkload workload(wcfg);
    return sim.run_closed_loop(workload, 8).mean_response_ms();
  };
  const double aggressive = run(0.05);
  const double lazy = run(0.90);
  EXPECT_LT(aggressive, lazy * 3.0);
}

}  // namespace
}  // namespace kdd
