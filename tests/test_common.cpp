#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace kdd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(5);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(6);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(8);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.next_gaussian(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(GaussianRatioSampler, ClampsToBounds) {
  const GaussianRatioSampler sampler(0.5, 5.0, 0.1, 0.9);  // huge sigma
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = sampler.sample(rng);
    EXPECT_GE(v, 0.1);
    EXPECT_LE(v, 0.9);
  }
}

TEST(GaussianRatioSampler, MeanRoughlyPreserved) {
  for (const double mean : {0.50, 0.25, 0.12}) {
    const auto sampler = GaussianRatioSampler::for_mean(mean);
    Rng rng(10);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(sampler.sample(rng));
    EXPECT_NEAR(stats.mean(), mean, mean * 0.05) << "mean " << mean;
  }
}

TEST(ZipfSampler, StaysInRange) {
  const ZipfSampler zipf(1000, 1.0001);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(ZipfSampler, SingleElement) {
  const ZipfSampler zipf(1, 1.2);
  Rng rng(12);
  EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfSampler, FrequenciesFollowPowerLaw) {
  const ZipfSampler zipf(10000, 1.0);
  Rng rng(13);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  // rank-1 frequency / rank-10 frequency should be ~10 for alpha=1.
  const double ratio = static_cast<double>(counts[0]) / counts[9];
  EXPECT_NEAR(ratio, 10.0, 3.0);
  // Rank 0 must be the most popular.
  for (const auto& [rank, count] : counts) {
    EXPECT_LE(count, counts[0] + 50) << "rank " << rank;
  }
}

TEST(ZipfSampler, HigherAlphaConcentratesMass) {
  Rng rng(14);
  auto top_share = [&](double alpha) {
    const ZipfSampler zipf(100000, alpha);
    int top = 0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) {
      if (zipf.sample(rng) < 100) ++top;
    }
    return static_cast<double>(top) / kSamples;
  };
  EXPECT_GT(top_share(1.2), top_share(0.6));
}

TEST(DiscreteSampler, RespectsWeights) {
  const DiscreteSampler sampler({1.0, 0.0, 3.0});
  Rng rng(15);
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) ++counts[sampler.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsCombined) {
  Rng rng(16);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_gaussian(3.0, 2.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(LatencyHistogram, SmallValuesExact) {
  LatencyHistogram h;
  for (SimTime v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.percentile_us(0.5), 15u);
  EXPECT_EQ(h.percentile_us(1.0), 31u);
}

TEST(LatencyHistogram, BoundedRelativeError) {
  LatencyHistogram h;
  Rng rng(17);
  std::vector<SimTime> values;
  for (int i = 0; i < 20000; ++i) {
    const SimTime v = 1 + rng.next_below(10'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const SimTime exact =
        values[static_cast<std::size_t>(q * static_cast<double>(values.size() - 1))];
    const SimTime approx = h.percentile_us(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.08)
        << "q=" << q;
  }
  double mean = 0;
  for (const SimTime v : values) mean += static_cast<double>(v);
  mean /= static_cast<double>(values.size());
  EXPECT_NEAR(h.mean_us(), mean, 1e-6);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.record(100);
  b.record(200);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GE(a.percentile_us(1.0), 200u);
}

TEST(SampleRecorder, ExactPercentiles) {
  SampleRecorder r;
  for (int i = 1; i <= 100; ++i) r.record(i);
  EXPECT_DOUBLE_EQ(r.mean(), 50.5);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 100.0);
  EXPECT_NEAR(r.percentile(0.5), 50.0, 1.0);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(kGiB + kGiB / 2), "1.50 GiB");
}

TEST(Format, Pct) { EXPECT_EQ(format_pct(0.423), "42.3%"); }

TEST(TextTable, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace kdd
