// Online rebuild + degraded-mode engine (ISSUE 6 tentpole): the incremental
// checkpointed rebuild cursor, the healthy -> degraded -> rebuilding state
// machine with its spare pool and adaptive throttle, the background scrub
// scheduler, the KddCache stripe barrier that keeps stale-parity rebuild
// folds at zero, and the end-to-end reliability drill.

#include "raid/rebuild.hpp"

#include <gtest/gtest.h>

#include "blockdev/retry.hpp"
#include "cache/nvram.hpp"
#include "common/rng.hpp"
#include "compress/content.hpp"
#include "harness/drill.hpp"
#include "kdd/kdd_cache.hpp"
#include "obs/metrics.hpp"
#include "raid/scrub.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry geo5() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 64;
  return geo;
}

/// A deliberately slow engine so tests can observe intermediate states.
OnlineRebuildConfig slow_rebuild() {
  OnlineRebuildConfig cfg;
  cfg.chunk_groups = 8;
  cfg.min_chunk_groups = 2;
  cfg.ops_between_steps = 4;
  cfg.pressure_window = 64;
  return cfg;
}

void fill_array(RaidArray& array, ReferenceModel& model, std::uint64_t seed,
                int writes = 250) {
  Rng rng(seed);
  for (int i = 0; i < writes; ++i) {
    const Lba lba = rng.next_below(array.data_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
}

void verify_all(RaidArray& array, const ReferenceModel& model) {
  Page buf = make_page();
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk) << "lba " << lba;
    ASSERT_EQ(buf, model.read(lba)) << "lba " << lba;
  }
}

// ---------------------------------------------------------------------------
// RebuildEngine: online rebuild interleaved with foreground I/O
// ---------------------------------------------------------------------------

TEST(RebuildEngine, OnlineRebuildMatchesModelUnderInterleavedIo) {
  RaidArray array(geo5());
  ReferenceModel model;
  fill_array(array, model, 1);
  RebuildEngine engine(&array, slow_rebuild());
  EXPECT_EQ(engine.health(), ArrayHealth::kHealthy);

  ASSERT_TRUE(engine.on_disk_failure(1));
  EXPECT_EQ(engine.health(), ArrayHealth::kRebuilding);

  // Keep writing and reading while the rebuild is in flight: every request
  // feeds the throttle and the pump steals bounded chunks between them.
  Rng rng(2);
  Page buf = make_page();
  int guard = 0;
  while (engine.rebuild_active()) {
    ASSERT_LT(++guard, 100000);
    const Lba lba = rng.next_below(array.data_pages());
    if (rng.next_bool(0.5)) {
      const Page data = test_page(lba, 5000u + static_cast<std::uint64_t>(guard));
      ASSERT_EQ(array.write_page(lba, data), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
    engine.note_foreground();
    engine.pump();
  }

  EXPECT_EQ(engine.health(), ArrayHealth::kHealthy);
  EXPECT_FALSE(array.disk_failed(1));
  EXPECT_EQ(engine.rebuilds_completed(), 1u);
  EXPECT_EQ(engine.groups_rebuilt(), array.geometry().num_groups());
  EXPECT_EQ(engine.progress_permille(), 1000u);
  verify_all(array, model);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RebuildEngine, MemberDownTracksRebuildCursor) {
  RaidArray array(geo5());
  ReferenceModel model;
  fill_array(array, model, 3);
  array.fail_disk(2);
  array.rebuild_begin(2);
  ASSERT_EQ(array.rebuild_step(5), 5u);

  // Groups below the cursor are reconstructed and fully valid; at/after the
  // cursor the rebuilding disk is still a lost member.
  EXPECT_FALSE(array.member_down(2, 4));
  EXPECT_TRUE(array.member_down(2, 5));
  EXPECT_FALSE(array.member_down(0, 5));
  EXPECT_TRUE(array.degraded());

  // A read below the cursor is served by the rebuilding disk itself (no
  // degraded reconstruction); a read beyond it reconstructs from peers.
  Lba below = ~0ull, beyond = ~0ull;
  for (Lba lba = 0; lba < array.data_pages(); ++lba) {
    if (array.layout().map(lba).disk != 2) continue;
    if (array.layout().group_of(lba) < 5 && below == ~0ull) below = lba;
    if (array.layout().group_of(lba) >= 5 && beyond == ~0ull) beyond = lba;
  }
  ASSERT_NE(below, ~0ull);
  ASSERT_NE(beyond, ~0ull);
  Page buf = make_page();
  const std::uint64_t degraded_before = array.degraded_reads();
  ASSERT_EQ(array.read_page(below, buf), IoStatus::kOk);
  ASSERT_EQ(buf, model.read(below));
  EXPECT_EQ(array.degraded_reads(), degraded_before);
  ASSERT_EQ(array.read_page(beyond, buf), IoStatus::kOk);
  ASSERT_EQ(buf, model.read(beyond));
  EXPECT_EQ(array.degraded_reads(), degraded_before + 1);

  while (array.rebuild_step(16) != 0) {
  }
  array.rebuild_finish();
  EXPECT_FALSE(array.degraded());
  verify_all(array, model);
}

TEST(RebuildEngine, ResumeSkipsCompletedChunks) {
  RaidArray array(geo5());
  ReferenceModel model;
  fill_array(array, model, 4);
  const std::uint64_t total = array.geometry().num_groups();

  array.fail_disk(1);
  array.rebuild_begin(1);
  ASSERT_EQ(array.rebuild_step(total / 2), total / 2);
  const GroupId cursor = array.rebuild_cursor();

  // Controller reboot: the in-core cursor is gone; only the checkpoint
  // (persisted by the sink in real deployments) knows how far we got.
  array.rebuild_abandon();
  EXPECT_FALSE(array.rebuild_active());

  const std::uint64_t writes_before = array.faults(1).media_writes();
  array.rebuild_resume(1, cursor);
  EXPECT_EQ(array.rebuild_cursor(), cursor);
  while (array.rebuild_step(16) != 0) {
  }
  array.rebuild_finish();
  const std::uint64_t writes_after_resume =
      array.faults(1).media_writes() - writes_before;
  // The resumed run only reconstructs the groups beyond the checkpoint — one
  // page write each. Re-reconstructing completed chunks would double this.
  EXPECT_EQ(writes_after_resume, total - cursor);
  verify_all(array, model);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(RebuildEngine, SparePoolGatesDegradedToRebuilding) {
  RaidArray array(geo5());
  ReferenceModel model;
  fill_array(array, model, 5);
  SparePool spares(0);
  RebuildEngine engine(&array, slow_rebuild(), &spares);

  // No spare: the failure parks the array in degraded mode.
  EXPECT_FALSE(engine.on_disk_failure(3));
  EXPECT_EQ(engine.health(), ArrayHealth::kDegraded);
  engine.note_foreground(16);
  EXPECT_EQ(engine.pump(), 0u);
  EXPECT_EQ(engine.health(), ArrayHealth::kDegraded);
  verify_all(array, model);  // degraded reads still serve everything

  // Restocking the pool lets the next pump start the rebuild (the starting
  // pump itself reconstructs nothing — stepping begins at the next one).
  spares.add(1);
  engine.note_foreground(16);
  engine.pump();
  EXPECT_EQ(engine.health(), ArrayHealth::kRebuilding);
  EXPECT_EQ(spares.available(), 0u);

  int guard = 0;
  while (engine.rebuild_active()) {
    ASSERT_LT(++guard, 100000);
    engine.note_foreground();
    engine.pump();
  }
  EXPECT_EQ(engine.health(), ArrayHealth::kHealthy);
  EXPECT_EQ(engine.rebuilds_completed(), 1u);
  EXPECT_GT(engine.dwell_ops(ArrayHealth::kDegraded), 0u);
  EXPECT_GT(engine.dwell_ops(ArrayHealth::kRebuilding), 0u);
  verify_all(array, model);
}

TEST(RebuildEngine, AdaptiveThrottleShrinksChunkUnderPressure) {
  RaidArray array(geo5());
  OnlineRebuildConfig cfg;
  cfg.chunk_groups = 16;
  cfg.min_chunk_groups = 2;
  cfg.ops_between_steps = 8;
  cfg.pressure_window = 64;
  RebuildEngine engine(&array, cfg);
  ASSERT_TRUE(engine.on_disk_failure(0));

  // Not enough foreground ops since the last step: the pump is rate-limited.
  EXPECT_EQ(engine.pump(), 0u);

  // A backed-up foreground (>= pressure_window ops queued behind us) shrinks
  // the stolen chunk to the floor.
  engine.note_foreground(64);
  EXPECT_EQ(engine.pump(), 2u);

  // A quiet period (exactly the minimum spacing) earns the full chunk.
  engine.note_foreground(8);
  EXPECT_EQ(engine.pump(), 16u);

  // An urgent (idle) pump ignores the throttle entirely.
  EXPECT_EQ(engine.pump(nullptr, /*urgent=*/true), 16u);
}

TEST(RebuildEngine, PumpStopsCleanlyWhileRailIsDown) {
  RaidArray array(geo5());
  ReferenceModel model;
  fill_array(array, model, 6);
  RebuildEngine engine(&array, slow_rebuild());
  auto rail = std::make_shared<PowerRail>();
  array.attach_rail(rail);
  ASSERT_TRUE(engine.on_disk_failure(2));
  engine.note_foreground(16);
  ASSERT_GT(engine.pump(), 0u);
  const GroupId cursor = array.rebuild_cursor();

  // Rail down: pumps are no-ops (a dead rail is not media loss) and the
  // cursor never moves, so nothing is mistaken for a double fault.
  rail->cut();
  EXPECT_EQ(engine.pump(nullptr, /*urgent=*/true), 0u);
  EXPECT_EQ(array.rebuild_cursor(), cursor);
  EXPECT_TRUE(array.rebuild_active());

  rail->restore();
  int guard = 0;
  while (engine.rebuild_active()) {
    ASSERT_LT(++guard, 100000);
    engine.pump(nullptr, /*urgent=*/true);
  }
  verify_all(array, model);
  EXPECT_TRUE(array.scrub().empty());
}

// ---------------------------------------------------------------------------
// ScrubScheduler
// ---------------------------------------------------------------------------

TEST(ScrubScheduler, RepairsPlantedBitRotAcrossOnePass) {
  RaidArray array(geo5());
  ReferenceModel model;
  fill_array(array, model, 7);
  // Plant silent corruption on two written pages; the per-page checksums the
  // fault decorator recorded at write time localise the rot during the scrub
  // and the located repair reconstructs + rewrites exactly those pages.
  const Lba rot_a = 3, rot_b = 17;
  ASSERT_EQ(array.write_page(rot_a, test_page(rot_a, 900)), IoStatus::kOk);
  ASSERT_EQ(array.write_page(rot_b, test_page(rot_b, 901)), IoStatus::kOk);
  model.write(rot_a, test_page(rot_a, 900));
  model.write(rot_b, test_page(rot_b, 901));
  const DiskAddr addr_a = array.layout().map(rot_a);
  const DiskAddr addr_b = array.layout().map(rot_b);
  array.faults(addr_a.disk).inject_bit_rot(addr_a.page, 0x5a);
  array.faults(addr_b.disk).inject_bit_rot(addr_b.page, 0x81);

  ScrubConfig cfg;
  cfg.groups_per_tick = 8;
  cfg.ops_between_ticks = 4;
  cfg.wear_write_budget = 0;  // wear gate off
  ScrubScheduler scrub(&array, cfg);

  EXPECT_EQ(scrub.tick(), 0u);  // rate-limited until foreground ops accrue
  int guard = 0;
  while (scrub.passes() == 0) {
    ASSERT_LT(++guard, 10000);
    scrub.note_foreground(4);
    scrub.tick();
  }
  EXPECT_EQ(scrub.groups_scrubbed(), array.geometry().num_groups());
  EXPECT_EQ(scrub.repairs(), 2u);
  EXPECT_TRUE(array.scrub().empty());
  verify_all(array, model);
}

TEST(ScrubScheduler, PausesWhileDegradedOrRebuilding) {
  RaidArray array(geo5());
  ScrubScheduler scrub(&array, {.groups_per_tick = 8, .ops_between_ticks = 4,
                                .wear_write_budget = 0});
  array.fail_disk(1);
  scrub.note_foreground(8);
  EXPECT_EQ(scrub.tick(), 0u);  // parity can't be verified against a lost member
  EXPECT_EQ(scrub.paused_ticks(), 1u);

  array.rebuild_begin(1);
  scrub.note_foreground(8);
  EXPECT_EQ(scrub.tick(), 0u);  // the rebuild IS the repair
  EXPECT_EQ(scrub.paused_ticks(), 2u);

  while (array.rebuild_step(16) != 0) {
  }
  array.rebuild_finish();
  scrub.note_foreground(8);
  EXPECT_GT(scrub.tick(), 0u);
}

TEST(ScrubScheduler, WearGateDefersUnderWritePressure) {
  RaidArray array(geo5());
  ScrubConfig cfg;
  cfg.groups_per_tick = 4;
  cfg.ops_between_ticks = 4;
  cfg.wear_write_budget = 4;
  ScrubScheduler scrub(&array, cfg);

  // A destage-storm's worth of media writes since the last window: scrubbing
  // now would pile read-disturb on a device already burning endurance.
  for (Lba lba = 0; lba < 8; ++lba) {
    ASSERT_EQ(array.write_page(lba, test_page(lba)), IoStatus::kOk);
  }
  scrub.note_foreground(4);
  EXPECT_EQ(scrub.tick(), 0u);
  EXPECT_EQ(scrub.wear_deferrals(), 1u);
  EXPECT_EQ(scrub.groups_scrubbed(), 0u);

  // Quiet media: the next due window proceeds.
  scrub.note_foreground(4);
  EXPECT_EQ(scrub.tick(), 4u);
}

TEST(ScrubScheduler, SkipsStaleGroupsOwnedByTheCache) {
  RaidArray array(geo5());
  const Lba lba = 9;
  ASSERT_EQ(array.write_page(lba, test_page(lba, 0)), IoStatus::kOk);
  ASSERT_EQ(array.write_page_nopar(lba, test_page(lba, 1)), IoStatus::kOk);
  const GroupId g = array.layout().group_of(lba);
  ASSERT_TRUE(array.group_stale(g));

  ScrubConfig cfg;
  cfg.groups_per_tick = array.geometry().num_groups();
  cfg.ops_between_ticks = 1;
  cfg.wear_write_budget = 0;
  ScrubScheduler scrub(&array, cfg);
  scrub.note_foreground(1);
  EXPECT_EQ(scrub.tick(), array.geometry().num_groups());

  // The stale group's mismatch is by design (deferred parity): resyncing it
  // here would erase the staleness marker underneath the cache's pending
  // deltas. It must survive the pass untouched.
  EXPECT_TRUE(array.group_stale(g));
  EXPECT_EQ(scrub.repairs(), 0u);
}

// ---------------------------------------------------------------------------
// Retry backoff (satellite: decorrelated jitter + exhaustion counter)
// ---------------------------------------------------------------------------

TEST(Retry, LinearBackoffIsDeterministic) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base_us = 100;
  policy.jitter_seed = 0;
  const RetryResult r =
      with_retry([] { return IoStatus::kTransient; }, policy);
  EXPECT_EQ(r.status, IoStatus::kFailed);
  EXPECT_EQ(r.attempts, 4u);
  EXPECT_EQ(r.backoff_us, 100u * (1 + 2 + 3));
}

TEST(Retry, DecorrelatedJitterStaysWithinEnvelope) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_us = 100;
  policy.backoff_cap_us = 2000;
  policy.jitter_seed = 42;
  for (int i = 0; i < 50; ++i) {
    const RetryResult r =
        with_retry([] { return IoStatus::kTransient; }, policy);
    EXPECT_EQ(r.status, IoStatus::kFailed);
    EXPECT_EQ(r.attempts, 3u);
    // Two waits: the first in [base, 3*base], the second in [base, 3*first].
    EXPECT_GE(r.backoff_us, 2u * 100u);
    EXPECT_LE(r.backoff_us, 300u + 900u);
  }
}

TEST(Retry, ExhaustionIsCountedInTelemetry) {
  const std::uint64_t before = obs::MetricsRegistry::global().snapshot().counter(
      "kdd_retry_exhausted_total");
  RetryPolicy policy;
  policy.max_attempts = 2;
  with_retry([] { return IoStatus::kTransient; }, policy);
  // A transient that clears within budget is NOT an exhaustion.
  int calls = 0;
  with_retry(
      [&] { return ++calls == 1 ? IoStatus::kTransient : IoStatus::kOk; },
      policy);
  const std::uint64_t after = obs::MetricsRegistry::global().snapshot().counter(
      "kdd_retry_exhausted_total");
  EXPECT_EQ(after, before + 1);
}

// ---------------------------------------------------------------------------
// KddCache integration: barrier, checkpoint sink, degraded service
// ---------------------------------------------------------------------------

RaidGeometry cache_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig cache_cfg() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  return cfg;
}

SsdConfig cache_ssd_cfg() {
  SsdConfig cfg;
  cfg.logical_pages = 256;
  cfg.pages_per_block = 16;
  return cfg;
}

struct OnlineRig {
  OnlineRig()
      : array(cache_geo()),
        ssd(cache_ssd_cfg()),
        nvram(kPageSize, 255),
        engine(&array, slow_rebuild()),
        kdd(std::make_unique<KddCache>(cache_cfg(), &array, &ssd, &nvram)) {
    kdd->bind_rebuild_engine(&engine);
  }

  void run_workload(int iters, std::uint64_t seed) {
    const ContentGenerator gen(77);
    Rng rng(seed);
    for (int i = 0; i < iters; ++i) {
      const Lba lba = rng.next_below(300);
      if (rng.next_bool(0.55)) {
        const Page base =
            model.contains(lba) ? model.read(lba) : gen.base_page(lba);
        const Page data = model.contains(lba) ? gen.mutate(base, 0.25, rng) : base;
        ASSERT_EQ(kdd->write(lba, data, nullptr), IoStatus::kOk) << "iter " << i;
        model.write(lba, data);
      } else {
        Page buf = make_page();
        ASSERT_EQ(kdd->read(lba, buf, nullptr), IoStatus::kOk) << "iter " << i;
        ASSERT_EQ(buf, model.read(lba)) << "lba " << lba << " iter " << i;
      }
    }
  }

  void verify_reads() {
    Page buf = make_page();
    for (const auto& [lba, page] : model.pages()) {
      ASSERT_EQ(kdd->read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, page) << "lba " << lba;
    }
  }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  RebuildEngine engine;
  std::unique_ptr<KddCache> kdd;
  ReferenceModel model;
};

TEST(KddOnlineRebuild, BarrierKeepsStaleFoldCountZeroUnderLiveTraffic) {
  OnlineRig rig;
  rig.run_workload(2500, 11);
  EXPECT_GT(rig.kdd->stale_groups(), 0u);  // deferred parity is pending

  // The disk fails ONLINE: no stop-the-world flush — the stripe barrier
  // destages each dirty window just ahead of the cursor instead.
  ASSERT_TRUE(rig.kdd->handle_disk_failure_online(2));
  EXPECT_EQ(rig.engine.health(), ArrayHealth::kRebuilding);

  // Foreground keeps flowing; read()/write() pump the rebuild internally.
  int guard = 0;
  while (rig.engine.rebuild_active()) {
    ASSERT_LT(++guard, 40);
    rig.run_workload(200, 12 + static_cast<std::uint64_t>(guard));
  }
  EXPECT_EQ(rig.engine.health(), ArrayHealth::kHealthy);
  EXPECT_EQ(rig.array.rebuild_stale_folds(), 0u)
      << "a group was reconstructed from stale parity";
  EXPECT_EQ(rig.engine.rebuilds_completed(), 1u);

  rig.verify_reads();
  rig.kdd->check_invariants();
  rig.kdd->flush(nullptr);
  EXPECT_TRUE(rig.array.scrub().empty());
  rig.verify_reads();
}

TEST(KddOnlineRebuild, CheckpointSinkPersistsCursorToNvram) {
  OnlineRig rig;
  rig.run_workload(1200, 13);
  ASSERT_TRUE(rig.kdd->handle_disk_failure_online(1));
  EXPECT_TRUE(rig.nvram.rebuild_active);
  EXPECT_EQ(rig.nvram.rebuild_disk, 1u);

  GroupId last_seen = rig.nvram.rebuild_cursor;
  int guard = 0;
  while (rig.engine.rebuild_active()) {
    ASSERT_LT(++guard, 40);
    rig.run_workload(200, 14 + static_cast<std::uint64_t>(guard));
    EXPECT_GE(rig.nvram.rebuild_cursor + (rig.nvram.rebuild_active ? 0 : 1),
              last_seen);  // the persisted cursor only moves forward
    if (rig.nvram.rebuild_active) last_seen = rig.nvram.rebuild_cursor;
  }
  // Completion clears the checkpoint: a crash after this must not resume.
  EXPECT_FALSE(rig.nvram.rebuild_active);
  rig.verify_reads();
}

TEST(KddOnlineRebuild, IdlePumpFinishesRebuildWithoutForegroundTraffic) {
  OnlineRig rig;
  rig.run_workload(1500, 15);
  ASSERT_TRUE(rig.kdd->handle_disk_failure_online(3));
  int guard = 0;
  while (rig.engine.rebuild_active()) {
    ASSERT_LT(++guard, 10000);
    rig.kdd->on_idle(nullptr);  // urgent pump: full chunks, no throttle
  }
  EXPECT_EQ(rig.array.rebuild_stale_folds(), 0u);
  rig.verify_reads();
  rig.kdd->flush(nullptr);
  EXPECT_TRUE(rig.array.scrub().empty());
}

TEST(KddOnlineRebuild, EveryDiskPositionRebuildsOnline) {
  for (std::uint32_t disk = 0; disk < 5; ++disk) {
    OnlineRig rig;
    rig.run_workload(800, 20 + disk);
    ASSERT_TRUE(rig.kdd->handle_disk_failure_online(disk)) << "disk " << disk;
    int guard = 0;
    while (rig.engine.rebuild_active()) {
      ASSERT_LT(++guard, 10000);
      rig.kdd->on_idle(nullptr);
    }
    EXPECT_EQ(rig.array.rebuild_stale_folds(), 0u) << "disk " << disk;
    rig.verify_reads();
  }
}

// ---------------------------------------------------------------------------
// Reliability drill (rolling replacement + scrub + optional power cut)
// ---------------------------------------------------------------------------

void expect_clean(const DrillReport& rep) {
  for (const std::string& v : rep.violations) {
    ADD_FAILURE() << "seed " << rep.seed << ": " << v;
  }
}

TEST(ReliabilityDrill, RollingReplacementEndsByteIdenticalToHealthyRun) {
  DrillConfig cfg;
  cfg.requests = 2000;
  ReliabilityDrillRunner runner(cfg);
  const DrillReport rep = runner.run(101);
  expect_clean(rep);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.healthy_digest, rep.faulted_digest);
  EXPECT_EQ(rep.rebuilds_started, 2u);
  EXPECT_EQ(rep.rebuilds_completed, 2u);
  EXPECT_EQ(rep.stale_rebuild_folds, 0u);
  EXPECT_GT(rep.requests_while_degraded, 0u);
  EXPECT_GT(rep.scrub_groups, 0u);
  EXPECT_FALSE(rep.power_cut_fired);
}

TEST(ReliabilityDrill, PowerCutMidRebuildResumesFromCheckpoint) {
  DrillConfig cfg;
  cfg.requests = 2000;
  cfg.power_cut_mid_rebuild = true;
  // Slow the rebuild down so the cut threshold is reached while it is still
  // in flight.
  cfg.rebuild.chunk_groups = 16;
  cfg.rebuild.min_chunk_groups = 4;
  ReliabilityDrillRunner runner(cfg);
  const DrillReport rep = runner.run(202);
  expect_clean(rep);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep.power_cut_fired);
  EXPECT_TRUE(rep.checkpoint_resumed);
  EXPECT_EQ(rep.healthy_digest, rep.faulted_digest);
  EXPECT_EQ(rep.rebuilds_completed, rep.rebuilds_started);
}

TEST(ReliabilityDrill, SeedsAreReproducible) {
  DrillConfig cfg;
  cfg.requests = 1200;
  ReliabilityDrillRunner runner(cfg);
  const DrillReport a = runner.run(303);
  const DrillReport b = runner.run(303);
  EXPECT_EQ(a.healthy_digest, b.healthy_digest);
  EXPECT_EQ(a.faulted_digest, b.faulted_digest);
  EXPECT_EQ(a.ok(), b.ok());
}

}  // namespace
}  // namespace kdd
