#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <string>
#include <vector>

#include "blockdev/fault_device.hpp"
#include "blockdev/file_device.hpp"
#include "blockdev/mem_device.hpp"
#include "blockdev/ssd_model.hpp"
#include "blockdev/timing.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

TEST(MemBlockDevice, ReadWriteRoundTrip) {
  MemBlockDevice dev(16);
  const Page data = test_page(1);
  ASSERT_EQ(dev.write(3, data), IoStatus::kOk);
  Page out = make_page();
  ASSERT_EQ(dev.read(3, out), IoStatus::kOk);
  EXPECT_EQ(out, data);
  EXPECT_EQ(dev.counters().reads, 1u);
  EXPECT_EQ(dev.counters().writes, 1u);
}

TEST(MemBlockDevice, UnwrittenPagesAreZero) {
  MemBlockDevice dev(4);
  Page out(kPageSize, 0xff);
  ASSERT_EQ(dev.read(0, out), IoStatus::kOk);
  EXPECT_TRUE(all_zero(out));
}

TEST(MemBlockDevice, FailureBlocksIo) {
  MemBlockDevice dev(4);
  dev.fail();
  Page buf = make_page();
  EXPECT_EQ(dev.read(0, buf), IoStatus::kFailed);
  EXPECT_EQ(dev.write(0, buf), IoStatus::kFailed);
  dev.replace();
  EXPECT_EQ(dev.write(0, test_page(2)), IoStatus::kOk);
  ASSERT_EQ(dev.read(0, buf), IoStatus::kOk);
  EXPECT_EQ(buf, test_page(2));
}

TEST(MemBlockDevice, ReplaceBlanksContents) {
  MemBlockDevice dev(4);
  ASSERT_EQ(dev.write(1, test_page(3)), IoStatus::kOk);
  dev.fail();
  dev.replace();
  Page buf(kPageSize, 0xff);
  ASSERT_EQ(dev.read(1, buf), IoStatus::kOk);
  EXPECT_TRUE(all_zero(buf));
}

TEST(MemBlockDevice, CorruptPageFlipsBits) {
  MemBlockDevice dev(4);
  ASSERT_EQ(dev.write(0, test_page(4)), IoStatus::kOk);
  dev.corrupt_page(0, 0xff);
  Page buf = make_page();
  ASSERT_EQ(dev.read(0, buf), IoStatus::kOk);
  EXPECT_NE(buf, test_page(4));
}

SsdConfig small_ssd() {
  SsdConfig cfg;
  cfg.logical_pages = 512;
  cfg.pages_per_block = 16;
  cfg.overprovision = 0.10;
  cfg.gc_free_block_threshold = 3;
  return cfg;
}

TEST(SsdModel, ReadWriteRoundTrip) {
  SsdModel ssd(small_ssd());
  ASSERT_EQ(ssd.write(5, test_page(5)), IoStatus::kOk);
  Page out = make_page();
  ASSERT_EQ(ssd.read(5, out), IoStatus::kOk);
  EXPECT_EQ(out, test_page(5));
}

TEST(SsdModel, UnmappedReadsZero) {
  SsdModel ssd(small_ssd());
  Page out(kPageSize, 0xaa);
  ASSERT_EQ(ssd.read(7, out), IoStatus::kOk);
  EXPECT_TRUE(all_zero(out));
}

TEST(SsdModel, OverwriteKeepsLatest) {
  SsdModel ssd(small_ssd());
  ASSERT_EQ(ssd.write(9, test_page(9, 0)), IoStatus::kOk);
  ASSERT_EQ(ssd.write(9, test_page(9, 1)), IoStatus::kOk);
  Page out = make_page();
  ASSERT_EQ(ssd.read(9, out), IoStatus::kOk);
  EXPECT_EQ(out, test_page(9, 1));
}

TEST(SsdModel, TrimUnmaps) {
  SsdModel ssd(small_ssd());
  ASSERT_EQ(ssd.write(2, test_page(2)), IoStatus::kOk);
  ssd.trim(2);
  Page out(kPageSize, 0xbb);
  ASSERT_EQ(ssd.read(2, out), IoStatus::kOk);
  EXPECT_TRUE(all_zero(out));
}

TEST(SsdModel, GcPreservesDataUnderChurn) {
  // Overwrite far more than physical capacity; greedy GC must relocate
  // without losing anything.
  SsdModel ssd(small_ssd());
  ReferenceModel model;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const Lba lba = rng.next_below(ssd.num_pages());
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(ssd.write(lba, data), IoStatus::kOk);
    model.write(lba, data);
  }
  EXPECT_GT(ssd.wear().block_erases, 0u);
  Page out = make_page();
  for (Lba lba = 0; lba < ssd.num_pages(); ++lba) {
    ASSERT_EQ(ssd.read(lba, out), IoStatus::kOk);
    ASSERT_EQ(out, model.read(lba)) << "lba " << lba;
  }
}

TEST(SsdModel, WriteAmplificationAboveOneUnderRandomChurn) {
  SsdModel ssd(small_ssd());
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(ssd.write(rng.next_below(ssd.num_pages()), test_page(1)), IoStatus::kOk);
  }
  const SsdWearStats wear = ssd.wear();
  EXPECT_EQ(wear.host_page_writes, 20000u);
  EXPECT_GT(wear.write_amplification(), 1.0);
  EXPECT_LT(wear.write_amplification(), 5.0);
  EXPECT_GT(wear.mean_erase_count, 0.0);
  EXPECT_GE(wear.max_erase_count, static_cast<std::uint32_t>(wear.mean_erase_count));
}

TEST(SsdModel, SequentialWritesHaveLowWriteAmplification) {
  SsdConfig cfg = small_ssd();
  SsdModel ssd(cfg);
  for (int round = 0; round < 20; ++round) {
    for (Lba lba = 0; lba < ssd.num_pages(); ++lba) {
      ASSERT_EQ(ssd.write(lba, test_page(lba)), IoStatus::kOk);
    }
  }
  // Whole-device sequential overwrite invalidates blocks wholesale.
  EXPECT_LT(ssd.wear().write_amplification(), 1.2);
}

TEST(SsdModel, TrimReducesGcWork) {
  // Fill the device, then churn on the lower half. If the (dead) upper half
  // is trimmed, GC no longer has to relocate it.
  auto churn = [](bool trim_dead_half) {
    SsdModel ssd(small_ssd());
    for (Lba lba = 0; lba < ssd.num_pages(); ++lba) ssd.write(lba, test_page(lba));
    if (trim_dead_half) {
      for (Lba lba = ssd.num_pages() / 2; lba < ssd.num_pages(); ++lba) ssd.trim(lba);
    }
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
      ssd.write(rng.next_below(ssd.num_pages() / 2), test_page(1));
    }
    return ssd.wear().gc_page_copies;
  };
  EXPECT_LT(churn(true), churn(false));
}

TEST(SsdModel, EnduranceConsumedGrowsWithWrites) {
  SsdModel ssd(small_ssd());
  Rng rng(4);
  EXPECT_EQ(ssd.endurance_consumed(), 0.0);
  for (int i = 0; i < 30000; ++i) {
    ssd.write(rng.next_below(ssd.num_pages()), test_page(1));
  }
  const double consumed = ssd.endurance_consumed();
  EXPECT_GT(consumed, 0.0);
  for (int i = 0; i < 30000; ++i) {
    ssd.write(rng.next_below(ssd.num_pages()), test_page(1));
  }
  EXPECT_GT(ssd.endurance_consumed(), consumed);
}

TEST(SsdModel, FailAndReplace) {
  SsdModel ssd(small_ssd());
  ASSERT_EQ(ssd.write(0, test_page(0)), IoStatus::kOk);
  ssd.fail();
  Page buf = make_page();
  EXPECT_EQ(ssd.read(0, buf), IoStatus::kFailed);
  EXPECT_EQ(ssd.write(0, buf), IoStatus::kFailed);
  ssd.replace();
  EXPECT_EQ(ssd.wear().host_page_writes, 0u);
  ASSERT_EQ(ssd.read(0, buf), IoStatus::kOk);
  EXPECT_TRUE(all_zero(buf));
}

// ---- write_multi: vectored writes must be byte-equivalent to N single
// writes on every device, and fail with exact prefix persistence ------------

/// Scattered LBAs + distinct contents for a vectored batch. The batch owns
/// its payload pages; views() hands out the span-based descriptor list.
struct Batch {
  std::vector<Lba> lbas;
  std::vector<Page> pages;

  Batch(std::initializer_list<Lba> addrs, std::uint64_t salt) {
    for (const Lba lba : addrs) {
      lbas.push_back(lba);
      pages.push_back(test_page(lba, salt));
    }
  }
  std::vector<PageWrite> views() const {
    std::vector<PageWrite> v;
    for (std::size_t i = 0; i < lbas.size(); ++i) {
      v.push_back({lbas[i], pages[i]});
    }
    return v;
  }
};

void expect_batch_readable(BlockDevice& dev, const Batch& batch) {
  Page out = make_page();
  for (std::size_t i = 0; i < batch.lbas.size(); ++i) {
    ASSERT_EQ(dev.read(batch.lbas[i], out), IoStatus::kOk) << "lba " << batch.lbas[i];
    EXPECT_EQ(out, batch.pages[i]) << "lba " << batch.lbas[i];
  }
}

TEST(WriteMulti, MemDeviceMatchesSingleWrites) {
  const Batch batch({3, 11, 7, 0, 15}, 42);
  MemBlockDevice vectored(16);
  MemBlockDevice singles(16);
  std::size_t done = 0;
  ASSERT_EQ(vectored.write_multi(batch.views(), &done), IoStatus::kOk);
  EXPECT_EQ(done, batch.lbas.size());
  for (std::size_t i = 0; i < batch.lbas.size(); ++i) {
    ASSERT_EQ(singles.write(batch.lbas[i], batch.pages[i]), IoStatus::kOk);
  }
  expect_batch_readable(vectored, batch);
  Page a = make_page();
  Page b = make_page();
  for (Lba lba = 0; lba < 16; ++lba) {
    ASSERT_EQ(vectored.read(lba, a), IoStatus::kOk);
    ASSERT_EQ(singles.read(lba, b), IoStatus::kOk);
    EXPECT_EQ(a, b) << "lba " << lba;
  }
}

TEST(WriteMulti, FileDeviceCoalescedWritePersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "kdd_write_multi.img";
  // Mixed batch: a contiguous run (coalesced into one pwritev) plus strays.
  const Batch batch({4, 5, 6, 12, 2}, 7);
  {
    FileBlockDevice dev(path, 32);
    std::size_t done = 0;
    ASSERT_EQ(dev.write_multi(batch.views(), &done), IoStatus::kOk);
    EXPECT_EQ(done, batch.lbas.size());
    expect_batch_readable(dev, batch);
  }
  FileBlockDevice reopened(path, 32);
  expect_batch_readable(reopened, batch);
}

TEST(WriteMulti, SsdModelOneSequentialCommandVsNRandom) {
  const Batch batch({9, 1, 30, 17, 25, 5}, 11);
  SsdModel vectored(small_ssd());
  SsdModel singles(small_ssd());
  std::size_t done = 0;
  ASSERT_EQ(vectored.write_multi(batch.views(), &done), IoStatus::kOk);
  EXPECT_EQ(done, batch.lbas.size());
  for (std::size_t i = 0; i < batch.lbas.size(); ++i) {
    ASSERT_EQ(singles.write(batch.lbas[i], batch.pages[i]), IoStatus::kOk);
  }
  // Same bytes on media either way...
  expect_batch_readable(vectored, batch);
  expect_batch_readable(singles, batch);
  // ...but the vectored path is ONE host command programming a sequential
  // burst, while N singles are N random commands.
  EXPECT_EQ(vectored.wear().host_write_ops_seq, 1u);
  EXPECT_EQ(vectored.wear().host_pages_seq, batch.lbas.size());
  EXPECT_EQ(vectored.wear().host_write_ops_rand, 0u);
  EXPECT_EQ(singles.wear().host_write_ops_rand, batch.lbas.size());
  EXPECT_EQ(singles.wear().host_write_ops_seq, 0u);
  EXPECT_EQ(vectored.wear().host_page_writes, singles.wear().host_page_writes);
}

TEST(WriteMulti, FaultDevicePassThroughPreservesSeqAccounting) {
  SsdModel inner(small_ssd());
  FaultInjectingDevice dev(&inner);
  const Batch batch({2, 3, 4, 20}, 13);
  std::size_t done = 0;
  ASSERT_EQ(dev.write_multi(batch.views(), &done), IoStatus::kOk);
  EXPECT_EQ(done, batch.lbas.size());
  expect_batch_readable(dev, batch);
  // The decorator's per-page bookkeeping must not degrade the inner device's
  // vectored command into N random singles.
  EXPECT_EQ(inner.wear().host_write_ops_seq, 1u);
  EXPECT_EQ(inner.wear().host_write_ops_rand, 0u);
  EXPECT_EQ(dev.media_writes(), batch.lbas.size());
}

TEST(WriteMulti, MidVectorPowerCutPersistsExactPrefix) {
  MemBlockDevice inner(32);
  FaultInjectingDevice dev(&inner);
  const Batch old_batch({1, 2, 3, 4, 5, 6}, 100);
  ASSERT_EQ(dev.write_multi(old_batch.views(), nullptr), IoStatus::kOk);

  // Tear the 4th entry (index 3) of the new batch: 3 old-batch writes already
  // happened above... so arm relative to the writes still to come.
  const Batch new_batch({1, 2, 3, 4, 5, 6}, 200);
  constexpr std::size_t kTornIndex = 3;
  dev.arm_power_cut(kTornIndex);
  std::size_t done = ~0ull;
  const IoStatus st = dev.write_multi(new_batch.views(), &done);
  EXPECT_NE(st, IoStatus::kOk);
  EXPECT_EQ(done, kTornIndex);  // exactly the pre-tear prefix was acked
  EXPECT_EQ(dev.fault_counters().torn_writes, 1u);
  EXPECT_FALSE(dev.powered());

  // While the rail is down every op is rejected.
  Page buf = make_page();
  EXPECT_EQ(dev.read(1, buf), IoStatus::kFailed);
  EXPECT_GT(dev.fault_counters().power_cut_rejects, 0u);
  dev.power_restore();

  for (std::size_t i = 0; i < new_batch.lbas.size(); ++i) {
    ASSERT_EQ(dev.read(new_batch.lbas[i], buf), IoStatus::kOk);
    if (i < kTornIndex) {
      // Prefix entries are fully durable.
      EXPECT_EQ(buf, new_batch.pages[i]) << "entry " << i;
    } else if (i == kTornIndex) {
      // The torn page is a sector-prefix blend: some first s sectors (s < 8)
      // of the new data, the rest still old — never fully the new page.
      EXPECT_NE(buf, new_batch.pages[i]);
      bool valid_blend = false;
      const auto kSectors = static_cast<std::ptrdiff_t>(kPageSize / 512);
      for (std::ptrdiff_t sectors = 0; sectors < kSectors; ++sectors) {
        const std::ptrdiff_t cut = sectors * 512;
        if (std::equal(buf.begin(), buf.begin() + cut, new_batch.pages[i].begin()) &&
            std::equal(buf.begin() + cut, buf.end(), old_batch.pages[i].begin() + cut)) {
          valid_blend = true;
          break;
        }
      }
      EXPECT_TRUE(valid_blend) << "torn page is not a sector-prefix blend";
    } else {
      // Entries after the tear never touched the media.
      EXPECT_EQ(buf, old_batch.pages[i]) << "entry " << i;
    }
  }
}

TEST(HddTiming, SequentialFasterThanRandom) {
  HddTimingModel model{HddTimingConfig{}};
  Rng rng(5);
  // Sequential run after positioning.
  SimTime seq = 0;
  model.service_time(IoKind::kRead, 1000, 1, rng);
  for (int i = 0; i < 100; ++i) {
    seq += model.service_time(IoKind::kRead, 1001 + static_cast<Lba>(i), 1, rng);
  }
  HddTimingModel model2{HddTimingConfig{}};
  SimTime rnd = 0;
  for (int i = 0; i < 100; ++i) {
    rnd += model2.service_time(IoKind::kRead, rng.next_below(1ull << 37), 1, rng);
  }
  EXPECT_LT(seq * 10, rnd);
}

TEST(HddTiming, RandomAccessInPlausibleRange) {
  const HddTimingConfig cfg;
  HddTimingModel model{cfg};
  Rng rng(6);
  OnlineStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(static_cast<double>(model.service_time(
        IoKind::kRead, rng.next_below(cfg.capacity_pages), 1, rng)));
  }
  // A 7,200 RPM disk averages ~8-14 ms per random access.
  EXPECT_GT(stats.mean(), 6000.0);
  EXPECT_LT(stats.mean(), 16000.0);
}

TEST(SsdTiming, WritesSlowerThanReads) {
  const SsdTimingModel model{SsdTimingConfig{}};
  Rng rng(7);
  OnlineStats reads, writes;
  for (int i = 0; i < 1000; ++i) {
    reads.add(static_cast<double>(model.service_time(IoKind::kRead, rng)));
    writes.add(static_cast<double>(model.service_time(IoKind::kWrite, rng)));
  }
  EXPECT_LT(reads.mean(), writes.mean());
  EXPECT_LT(writes.mean(), 1000.0);  // well under a millisecond
}

}  // namespace
}  // namespace kdd
