#include "policies/dedup_cache.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

struct DedupRig {
  DedupRig(std::uint64_t cache_pages = 64) {
    RaidGeometry geo;
    geo.level = RaidLevel::kRaid5;
    geo.num_disks = 5;
    geo.chunk_pages = 4;
    geo.disk_pages = 256;
    array = std::make_unique<RaidArray>(geo);
    SsdConfig scfg;
    scfg.logical_pages = cache_pages;
    ssd = std::make_unique<SsdModel>(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = cache_pages;
    cfg.ways = 8;
    policy = std::make_unique<DedupCachePolicy>(cfg, array.get(), ssd.get());
  }
  std::unique_ptr<RaidArray> array;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<DedupCachePolicy> policy;
};

TEST(DedupCache, IdenticalContentSharesOneSlot) {
  DedupRig rig;
  const Page common = test_page(42);
  for (Lba lba = 0; lba < 20; ++lba) {
    ASSERT_EQ(rig.policy->write(lba, common, nullptr), IoStatus::kOk);
  }
  EXPECT_EQ(rig.policy->slots_in_use(), 1u);
  EXPECT_EQ(rig.policy->mapped_lbas(), 20u);
  EXPECT_EQ(rig.policy->dedup_hits(), 19u);
  // Exactly one flash page program for twenty cached writes.
  EXPECT_EQ(rig.policy->stats().total_ssd_writes(), 1u);
  // Every LBA reads back the shared contents.
  Page buf = make_page();
  for (Lba lba = 0; lba < 20; ++lba) {
    ASSERT_EQ(rig.policy->read(lba, buf, nullptr), IoStatus::kOk);
    EXPECT_EQ(buf, common);
  }
}

TEST(DedupCache, OverwriteRemapsAndFreesUnreferencedSlot) {
  DedupRig rig;
  ASSERT_EQ(rig.policy->write(0, test_page(1), nullptr), IoStatus::kOk);
  EXPECT_EQ(rig.policy->slots_in_use(), 1u);
  ASSERT_EQ(rig.policy->write(0, test_page(2), nullptr), IoStatus::kOk);
  // The old contents have no referents left; its slot was recycled.
  EXPECT_EQ(rig.policy->slots_in_use(), 1u);
  Page buf = make_page();
  ASSERT_EQ(rig.policy->read(0, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, test_page(2));
}

TEST(DedupCache, SharedSlotSurvivesPartialUnmap) {
  DedupRig rig;
  const Page common = test_page(7);
  ASSERT_EQ(rig.policy->write(0, common, nullptr), IoStatus::kOk);
  ASSERT_EQ(rig.policy->write(1, common, nullptr), IoStatus::kOk);
  // LBA 0 moves to different contents; LBA 1 must still read the original.
  ASSERT_EQ(rig.policy->write(0, test_page(8), nullptr), IoStatus::kOk);
  Page buf = make_page();
  ASSERT_EQ(rig.policy->read(1, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, common);
  EXPECT_EQ(rig.policy->slots_in_use(), 2u);
}

TEST(DedupCache, EvictionBoundsMappings) {
  DedupRig rig(16);
  for (Lba lba = 0; lba < 100; ++lba) {
    ASSERT_EQ(rig.policy->write(lba, test_page(lba), nullptr), IoStatus::kOk);
  }
  EXPECT_LE(rig.policy->mapped_lbas(), 16u);
  EXPECT_LE(rig.policy->slots_in_use(), 16u);
  // Most recent entries survive.
  Page buf = make_page();
  const std::uint64_t hits_before = rig.policy->stats().read_hits;
  ASSERT_EQ(rig.policy->read(99, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(rig.policy->stats().read_hits, hits_before + 1);
  EXPECT_EQ(buf, test_page(99));
}

TEST(DedupCache, ReadYourWritesUnderRandomDuplicateHeavyWorkload) {
  DedupRig rig(64);
  ReferenceModel model;
  Rng rng(1);
  Page buf = make_page();
  for (int i = 0; i < 3000; ++i) {
    const Lba lba = rng.next_below(128);
    if (rng.next_bool(0.5)) {
      // Draw contents from a pool of 10 distinct pages: heavy duplication.
      const Page data = test_page(rng.next_below(10));
      ASSERT_EQ(rig.policy->write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(rig.policy->read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba)) << "lba " << lba;
    }
  }
  EXPECT_GT(rig.policy->dedup_hits(), 1000u);
  EXPECT_LE(rig.policy->slots_in_use(), 10u);
  EXPECT_TRUE(rig.array->scrub().empty());  // write-through keeps RAID exact
}

TEST(DedupCache, NoDuplicatesDegradesToPlainWriteThrough) {
  DedupRig rig(64);
  for (Lba lba = 0; lba < 32; ++lba) {
    ASSERT_EQ(rig.policy->write(lba, test_page(1000 + lba), nullptr), IoStatus::kOk);
  }
  EXPECT_EQ(rig.policy->dedup_hits(), 0u);
  EXPECT_EQ(rig.policy->slots_in_use(), 32u);
  EXPECT_EQ(rig.policy->stats().total_ssd_writes(), 32u);
}

}  // namespace
}  // namespace kdd
