#include "raid/gf256.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace kdd {
namespace {

TEST(Gf256, MultiplicationBasics) {
  EXPECT_EQ(gf256::mul(0, 77), 0);
  EXPECT_EQ(gf256::mul(77, 0), 0);
  EXPECT_EQ(gf256::mul(1, 77), 77);
  EXPECT_EQ(gf256::mul(77, 1), 77);
  // g = 2: 2*128 = 0x1d (reduction by x^8+x^4+x^3+x^2+1).
  EXPECT_EQ(gf256::mul(2, 128), 0x1d);
}

TEST(Gf256, ExpLogInverse) {
  for (unsigned e = 0; e < 255; ++e) {
    const std::uint8_t v = gf256::exp(e);
    EXPECT_NE(v, 0);
    EXPECT_EQ(gf256::log(v), e);
  }
}

TEST(Gf256, ExpPeriod255) {
  EXPECT_EQ(gf256::exp(0), 1);
  EXPECT_EQ(gf256::exp(255), 1);
  EXPECT_EQ(gf256::exp(256), gf256::exp(1));
}

TEST(Gf256, InverseIsTwoSided) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto av = static_cast<std::uint8_t>(a);
    const std::uint8_t inv = gf256::inv(av);
    EXPECT_EQ(gf256::mul(av, inv), 1) << "a=" << a;
    EXPECT_EQ(gf256::mul(inv, av), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
  }
}

// Field axioms verified over random samples.
class Gf256AxiomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Gf256AxiomTest, AssociativityCommutativityDistributivity) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
    // Addition in GF(2^8) is XOR.
    EXPECT_EQ(gf256::mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf256::mul(a, b) ^ gf256::mul(a, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gf256AxiomTest, ::testing::Values(1, 2, 3, 4));

TEST(Gf256, MulAccMatchesScalarLoop) {
  Rng rng(9);
  std::vector<std::uint8_t> dst(257), src(257), expected(257);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(rng.next_u64());
    src[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  for (const std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{0x53}}) {
    auto d = dst;
    for (std::size_t i = 0; i < d.size(); ++i) {
      expected[i] = static_cast<std::uint8_t>(d[i] ^ gf256::mul(c, src[i]));
    }
    gf256::mul_acc(d, c, src);
    EXPECT_EQ(d, expected) << "c=" << int{c};
  }
}

TEST(Gf256, ScaleMatchesScalarLoop) {
  Rng rng(10);
  std::vector<std::uint8_t> dst(100);
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next_u64());
  auto d = dst;
  gf256::scale(d, 0x9a);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    EXPECT_EQ(d[i], gf256::mul(dst[i], 0x9a));
  }
  gf256::scale(d, 0);
  for (const std::uint8_t b : d) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace kdd
