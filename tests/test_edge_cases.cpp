// Edge cases and contracts: KDD under degraded arrays, cache pressure
// extremes, metadata-log wraparound under sustained churn, zero-capacity
// corner configurations.
#include <gtest/gtest.h>

#include "compress/content.hpp"
#include "harness/harness.hpp"
#include "kdd/kdd_cache.hpp"
#include "test_util.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry small_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig small_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  return cfg;
}

TEST(KddDegraded, ReadsServeDegradedReconstruction) {
  // A disk dies mid-operation; read misses must still return correct data
  // (the RAID layer reconstructs), and cached pages keep serving.
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(small_config(), &array, &ssd);
  ReferenceModel model;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Lba lba = rng.next_below(300);
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
    model.write(lba, data);
  }
  // Flush first (KDD's protocol before operating degraded), then fail.
  kdd.flush(nullptr);
  array.fail_disk(3);
  Page buf = make_page();
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
    ASSERT_EQ(buf, page) << "lba " << lba;
  }
}

TEST(KddDegraded, DeferredWriteToFailedDiskWritesThroughDegraded) {
  // write_page_nopar cannot place data on a dead disk. The degraded-mode
  // engine no longer surfaces that to the host: the cache falls back to a
  // conventional degraded write-through (the array reconstructs around the
  // lost member) and refreshes its copy, so the newest version keeps being
  // served from the cache while the member is down.
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(small_config(), &array, &ssd);
  const Lba lba = 10;
  const ContentGenerator gen(9);
  Rng rng(10);
  const Page v0 = gen.base_page(lba);
  ASSERT_EQ(kdd.write(lba, v0, nullptr), IoStatus::kOk);
  array.fail_disk(array.layout().map(lba).disk);
  // A compressible update would defer parity via write_page_nopar; with the
  // member down it is written through with full parity instead — never
  // stranded on the lost disk, never rejected.
  const Page v1 = gen.mutate(v0, 0.2, rng);
  EXPECT_EQ(kdd.write(lba, v1, nullptr), IoStatus::kOk);
  EXPECT_EQ(kdd.stale_groups(), 0u);  // no deferred parity on a lost member
  Page buf = make_page();
  ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
  EXPECT_EQ(buf, v1);
  EXPECT_GE(kdd.degraded_cache_hits(), 1u);
}

TEST(KddPressure, TinyCacheStaysCorrectUnderHeavyChurn) {
  // Cache of one set; constant conflict pressure, staging overflow, forced
  // cleaning and bypasses — correctness and invariants must hold throughout.
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 64;
  SsdModel ssd(scfg);
  PolicyConfig cfg;
  cfg.ssd_pages = 24;
  cfg.ways = 8;
  cfg.clean_high_watermark = 0.4;
  cfg.clean_low_watermark = 0.2;
  KddCache kdd(cfg, &array, &ssd);
  const ContentGenerator gen(2);
  ReferenceModel model;
  Rng rng(3);
  Page buf = make_page();
  for (int i = 0; i < 3000; ++i) {
    const Lba lba = rng.next_below(200);
    if (rng.next_bool(0.6)) {
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data = model.contains(lba) ? gen.mutate(base, 0.2, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba)) << "iter " << i;
    }
    if (i % 300 == 0) kdd.check_invariants();
  }
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(KddPressure, MetadataLogWrapsManyTimesWithoutLoss) {
  // Sustained insert/evict churn pushes the circular log through many
  // wraparounds; a crash at the end must still recover exact state.
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 512;
  SsdModel ssd(scfg);
  NvramState nvram(kPageSize, 255);
  PolicyConfig cfg;
  cfg.ssd_pages = 512;
  auto kdd = std::make_unique<KddCache>(cfg, &array, &ssd, &nvram);
  const ContentGenerator gen(4);
  ReferenceModel model;
  Rng rng(5);
  for (int i = 0; i < 12000; ++i) {
    const Lba lba = rng.next_below(1000);  // footprint >> cache: heavy churn
    const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
    const Page data = model.contains(lba) ? gen.mutate(base, 0.25, rng) : base;
    ASSERT_EQ(kdd->write(lba, data, nullptr), IoStatus::kOk);
    model.write(lba, data);
  }
  const std::uint64_t tail = nvram.log_tail;
  EXPECT_GT(tail, kdd->metadata_log().partition_pages() * 3) << "log should wrap";
  EXPECT_GT(kdd->metadata_log().gc_passes(), 0u);

  kdd = std::make_unique<KddCache>(cfg, &array, &ssd, &nvram, /*recover=*/true);
  kdd->check_invariants();
  Page buf = make_page();
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(kdd->read(lba, buf, nullptr), IoStatus::kOk);
    ASSERT_EQ(buf, page);
  }
  kdd->flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(KddPressure, RepeatedCrashRecoverCycles) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  NvramState nvram(kPageSize, 255);
  PolicyConfig cfg = small_config();
  auto kdd = std::make_unique<KddCache>(cfg, &array, &ssd, &nvram);
  const ContentGenerator gen(6);
  ReferenceModel model;
  Rng rng(7);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 400; ++i) {
      const Lba lba = rng.next_below(300);
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data = model.contains(lba) ? gen.mutate(base, 0.25, rng) : base;
      ASSERT_EQ(kdd->write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    }
    kdd = std::make_unique<KddCache>(cfg, &array, &ssd, &nvram, /*recover=*/true);
    kdd->check_invariants();
  }
  Page buf = make_page();
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(kdd->read(lba, buf, nullptr), IoStatus::kOk);
    ASSERT_EQ(buf, page);
  }
  kdd->flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

TEST(KddConfig, SingleSetCacheWorks) {
  PolicyConfig cfg;
  cfg.ssd_pages = 20;
  cfg.ways = 8;
  KddCache kdd(cfg, small_geo());
  for (Lba lba = 0; lba < 50; ++lba) {
    EXPECT_EQ(kdd.write(lba, {}, nullptr), IoStatus::kOk);
    EXPECT_EQ(kdd.read(lba, {}, nullptr), IoStatus::kOk);
  }
  kdd.flush(nullptr);
  kdd.check_invariants();
}

TEST(KddConfig, HugeStagingBufferDefersCommits) {
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 512;
  cfg.staging_buffer_bytes = 64 * kPageSize;
  KddCache kdd(cfg, small_geo());
  for (Lba lba = 0; lba < 30; ++lba) kdd.read(lba, {}, nullptr);
  for (Lba lba = 0; lba < 30; ++lba) kdd.write(lba, {}, nullptr);
  // Everything still parked in NVRAM: no DEZ commits yet.
  EXPECT_EQ(kdd.stats().ssd_writes[static_cast<int>(SsdWriteKind::kDeltaCommit)], 0u);
  EXPECT_EQ(kdd.staged_deltas(), 30u);
  kdd.flush(nullptr);
  EXPECT_EQ(kdd.staged_deltas(), 0u);
}

TEST(WriteAmplification, CacheSsdBoundsCheckMetadata) {
  CacheSsd ssd(4, 16);
  EXPECT_EQ(ssd.metadata_pages(), 4u);
  EXPECT_EQ(ssd.cache_pages(), 16u);
  // Metadata slots wrap within the partition (caller responsibility), and
  // data indexing is offset past the partition.
  IoPlan plan;
  ssd.write_metadata(3, {}, &plan);
  ssd.write_data(0, SsdWriteKind::kReadFill, {}, &plan);
  EXPECT_EQ(plan.phases()[0][0].page, 3u);
  EXPECT_EQ(plan.phases()[1][0].page, 4u);
}

}  // namespace
}  // namespace kdd
