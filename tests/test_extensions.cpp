// Tests for the extension features: LARC-style selective admission, the
// randomized invariant fuzzer, the concurrent facade with a real cleaning
// thread, trace analysis, and KDD over RAID-6.
#include <gtest/gtest.h>

#include <thread>

#include "cache/ghost_lru.hpp"
#include "compress/content.hpp"
#include "harness/harness.hpp"
#include "kdd/concurrent.hpp"
#include "kdd/kdd_cache.hpp"
#include "test_util.hpp"
#include "trace/analysis.hpp"
#include "trace/generators.hpp"
#include "trace/zipf_workload.hpp"

namespace kdd {
namespace {

using testing::ReferenceModel;
using testing::test_page;

RaidGeometry small_geo(RaidLevel level = RaidLevel::kRaid5,
                       std::uint32_t disks = 5) {
  RaidGeometry geo;
  geo.level = level;
  geo.num_disks = disks;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

PolicyConfig small_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  return cfg;
}

// ---------------------------------------------------------------------------
// GhostLru / selective admission
// ---------------------------------------------------------------------------

TEST(GhostLru, SecondTouchAdmits) {
  GhostLru ghost(4);
  EXPECT_FALSE(ghost.touch_and_check(1));
  EXPECT_TRUE(ghost.touch_and_check(1));   // second miss admits
  EXPECT_FALSE(ghost.touch_and_check(1));  // entry was consumed
}

TEST(GhostLru, CapacityEvictsOldest) {
  GhostLru ghost(2);
  ghost.touch_and_check(1);
  ghost.touch_and_check(2);
  ghost.touch_and_check(3);               // evicts 1
  EXPECT_FALSE(ghost.touch_and_check(1));  // forgotten
  EXPECT_TRUE(ghost.touch_and_check(3));
  EXPECT_EQ(ghost.capacity(), 2u);
}

TEST(GhostLru, EraseRemovesEntry) {
  GhostLru ghost(4);
  ghost.touch_and_check(7);
  ghost.erase(7);
  EXPECT_FALSE(ghost.touch_and_check(7));
  ghost.erase(99);  // erasing an absent key is fine
}

TEST(SelectiveAdmission, OneTouchScanIsNotCached) {
  PolicyConfig cfg = small_config();
  cfg.selective_admission = true;
  KddCache kdd(cfg, small_geo());
  // A pure scan: every page touched once.
  for (Lba lba = 0; lba < 100; ++lba) kdd.read(lba, {}, nullptr);
  EXPECT_EQ(kdd.stats().total_ssd_writes(), 0u);  // nothing admitted
  // Second touches admit.
  for (Lba lba = 0; lba < 100; ++lba) kdd.read(lba, {}, nullptr);
  EXPECT_GT(kdd.stats().ssd_writes[static_cast<int>(SsdWriteKind::kReadFill)], 0u);
  // Third touches hit (a few pages may fall victim to set-conflict
  // evictions, so allow a small shortfall).
  const std::uint64_t hits_before = kdd.stats().read_hits;
  for (Lba lba = 0; lba < 100; ++lba) kdd.read(lba, {}, nullptr);
  EXPECT_GE(kdd.stats().read_hits - hits_before, 90u);
}

TEST(SelectiveAdmission, ReducesAllocationWritesOnScanHeavyWorkload) {
  const RaidGeometry geo = paper_geometry(30000);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 16384;
  wcfg.total_requests = 40000;
  wcfg.read_rate = 0.8;  // fill-dominated
  auto run = [&](bool larc) {
    PolicyConfig cfg;
    cfg.ssd_pages = 2048;
    cfg.selective_admission = larc;
    KddCache kdd(cfg, geo);
    const Trace trace = generate_zipf_trace(wcfg);
    return run_counter_trace(kdd, trace, geo.data_pages()).total_ssd_writes();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(SelectiveAdmission, RealModeStaysCorrect) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  PolicyConfig cfg = small_config();
  cfg.selective_admission = true;
  KddCache kdd(cfg, &array, &ssd);
  ReferenceModel model;
  Rng rng(3);
  Page buf = make_page();
  for (int i = 0; i < 2000; ++i) {
    const Lba lba = rng.next_below(400);
    if (rng.next_bool(0.5)) {
      const Page data = test_page(lba, static_cast<std::uint64_t>(i));
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
  }
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

// ---------------------------------------------------------------------------
// Invariant fuzzing
// ---------------------------------------------------------------------------

class KddFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KddFuzzTest, InvariantsHoldUnderRandomOperations) {
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 512;
  cfg.clean_high_watermark = 0.25;
  cfg.clean_low_watermark = 0.10;
  cfg.staging_buffer_bytes = 2 * kPageSize;
  KddCache kdd(cfg, small_geo());
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Lba lba = rng.next_below(800);
    const double dice = rng.next_double();
    if (dice < 0.55) {
      kdd.write(lba, {}, nullptr);
    } else if (dice < 0.95) {
      kdd.read(lba, {}, nullptr);
    } else if (dice < 0.98) {
      kdd.on_idle(nullptr);
    } else {
      kdd.flush(nullptr);
    }
    if (i % 250 == 0) kdd.check_invariants();
  }
  kdd.check_invariants();
  kdd.flush(nullptr);
  kdd.check_invariants();
  EXPECT_EQ(kdd.stale_groups(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KddFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(KddFuzz, RealModeInvariantsWithMixedContent) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  PolicyConfig cfg = small_config();
  cfg.clean_high_watermark = 0.25;
  KddCache kdd(cfg, &array, &ssd);
  const ContentGenerator gen(4);
  ReferenceModel model;
  Rng rng(77);
  Page buf = make_page();
  for (int i = 0; i < 3000; ++i) {
    const Lba lba = rng.next_below(400);
    if (rng.next_bool(0.6)) {
      // Mix localities, including incompressible updates (fallback paths).
      const double locality = rng.next_bool(0.15) ? 1.0 : 0.2;
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data = model.contains(lba) ? gen.mutate(base, locality, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
    if (i % 200 == 0) kdd.check_invariants();
  }
  kdd.check_invariants();
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());
}

// ---------------------------------------------------------------------------
// Concurrent facade
// ---------------------------------------------------------------------------

TEST(ConcurrentCache, MultiThreadedReadYourWrites) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 512;
  SsdModel ssd(scfg);
  PolicyConfig cfg = small_config();
  cfg.ssd_pages = 512;
  KddCache kdd(cfg, &array, &ssd);
  ConcurrentCache cache(&kdd, std::chrono::milliseconds(5));

  constexpr int kThreads = 4;
  constexpr Lba kRange = 200;  // disjoint per thread
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      ReferenceModel model;
      Page buf = make_page();
      const Lba base = static_cast<Lba>(t) * kRange;
      for (int i = 0; i < 600 && !failed; ++i) {
        const Lba lba = base + rng.next_below(kRange);
        if (rng.next_bool(0.5)) {
          const Page data = test_page(lba, static_cast<std::uint64_t>(i));
          if (cache.write(lba, data) != IoStatus::kOk) failed = true;
          model.write(lba, data);
        } else {
          if (cache.read(lba, buf) != IoStatus::kOk || buf != model.read(lba)) {
            failed = true;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());
  cache.flush();
  EXPECT_TRUE(array.scrub().empty());
  kdd.check_invariants();
}

TEST(ConcurrentCache, BackgroundCleanerRunsWhileIdle) {
  PolicyConfig cfg = small_config();
  cfg.clean_high_watermark = 0.95;  // only the idle trigger can clean
  KddCache kdd(cfg, small_geo());
  ConcurrentCache cache(&kdd, std::chrono::milliseconds(2));
  for (Lba lba = 0; lba < 20; ++lba) {
    cache.read(lba, {});
    cache.write(lba, {});
  }
  EXPECT_GT(kdd.stale_groups(), 0u);
  // Go idle and let the cleaner thread catch up. The budget is generous (a
  // loaded CI machine can starve the cleaner thread for a long time); the
  // loop exits on the first pass, so the common case stays at a few ms.
  for (int spin = 0; spin < 5000 && cache.cleaner_passes() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(cache.cleaner_passes(), 0u);
  EXPECT_EQ(kdd.stale_groups(), 0u);
  EXPECT_EQ(cache.stats().requests(), 40u);
}

// ---------------------------------------------------------------------------
// Trace analysis
// ---------------------------------------------------------------------------

TEST(Analysis, ReuseDistanceOfCyclicScan) {
  // Scanning N pages repeatedly gives every non-cold access distance N-1.
  Trace t;
  constexpr Lba kN = 64;
  for (int round = 0; round < 4; ++round) {
    for (Lba p = 0; p < kN; ++p) t.records.push_back({0, p, 1, true});
  }
  const ReuseProfile profile = compute_reuse_profile(t);
  EXPECT_EQ(profile.cold_accesses, kN);
  EXPECT_EQ(profile.total_accesses, 4 * kN);
  // distance 63 lands in bucket [63, 126].
  EXPECT_DOUBLE_EQ(profile.lru_hit_ratio(kN + 70), 0.75);
  EXPECT_DOUBLE_EQ(profile.lru_hit_ratio(8), 0.0);  // cache smaller than loop
}

TEST(Analysis, ReuseDistanceOfImmediateRepeats) {
  Trace t;
  for (Lba p = 0; p < 32; ++p) {
    t.records.push_back({0, p, 1, true});
    t.records.push_back({0, p, 1, true});  // distance 0
  }
  const ReuseProfile profile = compute_reuse_profile(t);
  EXPECT_EQ(profile.cold_accesses, 32u);
  ASSERT_FALSE(profile.distance_histogram.empty());
  EXPECT_EQ(profile.distance_histogram[0], 32u);  // all repeats in bucket 0
  EXPECT_DOUBLE_EQ(profile.lru_hit_ratio(1), 0.5);
}

TEST(Analysis, LruHitRatioIsMonotoneInCacheSize) {
  const Trace t = generate_preset("Fin2", 0.02);
  const ReuseProfile profile = compute_reuse_profile(t);
  double prev = -1.0;
  for (const std::uint64_t pages : {100ull, 1000ull, 10000ull, 100000ull}) {
    const double h = profile.lru_hit_ratio(pages);
    EXPECT_GE(h, prev);
    prev = h;
  }
  EXPECT_GT(prev, 0.2);
}

TEST(Analysis, WritesOnlyFilter) {
  Trace t;
  t.records = {{0, 1, 1, false}, {1, 2, 1, true}, {2, 1, 1, false}};
  const ReuseProfile all = compute_reuse_profile(t);
  const ReuseProfile writes = compute_reuse_profile(t, /*writes_only=*/true);
  EXPECT_EQ(all.total_accesses, 3u);
  EXPECT_EQ(writes.total_accesses, 2u);
  // In the write stream, the second write to page 1 has distance 0.
  ASSERT_FALSE(writes.distance_histogram.empty());
  EXPECT_EQ(writes.distance_histogram[0], 1u);
}

TEST(Analysis, SequentialityDetectsRuns) {
  Trace seq;
  for (Lba p = 0; p < 100; ++p) seq.records.push_back({0, p * 4, 4, true});
  EXPECT_GT(compute_sequentiality(seq).sequential_fraction, 0.95);
  EXPECT_DOUBLE_EQ(compute_sequentiality(seq).mean_request_pages, 4.0);

  Trace rnd;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    rnd.records.push_back({0, rng.next_below(1u << 30), 1, true});
  }
  EXPECT_LT(compute_sequentiality(rnd).sequential_fraction, 0.1);
}

TEST(Analysis, WorkingSetProfileSlicesByWindow) {
  Trace t;
  // Window 0: pages 0..9; window 1: page 5 only; window 3 (after a gap): 2 pages.
  for (Lba p = 0; p < 10; ++p) t.records.push_back({p, p, 1, true});
  t.records.push_back({1'000'000, 5, 1, true});
  t.records.push_back({3'000'000, 100, 2, false});
  const auto profile = compute_working_set_profile(t, 1'000'000);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].distinct_pages, 10u);
  EXPECT_EQ(profile[0].requests, 10u);
  EXPECT_EQ(profile[1].distinct_pages, 1u);
  EXPECT_EQ(profile[2].distinct_pages, 2u);
  EXPECT_EQ(profile[2].window_start_us, 3'000'000u);
}

// ---------------------------------------------------------------------------
// KDD over RAID-6
// ---------------------------------------------------------------------------

TEST(KddRaid6, ReadYourWritesAndScrub) {
  const RaidGeometry geo = small_geo(RaidLevel::kRaid6, 6);
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(small_config(), &array, &ssd);
  const ContentGenerator gen(6);
  ReferenceModel model;
  Rng rng(8);
  Page buf = make_page();
  for (int i = 0; i < 2500; ++i) {
    const Lba lba = rng.next_below(400);
    if (rng.next_bool(0.55)) {
      const Page base = model.contains(lba) ? model.read(lba) : gen.base_page(lba);
      const Page data = model.contains(lba) ? gen.mutate(base, 0.25, rng) : base;
      ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
      model.write(lba, data);
    } else {
      ASSERT_EQ(kdd.read(lba, buf, nullptr), IoStatus::kOk);
      ASSERT_EQ(buf, model.read(lba));
    }
    if (i % 500 == 0) kdd.check_invariants();
  }
  kdd.flush(nullptr);
  EXPECT_TRUE(array.scrub().empty());  // both P and Q consistent
}

TEST(KddRaid6, SurvivesDoubleDiskFailureAfterFlush) {
  const RaidGeometry geo = small_geo(RaidLevel::kRaid6, 6);
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(small_config(), &array, &ssd);
  ReferenceModel model;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const Lba lba = rng.next_below(300);
    const Page data = test_page(lba, static_cast<std::uint64_t>(i));
    ASSERT_EQ(kdd.write(lba, data, nullptr), IoStatus::kOk);
    model.write(lba, data);
  }
  kdd.flush(nullptr);
  array.fail_disk(1);
  array.fail_disk(4);
  Page buf = make_page();
  for (const auto& [lba, page] : model.pages()) {
    ASSERT_EQ(array.read_page(lba, buf), IoStatus::kOk);
    ASSERT_EQ(buf, page);
  }
}

}  // namespace
}  // namespace kdd
