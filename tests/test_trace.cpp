#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "trace/zipf_workload.hpp"

namespace kdd {
namespace {

TEST(TraceStats, CountsUniquePagesAndRequests) {
  Trace t;
  t.records = {
      {0, 10, 2, true},    // reads pages 10, 11
      {1, 11, 1, false},   // writes page 11
      {2, 10, 1, true},    // re-reads page 10
      {3, 100, 4, false},  // writes 100..103
  };
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.unique_pages_total, 6u);  // {10, 11, 100, 101, 102, 103}
  EXPECT_EQ(s.unique_pages_read, 2u);
  EXPECT_EQ(s.unique_pages_written, 5u);
  EXPECT_EQ(s.read_requests, 2u);
  EXPECT_EQ(s.write_requests, 2u);
  EXPECT_DOUBLE_EQ(s.read_ratio(), 0.5);
  EXPECT_EQ(s.max_page, 103u);
}

TEST(TraceStats, RescaleDurationPreservesOrder) {
  Trace t;
  t.records = {{100, 0, 1, true}, {200, 1, 1, true}, {400, 2, 1, true}};
  rescale_duration(t, 3000);
  EXPECT_EQ(t.records.front().time_us, 0u);
  EXPECT_EQ(t.records.back().time_us, 3000u);
  EXPECT_EQ(t.records[1].time_us, 1000u);  // preserves relative spacing
}

struct PresetCase {
  const char* name;
  double read_ratio;
  std::uint64_t unique_total_k;  // Table I, thousands of pages
  std::uint64_t requests_k;
};

class PresetTest : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PresetTest, MatchesTableOne) {
  const PresetCase& c = GetParam();
  constexpr double kScale = 0.05;  // keep the test fast
  const Trace t = generate_preset(c.name, kScale);
  const TraceStats s = compute_stats(t);
  const double expected_unique = static_cast<double>(c.unique_total_k) * 1000 * kScale;
  const double expected_requests = static_cast<double>(c.requests_k) * 1000 * kScale;
  EXPECT_NEAR(static_cast<double>(s.unique_pages_total), expected_unique,
              expected_unique * 0.05)
      << c.name;
  EXPECT_NEAR(static_cast<double>(s.read_requests + s.write_requests),
              expected_requests, expected_requests * 0.01)
      << c.name;
  EXPECT_NEAR(s.read_ratio(), c.read_ratio, 0.02) << c.name;
}

INSTANTIATE_TEST_SUITE_P(TableOne, PresetTest,
                         ::testing::Values(PresetCase{"Fin1", 0.19, 993, 6967},
                                           PresetCase{"Fin2", 0.80, 405, 4479},
                                           PresetCase{"Hm0", 0.33, 609, 8872},
                                           PresetCase{"Web0", 0.59, 1913, 7761}),
                         [](const auto& param_info) { return param_info.param.name; });

TEST(Generators, TimestampsAreMonotonic) {
  const Trace t = generate_preset("Fin2", 0.02);
  for (std::size_t i = 1; i < t.records.size(); ++i) {
    EXPECT_GE(t.records[i].time_us, t.records[i - 1].time_us);
  }
}

TEST(Generators, Web0WriteSetIsHotterThanReadSet) {
  // The property behind the paper's Fig. 7 anomaly discussion.
  const Trace t = generate_preset("Web0", 0.05);
  const TraceStats s = compute_stats(t);
  const double read_reuse = static_cast<double>(s.read_requests) /
                            static_cast<double>(s.unique_pages_read);
  const double write_reuse = static_cast<double>(s.write_requests) /
                             static_cast<double>(s.unique_pages_written);
  EXPECT_GT(write_reuse, read_reuse * 4);
}

TEST(Generators, UnknownPresetThrows) {
  EXPECT_THROW(generate_preset("Nope", 0.1), std::invalid_argument);
}

TEST(Generators, DifferentSeedsProduceDifferentTraces) {
  const Trace a = generate_preset("Fin1", 0.01, 1);
  const Trace b = generate_preset("Fin1", 0.01, 2);
  ASSERT_EQ(a.records.size(), b.records.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].page != b.records[i].page) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ZipfWorkload, MatchesFioSetup) {
  ZipfWorkloadConfig cfg;
  cfg.read_rate = 0.25;
  cfg.total_requests = 50000;
  ZipfWorkload w(cfg);
  std::uint64_t reads = 0;
  std::uint64_t max_page = 0;
  while (!w.done()) {
    const TraceRecord r = w.next();
    if (r.is_read) ++reads;
    max_page = std::max(max_page, r.page);
    EXPECT_EQ(r.pages, 1u);
  }
  EXPECT_LT(max_page, cfg.working_set_pages);
  EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(cfg.total_requests),
              0.25, 0.01);
}

TEST(ZipfWorkload, ScattersAcrossArray) {
  ZipfWorkloadConfig cfg;
  cfg.working_set_pages = 1000;
  cfg.array_pages = 100000;
  cfg.total_requests = 5000;
  ZipfWorkload w(cfg);
  std::uint64_t above = 0;
  while (!w.done()) {
    if (w.next().page >= 1000) ++above;
  }
  EXPECT_GT(above, 3000u);  // hot pages spread over the full array
}

TEST(TraceIo, CanonicalRoundTrip) {
  Trace t;
  t.name = "rt";
  t.records = {{5, 100, 2, true}, {9, 7, 1, false}};
  const std::string path = ::testing::TempDir() + "kdd_canonical_trace.csv";
  write_canonical_trace(t, path);
  const Trace back = read_canonical_trace(path, "rt");
  ASSERT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i].time_us, t.records[i].time_us);
    EXPECT_EQ(back.records[i].page, t.records[i].page);
    EXPECT_EQ(back.records[i].pages, t.records[i].pages);
    EXPECT_EQ(back.records[i].is_read, t.records[i].is_read);
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, ParsesSpcFormat) {
  const std::string path = ::testing::TempDir() + "kdd_spc_trace.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // ASU,LBA(512B sectors),size(bytes),opcode,timestamp(s)
  std::fprintf(f, "0,16,4096,W,0.000000\n");
  std::fprintf(f, "0,8,512,r,1.500000\n");
  std::fprintf(f, "garbage line\n");
  std::fclose(f);
  const Trace t = read_spc_trace(path, "spc");
  ASSERT_EQ(t.records.size(), 2u);
  EXPECT_EQ(t.records[0].page, 2u);  // sector 16 / 8 sectors-per-page
  EXPECT_EQ(t.records[0].pages, 1u);
  EXPECT_FALSE(t.records[0].is_read);
  EXPECT_EQ(t.records[1].page, 1u);
  EXPECT_TRUE(t.records[1].is_read);
  EXPECT_EQ(t.records[1].time_us, 1500000u);
  std::filesystem::remove(path);
}

TEST(TraceIo, ParsesMsrFormat) {
  const std::string path = ::testing::TempDir() + "kdd_msr_trace.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // Timestamp(100ns),Host,Disk,Type,Offset(bytes),Size(bytes),Latency
  std::fprintf(f, "128166372003061629,hm,0,Read,8192,8192,100\n");
  std::fprintf(f, "128166372013061629,hm,0,Write,4096,4096,100\n");
  std::fclose(f);
  const Trace t = read_msr_trace(path, "msr");
  ASSERT_EQ(t.records.size(), 2u);
  EXPECT_EQ(t.records[0].page, 2u);
  EXPECT_EQ(t.records[0].pages, 2u);
  EXPECT_TRUE(t.records[0].is_read);
  EXPECT_EQ(t.records[0].time_us, 0u);  // first timestamp is the epoch
  EXPECT_EQ(t.records[1].time_us, 1000000u);
  EXPECT_FALSE(t.records[1].is_read);
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_spc_trace("/nonexistent/file.csv", "x"), std::runtime_error);
}

}  // namespace
}  // namespace kdd
