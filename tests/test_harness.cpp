#include "harness/harness.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_map>

#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "trace/generators.hpp"
#include "trace/zipf_workload.hpp"

namespace kdd {
namespace {

TEST(Harness, PolicyFactoryProducesAllKinds) {
  const RaidGeometry geo = paper_geometry(1000);
  PolicyConfig cfg;
  cfg.ssd_pages = 2048;
  for (const PolicyKind kind : {PolicyKind::kNossd, PolicyKind::kWT, PolicyKind::kWA,
                                PolicyKind::kLeavO, PolicyKind::kKdd, PolicyKind::kWB}) {
    auto policy = make_policy(kind, cfg, geo);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), policy_kind_name(kind));
    // Smoke: one write, one read.
    EXPECT_EQ(policy->write(0, {}, nullptr), IoStatus::kOk);
    EXPECT_EQ(policy->read(0, {}, nullptr), IoStatus::kOk);
  }
}

TEST(Harness, PaperGeometryCoversRequestedFootprint) {
  for (const Lba max_page : {0ull, 999ull, 123456ull, 10'000'000ull}) {
    const RaidGeometry geo = paper_geometry(max_page);
    EXPECT_GT(geo.data_pages(), max_page);
    EXPECT_EQ(geo.num_disks, 5u);
    EXPECT_EQ(geo.chunk_pages, 16u);  // 64 KiB chunks
    EXPECT_EQ(geo.level, RaidLevel::kRaid5);
  }
}

TEST(Harness, ExperimentScaleParsesEnvironment) {
  ::setenv("KDD_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(experiment_scale(0.1), 0.5);
  ::setenv("KDD_SCALE", "2.5", 1);  // out of range -> fallback
  EXPECT_DOUBLE_EQ(experiment_scale(0.1), 0.1);
  ::setenv("KDD_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(experiment_scale(0.1), 0.1);
  ::unsetenv("KDD_SCALE");
  EXPECT_DOUBLE_EQ(experiment_scale(0.33), 0.33);
}

TEST(Harness, RunCounterTraceSplitsMultiPageRequests) {
  const RaidGeometry geo = paper_geometry(1000);
  PolicyConfig cfg;
  cfg.ssd_pages = 2048;
  auto policy = make_policy(PolicyKind::kWT, cfg, geo);
  Trace t;
  t.records = {{0, 10, 4, true}, {1, 10, 4, true}};
  const CacheStats s = run_counter_trace(*policy, t, geo.data_pages());
  // 4 page-misses then 4 page-hits.
  EXPECT_EQ(s.read_misses, 4u);
  EXPECT_EQ(s.read_hits, 4u);
}

TEST(Harness, RunCounterTraceWrapsOutOfRangeAddresses) {
  const RaidGeometry geo = paper_geometry(100);
  PolicyConfig cfg;
  cfg.ssd_pages = 2048;
  auto policy = make_policy(PolicyKind::kNossd, cfg, geo);
  Trace t;
  t.records = {{0, geo.data_pages() + 7, 1, false}};  // beyond capacity
  const CacheStats s = run_counter_trace(*policy, t, geo.data_pages());
  EXPECT_EQ(s.write_misses, 1u);  // wrapped, not crashed
}

TEST(Harness, DeterministicAcrossRuns) {
  // Same seed, same config => bit-identical statistics (required for
  // reproducible experiment tables).
  auto run = [] {
    const RaidGeometry geo = paper_geometry(8191);
    PolicyConfig cfg;
    cfg.ssd_pages = 2048;
    cfg.seed = 42;
    KddCache kdd(cfg, geo);
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = 4096;
    wcfg.total_requests = 20000;
    wcfg.read_rate = 0.3;
    wcfg.seed = 9;
    const Trace trace = generate_zipf_trace(wcfg);
    return run_counter_trace(kdd, trace, geo.data_pages());
  };
  const CacheStats a = run();
  const CacheStats b = run();
  EXPECT_EQ(a.total_ssd_writes(), b.total_ssd_writes());
  EXPECT_EQ(a.read_hits, b.read_hits);
  EXPECT_EQ(a.write_hits, b.write_hits);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
}

TEST(Harness, TimedSimulationIsDeterministic) {
  auto run = [] {
    const RaidGeometry geo = paper_geometry(8191);
    PolicyConfig cfg;
    cfg.ssd_pages = 2048;
    auto policy = make_policy(PolicyKind::kKdd, cfg, geo);
    EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = 4096;
    wcfg.total_requests = 2000;
    wcfg.read_rate = 0.25;
    wcfg.array_pages = geo.data_pages();
    ZipfWorkload workload(wcfg);
    return sim.run_closed_loop(workload, 8);
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_DOUBLE_EQ(a.latency.mean_us(), b.latency.mean_us());
}

TEST(Harness, WearOrderingMatchesTrafficOrderingOnRealFlash) {
  // End-to-end endurance: running the same workload with real content
  // through real SSDs, KDD must consume less NAND endurance than WT.
  const RaidGeometry geo = paper_geometry(4095);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 2048;
  wcfg.total_requests = 30000;
  wcfg.read_rate = 0.25;
  wcfg.array_pages = geo.data_pages();

  double consumed[2] = {};
  int i = 0;
  for (const PolicyKind kind : {PolicyKind::kKdd, PolicyKind::kWT}) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 1024;
    scfg.pages_per_block = 16;
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = 1024;
    cfg.delta_ratio_mean = 0.25;
    auto policy = make_policy(kind, cfg, &array, &ssd);
    const ContentGenerator gen(1);
    Rng rng(2);
    std::unordered_map<Lba, Page> current;
    ZipfWorkload workload(wcfg);
    Page buf = make_page();
    while (!workload.done()) {
      const TraceRecord r = workload.next();
      if (r.is_read) {
        policy->read(r.page, buf, nullptr);
      } else {
        auto it = current.find(r.page);
        Page next = it == current.end() ? gen.base_page(r.page)
                                        : gen.mutate(it->second, 0.2, rng);
        policy->write(r.page, next, nullptr);
        current[r.page] = std::move(next);
      }
    }
    policy->flush(nullptr);
    consumed[i++] = ssd.endurance_consumed();
  }
  EXPECT_LT(consumed[0], consumed[1]);  // KDD < WT
}

}  // namespace
}  // namespace kdd
