// Tests for the batched destage pipeline (kdd/destage.hpp): the claim ->
// prepare -> fold -> commit protocol on KddCache, the disk-layout-ordered
// batch planner, and the acceptance property of the overhaul — the batched
// cleaner (inline or driven by the ConcurrentCache cleaner pool) converges
// to a final array state byte-identical to the legacy per-group serial
// cleaner on a fig9-style replay.
#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "blockdev/ssd_model.hpp"
#include "harness/harness.hpp"
#include "kdd/concurrent.hpp"
#include "kdd/destage.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"
#include "trace/generators.hpp"

namespace kdd {
namespace {

constexpr std::uint64_t kSeed = 99;

/// LZ-friendly page content (head-quarter entropy, repeated-stamp body) so
/// successive versions produce small deltas that actually go old + staged —
/// test_page() is deliberately incompressible and would take the oversized-
/// delta fallback instead of dirtying groups.
Page versioned_page(Lba lba, std::uint64_t version) {
  Page p = make_page();
  fill_replay_page(lba, version, kSeed, p);
  return p;
}

RaidGeometry small_geo() {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  return geo;
}

/// Config whose watermarks never trigger inline cleaning, so tests can drive
/// the destage pipeline by hand without maybe_clean interfering.
PolicyConfig manual_config() {
  PolicyConfig cfg;
  cfg.ssd_pages = 256;
  cfg.ways = 8;
  cfg.clean_high_watermark = 1.0;
  cfg.clean_low_watermark = 0.99;
  return cfg;
}

/// Dirties `groups` distinct parity groups: one write miss (clean fill) plus
/// one write hit (old + staged delta) on the first LBA of each group.
std::vector<GroupId> dirty_groups(KddCache& kdd, const RaidLayout& layout,
                                  std::size_t groups) {
  std::vector<GroupId> out;
  Lba lba = 0;
  std::uint64_t version = 0;
  while (out.size() < groups) {
    const GroupId g = layout.group_of(lba);
    if (std::find(out.begin(), out.end(), g) == out.end()) {
      EXPECT_EQ(kdd.write(lba, versioned_page(lba, ++version)), IoStatus::kOk);
      EXPECT_EQ(kdd.write(lba, versioned_page(lba, ++version)), IoStatus::kOk);
      out.push_back(g);
    }
    ++lba;
  }
  return out;
}

TEST(DestageBatch, ClaimReturnsGroupsInDiskLayoutOrder) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(manual_config(), &array, &ssd);

  const std::vector<GroupId> dirtied = dirty_groups(kdd, array.layout(), 6);
  ASSERT_EQ(kdd.stale_groups(), 6u);

  DestageSource& src = kdd;
  const std::vector<GroupId> claimed = src.destage_claim(6);
  ASSERT_EQ(claimed.size(), 6u);
  // Disk-layout order: sorted by (parity disk, parity page).
  for (std::size_t i = 1; i < claimed.size(); ++i) {
    const DiskAddr a = array.layout().parity_addr(claimed[i - 1]);
    const DiskAddr b = array.layout().parity_addr(claimed[i]);
    EXPECT_TRUE(a.disk < b.disk || (a.disk == b.disk && a.page < b.page))
        << "claim not in disk-layout order at " << i;
  }
  // Claimed groups are exactly the dirtied ones.
  std::vector<GroupId> sorted_dirtied = dirtied;
  std::vector<GroupId> sorted_claimed = claimed;
  std::sort(sorted_dirtied.begin(), sorted_dirtied.end());
  std::sort(sorted_claimed.begin(), sorted_claimed.end());
  EXPECT_EQ(sorted_claimed, sorted_dirtied);

  // A second claim must not hand out in-flight groups...
  EXPECT_TRUE(src.destage_claim(6).empty());
  // ...until they are abandoned.
  src.destage_abandon(claimed);
  EXPECT_EQ(src.destage_claim(6).size(), 6u);
  src.destage_abandon(claimed);
  kdd.flush();
  EXPECT_TRUE(array.scrub().empty());
}

TEST(DestageBatch, ClaimHonoursMaxGroups) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(manual_config(), &array, &ssd);

  dirty_groups(kdd, array.layout(), 5);
  DestageSource& src = kdd;
  const std::vector<GroupId> first = src.destage_claim(2);
  EXPECT_EQ(first.size(), 2u);
  const std::vector<GroupId> second = src.destage_claim(16);
  EXPECT_EQ(second.size(), 3u);  // the remaining unclaimed groups
  src.destage_abandon(first);
  src.destage_abandon(second);
  kdd.flush();
}

TEST(DestageBatch, ManualPipelineCleansClaimedGroups) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(manual_config(), &array, &ssd);

  dirty_groups(kdd, array.layout(), 8);
  ASSERT_GT(kdd.old_pages(), 0u);

  DestageSource& src = kdd;
  for (;;) {
    const std::vector<GroupId> groups = src.destage_claim(3);
    if (groups.empty()) break;
    std::unique_ptr<DestageUnit> unit = src.destage_prepare(groups, nullptr);
    ASSERT_NE(unit, nullptr);
    unit->fold();  // no policy lock required here by contract
    src.destage_commit(*unit, nullptr);
  }
  EXPECT_EQ(kdd.stale_groups(), 0u);
  EXPECT_EQ(kdd.old_pages(), 0u);
  kdd.check_invariants();
  EXPECT_TRUE(array.scrub().empty());

  // Every page written is still readable with its final contents.
  Page buf = make_page();
  Lba lba = 0;
  std::uint64_t version = 0;
  std::size_t seen = 0;
  std::vector<GroupId> visited;
  while (seen < 8) {
    const GroupId g = array.layout().group_of(lba);
    if (std::find(visited.begin(), visited.end(), g) == visited.end()) {
      version += 2;
      ASSERT_EQ(kdd.read(lba, buf), IoStatus::kOk);
      EXPECT_EQ(buf, versioned_page(lba, version));
      visited.push_back(g);
      ++seen;
    }
    ++lba;
  }
}

TEST(DestageBatch, PrepareReleasesClaimsOfRepairedGroups) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  KddCache kdd(manual_config(), &array, &ssd);

  dirty_groups(kdd, array.layout(), 4);
  DestageSource& src = kdd;
  const std::vector<GroupId> groups = src.destage_claim(4);
  ASSERT_EQ(groups.size(), 4u);
  // Claims must be released before a blocking flush (the facade's drain
  // barrier guarantees this ordering); flush then repairs everything inline.
  src.destage_abandon(groups);
  kdd.flush();
  // Claiming again finds nothing, and preparing an empty claim yields null.
  EXPECT_TRUE(src.destage_claim(4).empty());
  EXPECT_TRUE(array.scrub().empty());
}

TEST(DestageBatch, BatchSizeHonoursConfigOverrideAndClampsAuto) {
  const RaidGeometry geo = small_geo();
  SsdConfig scfg;
  scfg.logical_pages = 256;

  PolicyConfig cfg = manual_config();
  cfg.destage_batch_groups = 7;
  {
    RaidArray array(geo);
    SsdModel ssd(scfg);
    KddCache kdd(cfg, &array, &ssd);
    EXPECT_EQ(kdd.destage_batch_size(), 7u);
    EXPECT_EQ(static_cast<DestageSource&>(kdd).destage_batch_hint(), 7u);
  }
  cfg.destage_batch_groups = 0;  // auto: watermark-gap / 4, clamped to [4, 64]
  {
    RaidArray array(geo);
    SsdModel ssd(scfg);
    KddCache kdd(cfg, &array, &ssd);
    EXPECT_GE(kdd.destage_batch_size(), 4u);
    EXPECT_LE(kdd.destage_batch_size(), 64u);
  }
}

// The acceptance property (fig9-style replay): legacy per-group serial
// cleaning, inline batched cleaning, and pool-driven batched cleaning all
// converge to byte-identical array contents. Stats may differ (the *order*
// groups are destaged in differs, so eviction timing differs) — the digest
// and a clean scrub are the invariants.
TEST(DestageBatch, BatchedAndPooledCleanersMatchLegacyDigest) {
  SyntheticTraceConfig tcfg = fin1_config(0.01);
  tcfg.seed = 5;
  const Trace trace = generate_synthetic_trace(tcfg);
  const RaidGeometry geo = paper_geometry(tcfg.unique_total());

  struct Run {
    const char* name;
    bool batching;
    unsigned threads;
    std::uint32_t pool;
  };
  const Run runs[] = {
      {"legacy-serial", false, 1, 0},
      {"batched-inline", true, 1, 0},
      {"batched-pool", true, 4, 3},
  };

  std::uint64_t legacy_digest = 0;
  std::uint64_t legacy_requests = 0;
  for (const Run& run : runs) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 1024;
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = scfg.logical_pages;
    cfg.clean_high_watermark = 0.25;
    cfg.clean_low_watermark = 0.10;
    cfg.destage_batching = run.batching;
    KddCache kdd(cfg, &array, &ssd);
    ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2),
                          run.pool);

    const ConcurrentReplayResult r = run_concurrent_trace(
        cache, array.layout(), trace, geo.data_pages(), run.threads, /*seed=*/3);
    EXPECT_TRUE(array.scrub().empty()) << run.name;
    kdd.check_invariants();
    const std::uint64_t digest = replay_readback_digest(cache, geo.data_pages());
    if (run.pool > 0) {
      EXPECT_EQ(cache.pool_threads(), run.pool) << run.name;
      EXPECT_GT(cache.pool_batches(), 0u) << run.name;
    }
    if (legacy_requests == 0) {
      legacy_digest = digest;
      legacy_requests = r.ops;
    } else {
      EXPECT_EQ(digest, legacy_digest) << run.name;
      EXPECT_EQ(r.ops, legacy_requests) << run.name;
    }
  }
}

// destage_batching=false disables the *inline* batch path; the facade's
// cleaner pool (enabled explicitly via cleaner_threads) may still drive the
// claim protocol. Whichever path runs, flush must drain everything and the
// final contents must be exact.
TEST(DestageBatch, LegacyModeStillDrainsUnderFacade) {
  const RaidGeometry geo = small_geo();
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 256;
  SsdModel ssd(scfg);
  PolicyConfig cfg = manual_config();
  cfg.destage_batching = false;
  KddCache kdd(cfg, &array, &ssd);
  ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2),
                        /*cleaner_threads=*/2);

  Page buf = make_page();
  for (Lba lba = 0; lba < 64; ++lba) {
    ASSERT_EQ(cache.write(lba, versioned_page(lba, 1)), IoStatus::kOk);
    ASSERT_EQ(cache.write(lba, versioned_page(lba, 2)), IoStatus::kOk);
  }
  cache.flush();
  EXPECT_TRUE(array.scrub().empty());
  for (Lba lba = 0; lba < 64; ++lba) {
    ASSERT_EQ(cache.read(lba, buf), IoStatus::kOk);
    EXPECT_EQ(buf, versioned_page(lba, 2));
  }
}

}  // namespace
}  // namespace kdd
