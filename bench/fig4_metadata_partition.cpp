// Figure 4: effect of the metadata partition size on metadata I/Os.
//
// Sweeps the partition size (fraction of the SSD reserved for the circular
// metadata log) for every workload at two cache sizes and reports the ratio
// of metadata page writes to total cache write traffic. Paper: at 0.59 % the
// fraction stays below 1.55/1.42/1.51/1.79 % for Fin1/Fin2/Hm0/Web0; smaller
// partitions pay more log GC.
//
// Note: with 17-byte checksummed entries and a 0.90 GC threshold, partitions
// below ~0.5 % cannot hold one live entry per cache slot and would livelock
// the circular log, so the paper's 0.39 % point is clamped to the 0.5 % floor
// (see plan_cache_layout).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Figure 4", "metadata I/O fraction vs. metadata partition size", scale);

  const double fractions[] = {0.0039, 0.0059, 0.0078, 0.0098};

  for (const char* workload : {"Fin1", "Fin2", "Hm0", "Web0"}) {
    const Trace trace = generate_preset(workload, scale);
    const TraceStats tstats = compute_stats(trace);
    const RaidGeometry geo = paper_geometry(tstats.max_page);

    TextTable table({"Cache size", "0.39%*", "0.59%", "0.78%", "0.98%"});
    for (const double cache_frac : {0.10, 0.30}) {
      const auto ssd_pages = static_cast<std::uint64_t>(
          cache_frac * static_cast<double>(tstats.unique_pages_total));
      std::vector<std::string> row{bench::kpages(ssd_pages)};
      for (const double meta_frac : fractions) {
        PolicyConfig cfg;
        cfg.ssd_pages = ssd_pages;
        cfg.metadata_fraction = meta_frac;
        cfg.delta_ratio_mean = 0.25;  // medium content locality, as in the paper
        KddCache kdd(cfg, geo);
        const CacheStats s = run_counter_trace(kdd, trace, geo.data_pages());
        const double ratio = static_cast<double>(s.metadata_ssd_writes()) /
                             static_cast<double>(s.total_ssd_writes());
        row.push_back(bench::pct(ratio));
      }
      table.add_row(std::move(row));
    }
    std::printf("--- %s ---\n", workload);
    table.print();
    std::printf("(* clamped to the 0.5%% feasibility floor)\n\n");
  }
  std::printf("Paper: <= 1.55%% / 1.42%% / 1.51%% / 1.79%% metadata share at 0.59%%.\n");
  return 0;
}
