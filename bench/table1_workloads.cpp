// Table I: characteristics of the I/O workload traces.
//
// Regenerates the paper's Table I from our calibrated synthetic generators:
// unique pages (total / read / write), request counts and read ratio, all at
// 4 KiB page granularity. At KDD_SCALE=1.0 the numbers match the paper's;
// smaller scales shrink everything proportionally.
#include <cstdio>

#include "bench_util.hpp"
#include "trace/trace.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Table I", "characteristics of I/O workload traces", scale);

  TextTable table({"Workload", "Unique(k) Total", "Read", "Write", "Requests(k) Read",
                   "Write", "Read Ratio"});
  for (const char* name : {"Fin1", "Fin2", "Hm0", "Web0"}) {
    const Trace trace = generate_preset(name, scale);
    const TraceStats s = compute_stats(trace);
    table.add_row({name,
                   TextTable::num(static_cast<double>(s.unique_pages_total) / 1000, 0),
                   TextTable::num(static_cast<double>(s.unique_pages_read) / 1000, 0),
                   TextTable::num(static_cast<double>(s.unique_pages_written) / 1000, 0),
                   TextTable::num(static_cast<double>(s.read_requests) / 1000, 0),
                   TextTable::num(static_cast<double>(s.write_requests) / 1000, 0),
                   TextTable::num(s.read_ratio(), 2)});
  }
  table.print();
  std::printf(
      "\nPaper (scale 1.0): Fin1 993/331/966k uniq, 1339/5628k req, 0.19 | "
      "Fin2 405/271/212k, 3562/917k, 0.80\n"
      "                   Hm0 609/488/428k, 2880/5992k, 0.33 | "
      "Web0 1913/1884/182k, 4575/3186k, 0.59\n");
  return 0;
}
