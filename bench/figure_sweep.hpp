// Shared sweep runner for Figures 5-8: cache-size sweep of {WA,} WT, LeavO
// and KDD at three content-locality levels over a trace, reporting hit
// ratios or SSD write traffic.
//
// Multi-core mode: KDD_SWEEP_THREADS=<n> (default 1) runs the
// (policy, locality, cache-size) grid points of each workload across a
// ThreadPool. Results land in index-addressed slots and the table/CSV are
// emitted serially after a join barrier, so row order, cell order and the
// printed output are identical at every thread count — only wall-clock
// changes. CSV writes additionally serialise on a per-file mutex so
// concurrent sweeps in one process never interleave inside a file.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"

namespace kdd::bench {

/// Sweep-point parallelism: KDD_SWEEP_THREADS (>= 1; default 1 keeps the
/// historical fully serial behaviour).
inline std::size_t sweep_threads() {
  if (const char* env = std::getenv("KDD_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<std::size_t>(v);
  }
  return 1;
}

/// One mutex per output file (figure+workload), created on first use. Keeps
/// concurrent sweeps from interleaving writes into the same CSV.
inline std::mutex& csv_file_mutex(const std::string& key) {
  static std::mutex registry_mu;
  static std::unordered_map<std::string, std::unique_ptr<std::mutex>>* registry =
      new std::unordered_map<std::string, std::unique_ptr<std::mutex>>();
  const std::lock_guard<std::mutex> lock(registry_mu);
  auto it = registry->find(key);
  if (it == registry->end()) {
    it = registry->emplace(key, std::make_unique<std::mutex>()).first;
  }
  return *it->second;
}

/// When KDD_CSV=<dir> is set, every sweep also lands as a CSV in that
/// directory (one file per figure+workload) for plotting.
inline void maybe_write_csv(const TextTable& table, const std::string& figure,
                            const std::string& workload) {
  const char* dir = std::getenv("KDD_CSV");
  if (!dir || !*dir) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string name = figure + "_" + workload + ".csv";
  for (char& c : name) {
    if (c == ' ' || c == '/') c = '_';
  }
  const std::string path = std::string(dir) + "/" + name;
  const std::lock_guard<std::mutex> file_lock(csv_file_mutex(path));
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    table.print_csv(f);
    std::fclose(f);
    std::printf("(csv written to %s)\n", path.c_str());
  }
}

struct FigureConfig {
  const char* figure;
  const char* metric;  ///< "hit ratio" or "SSD write traffic"
  std::vector<const char*> workloads;
  bool traffic_mode = false;  ///< false: hit ratios (Figs 5/7); true: traffic (6/8)
};

inline void run_cache_size_sweep(const FigureConfig& fig) {
  const double scale = experiment_scale();
  banner(fig.figure, fig.metric, scale);
  ThreadPool pool(sweep_threads());

  for (const char* workload : fig.workloads) {
    const Trace trace = generate_preset(workload, scale);
    const TraceStats tstats = compute_stats(trace);
    const RaidGeometry geo = paper_geometry(tstats.max_page);

    std::printf("--- %s (unique pages: %lluk) ---\n", workload,
                static_cast<unsigned long long>(tstats.unique_pages_total / 1000));

    struct SweepConfig {
      PolicyKind kind;
      double locality;
      bool elastic;
    };
    std::vector<std::string> header{"Cache size"};
    std::vector<SweepConfig> configs;
    if (fig.traffic_mode) configs.push_back({PolicyKind::kWA, 0.25, false});
    configs.push_back({PolicyKind::kWT, 0.25, false});
    configs.push_back({PolicyKind::kLeavO, 0.25, false});
    for (const double locality : kLocalityLevels) {
      configs.push_back({PolicyKind::kKdd, locality, false});
    }
    if (!fig.traffic_mode) {
      // Compressibility-mix axis (hit-ratio figures only): elastic KDD at
      // near-incompressible / mixed / highly-compressible content, so the
      // capacity the variable-size allocator + GC reclaim shows up directly
      // against the matching static-layout KDD columns.
      for (const double mean : kCompressMix) {
        configs.push_back({PolicyKind::kKdd, mean, true});
      }
    }
    for (const auto& [kind, locality, elastic] : configs) {
      std::string name = policy_kind_name(kind);
      if (kind == PolicyKind::kKdd) {
        name += std::string(elastic ? "e" : "") + "-" +
                TextTable::num(locality * 100, 0) + "%";
      }
      header.push_back(name);
    }
    if (fig.traffic_mode) {
      header.push_back("KDD-25 vs WT");
      header.push_back("KDD-25 vs LeavO");
    }
    TextTable table(header);

    // Fan the whole (cache size x config) grid out across the pool. Each
    // grid point is an independent replay (run_policy_on_trace builds its
    // own policy instance), and each result is written to its own slot, so
    // the serial emission below is order-identical at any thread count.
    const std::vector<double> fractions = cache_fractions();
    const std::size_t cols = configs.size();
    std::vector<CacheStats> results(fractions.size() * cols);
    pool.parallel_for_indexed(results.size(), [&](std::size_t i) {
      const std::size_t fi = i / cols;
      const std::size_t ci = i % cols;
      const auto ssd_pages = static_cast<std::uint64_t>(
          fractions[fi] * static_cast<double>(tstats.unique_pages_total));
      const auto& [kind, locality, elastic] = configs[ci];
      results[i] =
          run_policy_on_trace(kind, locality, ssd_pages, trace, geo, elastic);
    });

    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      const auto ssd_pages = static_cast<std::uint64_t>(
          fractions[fi] * static_cast<double>(tstats.unique_pages_total));
      std::vector<std::string> row{kpages(ssd_pages)};
      double wt_traffic = 0, leavo_traffic = 0, kdd25_traffic = 0;
      for (std::size_t ci = 0; ci < cols; ++ci) {
        const auto& [kind, locality, elastic] = configs[ci];
        const CacheStats& s = results[fi * cols + ci];
        if (fig.traffic_mode) {
          const double gib =
              static_cast<double>(s.write_traffic_bytes()) / static_cast<double>(kGiB);
          row.push_back(TextTable::num(gib, 2));
          if (kind == PolicyKind::kWT) wt_traffic = gib;
          if (kind == PolicyKind::kLeavO) leavo_traffic = gib;
          if (kind == PolicyKind::kKdd && locality == 0.25 && !elastic) {
            kdd25_traffic = gib;
          }
        } else {
          row.push_back(pct(s.hit_ratio()));
        }
      }
      if (fig.traffic_mode) {
        row.push_back("-" + pct(1.0 - kdd25_traffic / wt_traffic));
        row.push_back("-" + pct(1.0 - kdd25_traffic / leavo_traffic));
      }
      table.add_row(std::move(row));
    }
    table.print();
    maybe_write_csv(table, fig.figure, workload);
    std::printf("%s\n", fig.traffic_mode ? "(GiB written to SSD; lower is better)\n"
                                         : "(overall hit ratio; higher is better; "
                                           "KDDe-N% = elastic delta zone at "
                                           "incompressible/mixed/compressible "
                                           "content mixes)\n");
  }
}

}  // namespace kdd::bench
