// Shared sweep runner for Figures 5-8: cache-size sweep of {WA,} WT, LeavO
// and KDD at three content-locality levels over a trace, reporting hit
// ratios or SSD write traffic.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace kdd::bench {

/// When KDD_CSV=<dir> is set, every sweep also lands as a CSV in that
/// directory (one file per figure+workload) for plotting.
inline void maybe_write_csv(const TextTable& table, const std::string& figure,
                            const std::string& workload) {
  const char* dir = std::getenv("KDD_CSV");
  if (!dir || !*dir) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string name = figure + "_" + workload + ".csv";
  for (char& c : name) {
    if (c == ' ' || c == '/') c = '_';
  }
  const std::string path = std::string(dir) + "/" + name;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    table.print_csv(f);
    std::fclose(f);
    std::printf("(csv written to %s)\n", path.c_str());
  }
}

struct FigureConfig {
  const char* figure;
  const char* metric;  ///< "hit ratio" or "SSD write traffic"
  std::vector<const char*> workloads;
  bool traffic_mode = false;  ///< false: hit ratios (Figs 5/7); true: traffic (6/8)
};

inline void run_cache_size_sweep(const FigureConfig& fig) {
  const double scale = experiment_scale();
  banner(fig.figure, fig.metric, scale);

  for (const char* workload : fig.workloads) {
    const Trace trace = generate_preset(workload, scale);
    const TraceStats tstats = compute_stats(trace);
    const RaidGeometry geo = paper_geometry(tstats.max_page);

    std::printf("--- %s (unique pages: %lluk) ---\n", workload,
                static_cast<unsigned long long>(tstats.unique_pages_total / 1000));

    std::vector<std::string> header{"Cache size"};
    std::vector<std::pair<PolicyKind, double>> configs;
    if (fig.traffic_mode) configs.emplace_back(PolicyKind::kWA, 0.25);
    configs.emplace_back(PolicyKind::kWT, 0.25);
    configs.emplace_back(PolicyKind::kLeavO, 0.25);
    for (const double locality : kLocalityLevels) {
      configs.emplace_back(PolicyKind::kKdd, locality);
    }
    for (const auto& [kind, locality] : configs) {
      std::string name = policy_kind_name(kind);
      if (kind == PolicyKind::kKdd) {
        name += "-" + TextTable::num(locality * 100, 0) + "%";
      }
      header.push_back(name);
    }
    if (fig.traffic_mode) {
      header.push_back("KDD-25 vs WT");
      header.push_back("KDD-25 vs LeavO");
    }
    TextTable table(header);

    for (const double frac : cache_fractions()) {
      const auto ssd_pages = static_cast<std::uint64_t>(
          frac * static_cast<double>(tstats.unique_pages_total));
      std::vector<std::string> row{kpages(ssd_pages)};
      double wt_traffic = 0, leavo_traffic = 0, kdd25_traffic = 0;
      for (const auto& [kind, locality] : configs) {
        const CacheStats s =
            run_policy_on_trace(kind, locality, ssd_pages, trace, geo);
        if (fig.traffic_mode) {
          const double gib =
              static_cast<double>(s.write_traffic_bytes()) / static_cast<double>(kGiB);
          row.push_back(TextTable::num(gib, 2));
          if (kind == PolicyKind::kWT) wt_traffic = gib;
          if (kind == PolicyKind::kLeavO) leavo_traffic = gib;
          if (kind == PolicyKind::kKdd && locality == 0.25) kdd25_traffic = gib;
        } else {
          row.push_back(pct(s.hit_ratio()));
        }
      }
      if (fig.traffic_mode) {
        row.push_back("-" + pct(1.0 - kdd25_traffic / wt_traffic));
        row.push_back("-" + pct(1.0 - kdd25_traffic / leavo_traffic));
      }
      table.add_row(std::move(row));
    }
    table.print();
    maybe_write_csv(table, fig.figure, workload);
    std::printf("%s\n", fig.traffic_mode ? "(GiB written to SSD; lower is better)\n"
                                         : "(overall hit ratio; higher is better)\n");
  }
}

}  // namespace kdd::bench
