// Figure 11: SSD write traffic under the FIO-like Zipf benchmark, read rate
// swept 0-75 %.
// Paper: WA least (approaching KDD as reads grow); KDD cuts traffic vs WT by
// 44.0/38.6/31.0/19.4 % and vs LeavO by 46.4/41.3/34.0/22.6 %.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/event_sim.hpp"
#include "trace/zipf_workload.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Figure 11", "SSD write traffic, closed-loop Zipf (FIO)", scale);

  const auto cache_pages = static_cast<std::uint64_t>(262144.0 * scale);
  const auto wss_pages = static_cast<std::uint64_t>(409600.0 * scale);
  const auto total_requests = static_cast<std::uint64_t>(1048576.0 * scale);
  const RaidGeometry geo = paper_geometry(wss_pages * 2);

  TextTable table({"Read rate", "WA", "WT", "LeavO", "KDD", "KDD vs WT",
                   "KDD vs LeavO"});
  for (const double read_rate : {0.0, 0.25, 0.50, 0.75}) {
    std::vector<std::string> row{bench::pct(read_rate)};
    double wt = 0, leavo = 0, kdd = 0;
    for (const PolicyKind kind :
         {PolicyKind::kWA, PolicyKind::kWT, PolicyKind::kLeavO, PolicyKind::kKdd}) {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages;
      cfg.delta_ratio_mean = 0.25;
      auto policy = make_policy(kind, cfg, geo);
      ZipfWorkloadConfig wcfg;
      wcfg.working_set_pages = wss_pages;
      wcfg.total_requests = total_requests;
      wcfg.read_rate = read_rate;
      wcfg.array_pages = geo.data_pages();
      const Trace trace = generate_zipf_trace(wcfg);
      const CacheStats s = run_counter_trace(*policy, trace, geo.data_pages());
      const double gib =
          static_cast<double>(s.write_traffic_bytes()) / static_cast<double>(kGiB);
      if (kind == PolicyKind::kWT) wt = gib;
      if (kind == PolicyKind::kLeavO) leavo = gib;
      if (kind == PolicyKind::kKdd) kdd = gib;
      row.push_back(TextTable::num(gib, 2));
    }
    row.push_back("-" + bench::pct(1.0 - kdd / wt));
    row.push_back("-" + bench::pct(1.0 - kdd / leavo));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(GiB written to SSD; paper: KDD -44.0/-38.6/-31.0/-19.4%% vs WT)\n");

  // Queue-depth sweep: the straight trace replay above is order-fixed, so QD
  // cannot move it. The closed-loop simulator interleaves the per-thread
  // request streams by completion time instead — deeper queues reorder the
  // stream the cache sees, which shifts hit patterns and with them SSD
  // traffic. Fixed 25 % read rate, WT vs KDD.
  TextTable qd_table({"QD", "WT GiB", "KDD GiB", "KDD vs WT"});
  for (const unsigned qd : {16u, 64u, 256u}) {
    double wt = 0, kdd = 0;
    for (const PolicyKind kind : {PolicyKind::kWT, PolicyKind::kKdd}) {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages;
      cfg.delta_ratio_mean = 0.25;
      auto policy = make_policy(kind, cfg, geo);
      EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
      ZipfWorkloadConfig wcfg;
      wcfg.working_set_pages = wss_pages;
      wcfg.total_requests = total_requests;
      wcfg.read_rate = 0.25;
      wcfg.array_pages = geo.data_pages();
      ZipfWorkload workload(wcfg);
      (void)sim.run_closed_loop(workload, qd);
      const double gib = static_cast<double>(
                             policy->stats().write_traffic_bytes()) /
                         static_cast<double>(kGiB);
      if (kind == PolicyKind::kWT) wt = gib;
      if (kind == PolicyKind::kKdd) kdd = gib;
    }
    qd_table.add_row({std::to_string(qd), TextTable::num(wt, 2),
                      TextTable::num(kdd, 2),
                      "-" + bench::pct(1.0 - kdd / wt)});
  }
  std::printf("\nQueue-depth sweep (25%% reads, closed loop):\n");
  qd_table.print();
  return 0;
}
