// Figure 7: cache hit ratios under the read-dominant traces (Fin2, Web0).
// Expected shape (paper): LeavO smallest; on Web0 with small caches KDD can
// exceed WT because its pinned old/delta pages match Web0's hot write set.
#include "figure_sweep.hpp"

int main() {
  kdd::bench::run_cache_size_sweep(
      {"Figure 7", "cache hit ratios (read-dominant traces)", {"Fin2", "Web0"}, false});
  return 0;
}
