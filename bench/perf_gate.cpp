// Perf-regression gate for the data-path primitives.
//
// Re-measures the hot kernels of this build and writes BENCH_micro.json:
// for every kernel a `before_ns` (the pre-overhaul seed build, measured on
// the reference machine with the exact same workloads — see the constants
// below) and an `after_ns` (this build, this machine), plus derived
// throughput. With --check it enforces the overhaul's acceptance
// thresholds:
//   * gf256_mul_acc over a 4 KiB page: >= 3x faster than the seed,
//   * delta make/apply round-trip:     >= 30% fewer ns/op than the seed,
//   * observability overhead: a fig9-style KDD open-loop replay with the
//     full telemetry stack on (spans + metrics + wear bucketing) must cost
//     <= 5% more wall time than the identical replay with telemetry off.
//     Like the pool/scaling gates this only gates on machines with >= 2
//     hardware threads: on a single core the paired off/on rounds time-slice
//     against the process's own background work and the median ratio is
//     noise, so the number is recorded in BENCH_micro.json without gating,
//   * segment staging: the same prototype KDD write stream replayed with
//     segment staging off and on must commit the identical page stream with
//     >= 4x fewer SSD write commands per committed page, and the post-flush
//     read-back digests must be byte-identical (deterministic counters, so
//     this gates on every host),
//   * elastic delta zone: the same seeded mixed replay with the static
//     layout vs the elastic extent allocator + GC + adaptive boundary. On a
//     compressible trace elastic packing must hold >= 15% more resident data
//     pages; on an incompressible trace GC must cost <= 5% extra cache-SSD
//     page writes; read-back digests must match byte-for-byte on both pairs
//     (deterministic counters, so this gates on every host),
//   * destage batching: folding 4 groups x 4 deltas of stale parity via one
//     update_parity_rmw_batch pass (one parity read/write pair per group)
//     must be >= 2x faster than the legacy per-page protocol (one parity
//     read/write pair per delta),
//   * cleaner-pool replay (only on machines with >= 4 hardware threads): a
//     4-submitter fin1 replay over ConcurrentCache with a 4-worker cleaner
//     pool must be >= 1.5x faster than the same replay with the serial idle
//     cleaner. On smaller machines the numbers are still recorded in
//     BENCH_micro.json but do not gate.
//
// It also records ns/op for the observability primitives themselves
// (MetricsRegistry counter increment, SpanScope start/stop with tracing off
// and on) so regressions in the instrumentation's own cost show up in
// BENCH_micro.json even though only the 5% end-to-end bound gates.
//
// Methodology: each op is auto-calibrated to ~2 ms batches; 7 batches are
// run and the fastest is reported (minimum-of-N is robust against scheduler
// noise, which only ever slows a batch down). Absolute numbers move with the
// host CPU; the *ratios* the gate checks are stable across the x86-64
// machines this was validated on because before/after exercise identical
// memory traffic. Run on the same machine class as the recorded baseline
// for meaningful absolute comparisons (see docs/performance.md).
//
// Usage: perf_gate [--check] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/segment.hpp"

#include "common/bytes.hpp"
#include "common/kernels.hpp"
#include "common/rng.hpp"
#include "compress/content.hpp"
#include "compress/delta.hpp"
#include "compress/lz.hpp"
#include "blockdev/ssd_model.hpp"
#include "harness/harness.hpp"
#include "harness/telemetry.hpp"
#include "kdd/concurrent.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "raid/gf256.hpp"
#include "sim/event_sim.hpp"
#include "trace/generators.hpp"

namespace kdd {
namespace {

Page random_page(std::uint64_t seed) {
  Rng rng(seed);
  Page p(kPageSize);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
  return p;
}

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimum-of-7 ns/op for `fn`, auto-calibrated to ~2 ms batches.
double measure_ns(const std::function<void()>& fn) {
  // Calibrate the batch size.
  std::uint64_t iters = 1;
  for (;;) {
    const double t0 = now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double elapsed = now_ns() - t0;
    if (elapsed >= 2e6 || iters > (1ull << 30)) break;
    const double target = 2.5e6;
    const double guess = elapsed > 0 ? target / elapsed : 2.0;
    iters = std::max(iters + 1, static_cast<std::uint64_t>(
                                    static_cast<double>(iters) * guess));
  }
  double best = 1e18;
  for (int rep = 0; rep < 7; ++rep) {
    const double t0 = now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double per_op = (now_ns() - t0) / static_cast<double>(iters);
    if (per_op < best) best = per_op;
  }
  return best;
}

struct BenchCase {
  const char* name;
  double before_ns;  ///< seed build, reference machine (see file header)
  double bytes;      ///< per-op payload for GiB/s (0 = not meaningful)
  std::function<void()> fn;
  std::function<void()> setup;     ///< optional, run before measuring
  std::function<void()> teardown;  ///< optional, run after measuring
};

/// One fig9-style replay (KDD over the Fin1 preset, open loop through the
/// event simulator). With `telemetry` a full TelemetrySession is live: span
/// tracing on, metrics registry recording, wear buckets closing on the sim
/// observer — exactly the --telemetry posture of bench/fig9_trace_replay.
/// Returns wall milliseconds; finish() is never called so nothing hits disk.
double replay_once(const Trace& trace, bool telemetry) {
  PolicyConfig cfg;
  cfg.ssd_pages = 4096;
  cfg.delta_ratio_mean = 0.25;
  const RaidGeometry geo = paper_geometry(compute_stats(trace).max_page);
  const double t0 = now_ns();
  std::unique_ptr<TelemetrySession> session;
  if (telemetry) {
    TelemetrySession::Options opts;
    opts.ops_per_bucket = std::max<std::uint64_t>(1, trace.records.size() / 32);
    session = std::make_unique<TelemetrySession>(opts);
  }
  KddCache kdd(cfg, geo);
  if (session) {
    session->attach_policy(&kdd);
    session->attach_kdd(&kdd);
  }
  EventSimulator sim(paper_sim_config(geo.num_disks), &kdd);
  if (session) {
    sim.set_request_observer([&](SimTime now, SimTime latency_us) {
      session->on_request(now, latency_us);
    });
  }
  (void)sim.run_open_loop(trace);
  return (now_ns() - t0) / 1e6;
}

/// Paired interleaved measurement for the off/on comparison. Each round runs
/// off then on back to back, so both sit in the same drift phase of a shared
/// machine and their ratio is drift-free; the median of the per-round ratios
/// then discards the rounds a scheduler hiccup distorted. (Two sequential
/// min-of-N blocks were tried first and still produced 5-10% swings: a
/// sustained background load during one block biases that side's minimum.)
struct ReplayPair {
  double off_ms = 1e18;     ///< fastest telemetry-off round (display)
  double on_ms = 1e18;      ///< fastest telemetry-on round (display)
  double overhead = 0.0;    ///< median of per-round on/off - 1
};
ReplayPair measure_replay_pair(const Trace& trace, int rounds) {
  ReplayPair r;
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    const double off = replay_once(trace, false);
    const double on = replay_once(trace, true);
    r.off_ms = std::min(r.off_ms, off);
    r.on_ms = std::min(r.on_ms, on);
    ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  const std::size_t n = ratios.size();
  const double median = n % 2 == 1 ? ratios[n / 2]
                                   : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
  r.overhead = median - 1.0;
  return r;
}

/// Cleaner-pool end-to-end measurement: a real-mode KDD replay over the
/// ConcurrentCache facade with 4 submitter threads, once with the serial
/// idle cleaner (pool = 0) and once with a 4-worker cleaner pool. Both runs
/// replay the identical trace (run_concurrent_trace partitions requests by
/// parity group, so the final state is thread-count-independent). Min-of-3
/// interleaved rounds; the speedup only gates on machines with >= 4
/// hardware threads — on smaller hosts the workers just time-slice one core
/// and the number is recorded for the report without gating.
struct PoolReplay {
  double off_ms = 1e18;  ///< serial idle cleaner
  double on_ms = 1e18;   ///< 4-worker cleaner pool
  double speedup = 0.0;
  bool gates = false;
  unsigned hw_threads = 0;
};
PoolReplay measure_pool_replay() {
  SyntheticTraceConfig tcfg = fin1_config(0.02);
  tcfg.seed = 11;
  const Trace trace = generate_synthetic_trace(tcfg);
  const RaidGeometry geo = paper_geometry(tcfg.unique_total());
  const std::uint64_t array_pages = geo.data_pages();
  const auto run_ms = [&](std::uint32_t pool_threads) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 4096;
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = scfg.logical_pages;
    KddCache kdd(cfg, &array, &ssd);
    ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2),
                          pool_threads);
    const double t0 = now_ns();
    (void)run_concurrent_trace(cache, array.layout(), trace, array_pages,
                               /*threads=*/4, /*seed=*/7);
    return (now_ns() - t0) / 1e6;
  };
  PoolReplay r;
  (void)run_ms(0);  // warm caches
  for (int i = 0; i < 3; ++i) {
    r.off_ms = std::min(r.off_ms, run_ms(0));
    r.on_ms = std::min(r.on_ms, run_ms(4));
  }
  r.speedup = r.off_ms / r.on_ms;
  r.hw_threads = std::thread::hardware_concurrency();
  r.gates = r.hw_threads >= 4;
  return r;
}

/// Segment-staging commit gate: one seeded write-heavy prototype replay,
/// once with per-page cache writes and once with log-structured segment
/// staging. Both runs see the identical request stream, so the committed
/// page count matches exactly; staging must collapse those commits into
/// >= 4x fewer SSD write commands while the post-flush read-back digest
/// stays byte-identical (staging batches device commands — it must never
/// change bytes).
struct SegmentCommitRun {
  std::uint64_t write_ops = 0;        ///< host write commands to the cache SSD
  std::uint64_t pages_committed = 0;  ///< cache page commits driving them
  std::uint64_t seq_ops = 0;          ///< SsdModel sequential (vectored) commands
  std::uint64_t digest = 0;           ///< FNV-1a over the full read-back image
  double ms = 0.0;
};
SegmentCommitRun run_segment_commit(bool staged) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 1024;
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = 2048;
  SsdModel ssd(scfg);
  PolicyConfig cfg;
  cfg.ssd_pages = scfg.logical_pages;
  cfg.segment_staging = staged;
  KddCache kdd(cfg, &array, &ssd);
  const ContentGenerator gen(77);
  Rng rng(78);
  const Lba span = 1500;
  std::unordered_map<Lba, Page> model;
  Page buf(kPageSize);
  const double t0 = now_ns();
  for (int i = 0; i < 12000; ++i) {
    const Lba lba = rng.next_below(span);
    if (rng.next_bool(0.7)) {
      auto it = model.find(lba);
      Page data = it == model.end() ? gen.base_page(lba)
                                    : gen.mutate(it->second, 0.25, rng);
      if (kdd.write(lba, data, nullptr) != IoStatus::kOk) std::abort();
      model[lba] = std::move(data);
    } else {
      if (kdd.read(lba, buf, nullptr) != IoStatus::kOk) std::abort();
    }
  }
  kdd.flush(nullptr);
  SegmentCommitRun r;
  r.ms = (now_ns() - t0) / 1e6;
  std::uint64_t h = SegmentStager::kFnvSeed;
  for (Lba lba = 0; lba < span; ++lba) {
    if (kdd.read(lba, buf, nullptr) != IoStatus::kOk) std::abort();
    h = SegmentStager::fnv1a(h, buf);
  }
  r.digest = h;
  r.write_ops = kdd.cache_ssd().write_ops();
  r.pages_committed = kdd.cache_ssd().pages_committed();
  r.seq_ops = ssd.wear().host_write_ops_seq;
  return r;
}

/// Elastic-capacity gate: the same seeded mixed read/write replay, once with
/// the static DAZ/DEZ layout and once with the elastic extent allocator +
/// online GC + adaptive boundary. Two traces:
///   * compressible (small mutations -> tiny packed deltas): elastic packing
///     must keep >= 15% more resident data pages (kClean + kOld) in the
///     cache mid-run, since each delta commit no longer burns a whole DEZ
///     page,
///   * incompressible (near-full-page mutations -> deltas that barely
///     compress): GC relocation traffic must cost <= 5% extra cache-SSD page
///     writes over the static layout.
/// Both pairs must read back byte-identical images: placement policy and GC
/// move bytes around, they must never change them.
struct ElasticCapacityRun {
  double resident_pages = 0.0;  ///< mean kClean+kOld data pages mid-run
  double dez_pages = 0.0;       ///< mean DEZ footprint mid-run
  std::uint64_t ssd_pages_written = 0;  ///< cache-SSD page writes (incl. GC)
  std::uint64_t gc_passes = 0;
  std::uint64_t digest = 0;  ///< FNV-1a over the full read-back image
  double ms = 0.0;
};
ElasticCapacityRun run_elastic_capacity(bool elastic, double mutate_ratio,
                                        std::uint64_t cache_pages, Lba span) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 1024;
  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = cache_pages;
  SsdModel ssd(scfg);
  PolicyConfig cfg;
  cfg.ssd_pages = scfg.logical_pages;
  cfg.ways = 8;
  // Delta-heavy regime: a cache well under the working set, with deltas
  // allowed to accumulate instead of destaging at the default 30% watermark,
  // so the DEZ footprint (the thing elastic packing shrinks) actually bears
  // on how many data pages stay resident.
  cfg.clean_high_watermark = 0.85;
  cfg.clean_low_watermark = 0.60;
  cfg.dez_elastic = elastic;
  cfg.dez_gc = elastic;
  // Reclaim eagerly: the capacity case trades relocation writes (cheap, the
  // deltas are small) for resident data pages; the WA case is gated
  // separately on the incompressible trace.
  cfg.dez_gc_dead_ratio = 0.30;
  cfg.adaptive_boundary = elastic;
  KddCache kdd(cfg, &array, &ssd);
  const ContentGenerator gen(87);
  Rng rng(88);
  std::unordered_map<Lba, Page> model;
  Page buf(kPageSize);
  double resident_sum = 0.0;
  double dez_sum = 0.0;
  std::uint64_t resident_samples = 0;
  const double t0 = now_ns();
  for (int i = 0; i < 12000; ++i) {
    const Lba lba = rng.next_below(span);
    if (rng.next_bool(0.7)) {
      auto it = model.find(lba);
      Page data = it == model.end() ? gen.base_page(lba)
                                    : gen.mutate(it->second, mutate_ratio, rng);
      if (kdd.write(lba, data, nullptr) != IoStatus::kOk) std::abort();
      model[lba] = std::move(data);
    } else {
      if (kdd.read(lba, buf, nullptr) != IoStatus::kOk) std::abort();
    }
    if (i >= 4000 && i % 100 == 0) {
      resident_sum += static_cast<double>(
          kdd.sets().count_state(PageState::kClean) +
          kdd.sets().count_state(PageState::kOld));
      dez_sum += static_cast<double>(kdd.dez_pages());
      ++resident_samples;
    }
  }
  kdd.flush(nullptr);
  ElasticCapacityRun r;
  r.ms = (now_ns() - t0) / 1e6;
  if (resident_samples > 0) {
    r.resident_pages = resident_sum / static_cast<double>(resident_samples);
    r.dez_pages = dez_sum / static_cast<double>(resident_samples);
  }
  // Capture write traffic before the digest read-back: those reads re-admit
  // evicted pages and the admission writes would blur the GC-cost comparison.
  r.ssd_pages_written = ssd.wear().host_pages_rand + ssd.wear().host_pages_seq;
  r.gc_passes = kdd.gc_passes();
  std::uint64_t h = SegmentStager::kFnvSeed;
  for (Lba lba = 0; lba < span; ++lba) {
    if (kdd.read(lba, buf, nullptr) != IoStatus::kOk) std::abort();
    h = SegmentStager::fnv1a(h, buf);
  }
  r.digest = h;
  return r;
}

/// Thread-scaling matrix for BENCH_micro.json: replay throughput at 1/2/4/8
/// submitter threads. Sync rows (qd = 0) run the blocking front door, each
/// with the serial idle cleaner (pool = 0) and with a cleaner pool sized to
/// the submitter count. Async rows run the submission-queue engine (workers
/// = submitters) at queue depth 64 and 256. The 8-thread/QD-256 async row
/// gates against the 1-thread/QD-256 row on hosts with >= 8 hardware
/// threads (elsewhere it is recorded like pool_replay); the rest of the
/// matrix is a trajectory record.
struct ScalePoint {
  unsigned threads;
  std::uint32_t pool;
  unsigned qd;  ///< 0 = sync call-and-block path
  double kops;
};
std::vector<ScalePoint> measure_concurrent_scaling() {
  SyntheticTraceConfig tcfg = fin1_config(0.01);
  tcfg.seed = 11;
  const Trace trace = generate_synthetic_trace(tcfg);
  const RaidGeometry geo = paper_geometry(tcfg.unique_total());
  const std::uint64_t array_pages = geo.data_pages();
  std::vector<ScalePoint> out;
  const auto make_cache = [&](std::uint32_t pool, auto&& body) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 4096;
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = scfg.logical_pages;
    KddCache kdd(cfg, &array, &ssd);
    ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(2),
                          pool);
    body(cache, array);
  };
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const std::uint32_t pool : {0u, threads}) {
      make_cache(pool, [&](ConcurrentCache& cache, RaidArray& array) {
        const double t0 = now_ns();
        const ConcurrentReplayResult r = run_concurrent_trace(
            cache, array.layout(), trace, array_pages, threads, /*seed=*/7);
        const double ms = (now_ns() - t0) / 1e6;
        out.push_back({threads, pool, 0u, static_cast<double>(r.ops) / ms});
      });
    }
  }
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const unsigned qd : {64u, 256u}) {
      make_cache(0, [&](ConcurrentCache& cache, RaidArray& array) {
        AsyncEngineOptions aopts;
        aopts.workers = threads;
        aopts.shard_queue_depth = qd;
        aopts.high_watermark = 4ull * threads * qd;
        aopts.low_watermark = 2ull * threads * qd;
        cache.start_async(aopts);
        const double t0 = now_ns();
        const ConcurrentReplayResult r = run_concurrent_trace_async(
            cache, array.layout(), trace, array_pages, threads, /*seed=*/7, qd);
        const double ms = (now_ns() - t0) / 1e6;
        out.push_back({threads, 0u, qd, static_cast<double>(r.ops) / ms});
      });
    }
  }
  return out;
}

// Seed-build baselines. Measured on the reference machine (x86-64, AVX2)
// from commit "partial-fault injection subsystem" with the workloads below,
// via the same minimum-of-7 methodology, before any kernel work landed.
constexpr double kBeforeXor4k = 108.0;
constexpr double kBeforeXorPages3 = 0.0;  // new kernel: no seed equivalent
constexpr double kBeforeAllZero4k = 1375.0;
constexpr double kBeforeGfMulAcc4k = 2881.0;
constexpr double kBeforeLzCompress25 = 19205.0;
constexpr double kBeforeLzDecompress = 5612.0;
constexpr double kBeforeMakeDelta = 21459.0;
constexpr double kBeforeApplyDelta = 5945.0;
constexpr double kBeforeDeltaRoundtrip = 27404.0;  // make + apply

int run(int argc, char** argv) {
  bool check = false;
  std::string json_path = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_gate [--check] [--json PATH]\n");
      return 2;
    }
  }

  // Workloads: identical to bench/micro_primitives.cpp so numbers line up.
  Page xa = random_page(6);
  const Page xb = random_page(7);
  Page x3 = Page(kPageSize);
  const Page za(kPageSize, 0);
  Page ga = random_page(8);
  const Page gb = random_page(9);
  Page ga_ref = ga;

  const ContentGenerator gen(1);
  Rng rng2(2);
  const Page lz_base = gen.base_page(0);
  const Page lz_diff = xor_pages(lz_base, gen.mutate(lz_base, 0.25, rng2));
  std::vector<std::uint8_t> lz_out;
  const auto lz_compressed = lz_compress(lz_diff);
  Page lz_plain(kPageSize);

  Rng rng4(4);
  const Page d_base = gen.base_page(0);
  const Page d_mut = gen.mutate(d_base, 0.25, rng4);
  Delta d_scratch;
  Page d_out(kPageSize);

  std::vector<BenchCase> cases;
  cases.push_back({"xor_into_4k", kBeforeXor4k, kPageSize,
                   [&] { xor_into(xa, xb); }, {}, {}});
  cases.push_back({"xor_pages3_4k", kBeforeXorPages3, kPageSize,
                   [&] { xor_pages3(x3, xa, xb); }, {}, {}});
  cases.push_back({"all_zero_4k", kBeforeAllZero4k, kPageSize, [&] {
                     if (!all_zero(za)) std::abort();
                   }, {}, {}});
  cases.push_back({"gf256_mul_acc_4k", kBeforeGfMulAcc4k, kPageSize,
                   [&] { gf256::mul_acc(ga, 0x37, gb); }, {}, {}});
  cases.push_back({"gf256_mul_acc_ref_4k", kBeforeGfMulAcc4k, kPageSize,
                   [&] { gf256::mul_acc_ref(ga_ref, 0x37, gb); }, {}, {}});
  cases.push_back({"lz_compress_25pct", kBeforeLzCompress25, kPageSize,
                   [&] { lz_compress_into(lz_diff, lz_out); }, {}, {}});
  cases.push_back({"lz_decompress", kBeforeLzDecompress, kPageSize, [&] {
                     if (!lz_decompress_into(lz_compressed, lz_plain))
                       std::abort();
                   }, {}, {}});
  cases.push_back({"make_delta", kBeforeMakeDelta, kPageSize,
                   [&] { make_delta_into(d_base, d_mut, d_scratch); }, {}, {}});
  cases.push_back({"apply_delta", kBeforeApplyDelta, kPageSize, [&] {
                     apply_delta_into(d_base, d_scratch, d_out);
                   }, {}, {}});
  cases.push_back({"delta_roundtrip", kBeforeDeltaRoundtrip, kPageSize, [&] {
                     make_delta_into(d_base, d_mut, d_scratch);
                     apply_delta_into(d_base, d_scratch, d_out);
                   }, {}, {}});
  // Warm the delta scratch so apply_delta measures a valid delta.
  make_delta_into(d_base, d_mut, d_scratch);

  // Observability primitives (new in the telemetry overhaul: no seed
  // baseline). The enabled-span case bounds the ring to keep memory flat;
  // the counter is a registered handle exactly as the hot paths use them.
  obs::Counter obs_counter(&obs::MetricsRegistry::global(),
                           "kdd_perf_gate_probe_total");
  cases.push_back({"obs_counter_inc", 0.0, 0.0, [&] { obs_counter.inc(); }, {}, {}});
  cases.push_back({"obs_span_disabled", 0.0, 0.0,
                   [] { obs::SpanScope s(obs::Stage::kCacheLookup); }, {}, {}});
  // Stage spans only record under an installed (sampled) root, so the
  // enabled case keeps a root context alive across the measurement loop;
  // it therefore measures the full record path (clock read + ring append),
  // not the unsampled skip.
  static std::optional<obs::TraceContextScope> bench_root;
  cases.push_back({"obs_span_enabled", 0.0, 0.0,
                   [] { obs::SpanScope s(obs::Stage::kCacheLookup); },
                   [] {
                     obs::TraceBuffer::global().set_capacity(1u << 12);
                     obs::TraceBuffer::set_sample_period(1);
                     obs::TraceBuffer::set_enabled(true);
                     bench_root.emplace(obs::Stage::kRequest,
                                        /*always_sample=*/true);
                   },
                   [] {
                     bench_root.reset();
                     obs::TraceBuffer::set_enabled(false);
                     obs::TraceBuffer::global().clear();
                   }});

  // Continuous health engine (new in the health-engine work; no seed
  // baseline). health_record is the per-request cost the telemetry-on
  // replay pays: one rolling-ring append plus the amortized rule
  // evaluation (the 1 s sim-time cadence divides a full evaluation across
  // ~10k requests at the 100 us spacing used here). alert_eval forces the
  // full six-rule evaluation pass every call via tick(), bounding the
  // worst case the eval cadence amortizes.
  static std::optional<obs::HealthEngine> bench_health;
  static std::uint64_t bench_health_now;
  const auto health_setup = [] {
    bench_health.emplace();
    bench_health_now = 0;
    // Populate every signal so evaluation walks realistic state.
    for (int i = 0; i < 2000; ++i) {
      bench_health_now += 100;
      bench_health->observe_request(bench_health_now,
                                    i % 7 == 0 ? 30'000 : 4'000);
      if (i % 2 == 0) {
        bench_health->note_cache_hit();
      } else {
        bench_health->note_cache_miss();
      }
    }
    for (std::size_t r = 0; r < 8; ++r) {
      bench_health->observe_region_wear(r, 100.0 + 10.0 * static_cast<double>(r));
    }
  };
  const auto health_teardown = [] { bench_health.reset(); };
  cases.push_back({"health_record", 0.0, 0.0,
                   [] {
                     bench_health_now += 100;
                     bench_health->observe_request(bench_health_now, 4'000);
                   },
                   health_setup, health_teardown});
  cases.push_back({"alert_eval", 0.0, 0.0,
                   [] {
                     bench_health_now += 10;
                     bench_health->tick(bench_health_now);
                   },
                   health_setup, health_teardown});

  // Destage batching (new in the destage-pipeline overhaul; no seed
  // baseline). Both cases fold the identical 16 XOR deltas — 4 parity
  // groups x 4 dirty members — into stale parity on a 5-disk RAID-5:
  //   * serial: the legacy per-page protocol, one update_parity_rmw per
  //     delta (16 parity read/write pairs), exactly the traffic
  //     resolve_and_drop generated per old page before batching;
  //   * batch: one update_parity_rmw_batch pass (4 parity read/write pairs,
  //     one per group, all four deltas folded in between).
  // Parity content accumulates XOR garbage across iterations, which is
  // irrelevant: cost depends only on the page traffic, not the bits.
  RaidGeometry dgeo;
  dgeo.level = RaidLevel::kRaid5;
  dgeo.num_disks = 5;
  dgeo.chunk_pages = 16;
  dgeo.disk_pages = 256;
  RaidArray destage_array(dgeo);
  constexpr std::size_t kDestageGroups = 4;
  constexpr std::size_t kDeltasPerGroup = 4;
  std::vector<Page> destage_diffs;
  destage_diffs.reserve(kDestageGroups * kDeltasPerGroup);
  for (std::size_t i = 0; i < kDestageGroups * kDeltasPerGroup; ++i) {
    destage_diffs.push_back(random_page(100 + i));
  }
  std::vector<std::vector<GroupDelta>> destage_deltas(kDestageGroups);
  std::vector<GroupParityUpdate> destage_updates;
  for (std::size_t g = 0; g < kDestageGroups; ++g) {
    for (std::size_t k = 0; k < kDeltasPerGroup; ++k) {
      destage_deltas[g].push_back({static_cast<std::uint32_t>(k),
                                   &destage_diffs[g * kDeltasPerGroup + k]});
    }
    GroupParityUpdate up;
    up.group = static_cast<GroupId>(g);
    up.deltas = destage_deltas[g];
    destage_updates.push_back(up);
  }
  cases.push_back({"destage_rmw_serial_4g", 0.0,
                   static_cast<double>(kDestageGroups * kDeltasPerGroup) * kPageSize,
                   [&] {
                     for (std::size_t g = 0; g < kDestageGroups; ++g) {
                       for (std::size_t k = 0; k < kDeltasPerGroup; ++k) {
                         if (destage_array.update_parity_rmw(
                                 static_cast<GroupId>(g),
                                 std::span<const GroupDelta>(&destage_deltas[g][k], 1)) !=
                             IoStatus::kOk) {
                           std::abort();
                         }
                       }
                     }
                   }, {}, {}});
  cases.push_back({"destage_batch_4g", 0.0,
                   static_cast<double>(kDestageGroups * kDeltasPerGroup) * kPageSize,
                   [&] {
                     if (destage_array.update_parity_rmw_batch(destage_updates) !=
                         IoStatus::kOk) {
                       std::abort();
                     }
                   }, {}, {}});

  // End-to-end observability overhead on the fig9 replay hot path: the same
  // KDD/Fin1 open-loop replay with the telemetry stack off vs on. The "on"
  // side includes the continuous health engine and armed flight recorder
  // (TelemetrySession defaults), so the 5% bound covers them. A tiny fixed
  // scale keeps the gate fast; the median of 101 paired rounds makes the
  // ratio robust against scheduler noise (see measure_replay_pair). The
  // ~40 ms arms beat fewer, longer rounds at equal total runtime: a
  // scheduler interruption lands inside fewer rounds, and the median sees
  // twice the samples (per-round session setup is ~7 us, so shorter arms
  // do not distort the ratio).
  //
  // Measured first, before the micro benches: those churn the heap and park
  // static bench engines in cache, which inflates the paired replay by about
  // a point of apparent overhead. Clean process state is also how the real
  // consumer (bench/fig9_trace_replay) runs the instrumented replay.
  const Trace gate_trace = generate_preset("Fin1", 0.005);
  (void)replay_once(gate_trace, false);  // warm page/code caches
  (void)replay_once(gate_trace, true);
  const ReplayPair replay = measure_replay_pair(gate_trace, 101);

  std::printf("kernel tier: %s (widest supported: %s)\n\n",
              kern::tier_name(kern::active_tier()),
              kern::tier_name(kern::widest_supported_tier()));
  std::printf("%-22s %12s %12s %9s %9s\n", "benchmark", "before ns", "after ns",
              "speedup", "GiB/s");

  struct Result {
    const char* name;
    double before_ns, after_ns, speedup, gibps;
  };
  std::vector<Result> results;
  for (const BenchCase& c : cases) {
    if (c.setup) c.setup();
    const double after = measure_ns(c.fn);
    if (c.teardown) c.teardown();
    const double speedup = c.before_ns > 0 ? c.before_ns / after : 0.0;
    const double gibps =
        c.bytes > 0 ? c.bytes / after * 1e9 / (1024.0 * 1024.0 * 1024.0) : 0.0;
    results.push_back({c.name, c.before_ns, after, speedup, gibps});
    if (c.before_ns > 0) {
      std::printf("%-22s %12.0f %12.1f %8.2fx %9.2f\n", c.name, c.before_ns,
                  after, speedup, gibps);
    } else {
      std::printf("%-22s %12s %12.1f %9s %9.2f\n", c.name, "-", after, "-",
                  gibps);
    }
  }

  double mul_speedup = 0.0;
  double roundtrip_improvement = 0.0;
  double destage_serial_ns = 0.0;
  double destage_batch_ns = 0.0;
  for (const Result& r : results) {
    if (std::strcmp(r.name, "gf256_mul_acc_4k") == 0) mul_speedup = r.speedup;
    if (std::strcmp(r.name, "delta_roundtrip") == 0) {
      roundtrip_improvement = 1.0 - r.after_ns / r.before_ns;
    }
    if (std::strcmp(r.name, "destage_rmw_serial_4g") == 0) {
      destage_serial_ns = r.after_ns;
    }
    if (std::strcmp(r.name, "destage_batch_4g") == 0) {
      destage_batch_ns = r.after_ns;
    }
  }
  const double destage_speedup =
      destage_batch_ns > 0 ? destage_serial_ns / destage_batch_ns : 0.0;

  const double replay_off_ms = replay.off_ms;
  const double replay_on_ms = replay.on_ms;
  const double obs_overhead = replay.overhead;
  const bool telemetry_gates = std::thread::hardware_concurrency() >= 2;
  std::printf("\nfig9-style replay: telemetry off %.1f ms, on %.1f ms, "
              "median per-round overhead %.1f%% (%s)\n",
              replay_off_ms, replay_on_ms, obs_overhead * 100.0,
              telemetry_gates ? "gate active: need <= 5.0%"
                              : "recorded, not gated: single core");

  // Segment-staging commit efficiency: identical write stream, off vs on.
  const SegmentCommitRun seg_off = run_segment_commit(false);
  const SegmentCommitRun seg_on = run_segment_commit(true);
  const double seg_reduction =
      seg_on.write_ops > 0
          ? static_cast<double>(seg_off.write_ops) / static_cast<double>(seg_on.write_ops)
          : 0.0;
  const bool seg_digests_match =
      seg_off.digest == seg_on.digest &&
      seg_off.pages_committed == seg_on.pages_committed;
  std::printf("segment staging: %llu committed pages -> %llu write cmds "
              "unstaged vs %llu staged (%llu sequential), %.1fx fewer cmds, "
              "read-back digests %s (%.1f ms vs %.1f ms)\n",
              static_cast<unsigned long long>(seg_off.pages_committed),
              static_cast<unsigned long long>(seg_off.write_ops),
              static_cast<unsigned long long>(seg_on.write_ops),
              static_cast<unsigned long long>(seg_on.seq_ops),
              seg_reduction, seg_digests_match ? "match" : "DIFFER",
              seg_off.ms, seg_on.ms);

  // Elastic delta zone: capacity on a compressible trace, GC write cost on
  // an incompressible one, byte-identical read-back on both.
  // Capacity claim under delta pressure: a hot 400-page span over a 256-page
  // cache, so most writes are hits minting deltas and overwrites fragment
  // the DEZ. GC-cost claim over a cold 1500-page span at 1024 cache pages,
  // where relocation of barely-compressible deltas is the only extra
  // traffic.
  const ElasticCapacityRun ec_fixed_c =
      run_elastic_capacity(false, 0.30, 256, 320);
  const ElasticCapacityRun ec_elastic_c =
      run_elastic_capacity(true, 0.30, 256, 320);
  const ElasticCapacityRun ec_fixed_i =
      run_elastic_capacity(false, 0.95, 1024, 1500);
  const ElasticCapacityRun ec_elastic_i =
      run_elastic_capacity(true, 0.95, 1024, 1500);
  const double elastic_resident_gain =
      ec_fixed_c.resident_pages > 0
          ? ec_elastic_c.resident_pages / ec_fixed_c.resident_pages
          : 0.0;
  const double elastic_gc_wa =
      ec_fixed_i.ssd_pages_written > 0
          ? static_cast<double>(ec_elastic_i.ssd_pages_written) /
                static_cast<double>(ec_fixed_i.ssd_pages_written)
          : 0.0;
  const bool elastic_digests_match = ec_fixed_c.digest == ec_elastic_c.digest &&
                                     ec_fixed_i.digest == ec_elastic_i.digest;
  std::printf("elastic dez (compressible): resident pages %.1f fixed vs %.1f "
              "elastic (%.2fx, need >= 1.15x), mean dez footprint %.1f vs "
              "%.1f pages, %llu gc passes\n",
              ec_fixed_c.resident_pages, ec_elastic_c.resident_pages,
              elastic_resident_gain, ec_fixed_c.dez_pages,
              ec_elastic_c.dez_pages,
              static_cast<unsigned long long>(ec_elastic_c.gc_passes));
  std::printf("elastic dez (incompressible): ssd page writes %llu fixed vs "
              "%llu elastic (%.3fx, need <= 1.05x), read-back digests %s\n",
              static_cast<unsigned long long>(ec_fixed_i.ssd_pages_written),
              static_cast<unsigned long long>(ec_elastic_i.ssd_pages_written),
              elastic_gc_wa, elastic_digests_match ? "match" : "DIFFER");

  // Cleaner-pool end-to-end replay (4 submitters, pool 0 vs 4 workers).
  const PoolReplay pool = measure_pool_replay();
  std::printf("cleaner-pool replay (4 submitters): serial cleaner %.1f ms, "
              "4-worker pool %.1f ms, speedup %.2fx (%u hw threads, gate %s)\n",
              pool.off_ms, pool.on_ms, pool.speedup, pool.hw_threads,
              pool.gates ? "active: need >= 1.50x" : "skipped: < 4 cores");

  // Thread-scaling matrix: sync rows recorded, the async 8-thread/QD-256
  // row gated against 1-thread/QD-256 on >= 8-hw-thread hosts.
  const std::vector<ScalePoint> scaling = measure_concurrent_scaling();
  std::printf("\nconcurrent replay scaling (threads/pool|qd -> kops/s):");
  for (const ScalePoint& p : scaling) {
    if (p.qd == 0) {
      std::printf(" %u/%u=%.1f", p.threads, p.pool, p.kops);
    } else {
      std::printf(" %uq%u=%.1f", p.threads, p.qd, p.kops);
    }
  }
  std::printf("\n");
  double async_1t_kops = 0.0;
  double async_8t_kops = 0.0;
  for (const ScalePoint& p : scaling) {
    if (p.qd == 256 && p.threads == 1) async_1t_kops = p.kops;
    if (p.qd == 256 && p.threads == 8) async_8t_kops = p.kops;
  }
  const double scaling_speedup =
      async_1t_kops > 0 ? async_8t_kops / async_1t_kops : 0.0;
  const bool scaling_gates = std::thread::hardware_concurrency() >= 8;
  std::printf("async scaling QD=256: 1 thread %.1f kops/s, 8 threads %.1f "
              "kops/s, speedup %.2fx (%s)\n",
              async_1t_kops, async_8t_kops, scaling_speedup,
              scaling_gates ? "gate active: need >= 3.00x"
                            : "recorded, not gated: < 8 cores");

  const bool pass = mul_speedup >= 3.0 && roundtrip_improvement >= 0.30 &&
                    (!telemetry_gates || obs_overhead <= 0.05) &&
                    destage_speedup >= 2.0 &&
                    seg_reduction >= 4.0 && seg_digests_match &&
                    elastic_resident_gain >= 1.15 && elastic_gc_wa <= 1.05 &&
                    elastic_digests_match &&
                    (!pool.gates || pool.speedup >= 1.5) &&
                    (!scaling_gates || scaling_speedup >= 3.0);
  std::printf("\ngate: gf256_mul_acc speedup %.2fx (need >= 3.00x), "
              "delta_roundtrip %.1f%% fewer ns/op (need >= 30.0%%), "
              "telemetry overhead %.1f%% (%s), "
              "destage batch speedup %.2fx (need >= 2.00x), "
              "segment commit %.2fx fewer cmds (need >= 4.00x, digests %s), "
              "elastic resident %.2fx (need >= 1.15x), "
              "elastic gc writes %.3fx (need <= 1.05x, digests %s), "
              "pool replay speedup %.2fx (%s), "
              "concurrent scaling %.2fx (%s) -> %s\n",
              mul_speedup, roundtrip_improvement * 100.0,
              obs_overhead * 100.0,
              telemetry_gates ? "need <= 5.0%" : "recorded, not gated",
              destage_speedup, seg_reduction,
              seg_digests_match ? "match" : "DIFFER",
              elastic_resident_gain, elastic_gc_wa,
              elastic_digests_match ? "match" : "DIFFER", pool.speedup,
              pool.gates ? "need >= 1.50x" : "recorded, not gated",
              scaling_speedup,
              scaling_gates ? "need >= 3.00x" : "recorded, not gated",
              pass ? "PASS" : "FAIL");

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"schema\": \"kdd-bench-micro-v1\",\n"
                 "  \"note\": \"before = pre-overhaul seed build on the "
                 "reference machine; after = this build. ns/op is "
                 "minimum-of-7 over ~2ms batches; regenerate with "
                 "bench/perf_gate --json BENCH_micro.json\",\n");
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 kern::tier_name(kern::active_tier()));
    std::fprintf(f, "  \"benchmarks\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      // No seed baseline (before_ns == 0) means "speedup" is undefined, not
      // zero — emit null so downstream tooling can't mistake it for a 0.00x
      // regression.
      char speedup_field[32];
      if (r.before_ns > 0) {
        std::snprintf(speedup_field, sizeof speedup_field, "%.2f", r.speedup);
      } else {
        std::snprintf(speedup_field, sizeof speedup_field, "null");
      }
      std::fprintf(f,
                   "    \"%s\": {\"before_ns\": %.0f, \"after_ns\": %.1f, "
                   "\"speedup\": %s, \"gib_per_s\": %.2f}%s\n",
                   r.name, r.before_ns, r.after_ns, speedup_field, r.gibps,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"replay_overhead\": {\"telemetry_off_ms\": %.2f, "
                 "\"telemetry_on_ms\": %.2f, \"overhead\": %.4f, "
                 "\"gated\": %s},\n",
                 replay_off_ms, replay_on_ms, obs_overhead,
                 telemetry_gates ? "true" : "false");
    std::fprintf(f,
                 "  \"segment_commit\": {\"pages_committed\": %llu, "
                 "\"unstaged_write_ops\": %llu, \"staged_write_ops\": %llu, "
                 "\"staged_seq_ops\": %llu, \"ops_reduction\": %.2f, "
                 "\"digests_match\": %s, \"unstaged_ms\": %.2f, "
                 "\"staged_ms\": %.2f},\n",
                 static_cast<unsigned long long>(seg_off.pages_committed),
                 static_cast<unsigned long long>(seg_off.write_ops),
                 static_cast<unsigned long long>(seg_on.write_ops),
                 static_cast<unsigned long long>(seg_on.seq_ops),
                 seg_reduction, seg_digests_match ? "true" : "false",
                 seg_off.ms, seg_on.ms);
    std::fprintf(f,
                 "  \"elastic_capacity\": {"
                 "\"compressible\": {\"fixed_resident_pages\": %.1f, "
                 "\"elastic_resident_pages\": %.1f, \"resident_gain\": %.3f, "
                 "\"fixed_mean_dez_pages\": %.1f, "
                 "\"elastic_mean_dez_pages\": %.1f, "
                 "\"gc_passes\": %llu}, "
                 "\"incompressible\": {\"fixed_ssd_pages_written\": %llu, "
                 "\"elastic_ssd_pages_written\": %llu, "
                 "\"write_amplification\": %.4f, \"gc_passes\": %llu}, "
                 "\"digests_match\": %s},\n",
                 ec_fixed_c.resident_pages, ec_elastic_c.resident_pages,
                 elastic_resident_gain, ec_fixed_c.dez_pages,
                 ec_elastic_c.dez_pages,
                 static_cast<unsigned long long>(ec_elastic_c.gc_passes),
                 static_cast<unsigned long long>(ec_fixed_i.ssd_pages_written),
                 static_cast<unsigned long long>(ec_elastic_i.ssd_pages_written),
                 elastic_gc_wa,
                 static_cast<unsigned long long>(ec_elastic_i.gc_passes),
                 elastic_digests_match ? "true" : "false");
    std::fprintf(f,
                 "  \"pool_replay\": {\"serial_cleaner_ms\": %.2f, "
                 "\"pool4_ms\": %.2f, \"speedup\": %.2f, "
                 "\"hardware_threads\": %u, \"gated\": %s},\n",
                 pool.off_ms, pool.on_ms, pool.speedup, pool.hw_threads,
                 pool.gates ? "true" : "false");
    std::fprintf(f, "  \"concurrent_scaling\": [\n");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const ScalePoint& p = scaling[i];
      std::fprintf(f,
                   "    {\"threads\": %u, \"cleaner_pool\": %u, "
                   "\"queue_depth\": %u, \"mode\": \"%s\", "
                   "\"kops_per_s\": %.1f}%s\n",
                   p.threads, p.pool, p.qd, p.qd == 0 ? "sync" : "async",
                   p.kops, i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"gate\": {\"gf256_mul_acc_min_speedup\": 3.0, "
                 "\"delta_roundtrip_min_improvement\": 0.30, "
                 "\"telemetry_max_overhead\": 0.05, "
                 "\"destage_batch_min_speedup\": 2.0, "
                 "\"segment_commit_min_reduction\": 4.0, "
                 "\"elastic_resident_min_gain\": 1.15, "
                 "\"elastic_gc_max_write_amplification\": 1.05, "
                 "\"pool_replay_min_speedup\": 1.5, "
                 "\"concurrent_scaling_min_speedup\": 3.0, "
                 "\"gf256_mul_acc_speedup\": %.2f, "
                 "\"delta_roundtrip_improvement\": %.3f, "
                 "\"telemetry_overhead\": %.4f, "
                 "\"telemetry_gated\": %s, "
                 "\"destage_batch_speedup\": %.2f, "
                 "\"segment_commit_reduction\": %.2f, "
                 "\"segment_digests_match\": %s, "
                 "\"elastic_resident_gain\": %.3f, "
                 "\"elastic_gc_write_amplification\": %.4f, "
                 "\"elastic_digests_match\": %s, "
                 "\"pool_replay_speedup\": %.2f, "
                 "\"pool_replay_gated\": %s, "
                 "\"concurrent_scaling_speedup\": %.2f, "
                 "\"concurrent_scaling_gated\": %s, \"pass\": %s}\n",
                 mul_speedup, roundtrip_improvement, obs_overhead,
                 telemetry_gates ? "true" : "false",
                 destage_speedup, seg_reduction,
                 seg_digests_match ? "true" : "false",
                 elastic_resident_gain, elastic_gc_wa,
                 elastic_digests_match ? "true" : "false",
                 pool.speedup, pool.gates ? "true" : "false",
                 scaling_speedup, scaling_gates ? "true" : "false",
                 pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  return check && !pass ? 1 : 0;
}

}  // namespace
}  // namespace kdd

int main(int argc, char** argv) { return kdd::run(argc, argv); }
