// Perf-regression gate for the data-path primitives.
//
// Re-measures the hot kernels of this build and writes BENCH_micro.json:
// for every kernel a `before_ns` (the pre-overhaul seed build, measured on
// the reference machine with the exact same workloads — see the constants
// below) and an `after_ns` (this build, this machine), plus derived
// throughput. With --check it enforces the overhaul's acceptance
// thresholds:
//   * gf256_mul_acc over a 4 KiB page: >= 3x faster than the seed,
//   * delta make/apply round-trip:     >= 30% fewer ns/op than the seed.
//
// Methodology: each op is auto-calibrated to ~2 ms batches; 7 batches are
// run and the fastest is reported (minimum-of-N is robust against scheduler
// noise, which only ever slows a batch down). Absolute numbers move with the
// host CPU; the *ratios* the gate checks are stable across the x86-64
// machines this was validated on because before/after exercise identical
// memory traffic. Run on the same machine class as the recorded baseline
// for meaningful absolute comparisons (see docs/performance.md).
//
// Usage: perf_gate [--check] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/kernels.hpp"
#include "common/rng.hpp"
#include "compress/content.hpp"
#include "compress/delta.hpp"
#include "compress/lz.hpp"
#include "raid/gf256.hpp"

namespace kdd {
namespace {

Page random_page(std::uint64_t seed) {
  Rng rng(seed);
  Page p(kPageSize);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
  return p;
}

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimum-of-7 ns/op for `fn`, auto-calibrated to ~2 ms batches.
double measure_ns(const std::function<void()>& fn) {
  // Calibrate the batch size.
  std::uint64_t iters = 1;
  for (;;) {
    const double t0 = now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double elapsed = now_ns() - t0;
    if (elapsed >= 2e6 || iters > (1ull << 30)) break;
    const double target = 2.5e6;
    const double guess = elapsed > 0 ? target / elapsed : 2.0;
    iters = std::max(iters + 1, static_cast<std::uint64_t>(
                                    static_cast<double>(iters) * guess));
  }
  double best = 1e18;
  for (int rep = 0; rep < 7; ++rep) {
    const double t0 = now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double per_op = (now_ns() - t0) / static_cast<double>(iters);
    if (per_op < best) best = per_op;
  }
  return best;
}

struct BenchCase {
  const char* name;
  double before_ns;  ///< seed build, reference machine (see file header)
  double bytes;      ///< per-op payload for GiB/s (0 = not meaningful)
  std::function<void()> fn;
};

// Seed-build baselines. Measured on the reference machine (x86-64, AVX2)
// from commit "partial-fault injection subsystem" with the workloads below,
// via the same minimum-of-7 methodology, before any kernel work landed.
constexpr double kBeforeXor4k = 108.0;
constexpr double kBeforeXorPages3 = 0.0;  // new kernel: no seed equivalent
constexpr double kBeforeAllZero4k = 1375.0;
constexpr double kBeforeGfMulAcc4k = 2881.0;
constexpr double kBeforeLzCompress25 = 19205.0;
constexpr double kBeforeLzDecompress = 5612.0;
constexpr double kBeforeMakeDelta = 21459.0;
constexpr double kBeforeApplyDelta = 5945.0;
constexpr double kBeforeDeltaRoundtrip = 27404.0;  // make + apply

int run(int argc, char** argv) {
  bool check = false;
  std::string json_path = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_gate [--check] [--json PATH]\n");
      return 2;
    }
  }

  // Workloads: identical to bench/micro_primitives.cpp so numbers line up.
  Page xa = random_page(6);
  const Page xb = random_page(7);
  Page x3 = Page(kPageSize);
  const Page za(kPageSize, 0);
  Page ga = random_page(8);
  const Page gb = random_page(9);
  Page ga_ref = ga;

  const ContentGenerator gen(1);
  Rng rng2(2);
  const Page lz_base = gen.base_page(0);
  const Page lz_diff = xor_pages(lz_base, gen.mutate(lz_base, 0.25, rng2));
  std::vector<std::uint8_t> lz_out;
  const auto lz_compressed = lz_compress(lz_diff);
  Page lz_plain(kPageSize);

  Rng rng4(4);
  const Page d_base = gen.base_page(0);
  const Page d_mut = gen.mutate(d_base, 0.25, rng4);
  Delta d_scratch;
  Page d_out(kPageSize);

  std::vector<BenchCase> cases;
  cases.push_back({"xor_into_4k", kBeforeXor4k, kPageSize,
                   [&] { xor_into(xa, xb); }});
  cases.push_back({"xor_pages3_4k", kBeforeXorPages3, kPageSize,
                   [&] { xor_pages3(x3, xa, xb); }});
  cases.push_back({"all_zero_4k", kBeforeAllZero4k, kPageSize, [&] {
                     if (!all_zero(za)) std::abort();
                   }});
  cases.push_back({"gf256_mul_acc_4k", kBeforeGfMulAcc4k, kPageSize,
                   [&] { gf256::mul_acc(ga, 0x37, gb); }});
  cases.push_back({"gf256_mul_acc_ref_4k", kBeforeGfMulAcc4k, kPageSize,
                   [&] { gf256::mul_acc_ref(ga_ref, 0x37, gb); }});
  cases.push_back({"lz_compress_25pct", kBeforeLzCompress25, kPageSize,
                   [&] { lz_compress_into(lz_diff, lz_out); }});
  cases.push_back({"lz_decompress", kBeforeLzDecompress, kPageSize, [&] {
                     if (!lz_decompress_into(lz_compressed, lz_plain))
                       std::abort();
                   }});
  cases.push_back({"make_delta", kBeforeMakeDelta, kPageSize,
                   [&] { make_delta_into(d_base, d_mut, d_scratch); }});
  cases.push_back({"apply_delta", kBeforeApplyDelta, kPageSize, [&] {
                     apply_delta_into(d_base, d_scratch, d_out);
                   }});
  cases.push_back({"delta_roundtrip", kBeforeDeltaRoundtrip, kPageSize, [&] {
                     make_delta_into(d_base, d_mut, d_scratch);
                     apply_delta_into(d_base, d_scratch, d_out);
                   }});
  // Warm the delta scratch so apply_delta measures a valid delta.
  make_delta_into(d_base, d_mut, d_scratch);

  std::printf("kernel tier: %s (widest supported: %s)\n\n",
              kern::tier_name(kern::active_tier()),
              kern::tier_name(kern::widest_supported_tier()));
  std::printf("%-22s %12s %12s %9s %9s\n", "benchmark", "before ns", "after ns",
              "speedup", "GiB/s");

  struct Result {
    const char* name;
    double before_ns, after_ns, speedup, gibps;
  };
  std::vector<Result> results;
  for (const BenchCase& c : cases) {
    const double after = measure_ns(c.fn);
    const double speedup = c.before_ns > 0 ? c.before_ns / after : 0.0;
    const double gibps =
        c.bytes > 0 ? c.bytes / after * 1e9 / (1024.0 * 1024.0 * 1024.0) : 0.0;
    results.push_back({c.name, c.before_ns, after, speedup, gibps});
    if (c.before_ns > 0) {
      std::printf("%-22s %12.0f %12.1f %8.2fx %9.2f\n", c.name, c.before_ns,
                  after, speedup, gibps);
    } else {
      std::printf("%-22s %12s %12.1f %9s %9.2f\n", c.name, "-", after, "-",
                  gibps);
    }
  }

  double mul_speedup = 0.0;
  double roundtrip_improvement = 0.0;
  for (const Result& r : results) {
    if (std::strcmp(r.name, "gf256_mul_acc_4k") == 0) mul_speedup = r.speedup;
    if (std::strcmp(r.name, "delta_roundtrip") == 0) {
      roundtrip_improvement = 1.0 - r.after_ns / r.before_ns;
    }
  }
  const bool pass = mul_speedup >= 3.0 && roundtrip_improvement >= 0.30;
  std::printf("\ngate: gf256_mul_acc speedup %.2fx (need >= 3.00x), "
              "delta_roundtrip %.1f%% fewer ns/op (need >= 30.0%%) -> %s\n",
              mul_speedup, roundtrip_improvement * 100.0,
              pass ? "PASS" : "FAIL");

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"schema\": \"kdd-bench-micro-v1\",\n"
                 "  \"note\": \"before = pre-overhaul seed build on the "
                 "reference machine; after = this build. ns/op is "
                 "minimum-of-7 over ~2ms batches; regenerate with "
                 "bench/perf_gate --json BENCH_micro.json\",\n");
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 kern::tier_name(kern::active_tier()));
    std::fprintf(f, "  \"benchmarks\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "    \"%s\": {\"before_ns\": %.0f, \"after_ns\": %.1f, "
                   "\"speedup\": %.2f, \"gib_per_s\": %.2f}%s\n",
                   r.name, r.before_ns, r.after_ns, r.speedup, r.gibps,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"gate\": {\"gf256_mul_acc_min_speedup\": 3.0, "
                 "\"delta_roundtrip_min_improvement\": 0.30, "
                 "\"gf256_mul_acc_speedup\": %.2f, "
                 "\"delta_roundtrip_improvement\": %.3f, \"pass\": %s}\n",
                 mul_speedup, roundtrip_improvement, pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  return check && !pass ? 1 : 0;
}

}  // namespace
}  // namespace kdd

int main(int argc, char** argv) { return kdd::run(argc, argv); }
