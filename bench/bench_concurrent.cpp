// Multi-threaded replay throughput for the ConcurrentCache facade.
//
// Replays a synthetic OLTP-style trace through a real-mode KDD cache behind
// the striped-front-lock facade with 1..8 submitter threads. Each thread
// owns a disjoint subset of parity groups (see run_concurrent_trace), so the
// final logical state is byte-identical at every thread count — the digest
// column proves it. Throughput is bounded by the inner policy mutex (the
// policies themselves are single-threaded by design); the point of the
// striping is contention-free per-group ordering, not parallel policy code.
//
// Each thread count runs twice: once with the single idle cleaner (pool=0)
// and once with a cleaner pool sized to the submitter count (pool=N). The
// pool rows exercise the batched destage pipeline (kdd/destage.hpp): the
// feeder claims dirty parity groups and N workers fold deltas into parity
// with the policy lock *released* during the XOR/decompress stage. Digests
// must agree across every (threads, pool) combination — destage order never
// changes the final array contents.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "blockdev/ssd_model.hpp"
#include "common/table.hpp"
#include "raid/raid_array.hpp"
#include "trace/generators.hpp"

namespace kdd {
namespace {

int run() {
  const double scale = experiment_scale(0.05);
  bench::banner("bench_concurrent", "multi-threaded replay over ConcurrentCache",
                scale);

  SyntheticTraceConfig tcfg = fin1_config(scale);
  tcfg.seed = 11;
  const Trace trace = generate_synthetic_trace(tcfg);
  const RaidGeometry geo = paper_geometry(tcfg.unique_total());
  const std::uint64_t array_pages = geo.data_pages();

  TextTable table({"threads", "pool", "ops", "wall ms", "kops/s", "cleaner",
                   "batches", "digest"});
  std::uint64_t digest1 = 0;
  bool have_digest1 = false;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const bool pool_on : {false, true}) {
      const std::uint32_t pool_threads = pool_on ? threads : 0u;
      RaidArray array(geo);
      SsdConfig scfg;
      scfg.logical_pages = 4096;
      SsdModel ssd(scfg);
      PolicyConfig cfg;
      cfg.ssd_pages = scfg.logical_pages;
      KddCache kdd(cfg, &array, &ssd);
      ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(5),
                            pool_threads);

      const auto t0 = std::chrono::steady_clock::now();
      const ConcurrentReplayResult r =
          run_concurrent_trace(cache, array.layout(), trace, array_pages,
                               threads, /*seed=*/7);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const std::uint64_t digest = replay_readback_digest(cache, array_pages);
      if (!have_digest1) {
        digest1 = digest;
        have_digest1 = true;
      }

      char dg[24];
      std::snprintf(dg, sizeof dg, "%016llx",
                    static_cast<unsigned long long>(digest));
      table.add_row({std::to_string(threads), std::to_string(pool_threads),
                     std::to_string(r.ops), TextTable::num(ms, 1),
                     TextTable::num(static_cast<double>(r.ops) / ms, 1),
                     std::to_string(cache.cleaner_passes()),
                     std::to_string(cache.pool_batches()), dg});
      if (digest != digest1) {
        std::fprintf(stderr, "FATAL: digest diverged at %u threads (pool=%u)\n",
                     threads, pool_threads);
        return 1;
      }
    }
  }
  table.print();

  // Async submit/complete sweep: same trace through the submission-queue
  // engine at increasing queue depth. Engine workers match the submitter
  // count; the digest column must stay equal to the sync rows above — the
  // async path is a scheduling change, never a semantic one.
  TextTable async_table({"threads", "qd", "ops", "wall ms", "kops/s",
                         "stalls", "rejected", "digest"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const unsigned qd : {16u, 64u, 256u}) {
      RaidArray array(geo);
      SsdConfig scfg;
      scfg.logical_pages = 4096;
      SsdModel ssd(scfg);
      PolicyConfig cfg;
      cfg.ssd_pages = scfg.logical_pages;
      KddCache kdd(cfg, &array, &ssd);
      ConcurrentCache cache(&kdd, &array.layout(), std::chrono::milliseconds(5),
                            /*cleaner_pool=*/0);
      AsyncEngineOptions aopts;
      aopts.workers = threads;
      aopts.shard_queue_depth = qd;
      aopts.high_watermark = 4ull * threads * qd;
      aopts.low_watermark = 2ull * threads * qd;
      cache.start_async(aopts);

      const auto t0 = std::chrono::steady_clock::now();
      const ConcurrentReplayResult r = run_concurrent_trace_async(
          cache, array.layout(), trace, array_pages, threads, /*seed=*/7, qd);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const std::uint64_t digest = replay_readback_digest(cache, array_pages);
      const AsyncEngineStats st = cache.async_stats();

      char dg[24];
      std::snprintf(dg, sizeof dg, "%016llx",
                    static_cast<unsigned long long>(digest));
      async_table.add_row({std::to_string(threads), std::to_string(qd),
                           std::to_string(r.ops), TextTable::num(ms, 1),
                           TextTable::num(static_cast<double>(r.ops) / ms, 1),
                           std::to_string(st.stalls),
                           std::to_string(st.rejected), dg});
      if (digest != digest1) {
        std::fprintf(stderr, "FATAL: async digest diverged at %u threads QD=%u\n",
                     threads, qd);
        return 1;
      }
    }
  }
  std::printf("\nAsync submit/complete engine (workers = submitters):\n");
  async_table.print();
  std::printf("\nAll digests identical: multi-threaded replay (sync and async,"
              " with and without\nthe cleaner pool) reproduces the"
              " single-threaded final state.\n");
  return 0;
}

}  // namespace
}  // namespace kdd

int main() { return kdd::run(); }
