// Ablations of the design choices Section III calls out:
//  (a) reclaim scheme 1 (rewrite old+delta as clean) vs scheme 2 (drop) —
//      the paper picks scheme 2 "for the sake of simplicity" because victim
//      pages are commonly cold;
//  (b) staging-buffer size — bigger NVRAM staging packs DEZ pages denser and
//      coalesces more rewrites;
//  (c) KDD's circular metadata log vs LeavO-style direct-mapped table —
//      the log batches 255 entries per flash page regardless of locality;
//  (d) cleaning watermark — how aggressively parity is brought up to date.
#include <cstdio>

#include "bench_util.hpp"
#include "policies/leavo.hpp"
#include "trace/zipf_workload.hpp"

namespace {

using namespace kdd;

Trace workload(double scale) {
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = static_cast<std::uint64_t>(131072.0 * scale * 4);
  wcfg.total_requests = static_cast<std::uint64_t>(400000.0 * scale * 4);
  wcfg.read_rate = 0.3;
  return generate_zipf_trace(wcfg);
}

}  // namespace

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Ablations", "KDD design choices (Section III)", scale);
  const Trace trace = workload(scale);
  const TraceStats tstats = compute_stats(trace);
  const RaidGeometry geo = paper_geometry(tstats.max_page);
  const auto ssd_pages = static_cast<std::uint64_t>(65536.0 * scale * 4);

  auto run_kdd = [&](auto mutate_cfg) {
    PolicyConfig cfg;
    cfg.ssd_pages = ssd_pages;
    cfg.delta_ratio_mean = 0.25;
    mutate_cfg(cfg);
    KddCache kdd(cfg, geo);
    return run_counter_trace(kdd, trace, geo.data_pages());
  };

  {
    std::printf("(a) Reclaim policy after cleaning\n");
    TextTable t({"Scheme", "Hit ratio", "SSD writes (GiB)"});
    const CacheStats drop = run_kdd([](PolicyConfig&) {});
    const CacheStats keep =
        run_kdd([](PolicyConfig& cfg) { cfg.reclaim_as_clean = true; });
    t.add_row({"2: drop old pages (paper)", bench::pct(drop.hit_ratio()),
               TextTable::num(static_cast<double>(drop.write_traffic_bytes()) /
                                  static_cast<double>(kGiB), 2)});
    t.add_row({"1: rewrite as clean", bench::pct(keep.hit_ratio()),
               TextTable::num(static_cast<double>(keep.write_traffic_bytes()) /
                                  static_cast<double>(kGiB), 2)});
    t.print();
    std::printf("\n");
  }
  {
    std::printf("(b) NVRAM staging-buffer size\n");
    TextTable t({"Staging bytes", "Delta-commit pages", "SSD writes (GiB)"});
    for (const std::size_t pages : {1, 2, 4, 8}) {
      const CacheStats s = run_kdd([pages](PolicyConfig& cfg) {
        cfg.staging_buffer_bytes = pages * kPageSize;
      });
      t.add_row({TextTable::num(static_cast<double>(pages * kPageSize), 0),
                 TextTable::num(static_cast<double>(
                     s.ssd_writes[static_cast<int>(SsdWriteKind::kDeltaCommit)]), 0),
                 TextTable::num(static_cast<double>(s.write_traffic_bytes()) /
                                    static_cast<double>(kGiB), 2)});
    }
    t.print();
    std::printf("\n");
  }
  {
    std::printf("(c) Metadata persistence: circular log (KDD) vs direct map (LeavO-style)\n");
    const CacheStats kdd = run_kdd([](PolicyConfig&) {});
    PolicyConfig cfg;
    cfg.ssd_pages = ssd_pages;
    LeavOPolicy leavo(cfg, geo);
    const CacheStats lv = run_counter_trace(leavo, trace, geo.data_pages());
    TextTable t({"Scheme", "Metadata page writes", "Share of traffic"});
    t.add_row({"KDD circular log",
               TextTable::num(static_cast<double>(kdd.metadata_ssd_writes()), 0),
               bench::pct(static_cast<double>(kdd.metadata_ssd_writes()) /
                          static_cast<double>(kdd.total_ssd_writes()))});
    t.add_row({"LeavO direct-mapped table",
               TextTable::num(static_cast<double>(lv.metadata_ssd_writes()), 0),
               bench::pct(static_cast<double>(lv.metadata_ssd_writes()) /
                          static_cast<double>(lv.total_ssd_writes()))});
    t.print();
    std::printf("\n");
  }
  {
    std::printf("(d) Cleaning high watermark (old+delta share of cache)\n");
    TextTable t({"High watermark", "Cleanings", "Hit ratio", "SSD writes (GiB)",
                 "Stale for (reqs, mean/p99)"});
    for (const double wm : {0.10, 0.30, 0.60}) {
      PolicyConfig cfg;
      cfg.ssd_pages = ssd_pages;
      cfg.delta_ratio_mean = 0.25;
      cfg.clean_high_watermark = wm;
      cfg.clean_low_watermark = wm / 2;
      KddCache kdd(cfg, geo);
      const CacheStats s = run_counter_trace(kdd, trace, geo.data_pages());
      const LatencyHistogram& exposure = kdd.staleness_exposure();
      t.add_row({bench::pct(wm), TextTable::num(static_cast<double>(s.cleanings), 0),
                 bench::pct(s.hit_ratio()),
                 TextTable::num(static_cast<double>(s.write_traffic_bytes()) /
                                    static_cast<double>(kGiB), 2),
                 TextTable::num(exposure.mean_us(), 0) + " / " +
                     std::to_string(exposure.percentile_us(0.99))});
    }
    t.print();
    std::printf("(staleness exposure = requests between a stripe's parity going "
                "stale and its repair —\n the reliability window the watermark "
                "trades against cleaning cost)\n");
  }
  return 0;
}
