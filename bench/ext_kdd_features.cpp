// Extension bench: KDD feature variations beyond the paper's evaluation —
//  * RAID-6 (the paper's design supports it; double parity makes small
//    writes even more expensive, so deferring them pays off even more),
//  * LARC-style selective admission (Section V-C: "complementary to KDD"),
//  * SSD GC policy / wear-leveling interaction with KDD's traffic shape.
#include <cstdio>
#include <unordered_map>

#include "bench_util.hpp"
#include "blockdev/ssd_model.hpp"
#include "compress/content.hpp"
#include "policies/dedup_cache.hpp"
#include "sim/event_sim.hpp"
#include "trace/zipf_workload.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Extension", "KDD on RAID-6, selective admission, FTL policies",
                scale);

  const auto cache_pages = static_cast<std::uint64_t>(131072.0 * scale);
  const auto wss_pages = static_cast<std::uint64_t>(262144.0 * scale);
  const auto total_requests = static_cast<std::uint64_t>(524288.0 * scale);

  {
    std::printf("(a) RAID-5 vs RAID-6 under KDD (closed-loop Zipf, 25%% reads)\n");
    TextTable t({"Level", "Policy", "Mean resp (ms)", "Disk writes/request"});
    for (const RaidLevel level : {RaidLevel::kRaid5, RaidLevel::kRaid6}) {
      RaidGeometry geo = paper_geometry(wss_pages * 2);
      geo.level = level;
      if (level == RaidLevel::kRaid6) geo.num_disks = 6;  // same data disks
      for (const PolicyKind kind : {PolicyKind::kWT, PolicyKind::kKdd}) {
        PolicyConfig cfg;
        cfg.ssd_pages = cache_pages;
        cfg.delta_ratio_mean = 0.25;
        auto policy = make_policy(kind, cfg, geo);
        EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
        ZipfWorkloadConfig wcfg;
        wcfg.working_set_pages = wss_pages;
        wcfg.total_requests = total_requests;
        wcfg.read_rate = 0.25;
        wcfg.array_pages = geo.data_pages();
        ZipfWorkload workload(wcfg);
        const SimResult r = sim.run_closed_loop(workload, 16);
        const CacheStats s = policy->stats();
        t.add_row({level == RaidLevel::kRaid5 ? "RAID-5" : "RAID-6",
                   policy_kind_name(kind), TextTable::num(r.mean_response_ms(), 2),
                   TextTable::num(static_cast<double>(s.disk_writes) /
                                      static_cast<double>(total_requests), 2)});
      }
    }
    t.print();
    std::printf("(RAID-6 doubles the parity cost of small writes; KDD's deferral "
                "matters even more)\n\n");
  }

  {
    std::printf("(b) LARC-style selective admission on a scan-polluted workload\n");
    const RaidGeometry geo = paper_geometry(wss_pages * 4);
    TextTable t({"Admission", "Hit ratio", "SSD writes (GiB)", "Read fills"});
    for (const bool larc : {false, true}) {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages / 2;
      cfg.delta_ratio_mean = 0.25;
      cfg.selective_admission = larc;
      KddCache kdd(cfg, geo);
      // Zipf core + one-touch scan pollution.
      ZipfWorkloadConfig wcfg;
      wcfg.working_set_pages = wss_pages;
      wcfg.total_requests = total_requests / 2;
      wcfg.read_rate = 0.5;
      wcfg.array_pages = geo.data_pages();
      Trace trace = generate_zipf_trace(wcfg);
      Rng rng(9);
      for (std::uint64_t i = 0; i < total_requests / 4; ++i) {
        trace.records.push_back(
            {0, wss_pages + i % (geo.data_pages() - wss_pages), 1, true});
      }
      const CacheStats s = run_counter_trace(kdd, trace, geo.data_pages());
      t.add_row({larc ? "LARC (2nd touch)" : "always",
                 bench::pct(s.hit_ratio()),
                 TextTable::num(static_cast<double>(s.write_traffic_bytes()) /
                                    static_cast<double>(kGiB), 2),
                 std::to_string(s.ssd_writes[static_cast<int>(SsdWriteKind::kReadFill)])});
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("(c) FTL GC policy under KDD-shaped traffic (real flash model)\n");
    TextTable t({"GC policy", "Wear leveling", "WA", "Erase spread (max-mean)"});
    for (const GcPolicy policy : {GcPolicy::kGreedy, GcPolicy::kCostBenefit}) {
      for (const std::uint32_t wl : {0u, 8u}) {
        SsdConfig scfg;
        scfg.logical_pages = 4096;
        scfg.pages_per_block = 32;
        scfg.gc_policy = policy;
        scfg.wear_level_spread = wl;
        SsdModel ssd(scfg);
        Rng rng(11);
        Page page = make_page();
        // KDD-like mix: 70 % small hot region (DEZ churn), 30 % uniform.
        for (Lba lba = 0; lba < ssd.num_pages(); ++lba) ssd.write(lba, page);
        for (int i = 0; i < 120000; ++i) {
          const Lba lba = rng.next_bool(0.7) ? rng.next_below(ssd.num_pages() / 8)
                                             : rng.next_below(ssd.num_pages());
          ssd.write(lba, page);
        }
        const SsdWearStats wear = ssd.wear();
        t.add_row({policy == GcPolicy::kGreedy ? "greedy" : "cost-benefit",
                   wl ? "on" : "off", TextTable::num(wear.write_amplification(), 2),
                   TextTable::num(static_cast<double>(wear.max_erase_count) -
                                      wear.mean_erase_count, 1)});
      }
    }
    t.print();
    std::printf("\n");
  }

  {
    std::printf("(d) Content dedup (CacheDedup-style) vs delta compression (KDD)\n");
    // Real-content workload with BOTH kinds of content locality: 30%% of
    // writes duplicate an existing page (spatial), the rest mutate the
    // previous version by ~25%% (temporal).
    RaidGeometry geo;
    geo.level = RaidLevel::kRaid5;
    geo.num_disks = 5;
    geo.chunk_pages = 16;
    geo.disk_pages = 4096;
    const std::uint64_t ssd_cap = 1024;
    const int kOps = 30000;

    TextTable t({"Policy", "SSD writes", "Notes"});
    for (const char* which : {"WT", "WT+dedup", "KDD"}) {
      RaidArray array(geo);
      SsdConfig scfg;
      scfg.logical_pages = ssd_cap;
      SsdModel ssd(scfg);
      PolicyConfig cfg;
      cfg.ssd_pages = ssd_cap;
      std::unique_ptr<CachePolicy> policy;
      DedupCachePolicy* dedup = nullptr;
      if (std::string(which) == "WT") {
        policy = make_policy(PolicyKind::kWT, cfg, &array, &ssd);
      } else if (std::string(which) == "KDD") {
        policy = make_policy(PolicyKind::kKdd, cfg, &array, &ssd);
      } else {
        auto d = std::make_unique<DedupCachePolicy>(cfg, &array, &ssd);
        dedup = d.get();
        policy = std::move(d);
      }
      const ContentGenerator gen(3);
      Rng rng(4);
      std::unordered_map<Lba, Page> current;
      Page buf = make_page();
      for (int i = 0; i < kOps; ++i) {
        const Lba lba = rng.next_below(2048);
        if (rng.next_bool(0.3)) {
          policy->read(lba, buf, nullptr);
          continue;
        }
        Page data;
        if (rng.next_bool(0.3)) {
          data = gen.base_page(rng.next_below(64));  // duplicate pool
        } else {
          auto it = current.find(lba);
          data = it == current.end() ? gen.base_page(1000 + lba)
                                     : gen.mutate(it->second, 0.25, rng);
        }
        policy->write(lba, data, nullptr);
        current[lba] = std::move(data);
      }
      policy->flush(nullptr);
      std::string notes;
      if (dedup) {
        notes = std::to_string(dedup->dedup_hits()) + " dedup hits";
      }
      t.add_row({which, std::to_string(policy->stats().total_ssd_writes()),
                 notes});
    }
    t.print();
    std::printf("(dedup removes identical pages, KDD shrinks modified ones — "
                "orthogonal savings)\n");
  }
  return 0;
}
