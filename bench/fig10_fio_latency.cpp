// Figure 10: average response time under the FIO-like closed-loop Zipf
// benchmark (Section IV-B3): alpha = 1.0001, 4 KiB blocks, 16 threads,
// 1.6 GiB working set over a 1 GiB cache, read rate swept 0-75 %, medium
// content locality (25 %).
// Paper: KDD cuts mean response time by 42.1-43.3 % vs Nossd and
// 42.8-32.3 % vs WT; WT/WA only beat Nossd at high read rates; KDD ~ LeavO.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/event_sim.hpp"
#include "trace/zipf_workload.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Figure 10", "average response time, closed-loop Zipf (FIO)", scale);

  const auto cache_pages = static_cast<std::uint64_t>(262144.0 * scale);  // 1 GiB
  const auto wss_pages = static_cast<std::uint64_t>(409600.0 * scale);    // 1.6 GiB
  const auto total_requests = static_cast<std::uint64_t>(1048576.0 * scale);  // 4 GiB
  const RaidGeometry geo = paper_geometry(wss_pages * 2);

  TextTable table({"Read rate", "Nossd", "WA", "WT", "LeavO", "KDD", "KDD vs Nossd",
                   "KDD vs WT"});
  for (const double read_rate : {0.0, 0.25, 0.50, 0.75}) {
    std::vector<std::string> row{bench::pct(read_rate)};
    double nossd_ms = 0, wt_ms = 0, kdd_ms = 0;
    for (const PolicyKind kind : {PolicyKind::kNossd, PolicyKind::kWA, PolicyKind::kWT,
                                  PolicyKind::kLeavO, PolicyKind::kKdd}) {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages;
      cfg.delta_ratio_mean = 0.25;
      auto policy = make_policy(kind, cfg, geo);
      EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
      ZipfWorkloadConfig wcfg;
      wcfg.working_set_pages = wss_pages;
      wcfg.total_requests = total_requests;
      wcfg.read_rate = read_rate;
      wcfg.array_pages = geo.data_pages();
      ZipfWorkload workload(wcfg);
      const double ms = sim.run_closed_loop(workload, 16).mean_response_ms();
      if (kind == PolicyKind::kNossd) nossd_ms = ms;
      if (kind == PolicyKind::kWT) wt_ms = ms;
      if (kind == PolicyKind::kKdd) kdd_ms = ms;
      row.push_back(TextTable::num(ms, 2));
    }
    row.push_back("-" + bench::pct(1.0 - kdd_ms / nossd_ms));
    row.push_back("-" + bench::pct(1.0 - kdd_ms / wt_ms));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(mean response time in ms, 16 threads; paper: KDD -42..-43%% vs Nossd)\n");

  // Queue-depth sweep: the closed-loop thread count IS the outstanding
  // request count, so sweeping it to 256 shows how response time degrades as
  // the array saturates (admission control in the prototype engine bounds
  // the same quantity). Fixed 50 % read rate, Nossd vs KDD.
  TextTable qd_table({"QD", "Nossd ms", "KDD ms", "KDD vs Nossd"});
  for (const unsigned qd : {16u, 64u, 256u}) {
    double nossd_ms = 0, kdd_ms = 0;
    for (const PolicyKind kind : {PolicyKind::kNossd, PolicyKind::kKdd}) {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages;
      cfg.delta_ratio_mean = 0.25;
      auto policy = make_policy(kind, cfg, geo);
      EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
      ZipfWorkloadConfig wcfg;
      wcfg.working_set_pages = wss_pages;
      wcfg.total_requests = total_requests;
      wcfg.read_rate = 0.50;
      wcfg.array_pages = geo.data_pages();
      ZipfWorkload workload(wcfg);
      const double ms = sim.run_closed_loop(workload, qd).mean_response_ms();
      if (kind == PolicyKind::kNossd) nossd_ms = ms;
      if (kind == PolicyKind::kKdd) kdd_ms = ms;
    }
    qd_table.add_row({std::to_string(qd), TextTable::num(nossd_ms, 2),
                      TextTable::num(kdd_ms, 2),
                      "-" + bench::pct(1.0 - kdd_ms / nossd_ms)});
  }
  std::printf("\nQueue-depth sweep (50%% reads, closed loop):\n");
  qd_table.print();
  return 0;
}
