// Micro-benchmarks of the primitives on KDD's hot paths: the LZ codec,
// delta generation/application, GF(256) parity arithmetic, RAID-5 RMW, the
// cache index and the samplers.
#include <benchmark/benchmark.h>

#include "cache/sets.hpp"
#include "common/kernels.hpp"
#include "common/page_arena.hpp"
#include "common/rng.hpp"
#include "compress/content.hpp"
#include "compress/delta.hpp"
#include "compress/lz.hpp"
#include "raid/gf256.hpp"
#include "raid/raid_array.hpp"

namespace kdd {
namespace {

Page random_page(std::uint64_t seed) {
  Rng rng(seed);
  Page p(kPageSize);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
  return p;
}

void BM_LzCompressSparseDelta(benchmark::State& state) {
  const ContentGenerator gen(1);
  Rng rng(2);
  const Page base = gen.base_page(0);
  const Page mutated = gen.mutate(base, static_cast<double>(state.range(0)) / 100.0, rng);
  const Page diff = xor_pages(base, mutated);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lz_compress(diff));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_LzCompressSparseDelta)->Arg(12)->Arg(25)->Arg(50);

void BM_LzDecompress(benchmark::State& state) {
  const ContentGenerator gen(1);
  Rng rng(3);
  const Page base = gen.base_page(0);
  const Page diff = xor_pages(base, gen.mutate(base, 0.25, rng));
  const auto compressed = lz_compress(diff);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lz_decompress(compressed, kPageSize, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_LzDecompress);

void BM_MakeDelta(benchmark::State& state) {
  const ContentGenerator gen(1);
  Rng rng(4);
  const Page base = gen.base_page(0);
  const Page mutated = gen.mutate(base, 0.25, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_delta(base, mutated));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_MakeDelta);

void BM_ApplyDelta(benchmark::State& state) {
  const ContentGenerator gen(1);
  Rng rng(5);
  const Page base = gen.base_page(0);
  const Delta d = make_delta(base, gen.mutate(base, 0.25, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_delta(base, d));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_ApplyDelta);

void BM_XorPage(benchmark::State& state) {
  Page a = random_page(6);
  const Page b = random_page(7);
  for (auto _ : state) {
    xor_into(a, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_XorPage);

void BM_Gf256MulAcc(benchmark::State& state) {
  Page a = random_page(8);
  const Page b = random_page(9);
  for (auto _ : state) {
    gf256::mul_acc(a, 0x37, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_Gf256MulAcc);

void BM_XorPages3(benchmark::State& state) {
  const Page a = random_page(20);
  const Page b = random_page(21);
  Page dst(kPageSize);
  for (auto _ : state) {
    xor_pages3(dst, a, b);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_XorPages3);

void BM_AllZero(benchmark::State& state) {
  const Page z(kPageSize, 0);  // worst case: scans the whole page
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_zero(z));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_AllZero);

void BM_Gf256MulAccScalarRef(benchmark::State& state) {
  // The pre-dispatch log/exp loop, kept as the comparison baseline.
  Page a = random_page(8);
  const Page b = random_page(9);
  for (auto _ : state) {
    gf256::mul_acc_ref(a, 0x37, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_Gf256MulAccScalarRef);

void BM_MakeDeltaInto(benchmark::State& state) {
  // The allocation-free variant the write path actually uses.
  const ContentGenerator gen(1);
  Rng rng(4);
  const Page base = gen.base_page(0);
  const Page mutated = gen.mutate(base, 0.25, rng);
  Delta d;
  for (auto _ : state) {
    make_delta_into(base, mutated, d);
    benchmark::DoNotOptimize(d.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_MakeDeltaInto);

void BM_ApplyDeltaInto(benchmark::State& state) {
  const ContentGenerator gen(1);
  Rng rng(5);
  const Page base = gen.base_page(0);
  const Delta d = make_delta(base, gen.mutate(base, 0.25, rng));
  Page out(kPageSize);
  for (auto _ : state) {
    apply_delta_into(base, d, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_ApplyDeltaInto);

void BM_Raid5SmallWrite(benchmark::State& state) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 16;
  geo.disk_pages = 4096;
  RaidArray array(geo);
  const Page data = random_page(10);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        array.write_page(rng.next_below(array.data_pages()), data));
  }
}
BENCHMARK(BM_Raid5SmallWrite);

void BM_Raid6SmallWrite(benchmark::State& state) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid6;
  geo.num_disks = 6;
  geo.chunk_pages = 16;
  geo.disk_pages = 4096;
  RaidArray array(geo);
  const Page data = random_page(12);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        array.write_page(rng.next_below(array.data_pages()), data));
  }
}
BENCHMARK(BM_Raid6SmallWrite);

void BM_CacheSetLookup(benchmark::State& state) {
  CacheSets sets(65536, 16);
  Rng rng(14);
  // Populate half the slots.
  for (std::uint32_t i = 0; i < 32768; ++i) {
    sets.slot(i * 2).lba = i * 2;
    sets.set_state(i * 2, PageState::kClean);
  }
  for (auto _ : state) {
    const auto set = static_cast<std::uint32_t>(rng.next_below(sets.num_sets()));
    benchmark::DoNotOptimize(sets.find_data(set, rng.next_below(65536)));
  }
}
BENCHMARK(BM_CacheSetLookup);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf(409600, 1.0001);
  Rng rng(15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_GaussianRatioSample(benchmark::State& state) {
  const auto sampler = GaussianRatioSampler::for_mean(0.25);
  Rng rng(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_GaussianRatioSample);

}  // namespace
}  // namespace kdd

BENCHMARK_MAIN();
