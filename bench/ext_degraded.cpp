// Extension bench: performance through failures.
//
// The paper's motivation says a worn-out cache "hurts the reliability and
// availability of the storage system" and that user requests "will be
// adversely affected by the re-synchronization of RAID storage". This bench
// quantifies the availability story on the real data plane:
//   healthy            — baseline closed-loop latency,
//   degraded           — one disk down (reads of its pages reconstruct from
//                        the whole stripe),
//   post-SSD-failure   — KDD resynchronised the array and restarted cold.
#include <cstdio>

#include "bench_util.hpp"
#include "blockdev/ssd_model.hpp"
#include "sim/event_sim.hpp"
#include "trace/zipf_workload.hpp"

namespace {

using namespace kdd;

double run_phase(CachePolicy* policy, const RaidGeometry& geo,
                 std::uint64_t requests, double read_rate, std::uint64_t seed) {
  EventSimulator sim(paper_sim_config(geo.num_disks), policy);
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = geo.data_pages() / 2;
  wcfg.total_requests = requests;
  wcfg.read_rate = read_rate;
  wcfg.array_pages = geo.data_pages();
  wcfg.seed = seed;
  ZipfWorkload workload(wcfg);
  return sim.run_closed_loop(workload, 16).mean_response_ms();
}

}  // namespace

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Extension", "availability: degraded mode and failure recovery",
                scale);

  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 16;
  geo.disk_pages = std::max<std::uint64_t>(
      2048, static_cast<std::uint64_t>(16384.0 * scale * 4));
  const auto requests = std::max<std::uint64_t>(
      2000, static_cast<std::uint64_t>(65536.0 * scale * 4));

  RaidArray array(geo);
  SsdConfig scfg;
  scfg.logical_pages = geo.data_pages() / 4;
  SsdModel ssd(scfg);
  PolicyConfig cfg;
  cfg.ssd_pages = scfg.logical_pages;
  KddCache kdd(cfg, &array, &ssd);

  TextTable table({"Phase", "Mean resp (ms)", "Notes"});

  const double healthy = run_phase(&kdd, geo, requests, 0.5, 1);
  table.add_row({"healthy", TextTable::num(healthy, 2), "warm cache"});

  // One disk dies; requests continue in degraded mode. KDD's protocol first
  // flushes stale parity (handle_disk_failure does flush + rebuild; here we
  // measure the degraded window *before* rebuild by failing the disk only).
  kdd.flush();
  array.fail_disk(2);
  const double degraded = run_phase(&kdd, geo, requests / 2, 0.5, 2);
  table.add_row({"degraded (1 disk down)", TextTable::num(degraded, 2),
                 "misses reconstruct from n-1 disks"});
  array.rebuild_disk(2);
  const double rebuilt = run_phase(&kdd, geo, requests / 2, 0.5, 3);
  table.add_row({"after rebuild", TextTable::num(rebuilt, 2), ""});

  // Cache device failure: resync + cold restart.
  const std::uint64_t resynced = kdd.handle_ssd_failure();
  const double cold = run_phase(&kdd, geo, requests / 2, 0.5, 4);
  table.add_row({"after SSD failure", TextTable::num(cold, 2),
                 "resynced " + std::to_string(resynced) + " groups, cache cold"});

  table.print();
  std::printf("\nDegraded-mode misses pay the reconstruct penalty; after the SSD "
              "dies, KDD's resync keeps data intact (RPO = 0) at the cost of a "
              "cold cache.\n");
  return 0;
}
