// Extension bench: alternative answers to the small-write problem that the
// paper discusses but does not evaluate —
//  * write-back caching (excluded in Section IV-A1 for its data-loss risk),
//  * Parity Logging (Section V-A, Stodolsky et al.): a dedicated log disk
//    absorbs parity update images with sequential writes.
// Both are compared against WT and KDD on latency and device traffic.
#include <cstdio>

#include "bench_util.hpp"
#include "policies/nocache.hpp"
#include "raid/parity_log.hpp"
#include "sim/event_sim.hpp"
#include "trace/zipf_workload.hpp"

namespace {

using namespace kdd;

/// Adapter: ParityLogRaid behind the CachePolicy interface (it is not a
/// cache — reads always go to the array — but this lets the shared drivers
/// measure it).
class ParityLogPolicy final : public CachePolicy {
 public:
  explicit ParityLogPolicy(const RaidGeometry& geo, std::uint64_t log_pages)
      : array_(geo), plog_(&array_, log_pages) {}

  std::string name() const override { return "PLog"; }
  IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) override {
    ++stats_.read_misses;
    // The parity-log stack carries real bytes; feed it a scratch buffer when
    // the driver runs address-only.
    if (out.empty()) {
      if (scratch_.empty()) scratch_ = make_page();
      return plog_.read_page(lba, scratch_, plan);
    }
    return plog_.read_page(lba, out, plan);
  }
  IoStatus write(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan) override {
    ++stats_.write_misses;
    // In the timed runs the periodic apply is background work.
    IoPlan* bg = bg_or(plan);
    const double fill = static_cast<double>(plog_.log_used_pages()) /
                        static_cast<double>(plog_.log_capacity_pages());
    if (fill >= 0.9) plog_.apply_log(bg);
    if (data.empty()) {
      if (scratch_.empty()) scratch_ = make_page();
      return plog_.write_page(lba, scratch_, plan);
    }
    return plog_.write_page(lba, data, plan);
  }
  void flush(IoPlan* plan) override { plog_.apply_log(plan); }
  CacheStats stats() const override {
    CacheStats s = stats_;
    s.disk_reads = array_.total_disk_reads();
    s.disk_writes = array_.total_disk_writes() + plog_.log_appends();
    return s;
  }

 private:
  RaidArray array_;  // real array: parity-log needs real old-data reads
  ParityLogRaid plog_;
  CacheStats stats_;
  Page scratch_;
};

}  // namespace

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Extension", "write-back and Parity Logging vs WT/KDD", scale);

  const auto cache_pages = static_cast<std::uint64_t>(131072.0 * scale);
  const auto wss_pages = static_cast<std::uint64_t>(262144.0 * scale);
  const auto total_requests = static_cast<std::uint64_t>(524288.0 * scale);
  const RaidGeometry geo = paper_geometry(wss_pages * 2);

  TextTable table({"Scheme", "Mean resp (ms)", "Disk writes", "SSD writes",
                   "Survives SSD loss?"});
  for (const char* scheme : {"Nossd", "WT", "WB", "KDD", "PLog"}) {
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = wss_pages;
    wcfg.total_requests = total_requests;
    wcfg.read_rate = 0.25;
    wcfg.array_pages = geo.data_pages();

    std::unique_ptr<CachePolicy> policy;
    SimConfig scfg = paper_sim_config(geo.num_disks);
    const char* rpo0 = "yes";
    if (std::string(scheme) == "PLog") {
      // Smaller data plane for the real-data parity-log adapter.
      RaidGeometry small = geo;
      small.disk_pages = std::max<std::uint64_t>(
          (wss_pages / small.data_disks() / small.chunk_pages + 2) *
              small.chunk_pages,
          small.chunk_pages * 4);
      policy = std::make_unique<ParityLogPolicy>(
          small, std::max<std::uint64_t>(4096, wss_pages / 2));
      scfg.num_disks = geo.num_disks + 1;  // the dedicated log disk
      wcfg.array_pages = small.data_pages();
      rpo0 = "n/a (no SSD)";
    } else {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages;
      cfg.delta_ratio_mean = 0.25;
      PolicyKind kind = PolicyKind::kNossd;
      if (std::string(scheme) == "WT") kind = PolicyKind::kWT;
      if (std::string(scheme) == "WB") {
        kind = PolicyKind::kWB;
        rpo0 = "NO (dirty pages lost)";
      }
      if (std::string(scheme) == "KDD") kind = PolicyKind::kKdd;
      policy = make_policy(kind, cfg, geo);
    }
    EventSimulator sim(scfg, policy.get());
    ZipfWorkload workload(wcfg);
    const SimResult r = sim.run_closed_loop(workload, 16);
    const CacheStats s = policy->stats();
    table.add_row({scheme, TextTable::num(r.mean_response_ms(), 2),
                   std::to_string(s.disk_writes),
                   std::to_string(s.total_ssd_writes()), rpo0});
  }
  table.print();
  std::printf(
      "\nWB is fastest but loses acked data on SSD failure; Parity Logging needs\n"
      "no SSD at all but keeps every read on disk; KDD gets cache-read latency,\n"
      "deferred parity AND RPO = 0.\n");
  return 0;
}
