// Figure 6: SSD write traffic under the write-dominant traces (Fin1, Hm0).
// Expected shape (paper): WA least, then KDD (improving with locality), then
// WT, LeavO most. KDD-50/25/12 cut up to 37.6/57.6/67.6 % vs WT on Fin1 and
// 45.7/67.7/78.6 % on Hm0; vs LeavO up to 72.6 % / 80.4 % (5.1x lifetime).
#include "figure_sweep.hpp"

int main() {
  kdd::bench::run_cache_size_sweep(
      {"Figure 6", "SSD write traffic (write-dominant traces)", {"Fin1", "Hm0"}, true});
  return 0;
}
