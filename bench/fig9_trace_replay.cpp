// Figure 9: average response time of Nossd, WA, WT, LeavO and KDD under
// open-loop replay of the four traces (Section IV-B2).
//
// The traces are replayed at their native arrival rate through the
// discrete-event model of the paper's testbed (5-disk RAID-5, 64 KiB chunks,
// 7,200 RPM disks with caches off, one SATA SSD cache, 1 GiB usable).
// Paper: KDD cuts mean response time vs Nossd by 41.7/61.2/28.0/30.1 % on
// Fin1/Fin2/Hm0/Web0; WA/WT only help on the read-heavy Fin2; KDD ~ LeavO.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "harness/telemetry.hpp"
#include "obs/export.hpp"
#include "obs/serve.hpp"
#include "sim/event_sim.hpp"

namespace {

// --telemetry[=DIR]: after the figure table, re-run the KDD/Fin1 replay with
// the full observability stack on (spans, metrics, wear series, health
// engine, flight recorder) and drop the machine-readable artifacts under DIR
// (default "telemetry-fig9"). The run also exercises the live serving
// surface: the in-process HealthHandler snapshots /metrics and /health into
// scrape_metrics.prom / scrape_health.json, and a ScrapeServer on an
// ephemeral loopback port is self-fetched with the http_get client — the
// curl-free end-to-end proof CI's obs-smoke job schema-validates.
bool run_telemetry_replay(const char* out_dir, double scale,
                          std::uint64_t cache_pages) {
  using namespace kdd;
  Trace trace = generate_preset("Fin1", scale);
  rescale_duration(trace, static_cast<SimTime>(
                              static_cast<double>(trace.duration_us()) * scale));
  PolicyConfig cfg;
  cfg.ssd_pages = cache_pages;
  cfg.delta_ratio_mean = 0.25;
  // The instrumented replay runs with segment staging on so the
  // kdd_segment_* seal/fill/write-amplification metrics flow into the
  // exported artifacts (CI's obs-smoke job schema-validates them). The
  // figure table above stays unstaged: its SSD-write counts are the
  // paper's per-page baseline.
  cfg.segment_staging = true;
  const RaidGeometry geo = paper_geometry(compute_stats(trace).max_page);

  TelemetrySession::Options opts;
  opts.out_dir = out_dir;
  opts.t_unit = "sim_us";
  // ~64 buckets across the replay regardless of KDD_SCALE.
  opts.ops_per_bucket =
      std::max<std::uint64_t>(1, trace.records.size() / 64);
  TelemetrySession session(opts);

  KddCache kdd(cfg, geo);
  session.attach_policy(&kdd);
  session.attach_kdd(&kdd);
  EventSimulator sim(paper_sim_config(geo.num_disks), &kdd);
  sim.set_request_observer([&session](SimTime now, SimTime latency_us) {
    session.on_request(now, latency_us);
  });
  const SimResult r = sim.run_open_loop(trace);

  // Scrape the live surface before finish() tears the engine down: the
  // in-process handler writes the exact bytes a scraper would see, and the
  // socket server is hit once over loopback to prove the wire path.
  bool scrape_ok = true;
  {
    obs::HealthHandler handler(session.health());
    const obs::ScrapeResponse metrics = handler.handle("/metrics");
    const obs::ScrapeResponse health = handler.handle("/health");
    const std::string dir = std::string(out_dir) + "/";
    scrape_ok &= metrics.status == 200 &&
                 obs::write_text_file(dir + "scrape_metrics.prom", metrics.body);
    scrape_ok &= health.status == 200 &&
                 obs::write_text_file(dir + "scrape_health.json", health.body);

    obs::ScrapeServer server(handler);
    if (server.start(0)) {
      std::string body;
      int status = 0;
      scrape_ok &= obs::http_get(server.port(), "/health", &body, &status) &&
                   status == 200 && body == health.body;
      // /metrics over the wire too; the registry is quiesced (the sim run
      // finished above), so the socket body matches the snapshot exactly.
      scrape_ok &= obs::http_get(server.port(), "/metrics", &body, &status) &&
                   status == 200 && body == metrics.body;
      server.stop();
    } else {
      std::printf("[telemetry] scrape server bind failed (no loopback?); "
                  "socket path skipped\n");
    }
  }

  const bool ok = session.finish();
  std::printf("\n[telemetry] KDD/Fin1 instrumented replay: %llu requests, "
              "mean %.2f ms, %zu buckets -> %s/{metrics.prom,snapshot.json,"
              "timeseries.jsonl,trace.json,health.json,flight.json} "
              "(%s, scrape %s)\n",
              static_cast<unsigned long long>(r.requests),
              r.mean_response_ms(), session.series().samples().size(), out_dir,
              ok ? "ok" : "WRITE FAILED", scrape_ok ? "ok" : "FAILED");
  return ok && scrape_ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kdd;
  const char* telemetry_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry_dir = "telemetry-fig9";
    } else if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      telemetry_dir = argv[i] + 12;
    }
  }
  const double scale = experiment_scale();
  bench::banner("Figure 9", "average response time, open-loop trace replay", scale);

  // 1 GiB cache at full scale, shrunk with the workload.
  const auto cache_pages =
      static_cast<std::uint64_t>(262144.0 * scale);

  TextTable table({"Workload", "Nossd", "WA", "WT", "LeavO", "KDD", "KDD vs Nossd"});
  for (const char* workload : {"Fin1", "Fin2", "Hm0", "Web0"}) {
    Trace trace = generate_preset(workload, scale);
    // Restore the native arrival rate: the scaled trace carries scale*N
    // requests, so it should span scale * native duration.
    rescale_duration(trace, static_cast<SimTime>(
                                static_cast<double>(trace.duration_us()) * scale));
    std::vector<std::string> row{workload};
    double nossd_ms = 0, kdd_ms = 0;
    for (const PolicyKind kind : {PolicyKind::kNossd, PolicyKind::kWA, PolicyKind::kWT,
                                  PolicyKind::kLeavO, PolicyKind::kKdd}) {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages;
      cfg.delta_ratio_mean = 0.25;
      const RaidGeometry geo = paper_geometry(compute_stats(trace).max_page);
      auto policy = make_policy(kind, cfg, geo);
      EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
      const SimResult r = sim.run_open_loop(trace);
      const double ms = r.mean_response_ms();
      if (kind == PolicyKind::kNossd) nossd_ms = ms;
      if (kind == PolicyKind::kKdd) kdd_ms = ms;
      row.push_back(TextTable::num(ms, 2));
    }
    row.push_back("-" + bench::pct(1.0 - kdd_ms / nossd_ms));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(mean response time in ms; paper: KDD -41.7/-61.2/-28.0/-30.1%% vs Nossd)\n");
  if (telemetry_dir != nullptr) {
    if (!run_telemetry_replay(telemetry_dir, scale, cache_pages)) return 1;
  }
  return 0;
}
