// Figure 9: average response time of Nossd, WA, WT, LeavO and KDD under
// open-loop replay of the four traces (Section IV-B2).
//
// The traces are replayed at their native arrival rate through the
// discrete-event model of the paper's testbed (5-disk RAID-5, 64 KiB chunks,
// 7,200 RPM disks with caches off, one SATA SSD cache, 1 GiB usable).
// Paper: KDD cuts mean response time vs Nossd by 41.7/61.2/28.0/30.1 % on
// Fin1/Fin2/Hm0/Web0; WA/WT only help on the read-heavy Fin2; KDD ~ LeavO.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/event_sim.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Figure 9", "average response time, open-loop trace replay", scale);

  // 1 GiB cache at full scale, shrunk with the workload.
  const auto cache_pages =
      static_cast<std::uint64_t>(262144.0 * scale);

  TextTable table({"Workload", "Nossd", "WA", "WT", "LeavO", "KDD", "KDD vs Nossd"});
  for (const char* workload : {"Fin1", "Fin2", "Hm0", "Web0"}) {
    Trace trace = generate_preset(workload, scale);
    // Restore the native arrival rate: the scaled trace carries scale*N
    // requests, so it should span scale * native duration.
    rescale_duration(trace, static_cast<SimTime>(
                                static_cast<double>(trace.duration_us()) * scale));
    std::vector<std::string> row{workload};
    double nossd_ms = 0, kdd_ms = 0;
    for (const PolicyKind kind : {PolicyKind::kNossd, PolicyKind::kWA, PolicyKind::kWT,
                                  PolicyKind::kLeavO, PolicyKind::kKdd}) {
      PolicyConfig cfg;
      cfg.ssd_pages = cache_pages;
      cfg.delta_ratio_mean = 0.25;
      const RaidGeometry geo = paper_geometry(compute_stats(trace).max_page);
      auto policy = make_policy(kind, cfg, geo);
      EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
      const SimResult r = sim.run_open_loop(trace);
      const double ms = r.mean_response_ms();
      if (kind == PolicyKind::kNossd) nossd_ms = ms;
      if (kind == PolicyKind::kKdd) kdd_ms = ms;
      row.push_back(TextTable::num(ms, 2));
    }
    row.push_back("-" + bench::pct(1.0 - kdd_ms / nossd_ms));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(mean response time in ms; paper: KDD -41.7/-61.2/-28.0/-30.1%% vs Nossd)\n");
  return 0;
}
