// Ablation: crash-recovery cost vs. metadata partition size.
//
// Section III-C: "configuring the persistent log with more metadata pages
// can reduce the cleaning cost at the expense of crash recovery
// performance" — a bigger partition means fewer GC rewrites while running
// but more log pages to scan after a power failure. This bench measures
// both sides: steady-state metadata page writes, and the number of log
// pages replayed (plus wall-clock time) to rebuild the primary map.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "blockdev/ssd_model.hpp"
#include "compress/content.hpp"
#include "trace/zipf_workload.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Ablation", "metadata partition size vs crash-recovery cost", scale);

  const auto ssd_pages =
      std::max<std::uint64_t>(4096, static_cast<std::uint64_t>(32768.0 * scale * 4));
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 16;
  geo.disk_pages = (ssd_pages * 4 / geo.data_disks() / geo.chunk_pages + 2) *
                   geo.chunk_pages;

  TextTable table({"Partition", "Metadata writes", "Log GC passes", "Pages replayed",
                   "Recovery (ms)"});
  for (const double frac : {0.0045, 0.0059, 0.0098, 0.02, 0.05}) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = ssd_pages;
    SsdModel ssd(scfg);
    NvramState nvram(kPageSize, 255);
    PolicyConfig cfg;
    cfg.ssd_pages = ssd_pages;
    cfg.metadata_fraction = frac;
    auto kdd = std::make_unique<KddCache>(cfg, &array, &ssd, &nvram);

    // Churn the cache hard so the log sees sustained insert/evict traffic.
    const ContentGenerator gen(1);
    Rng rng(2);
    std::unordered_map<Lba, Page> current;
    const std::uint64_t footprint = ssd_pages * 3;
    for (std::uint64_t i = 0; i < ssd_pages * 8; ++i) {
      const Lba lba = rng.next_below(footprint);
      auto it = current.find(lba);
      if (it == current.end() || rng.next_bool(0.3)) {
        Page next =
            it == current.end() ? gen.base_page(lba) : gen.mutate(it->second, 0.25, rng);
        kdd->write(lba, next);
        current[lba] = std::move(next);
      } else {
        Page buf = make_page();
        kdd->read(lba, buf);
      }
    }
    const CacheStats before = kdd->stats();
    const std::uint64_t log_pages = nvram.log_tail - nvram.log_head;
    const std::uint64_t gc = kdd->metadata_log().gc_passes();

    // Power failure: drop the instance, rebuild from log + NVRAM, timed.
    kdd.reset();
    const auto t0 = std::chrono::steady_clock::now();
    KddCache recovered(cfg, &array, &ssd, &nvram, /*recover=*/true);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    table.add_row({bench::pct(frac),
                   std::to_string(before.metadata_ssd_writes()),
                   std::to_string(gc),
                   std::to_string(log_pages),
                   TextTable::num(ms, 2)});
  }
  table.print();
  std::printf("\nBigger partitions: fewer GC rewrites at runtime, more pages to scan "
              "(and more DRAM-map rebuild work) after a crash — Section III-C's "
              "trade-off, measured.\n");
  return 0;
}
