// Figure 5: cache hit ratios of WT, LeavO and KDD-50/25/12 % under the
// write-dominant traces (Fin1, Hm0), swept over cache size.
// Expected shape (paper): WT highest, KDD between (higher with stronger
// content locality), LeavO lowest.
#include "figure_sweep.hpp"

int main() {
  kdd::bench::run_cache_size_sweep(
      {"Figure 5", "cache hit ratios (write-dominant traces)", {"Fin1", "Hm0"}, false});
  return 0;
}
