// Table II: qualitative comparison of the caching policies, derived from
// measured data rather than asserted — a closed-loop Zipf run (25 % reads)
// classifies each policy's I/O latency and SSD endurance as in the paper:
//
//                WT    WA    LeavO  KDD
//   I/O latency  High  High  Low    Low
//   SSD enduran. Bad   Good  Bad    Good
#include <cstdio>

#include "bench_util.hpp"
#include "sim/event_sim.hpp"
#include "trace/zipf_workload.hpp"

int main() {
  using namespace kdd;
  const double scale = experiment_scale();
  bench::banner("Table II", "qualitative policy comparison (measured)", scale);

  const auto cache_pages = static_cast<std::uint64_t>(262144.0 * scale);
  const auto wss_pages = static_cast<std::uint64_t>(409600.0 * scale);
  const auto total_requests = static_cast<std::uint64_t>(524288.0 * scale);
  const RaidGeometry geo = paper_geometry(wss_pages * 2);

  double latency_ms[4] = {};
  double traffic_gib[4] = {};
  const PolicyKind kinds[] = {PolicyKind::kWT, PolicyKind::kWA, PolicyKind::kLeavO,
                              PolicyKind::kKdd};
  for (int i = 0; i < 4; ++i) {
    PolicyConfig cfg;
    cfg.ssd_pages = cache_pages;
    cfg.delta_ratio_mean = 0.25;
    auto policy = make_policy(kinds[i], cfg, geo);
    EventSimulator sim(paper_sim_config(geo.num_disks), policy.get());
    ZipfWorkloadConfig wcfg;
    wcfg.working_set_pages = wss_pages;
    wcfg.total_requests = total_requests;
    wcfg.read_rate = 0.25;
    wcfg.array_pages = geo.data_pages();
    ZipfWorkload workload(wcfg);
    latency_ms[i] = sim.run_closed_loop(workload, 16).mean_response_ms();
    traffic_gib[i] = static_cast<double>(policy->stats().write_traffic_bytes()) /
                     static_cast<double>(kGiB);
  }

  // Classify against the worst value in each dimension: anything at least
  // 25 % better than the worst policy counts as Low latency / Good endurance.
  double worst_latency = latency_ms[0], worst_traffic = traffic_gib[0];
  for (int i = 1; i < 4; ++i) {
    worst_latency = std::max(worst_latency, latency_ms[i]);
    worst_traffic = std::max(worst_traffic, traffic_gib[i]);
  }
  TextTable table({"", "WT", "WA", "LeavO", "KDD"});
  std::vector<std::string> lat_row{"I/O latency"};
  std::vector<std::string> end_row{"SSD endurance"};
  for (int i = 0; i < 4; ++i) {
    lat_row.push_back(latency_ms[i] <= worst_latency * 0.75
                          ? "Low (" + TextTable::num(latency_ms[i], 1) + " ms)"
                          : "High (" + TextTable::num(latency_ms[i], 1) + " ms)");
    end_row.push_back(traffic_gib[i] <= worst_traffic * 0.75
                          ? "Good (" + TextTable::num(traffic_gib[i], 2) + " GiB)"
                          : "Bad (" + TextTable::num(traffic_gib[i], 2) + " GiB)");
  }
  table.add_row(std::move(lat_row));
  table.add_row(std::move(end_row));
  table.print();
  std::printf("\nPaper: WT High/Bad, WA High/Good, LeavO Low/Bad, KDD Low/Good.\n");
  return 0;
}
