// Figure 8: SSD write traffic under the read-dominant traces (Fin2, Web0).
// Expected shape (paper): reductions are smaller than Fig. 6 because
// read-miss fills dominate; KDD-12 % can drop below WA at large cache sizes
// on Fin2.
#include "figure_sweep.hpp"

int main() {
  kdd::bench::run_cache_size_sweep(
      {"Figure 8", "SSD write traffic (read-dominant traces)", {"Fin2", "Web0"}, true});
  return 0;
}
