// Shared plumbing for the per-figure bench binaries: workload grids, sweep
// runners and report formatting. Every binary prints the rows/series of the
// corresponding table or figure in the paper; KDD_SCALE (default 0.25)
// shrinks footprints and request counts proportionally.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/harness.hpp"
#include "kdd/kdd_cache.hpp"
#include "trace/generators.hpp"

namespace kdd::bench {

/// Cache sizes to sweep for a workload, as fractions of its unique footprint
/// (the paper's x-axes are absolute page counts; fractions keep the sweep
/// meaningful at any KDD_SCALE).
inline std::vector<double> cache_fractions() { return {0.05, 0.10, 0.20, 0.40, 0.60}; }

struct SweepPoint {
  std::string policy;     ///< "WT", "LeavO", "KDD-25%", ...
  std::uint64_t cache_pages = 0;
  CacheStats stats;
};

/// Runs one policy/locality configuration over a trace. With `elastic` the
/// KDD delta zone runs the full elastic stack (variable-size extent
/// placement + online GC + adaptive DAZ/DEZ boundary); other policies
/// ignore the flag.
inline CacheStats run_policy_on_trace(PolicyKind kind, double locality_mean,
                                      std::uint64_t ssd_pages, const Trace& trace,
                                      const RaidGeometry& geo,
                                      bool elastic = false) {
  PolicyConfig cfg;
  cfg.ssd_pages = ssd_pages;
  cfg.delta_ratio_mean = locality_mean;
  cfg.dez_elastic = elastic;
  cfg.dez_gc = elastic;
  cfg.adaptive_boundary = elastic;
  auto policy = make_policy(kind, cfg, geo);
  return run_counter_trace(*policy, trace, geo.data_pages());
}

/// Compressibility-mix axis for the elastic-KDD columns of Figures 5/7:
/// delta_ratio_mean is the Gaussian mean of the delta-to-page size ratio, so
/// 0.85 models near-incompressible content (deltas almost page-sized), 0.45
/// a mixed blend, 0.10 highly-compressible hot updates.
inline constexpr double kCompressMix[3] = {0.85, 0.45, 0.10};

/// "123" -> "123 k pages" style label for the cache-size column.
inline std::string kpages(std::uint64_t pages) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fk", static_cast<double>(pages) / 1000.0);
  return buf;
}

inline std::string pct(double v) { return TextTable::num(v * 100.0, 1) + "%"; }

/// Header banner shared by all bench binaries.
inline void banner(const char* experiment, const char* what, double scale) {
  std::printf("=== %s — %s ===\n", experiment, what);
  std::printf("(synthetic workloads calibrated to the paper's Table I; KDD_SCALE=%.2f)\n\n",
              scale);
}

}  // namespace kdd::bench
