# Gnuplot recipe for the per-figure CSV output.
#
# Generate the data, then plot:
#   KDD_CSV=results ./build/bench/fig6_traffic_write
#   gnuplot -e "csv='results/Figure_6_Fin1.csv'; out='fig6_fin1.png'" docs/plot_figures.gp
#
# Works for any of the Figure 5-8 CSVs (first column = cache size, remaining
# columns = one series per policy).
set datafile separator ','
set terminal pngcairo size 900,540 font 'DejaVu Sans,11'
set output out
set key outside right top
set grid ytics
set xlabel 'cache size'
set ylabel 'hit ratio / GiB written'
set style data linespoints
stats csv skip 1 nooutput
N = STATS_columns
plot for [i=2:N] csv using 0:(real(strcol(i))) every ::1 \
     title columnheader(i) lw 2 pt 7 ps 0.8, \
     '' using 0:(real(strcol(2))):xtic(1) every ::1 notitle lc rgb '#00000000'
