// MetricsRegistry: named counters, gauges and latency histograms with
// thread-sharded recording and merge-on-snapshot aggregation.
//
// Design goals (docs/observability.md):
//  * Recording must be lock-cheap so the hot request paths — including the
//    16 front-door stripes of ConcurrentCache — can count without contention:
//    counters are per-shard relaxed atomics, where each recording thread is
//    assigned its own shard (round-robin over kShards; two threads only ever
//    share a shard beyond kShards concurrent recorders).
//  * Snapshots merge all shards into a single consistent-enough view. Under
//    concurrent recording a snapshot is a per-cell-atomic read (no torn
//    counters, monotone between snapshots); after recorders quiesce (join)
//    the merge is exact and deterministic, which is what the multi-threaded
//    recorder stress test asserts.
//  * Registration is idempotent and cheap to cache: `counter("name")` returns
//    a stable MetricId; hot code registers once and keeps the id (or a
//    Counter handle) around.
//
// A process-wide registry (MetricsRegistry::global()) is what the core
// layers (cache, kdd, raid, blockdev) record into; tests build private
// instances. Recording is always safe — there is no global enable check on
// the counter path, because a relaxed uncontended fetch_add is a few ns —
// while the costlier span/trace machinery (obs/span.hpp) has its own gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace kdd::obs {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = ~0u;

/// Point-in-time aggregation of a registry: shard-merged counters and
/// histograms plus gauge values, sorted by name for deterministic export.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    LatencyHistogram hist;  ///< merged across shards
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by exact name; 0 if absent (convenience for tests
  /// and exporters).
  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const LatencyHistogram* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// Shard count for counters/histograms. Threads are assigned shards
  /// round-robin at first use, so up to kShards concurrent recorders never
  /// share a cache line of counter cells.
  static constexpr std::size_t kShards = 32;
  /// Fixed per-kind capacity: cells are preallocated so recording never
  /// races a reallocation. Registration beyond this aborts (KDD_CHECK).
  static constexpr std::size_t kMaxCounters = 512;
  static constexpr std::size_t kMaxGauges = 128;
  static constexpr std::size_t kMaxHistograms = 64;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry the core layers record into.
  static MetricsRegistry& global();

  // -- Registration (idempotent; returns a stable id) -------------------------
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name);

  // -- Recording (hot path) ---------------------------------------------------
  /// Adds `n` to a counter. Relaxed per-shard atomic add; ~single-digit ns.
  void add(MetricId id, std::uint64_t n = 1) {
    shard_for_thread().counters[id].fetch_add(n, std::memory_order_relaxed);
  }
  void gauge_set(MetricId id, std::int64_t v) {
    gauges_[id].store(v, std::memory_order_relaxed);
  }
  void gauge_add(MetricId id, std::int64_t dv) {
    gauges_[id].fetch_add(dv, std::memory_order_relaxed);
  }
  /// Records a value into a histogram (per-shard histogram + spinlock; the
  /// lock is uncontended unless more than kShards threads record at once).
  void observe(MetricId id, std::uint64_t value);

  // -- Aggregation ------------------------------------------------------------
  MetricsSnapshot snapshot() const;
  /// Zeroes every counter/gauge/histogram cell (names and ids survive).
  void reset();

  std::size_t num_counters() const;
  std::size_t num_gauges() const;
  std::size_t num_histograms() const;

 private:
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counters;  ///< kMaxCounters cells
    /// Lazily created per-shard histograms, guarded by one spinlock per shard
    /// (histograms are ~40 KiB each; preallocating kShards * kMaxHistograms
    /// would waste tens of MiB).
    std::atomic_flag hist_lock = ATOMIC_FLAG_INIT;
    std::vector<std::unique_ptr<LatencyHistogram>> hists;  ///< kMaxHistograms slots
  };

  Shard& shard_for_thread();
  MetricId intern(std::vector<std::string>& names, std::string_view name,
                  std::size_t cap, std::atomic<std::uint32_t>& count);

  mutable std::mutex names_mu_;  ///< guards the three name tables
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::atomic<std::uint32_t> counter_count_{0};
  std::atomic<std::uint32_t> gauge_count_{0};
  std::atomic<std::uint32_t> histogram_count_{0};

  std::vector<std::unique_ptr<Shard>> shards_;  ///< fixed kShards, preallocated
  std::vector<std::atomic<std::int64_t>> gauges_;

  /// Round-robin shard assignment for new threads.
  std::atomic<std::uint32_t> next_shard_{0};
  /// Unique id used to key the thread-local shard cache (registry addresses
  /// can be reused after destruction; serials never are).
  const std::uint64_t serial_;
};

/// Cached handles: register once, record forever. Copyable, trivially small.
class Counter {
 public:
  Counter() = default;
  Counter(MetricsRegistry* r, std::string_view name)
      : reg_(r), id_(r->counter(name)) {}
  void inc(std::uint64_t n = 1) const {
    if (reg_) reg_->add(id_, n);
  }

 private:
  MetricsRegistry* reg_ = nullptr;
  MetricId id_ = kInvalidMetric;
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(MetricsRegistry* r, std::string_view name)
      : reg_(r), id_(r->gauge(name)) {}
  void set(std::int64_t v) const {
    if (reg_) reg_->gauge_set(id_, v);
  }
  void add(std::int64_t dv) const {
    if (reg_) reg_->gauge_add(id_, dv);
  }

 private:
  MetricsRegistry* reg_ = nullptr;
  MetricId id_ = kInvalidMetric;
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(MetricsRegistry* r, std::string_view name)
      : reg_(r), id_(r->histogram(name)) {}
  void observe(std::uint64_t v) const {
    if (reg_) reg_->observe(id_, v);
  }

 private:
  MetricsRegistry* reg_ = nullptr;
  MetricId id_ = kInvalidMetric;
};

}  // namespace kdd::obs
