// Machine-readable exporters for MetricsSnapshot.
//
//  * prometheus_text(): Prometheus text exposition format v0.0.4. Counter and
//    gauge names may carry embedded labels (`kdd_span_stage_count{stage=
//    "rmw"}`); the exporter splits the family name at '{' for the `# HELP` /
//    `# TYPE` comments and emits each pair once per family. Histograms are
//    exported as summaries (quantile series + _sum/_count/_max) because the
//    log-bucketed LatencyHistogram answers quantile queries directly.
//  * prom_series_name(): the one sanctioned way to build a labelled series
//    name — escapes the label value per the exposition format (backslash,
//    double quote, newline) so hostile values cannot break line framing.
//  * snapshot_json(): one JSON object (single line) carrying every counter,
//    gauge and histogram summary — the machine-readable sibling used by the
//    JSONL artifacts and the telemetry validator.
//  * write_text_file(): tiny fopen/fwrite helper shared by the exporters'
//    call sites.
//
// Exports are deterministic: MetricsSnapshot is sorted by name, and the
// exporters add no reordering of their own.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace kdd::obs {

/// Prometheus text exposition of the snapshot (counters, gauges, histogram
/// summaries). Ends with a trailing newline.
std::string prometheus_text(const MetricsSnapshot& snap);

/// Single-line JSON object: {"schema":...,"counters":{...},"gauges":{...},
/// "histograms":{name:{count,mean_us,p50_us,p99_us,max_us}}}.
std::string snapshot_json(const MetricsSnapshot& snap);

/// Schema tag embedded in snapshot_json().
inline constexpr const char* kSnapshotSchema = "kdd-telemetry-snapshot-v1";

/// Writes `body` to `path`, returns false on any I/O failure.
bool write_text_file(const std::string& path, const std::string& body);

/// Escapes a Prometheus label *value*: backslash -> `\\`, double quote ->
/// `\"`, newline -> `\n` (the three escapes the exposition format defines).
std::string prom_escape_label_value(std::string_view value);

/// Builds `family{key="value"}` with the value escaped. Registration sites
/// that embed labels in metric names (span stages, alert rules) go through
/// this so a hostile value cannot terminate the label set or split the line.
std::string prom_series_name(std::string_view family, std::string_view key,
                             std::string_view value);

/// Appends `s` to `out` with JSON string escaping (quote, backslash, control
/// characters). Shared by the snapshot/flight/health JSON writers.
void append_json_escaped(std::string& out, std::string_view s);

}  // namespace kdd::obs
