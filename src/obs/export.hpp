// Machine-readable exporters for MetricsSnapshot.
//
//  * prometheus_text(): Prometheus text exposition format v0.0.4. Counter and
//    gauge names may carry embedded labels (`kdd_span_stage_count{stage=
//    "rmw"}`); the exporter splits the family name at '{' for the `# TYPE`
//    comment and emits each TYPE line once per family. Histograms are
//    exported as summaries (quantile series + _sum/_count/_max) because the
//    log-bucketed LatencyHistogram answers quantile queries directly.
//  * snapshot_json(): one JSON object (single line) carrying every counter,
//    gauge and histogram summary — the machine-readable sibling used by the
//    JSONL artifacts and the telemetry validator.
//  * write_text_file(): tiny fopen/fwrite helper shared by the exporters'
//    call sites.
//
// Exports are deterministic: MetricsSnapshot is sorted by name, and the
// exporters add no reordering of their own.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace kdd::obs {

/// Prometheus text exposition of the snapshot (counters, gauges, histogram
/// summaries). Ends with a trailing newline.
std::string prometheus_text(const MetricsSnapshot& snap);

/// Single-line JSON object: {"schema":...,"counters":{...},"gauges":{...},
/// "histograms":{name:{count,mean_us,p50_us,p99_us,max_us}}}.
std::string snapshot_json(const MetricsSnapshot& snap);

/// Schema tag embedded in snapshot_json().
inline constexpr const char* kSnapshotSchema = "kdd-telemetry-snapshot-v1";

/// Writes `body` to `path`, returns false on any I/O failure.
bool write_text_file(const std::string& path, const std::string& body);

}  // namespace kdd::obs
