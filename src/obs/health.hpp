// Continuous health engine: rolling-window SLO tracking + burn-rate alerts.
//
// Two layers:
//
//  1. Rolling-window primitives — RollingCounter / RollingMax /
//     RollingHistogram keep a ring of time-bucketed cells stamped with their
//     epoch (now / bucket_us). Recording is O(1): the slot for the current
//     epoch is reset lazily when its stamp is stale, so an idle gap of any
//     length costs nothing (no catch-up rotation loop). Queries merge the
//     slots whose epoch falls inside [now - window, now]; sub-histograms
//     merge into a scratch LatencyHistogram for sliding p50/p99/p999.
//
//  2. HealthEngine — owns rolling rings over request latency, hit/miss,
//     admission rejects, submissions/completions, queue wait, destage lag
//     and per-region SSD wear, plus the latest array state, and evaluates
//     multi-window burn-rate rules (fast 5 s / slow 60 s of *simulated*
//     time) on a tick cadence. Alerts fire and resolve as structured
//     events: a KDD_LOG line, a FlightRecorder event, a TraceBuffer instant
//     (when tracing is on), a `kdd_alerts_active{rule=...}` gauge edge and
//     a `kdd_alerts_fired_total{rule=...}` counter.
//
// Clocking: everything is driven by the event-simulator clock through
// observe_request()/tick() — never the wall clock — so drills and figure
// replays evaluate rules byte-deterministically. Core layers (KddCache,
// ConcurrentCache) have no clock; their counter hooks are lock-free
// cumulative totals that the evaluator folds into the rings, stamped with
// the engine's last-seen time.
//
// Hook dispatch mirrors the flight recorder: core layers call the inline
// health_* free functions, which are one relaxed load when no engine is
// installed (the default outside instrumented runs). With an engine
// installed the hot path stays within the perf gate's 5% replay budget by
// construction: hooks are single relaxed fetch_adds, request observation is
// a spinlock plus O(1) ring appends, and the rule pass is duty-cycled by
// both sim time (eval_every_us) and observation count (eval_min_events).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace kdd::obs {

/// now -> epoch (t / bucket_us) without the 64-bit divide in the common
/// case — a repeat call inside the same bucket is one subtract + compare.
/// The divide costs ~25 cycles and the rolling rings see several calls per
/// simulated request, which matters for the perf gate's replay budget.
struct EpochCache {
  std::uint64_t epoch = 0;
  std::uint64_t start_us = 0;  ///< epoch 0 starts at t = 0

  std::uint64_t get(std::uint64_t now_us, std::uint64_t bucket_us) {
    if (now_us - start_us < bucket_us) return epoch;
    epoch = now_us / bucket_us;
    start_us = epoch * bucket_us;
    return epoch;
  }
};

/// Ring of per-epoch sums. Epoch = t / bucket_us; a slot whose stamp is
/// stale is reset on first touch, so idle gaps need no rotation loop.
///
/// Besides the generic O(window) sum() query, the ring maintains two cached
/// sliding sums — a fast and a slow window, in buckets — updated
/// incrementally: add() folds into both, and advance() expires the buckets
/// that left each window since the last call (amortised O(1) per epoch).
/// The rule evaluator runs every sim-second against eight of these rings,
/// so it reads the cached sums instead of rescanning 61 slots per query —
/// that rescan is what blew the perf gate's 5 % replay budget.
class RollingCounter {
 public:
  /// `fast_buckets`/`slow_buckets` size the two cached windows (0 = default
  /// to the whole ring).
  RollingCounter(std::uint64_t bucket_us, std::size_t slots,
                 std::uint64_t fast_buckets = 0, std::uint64_t slow_buckets = 0);

  void add(std::uint64_t now_us, std::uint64_t n = 1);
  /// Sum over the buckets intersecting [now - window_us, now] (the current
  /// partial bucket counts; older-than-ring epochs were lazily dropped).
  std::uint64_t sum(std::uint64_t now_us, std::uint64_t window_us) const;
  void reset();

  /// Expires buckets that left the cached windows as of `now_us`. Callers
  /// must keep `now_us` monotone (the engine's clock is clamped).
  void advance(std::uint64_t now_us);
  /// Cached sliding sums, valid as of the last advance()/add().
  std::uint64_t fast_sum() const { return fast_sum_; }
  std::uint64_t slow_sum() const { return slow_sum_; }

  std::uint64_t bucket_us() const { return bucket_us_; }
  std::size_t slots() const { return cells_.size(); }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  /// One ring slot: the epoch stamp and its sum share a 16-byte cell, so
  /// every slot access (append, expiry lookup) touches one cache line
  /// instead of two parallel arrays' worth. The engine owns seven of these
  /// rings and the replay hot path competes for cache with the simulator,
  /// so the halved footprint is measurable against the perf gate budget.
  struct Cell {
    std::uint64_t sum = 0;
    std::uint64_t epoch = kEmpty;
  };

  /// The ring's value for exactly `epoch`, 0 when its slot was reused.
  std::uint64_t value_at(std::uint64_t epoch) const {
    const Cell& c = cells_[static_cast<std::size_t>(epoch) & mask_];
    return c.epoch == epoch ? c.sum : 0;
  }

  std::uint64_t bucket_us_;
  std::vector<Cell> cells_;  ///< power-of-two size (see mask_)
  /// Rings are sized up to a power of two so slot = epoch & mask_. The
  /// advance() expiry loop indexes the ring once per departed bucket across
  /// seven rings; with a modulo that is a hardware divide per lookup, which
  /// measurably dented the perf gate's replay budget.
  std::size_t mask_;
  std::uint64_t fast_n_;
  std::uint64_t slow_n_;
  std::uint64_t cur_epoch_ = 0;
  std::uint64_t fast_sum_ = 0;
  std::uint64_t slow_sum_ = 0;
  EpochCache epoch_cache_;
};

/// Ring of per-epoch maxima (destage lag, queue depth peaks).
class RollingMax {
 public:
  RollingMax(std::uint64_t bucket_us, std::size_t slots);

  void record(std::uint64_t now_us, std::uint64_t v);
  /// Max over the window; 0 when no bucket intersects it.
  std::uint64_t max(std::uint64_t now_us, std::uint64_t window_us) const;
  void reset();

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  struct Cell {
    std::uint64_t max = 0;
    std::uint64_t epoch = kEmpty;
  };

  std::uint64_t bucket_us_;
  std::vector<Cell> cells_;  ///< power-of-two size (see mask_)
  std::size_t mask_;
  EpochCache epoch_cache_;
};

/// Ring of per-epoch latency populations with sliding percentile queries.
///
/// Each slot starts as a small inline sample buffer and spills into a full
/// LatencyHistogram only once the bucket collects more than kInlineSamples
/// values. Sparse buckets (the common case for 1 s buckets in the replays)
/// therefore cost one array append per record and a few hundred bytes per
/// slot, instead of touching a ~40 KiB histogram per bucket — that footprint
/// alone evicted the simulator's working set and blew the perf gate's 5 %
/// replay budget. Dense buckets pay a one-time spill (replay of the inline
/// samples) and then behave exactly like the histogram they spilled into;
/// merge_window() replays inline samples, so sparse buckets are merged at
/// full precision.
///
/// The ring doubles as the engine's request/bad-request counter: every slot
/// already counts its population, and record() takes a `bad` flag, so the
/// burn-rate rule reads cached fast/slow counts off the same cells the
/// latency append just touched instead of paying two extra counter rings
/// per request (measured against the perf gate's replay budget). The cached
/// sums follow the RollingCounter scheme: record() folds in, advance()
/// expires departed buckets.
class RollingHistogram {
 public:
  /// `fast_buckets`/`slow_buckets` size the two cached count windows
  /// (0 = default to the whole ring).
  RollingHistogram(std::uint64_t bucket_us, std::size_t slots,
                   std::uint64_t fast_buckets = 0,
                   std::uint64_t slow_buckets = 0);

  void record(std::uint64_t now_us, std::uint64_t value_us, bool bad = false);
  /// Merges the window's per-bucket populations into `out` (reset first).
  void merge_window(std::uint64_t now_us, std::uint64_t window_us,
                    LatencyHistogram* out) const;
  std::uint64_t count(std::uint64_t now_us, std::uint64_t window_us) const;
  /// Values recorded with bad=true in the window.
  std::uint64_t bad_count(std::uint64_t now_us, std::uint64_t window_us) const;
  void reset();

  /// Expires buckets that left the cached count windows as of `now_us`.
  void advance(std::uint64_t now_us);
  /// Cached sliding counts, valid as of the last advance()/record().
  std::uint64_t fast_count() const { return fast_count_; }
  std::uint64_t slow_count() const { return slow_count_; }
  std::uint64_t fast_bad() const { return fast_bad_; }
  std::uint64_t slow_bad() const { return slow_bad_; }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;
  /// Sized so a Slot spans two cache lines: the replays' 1 s buckets hold a
  /// handful of samples, and the recording path competes for cache with the
  /// simulator's working set — a fat inline buffer measurably slowed the
  /// perf gate's replay even though most of it was never written.
  static constexpr std::uint32_t kInlineSamples = 9;

  struct Slot {
    std::uint64_t epoch = kEmpty;
    std::uint32_t inline_n = 0;  ///< valid until `spilled`
    bool spilled = false;
    std::uint64_t samples[kInlineSamples];
    std::unique_ptr<LatencyHistogram> hist;  ///< reused across rotations
  };

  /// Count header for one epoch, kept in a dense parallel ring instead of
  /// inside Slot: the window expiry loop in advance() runs once per eval
  /// across many departed epochs, and walking 16-byte cells (4 per cache
  /// line) instead of striding the ~100-byte sample slots is the difference
  /// between a handful of cache lines per rule pass and a cold read per
  /// departed bucket (measured against the perf gate's replay budget).
  struct CountCell {
    std::uint64_t epoch = kEmpty;
    std::uint32_t total = 0;  ///< bucket count, inline or spilled
    std::uint32_t bad = 0;    ///< over-threshold subset of `total`
  };

  std::uint64_t bucket_us_;
  std::vector<Slot> slots_;        ///< power-of-two size (see mask_)
  std::vector<CountCell> counts_;  ///< same size/indexing as slots_
  std::size_t mask_;
  std::uint64_t fast_n_;
  std::uint64_t slow_n_;
  std::uint64_t cur_epoch_ = 0;
  std::uint64_t fast_count_ = 0;
  std::uint64_t slow_count_ = 0;
  std::uint64_t fast_bad_ = 0;
  std::uint64_t slow_bad_ = 0;
  EpochCache epoch_cache_;
};

/// Burn-rate rules the engine evaluates. Keep alert_rule_name() and the SLO
/// rule reference in docs/observability.md in sync when extending.
enum class AlertRule : std::uint8_t {
  kLatencyBurn,      ///< over-threshold request fraction burns the error budget
  kHitRatioCollapse, ///< fast-window cache hit ratio under the floor
  kRejectSpike,      ///< admission-control rejects per submission over the cap
  kQueueStall,       ///< inflight high while the fast window completed nothing
  kWearImbalance,    ///< max/mean per-region SSD wear over the skew bound
  kArrayDegraded,    ///< ArrayHealth regressed from healthy
  kNumRules
};
inline constexpr int kNumAlertRules = static_cast<int>(AlertRule::kNumRules);

const char* alert_rule_name(AlertRule r);

/// SLO objectives + rule thresholds. Defaults suit the paper-scale sim
/// workloads; drills override per scenario.
struct SloObjectives {
  /// A request slower than this burns error budget ("bad" request).
  std::uint64_t latency_threshold_us = 20'000;
  /// Target good fraction (0.99 => 1% error budget).
  double latency_target = 0.99;
  /// Burn-rate multiple that fires / resolves kLatencyBurn. Both the fast
  /// and the slow window must exceed `burn_fire` to fire (the classic
  /// multi-window guard against blips); the alert resolves when the fast
  /// window drops below `burn_resolve`.
  double burn_fire = 2.0;
  double burn_resolve = 1.0;
  /// Minimum requests in a window before latency/hit-ratio rules evaluate.
  std::uint64_t min_requests = 16;

  double hit_ratio_floor = 0.25;  ///< fast-window hits/(hits+misses)
  double reject_rate_fire = 0.10; ///< fast-window rejects/submissions
  std::uint64_t queue_stall_inflight = 32;
  /// Wear imbalance: fires when max/mean per-region wear >= skew_fire with
  /// at least `wear_min_total` total wear units observed; resolves at
  /// skew_resolve (hysteresis, since wear only converges slowly).
  double wear_skew_fire = 1.5;
  double wear_skew_resolve = 1.25;
  double wear_min_total = 64.0;
};

struct HealthConfig {
  std::uint64_t bucket_us = 1'000'000;       ///< ring granularity: 1 s
  std::uint64_t fast_window_us = 5'000'000;  ///< 5 s sim time
  std::uint64_t slow_window_us = 60'000'000; ///< 60 s sim time
  /// Rule evaluation cadence (sim time). Evaluation happens inside
  /// observe_request()/tick() when at least this much time passed.
  std::uint64_t eval_every_us = 1'000'000;
  /// Duty-cycle bound: a request-driven evaluation additionally waits for at
  /// least this many new observations since the last one. Dense workloads
  /// still evaluate every eval_every_us (the observations arrive first);
  /// sparse replays — where sim time outruns the request stream — amortize
  /// the rule pass over several requests instead of re-evaluating unchanged
  /// windows every sim-second. tick() always evaluates, so idle-period
  /// resolution is bounded by the caller's tick cadence, not by this. 32
  /// keeps alert latency well inside one fast window for any workload that
  /// can trip a rule (min_requests per window is 16) while holding the rule
  /// pass's share of the perf gate's replay budget down on sparse streams.
  std::uint64_t eval_min_events = 32;
  SloObjectives slo;
};

/// One fire/resolve edge, kept in an in-memory log for tests and /health.
struct AlertEvent {
  std::uint64_t t_us = 0;
  AlertRule rule = AlertRule::kLatencyBurn;
  bool fired = false;    ///< true = fired, false = resolved
  double value = 0.0;    ///< rule measurement at the edge (burn, ratio, skew)
};

/// Point-in-time rule state for /health and kddctl alerts.
struct AlertStatus {
  AlertRule rule = AlertRule::kLatencyBurn;
  bool active = false;
  std::uint64_t fired_count = 0;
  std::uint64_t since_us = 0;  ///< time of the last edge
  double value = 0.0;          ///< latest measurement
};

class HealthEngine {
 public:
  explicit HealthEngine(HealthConfig cfg = {},
                        MetricsRegistry* registry = &MetricsRegistry::global());
  ~HealthEngine();

  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  // -- Global install (what the health_* hooks dispatch to) -----------------
  static void install(HealthEngine* engine);
  static HealthEngine* installed() {
    return installed_ptr().load(std::memory_order_relaxed);
  }

  // -- Clocked observations (harness / simulator driven) --------------------
  /// Request completion at sim time `now_us`. Advances the engine clock,
  /// records latency, and evaluates rules when eval_every_us elapsed.
  void observe_request(std::uint64_t now_us, std::uint64_t latency_us);
  /// Batch form: replays `n` (timestamp, latency) pairs in array order under
  /// a single lock acquisition. The per-item work is exactly
  /// observe_request's — same ring appends, same duty-cycled rule passes at
  /// the same points — so window contents, eval times and alert edges are
  /// byte-identical to n sequential calls; only the n-1 saved lock
  /// round-trips differ, which is what keeps the batched session feed
  /// (TelemetrySession::flush_health) inside the perf gate's replay budget.
  void observe_requests(const std::uint64_t* now_us,
                        const std::uint64_t* latency_us, std::size_t n);
  /// Advances the clock and evaluates rules without recording a request.
  void tick(std::uint64_t now_us);
  /// Destage lag (stale parity groups awaiting cleaning) at `now_us`.
  void observe_destage_lag(std::uint64_t now_us, std::uint64_t stale_groups);
  /// Cumulative wear of one SSD region (mean erase count, write traffic —
  /// any monotone per-region measure; the rule only compares regions).
  void observe_region_wear(std::size_t region, double wear);

  // -- Clock-free hooks (core layers; stamped with the last-seen time) ------
  // The counter hooks are lock-free: one relaxed fetch_add on a cumulative
  // total. The evaluator folds the deltas into the rolling rings (stamped
  // with the engine clock) before each rule pass, so a hook costs a few ns
  // on the simulator's hot path and window attribution shifts by at most
  // one evaluation interval — well under the 5 s fast window.
  void note_cache_hit() { pending_hits_.fetch_add(1, std::memory_order_relaxed); }
  void note_cache_miss() {
    pending_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_submission() {
    pending_submissions_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_admission_reject() {
    pending_rejects_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_completion() {
    pending_completions_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_queue_wait(std::uint64_t wait_ns);
  void note_inflight(std::int64_t inflight) {
    inflight_.store(inflight, std::memory_order_relaxed);
  }
  void note_array_state(int state);

  // -- Queries ---------------------------------------------------------------
  const HealthConfig& config() const { return cfg_; }
  std::uint64_t now_us() const;
  /// Window percentiles of request latency (µs): {p50, p99, p999}. `fast`
  /// selects the fast window, else the slow one.
  struct WindowStats {
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;
    double burn_rate = 0.0;   ///< bad_fraction / error_budget
    double hit_ratio = -1.0;  ///< -1 when no cache ops in the window
    std::uint64_t p50_us = 0;
    std::uint64_t p99_us = 0;
    std::uint64_t p999_us = 0;
  };
  /// Folds pending hook counts first, so the stats reflect hooks that fired
  /// since the last evaluation (hence non-const, like health_json()).
  WindowStats window_stats(bool fast);
  std::vector<AlertStatus> alerts() const;
  std::vector<AlertEvent> events() const;
  bool any_active() const;
  /// Current max/mean per-region wear ratio (0 when fewer than 2 regions
  /// have reported).
  double wear_skew() const;
  /// One kdd-health-v1 JSON object: objectives, both windows' attainment,
  /// gauges, and the per-rule alert table.
  std::string health_json();

 private:
  /// Tiny test-and-set lock. The engine's critical sections are a handful of
  /// ring appends (plus a rare scrape-side snapshot), and the hot path pays
  /// the lock once per simulated request — an uncontended std::mutex
  /// round-trip is measurable against the perf gate's 5 % replay budget.
  class SpinLock {
   public:
    void lock() {
      while (flag_.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };

  static std::atomic<HealthEngine*>& installed_ptr();

  void advance_locked(std::uint64_t now_us);
  void maybe_evaluate_locked();
  void evaluate_locked();
  void fold_pending_locked();
  void set_alert_locked(AlertRule rule, bool active, double value);
  WindowStats window_stats_locked(std::uint64_t window_us) const;

  const HealthConfig cfg_;

  mutable SpinLock mu_;
  std::uint64_t now_us_ = 0;
  std::uint64_t last_eval_us_ = 0;
  std::uint64_t events_since_eval_ = 0;
  bool evaluated_once_ = false;

  RollingHistogram latency_;  ///< also the request/bad-request counter
  RollingHistogram queue_wait_;
  RollingCounter hits_;
  RollingCounter misses_;
  RollingCounter submissions_;
  RollingCounter rejects_;
  RollingCounter completions_;
  RollingMax destage_lag_;
  std::vector<double> region_wear_;
  bool wear_dirty_ = false;
  double wear_skew_cached_ = 0.0;
  double wear_total_cached_ = 0.0;
  std::atomic<std::int64_t> inflight_{0};
  int array_state_ = 0;

  // Cumulative hook totals (written lock-free by the note_* hooks) and the
  // value of each total at the last fold. fold_pending_locked() stamps the
  // delta into the matching ring.
  std::atomic<std::uint64_t> pending_hits_{0};
  std::atomic<std::uint64_t> pending_misses_{0};
  std::atomic<std::uint64_t> pending_submissions_{0};
  std::atomic<std::uint64_t> pending_rejects_{0};
  std::atomic<std::uint64_t> pending_completions_{0};
  std::uint64_t folded_hits_ = 0;
  std::uint64_t folded_misses_ = 0;
  std::uint64_t folded_submissions_ = 0;
  std::uint64_t folded_rejects_ = 0;
  std::uint64_t folded_completions_ = 0;

  struct RuleState {
    bool active = false;
    std::uint64_t fired_count = 0;
    std::uint64_t since_us = 0;
    double value = 0.0;
    Gauge active_gauge;
    Counter fired_counter;
  };
  RuleState rules_[kNumAlertRules];
  std::vector<AlertEvent> log_;

  Gauge burn_gauge_;       ///< kdd_slo_latency_burn (slow window, x1000)
  Gauge hit_ratio_gauge_;  ///< kdd_hit_ratio_permille (fast window)
  Gauge wear_skew_gauge_;  ///< kdd_wear_skew_permille
};

/// Installed-engine dispatchers: one relaxed load when no engine is
/// installed, so the probes stay compiled into the hot paths.
inline void health_cache_hit() {
  if (HealthEngine* h = HealthEngine::installed()) h->note_cache_hit();
}
inline void health_cache_miss() {
  if (HealthEngine* h = HealthEngine::installed()) h->note_cache_miss();
}
inline void health_submission() {
  if (HealthEngine* h = HealthEngine::installed()) h->note_submission();
}
inline void health_admission_reject() {
  if (HealthEngine* h = HealthEngine::installed()) h->note_admission_reject();
}
inline void health_completion() {
  if (HealthEngine* h = HealthEngine::installed()) h->note_completion();
}
inline void health_queue_wait(std::uint64_t wait_ns) {
  if (HealthEngine* h = HealthEngine::installed()) h->note_queue_wait(wait_ns);
}
inline void health_inflight(std::int64_t inflight) {
  if (HealthEngine* h = HealthEngine::installed()) h->note_inflight(inflight);
}
inline void health_array_state(int state) {
  if (HealthEngine* h = HealthEngine::installed()) h->note_array_state(state);
}

}  // namespace kdd::obs
