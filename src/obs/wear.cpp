#include "obs/wear.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace kdd::obs {

WearSeries::WearSeries(std::string t_unit) : t_unit_(std::move(t_unit)) {}

void WearSeries::set_kind_names(std::vector<std::string> names) {
  KDD_CHECK(names.size() <= kMaxWriteKinds);
  kind_names_ = std::move(names);
}

namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t v,
                   bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s\"%s\":%llu", *first ? "" : ",", key,
                static_cast<unsigned long long>(v));
  out += buf;
  *first = false;
}

void append_kv_f64(std::string& out, const char* key, double v, bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s\"%s\":%.6g", *first ? "" : ",", key, v);
  out += buf;
  *first = false;
}

}  // namespace

std::string WearSeries::jsonl_line(const WearSample& s) const {
  std::string out = "{";
  bool first = true;
  append_kv_f64(out, "t", s.t, &first);
  append_kv_u64(out, "ops", s.ops, &first);
  for (std::size_t k = 0; k < kind_names_.size(); ++k) {
    const std::string key = "ssd_writes_" + kind_names_[k];
    char buf[128];
    std::snprintf(buf, sizeof buf, ",\"%s\":%llu", key.c_str(),
                  static_cast<unsigned long long>(s.ssd_writes_by_kind[k]));
    out += buf;
  }
  append_kv_u64(out, "ssd_reads", s.ssd_reads, &first);
  append_kv_u64(out, "disk_reads", s.disk_reads, &first);
  append_kv_u64(out, "disk_writes", s.disk_writes, &first);
  append_kv_u64(out, "cleanings", s.cleanings, &first);
  append_kv_u64(out, "groups_cleaned", s.groups_cleaned, &first);
  append_kv_u64(out, "log_gc_passes", s.log_gc_passes, &first);
  append_kv_u64(out, "media_errors", s.media_errors, &first);
  append_kv_u64(out, "transient_errors", s.transient_errors, &first);
  append_kv_u64(out, "corruptions", s.corruptions, &first);
  append_kv_u64(out, "media_fallbacks", s.media_fallbacks, &first);
  append_kv_u64(out, "groups_healed", s.groups_healed, &first);
  append_kv_u64(out, "read_repairs", s.read_repairs, &first);
  append_kv_u64(out, "dez_pages", s.dez_pages, &first);
  append_kv_u64(out, "old_pages", s.old_pages, &first);
  append_kv_u64(out, "stale_groups", s.stale_groups, &first);
  append_kv_u64(out, "staged_deltas", s.staged_deltas, &first);
  append_kv_u64(out, "log_used_pages", s.log_used_pages, &first);
  append_kv_u64(out, "dez_live_bytes", s.dez_live_bytes, &first);
  append_kv_u64(out, "dez_dead_bytes", s.dez_dead_bytes, &first);
  append_kv_u64(out, "dez_boundary_pages", s.dez_boundary_pages, &first);
  append_kv_u64(out, "dez_spare_pages", s.dez_spare_pages, &first);
  append_kv_f64(out, "write_amplification", s.write_amplification, &first);
  append_kv_f64(out, "endurance_consumed", s.endurance_consumed, &first);
  append_kv_f64(out, "mean_latency_us", s.mean_latency_us, &first);
  append_kv_u64(out, "max_latency_us", s.max_latency_us, &first);
  out += "}";
  return out;
}

std::string WearSeries::to_jsonl() const {
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"t_unit\":\"" + t_unit_ + "\",\"buckets\":";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%zu", samples_.size());
  out += buf;
  out += ",\"write_kinds\":[";
  for (std::size_t k = 0; k < kind_names_.size(); ++k) {
    if (k) out += ",";
    out += "\"" + kind_names_[k] + "\"";
  }
  out += "]}\n";
  for (const WearSample& s : samples_) {
    out += jsonl_line(s);
    out += "\n";
  }
  return out;
}

bool WearSeries::write_jsonl(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_jsonl();
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return n == body.size();
}

}  // namespace kdd::obs
