#include "obs/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kdd::obs {

namespace {

std::atomic<std::uint64_t> g_registry_serial{1};

/// Thread-local cache of (registry serial -> shard index). One entry: the
/// common case is a thread recording into exactly one registry (the global
/// one); switching registries falls back to a round-robin re-assignment,
/// which is deterministic enough and never dangles (serials are unique).
struct TlsShardCache {
  std::uint64_t serial = 0;
  std::uint32_t shard = 0;
};
thread_local TlsShardCache tls_shard_cache;

}  // namespace

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const LatencyHistogram* MetricsSnapshot::histogram(std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry()
    : gauges_(kMaxGauges),
      serial_(g_registry_serial.fetch_add(1, std::memory_order_relaxed)) {
  shards_.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->counters = std::vector<std::atomic<std::uint64_t>>(kMaxCounters);
    shard->hists.resize(kMaxHistograms);
    shards_.push_back(std::move(shard));
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_thread() {
  TlsShardCache& c = tls_shard_cache;
  if (c.serial != serial_) {
    c.serial = serial_;
    c.shard = next_shard_.fetch_add(1, std::memory_order_relaxed) % kShards;
  }
  return *shards_[c.shard];
}

MetricId MetricsRegistry::intern(std::vector<std::string>& names,
                                 std::string_view name, std::size_t cap,
                                 std::atomic<std::uint32_t>& count) {
  const std::lock_guard<std::mutex> lock(names_mu_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<MetricId>(i);
  }
  KDD_CHECK(names.size() < cap);
  names.emplace_back(name);
  count.store(static_cast<std::uint32_t>(names.size()), std::memory_order_release);
  return static_cast<MetricId>(names.size() - 1);
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return intern(counter_names_, name, kMaxCounters, counter_count_);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return intern(gauge_names_, name, kMaxGauges, gauge_count_);
}

MetricId MetricsRegistry::histogram(std::string_view name) {
  return intern(histogram_names_, name, kMaxHistograms, histogram_count_);
}

void MetricsRegistry::observe(MetricId id, std::uint64_t value) {
  Shard& shard = shard_for_thread();
  while (shard.hist_lock.test_and_set(std::memory_order_acquire)) {
    // Uncontended unless > kShards threads record histograms concurrently.
  }
  if (!shard.hists[id]) shard.hists[id] = std::make_unique<LatencyHistogram>();
  shard.hists[id]->record(value);
  shard.hist_lock.clear(std::memory_order_release);
}

std::size_t MetricsRegistry::num_counters() const {
  return counter_count_.load(std::memory_order_acquire);
}
std::size_t MetricsRegistry::num_gauges() const {
  return gauge_count_.load(std::memory_order_acquire);
}
std::size_t MetricsRegistry::num_histograms() const {
  return histogram_count_.load(std::memory_order_acquire);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  // Copy the name tables under the lock; cell reads are per-cell atomics.
  std::vector<std::string> counters, gauges, hists;
  {
    const std::lock_guard<std::mutex> lock(names_mu_);
    counters = counter_names_;
    gauges = gauge_names_;
    hists = histogram_names_;
  }
  snap.counters.resize(counters.size());
  for (std::size_t i = 0; i < counters.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters[i] = {std::move(counters[i]), total};
  }
  snap.gauges.resize(gauges.size());
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    snap.gauges[i] = {std::move(gauges[i]),
                      gauges_[i].load(std::memory_order_relaxed)};
  }
  snap.histograms.resize(hists.size());
  for (std::size_t i = 0; i < hists.size(); ++i) {
    snap.histograms[i].name = std::move(hists[i]);
    for (const auto& shard : shards_) {
      while (shard->hist_lock.test_and_set(std::memory_order_acquire)) {
      }
      if (shard->hists[i]) snap.histograms[i].hist.merge(*shard->hists[i]);
      shard->hist_lock.clear(std::memory_order_release);
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    while (shard->hist_lock.test_and_set(std::memory_order_acquire)) {
    }
    for (auto& h : shard->hists) {
      if (h) h->reset();
    }
    shard->hist_lock.clear(std::memory_order_release);
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

}  // namespace kdd::obs
