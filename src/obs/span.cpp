#include "obs/span.hpp"

#include <chrono>
#include <cstdio>

#include "obs/metrics.hpp"

namespace kdd::obs {

namespace {

/// Per-stage aggregate metric ids in the global registry, registered once.
struct StageMetrics {
  MetricId ns_total[kNumSpanStages];
  MetricId count[kNumSpanStages];
  MetricId request_ns_hist;
};

StageMetrics& stage_metrics() {
  static StageMetrics* m = [] {
    auto* sm = new StageMetrics();
    MetricsRegistry& reg = MetricsRegistry::global();
    for (int s = 0; s < kNumSpanStages; ++s) {
      sm->ns_total[s] =
          reg.counter(std::string("kdd_span_stage_ns_total{stage=\"") +
                      stage_name(static_cast<Stage>(s)) + "\"}");
      sm->count[s] = reg.counter(std::string("kdd_span_stage_count{stage=\"") +
                                 stage_name(static_cast<Stage>(s)) + "\"}");
    }
    sm->request_ns_hist = reg.histogram("kdd_request_ns");
    return sm;
  }();
  return *m;
}

std::atomic<std::uint64_t> g_next_request_id{1};

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kRequest: return "request";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kDeltaEncode: return "delta_encode";
    case Stage::kDezCommit: return "dez_commit";
    case Stage::kRmw: return "rmw";
    case Stage::kParity: return "parity";
    case Stage::kDevice: return "device";
    case Stage::kRetry: return "retry";
    case Stage::kMetadataLog: return "metadata_log";
    case Stage::kClean: return "clean";
    case Stage::kDeltaLoad: return "delta_load";
    case Stage::kXorFold: return "xor_fold";
    case Stage::kDestageWrite: return "destage_write";
    case Stage::kHeal: return "heal";
    case Stage::kRecovery: return "recovery";
    case Stage::kNumStages: break;
  }
  return "?";
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

std::atomic<bool>& TraceBuffer::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

std::atomic<std::uint32_t>& TraceBuffer::sample_period_flag() {
  static std::atomic<std::uint32_t> period{1};
  return period;
}

void TraceBuffer::set_sample_period(std::uint32_t period) {
  sample_period_flag().store(period > 0 ? period : 1,
                             std::memory_order_relaxed);
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* instance = new TraceBuffer();  // never destroyed
  return *instance;
}

void TraceBuffer::set_enabled(bool on) {
  if (on) {
    // Registering the stage metrics up front keeps the recording path free
    // of registration locks.
    stage_metrics();
  }
  enabled_flag().store(on, std::memory_order_relaxed);
}

void TraceBuffer::set_capacity(std::size_t spans) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_ = spans > 0 ? spans : 1;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  wrapped_ = false;
}

void TraceBuffer::record(const SpanEvent& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    next_ = ring_.size() == capacity_ ? 0 : ring_.size();
    return;
  }
  // Branch instead of modulo: capacity is a runtime value, and the divide
  // showed up in the perf gate's instrumented replay (every sampled span
  // lands here).
  ring_[next_] = ev;
  ++next_;
  if (next_ == capacity_) next_ = 0;
  wrapped_ = true;
  ++dropped_;
}

void TraceBuffer::instant(std::string name) {
  InstantEvent ev;
  ev.ts_ns = monotonic_ns();
  ev.tid = thread_ordinal();
  ev.name = std::move(name);
  const std::lock_guard<std::mutex> lock(mu_);
  // Instants are rare (log mirror); cap generously to stay bounded.
  if (instants_.size() < 65536) instants_.push_back(std::move(ev));
}

std::vector<SpanEvent> TraceBuffer::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<InstantEvent> TraceBuffer::instants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instants_;
}

std::uint64_t TraceBuffer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  instants_.clear();
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string TraceBuffer::chrome_trace_json() const {
  const std::vector<SpanEvent> evs = spans();
  const std::vector<InstantEvent> ins = instants();
  std::string out;
  out.reserve(evs.size() * 96 + ins.size() * 96 + 128);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const SpanEvent& ev : evs) {
    // Complete ("X") events; ts/dur in microseconds (fractional allowed).
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"%s\",\"cat\":\"kdd\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":{\"request\":%llu}}",
                  first ? "" : ",", stage_name(ev.stage), ev.tid,
                  static_cast<double>(ev.start_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0,
                  static_cast<unsigned long long>(ev.request));
    out += buf;
    first = false;
  }
  for (const InstantEvent& ev : ins) {
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"", first ? "" : ",");
    out += buf;
    append_json_escaped(out, ev.name);
    std::snprintf(buf, sizeof buf,
                  "\",\"cat\":\"log\",\"ph\":\"i\",\"s\":\"t\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f}",
                  ev.tid, static_cast<double>(ev.ts_ns) / 1000.0);
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

bool TraceBuffer::write_chrome_trace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

// ---------------------------------------------------------------------------
// TraceContext / scopes
// ---------------------------------------------------------------------------

TraceContextScope::TraceContextScope(Stage root_stage, bool always_sample)
    : root_stage_(root_stage) {
  if (!TraceBuffer::enabled()) return;
  detail::TraceTlsState& tls = detail::g_trace_tls;
  if (!always_sample) {
    const std::uint32_t period = TraceBuffer::sample_period();
    if (period > 1) {
      // Wrap-around compare instead of `tick % period`: integer division by
      // a runtime divisor costs tens of cycles and this runs once per
      // request. Losing the draw skips the context install entirely — the
      // root and its nested spans (which see no ambient context) skip
      // together, so the unsampled fast path is three loads and a branch.
      if (++tls.tick >= period) tls.tick = 0;
      if (tls.tick != 0) return;
    }
  }
  prev_ = tls.ctx;
  tls.ctx = &ctx_;
  installed_ = true;
  active_ = true;
  ctx_.request_id = g_next_request_id.fetch_add(1, std::memory_order_relaxed);
  start_ns_ = monotonic_ns();
}

TraceContextScope::~TraceContextScope() {
  if (installed_) detail::g_trace_tls.ctx = prev_;
  if (!active_) return;
  const std::uint64_t end_ns = monotonic_ns();
  SpanEvent ev;
  ev.stage = root_stage_;
  ev.tid = thread_ordinal();
  ev.request = ctx_.request_id;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  TraceBuffer::global().record(ev);
  StageMetrics& sm = stage_metrics();
  MetricsRegistry& reg = MetricsRegistry::global();
  const int s = static_cast<int>(root_stage_);
  reg.add(sm.ns_total[s], ev.dur_ns);
  reg.add(sm.count[s], 1);
  if (root_stage_ == Stage::kRequest) {
    reg.observe(sm.request_ns_hist, ev.dur_ns);
  }
}

void SpanScope::begin(Stage stage) {
  active_ = true;
  stage_ = stage;
  start_ns_ = monotonic_ns();
}

void SpanScope::end() {
  const std::uint64_t end_ns = monotonic_ns();
  SpanEvent ev;
  ev.stage = stage_;
  ev.tid = thread_ordinal();
  ev.request = detail::g_trace_tls.ctx ? detail::g_trace_tls.ctx->request_id : 0;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  TraceBuffer::global().record(ev);
  StageMetrics& sm = stage_metrics();
  MetricsRegistry& reg = MetricsRegistry::global();
  const int s = static_cast<int>(stage_);
  reg.add(sm.ns_total[s], ev.dur_ns);
  reg.add(sm.count[s], 1);
}

void register_span_metrics() { stage_metrics(); }

}  // namespace kdd::obs
