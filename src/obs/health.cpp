#include "obs/health.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/check.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"

namespace kdd::obs {

// ---------------------------------------------------------------------------
// Rolling-window primitives
// ---------------------------------------------------------------------------

namespace {

inline std::uint64_t window_buckets(std::uint64_t window_us,
                                    std::uint64_t bucket_us) {
  return std::max<std::uint64_t>(1, window_us / bucket_us);
}

/// Rings are sized up to a power of two so slot indexing is a mask, not a
/// divide. The spare slots just extend retention; window queries filter by
/// epoch stamp, so they never see stale buckets.
inline std::size_t ring_pow2(std::size_t slots) {
  return std::bit_ceil(std::max<std::size_t>(1, slots));
}

/// True when `epoch` (a stamped slot) falls inside the last `n` buckets
/// ending at `cur` — i.e. (cur - n, cur]. Empty slots never match.
inline bool epoch_in_window(std::uint64_t epoch, std::uint64_t cur,
                            std::uint64_t n, std::uint64_t empty) {
  return epoch != empty && epoch <= cur && epoch + n > cur;
}

}  // namespace

RollingCounter::RollingCounter(std::uint64_t bucket_us, std::size_t slots,
                               std::uint64_t fast_buckets,
                               std::uint64_t slow_buckets)
    : bucket_us_(bucket_us > 0 ? bucket_us : 1),
      cells_(ring_pow2(slots)),
      mask_(cells_.size() - 1),
      fast_n_(fast_buckets > 0 ? fast_buckets : cells_.size()),
      slow_n_(slow_buckets > 0 ? slow_buckets : cells_.size()) {}

void RollingCounter::advance(std::uint64_t now_us) {
  const std::uint64_t epoch = epoch_cache_.get(now_us, bucket_us_);
  if (epoch <= cur_epoch_) return;
  const std::uint64_t steps = epoch - cur_epoch_;
  // Per window: a jump of >= n buckets empties it outright (no adds landed
  // in the skipped epochs — add() advances first), otherwise subtract each
  // departing bucket once. The loop is bounded by n, so an idle gap of any
  // length costs at most one ring's worth of lookups. Each bucket is
  // subtracted exactly once across successive advances (the departing
  // ranges are consecutive and disjoint), and a zeroing jump only skips
  // buckets that future advances can never target again. A window whose
  // cached sum is already 0 holds only zero-valued buckets (counts are
  // non-negative), so its expiry loop is skipped outright — idle rings
  // (e.g. reject/submission counters in a sync replay) cost nothing here.
  if (fast_sum_ != 0) {
    if (steps >= fast_n_) {
      fast_sum_ = 0;
    } else {
      for (std::uint64_t e = cur_epoch_ + 1; e <= epoch; ++e) {
        if (e >= fast_n_) fast_sum_ -= value_at(e - fast_n_);
      }
    }
  }
  if (slow_sum_ != 0) {
    if (steps >= slow_n_) {
      slow_sum_ = 0;
    } else {
      for (std::uint64_t e = cur_epoch_ + 1; e <= epoch; ++e) {
        if (e >= slow_n_) slow_sum_ -= value_at(e - slow_n_);
      }
    }
  }
  cur_epoch_ = epoch;
}

void RollingCounter::add(std::uint64_t now_us, std::uint64_t n) {
  advance(now_us);
  const std::uint64_t epoch = epoch_cache_.get(now_us, bucket_us_);
  Cell& c = cells_[static_cast<std::size_t>(epoch) & mask_];
  if (c.epoch != epoch) {
    c.epoch = epoch;
    c.sum = 0;
  }
  c.sum += n;
  // A current-epoch add is inside both cached windows by construction; a
  // late-stamped add (behind the advanced clock) still lands in them as
  // long as its bucket has not slid out.
  if (epoch + fast_n_ > cur_epoch_) fast_sum_ += n;
  if (epoch + slow_n_ > cur_epoch_) slow_sum_ += n;
}

std::uint64_t RollingCounter::sum(std::uint64_t now_us,
                                  std::uint64_t window_us) const {
  const std::uint64_t cur = now_us / bucket_us_;
  const std::uint64_t n =
      std::min<std::uint64_t>(window_buckets(window_us, bucket_us_),
                              cells_.size());
  std::uint64_t total = 0;
  for (const Cell& c : cells_) {
    if (epoch_in_window(c.epoch, cur, n, kEmpty)) total += c.sum;
  }
  return total;
}

void RollingCounter::reset() {
  std::fill(cells_.begin(), cells_.end(), Cell{});
  cur_epoch_ = 0;
  fast_sum_ = 0;
  slow_sum_ = 0;
}

RollingMax::RollingMax(std::uint64_t bucket_us, std::size_t slots)
    : bucket_us_(bucket_us > 0 ? bucket_us : 1),
      cells_(ring_pow2(slots)),
      mask_(cells_.size() - 1) {}

void RollingMax::record(std::uint64_t now_us, std::uint64_t v) {
  const std::uint64_t epoch = epoch_cache_.get(now_us, bucket_us_);
  Cell& c = cells_[static_cast<std::size_t>(epoch) & mask_];
  if (c.epoch != epoch) {
    c.epoch = epoch;
    c.max = 0;
  }
  c.max = std::max(c.max, v);
}

std::uint64_t RollingMax::max(std::uint64_t now_us,
                              std::uint64_t window_us) const {
  const std::uint64_t cur = now_us / bucket_us_;
  const std::uint64_t n =
      std::min<std::uint64_t>(window_buckets(window_us, bucket_us_),
                              cells_.size());
  std::uint64_t best = 0;
  for (const Cell& c : cells_) {
    if (epoch_in_window(c.epoch, cur, n, kEmpty)) best = std::max(best, c.max);
  }
  return best;
}

void RollingMax::reset() { std::fill(cells_.begin(), cells_.end(), Cell{}); }

RollingHistogram::RollingHistogram(std::uint64_t bucket_us, std::size_t slots,
                                   std::uint64_t fast_buckets,
                                   std::uint64_t slow_buckets)
    : bucket_us_(bucket_us > 0 ? bucket_us : 1),
      slots_(ring_pow2(slots)),
      counts_(slots_.size()),
      mask_(slots_.size() - 1),
      fast_n_(fast_buckets > 0 ? fast_buckets : slots_.size()),
      slow_n_(slow_buckets > 0 ? slow_buckets : slots_.size()) {}

void RollingHistogram::advance(std::uint64_t now_us) {
  const std::uint64_t epoch = epoch_cache_.get(now_us, bucket_us_);
  if (epoch <= cur_epoch_) return;
  const std::uint64_t steps = epoch - cur_epoch_;
  // Same expiry scheme as RollingCounter::advance, over the dense count
  // cells. bad <= total per bucket, so an all-zero count window implies an
  // all-zero bad window and both skip together.
  if (fast_count_ != 0) {
    if (steps >= fast_n_) {
      fast_count_ = 0;
      fast_bad_ = 0;
    } else {
      for (std::uint64_t e = cur_epoch_ + 1; e <= epoch; ++e) {
        if (e < fast_n_) continue;
        const CountCell& c =
            counts_[static_cast<std::size_t>(e - fast_n_) & mask_];
        if (c.epoch == e - fast_n_) {
          fast_count_ -= c.total;
          fast_bad_ -= c.bad;
        }
      }
    }
  }
  if (slow_count_ != 0) {
    if (steps >= slow_n_) {
      slow_count_ = 0;
      slow_bad_ = 0;
    } else {
      for (std::uint64_t e = cur_epoch_ + 1; e <= epoch; ++e) {
        if (e < slow_n_) continue;
        const CountCell& c =
            counts_[static_cast<std::size_t>(e - slow_n_) & mask_];
        if (c.epoch == e - slow_n_) {
          slow_count_ -= c.total;
          slow_bad_ -= c.bad;
        }
      }
    }
  }
  cur_epoch_ = epoch;
}

void RollingHistogram::record(std::uint64_t now_us, std::uint64_t value_us,
                              bool bad) {
  advance(now_us);
  const std::uint64_t epoch = epoch_cache_.get(now_us, bucket_us_);
  CountCell& c = counts_[static_cast<std::size_t>(epoch) & mask_];
  if (c.epoch != epoch) {
    c.epoch = epoch;
    c.total = 0;
    c.bad = 0;
  }
  ++c.total;
  c.bad += bad ? 1 : 0;
  // A current-epoch record is inside both cached windows by construction; a
  // late-stamped one (behind the advanced clock) still lands in them as
  // long as its bucket has not slid out.
  if (epoch + fast_n_ > cur_epoch_) {
    ++fast_count_;
    fast_bad_ += bad ? 1 : 0;
  }
  if (epoch + slow_n_ > cur_epoch_) {
    ++slow_count_;
    slow_bad_ += bad ? 1 : 0;
  }
  Slot& s = slots_[static_cast<std::size_t>(epoch) & mask_];
  if (s.epoch != epoch) {
    s.epoch = epoch;
    s.inline_n = 0;
    s.spilled = false;
  }
  if (!s.spilled) {
    if (s.inline_n < kInlineSamples) {
      s.samples[s.inline_n++] = value_us;
      return;
    }
    // Bucket went dense: spill the inline samples into the slot's histogram
    // (allocated once, reused across rotations) and append there from now on.
    if (!s.hist) s.hist = std::make_unique<LatencyHistogram>();
    s.hist->reset();
    for (std::uint32_t i = 0; i < s.inline_n; ++i) s.hist->record(s.samples[i]);
    s.spilled = true;
  }
  s.hist->record(value_us);
}

void RollingHistogram::merge_window(std::uint64_t now_us,
                                    std::uint64_t window_us,
                                    LatencyHistogram* out) const {
  out->reset();
  const std::uint64_t cur = now_us / bucket_us_;
  const std::uint64_t n =
      std::min<std::uint64_t>(window_buckets(window_us, bucket_us_),
                              slots_.size());
  for (const Slot& s : slots_) {
    if (!epoch_in_window(s.epoch, cur, n, kEmpty)) continue;
    if (s.spilled) {
      out->merge(*s.hist);
    } else {
      for (std::uint32_t i = 0; i < s.inline_n; ++i) out->record(s.samples[i]);
    }
  }
}

std::uint64_t RollingHistogram::count(std::uint64_t now_us,
                                      std::uint64_t window_us) const {
  const std::uint64_t cur = now_us / bucket_us_;
  const std::uint64_t n =
      std::min<std::uint64_t>(window_buckets(window_us, bucket_us_),
                              slots_.size());
  std::uint64_t total = 0;
  for (const CountCell& c : counts_) {
    if (epoch_in_window(c.epoch, cur, n, kEmpty)) total += c.total;
  }
  return total;
}

std::uint64_t RollingHistogram::bad_count(std::uint64_t now_us,
                                          std::uint64_t window_us) const {
  const std::uint64_t cur = now_us / bucket_us_;
  const std::uint64_t n =
      std::min<std::uint64_t>(window_buckets(window_us, bucket_us_),
                              slots_.size());
  std::uint64_t total = 0;
  for (const CountCell& c : counts_) {
    if (epoch_in_window(c.epoch, cur, n, kEmpty)) total += c.bad;
  }
  return total;
}

void RollingHistogram::reset() {
  for (Slot& s : slots_) {
    s.epoch = kEmpty;
    s.inline_n = 0;
    s.spilled = false;
  }
  std::fill(counts_.begin(), counts_.end(), CountCell{});
  cur_epoch_ = 0;
  fast_count_ = 0;
  slow_count_ = 0;
  fast_bad_ = 0;
  slow_bad_ = 0;
}

// ---------------------------------------------------------------------------
// HealthEngine
// ---------------------------------------------------------------------------

const char* alert_rule_name(AlertRule r) {
  switch (r) {
    case AlertRule::kLatencyBurn: return "latency_burn";
    case AlertRule::kHitRatioCollapse: return "hit_ratio_collapse";
    case AlertRule::kRejectSpike: return "admission_reject_spike";
    case AlertRule::kQueueStall: return "queue_stall";
    case AlertRule::kWearImbalance: return "wear_imbalance";
    case AlertRule::kArrayDegraded: return "array_degraded";
    case AlertRule::kNumRules: break;
  }
  return "unknown";
}

namespace {

/// Ring size: the slow window plus the current partial bucket.
std::size_t ring_slots(const HealthConfig& cfg) {
  return static_cast<std::size_t>(
      window_buckets(cfg.slow_window_us, cfg.bucket_us) + 1);
}

std::uint64_t fast_n(const HealthConfig& cfg) {
  return window_buckets(cfg.fast_window_us, cfg.bucket_us);
}

std::uint64_t slow_n(const HealthConfig& cfg) {
  return window_buckets(cfg.slow_window_us, cfg.bucket_us);
}

}  // namespace

HealthEngine::HealthEngine(HealthConfig cfg, MetricsRegistry* registry)
    : cfg_(cfg),
      latency_(cfg_.bucket_us, ring_slots(cfg_), fast_n(cfg_), slow_n(cfg_)),
      queue_wait_(cfg_.bucket_us, ring_slots(cfg_)),
      hits_(cfg_.bucket_us, ring_slots(cfg_), fast_n(cfg_), slow_n(cfg_)),
      misses_(cfg_.bucket_us, ring_slots(cfg_), fast_n(cfg_), slow_n(cfg_)),
      submissions_(cfg_.bucket_us, ring_slots(cfg_), fast_n(cfg_),
                   slow_n(cfg_)),
      rejects_(cfg_.bucket_us, ring_slots(cfg_), fast_n(cfg_), slow_n(cfg_)),
      completions_(cfg_.bucket_us, ring_slots(cfg_), fast_n(cfg_),
                   slow_n(cfg_)),
      destage_lag_(cfg_.bucket_us, ring_slots(cfg_)) {
  KDD_CHECK(cfg_.fast_window_us <= cfg_.slow_window_us);
  for (int i = 0; i < kNumAlertRules; ++i) {
    const char* name = alert_rule_name(static_cast<AlertRule>(i));
    rules_[i].active_gauge =
        Gauge(registry, prom_series_name("kdd_alerts_active", "rule", name));
    rules_[i].fired_counter = Counter(
        registry, prom_series_name("kdd_alerts_fired_total", "rule", name));
    rules_[i].active_gauge.set(0);
  }
  burn_gauge_ = Gauge(registry, "kdd_slo_latency_burn");
  hit_ratio_gauge_ = Gauge(registry, "kdd_hit_ratio_permille");
  wear_skew_gauge_ = Gauge(registry, "kdd_wear_skew_permille");
}

HealthEngine::~HealthEngine() {
  if (installed() == this) install(nullptr);
}

std::atomic<HealthEngine*>& HealthEngine::installed_ptr() {
  static std::atomic<HealthEngine*> ptr{nullptr};
  return ptr;
}

void HealthEngine::install(HealthEngine* engine) {
  installed_ptr().store(engine, std::memory_order_release);
}

void HealthEngine::advance_locked(std::uint64_t now_us) {
  if (now_us > now_us_) now_us_ = now_us;
}

void HealthEngine::observe_request(std::uint64_t now_us,
                                   std::uint64_t latency_us) {
  std::lock_guard<SpinLock> lock(mu_);
  advance_locked(now_us);
  latency_.record(now_us_, latency_us,
                  latency_us > cfg_.slo.latency_threshold_us);
  maybe_evaluate_locked();
}

void HealthEngine::observe_requests(const std::uint64_t* now_us,
                                    const std::uint64_t* latency_us,
                                    std::size_t n) {
  if (n == 0) return;
  std::lock_guard<SpinLock> lock(mu_);
  const std::uint64_t threshold = cfg_.slo.latency_threshold_us;
  for (std::size_t i = 0; i < n; ++i) {
    advance_locked(now_us[i]);
    latency_.record(now_us_, latency_us[i], latency_us[i] > threshold);
    maybe_evaluate_locked();
  }
}

void HealthEngine::tick(std::uint64_t now_us) {
  std::lock_guard<SpinLock> lock(mu_);
  advance_locked(now_us);
  evaluate_locked();
}

void HealthEngine::observe_destage_lag(std::uint64_t now_us,
                                       std::uint64_t stale_groups) {
  std::lock_guard<SpinLock> lock(mu_);
  advance_locked(now_us);
  destage_lag_.record(now_us_, stale_groups);
}

void HealthEngine::observe_region_wear(std::size_t region, double wear) {
  std::lock_guard<SpinLock> lock(mu_);
  if (region >= region_wear_.size()) region_wear_.resize(region + 1, 0.0);
  region_wear_[region] = wear;
  wear_dirty_ = true;
}

void HealthEngine::note_queue_wait(std::uint64_t wait_ns) {
  std::lock_guard<SpinLock> lock(mu_);
  queue_wait_.record(now_us_, wait_ns / 1000);
}

void HealthEngine::note_array_state(int state) {
  std::lock_guard<SpinLock> lock(mu_);
  array_state_ = state;
}

std::uint64_t HealthEngine::now_us() const {
  std::lock_guard<SpinLock> lock(mu_);
  return now_us_;
}

void HealthEngine::maybe_evaluate_locked() {
  ++events_since_eval_;
  if (evaluated_once_ &&
      (now_us_ - last_eval_us_ < cfg_.eval_every_us ||
       events_since_eval_ < cfg_.eval_min_events)) {
    return;
  }
  evaluate_locked();
}

void HealthEngine::fold_pending_locked() {
  // Stamp the hook deltas accumulated since the last fold into the rings.
  // Plain relaxed loads: the hooks run on the simulator thread, and a value
  // racing past the load simply lands in the next fold.
  const auto fold = [this](std::atomic<std::uint64_t>& total,
                           std::uint64_t& folded, RollingCounter& ring) {
    const std::uint64_t t = total.load(std::memory_order_relaxed);
    if (t != folded) {
      ring.add(now_us_, t - folded);
      folded = t;
    }
  };
  fold(pending_hits_, folded_hits_, hits_);
  fold(pending_misses_, folded_misses_, misses_);
  fold(pending_submissions_, folded_submissions_, submissions_);
  fold(pending_rejects_, folded_rejects_, rejects_);
  fold(pending_completions_, folded_completions_, completions_);
}

HealthEngine::WindowStats HealthEngine::window_stats_locked(
    std::uint64_t window_us) const {
  WindowStats w;
  w.requests = latency_.count(now_us_, window_us);
  w.bad_requests = latency_.bad_count(now_us_, window_us);
  const double budget = 1.0 - cfg_.slo.latency_target;
  if (w.requests > 0 && budget > 0.0) {
    const double bad_frac =
        static_cast<double>(w.bad_requests) / static_cast<double>(w.requests);
    w.burn_rate = bad_frac / budget;
  }
  const std::uint64_t h = hits_.sum(now_us_, window_us);
  const std::uint64_t m = misses_.sum(now_us_, window_us);
  if (h + m > 0) {
    w.hit_ratio = static_cast<double>(h) / static_cast<double>(h + m);
  }
  LatencyHistogram merged;
  latency_.merge_window(now_us_, window_us, &merged);
  if (merged.count() > 0) {
    w.p50_us = merged.percentile_us(0.5);
    w.p99_us = merged.percentile_us(0.99);
    w.p999_us = merged.percentile_us(0.999);
  }
  return w;
}

HealthEngine::WindowStats HealthEngine::window_stats(bool fast) {
  std::lock_guard<SpinLock> lock(mu_);
  fold_pending_locked();
  return window_stats_locked(fast ? cfg_.fast_window_us : cfg_.slow_window_us);
}

double HealthEngine::wear_skew() const {
  std::lock_guard<SpinLock> lock(mu_);
  if (region_wear_.size() < 2) return 0.0;
  double total = 0.0;
  double peak = 0.0;
  for (const double w : region_wear_) {
    total += w;
    peak = std::max(peak, w);
  }
  if (total <= 0.0) return 0.0;
  const double mean = total / static_cast<double>(region_wear_.size());
  return mean > 0.0 ? peak / mean : 0.0;
}

void HealthEngine::set_alert_locked(AlertRule rule, bool active, double value) {
  RuleState& st = rules_[static_cast<int>(rule)];
  st.value = value;
  if (st.active == active) return;
  st.active = active;
  st.since_us = now_us_;
  AlertEvent ev;
  ev.t_us = now_us_;
  ev.rule = rule;
  ev.fired = active;
  ev.value = value;
  log_.push_back(ev);
  const char* name = alert_rule_name(rule);
  st.active_gauge.set(active ? 1 : 0);
  if (active) {
    ++st.fired_count;
    st.fired_counter.inc();
    KDD_LOG(Warn, "health: alert FIRED rule=%s value=%.3f t=%llu", name, value,
            static_cast<unsigned long long>(now_us_));
  } else {
    KDD_LOG(Info, "health: alert resolved rule=%s value=%.3f t=%llu", name,
            value, static_cast<unsigned long long>(now_us_));
  }
  flight_note(active ? FlightKind::kAlertFired : FlightKind::kAlertResolved,
              name, static_cast<std::int64_t>(value * 1000.0), 0);
  if (TraceBuffer::enabled()) {
    TraceBuffer::global().instant(
        std::string(active ? "alert_fired: " : "alert_resolved: ") + name);
  }
}

void HealthEngine::evaluate_locked() {
  evaluated_once_ = true;
  last_eval_us_ = now_us_;
  events_since_eval_ = 0;
  const SloObjectives& slo = cfg_.slo;
  const std::uint64_t fast_us = cfg_.fast_window_us;

  // Keep the flight recorder's clock anchored to the engine clock at eval
  // cadence, so fault-path events interleave correctly with alerts without
  // a CAS on every observed request.
  if (FlightRecorder::enabled()) {
    FlightRecorder::global().set_now_us(now_us_);
  }

  // Fold the lock-free hook totals, then expire departed buckets from every
  // cached window sum and evaluate against the cached values — the
  // evaluator must not rescan the rings (that is O(slots) per query and
  // blew the perf gate's replay budget).
  fold_pending_locked();
  latency_.advance(now_us_);
  hits_.advance(now_us_);
  misses_.advance(now_us_);
  submissions_.advance(now_us_);
  rejects_.advance(now_us_);
  completions_.advance(now_us_);

  // 1. Latency-SLO burn: both windows must burn to fire (the multi-window
  // guard); the fast window alone decides the resolve.
  {
    const std::uint64_t req_f = latency_.fast_count();
    const std::uint64_t bad_f = latency_.fast_bad();
    const std::uint64_t req_s = latency_.slow_count();
    const std::uint64_t bad_s = latency_.slow_bad();
    const double budget = 1.0 - slo.latency_target;
    const auto burn = [budget](std::uint64_t bad, std::uint64_t req) {
      if (req == 0 || budget <= 0.0) return 0.0;
      return (static_cast<double>(bad) / static_cast<double>(req)) / budget;
    };
    const double burn_f = burn(bad_f, req_f);
    const double burn_s = burn(bad_s, req_s);
    const RuleState& st = rules_[static_cast<int>(AlertRule::kLatencyBurn)];
    if (!st.active) {
      if (req_f >= slo.min_requests && burn_f >= slo.burn_fire &&
          burn_s >= slo.burn_fire) {
        set_alert_locked(AlertRule::kLatencyBurn, true, burn_f);
      } else {
        set_alert_locked(AlertRule::kLatencyBurn, false, burn_f);
      }
    } else if (burn_f < slo.burn_resolve) {
      set_alert_locked(AlertRule::kLatencyBurn, false, burn_f);
    } else {
      set_alert_locked(AlertRule::kLatencyBurn, true, burn_f);
    }
    burn_gauge_.set(static_cast<std::int64_t>(burn_s * 1000.0));
  }

  // 2. Hit-ratio collapse (fast window, with a minimum-ops floor; an idle
  // window counts as recovered).
  {
    const std::uint64_t h = hits_.fast_sum();
    const std::uint64_t m = misses_.fast_sum();
    const std::uint64_t ops = h + m;
    const double ratio =
        ops > 0 ? static_cast<double>(h) / static_cast<double>(ops) : 1.0;
    const RuleState& st =
        rules_[static_cast<int>(AlertRule::kHitRatioCollapse)];
    const bool collapsed =
        ops >= slo.min_requests && ratio < slo.hit_ratio_floor;
    if (!st.active) {
      set_alert_locked(AlertRule::kHitRatioCollapse, collapsed, ratio);
    } else {
      set_alert_locked(AlertRule::kHitRatioCollapse,
                       ops > 0 && ratio < slo.hit_ratio_floor, ratio);
    }
    if (ops > 0) {
      hit_ratio_gauge_.set(static_cast<std::int64_t>(ratio * 1000.0));
    }
  }

  // 3. Admission-reject spike (fast window over all submission attempts).
  {
    const std::uint64_t acc = submissions_.fast_sum();
    const std::uint64_t rej = rejects_.fast_sum();
    const std::uint64_t attempts = acc + rej;
    const double rate =
        attempts > 0
            ? static_cast<double>(rej) / static_cast<double>(attempts)
            : 0.0;
    const bool spiking =
        attempts >= slo.min_requests && rate >= slo.reject_rate_fire;
    set_alert_locked(AlertRule::kRejectSpike, spiking, rate);
  }

  // 4. Queue stall: inflight held high while the fast window completed
  // nothing. Needs a full fast window of history so a cold start with a
  // submit burst does not false-fire.
  {
    const std::int64_t inflight = inflight_.load(std::memory_order_relaxed);
    const std::uint64_t done_f = completions_.fast_sum();
    const bool stalled =
        inflight >= static_cast<std::int64_t>(slo.queue_stall_inflight) &&
        done_f == 0 && now_us_ >= fast_us;
    set_alert_locked(AlertRule::kQueueStall, stalled,
                     static_cast<double>(inflight));
  }

  // 5. Wear imbalance across SSD regions (hysteresis: wear converges
  // slowly, so the resolve bound sits below the fire bound). The skew only
  // moves when observe_region_wear() reports, so it is recomputed on the
  // dirty flag and reused otherwise.
  {
    if (wear_dirty_) {
      wear_dirty_ = false;
      double total = 0.0;
      double peak = 0.0;
      for (const double w : region_wear_) {
        total += w;
        peak = std::max(peak, w);
      }
      wear_total_cached_ = total;
      wear_skew_cached_ =
          (region_wear_.size() >= 2 && total > 0.0)
              ? peak / (total / static_cast<double>(region_wear_.size()))
              : 0.0;
    }
    const double skew = wear_skew_cached_;
    const RuleState& st = rules_[static_cast<int>(AlertRule::kWearImbalance)];
    const bool enough = wear_total_cached_ >= slo.wear_min_total;
    if (!st.active) {
      set_alert_locked(AlertRule::kWearImbalance,
                       enough && skew >= slo.wear_skew_fire, skew);
    } else {
      set_alert_locked(AlertRule::kWearImbalance,
                       skew > slo.wear_skew_resolve, skew);
    }
    wear_skew_gauge_.set(static_cast<std::int64_t>(skew * 1000.0));
  }

  // 6. Array-state regression: anything but healthy is an active incident.
  set_alert_locked(AlertRule::kArrayDegraded, array_state_ != 0,
                   static_cast<double>(array_state_));
}

std::vector<AlertStatus> HealthEngine::alerts() const {
  std::lock_guard<SpinLock> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(kNumAlertRules);
  for (int i = 0; i < kNumAlertRules; ++i) {
    AlertStatus st;
    st.rule = static_cast<AlertRule>(i);
    st.active = rules_[i].active;
    st.fired_count = rules_[i].fired_count;
    st.since_us = rules_[i].since_us;
    st.value = rules_[i].value;
    out.push_back(st);
  }
  return out;
}

std::vector<AlertEvent> HealthEngine::events() const {
  std::lock_guard<SpinLock> lock(mu_);
  return log_;
}

bool HealthEngine::any_active() const {
  std::lock_guard<SpinLock> lock(mu_);
  for (const RuleState& st : rules_) {
    if (st.active) return true;
  }
  return false;
}

std::string HealthEngine::health_json() {
  std::lock_guard<SpinLock> lock(mu_);
  fold_pending_locked();
  std::string out = "{\"schema\":\"kdd-health-v1\",";
  char buf[160];
  std::snprintf(buf, sizeof buf, "\"t_us\":%llu,",
                static_cast<unsigned long long>(now_us_));
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"slo\":{\"latency_threshold_us\":%llu,\"latency_target\":%.4f,"
      "\"burn_fire\":%.2f,\"burn_resolve\":%.2f,\"hit_ratio_floor\":%.3f},",
      static_cast<unsigned long long>(cfg_.slo.latency_threshold_us),
      cfg_.slo.latency_target, cfg_.slo.burn_fire, cfg_.slo.burn_resolve,
      cfg_.slo.hit_ratio_floor);
  out += buf;
  out += "\"windows\":{";
  const auto emit_window = [&](const char* key, std::uint64_t window_us,
                               bool last) {
    const WindowStats w = window_stats_locked(window_us);
    const double attainment =
        w.requests > 0 ? 1.0 - static_cast<double>(w.bad_requests) /
                                   static_cast<double>(w.requests)
                       : 1.0;
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"window_us\":%llu,\"requests\":%llu,"
                  "\"bad_requests\":%llu,\"attainment\":%.6f,",
                  key, static_cast<unsigned long long>(window_us),
                  static_cast<unsigned long long>(w.requests),
                  static_cast<unsigned long long>(w.bad_requests), attainment);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "\"burn_rate\":%.4f,\"hit_ratio\":%.4f,\"p50_us\":%llu,"
                  "\"p99_us\":%llu,\"p999_us\":%llu}%s",
                  w.burn_rate, w.hit_ratio,
                  static_cast<unsigned long long>(w.p50_us),
                  static_cast<unsigned long long>(w.p99_us),
                  static_cast<unsigned long long>(w.p999_us), last ? "" : ",");
    out += buf;
  };
  emit_window("fast", cfg_.fast_window_us, false);
  emit_window("slow", cfg_.slow_window_us, true);
  out += "},";
  double wear_total = 0.0;
  double wear_peak = 0.0;
  for (const double w : region_wear_) {
    wear_total += w;
    wear_peak = std::max(wear_peak, w);
  }
  const double skew =
      (region_wear_.size() >= 2 && wear_total > 0.0)
          ? wear_peak / (wear_total / static_cast<double>(region_wear_.size()))
          : 0.0;
  std::snprintf(buf, sizeof buf,
                "\"gauges\":{\"inflight\":%lld,\"array_state\":%d,"
                "\"destage_lag\":%llu,\"wear_skew\":%.4f,\"wear_regions\":%zu},",
                static_cast<long long>(inflight_), array_state_,
                static_cast<unsigned long long>(
                    destage_lag_.max(now_us_, cfg_.fast_window_us)),
                skew, region_wear_.size());
  out += buf;
  out += "\"alerts\":[";
  for (int i = 0; i < kNumAlertRules; ++i) {
    const RuleState& st = rules_[i];
    if (i > 0) out += ',';
    out += "{\"rule\":\"";
    out += alert_rule_name(static_cast<AlertRule>(i));
    std::snprintf(buf, sizeof buf,
                  "\",\"active\":%s,\"fired_count\":%llu,\"since_us\":%llu,"
                  "\"value\":%.4f}",
                  st.active ? "true" : "false",
                  static_cast<unsigned long long>(st.fired_count),
                  static_cast<unsigned long long>(st.since_us), st.value);
    out += buf;
  }
  out += "]}\n";
  return out;
}

}  // namespace kdd::obs
