// Wear/endurance time series: the quantitative backbone of the paper's
// lifetime argument, sampled over time instead of once at end-of-run.
//
// A WearSeries is a sequence of WearSample buckets. Each bucket carries the
// *delta* of every monotonically increasing counter over that bucket (SSD
// write traffic by kind, disk I/O, cleanings, log GC passes, fault/heal
// counters) plus point-in-time gauges at the bucket's end (DEZ occupancy,
// old pages, cleaning debt = stale parity groups outstanding, metadata-log
// fill, FTL write amplification, endurance consumed). Drivers decide the
// bucketing clock — the trace replays bucket by request count against the
// simulated clock; the torture harness buckets by seed.
//
// The obs layer is below cache/kdd, so the sample is plain data: the
// collector that knows how to poll a KddCache/CacheSsd/SsdModel lives in
// src/harness/telemetry.{hpp,cpp}. Write-kind names travel with the series
// so the JSONL exporter needs no knowledge of SsdWriteKind.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace kdd::obs {

/// Upper bound on distinct write kinds a series can carry (cache layers
/// currently use 5; headroom for future kinds).
inline constexpr std::size_t kMaxWriteKinds = 8;

struct WearSample {
  // -- Bucket identity --------------------------------------------------------
  double t = 0.0;           ///< bucket end on the driver's clock (see t_unit)
  std::uint64_t ops = 0;    ///< requests completed in this bucket

  // -- Traffic deltas over the bucket ----------------------------------------
  std::array<std::uint64_t, kMaxWriteKinds> ssd_writes_by_kind{};  ///< pages
  std::uint64_t ssd_reads = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t cleanings = 0;
  std::uint64_t groups_cleaned = 0;
  std::uint64_t log_gc_passes = 0;

  // -- Fault / self-healing deltas -------------------------------------------
  std::uint64_t media_errors = 0;
  std::uint64_t transient_errors = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t media_fallbacks = 0;
  std::uint64_t groups_healed = 0;
  std::uint64_t read_repairs = 0;

  // -- Gauges at bucket end ---------------------------------------------------
  std::uint64_t dez_pages = 0;      ///< DEZ occupancy (pages holding deltas)
  std::uint64_t old_pages = 0;      ///< DAZ pages in state old
  std::uint64_t stale_groups = 0;   ///< cleaning debt outstanding
  std::uint64_t staged_deltas = 0;  ///< NVRAM staging occupancy
  std::uint64_t log_used_pages = 0; ///< metadata-log fill (pages)
  std::uint64_t dez_live_bytes = 0;  ///< packed delta bytes still referenced
  std::uint64_t dez_dead_bytes = 0;  ///< fragmentation the delta-zone GC can reclaim
  std::uint64_t dez_boundary_pages = 0;  ///< adaptive DAZ/DEZ cap (0 = static)
  std::uint64_t dez_spare_pages = 0;     ///< elastic spare under the boundary
  double write_amplification = 0.0; ///< FTL WA so far (prototype mode)
  double endurance_consumed = 0.0;  ///< fraction of P/E budget burned

  // -- Latency over the bucket ------------------------------------------------
  double mean_latency_us = 0.0;
  std::uint64_t max_latency_us = 0;
};

class WearSeries {
 public:
  /// `t_unit` documents the bucket clock ("sim_us", "requests", "seed", ...).
  explicit WearSeries(std::string t_unit = "requests");

  void set_kind_names(std::vector<std::string> names);
  const std::vector<std::string>& kind_names() const { return kind_names_; }
  const std::string& t_unit() const { return t_unit_; }

  void add(const WearSample& sample) { samples_.push_back(sample); }
  const std::vector<WearSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// One JSONL line (no trailing newline) for `sample`, keyed field names,
  /// write kinds expanded as ssd_writes_<kind>.
  std::string jsonl_line(const WearSample& sample) const;

  /// Whole-series JSONL: a `{"schema":...}` header line, then one line per
  /// bucket. Returns false when the file cannot be written.
  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  static constexpr const char* kSchema = "kdd-telemetry-timeseries-v1";

 private:
  std::string t_unit_;
  std::vector<std::string> kind_names_;
  std::vector<WearSample> samples_;
};

}  // namespace kdd::obs
