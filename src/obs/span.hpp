// Per-I/O spans: stage-attributed timing of each request, with an ambient
// (thread-local) TraceContext threaded through KddCache -> RaidArray /
// ParityLogRaid -> BlockDevice/SsdModel so every layer can open a span
// without plumbing an argument through each call.
//
// Two sinks, both optional and both cheap when off:
//  * The global MetricsRegistry: every closed span adds its duration to
//    kdd_span_stage_ns_total{stage} and kdd_span_stage_count{stage}, and the
//    request root additionally feeds the kdd_request_ns histogram. These
//    aggregates are what the exporter snapshot reports and what the
//    reconciliation check in tools/CI validates: the per-stage sums are
//    bounded by (and in aggregate explain) the end-to-end request time.
//  * The TraceBuffer ring: bounded in memory, drained into Chrome
//    `trace_event` JSON (chrome://tracing / Perfetto "Open trace file") for
//    flamegraph inspection of individual requests.
//
// Gating: tracing_enabled() is one relaxed atomic load. When false,
// SpanScope's constructor does a single load and nothing else — measured at
// ~1 ns by bench/perf_gate (span_disabled case) — so the instrumentation can
// stay compiled into the hot paths unconditionally.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace kdd::obs {

struct TraceContext;
namespace detail {
/// Ambient per-thread trace state. One inline thread_local struct (instead
/// of scattered thread_local variables) so the hot paths touch a single TLS
/// slot; the initial-exec TLS model makes each access one fs-relative load
/// instead of a __tls_get_addr call — this matters because TraceContextScope
/// and every SpanScope site consult it once tracing is on.
struct TraceTlsState {
  TraceContext* ctx = nullptr;  ///< innermost ambient context
  std::uint32_t tick = 0;       ///< per-thread sampling wheel
};
#if defined(__GNUC__) && !defined(__APPLE__)
inline thread_local TraceTlsState g_trace_tls __attribute__((tls_model("initial-exec")));
#else
inline thread_local TraceTlsState g_trace_tls;
#endif
}  // namespace detail

/// Request-processing stages the spans attribute time to. Keep
/// stage_name() and docs/observability.md in sync when extending.
enum class Stage : std::uint8_t {
  kRequest,      ///< root: one whole read/write through the cache
  kCacheLookup,  ///< set-associative lookup + LRU bookkeeping
  kDeltaEncode,  ///< old-version read + XOR + compression (KDD write hit)
  kDezCommit,    ///< staged deltas packed + written to a DEZ page
  kRmw,          ///< conventional read-modify-write parity update
  kParity,       ///< deferred parity update (RMW fold or reconstruct)
  kDevice,       ///< raw SSD/HDD page I/O (leaf)
  kRetry,        ///< transient-error retry backoff absorption
  kMetadataLog,  ///< metadata-log append / GC
  kClean,        ///< background cleaning pass
  kDeltaLoad,    ///< destage stage 1: delta load/decode from NVRAM/DEZ
  kXorFold,      ///< destage stage 2: decompress + XOR fold (lock-free)
  kDestageWrite, ///< destage stage 3: batched parity RMW + page reclaim
  kHeal,         ///< group heal after a cache-media fault
  kRecovery,     ///< power-failure recovery
  kNumStages
};
inline constexpr int kNumSpanStages = static_cast<int>(Stage::kNumStages);

const char* stage_name(Stage s);

/// One closed span (or instant event when dur_ns == 0 and instant == true).
struct SpanEvent {
  Stage stage = Stage::kRequest;
  std::uint32_t tid = 0;       ///< small per-thread ordinal, not the OS tid
  std::uint64_t request = 0;   ///< TraceContext request id (0 = no context)
  std::uint64_t start_ns = 0;  ///< steady-clock, process-relative
  std::uint64_t dur_ns = 0;
};

/// Instant (log-mirror) event for the Chrome trace.
struct InstantEvent {
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;
  std::string name;
};

/// Global bounded ring of closed spans. Appends take a mutex — span
/// *closing* is not the per-ns hot path (opening is) and the buffer is only
/// written when tracing is enabled.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  /// Enables/disables span recording process-wide. Also consulted by
  /// SpanScope before reading the clock.
  static void set_enabled(bool on);
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Per-request sampling: with period N only every Nth root (per submitter
  /// thread) is traced — its root span and all nested stage spans record;
  /// the other N-1 roots skip the context install, so their nested spans
  /// (seeing no ambient context) skip too, and the whole unsampled request
  /// costs a few loads. Background passes (cleaner, flush) open sampled
  /// roots of their own; rare high-value passes (recovery, failure
  /// handling) force-sample theirs. 1 = trace everything. Sampling keeps
  /// the fig9-replay telemetry overhead inside the perf gate's 5% budget
  /// while the per-request reconciliation property still holds: a sampled
  /// root's child spans and the root are recorded or skipped together.
  static void set_sample_period(std::uint32_t period);
  static std::uint32_t sample_period() {
    return sample_period_flag().load(std::memory_order_relaxed);
  }

  /// Ring capacity in spans (oldest dropped first). Default 1 Mi spans.
  void set_capacity(std::size_t spans);

  void record(const SpanEvent& ev);
  void instant(std::string name);

  /// Copies out the buffered spans in chronological (ring) order.
  std::vector<SpanEvent> spans() const;
  std::vector<InstantEvent> instants() const;
  std::uint64_t dropped() const;
  void clear();

  /// Serialises the buffer as Chrome trace_event JSON (the
  /// {"traceEvents": [...]} object form; "X" complete events in
  /// microseconds, plus "i" instant events for the log mirror).
  std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

 private:
  static std::atomic<bool>& enabled_flag();
  static std::atomic<std::uint32_t>& sample_period_flag();

  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  std::size_t capacity_ = 1u << 20;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::vector<InstantEvent> instants_;
};

/// Monotonic process-relative nanoseconds (steady clock).
std::uint64_t monotonic_ns();

/// Small stable ordinal for the calling thread (0, 1, 2, ... in first-use
/// order) — keeps Chrome trace rows compact and deterministic-ish.
std::uint32_t thread_ordinal();

/// Ambient per-request context. Installed by TraceContextScope at the top of
/// a cache read/write or a background pass (cleaner, flush); inner layers
/// read it via current() to tag their spans with the request id.
struct TraceContext {
  std::uint64_t request_id = 0;
  /// An installed context is by definition sampled: roots that lose the
  /// sampling draw never install one (see TraceContextScope).
  bool sampled = true;
  static TraceContext* current() { return detail::g_trace_tls.ctx; }
};

/// True when a stage span opened *now* should record: an ambient root that
/// won the sampling draw is installed. Stage spans only ever record under a
/// root (request, background pass, or recovery) — a root that lost the draw
/// skips the context install entirely, so its nested spans see no context
/// and skip too, keeping the unsampled path to a couple of loads. Inline
/// (one thread-local load) because it sits on the request hot path for
/// *every* span site once tracing is on.
inline bool span_sampled() {
  return detail::g_trace_tls.ctx != nullptr;
}

/// RAII root: allocates a request id, installs the ambient context and opens
/// a Stage::kRequest span. No-op (two relaxed loads) when tracing is off and
/// metrics aggregation for spans is off.
class TraceContextScope {
 public:
  /// Foreground request root: records a Stage::kRequest span and feeds the
  /// kdd_request_ns latency histogram.
  TraceContextScope() : TraceContextScope(Stage::kRequest) {}
  /// Root for a *background* pass (cleaner, flush): installs the ambient
  /// sampling context exactly like a request root — so the pass's nested
  /// stage spans are sampled at the same 1-in-N period instead of always
  /// recording — but attributes the root span to `root_stage` and stays out
  /// of the request latency histogram. `always_sample` skips the sampling
  /// draw: rare high-value passes (recovery, failure handling) record even
  /// under aggressive request sampling.
  explicit TraceContextScope(Stage root_stage, bool always_sample = false);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext ctx_;
  TraceContext* prev_ = nullptr;
  Stage root_stage_ = Stage::kRequest;
  std::uint64_t start_ns_ = 0;
  bool installed_ = false;  ///< context published (even when not sampled)
  bool active_ = false;     ///< sampled: root span is being timed
};

/// RAII stage span. Cheap when tracing is disabled (single relaxed load).
class SpanScope {
 public:
  explicit SpanScope(Stage stage) {
    if (TraceBuffer::enabled() && span_sampled()) begin(stage);
  }
  ~SpanScope() {
    if (active_) end();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void begin(Stage stage);
  void end();

  Stage stage_ = Stage::kRequest;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Aggregate per-stage counters (ns totals and span counts) accumulated in
/// the global MetricsRegistry since process start / last reset:
/// kdd_span_stage_ns_total / kdd_span_stage_count, labelled by stage name.
void register_span_metrics();

}  // namespace kdd::obs
