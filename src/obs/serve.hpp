// Live serving surface for the health engine.
//
// Two layers, so every consumer gets the same bytes:
//
//  * HealthHandler — a no-socket, in-process request handler mapping a path
//    to a response: `/metrics` (Prometheus text exposition of the global
//    registry), `/health` (kdd-health-v1 JSON: SLO attainment, window
//    percentiles, active alerts), `/flight` (kdd-flight-v1 JSON of the
//    flight-recorder ring). CI and tests call handle() directly — fully
//    deterministic, no ports.
//
//  * ScrapeServer — a deliberately tiny blocking HTTP/1.0 server wrapping a
//    HealthHandler: one acceptor thread, one connection at a time, no
//    keep-alive, no TLS. This is a debug scrape endpoint for a human (or a
//    Prometheus dev instance) to point at a long replay — not a production
//    web server. Bind port 0 for an ephemeral port (see port()).
//
// http_get() is the matching single-shot client, used by CI to prove the
// socket path end to end without curl.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"

namespace kdd::obs {

class HealthEngine;

struct ScrapeResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
};

class HealthHandler {
 public:
  /// `engine` may be null: /health then reports engine_installed=false and
  /// /metrics + /flight still serve (they read process-global state).
  explicit HealthHandler(
      HealthEngine* engine = nullptr,
      MetricsRegistry* registry = &MetricsRegistry::global())
      : engine_(engine), registry_(registry) {}

  /// Routes `path` (query strings ignored): /metrics, /health, /flight,
  /// else 404. Never throws.
  ScrapeResponse handle(std::string_view path) const;

 private:
  HealthEngine* engine_;
  MetricsRegistry* registry_;
};

class ScrapeServer {
 public:
  explicit ScrapeServer(HealthHandler handler) : handler_(handler) {}
  ~ScrapeServer() { stop(); }

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned) and starts the acceptor
  /// thread. Returns false (with no thread started) if bind/listen fail.
  bool start(std::uint16_t port);
  /// The bound port (valid after a successful start()).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// Stops accepting, joins the acceptor thread. Idempotent.
  void stop();

  /// Connections served so far (including 404s).
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();

  HealthHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

/// Minimal HTTP/1.0 GET against 127.0.0.1:`port`. On success returns true
/// and fills `*body` with the response payload (headers stripped) and
/// `*status` with the response code. Used by CI to self-scrape.
bool http_get(std::uint16_t port, const std::string& path, std::string* body,
              int* status);

}  // namespace kdd::obs
