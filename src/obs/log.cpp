#include "obs/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/span.hpp"

namespace kdd::obs {

namespace {

int level_from_env() {
  const char* env = std::getenv("KDD_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return static_cast<int>(LogLevel::kWarn);
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') return env[0] - '0';
  struct Name {
    const char* name;
    LogLevel level;
  };
  static constexpr Name kNames[] = {
      {"error", LogLevel::kError}, {"warn", LogLevel::kWarn},
      {"info", LogLevel::kInfo},   {"debug", LogLevel::kDebug},
      {"trace", LogLevel::kTrace},
  };
  for (const Name& n : kNames) {
    if (std::strcmp(env, n.name) == 0) return static_cast<int>(n.level);
  }
  std::fprintf(stderr, "[kdd/warn] unrecognised KDD_LOG_LEVEL=%s (using warn)\n",
               env);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{level_from_env()};
  return level;
}

std::atomic<std::uint64_t> g_emitted{0};

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

void log_vprintf(LogLevel level, const char* fmt, va_list args) {
  char msg[512];
  std::vsnprintf(msg, sizeof msg, fmt, args);
  std::fprintf(stderr, "[kdd/%s] %s\n", log_level_name(level), msg);
  g_emitted.fetch_add(1, std::memory_order_relaxed);
  // Mirror into the trace buffer so flamegraphs carry the diagnostics.
  if (TraceBuffer::enabled()) {
    TraceBuffer::global().instant(std::string(log_level_name(level)) + ": " + msg);
  }
}

void log_printf(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  log_vprintf(level, fmt, args);
  va_end(args);
}

std::uint64_t log_messages_emitted() {
  return g_emitted.load(std::memory_order_relaxed);
}

}  // namespace kdd::obs
