#include "obs/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"

namespace kdd::obs {

ScrapeResponse HealthHandler::handle(std::string_view path) const {
  // Strip any query string; the endpoints take no parameters.
  const std::size_t q = path.find('?');
  if (q != std::string_view::npos) path = path.substr(0, q);

  ScrapeResponse r;
  if (path == "/metrics") {
    r.content_type = "text/plain; version=0.0.4";
    r.body = prometheus_text(registry_->snapshot());
    return r;
  }
  if (path == "/health") {
    r.content_type = "application/json";
    if (engine_ != nullptr) {
      r.body = engine_->health_json();
    } else {
      r.body = "{\"schema\":\"kdd-health-v1\",\"engine_installed\":false}\n";
    }
    return r;
  }
  if (path == "/flight") {
    r.content_type = "application/json";
    r.body = FlightRecorder::global().json("scrape");
    return r;
  }
  r.status = 404;
  r.body = "not found: /metrics /health /flight\n";
  return r;
}

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    default: return "Error";
  }
}

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool ScrapeServer::start(std::uint16_t port) {
  if (running()) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  KDD_LOG(Info, "scrape server listening on 127.0.0.1:%u",
          static_cast<unsigned>(port_));
  return true;
}

void ScrapeServer::serve_loop() {
  while (running()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running()) break;
      continue;
    }
    // Read until the end of the request headers (or the 4 KiB cap; the
    // request line always fits well inside it).
    std::string req;
    char buf[1024];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.find("\n\n") == std::string::npos && req.size() < 4096) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    std::string path = "/";
    if (req.rfind("GET ", 0) == 0) {
      const std::size_t sp = req.find(' ', 4);
      if (sp != std::string::npos) path = req.substr(4, sp - 4);
    }
    const ScrapeResponse r = handler_.handle(path);
    char head[160];
    std::snprintf(head, sizeof head,
                  "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                  "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                  r.status, status_text(r.status), r.content_type.c_str(),
                  r.body.size());
    write_all(fd, head, std::strlen(head));
    write_all(fd, r.body.data(), r.body.size());
    ::close(fd);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ScrapeServer::stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_relaxed);
  // Shut the listening socket down to kick accept() loose, then join.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
}

bool http_get(std::uint16_t port, const std::string& path, std::string* body,
              int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  write_all(fd, req.data(), req.size());

  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (resp.rfind("HTTP/", 0) != 0) return false;
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos) return false;
  if (status != nullptr) *status = std::atoi(resp.c_str() + sp + 1);
  std::size_t hdr_end = resp.find("\r\n\r\n");
  std::size_t skip = 4;
  if (hdr_end == std::string::npos) {
    hdr_end = resp.find("\n\n");
    skip = 2;
  }
  if (hdr_end == std::string::npos) return false;
  if (body != nullptr) *body = resp.substr(hdr_end + skip);
  return true;
}

}  // namespace kdd::obs
