#include "obs/flight.hpp"

#include <cstdio>
#include <cstring>

#include "obs/export.hpp"

namespace kdd::obs {

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kStateTransition: return "state_transition";
    case FlightKind::kFault: return "fault";
    case FlightKind::kPowerCut: return "power_cut";
    case FlightKind::kRetryExhausted: return "retry_exhausted";
    case FlightKind::kDoubleFault: return "double_fault";
    case FlightKind::kAlertFired: return "alert_fired";
    case FlightKind::kAlertResolved: return "alert_resolved";
    case FlightKind::kRequestSample: return "request_sample";
    case FlightKind::kScrubRepair: return "scrub_repair";
    case FlightKind::kDumpMark: return "dump";
    case FlightKind::kNumKinds: break;
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

std::atomic<bool>& FlightRecorder::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void FlightRecorder::set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void FlightRecorder::set_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = events > 0 ? events : 1;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  wrapped_ = false;
}

void FlightRecorder::note_locked(FlightKind kind, const char* detail,
                                 std::int64_t a, std::int64_t b) {
  FlightEvent ev;
  ev.seq = seq_++;
  ev.t_us = now_us_.load(std::memory_order_relaxed);
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  if (detail != nullptr) {
    std::strncpy(ev.detail, detail, sizeof ev.detail - 1);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = ev;
    next_ = (next_ + 1) % capacity_;
    wrapped_ = true;
    ++dropped_;
  }
}

void FlightRecorder::note(FlightKind kind, const char* detail, std::int64_t a,
                          std::int64_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  note_locked(kind, detail, a, b);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  seq_ = 0;
  dropped_ = 0;
}

std::string FlightRecorder::json_locked(const char* reason) const {
  std::string out = "{\"schema\":\"kdd-flight-v1\",\"reason\":\"";
  append_json_escaped(out, reason != nullptr ? reason : "");
  out += "\",\"t_unit\":\"sim_us\",\"dropped\":";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(dropped_));
  out += buf;
  out += ",\"events\":[";
  const auto emit = [&](const FlightEvent& ev, bool first) {
    if (!first) out += ',';
    std::snprintf(buf, sizeof buf, "{\"seq\":%llu,\"t_us\":%llu,\"kind\":\"",
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<unsigned long long>(ev.t_us));
    out += buf;
    out += flight_kind_name(ev.kind);
    std::snprintf(buf, sizeof buf, "\",\"a\":%lld,\"b\":%lld,\"detail\":\"",
                  static_cast<long long>(ev.a), static_cast<long long>(ev.b));
    out += buf;
    append_json_escaped(out, ev.detail);
    out += "\"}";
  };
  bool first = true;
  if (wrapped_) {
    for (std::size_t i = next_; i < ring_.size(); ++i) {
      emit(ring_[i], first);
      first = false;
    }
    for (std::size_t i = 0; i < next_; ++i) {
      emit(ring_[i], first);
      first = false;
    }
  } else {
    for (const FlightEvent& ev : ring_) {
      emit(ev, first);
      first = false;
    }
  }
  out += "]}\n";
  return out;
}

std::string FlightRecorder::json(const char* reason) const {
  std::lock_guard<std::mutex> lock(mu_);
  return json_locked(reason);
}

bool FlightRecorder::dump(const std::string& path, const char* reason) {
  std::string body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    note_locked(FlightKind::kDumpMark, reason, 0, 0);
    body = json_locked(reason);
  }
  return write_text_file(path, body);
}

void FlightRecorder::set_auto_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto_dump_path_ = std::move(path);
}

bool FlightRecorder::auto_dump(const char* reason) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = auto_dump_path_;
  }
  if (path.empty()) return false;
  return dump(path, reason);
}

}  // namespace kdd::obs
