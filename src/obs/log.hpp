// Tiny leveled logger for diagnostics (NOT for bench/table output, which is
// the binaries' product and stays on stdout).
//
//  * Level comes from the KDD_LOG_LEVEL environment variable — "error",
//    "warn", "info", "debug", "trace" or 0..4 — read once at first use;
//    set_log_level() overrides it programmatically. Default: warn.
//  * Messages go to stderr as "[kdd/<level>] <msg>\n".
//  * Every emitted message is also mirrored into the observability trace
//    buffer (obs/span.hpp) as a Chrome instant event when tracing is on, so
//    a flamegraph shows *why* a request stalled (e.g. "heal_group g=12")
//    inline with its spans.
//
// KDD_LOG(level, fmt, ...) compiles to a single branch when the level is
// filtered out — cheap enough for fault paths in the data plane.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>

namespace kdd::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Current threshold (messages at or below it are emitted).
LogLevel log_level();
void set_log_level(LogLevel level);
const char* log_level_name(LogLevel level);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// printf-style emit (unconditional; use KDD_LOG for the filtered path).
void log_printf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void log_vprintf(LogLevel level, const char* fmt, va_list args);

/// Messages emitted since process start (all levels; tests assert on this).
std::uint64_t log_messages_emitted();

}  // namespace kdd::obs

/// Filtered logging macro: KDD_LOG(Warn, "media error on page %llu", p).
#define KDD_LOG(level, ...)                                            \
  do {                                                                 \
    if (::kdd::obs::log_enabled(::kdd::obs::LogLevel::k##level)) {     \
      ::kdd::obs::log_printf(::kdd::obs::LogLevel::k##level,           \
                             __VA_ARGS__);                             \
    }                                                                  \
  } while (0)
