#include "obs/export.hpp"

#include <cstdio>
#include <string>
#include <string_view>

namespace kdd::obs {

namespace {

/// Family name = metric name up to the first '{' (Prometheus TYPE comments
/// apply to the family, not to one labelled series).
std::string_view family_of(std::string_view name) {
  const std::size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

/// Emits "# TYPE <family> <kind>" once per family (input is sorted by name,
/// so equal families are adjacent).
void maybe_type_line(std::string& out, std::string_view family,
                     const char* kind, std::string* last_family) {
  if (*last_family == family) return;
  *last_family = std::string(family);
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += kind;
  out += '\n';
}

/// `foo` -> `foo{quantile="0.5"}`; `foo{a="b"}` -> `foo{a="b",quantile="0.5"}`.
std::string with_quantile_label(std::string_view name, const char* q) {
  std::string out;
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    out = std::string(name) + "{quantile=\"" + q + "\"}";
    return out;
  }
  // Insert before the closing brace.
  out = std::string(name.substr(0, name.size() - 1));
  out += ",quantile=\"";
  out += q;
  out += "\"}";
  return out;
}

void append_line_u64(std::string& out, std::string_view name,
                     std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, " %llu\n",
                static_cast<unsigned long long>(v));
  out += name;
  out += buf;
}

void append_line_i64(std::string& out, std::string_view name, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, " %lld\n", static_cast<long long>(v));
  out += name;
  out += buf;
}

void append_line_f64(std::string& out, std::string_view name, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, " %.6g\n", v);
  out += name;
  out += buf;
}

struct HistSummary {
  std::uint64_t count;
  double sum_us;
  std::uint64_t p50;
  std::uint64_t p90;
  std::uint64_t p99;
  std::uint64_t max;
};

HistSummary summarize(const LatencyHistogram& h) {
  HistSummary s{};
  s.count = h.count();
  s.sum_us = h.mean_us() * static_cast<double>(h.count());
  s.p50 = h.percentile_us(0.5);
  s.p90 = h.percentile_us(0.9);
  s.p99 = h.percentile_us(0.99);
  s.max = h.max_us();
  return s;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(snap.counters.size() * 64 + snap.gauges.size() * 48 +
              snap.histograms.size() * 256 + 64);

  std::string last_family;
  for (const MetricsSnapshot::CounterValue& c : snap.counters) {
    maybe_type_line(out, family_of(c.name), "counter", &last_family);
    append_line_u64(out, c.name, c.value);
  }
  last_family.clear();
  for (const MetricsSnapshot::GaugeValue& g : snap.gauges) {
    maybe_type_line(out, family_of(g.name), "gauge", &last_family);
    append_line_i64(out, g.name, g.value);
  }
  for (const MetricsSnapshot::HistogramValue& h : snap.histograms) {
    const HistSummary s = summarize(h.hist);
    const std::string_view fam = family_of(h.name);
    out += "# TYPE ";
    out += fam;
    out += " summary\n";
    append_line_u64(out, with_quantile_label(h.name, "0.5"), s.p50);
    append_line_u64(out, with_quantile_label(h.name, "0.9"), s.p90);
    append_line_u64(out, with_quantile_label(h.name, "0.99"), s.p99);
    append_line_f64(out, std::string(h.name) + "_sum", s.sum_us);
    append_line_u64(out, std::string(h.name) + "_count", s.count);
    out += "# TYPE ";
    out += fam;
    out += "_max gauge\n";
    append_line_u64(out, std::string(h.name) + "_max", s.max);
  }
  return out;
}

std::string snapshot_json(const MetricsSnapshot& snap) {
  std::string out = "{\"schema\":\"";
  out += kSnapshotSchema;
  out += "\",\"counters\":{";
  char buf[48];
  bool first = true;
  for (const MetricsSnapshot::CounterValue& c : snap.counters) {
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, c.name);
    std::snprintf(buf, sizeof buf, "\":%llu",
                  static_cast<unsigned long long>(c.value));
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricsSnapshot::GaugeValue& g : snap.gauges) {
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, g.name);
    std::snprintf(buf, sizeof buf, "\":%lld", static_cast<long long>(g.value));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const MetricsSnapshot::HistogramValue& h : snap.histograms) {
    const HistSummary s = summarize(h.hist);
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, h.name);
    out += "\":{";
    std::snprintf(buf, sizeof buf, "\"count\":%llu",
                  static_cast<unsigned long long>(s.count));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"mean_us\":%.6g",
                  s.count ? s.sum_us / static_cast<double>(s.count) : 0.0);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p50_us\":%llu",
                  static_cast<unsigned long long>(s.p50));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p99_us\":%llu",
                  static_cast<unsigned long long>(s.p99));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"max_us\":%llu}",
                  static_cast<unsigned long long>(s.max));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return n == body.size();
}

}  // namespace kdd::obs
