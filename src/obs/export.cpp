#include "obs/export.hpp"

#include <cstdio>
#include <set>
#include <string>
#include <string_view>

namespace kdd::obs {

namespace {

/// Family name = metric name up to the first '{' (Prometheus HELP/TYPE
/// comments apply to the family, not to one labelled series).
std::string_view family_of(std::string_view name) {
  const std::size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

/// One-line HELP text for the families the repo documents; families outside
/// the table fall back to a pointer at the catalogue. Keep in sync with
/// docs/observability.md.
const char* help_for(std::string_view family) {
  struct Entry {
    std::string_view family;
    const char* help;
  };
  static constexpr Entry kTable[] = {
      {"kdd_request_ns", "end-to-end request latency from root spans"},
      {"kdd_span_stage_ns_total", "nanoseconds attributed to each pipeline stage"},
      {"kdd_span_stage_count", "closed spans per pipeline stage"},
      {"kdd_array_state", "ArrayHealth: 0 healthy, 1 degraded, 2 rebuilding"},
      {"kdd_rebuild_progress", "rebuild cursor position in permille of groups"},
      {"kdd_inflight_requests", "outstanding async requests across shard queues"},
      {"kdd_queue_wait_ns", "submit-to-dequeue wait in the async shard queues"},
      {"kdd_admission_rejected_total", "async submissions bounced by admission control"},
      {"kdd_retry_exhausted_total", "with_retry budgets that ran dry"},
      {"kdd_alerts_active", "1 while the burn-rate rule is firing, else 0"},
      {"kdd_alerts_fired_total", "fire edges of each burn-rate rule"},
      {"kdd_slo_latency_burn", "slow-window latency SLO burn rate x1000"},
      {"kdd_hit_ratio_permille", "rolling fast-window cache hit ratio, permille"},
      {"kdd_wear_skew_permille", "max/mean per-region SSD wear ratio, permille"},
  };
  for (const Entry& e : kTable) {
    if (e.family == family) return e.help;
  }
  return "kdd metric (catalogue: docs/observability.md)";
}

/// Emits "# HELP" + "# TYPE" once per family across the whole export (the
/// snapshot is sorted, but labelled histograms can share a family without
/// being adjacent, so dedupe with a set rather than last-seen).
void maybe_family_header(std::string& out, std::string_view family,
                         const char* kind, std::set<std::string>* emitted) {
  if (!emitted->insert(std::string(family)).second) return;
  out += "# HELP ";
  out += family;
  out += ' ';
  out += help_for(family);
  out += '\n';
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += kind;
  out += '\n';
}

/// `foo` -> `foo{quantile="0.5"}`; `foo{a="b"}` -> `foo{a="b",quantile="0.5"}`.
std::string with_quantile_label(std::string_view name, const char* q) {
  std::string out;
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    out = std::string(name) + "{quantile=\"" + q + "\"}";
    return out;
  }
  // Insert before the closing brace.
  out = std::string(name.substr(0, name.size() - 1));
  out += ",quantile=\"";
  out += q;
  out += "\"}";
  return out;
}

void append_line_u64(std::string& out, std::string_view name,
                     std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, " %llu\n",
                static_cast<unsigned long long>(v));
  out += name;
  out += buf;
}

void append_line_i64(std::string& out, std::string_view name, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, " %lld\n", static_cast<long long>(v));
  out += name;
  out += buf;
}

void append_line_f64(std::string& out, std::string_view name, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, " %.6g\n", v);
  out += name;
  out += buf;
}

struct HistSummary {
  std::uint64_t count;
  double sum_us;
  std::uint64_t p50;
  std::uint64_t p90;
  std::uint64_t p99;
  std::uint64_t max;
};

HistSummary summarize(const LatencyHistogram& h) {
  HistSummary s{};
  s.count = h.count();
  s.sum_us = h.mean_us() * static_cast<double>(h.count());
  s.p50 = h.percentile_us(0.5);
  s.p90 = h.percentile_us(0.9);
  s.p99 = h.percentile_us(0.99);
  s.max = h.max_us();
  return s;
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string prom_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_series_name(std::string_view family, std::string_view key,
                             std::string_view value) {
  std::string out(family);
  out += '{';
  out += key;
  out += "=\"";
  out += prom_escape_label_value(value);
  out += "\"}";
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(snap.counters.size() * 96 + snap.gauges.size() * 80 +
              snap.histograms.size() * 320 + 64);

  std::set<std::string> emitted;
  for (const MetricsSnapshot::CounterValue& c : snap.counters) {
    maybe_family_header(out, family_of(c.name), "counter", &emitted);
    append_line_u64(out, c.name, c.value);
  }
  for (const MetricsSnapshot::GaugeValue& g : snap.gauges) {
    maybe_family_header(out, family_of(g.name), "gauge", &emitted);
    append_line_i64(out, g.name, g.value);
  }
  for (const MetricsSnapshot::HistogramValue& h : snap.histograms) {
    const HistSummary s = summarize(h.hist);
    const std::string_view fam = family_of(h.name);
    maybe_family_header(out, fam, "summary", &emitted);
    append_line_u64(out, with_quantile_label(h.name, "0.5"), s.p50);
    append_line_u64(out, with_quantile_label(h.name, "0.9"), s.p90);
    append_line_u64(out, with_quantile_label(h.name, "0.99"), s.p99);
    append_line_f64(out, std::string(h.name) + "_sum", s.sum_us);
    append_line_u64(out, std::string(h.name) + "_count", s.count);
    maybe_family_header(out, std::string(fam) + "_max", "gauge", &emitted);
    append_line_u64(out, std::string(h.name) + "_max", s.max);
  }
  return out;
}

std::string snapshot_json(const MetricsSnapshot& snap) {
  std::string out = "{\"schema\":\"";
  out += kSnapshotSchema;
  out += "\",\"counters\":{";
  char buf[48];
  bool first = true;
  for (const MetricsSnapshot::CounterValue& c : snap.counters) {
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, c.name);
    std::snprintf(buf, sizeof buf, "\":%llu",
                  static_cast<unsigned long long>(c.value));
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricsSnapshot::GaugeValue& g : snap.gauges) {
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, g.name);
    std::snprintf(buf, sizeof buf, "\":%lld", static_cast<long long>(g.value));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const MetricsSnapshot::HistogramValue& h : snap.histograms) {
    const HistSummary s = summarize(h.hist);
    if (!first) out += ',';
    out += '"';
    append_json_escaped(out, h.name);
    out += "\":{";
    std::snprintf(buf, sizeof buf, "\"count\":%llu",
                  static_cast<unsigned long long>(s.count));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"mean_us\":%.6g",
                  s.count ? s.sum_us / static_cast<double>(s.count) : 0.0);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p50_us\":%llu",
                  static_cast<unsigned long long>(s.p50));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p99_us\":%llu",
                  static_cast<unsigned long long>(s.p99));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"max_us\":%llu}",
                  static_cast<unsigned long long>(s.max));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return n == body.size();
}

}  // namespace kdd::obs
