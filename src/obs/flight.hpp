// Black-box flight recorder: a bounded, lock-cheap ring of the most recent
// notable events — array state transitions, injected/detected faults, alert
// fire/resolve edges, retry exhaustion, power cuts, sampled request
// summaries — kept in memory at all times and dumped to `flight.json`
// (schema kdd-flight-v1) when something goes badly wrong: a double fault
// beyond the array's tolerance, a retry budget running dry, a
// torture-harness power cut, or an explicit `kddctl dump`.
//
// Cost model mirrors the span machinery (obs/span.hpp): recording is gated
// on one relaxed atomic load, so the note() sites stay compiled into the
// fault paths unconditionally and cost ~1 ns while the recorder is off.
// When on, a note takes a mutex — fault paths are never the per-ns hot
// path — and copies a fixed-size POD event into the ring (oldest dropped
// first, with a drop counter so truncation is visible in the dump).
//
// Timestamps: core layers have no clock of their own. The harness (or the
// test) anchors the recorder to the simulator clock via set_now_us(); every
// note stamps the last anchored time, so drill and replay dumps are
// deterministic and line up with the health engine's windows.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace kdd::obs {

enum class FlightKind : std::uint8_t {
  kStateTransition,  ///< ArrayHealth changed (a = new state, b = old state)
  kFault,            ///< injected/detected device fault (a = page)
  kPowerCut,         ///< power rail cut mid-write (a = page)
  kRetryExhausted,   ///< a with_retry budget ran dry
  kDoubleFault,      ///< read beyond the array's fault tolerance (a = group)
  kAlertFired,       ///< health-engine alert raised (detail = rule)
  kAlertResolved,    ///< health-engine alert cleared (detail = rule)
  kRequestSample,    ///< sampled request summary (a = latency_us)
  kScrubRepair,      ///< scrub pass repaired parity (a = groups repaired)
  kDumpMark,         ///< a dump was requested (detail = reason)
  kNumKinds
};

const char* flight_kind_name(FlightKind k);

/// Fixed-size POD event. `detail` is a truncated NUL-terminated tag chosen
/// by the call site ("media_error_read", "latency_burn", ...); a/b are two
/// small operands whose meaning depends on the kind.
struct FlightEvent {
  std::uint64_t seq = 0;   ///< monotone per-recorder sequence number
  std::uint64_t t_us = 0;  ///< last sim-clock anchor at note() time
  FlightKind kind = FlightKind::kFault;
  std::int64_t a = 0;
  std::int64_t b = 0;
  char detail[48] = {};
};

class FlightRecorder {
 public:
  static FlightRecorder& global();

  /// Process-wide recording gate; one relaxed load on the note() fast path.
  static void set_enabled(bool on);
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Ring capacity in events (oldest dropped first). Default 4096.
  void set_capacity(std::size_t events);

  /// Anchors subsequent notes to a simulator timestamp (monotone clamp: the
  /// recorder never moves backwards, so interleaved wall-clock-free callers
  /// cannot reorder the dump).
  void set_now_us(std::uint64_t t_us) {
    std::uint64_t cur = now_us_.load(std::memory_order_relaxed);
    while (t_us > cur &&
           !now_us_.compare_exchange_weak(cur, t_us,
                                          std::memory_order_relaxed)) {
    }
  }
  std::uint64_t now_us() const { return now_us_.load(std::memory_order_relaxed); }

  void note(FlightKind kind, const char* detail, std::int64_t a = 0,
            std::int64_t b = 0);

  /// Copies out the buffered events in chronological (ring) order.
  std::vector<FlightEvent> events() const;
  std::uint64_t dropped() const;
  void clear();

  /// Serialises the ring as one kdd-flight-v1 JSON object.
  std::string json(const char* reason) const;
  /// json() to a file; appends a kDumpMark event first so the dump records
  /// its own cause. Returns false if the file could not be written.
  bool dump(const std::string& path, const char* reason);

  /// Arms automatic dumping: fault-path triggers (double fault, retry
  /// exhaustion, power cut) call auto_dump(), which writes to the armed path
  /// or does nothing when unarmed. The harness arms <out_dir>/flight.json.
  void set_auto_dump_path(std::string path);
  bool auto_dump(const char* reason);

 private:
  static std::atomic<bool>& enabled_flag();

  void note_locked(FlightKind kind, const char* detail, std::int64_t a,
                   std::int64_t b);
  std::string json_locked(const char* reason) const;

  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;
  std::size_t capacity_ = 4096;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::string auto_dump_path_;
  std::atomic<std::uint64_t> now_us_{0};
};

/// Fault-path helper: one relaxed load when the recorder is off.
inline void flight_note(FlightKind kind, const char* detail,
                        std::int64_t a = 0, std::int64_t b = 0) {
  if (FlightRecorder::enabled()) FlightRecorder::global().note(kind, detail, a, b);
}

/// Trigger helper for the catastrophic paths: records the event, then dumps
/// to the armed auto-dump path (if any).
inline void flight_note_and_dump(FlightKind kind, const char* detail,
                                 std::int64_t a = 0, std::int64_t b = 0) {
  if (!FlightRecorder::enabled()) return;
  FlightRecorder& fr = FlightRecorder::global();
  fr.note(kind, detail, a, b);
  fr.auto_dump(detail);
}

}  // namespace kdd::obs
