// RAID address layout: maps array-logical page addresses to (disk, disk page)
// with rotating parity, and defines the *parity group* — the XOR-related set
// of one page per data disk plus parity page(s) — which is the unit the KDD
// cache aligns its sets to ("DAZ pages in the same parity stripe are mapped
// to the same cache set", Section III-B).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace kdd {

enum class RaidLevel { kRaid0, kRaid5, kRaid6 };

/// Identifier of a parity group. Groups are numbered
/// stripe_row * chunk_pages + page_in_chunk, so consecutive logical pages in
/// the same chunk belong to consecutive groups.
using GroupId = std::uint64_t;

struct RaidGeometry {
  RaidLevel level = RaidLevel::kRaid5;
  std::uint32_t num_disks = 5;
  std::uint32_t chunk_pages = 16;  ///< 64 KiB chunks at 4 KiB pages (paper default)
  std::uint64_t disk_pages = 262144;

  std::uint32_t parity_disks() const {
    switch (level) {
      case RaidLevel::kRaid0: return 0;
      case RaidLevel::kRaid5: return 1;
      case RaidLevel::kRaid6: return 2;
    }
    return 0;
  }
  std::uint32_t data_disks() const { return num_disks - parity_disks(); }

  /// Usable array capacity in pages (whole stripe rows only).
  std::uint64_t data_pages() const {
    const std::uint64_t rows = disk_pages / chunk_pages;
    return rows * chunk_pages * data_disks();
  }
  std::uint64_t stripe_rows() const { return disk_pages / chunk_pages; }
  std::uint64_t num_groups() const { return stripe_rows() * chunk_pages; }
};

/// Physical location of one page.
struct DiskAddr {
  std::uint32_t disk = 0;
  Lba page = 0;
};

class RaidLayout {
 public:
  explicit RaidLayout(const RaidGeometry& geo);

  const RaidGeometry& geometry() const { return geo_; }

  /// Logical page -> physical location.
  DiskAddr map(Lba logical) const;

  /// Logical page -> parity group containing it.
  GroupId group_of(Lba logical) const;

  /// Index of the logical page within its group's data members (0..dd-1).
  std::uint32_t index_in_group(Lba logical) const;

  /// The logical page that sits at data index `idx` of group `g`.
  Lba group_member(GroupId g, std::uint32_t idx) const;

  /// Physical location of the P parity page of group `g` (RAID-5/6).
  DiskAddr parity_addr(GroupId g) const;

  /// Physical location of the Q parity page of group `g` (RAID-6 only).
  DiskAddr q_parity_addr(GroupId g) const;

  /// Disk holding P parity for a stripe row (left-symmetric rotation).
  std::uint32_t parity_disk(std::uint64_t stripe_row) const;
  std::uint32_t q_parity_disk(std::uint64_t stripe_row) const;

  /// Disk holding data index `idx` in a stripe row.
  std::uint32_t data_disk(std::uint64_t stripe_row, std::uint32_t idx) const;

 private:
  RaidGeometry geo_;
};

}  // namespace kdd
