#include "raid/raid_array.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/page_arena.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "raid/gf256.hpp"

namespace kdd {

namespace {

struct RaidMetrics {
  obs::Counter degraded_reads;
  obs::Counter rebuild_groups;
  obs::Counter rebuild_stale_folds;
};

RaidMetrics& raid_metrics() {
  static RaidMetrics* m = [] {
    auto* rm = new RaidMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    rm->degraded_reads = obs::Counter(&reg, "kdd_degraded_reads_total");
    rm->rebuild_groups = obs::Counter(&reg, "kdd_rebuild_groups_total");
    rm->rebuild_stale_folds = obs::Counter(&reg, "kdd_rebuild_stale_folds_total");
    return rm;
  }();
  return *m;
}

// Solves for two lost data members i, j of a RAID-6 group given the partial
// sums P' = P ^ sum(known D_k) and Q' = Q ^ sum(g^k D_k):
//   D_i = (Q' ^ g^j * P') / (g^i ^ g^j),   D_j = P' ^ D_i.
void solve_two_erasures(std::uint32_t i, std::uint32_t j, const Page& p_prime,
                        const Page& q_prime, Page& di, Page& dj) {
  const std::uint8_t gi = gf256::exp(i);
  const std::uint8_t gj = gf256::exp(j);
  const std::uint8_t denom_inv = gf256::inv(static_cast<std::uint8_t>(gi ^ gj));
  di.assign(kPageSize, 0);
  gf256::mul_acc(di, gj, p_prime);
  xor_into(di, q_prime);
  gf256::scale(di, denom_inv);
  dj.resize(kPageSize);
  xor_pages3(dj, p_prime, di);
}

/// Page-level fault: the device is alive but this page's contents are gone
/// (kMediaError) or untrustworthy (kCorrupt). Both are recoverable from
/// parity; both must count as an erasure of that page.
bool page_fault(IoStatus st) {
  return st == IoStatus::kMediaError || st == IoStatus::kCorrupt;
}

}  // namespace

RaidArray::RaidArray(const RaidGeometry& geo) : layout_(geo) {
  media_.reserve(geo.num_disks);
  disks_.reserve(geo.num_disks);
  for (std::uint32_t i = 0; i < geo.num_disks; ++i) {
    media_.push_back(std::make_unique<MemBlockDevice>(geo.disk_pages));
    FaultConfig fc;
    // Checksum-verified reads by default: the array detects silent bit rot
    // (kCorrupt) the way production arrays rely on T10-DIF / on-media ECC.
    fc.verify_reads = true;
    fc.seed = 0x9e3779b97f4a7c15ull + i;
    disks_.push_back(std::make_unique<FaultInjectingDevice>(media_.back().get(), fc));
  }
}

void RaidArray::attach_rail(const std::shared_ptr<PowerRail>& rail) {
  for (auto& d : disks_) d->attach_rail(rail);
}

IoStatus RaidArray::dev_read(std::uint32_t disk, Lba page,
                             std::span<std::uint8_t> out, IoPlan* plan) {
  const RetryResult r = with_retry(
      [&] { return disks_[disk]->read(page, out); }, retry_policy_);
  if (plan && r.backoff_us != 0) plan->add_retry_delay(r.backoff_us);
  return r.status;
}

IoStatus RaidArray::dev_write(std::uint32_t disk, Lba page,
                              std::span<const std::uint8_t> data, IoPlan* plan) {
  const RetryResult r = with_retry(
      [&] { return disks_[disk]->write(page, data); }, retry_policy_);
  if (plan && r.backoff_us != 0) plan->add_retry_delay(r.backoff_us);
  return r.status;
}

bool RaidArray::group_has_failed_member(GroupId g) const {
  const RaidGeometry& geo = layout_.geometry();
  const std::uint64_t row = g / geo.chunk_pages;
  for (std::uint32_t idx = 0; idx < geo.data_disks(); ++idx) {
    if (member_down(layout_.data_disk(row, idx), g)) return true;
  }
  if (geo.level != RaidLevel::kRaid0) {
    if (member_down(layout_.parity_disk(row), g)) return true;
    if (geo.level == RaidLevel::kRaid6 && member_down(layout_.q_parity_disk(row), g)) {
      return true;
    }
  }
  return false;
}

IoStatus RaidArray::read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const DiskAddr addr = layout_.map(lba);
  const GroupId g = layout_.group_of(lba);
  if (!member_down(addr.disk, g)) {
    if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kRead});
    const IoStatus st = dev_read(addr.disk, addr.page, out, plan);
    if (st == IoStatus::kOk) return st;
    if (page_fault(st) && layout_.geometry().level != RaidLevel::kRaid0) {
      return read_repair(lba, out, plan);
    }
    if (!disks_[addr.disk]->failed()) return st;
    // Whole-device failure surfaced mid-read: fall through to degraded path.
  }
  // Degraded read: reconstruct from the surviving members of the group.
  // A stale group's parity cannot vouch for lost data — reconstructing from
  // it would fabricate plausible-but-wrong contents. Fail cleanly; the cache
  // layer folds the pending deltas and retries (delta + surviving-stripe
  // reconstruction).
  if (stale_groups_.contains(g)) return IoStatus::kFailed;
  ++degraded_reads_;
  raid_metrics().degraded_reads.inc();
  if (plan) {
    const std::size_t phase = plan->next_phase();
    const RaidGeometry& geo = layout_.geometry();
    const std::uint64_t row = g / geo.chunk_pages;
    const Lba page = row * geo.chunk_pages + g % geo.chunk_pages;
    for (std::uint32_t d = 0; d < geo.num_disks; ++d) {
      if (!member_down(d, g)) {
        plan->add(phase, {DeviceOp::Target::kHdd, d, page, IoKind::kRead});
      }
    }
  }
  return reconstruct_data(g, layout_.index_in_group(lba), out);
}

IoStatus RaidArray::read_repair(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const GroupId g = layout_.group_of(lba);
  // A stale group's parity cannot vouch for its data: reconstructing from it
  // would fabricate plausible-but-wrong contents. Fail cleanly instead —
  // never silent corruption.
  if (stale_groups_.contains(g)) return IoStatus::kFailed;
  const std::uint32_t idx = layout_.index_in_group(lba);
  if (plan) {
    const std::size_t phase = plan->next_phase();
    const RaidGeometry& geo = layout_.geometry();
    const std::uint64_t row = g / geo.chunk_pages;
    const Lba page = row * geo.chunk_pages + g % geo.chunk_pages;
    for (std::uint32_t d = 0; d < geo.num_disks; ++d) {
      const DiskAddr addr = layout_.map(lba);
      if (d != addr.disk && !member_down(d, g)) {
        plan->add(phase, {DeviceOp::Target::kHdd, d, page, IoKind::kRead});
      }
    }
  }
  if (reconstruct_data(g, idx, out) != IoStatus::kOk) return IoStatus::kFailed;
  // Write-back heals the latent sector error (and refreshes the checksum).
  const DiskAddr addr = layout_.map(lba);
  if (dev_write(addr.disk, addr.page, out, plan) == IoStatus::kOk) {
    ++read_repairs_;
    if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
  }
  // The data in `out` is valid regardless of the write-back outcome.
  return IoStatus::kOk;
}

IoStatus RaidArray::reconstruct_data(GroupId g, std::uint32_t idx,
                                     std::span<std::uint8_t> out) {
  const RaidGeometry& geo = layout_.geometry();
  if (geo.level == RaidLevel::kRaid0) return IoStatus::kFailed;
  const std::uint32_t dd = geo.data_disks();

  // Gather survivors. A page-level fault on a survivor is one more erasure.
  // All temporaries borrow from the thread-local page arena (no allocation
  // on the warm path).
  std::vector<std::uint32_t> lost_data;
  ScratchPage p_prime_sp(ScratchPage::kZeroed);  // running XOR of known data
  ScratchPage q_prime_sp(ScratchPage::kZeroed);  // running XOR of g^k * known data
  ScratchPage buf_sp;
  Page& p_prime = *p_prime_sp;
  Page& q_prime = *q_prime_sp;
  Page& buf = *buf_sp;
  for (std::uint32_t k = 0; k < dd; ++k) {
    if (k == idx) continue;
    const DiskAddr a = layout_.map(layout_.group_member(g, k));
    if (member_down(a.disk, g)) {
      lost_data.push_back(k);
      continue;
    }
    const IoStatus st = dev_read(a.disk, a.page, buf);
    if (st != IoStatus::kOk) {
      if (!page_fault(st)) return IoStatus::kFailed;
      lost_data.push_back(k);
      continue;
    }
    xor_into(p_prime, buf);
    if (geo.level == RaidLevel::kRaid6) gf256::mul_acc(q_prime, gf256::exp(k), buf);
  }
  const DiskAddr pa = layout_.parity_addr(g);
  const bool p_alive = !member_down(pa.disk, g);
  const bool q_alive = geo.level == RaidLevel::kRaid6 &&
                       !member_down(layout_.q_parity_addr(g).disk, g);

  if (lost_data.empty()) {
    // Single data erasure.
    if (p_alive) {
      ScratchPage p;
      const IoStatus st = dev_read(pa.disk, pa.page, *p);
      if (st == IoStatus::kOk) {
        // out = P ^ P' directly into the caller's buffer (fused kernel).
        xor_pages3(out, *p, p_prime);
        return IoStatus::kOk;
      }
      if (!page_fault(st)) return IoStatus::kFailed;
      // P itself is unreadable: fall through to the Q path.
    }
    if (q_alive) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      ScratchPage q;
      if (dev_read(qa.disk, qa.page, *q) != IoStatus::kOk) return IoStatus::kFailed;
      xor_into(*q, q_prime);  // q = g^idx * D_idx
      gf256::scale(*q, gf256::inv(gf256::exp(idx)));
      std::copy(q->begin(), q->end(), out.begin());
      return IoStatus::kOk;
    }
    return IoStatus::kFailed;
  }
  if (lost_data.size() == 1 && geo.level == RaidLevel::kRaid6 && p_alive && q_alive) {
    // Two data erasures (idx plus one more): need both parities.
    const DiskAddr qa = layout_.q_parity_addr(g);
    ScratchPage p;
    ScratchPage q;
    if (dev_read(pa.disk, pa.page, *p) != IoStatus::kOk) return IoStatus::kFailed;
    if (dev_read(qa.disk, qa.page, *q) != IoStatus::kOk) return IoStatus::kFailed;
    xor_into(*p, p_prime);
    xor_into(*q, q_prime);
    ScratchPage di;
    ScratchPage dj;
    solve_two_erasures(idx, lost_data[0], *p, *q, *di, *dj);
    std::copy(di->begin(), di->end(), out.begin());
    return IoStatus::kOk;
  }
  obs::flight_note_and_dump(obs::FlightKind::kDoubleFault, "reconstruct_read",
                            static_cast<std::int64_t>(g),
                            static_cast<std::int64_t>(lost_data.size()));
  return IoStatus::kFailed;  // beyond the configured fault tolerance
}

void RaidArray::compute_parity(std::span<const Page> data, Page& p, Page* q) const {
  p.assign(kPageSize, 0);
  if (q) q->assign(kPageSize, 0);
  for (std::uint32_t k = 0; k < data.size(); ++k) {
    xor_into(p, data[k]);
    if (q) gf256::mul_acc(*q, gf256::exp(k), data[k]);
  }
}

IoStatus RaidArray::write_page(Lba lba, std::span<const std::uint8_t> data,
                               IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  const DiskAddr addr = layout_.map(lba);
  if (geo.level == RaidLevel::kRaid0) {
    if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
    return dev_write(addr.disk, addr.page, data, plan);
  }
  const GroupId g = layout_.group_of(lba);
  if (group_has_failed_member(g)) return write_page_general(lba, data, plan);

  // Read-modify-write: [read old data, read parity] -> [write data, write parity].
  // RMW buffers are reused via the thread-local arena: the steady-state
  // small-write path performs no allocations.
  const DiskAddr pa = layout_.parity_addr(g);
  ScratchPage old_data_sp;
  ScratchPage parity_sp;
  Page& old_data = *old_data_sp;
  Page& parity = *parity_sp;
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  {
    // A page-level fault on either RMW read makes the delta uncomputable; the
    // reconstruct-write path recomputes parity from the full group instead
    // (and the data write below heals the faulty page). Only safe when the
    // group is not stale: write_page_general clears staleness.
    const IoStatus rd = dev_read(addr.disk, addr.page, old_data, plan);
    if (rd != IoStatus::kOk) {
      if (page_fault(rd) && !group_stale(g)) return write_page_general(lba, data, plan);
      return IoStatus::kFailed;
    }
    const IoStatus rp = dev_read(pa.disk, pa.page, parity, plan);
    if (rp != IoStatus::kOk) {
      if (page_fault(rp) && !group_stale(g)) return write_page_general(lba, data, plan);
      return IoStatus::kFailed;
    }
  }
  if (plan) {
    plan->add(read_phase, {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kRead});
    plan->add(read_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
  }
  ScratchPage delta_sp;
  Page& delta = *delta_sp;
  xor_pages3(delta, data, old_data);  // fused: no copy-then-xor
  xor_into(parity, delta);

  const std::size_t write_phase = plan ? plan->next_phase() : 0;
  if (dev_write(addr.disk, addr.page, data, plan) != IoStatus::kOk) return IoStatus::kFailed;
  if (dev_write(pa.disk, pa.page, parity, plan) != IoStatus::kOk) return IoStatus::kFailed;
  if (plan) {
    plan->add(write_phase, {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
    plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    ScratchPage q_sp;
    Page& q = *q_sp;
    const IoStatus rq = dev_read(qa.disk, qa.page, q, plan);
    if (rq != IoStatus::kOk) {
      if (page_fault(rq) && !group_stale(g)) return write_page_general(lba, data, plan);
      return IoStatus::kFailed;
    }
    gf256::mul_acc(q, gf256::exp(layout_.index_in_group(lba)), delta);
    if (dev_write(qa.disk, qa.page, q, plan) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) {
      plan->add(read_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
      plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidArray::write_page_general(Lba lba, std::span<const std::uint8_t> data,
                                       IoPlan* plan) {
  // Degraded path: gather the full group (reconstructing lost members),
  // substitute the new data, recompute parity and write what is writable.
  const RaidGeometry& geo = layout_.geometry();
  const GroupId g = layout_.group_of(lba);
  const std::uint32_t dd = geo.data_disks();
  const std::uint32_t target = layout_.index_in_group(lba);

  // A general write collapses parity to the XOR of the group's current
  // on-disk contents and erases the stale marker. On a stale group that
  // silently folds every delta the cache still counts as pending — a later
  // cache-side fold would then apply them a second time and skew parity.
  // Refuse instead: the cache folds its deltas first and retries.
  if (stale_groups_.contains(g)) return IoStatus::kFailed;

  ScratchPages members_sp(dd);
  std::vector<Page>& members = members_sp.vec();
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  for (std::uint32_t k = 0; k < dd; ++k) {
    if (k == target) continue;
    const Lba member_lba = layout_.group_member(g, k);
    const DiskAddr a = layout_.map(member_lba);
    if (!member_down(a.disk, g)) {
      const IoStatus st = dev_read(a.disk, a.page, members[k], plan);
      if (st == IoStatus::kOk) {
        if (plan) plan->add(read_phase, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
        continue;
      }
      if (!page_fault(st)) return IoStatus::kFailed;
      // Fall through: reconstruct the faulty member like a lost one.
    }
    // Reconstructing a lost member of a *stale* group would fold fabricated
    // contents into the freshly computed parity and then erase the staleness
    // marker — laundering corruption. Refuse; the cache folds its deltas
    // first and retries.
    if (stale_groups_.contains(g)) return IoStatus::kFailed;
    if (reconstruct_data(g, k, members[k]) != IoStatus::kOk) {
      return IoStatus::kFailed;
    }
  }
  members[target].assign(data.begin(), data.end());

  ScratchPage p_sp;
  ScratchPage q_sp;
  Page& p = *p_sp;
  Page& q = *q_sp;
  compute_parity(members, p, geo.level == RaidLevel::kRaid6 ? &q : nullptr);

  const std::size_t write_phase = plan ? plan->next_phase() : 0;
  const DiskAddr addr = layout_.map(lba);
  if (!member_down(addr.disk, g)) {
    if (dev_write(addr.disk, addr.page, data, plan) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
  }
  const DiskAddr pa = layout_.parity_addr(g);
  if (!member_down(pa.disk, g)) {
    if (dev_write(pa.disk, pa.page, p, plan) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    if (!member_down(qa.disk, g)) {
      if (dev_write(qa.disk, qa.page, q, plan) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  // Parity was recomputed from the group's current on-disk contents.
  stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::write_group(GroupId g, std::span<const Page> data, IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(data.size() == geo.data_disks());
  ScratchPage p_sp;
  ScratchPage q_sp;
  Page& p = *p_sp;
  Page& q = *q_sp;
  if (geo.level != RaidLevel::kRaid0) {
    compute_parity(data, p, geo.level == RaidLevel::kRaid6 ? &q : nullptr);
  }
  const std::size_t phase = plan ? plan->next_phase() : 0;
  for (std::uint32_t k = 0; k < data.size(); ++k) {
    const DiskAddr a = layout_.map(layout_.group_member(g, k));
    if (member_down(a.disk, g)) continue;
    if (dev_write(a.disk, a.page, data[k], plan) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(phase, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
  }
  if (geo.level != RaidLevel::kRaid0) {
    const DiskAddr pa = layout_.parity_addr(g);
    if (!member_down(pa.disk, g)) {
      if (dev_write(pa.disk, pa.page, p, plan) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    }
    if (geo.level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      if (!member_down(qa.disk, g)) {
        if (dev_write(qa.disk, qa.page, q, plan) != IoStatus::kOk) return IoStatus::kFailed;
        if (plan) plan->add(phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::write_page_nopar(Lba lba, std::span<const std::uint8_t> data,
                                     IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  const DiskAddr addr = layout_.map(lba);
  const GroupId g = layout_.group_of(lba);
  if (member_down(addr.disk, g)) {
    // Deferring parity is only safe when the data write itself lands; the
    // caller falls back to a conventional (degraded-capable) write.
    return IoStatus::kFailed;
  }
  if (dev_write(addr.disk, addr.page, data, plan) != IoStatus::kOk) return IoStatus::kFailed;
  if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
  stale_groups_.insert(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::update_parity_rmw(GroupId g, std::span<const GroupDelta> deltas,
                                      IoPlan* plan, bool finalize) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  const DiskAddr pa = layout_.parity_addr(g);
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  std::size_t write_phase = read_phase + 1;
  if (!member_down(pa.disk, g)) {
    ScratchPage p_sp;
    Page& p = *p_sp;
    // A page fault on the stale parity read is surfaced to the caller
    // (kMediaError/kCorrupt): an RMW cannot proceed without the old parity,
    // but a reconstruct-style update (which the caller owns the data for)
    // still can.
    const IoStatus rp = dev_read(pa.disk, pa.page, p, plan);
    if (rp != IoStatus::kOk) return rp;
    for (const GroupDelta& d : deltas) xor_into(p, *d.xor_diff);
    if (dev_write(pa.disk, pa.page, p, plan) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) {
      plan->add(read_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
      plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    }
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    if (!member_down(qa.disk, g)) {
      ScratchPage q_sp;
      Page& q = *q_sp;
      const IoStatus rq = dev_read(qa.disk, qa.page, q, plan);
      if (rq != IoStatus::kOk) return rq;
      for (const GroupDelta& d : deltas) gf256::mul_acc(q, gf256::exp(d.index), *d.xor_diff);
      if (dev_write(qa.disk, qa.page, q, plan) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) {
        plan->add(read_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
        plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  if (finalize) stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::update_parity_rmw_batch(
    std::span<const GroupParityUpdate> updates, IoPlan* plan,
    std::vector<GroupId>* failed) {
  IoStatus worst = IoStatus::kOk;
  for (const GroupParityUpdate& up : updates) {
    const IoStatus st = update_parity_rmw(up.group, up.deltas, plan, up.finalize);
    if (st != IoStatus::kOk) {
      worst = st;
      if (failed) failed->push_back(up.group);
    }
  }
  return worst;
}

IoStatus RaidArray::update_parity_reconstruct(GroupId g,
                                              std::span<const Page* const> current_data,
                                              IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  const std::uint32_t dd = geo.data_disks();
  KDD_CHECK(current_data.size() == dd);

  ScratchPages members_sp(dd);
  std::vector<Page>& members = members_sp.vec();
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  bool any_read = false;
  for (std::uint32_t k = 0; k < dd; ++k) {
    if (current_data[k] != nullptr) {
      members[k] = *current_data[k];
      continue;
    }
    const DiskAddr a = layout_.map(layout_.group_member(g, k));
    if (member_down(a.disk, g)) {
      // Same fabrication guard as write_page_general: a lost member of a
      // stale group cannot be reconstructed from the stale parity. The
      // caller must supply the member's current contents (cache-resident
      // image) or fold its deltas first.
      if (stale_groups_.contains(g)) return IoStatus::kFailed;
      if (reconstruct_data(g, k, members[k]) != IoStatus::kOk) return IoStatus::kFailed;
    } else {
      const IoStatus st = dev_read(a.disk, a.page, members[k], plan);
      if (st == IoStatus::kOk) {
        if (plan) plan->add(read_phase, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
      } else if (page_fault(st)) {
        // Recover the member from its peers; write-back heals the page so
        // the recomputed parity matches what subsequent reads will see.
        if (reconstruct_data(g, k, members[k]) != IoStatus::kOk) return IoStatus::kFailed;
        if (dev_write(a.disk, a.page, members[k], plan) != IoStatus::kOk) {
          return IoStatus::kFailed;
        }
        ++read_repairs_;
      } else {
        return IoStatus::kFailed;
      }
    }
    any_read = true;
  }
  ScratchPage p_sp;
  ScratchPage q_sp;
  Page& p = *p_sp;
  Page& q = *q_sp;
  compute_parity(members, p, geo.level == RaidLevel::kRaid6 ? &q : nullptr);

  const std::size_t write_phase = plan ? (any_read ? plan->next_phase() : read_phase) : 0;
  const DiskAddr pa = layout_.parity_addr(g);
  if (!member_down(pa.disk, g)) {
    if (dev_write(pa.disk, pa.page, p, plan) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    if (!member_down(qa.disk, g)) {
      if (dev_write(qa.disk, qa.page, q, plan) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::resync_group(GroupId g, IoPlan* plan) {
  std::vector<const Page*> none(layout_.geometry().data_disks(), nullptr);
  return update_parity_reconstruct(g, none, plan);
}

std::uint64_t RaidArray::resync_all_stale() {
  const std::vector<GroupId> groups = stale_groups();
  std::uint64_t n = 0;
  for (GroupId g : groups) {
    // A group that cannot be resynced (e.g. an unrecoverable double fault)
    // stays stale rather than crashing the whole pass.
    if (resync_group(g) == IoStatus::kOk) ++n;
  }
  return n;
}

std::vector<GroupId> RaidArray::stale_groups() const {
  std::vector<GroupId> out(stale_groups_.begin(), stale_groups_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void RaidArray::fail_disk(std::uint32_t d) {
  KDD_CHECK(d < disks_.size());
  disks_[d]->fail();
  if (d == rebuilding_disk_) {
    // The replacement disk itself died mid-rebuild: abandon the cursor; a
    // fresh spare restarts the rebuild from group 0.
    rebuilding_disk_ = kNoRebuild;
    rebuild_cursor_ = 0;
  }
}

std::uint32_t RaidArray::failed_disk_count() const {
  std::uint32_t n = 0;
  for (const auto& d : disks_) {
    if (d->failed()) ++n;
  }
  return n;
}

void RaidArray::rebuild_begin(std::uint32_t d) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  KDD_CHECK(d < disks_.size());
  KDD_CHECK(disks_[d]->failed());
  KDD_CHECK(!rebuild_active());
  // Drain deferred parity state held outside the array (parity log) while the
  // disk is still marked failed — a rebuild against a stale log would
  // reconstruct from parity that is missing logged updates.
  if (pre_rebuild_hook_) pre_rebuild_hook_(d);
  media_[d]->replace();
  // The media behind the decorator was swapped: stale checksums and latent
  // sector errors belong to the old platters.
  disks_[d]->clear_faults();
  last_rebuild_lost_.clear();
  rebuilding_disk_ = d;
  rebuild_cursor_ = 0;
  rebuild_stale_folds_ = 0;
}

void RaidArray::rebuild_resume(std::uint32_t d, GroupId cursor) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  KDD_CHECK(d < disks_.size());
  KDD_CHECK(!disks_[d]->failed());  // media already replaced by the interrupted run
  KDD_CHECK(!rebuild_active());
  KDD_CHECK(cursor <= geo.num_groups());
  if (pre_rebuild_hook_) pre_rebuild_hook_(d);
  last_rebuild_lost_.clear();
  rebuilding_disk_ = d;
  rebuild_cursor_ = cursor;
  rebuild_stale_folds_ = 0;
}

void RaidArray::rebuild_finish() {
  KDD_CHECK(rebuild_active());
  KDD_CHECK(rebuild_cursor_ >= layout_.geometry().num_groups());
  rebuilding_disk_ = kNoRebuild;
  rebuild_cursor_ = 0;
}

void RaidArray::rebuild_abandon() {
  rebuilding_disk_ = kNoRebuild;
  rebuild_cursor_ = 0;
}

bool RaidArray::rebuild_group(GroupId g, IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  const std::uint32_t d = rebuilding_disk_;
  const std::uint64_t row = g / geo.chunk_pages;
  const Lba page = row * geo.chunk_pages + g % geo.chunk_pages;
  const bool was_stale = stale_groups_.contains(g);
  if (layout_.parity_disk(row) == d ||
      (geo.level == RaidLevel::kRaid6 && layout_.q_parity_disk(row) == d)) {
    // Parity page: recompute from data — result reflects current data, so
    // any pending staleness is resolved for this group (P case).
    const bool is_q = layout_.parity_disk(row) != d;
    ScratchPages members_sp(geo.data_disks());
    std::vector<Page>& members = members_sp.vec();
    bool ok = true;
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      if (dev_read(a.disk, a.page, members[k], plan) != IoStatus::kOk) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      if (!disks_[d]->powered()) return false;  // power cut, not data loss
      // Double fault: this group's parity cannot be rebuilt now. Mark the
      // page unreadable so scrubs/reads see a clean error, and report it.
      last_rebuild_lost_.push_back(g);
      disks_[d]->inject_media_error(page);
      return true;
    }
    ScratchPage p_sp;
    ScratchPage q_sp;
    Page& p = *p_sp;
    Page& q = *q_sp;
    compute_parity(members, p, geo.level == RaidLevel::kRaid6 ? &q : nullptr);
    if (dev_write(d, page, is_q ? q : p, plan) != IoStatus::kOk &&
        !disks_[d]->powered()) {
      return false;
    }
    // Recomputing parity from current data RESOLVES any pending staleness
    // for the P case — it is not a stale fold (no data was fabricated).
    if (!is_q) stale_groups_.erase(g);
    return true;
  }
  // Data page: reconstruct from the surviving members + parity. If the
  // group's parity is stale the reconstructed contents are wrong — this is
  // the vulnerability window the paper describes; the online engine's
  // force-destage barrier (and KDD's pre-rebuild flush) keeps this zero.
  std::uint32_t idx = 0;
  bool found = false;
  for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
    if (layout_.data_disk(row, k) == d) {
      idx = k;
      found = true;
      break;
    }
  }
  KDD_CHECK(found);
  ScratchPage buf;
  if (reconstruct_data(g, idx, *buf) == IoStatus::kOk) {
    if (dev_write(d, page, *buf, plan) != IoStatus::kOk && !disks_[d]->powered()) {
      return false;
    }
  } else {
    if (!disks_[d]->powered()) return false;  // power cut, not data loss
    // Double fault (e.g. a latent sector error on a survivor): exactly this
    // stripe is lost. Reads of the page will fail cleanly — and if the
    // survivor's fault later heals, a read-repair can still recover it.
    last_rebuild_lost_.push_back(g);
    disks_[d]->inject_media_error(page);
  }
  if (was_stale) {
    ++rebuild_stale_folds_;
    raid_metrics().rebuild_stale_folds.inc();
  }
  return true;
}

std::uint64_t RaidArray::rebuild_step(std::uint64_t max_groups, IoPlan* plan) {
  KDD_CHECK(rebuild_active());
  const RaidGeometry& geo = layout_.geometry();
  const GroupId end =
      std::min<GroupId>(geo.num_groups(), rebuild_cursor_ + max_groups);
  std::uint64_t done = 0;
  while (rebuild_cursor_ < end) {
    if (!disks_[rebuilding_disk_]->powered()) break;
    if (!rebuild_group(rebuild_cursor_, plan)) break;
    ++rebuild_cursor_;
    ++done;
  }
  if (done != 0) raid_metrics().rebuild_groups.inc(done);
  return done;
}

std::uint64_t RaidArray::rebuild_disk(std::uint32_t d) {
  // Stop-the-world flavour, reimplemented on the incremental engine: one
  // begin, one maximal step, one finish. Return value and double-fault
  // semantics are unchanged.
  rebuild_begin(d);
  const std::uint64_t total = layout_.geometry().num_groups();
  while (rebuild_cursor_ < total) {
    if (rebuild_step(total) == 0) break;  // only a power cut stops progress
  }
  const std::uint64_t stale_folds = rebuild_stale_folds_;
  if (rebuild_cursor_ >= total) {
    rebuild_finish();
  }
  // else: the rail dropped mid-rebuild; the cursor stays parked for
  // rebuild_resume after power restore.
  return stale_folds;
}

std::vector<GroupId> RaidArray::scrub() const {
  return scrub_range(0, layout_.geometry().num_groups());
}

std::vector<GroupId> RaidArray::scrub_range(GroupId begin, GroupId end) const {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  KDD_CHECK(failed_disk_count() == 0);
  // A rebuilding disk's region beyond the cursor is garbage by definition;
  // comparing raw media there would flag every group. Scrub resumes once the
  // rebuild completes (the scheduler pauses itself while degraded).
  KDD_CHECK(!rebuild_active());
  end = std::min<GroupId>(end, geo.num_groups());
  std::vector<GroupId> bad;
  ScratchPage p_sp(ScratchPage::kZeroed);
  ScratchPage q_sp(ScratchPage::kZeroed);
  Page& p = *p_sp;
  Page& q = *q_sp;
  for (GroupId g = begin; g < end; ++g) {
    p.assign(kPageSize, 0);
    q.assign(kPageSize, 0);
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      const auto raw = media_[a.disk]->raw_page(a.page);
      xor_into(p, raw);
      if (geo.level == RaidLevel::kRaid6) gf256::mul_acc(q, gf256::exp(k), raw);
    }
    const DiskAddr pa = layout_.parity_addr(g);
    bool ok = std::equal(p.begin(), p.end(), media_[pa.disk]->raw_page(pa.page).begin());
    if (ok && geo.level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      ok = std::equal(q.begin(), q.end(), media_[qa.disk]->raw_page(qa.page).begin());
    }
    if (!ok) bad.push_back(g);
  }
  return bad;
}

bool RaidArray::repair_group(GroupId g) {
  const RaidGeometry& geo = layout_.geometry();
  // Tier 0 — stale (deferred-parity) group: the data is authoritative by the
  // KDD contract; recompute parity from it. Locating "the corrupt page" via
  // parity would wrongly blame (and clobber) legitimately newer data.
  if (stale_groups_.contains(g)) return resync_group(g) == IoStatus::kOk;

  const std::uint32_t dd = geo.data_disks();
  const DiskAddr pa = layout_.parity_addr(g);

  // Tier 1 — ask the devices: checksum-verified reads localise the rot.
  std::vector<std::uint32_t> bad_data;
  bool p_bad = false;
  bool q_bad = false;
  ScratchPage buf_sp;
  Page& buf = *buf_sp;
  for (std::uint32_t k = 0; k < dd; ++k) {
    const DiskAddr a = layout_.map(layout_.group_member(g, k));
    const IoStatus st = dev_read(a.disk, a.page, buf);
    if (page_fault(st)) {
      bad_data.push_back(k);
    } else if (st != IoStatus::kOk) {
      return false;
    }
  }
  {
    const IoStatus st = dev_read(pa.disk, pa.page, buf);
    if (page_fault(st)) p_bad = true;
    else if (st != IoStatus::kOk) return false;
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    const IoStatus st = dev_read(qa.disk, qa.page, buf);
    if (page_fault(st)) q_bad = true;
    else if (st != IoStatus::kOk) return false;
  }
  if (!bad_data.empty() || p_bad || q_bad) {
    for (const std::uint32_t k : bad_data) {
      ScratchPage fix;
      if (reconstruct_data(g, k, *fix) != IoStatus::kOk) return false;
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      if (dev_write(a.disk, a.page, *fix) != IoStatus::kOk) return false;
      ++read_repairs_;
    }
    // Recompute parity from the (now healed) data; this rewrites P and Q,
    // curing p_bad/q_bad as a side effect.
    return resync_group(g) == IoStatus::kOk;
  }

  // Tier 2 — RAID-6 syndrome location: even with no device-level detection,
  // P and Q together pinpoint a single silently-rotted page. With error e on
  // data member z: P_syn = e and Q_syn = g^z * e; P-only => P rotted;
  // Q-only => Q rotted.
  if (geo.level == RaidLevel::kRaid6) {
    ScratchPage p_syn_sp(ScratchPage::kZeroed);
    ScratchPage q_syn_sp(ScratchPage::kZeroed);
    Page& p_syn = *p_syn_sp;
    Page& q_syn = *q_syn_sp;
    for (std::uint32_t k = 0; k < dd; ++k) {
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      const auto raw = media_[a.disk]->raw_page(a.page);
      xor_into(p_syn, raw);
      gf256::mul_acc(q_syn, gf256::exp(k), raw);
    }
    const DiskAddr qa = layout_.q_parity_addr(g);
    xor_into(p_syn, media_[pa.disk]->raw_page(pa.page));
    xor_into(q_syn, media_[qa.disk]->raw_page(qa.page));
    const bool p_nz = !all_zero(p_syn);
    const bool q_nz = !all_zero(q_syn);
    if (p_nz && !q_nz) {
      // P alone disagrees: P itself rotted. Fix P := P_disk ^ P_syn.
      Page fix(media_[pa.disk]->raw_page(pa.page).begin(),
               media_[pa.disk]->raw_page(pa.page).end());
      xor_into(fix, p_syn);
      return dev_write(pa.disk, pa.page, fix) == IoStatus::kOk;
    }
    if (!p_nz && q_nz) {
      Page fix(media_[qa.disk]->raw_page(qa.page).begin(),
               media_[qa.disk]->raw_page(qa.page).end());
      xor_into(fix, q_syn);
      return dev_write(qa.disk, qa.page, fix) == IoStatus::kOk;
    }
    if (p_nz && q_nz) {
      for (std::uint32_t z = 0; z < dd; ++z) {
        const std::uint8_t gz = gf256::exp(z);
        bool match = true;
        for (std::uint32_t i = 0; i < kPageSize; ++i) {
          if (q_syn[i] != gf256::mul(gz, p_syn[i])) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        const DiskAddr a = layout_.map(layout_.group_member(g, z));
        Page fix(media_[a.disk]->raw_page(a.page).begin(),
                 media_[a.disk]->raw_page(a.page).end());
        xor_into(fix, p_syn);  // undo the error e
        if (dev_write(a.disk, a.page, fix) != IoStatus::kOk) return false;
        ++read_repairs_;
        return true;
      }
      // No single member explains both syndromes: multi-page rot. Fall
      // through to the data-authoritative resync.
    }
  }

  // Tier 3 — cannot localise (RAID-5 without a device-level verdict):
  // recompute parity from data, the classical resync semantics.
  return resync_group(g) == IoStatus::kOk;
}

std::uint64_t RaidArray::scrub_and_repair() {
  return scrub_and_repair_range(0, layout_.geometry().num_groups());
}

std::uint64_t RaidArray::scrub_and_repair_range(GroupId begin, GroupId end,
                                                bool skip_stale) {
  const std::vector<GroupId> bad = scrub_range(begin, end);
  std::uint64_t repaired = 0;
  for (const GroupId g : bad) {
    if (skip_stale && stale_groups_.contains(g)) continue;
    if (repair_group(g)) ++repaired;
  }
  return repaired;
}

std::uint64_t RaidArray::total_disk_reads() const {
  std::uint64_t n = 0;
  for (const auto& d : media_) n += d->counters().reads;
  return n;
}

std::uint64_t RaidArray::total_disk_writes() const {
  std::uint64_t n = 0;
  for (const auto& d : media_) n += d->counters().writes;
  return n;
}

void RaidArray::reset_counters() {
  for (auto& d : media_) d->reset_counters();
  for (auto& d : disks_) d->reset_counters();
}

}  // namespace kdd
