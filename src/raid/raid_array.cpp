#include "raid/raid_array.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "raid/gf256.hpp"

namespace kdd {

namespace {

// Solves for two lost data members i, j of a RAID-6 group given the partial
// sums P' = P ^ sum(known D_k) and Q' = Q ^ sum(g^k D_k):
//   D_i = (Q' ^ g^j * P') / (g^i ^ g^j),   D_j = P' ^ D_i.
void solve_two_erasures(std::uint32_t i, std::uint32_t j, const Page& p_prime,
                        const Page& q_prime, Page& di, Page& dj) {
  const std::uint8_t gi = gf256::exp(i);
  const std::uint8_t gj = gf256::exp(j);
  const std::uint8_t denom_inv = gf256::inv(static_cast<std::uint8_t>(gi ^ gj));
  di.assign(kPageSize, 0);
  gf256::mul_acc(di, gj, p_prime);
  xor_into(di, q_prime);
  gf256::scale(di, denom_inv);
  dj = p_prime;
  xor_into(dj, di);
}

}  // namespace

RaidArray::RaidArray(const RaidGeometry& geo) : layout_(geo) {
  disks_.reserve(geo.num_disks);
  for (std::uint32_t i = 0; i < geo.num_disks; ++i) {
    disks_.push_back(std::make_unique<MemBlockDevice>(geo.disk_pages));
  }
}

bool RaidArray::group_has_failed_member(GroupId g) const {
  const RaidGeometry& geo = layout_.geometry();
  const std::uint64_t row = g / geo.chunk_pages;
  for (std::uint32_t idx = 0; idx < geo.data_disks(); ++idx) {
    if (disks_[layout_.data_disk(row, idx)]->failed()) return true;
  }
  if (geo.level != RaidLevel::kRaid0) {
    if (disks_[layout_.parity_disk(row)]->failed()) return true;
    if (geo.level == RaidLevel::kRaid6 && disks_[layout_.q_parity_disk(row)]->failed()) {
      return true;
    }
  }
  return false;
}

IoStatus RaidArray::read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const DiskAddr addr = layout_.map(lba);
  if (!disks_[addr.disk]->failed()) {
    if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kRead});
    return disks_[addr.disk]->read(addr.page, out);
  }
  // Degraded read: reconstruct from the surviving members of the group.
  const GroupId g = layout_.group_of(lba);
  if (plan) {
    const std::size_t phase = plan->next_phase();
    const RaidGeometry& geo = layout_.geometry();
    const std::uint64_t row = g / geo.chunk_pages;
    const Lba page = row * geo.chunk_pages + g % geo.chunk_pages;
    for (std::uint32_t d = 0; d < geo.num_disks; ++d) {
      if (!disks_[d]->failed()) {
        plan->add(phase, {DeviceOp::Target::kHdd, d, page, IoKind::kRead});
      }
    }
  }
  return reconstruct_data(g, layout_.index_in_group(lba), out);
}

IoStatus RaidArray::reconstruct_data(GroupId g, std::uint32_t idx,
                                     std::span<std::uint8_t> out) {
  const RaidGeometry& geo = layout_.geometry();
  if (geo.level == RaidLevel::kRaid0) return IoStatus::kFailed;
  const std::uint32_t dd = geo.data_disks();

  // Gather survivors.
  std::vector<std::uint32_t> lost_data;
  Page p_prime = make_page();  // running XOR of known data
  Page q_prime = make_page();  // running XOR of g^k * known data
  Page buf = make_page();
  for (std::uint32_t k = 0; k < dd; ++k) {
    if (k == idx) continue;
    const DiskAddr a = layout_.map(layout_.group_member(g, k));
    if (disks_[a.disk]->failed()) {
      lost_data.push_back(k);
      continue;
    }
    if (disks_[a.disk]->read(a.page, buf) != IoStatus::kOk) return IoStatus::kFailed;
    xor_into(p_prime, buf);
    if (geo.level == RaidLevel::kRaid6) gf256::mul_acc(q_prime, gf256::exp(k), buf);
  }
  const DiskAddr pa = layout_.parity_addr(g);
  const bool p_alive = !disks_[pa.disk]->failed();
  const bool q_alive = geo.level == RaidLevel::kRaid6 &&
                       !disks_[layout_.q_parity_addr(g).disk]->failed();

  if (lost_data.empty()) {
    // Single data erasure.
    if (p_alive) {
      if (disks_[pa.disk]->read(pa.page, out) != IoStatus::kOk) return IoStatus::kFailed;
      xor_into(out, p_prime);
      return IoStatus::kOk;
    }
    if (q_alive) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      Page q = make_page();
      if (disks_[qa.disk]->read(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
      xor_into(q, q_prime);  // q = g^idx * D_idx
      gf256::scale(q, gf256::inv(gf256::exp(idx)));
      std::copy(q.begin(), q.end(), out.begin());
      return IoStatus::kOk;
    }
    return IoStatus::kFailed;
  }
  if (lost_data.size() == 1 && geo.level == RaidLevel::kRaid6 && p_alive && q_alive) {
    // Two data erasures (idx plus one more): need both parities.
    const DiskAddr qa = layout_.q_parity_addr(g);
    Page p = make_page();
    Page q = make_page();
    if (disks_[pa.disk]->read(pa.page, p) != IoStatus::kOk) return IoStatus::kFailed;
    if (disks_[qa.disk]->read(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
    xor_into(p, p_prime);
    xor_into(q, q_prime);
    Page di;
    Page dj;
    solve_two_erasures(idx, lost_data[0], p, q, di, dj);
    std::copy(di.begin(), di.end(), out.begin());
    return IoStatus::kOk;
  }
  return IoStatus::kFailed;  // beyond the configured fault tolerance
}

void RaidArray::compute_parity(std::span<const Page> data, Page& p, Page* q) const {
  p.assign(kPageSize, 0);
  if (q) q->assign(kPageSize, 0);
  for (std::uint32_t k = 0; k < data.size(); ++k) {
    xor_into(p, data[k]);
    if (q) gf256::mul_acc(*q, gf256::exp(k), data[k]);
  }
}

IoStatus RaidArray::write_page(Lba lba, std::span<const std::uint8_t> data,
                               IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  const DiskAddr addr = layout_.map(lba);
  if (geo.level == RaidLevel::kRaid0) {
    if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
    return disks_[addr.disk]->write(addr.page, data);
  }
  const GroupId g = layout_.group_of(lba);
  if (group_has_failed_member(g)) return write_page_general(lba, data, plan);

  // Read-modify-write: [read old data, read parity] -> [write data, write parity].
  const DiskAddr pa = layout_.parity_addr(g);
  Page old_data = make_page();
  Page parity = make_page();
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  if (disks_[addr.disk]->read(addr.page, old_data) != IoStatus::kOk) return IoStatus::kFailed;
  if (disks_[pa.disk]->read(pa.page, parity) != IoStatus::kOk) return IoStatus::kFailed;
  if (plan) {
    plan->add(read_phase, {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kRead});
    plan->add(read_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
  }
  Page delta(data.begin(), data.end());
  xor_into(delta, old_data);
  xor_into(parity, delta);

  const std::size_t write_phase = plan ? plan->next_phase() : 0;
  if (disks_[addr.disk]->write(addr.page, data) != IoStatus::kOk) return IoStatus::kFailed;
  if (disks_[pa.disk]->write(pa.page, parity) != IoStatus::kOk) return IoStatus::kFailed;
  if (plan) {
    plan->add(write_phase, {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
    plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    Page q = make_page();
    if (disks_[qa.disk]->read(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
    gf256::mul_acc(q, gf256::exp(layout_.index_in_group(lba)), delta);
    if (disks_[qa.disk]->write(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) {
      plan->add(read_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
      plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidArray::write_page_general(Lba lba, std::span<const std::uint8_t> data,
                                       IoPlan* plan) {
  // Degraded path: gather the full group (reconstructing lost members),
  // substitute the new data, recompute parity and write what is writable.
  const RaidGeometry& geo = layout_.geometry();
  const GroupId g = layout_.group_of(lba);
  const std::uint32_t dd = geo.data_disks();
  const std::uint32_t target = layout_.index_in_group(lba);

  std::vector<Page> members(dd, make_page());
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  for (std::uint32_t k = 0; k < dd; ++k) {
    if (k == target) continue;
    const Lba member_lba = layout_.group_member(g, k);
    const DiskAddr a = layout_.map(member_lba);
    if (!disks_[a.disk]->failed()) {
      if (disks_[a.disk]->read(a.page, members[k]) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(read_phase, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
    } else if (reconstruct_data(g, k, members[k]) != IoStatus::kOk) {
      return IoStatus::kFailed;
    }
  }
  members[target].assign(data.begin(), data.end());

  Page p = make_page();
  Page q = make_page();
  compute_parity(members, p, geo.level == RaidLevel::kRaid6 ? &q : nullptr);

  const std::size_t write_phase = plan ? plan->next_phase() : 0;
  const DiskAddr addr = layout_.map(lba);
  if (!disks_[addr.disk]->failed()) {
    if (disks_[addr.disk]->write(addr.page, data) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
  }
  const DiskAddr pa = layout_.parity_addr(g);
  if (!disks_[pa.disk]->failed()) {
    if (disks_[pa.disk]->write(pa.page, p) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    if (!disks_[qa.disk]->failed()) {
      if (disks_[qa.disk]->write(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  // Parity was recomputed from the group's current on-disk contents.
  stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::write_group(GroupId g, std::span<const Page> data, IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(data.size() == geo.data_disks());
  Page p = make_page();
  Page q = make_page();
  if (geo.level != RaidLevel::kRaid0) {
    compute_parity(data, p, geo.level == RaidLevel::kRaid6 ? &q : nullptr);
  }
  const std::size_t phase = plan ? plan->next_phase() : 0;
  for (std::uint32_t k = 0; k < data.size(); ++k) {
    const DiskAddr a = layout_.map(layout_.group_member(g, k));
    if (disks_[a.disk]->failed()) continue;
    if (disks_[a.disk]->write(a.page, data[k]) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(phase, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
  }
  if (geo.level != RaidLevel::kRaid0) {
    const DiskAddr pa = layout_.parity_addr(g);
    if (!disks_[pa.disk]->failed()) {
      if (disks_[pa.disk]->write(pa.page, p) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    }
    if (geo.level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      if (!disks_[qa.disk]->failed()) {
        if (disks_[qa.disk]->write(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
        if (plan) plan->add(phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::write_page_nopar(Lba lba, std::span<const std::uint8_t> data,
                                     IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  const DiskAddr addr = layout_.map(lba);
  if (disks_[addr.disk]->failed()) {
    // The caller must flush parity and rebuild before deferring again.
    return IoStatus::kFailed;
  }
  if (disks_[addr.disk]->write(addr.page, data) != IoStatus::kOk) return IoStatus::kFailed;
  if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kWrite});
  stale_groups_.insert(layout_.group_of(lba));
  return IoStatus::kOk;
}

IoStatus RaidArray::update_parity_rmw(GroupId g, std::span<const GroupDelta> deltas,
                                      IoPlan* plan, bool finalize) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  const DiskAddr pa = layout_.parity_addr(g);
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  std::size_t write_phase = read_phase + 1;
  if (!disks_[pa.disk]->failed()) {
    Page p = make_page();
    if (disks_[pa.disk]->read(pa.page, p) != IoStatus::kOk) return IoStatus::kFailed;
    for (const GroupDelta& d : deltas) xor_into(p, *d.xor_diff);
    if (disks_[pa.disk]->write(pa.page, p) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) {
      plan->add(read_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
      plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    }
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    if (!disks_[qa.disk]->failed()) {
      Page q = make_page();
      if (disks_[qa.disk]->read(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
      for (const GroupDelta& d : deltas) gf256::mul_acc(q, gf256::exp(d.index), *d.xor_diff);
      if (disks_[qa.disk]->write(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) {
        plan->add(read_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
        plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  if (finalize) stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::update_parity_reconstruct(GroupId g,
                                              std::span<const Page* const> current_data,
                                              IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  const std::uint32_t dd = geo.data_disks();
  KDD_CHECK(current_data.size() == dd);

  std::vector<Page> members(dd, make_page());
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  bool any_read = false;
  for (std::uint32_t k = 0; k < dd; ++k) {
    if (current_data[k] != nullptr) {
      members[k] = *current_data[k];
      continue;
    }
    const DiskAddr a = layout_.map(layout_.group_member(g, k));
    if (disks_[a.disk]->failed()) {
      if (reconstruct_data(g, k, members[k]) != IoStatus::kOk) return IoStatus::kFailed;
    } else {
      if (disks_[a.disk]->read(a.page, members[k]) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(read_phase, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
    }
    any_read = true;
  }
  Page p = make_page();
  Page q = make_page();
  compute_parity(members, p, geo.level == RaidLevel::kRaid6 ? &q : nullptr);

  const std::size_t write_phase = plan ? (any_read ? plan->next_phase() : read_phase) : 0;
  const DiskAddr pa = layout_.parity_addr(g);
  if (!disks_[pa.disk]->failed()) {
    if (disks_[pa.disk]->write(pa.page, p) != IoStatus::kOk) return IoStatus::kFailed;
    if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
  }
  if (geo.level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    if (!disks_[qa.disk]->failed()) {
      if (disks_[qa.disk]->write(qa.page, q) != IoStatus::kOk) return IoStatus::kFailed;
      if (plan) plan->add(write_phase, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  stale_groups_.erase(g);
  return IoStatus::kOk;
}

IoStatus RaidArray::resync_group(GroupId g, IoPlan* plan) {
  std::vector<const Page*> none(layout_.geometry().data_disks(), nullptr);
  return update_parity_reconstruct(g, none, plan);
}

std::uint64_t RaidArray::resync_all_stale() {
  const std::vector<GroupId> groups = stale_groups();
  for (GroupId g : groups) {
    const IoStatus st = resync_group(g);
    KDD_CHECK(st == IoStatus::kOk);
  }
  return groups.size();
}

std::vector<GroupId> RaidArray::stale_groups() const {
  std::vector<GroupId> out(stale_groups_.begin(), stale_groups_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void RaidArray::fail_disk(std::uint32_t d) {
  KDD_CHECK(d < disks_.size());
  disks_[d]->fail();
}

std::uint32_t RaidArray::failed_disk_count() const {
  std::uint32_t n = 0;
  for (const auto& d : disks_) {
    if (d->failed()) ++n;
  }
  return n;
}

std::uint64_t RaidArray::rebuild_disk(std::uint32_t d) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  KDD_CHECK(d < disks_.size());
  KDD_CHECK(disks_[d]->failed());
  disks_[d]->replace();

  std::uint64_t stale_rebuilds = 0;
  Page buf = make_page();
  for (GroupId g = 0; g < geo.num_groups(); ++g) {
    const std::uint64_t row = g / geo.chunk_pages;
    const Lba page = row * geo.chunk_pages + g % geo.chunk_pages;
    if (layout_.parity_disk(row) == d) {
      // Parity page: recompute from data — result reflects current data, so
      // any pending staleness is resolved for this group.
      std::vector<Page> members(geo.data_disks(), make_page());
      for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
        const DiskAddr a = layout_.map(layout_.group_member(g, k));
        if (disks_[a.disk]->read(a.page, members[k]) != IoStatus::kOk) return stale_rebuilds;
      }
      Page p = make_page();
      compute_parity(members, p, nullptr);
      disks_[d]->write(page, p);
      stale_groups_.erase(g);
      continue;
    }
    if (geo.level == RaidLevel::kRaid6 && layout_.q_parity_disk(row) == d) {
      std::vector<Page> members(geo.data_disks(), make_page());
      for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
        const DiskAddr a = layout_.map(layout_.group_member(g, k));
        if (disks_[a.disk]->read(a.page, members[k]) != IoStatus::kOk) return stale_rebuilds;
      }
      Page p = make_page();
      Page q = make_page();
      compute_parity(members, p, &q);
      disks_[d]->write(page, q);
      continue;
    }
    // Data page: reconstruct from parity. If the group's parity is stale the
    // reconstructed contents are wrong — this is the vulnerability window the
    // paper describes; callers (KDD) flush parity before rebuilding.
    std::uint32_t idx = 0;
    bool found = false;
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      if (layout_.data_disk(row, k) == d) {
        idx = k;
        found = true;
        break;
      }
    }
    KDD_CHECK(found);
    if (stale_groups_.contains(g)) ++stale_rebuilds;
    // Temporarily treat the new disk as the write target; reconstruct from
    // the *other* devices (the blank page on the fresh disk must not be read).
    const RaidGeometry& geo2 = layout_.geometry();
    Page p_prime = make_page();
    for (std::uint32_t k = 0; k < geo2.data_disks(); ++k) {
      if (k == idx) continue;
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      if (disks_[a.disk]->read(a.page, buf) != IoStatus::kOk) return stale_rebuilds;
      xor_into(p_prime, buf);
    }
    const DiskAddr pa = layout_.parity_addr(g);
    if (disks_[pa.disk]->read(pa.page, buf) != IoStatus::kOk) return stale_rebuilds;
    xor_into(p_prime, buf);
    disks_[d]->write(page, p_prime);
  }
  return stale_rebuilds;
}

std::vector<GroupId> RaidArray::scrub() const {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(geo.level != RaidLevel::kRaid0);
  KDD_CHECK(failed_disk_count() == 0);
  std::vector<GroupId> bad;
  for (GroupId g = 0; g < geo.num_groups(); ++g) {
    Page p = make_page();
    Page q = make_page();
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      const auto raw = disks_[a.disk]->raw_page(a.page);
      xor_into(p, raw);
      if (geo.level == RaidLevel::kRaid6) gf256::mul_acc(q, gf256::exp(k), raw);
    }
    const DiskAddr pa = layout_.parity_addr(g);
    bool ok = std::equal(p.begin(), p.end(), disks_[pa.disk]->raw_page(pa.page).begin());
    if (ok && geo.level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      ok = std::equal(q.begin(), q.end(), disks_[qa.disk]->raw_page(qa.page).begin());
    }
    if (!ok) bad.push_back(g);
  }
  return bad;
}

std::uint64_t RaidArray::scrub_and_repair() {
  const std::vector<GroupId> bad = scrub();
  for (const GroupId g : bad) {
    const IoStatus st = resync_group(g);
    KDD_CHECK(st == IoStatus::kOk);
  }
  return bad.size();
}

std::uint64_t RaidArray::total_disk_reads() const {
  std::uint64_t n = 0;
  for (const auto& d : disks_) n += d->counters().reads;
  return n;
}

std::uint64_t RaidArray::total_disk_writes() const {
  std::uint64_t n = 0;
  for (const auto& d : disks_) n += d->counters().writes;
  return n;
}

void RaidArray::reset_counters() {
  for (auto& d : disks_) d->reset_counters();
}

}  // namespace kdd
