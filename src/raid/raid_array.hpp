// RAID array engine: RAID-0/5/6 over memory-backed disks with real data and
// real parity. Implements the conventional write paths (read-modify-write,
// reconstruct-write, full-stripe write), degraded reads, disk rebuild and
// resynchronisation — plus the two extension interfaces KDD adds
// (Section III-A): write-without-parity-update and parity-update.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blockdev/fault_device.hpp"
#include "blockdev/mem_device.hpp"
#include "blockdev/retry.hpp"
#include "common/bytes.hpp"
#include "raid/io_plan.hpp"
#include "raid/layout.hpp"

namespace kdd {

/// (data index within group, XOR of old and new contents of that member).
struct GroupDelta {
  std::uint32_t index;
  const Page* xor_diff;
};

/// One group's worth of deferred parity work inside a destage batch: the
/// accumulated XOR deltas of several data members, folded into the stale
/// parity with a single read + XOR-accumulate + write per parity device.
struct GroupParityUpdate {
  GroupId group = 0;
  std::span<const GroupDelta> deltas;  ///< one entry per dirty member
  bool finalize = true;                ///< clear the group's staleness
};

class RaidArray {
 public:
  explicit RaidArray(const RaidGeometry& geo);

  const RaidLayout& layout() const { return layout_; }
  const RaidGeometry& geometry() const { return layout_.geometry(); }
  std::uint64_t data_pages() const { return layout_.geometry().data_pages(); }

  // ---- Normal I/O path -----------------------------------------------------

  /// Reads one logical page; reconstructs from peers when its disk is down.
  /// Self-healing (read-error repair): a page-level kMediaError / kCorrupt on
  /// a healthy disk is recovered via parity reconstruction, and the
  /// reconstructed contents are written back to heal the latent sector error.
  /// Transient errors are absorbed by a bounded retry whose backoff is
  /// charged to `plan`.
  IoStatus read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan = nullptr);

  /// Writes one logical page with full parity maintenance (RMW; degraded-safe).
  IoStatus write_page(Lba lba, std::span<const std::uint8_t> data,
                      IoPlan* plan = nullptr);

  /// Full-stripe write: caller supplies all data members of group `g`;
  /// parity is computed without any read.
  IoStatus write_group(GroupId g, std::span<const Page> data, IoPlan* plan = nullptr);

  // ---- KDD extension interfaces (Section III-A) ----------------------------

  /// Writes only the data page and marks the parity group stale. The caller
  /// (the cache) guarantees it can regenerate parity later from its deltas.
  IoStatus write_page_nopar(Lba lba, std::span<const std::uint8_t> data,
                            IoPlan* plan = nullptr);

  /// RMW-style deferred parity update: reads the stale parity, folds in the
  /// caller's accumulated XOR deltas and writes parity back. With
  /// finalize == true the group's staleness is cleared (all pending deltas
  /// were supplied); finalize == false applies a partial fix and keeps the
  /// group marked stale.
  IoStatus update_parity_rmw(GroupId g, std::span<const GroupDelta> deltas,
                             IoPlan* plan = nullptr, bool finalize = true);

  /// Batched destage: applies one RMW-style parity update per entry, in the
  /// caller's (disk-layout) order. Each group still costs exactly one parity
  /// read + one XOR-accumulate over all of its deltas + one parity write per
  /// parity device — the batch form exists so a whole destage pass crosses
  /// the array interface once and failures stay per-group. Groups whose RMW
  /// fails are appended to `failed` (when non-null) and do NOT abort the
  /// rest of the batch. Returns kOk iff every group succeeded.
  IoStatus update_parity_rmw_batch(std::span<const GroupParityUpdate> updates,
                                   IoPlan* plan = nullptr,
                                   std::vector<GroupId>* failed = nullptr);

  /// Reconstruct-write-style parity update: the caller supplies the *current*
  /// contents of every data member (entries may be nullptr, in which case
  /// that member is read from disk); parity is recomputed from scratch.
  IoStatus update_parity_reconstruct(GroupId g,
                                     std::span<const Page* const> current_data,
                                     IoPlan* plan = nullptr);

  /// Recomputes parity of `g` by reading all data members (used for resync
  /// after SSD failure). Equivalent to update_parity_reconstruct with no
  /// caller-supplied data.
  IoStatus resync_group(GroupId g, IoPlan* plan = nullptr);

  /// Resyncs every stale group. Returns the number of groups resynced.
  std::uint64_t resync_all_stale();

  // ---- Stale-parity tracking ------------------------------------------------

  bool group_stale(GroupId g) const { return stale_groups_.contains(g); }
  std::uint64_t stale_group_count() const { return stale_groups_.size(); }
  std::vector<GroupId> stale_groups() const;

  // ---- Failure handling ------------------------------------------------------

  void fail_disk(std::uint32_t disk);
  bool disk_failed(std::uint32_t disk) const { return disks_[disk]->failed(); }
  std::uint32_t failed_disk_count() const;

  /// True when `disk` cannot serve group `g`: either the device failed
  /// outright, or it is mid-(online-)rebuild and `g` lies at or after the
  /// rebuild cursor. Groups below the cursor are already reconstructed and
  /// fully valid, so a rebuilding disk serves them normally — this predicate
  /// is what makes the rebuild incremental rather than stop-the-world.
  bool member_down(std::uint32_t disk, GroupId g) const {
    if (disks_[disk]->failed()) return true;
    return disk == rebuilding_disk_ && g >= rebuild_cursor_;
  }
  /// member_down() for the disk holding logical page `lba`.
  bool page_down(Lba lba) const {
    return member_down(layout_.map(lba).disk, layout_.group_of(lba));
  }
  /// Any member unavailable anywhere: a failed disk or an in-flight rebuild.
  bool degraded() const { return failed_disk_count() > 0 || rebuild_active(); }

  /// False while any member's power rail is down. Background machinery (the
  /// rebuild pump, the scrub scheduler) stops cleanly on this instead of
  /// misreading power-cut rejections as media loss.
  bool powered() const {
    for (const auto& d : disks_) {
      if (!d->powered()) return false;
    }
    return true;
  }

  // ---- Online (incremental, checkpointed) rebuild ---------------------------

  static constexpr std::uint32_t kNoRebuild = ~0u;

  /// Starts an incremental rebuild of failed `disk`: drains the registered
  /// pre-rebuild hook (parity log), swaps in blank media, clears the old
  /// platters' fault state and parks the cursor at group 0. Until
  /// rebuild_finish() the disk serves only groups below the cursor; every
  /// other path treats it as a failed member (member_down).
  void rebuild_begin(std::uint32_t disk);

  /// Resumes a checkpointed rebuild after a controller restart: the media was
  /// already replaced by the interrupted rebuild, groups below `cursor` are
  /// valid and are NOT reconstructed again.
  void rebuild_resume(std::uint32_t disk, GroupId cursor);

  /// Reconstructs up to `max_groups` groups at the cursor and advances it.
  /// Returns the number of groups processed (0 == nothing left or the power
  /// rail dropped mid-step; a power cut never marks stripes lost — the
  /// checkpointed cursor simply resumes after restore). Double faults behave
  /// exactly as in rebuild_disk(): the group is recorded in
  /// last_rebuild_lost() and its page marked unreadable.
  std::uint64_t rebuild_step(std::uint64_t max_groups, IoPlan* plan = nullptr);

  /// Completes the rebuild; requires the cursor to have reached the end.
  void rebuild_finish();

  /// Abandons an in-flight rebuild without touching the media (models a
  /// controller reboot losing its in-core cursor). The disk reverts to
  /// serving nothing valid beyond what a subsequent rebuild_resume() — fed
  /// from an NVRAM checkpoint — vouches for.
  void rebuild_abandon();

  bool rebuild_active() const { return rebuilding_disk_ != kNoRebuild; }
  GroupId rebuild_cursor() const { return rebuild_cursor_; }
  std::uint32_t rebuilding_disk() const { return rebuilding_disk_; }
  /// Groups (since rebuild_begin/resume) reconstructed from *stale* parity —
  /// the vulnerability window; the online engine's force-destage barrier
  /// exists to keep this zero.
  std::uint64_t rebuild_stale_folds() const { return rebuild_stale_folds_; }

  /// Hook invoked with the disk id before any rebuild touches the array
  /// (rebuild_begin / rebuild_disk). ParityLogRaid registers its apply_log
  /// here, so a rebuild can never run against a stale parity log.
  void set_pre_rebuild_hook(std::function<void(std::uint32_t)> hook) {
    pre_rebuild_hook_ = std::move(hook);
  }

  /// Reads served via degraded reconstruction (failed member or a rebuilding
  /// disk's not-yet-reconstructed region). Mirrored to
  /// kdd_degraded_reads_total in the global metrics registry.
  std::uint64_t degraded_reads() const { return degraded_reads_; }

  /// Replaces the failed disk with a blank one and reconstructs its contents
  /// from the surviving disks. Returns the number of parity groups whose
  /// contents were rebuilt from *stale* parity (i.e. potentially corrupted —
  /// the vulnerability window the paper describes; KDD flushes parity before
  /// triggering rebuild precisely to keep this zero).
  ///
  /// Double faults (a media error on a survivor while rebuilding) do NOT
  /// abort the rebuild: the affected groups are recorded in
  /// last_rebuild_lost() and their unreconstructable page on the new disk is
  /// marked as a media error, so subsequent reads fail cleanly with
  /// kFailed/kMediaError instead of silently returning blank data.
  std::uint64_t rebuild_disk(std::uint32_t disk);

  /// Parity groups the last rebuild_disk call could not fully reconstruct
  /// (data-loss report for exactly the affected stripes).
  const std::vector<GroupId>& last_rebuild_lost() const { return last_rebuild_lost_; }

  // ---- Verification ----------------------------------------------------------

  /// Checks parity of every group (bypassing counters); returns the ids of
  /// inconsistent groups. With no deferred updates pending this must be empty;
  /// with deferred updates it must equal the stale set.
  std::vector<GroupId> scrub() const;

  /// Incremental scrub over groups [begin, end) — the unit the background
  /// scrub scheduler (src/raid/scrub.hpp) rate-limits.
  std::vector<GroupId> scrub_range(GroupId begin, GroupId end) const;

  /// Scrubs and repairs groups in [begin, end). With `skip_stale` the known
  /// stale (deferred-parity) groups are left alone — they are owned by the
  /// cache, which will fold their deltas; resyncing them here would erase the
  /// staleness marker underneath pending deltas and corrupt the later fold.
  std::uint64_t scrub_and_repair_range(GroupId begin, GroupId end,
                                       bool skip_stale = false);

  /// Scrubs and repairs every inconsistent group. Repair is located, not
  /// blind: stale groups resync from data (the KDD deferred-parity contract);
  /// otherwise checksum-verified reads (kCorrupt/kMediaError) localise the
  /// rotted page, which is reconstructed from its peers and rewritten; for
  /// RAID-6 the P/Q syndromes localise a single silent data corruption even
  /// without device-level detection; only as a last resort is parity
  /// recomputed from data. Returns the number repaired.
  std::uint64_t scrub_and_repair();

  /// The raw media behind disk `i` (bypasses fault injection; tests/scrub).
  MemBlockDevice& disk(std::uint32_t i) { return *media_[i]; }
  const MemBlockDevice& disk(std::uint32_t i) const { return *media_[i]; }

  /// Per-disk fault-injection decorator (the device the array actually does
  /// I/O through).
  FaultInjectingDevice& faults(std::uint32_t i) { return *disks_[i]; }
  const FaultInjectingDevice& faults(std::uint32_t i) const { return *disks_[i]; }

  /// Attaches every disk to one shared power domain.
  void attach_rail(const std::shared_ptr<PowerRail>& rail);

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Pages healed by read-error repair (reconstruct + write-back).
  std::uint64_t read_repairs() const { return read_repairs_; }

  /// Aggregate disk I/O counters (pages, at the media level).
  std::uint64_t total_disk_reads() const;
  std::uint64_t total_disk_writes() const;
  void reset_counters();

 private:
  /// Retry-wrapped device I/O; transient backoff is charged to `plan`.
  IoStatus dev_read(std::uint32_t disk, Lba page, std::span<std::uint8_t> out,
                    IoPlan* plan = nullptr);
  IoStatus dev_write(std::uint32_t disk, Lba page, std::span<const std::uint8_t> data,
                     IoPlan* plan = nullptr);
  /// Recovers a partial read fault on a healthy disk: parity reconstruction
  /// plus write-back of the reconstructed page (read-error repair).
  IoStatus read_repair(Lba lba, std::span<std::uint8_t> out, IoPlan* plan);
  /// Repairs one inconsistent group (see scrub_and_repair).
  bool repair_group(GroupId g);
  /// Reconstructs the contents of the (lost) page at data index `idx` /
  /// parity of group `g` from the surviving devices. Page-level faults on
  /// survivors count as additional erasures (RAID-6 can absorb one).
  IoStatus reconstruct_data(GroupId g, std::uint32_t idx, std::span<std::uint8_t> out);
  /// Degraded / general write: reads the whole group (reconstructing lost
  /// members), applies the update, rewrites parity and the data page.
  IoStatus write_page_general(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan);
  void compute_parity(std::span<const Page> data, Page& p, Page* q) const;
  bool group_has_failed_member(GroupId g) const;
  /// Reconstructs one group onto the rebuilding disk. Returns false only when
  /// the step was aborted by a power cut (cursor must not advance).
  bool rebuild_group(GroupId g, IoPlan* plan);

  RaidLayout layout_;
  std::vector<std::unique_ptr<MemBlockDevice>> media_;          ///< raw disks
  std::vector<std::unique_ptr<FaultInjectingDevice>> disks_;    ///< injectable I/O path
  std::unordered_set<GroupId> stale_groups_;
  std::vector<GroupId> last_rebuild_lost_;
  RetryPolicy retry_policy_;
  std::function<void(std::uint32_t)> pre_rebuild_hook_;
  std::uint32_t rebuilding_disk_ = kNoRebuild;
  GroupId rebuild_cursor_ = 0;
  std::uint64_t rebuild_stale_folds_ = 0;
  std::uint64_t degraded_reads_ = 0;
  std::uint64_t read_repairs_ = 0;
};

}  // namespace kdd
