// RAID array engine: RAID-0/5/6 over memory-backed disks with real data and
// real parity. Implements the conventional write paths (read-modify-write,
// reconstruct-write, full-stripe write), degraded reads, disk rebuild and
// resynchronisation — plus the two extension interfaces KDD adds
// (Section III-A): write-without-parity-update and parity-update.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blockdev/fault_device.hpp"
#include "blockdev/mem_device.hpp"
#include "blockdev/retry.hpp"
#include "common/bytes.hpp"
#include "raid/io_plan.hpp"
#include "raid/layout.hpp"

namespace kdd {

/// (data index within group, XOR of old and new contents of that member).
struct GroupDelta {
  std::uint32_t index;
  const Page* xor_diff;
};

/// One group's worth of deferred parity work inside a destage batch: the
/// accumulated XOR deltas of several data members, folded into the stale
/// parity with a single read + XOR-accumulate + write per parity device.
struct GroupParityUpdate {
  GroupId group = 0;
  std::span<const GroupDelta> deltas;  ///< one entry per dirty member
  bool finalize = true;                ///< clear the group's staleness
};

class RaidArray {
 public:
  explicit RaidArray(const RaidGeometry& geo);

  const RaidLayout& layout() const { return layout_; }
  const RaidGeometry& geometry() const { return layout_.geometry(); }
  std::uint64_t data_pages() const { return layout_.geometry().data_pages(); }

  // ---- Normal I/O path -----------------------------------------------------

  /// Reads one logical page; reconstructs from peers when its disk is down.
  /// Self-healing (read-error repair): a page-level kMediaError / kCorrupt on
  /// a healthy disk is recovered via parity reconstruction, and the
  /// reconstructed contents are written back to heal the latent sector error.
  /// Transient errors are absorbed by a bounded retry whose backoff is
  /// charged to `plan`.
  IoStatus read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan = nullptr);

  /// Writes one logical page with full parity maintenance (RMW; degraded-safe).
  IoStatus write_page(Lba lba, std::span<const std::uint8_t> data,
                      IoPlan* plan = nullptr);

  /// Full-stripe write: caller supplies all data members of group `g`;
  /// parity is computed without any read.
  IoStatus write_group(GroupId g, std::span<const Page> data, IoPlan* plan = nullptr);

  // ---- KDD extension interfaces (Section III-A) ----------------------------

  /// Writes only the data page and marks the parity group stale. The caller
  /// (the cache) guarantees it can regenerate parity later from its deltas.
  IoStatus write_page_nopar(Lba lba, std::span<const std::uint8_t> data,
                            IoPlan* plan = nullptr);

  /// RMW-style deferred parity update: reads the stale parity, folds in the
  /// caller's accumulated XOR deltas and writes parity back. With
  /// finalize == true the group's staleness is cleared (all pending deltas
  /// were supplied); finalize == false applies a partial fix and keeps the
  /// group marked stale.
  IoStatus update_parity_rmw(GroupId g, std::span<const GroupDelta> deltas,
                             IoPlan* plan = nullptr, bool finalize = true);

  /// Batched destage: applies one RMW-style parity update per entry, in the
  /// caller's (disk-layout) order. Each group still costs exactly one parity
  /// read + one XOR-accumulate over all of its deltas + one parity write per
  /// parity device — the batch form exists so a whole destage pass crosses
  /// the array interface once and failures stay per-group. Groups whose RMW
  /// fails are appended to `failed` (when non-null) and do NOT abort the
  /// rest of the batch. Returns kOk iff every group succeeded.
  IoStatus update_parity_rmw_batch(std::span<const GroupParityUpdate> updates,
                                   IoPlan* plan = nullptr,
                                   std::vector<GroupId>* failed = nullptr);

  /// Reconstruct-write-style parity update: the caller supplies the *current*
  /// contents of every data member (entries may be nullptr, in which case
  /// that member is read from disk); parity is recomputed from scratch.
  IoStatus update_parity_reconstruct(GroupId g,
                                     std::span<const Page* const> current_data,
                                     IoPlan* plan = nullptr);

  /// Recomputes parity of `g` by reading all data members (used for resync
  /// after SSD failure). Equivalent to update_parity_reconstruct with no
  /// caller-supplied data.
  IoStatus resync_group(GroupId g, IoPlan* plan = nullptr);

  /// Resyncs every stale group. Returns the number of groups resynced.
  std::uint64_t resync_all_stale();

  // ---- Stale-parity tracking ------------------------------------------------

  bool group_stale(GroupId g) const { return stale_groups_.contains(g); }
  std::uint64_t stale_group_count() const { return stale_groups_.size(); }
  std::vector<GroupId> stale_groups() const;

  // ---- Failure handling ------------------------------------------------------

  void fail_disk(std::uint32_t disk);
  bool disk_failed(std::uint32_t disk) const { return disks_[disk]->failed(); }
  std::uint32_t failed_disk_count() const;

  /// Replaces the failed disk with a blank one and reconstructs its contents
  /// from the surviving disks. Returns the number of parity groups whose
  /// contents were rebuilt from *stale* parity (i.e. potentially corrupted —
  /// the vulnerability window the paper describes; KDD flushes parity before
  /// triggering rebuild precisely to keep this zero).
  ///
  /// Double faults (a media error on a survivor while rebuilding) do NOT
  /// abort the rebuild: the affected groups are recorded in
  /// last_rebuild_lost() and their unreconstructable page on the new disk is
  /// marked as a media error, so subsequent reads fail cleanly with
  /// kFailed/kMediaError instead of silently returning blank data.
  std::uint64_t rebuild_disk(std::uint32_t disk);

  /// Parity groups the last rebuild_disk call could not fully reconstruct
  /// (data-loss report for exactly the affected stripes).
  const std::vector<GroupId>& last_rebuild_lost() const { return last_rebuild_lost_; }

  // ---- Verification ----------------------------------------------------------

  /// Checks parity of every group (bypassing counters); returns the ids of
  /// inconsistent groups. With no deferred updates pending this must be empty;
  /// with deferred updates it must equal the stale set.
  std::vector<GroupId> scrub() const;

  /// Scrubs and repairs every inconsistent group. Repair is located, not
  /// blind: stale groups resync from data (the KDD deferred-parity contract);
  /// otherwise checksum-verified reads (kCorrupt/kMediaError) localise the
  /// rotted page, which is reconstructed from its peers and rewritten; for
  /// RAID-6 the P/Q syndromes localise a single silent data corruption even
  /// without device-level detection; only as a last resort is parity
  /// recomputed from data. Returns the number repaired.
  std::uint64_t scrub_and_repair();

  /// The raw media behind disk `i` (bypasses fault injection; tests/scrub).
  MemBlockDevice& disk(std::uint32_t i) { return *media_[i]; }
  const MemBlockDevice& disk(std::uint32_t i) const { return *media_[i]; }

  /// Per-disk fault-injection decorator (the device the array actually does
  /// I/O through).
  FaultInjectingDevice& faults(std::uint32_t i) { return *disks_[i]; }
  const FaultInjectingDevice& faults(std::uint32_t i) const { return *disks_[i]; }

  /// Attaches every disk to one shared power domain.
  void attach_rail(const std::shared_ptr<PowerRail>& rail);

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Pages healed by read-error repair (reconstruct + write-back).
  std::uint64_t read_repairs() const { return read_repairs_; }

  /// Aggregate disk I/O counters (pages, at the media level).
  std::uint64_t total_disk_reads() const;
  std::uint64_t total_disk_writes() const;
  void reset_counters();

 private:
  /// Retry-wrapped device I/O; transient backoff is charged to `plan`.
  IoStatus dev_read(std::uint32_t disk, Lba page, std::span<std::uint8_t> out,
                    IoPlan* plan = nullptr);
  IoStatus dev_write(std::uint32_t disk, Lba page, std::span<const std::uint8_t> data,
                     IoPlan* plan = nullptr);
  /// Recovers a partial read fault on a healthy disk: parity reconstruction
  /// plus write-back of the reconstructed page (read-error repair).
  IoStatus read_repair(Lba lba, std::span<std::uint8_t> out, IoPlan* plan);
  /// Repairs one inconsistent group (see scrub_and_repair).
  bool repair_group(GroupId g);
  /// Reconstructs the contents of the (lost) page at data index `idx` /
  /// parity of group `g` from the surviving devices. Page-level faults on
  /// survivors count as additional erasures (RAID-6 can absorb one).
  IoStatus reconstruct_data(GroupId g, std::uint32_t idx, std::span<std::uint8_t> out);
  /// Degraded / general write: reads the whole group (reconstructing lost
  /// members), applies the update, rewrites parity and the data page.
  IoStatus write_page_general(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan);
  void compute_parity(std::span<const Page> data, Page& p, Page* q) const;
  bool group_has_failed_member(GroupId g) const;

  RaidLayout layout_;
  std::vector<std::unique_ptr<MemBlockDevice>> media_;          ///< raw disks
  std::vector<std::unique_ptr<FaultInjectingDevice>> disks_;    ///< injectable I/O path
  std::unordered_set<GroupId> stale_groups_;
  std::vector<GroupId> last_rebuild_lost_;
  RetryPolicy retry_policy_;
  std::uint64_t read_repairs_ = 0;
};

}  // namespace kdd
