// Parity Logging (Stodolsky, Gibson & Holland, ISCA'93) — the classic
// non-cache answer to the RAID small-write problem, cited in Section V-A.
//
// Instead of updating parity in place (read parity + write parity, both
// random), every small write appends a *parity update image* — the XOR of
// the old and new data — to a dedicated log disk with cheap sequential
// writes. When the log region fills, the accumulated images are folded into
// the out-of-date parity blocks in one large batch.
//
// This gives the repository a second small-write baseline that attacks the
// same problem as KDD without an SSD, enabling an apples-to-oranges
// comparison bench (bench/ext_parity_logging).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "blockdev/mem_device.hpp"
#include "raid/raid_array.hpp"

namespace kdd {

class ParityLogRaid {
 public:
  /// Wraps `array` (not owned) and adds a dedicated log disk of
  /// `log_pages` pages. `apply_threshold` is the fill fraction that triggers
  /// the batched parity apply. Registers itself as the array's pre-rebuild
  /// hook so any rebuild (stop-the-world or online) drains the log first.
  ParityLogRaid(RaidArray* array, std::uint64_t log_pages,
                double apply_threshold = 0.9);
  ~ParityLogRaid();

  ParityLogRaid(const ParityLogRaid&) = delete;
  ParityLogRaid& operator=(const ParityLogRaid&) = delete;

  /// Read passthrough (degraded reads require the log to be applied first —
  /// handled internally).
  IoStatus read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan = nullptr);

  /// Small write via parity logging: read old data, write new data, append
  /// the parity update image to the log (1 random read + 1 random write +
  /// 1 sequential write instead of RMW's 2+2 random).
  IoStatus write_page(Lba lba, std::span<const std::uint8_t> data,
                      IoPlan* plan = nullptr);

  /// Folds every logged image into its parity block. Called automatically at
  /// the apply threshold and — via the array's pre-rebuild hook — before any
  /// disk rebuild, so callers no longer need to remember to drain it.
  std::uint64_t apply_log(IoPlan* plan = nullptr);

  std::uint64_t log_used_pages() const { return log_used_; }
  std::uint64_t log_capacity_pages() const { return log_->num_pages(); }
  std::uint64_t applies() const { return applies_; }
  std::uint64_t log_appends() const { return log_appends_; }
  const MemBlockDevice& log_disk() const { return *log_; }

  RaidArray& array() { return *array_; }

 private:
  struct PendingImage {
    GroupId group;
    std::uint32_t index;     ///< data index within the group
    std::uint64_t log_page;  ///< where the image lives on the log disk
  };

  RaidArray* array_;
  std::unique_ptr<MemBlockDevice> log_;
  double apply_threshold_;
  std::uint64_t log_used_ = 0;
  std::uint64_t applies_ = 0;
  std::uint64_t log_appends_ = 0;
  /// In-core index of logged images (the original maintains this in NVRAM).
  std::vector<PendingImage> pending_;
};

}  // namespace kdd
