// GF(2^8) arithmetic for RAID-6 Reed-Solomon (P+Q) coding.
//
// Field: polynomial basis with the conventional RAID-6 reducing polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), generator g = 2. Q parity is
// Q = sum_i g^i * D_i; rebuilding one or two lost data blocks solves the
// corresponding linear system over this field.
#pragma once

#include <cstdint>
#include <span>

namespace kdd::gf256 {

/// Multiplies two field elements.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. a must be nonzero.
std::uint8_t inv(std::uint8_t a);

/// a / b. b must be nonzero.
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// g^e for generator g = 2 (e taken mod 255).
std::uint8_t exp(unsigned e);

/// Discrete log base g of a nonzero element.
std::uint8_t log(std::uint8_t a);

/// dst ^= c * src, element-wise over byte buffers (the RAID-6 inner loop).
/// Dispatches to the split-nibble bulk kernel (common/kernels.hpp): scalar
/// table baseline, PSHUFB/TBL SIMD tiers where the CPU supports them.
void mul_acc(std::span<std::uint8_t> dst, std::uint8_t c,
             std::span<const std::uint8_t> src);

/// Historical byte-at-a-time log/exp implementation of mul_acc. Kept as the
/// bit-exact reference for the kernel equivalence tests and the perf gate.
void mul_acc_ref(std::span<std::uint8_t> dst, std::uint8_t c,
                 std::span<const std::uint8_t> src);

/// dst = c * dst.
void scale(std::span<std::uint8_t> dst, std::uint8_t c);

}  // namespace kdd::gf256
