#include "raid/gf256.hpp"

#include <array>

#include "common/check.hpp"
#include "common/kernels.hpp"

namespace kdd::gf256 {

namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp;  // doubled to avoid mod in mul
  std::array<std::uint8_t, 256> log;

  Tables() {
    std::uint8_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = x;
      exp[i + 255] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // multiply by generator 2 with reduction by 0x11d
      const bool carry = (x & 0x80) != 0;
      x = static_cast<std::uint8_t>(x << 1);
      if (carry) x = static_cast<std::uint8_t>(x ^ 0x1d);
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    log[0] = 0;  // never consulted for zero
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  KDD_CHECK(a != 0);
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  KDD_CHECK(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t exp(unsigned e) { return tables().exp[e % 255]; }

std::uint8_t log(std::uint8_t a) {
  KDD_CHECK(a != 0);
  return tables().log[a];
}

void mul_acc(std::span<std::uint8_t> dst, std::uint8_t c,
             std::span<const std::uint8_t> src) {
  KDD_DCHECK(dst.size() == src.size());
  kern::gf256_mul_acc(dst.data(), c, src.data(), dst.size());
}

void mul_acc_ref(std::span<std::uint8_t> dst, std::uint8_t c,
                 std::span<const std::uint8_t> src) {
  KDD_DCHECK(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const Tables& t = tables();
  const unsigned lc = t.log[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp[lc + t.log[s]];
  }
}

void scale(std::span<std::uint8_t> dst, std::uint8_t c) {
  if (c == 1) return;
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  const Tables& t = tables();
  const unsigned lc = t.log[c];
  for (auto& b : dst) {
    if (b != 0) b = t.exp[lc + t.log[b]];
  }
}

}  // namespace kdd::gf256
