// IoPlan: the bridge between the data plane and the timing plane.
//
// Every logical operation (array read, RMW write, cache hit, ...) executes
// immediately against the in-memory devices for correctness, and — when the
// caller passes a plan — records the device I/Os it performed as a sequence
// of phases. Ops within a phase are independent (issued in parallel); phases
// are ordered (phase k+1 starts when all ops of phase k completed). The
// discrete-event simulator replays plans against per-device queues to obtain
// response times, exactly mirroring e.g. RAID-5 RMW's
// [read data, read parity] -> [write data, write parity] dependency shape.
#pragma once

#include <cstdint>
#include <vector>

#include "blockdev/timing.hpp"
#include "common/units.hpp"

namespace kdd {

struct DeviceOp {
  enum class Target : std::uint8_t { kHdd, kSsd };

  Target target = Target::kHdd;
  std::uint32_t device = 0;  ///< disk index for kHdd; 0 for the single SSD
  Lba page = 0;
  IoKind kind = IoKind::kRead;
};

class IoPlan {
 public:
  /// Appends `op` to phase `phase`, growing the phase list as needed.
  void add(std::size_t phase, DeviceOp op) {
    if (phases_.size() <= phase) phases_.resize(phase + 1);
    phases_[phase].push_back(op);
  }

  /// Appends all phases of `other` after the current last phase.
  void append_sequential(const IoPlan& other) {
    for (const auto& ph : other.phases_) {
      if (ph.empty()) continue;
      phases_.push_back(ph);
    }
  }

  /// Merges `other` phase-by-phase (phase k of both plans proceeds in
  /// parallel) — used to combine the per-page plans of a multi-page request.
  void merge_parallel(const IoPlan& other) {
    if (phases_.size() < other.phases_.size()) phases_.resize(other.phases_.size());
    for (std::size_t i = 0; i < other.phases_.size(); ++i) {
      phases_[i].insert(phases_[i].end(), other.phases_[i].begin(),
                        other.phases_[i].end());
    }
  }

  /// Index of the next phase to add to (== current phase count).
  std::size_t next_phase() const { return phases_.size(); }

  /// Charges simulated wall-clock spent in retry backoff (transient-error
  /// absorption) to this plan. The event simulator adds it to the request's
  /// completion time after the final phase.
  void add_retry_delay(SimTime us) { retry_delay_us_ += us; }
  SimTime retry_delay_us() const { return retry_delay_us_; }

  const std::vector<std::vector<DeviceOp>>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  void clear() {
    phases_.clear();
    retry_delay_us_ = 0;
  }

  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& ph : phases_) n += ph.size();
    return n;
  }

 private:
  std::vector<std::vector<DeviceOp>> phases_;
  SimTime retry_delay_us_ = 0;
};

}  // namespace kdd
