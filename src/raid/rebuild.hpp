// Online rebuild + degraded-mode engine (ISSUE 6 tentpole).
//
// Drives RaidArray's incremental rebuild cursor (rebuild_begin/step/finish)
// as a background activity interleaved with foreground I/O:
//
//   * a degraded-mode state machine — healthy -> degraded -> rebuilding ->
//     healthy — with per-state dwell accounting (measured in foreground ops;
//     the counter/prototype modes have no wall clock),
//   * a hot-spare pool gating the degraded -> rebuilding transition,
//   * adaptive throttling: the engine only steps after a minimum number of
//     foreground ops have elapsed, and shrinks its chunk under foreground
//     pressure so rebuild progress never starves the workload (and a
//     quiet array lets it run at full chunk via urgent pumps),
//   * a stripe barrier hook: before reconstructing [begin, end) the engine
//     asks the cache to force-destage every dirty parity group in that
//     window (delta-fold ahead of the cursor) — the KDD-specific
//     correctness rule that keeps rebuild_stale_folds() at zero,
//   * a checkpoint sink: every cursor advance is published so the caller can
//     persist it in NVRAM; after a crash, resume() continues from the
//     checkpoint instead of re-reconstructing completed chunks.
//
// Progress, state, dwell times and spare inventory are exported through the
// global metrics registry (kdd_rebuild_progress, kdd_array_state,
// kdd_dwell_*_ops_total, kdd_spares_available — see docs/observability.md).
#pragma once

#include <cstdint>
#include <functional>

#include "raid/raid_array.hpp"

namespace kdd {

enum class ArrayHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,    ///< a member is lost and no rebuild is running
  kRebuilding = 2,  ///< online rebuild in flight
};

/// Inventory of standby replacement disks. take() gates the
/// degraded -> rebuilding transition; an exhausted pool parks the array in
/// degraded mode until add() restocks it (rolling-replacement drills).
class SparePool {
 public:
  explicit SparePool(std::uint32_t count = 0) : available_(count) {}
  bool take() {
    if (available_ == 0) return false;
    --available_;
    return true;
  }
  void add(std::uint32_t n = 1) { available_ += n; }
  std::uint32_t available() const { return available_; }

 private:
  std::uint32_t available_;
};

/// What survives a power failure: which disk was being rebuilt and how far
/// the cursor got. Persisted via the checkpoint sink (KddCache stores it in
/// NVRAM); resume() re-arms the array from it.
struct RebuildCheckpoint {
  std::uint32_t disk = 0;
  std::uint64_t cursor = 0;
  bool active = false;
};

struct OnlineRebuildConfig {
  std::uint32_t chunk_groups = 64;      ///< groups per step when unpressured
  std::uint32_t min_chunk_groups = 4;   ///< floor under maximum pressure
  std::uint32_t ops_between_steps = 16; ///< foreground ops required between steps
  /// Foreground ops since the last step at which the chunk reaches its floor
  /// (linear shrink between ops_between_steps and this).
  std::uint32_t pressure_window = 256;
};

class RebuildEngine {
 public:
  explicit RebuildEngine(RaidArray* array, OnlineRebuildConfig config = {},
                         SparePool* spares = nullptr);

  RebuildEngine(const RebuildEngine&) = delete;
  RebuildEngine& operator=(const RebuildEngine&) = delete;

  ArrayHealth health() const;

  /// Fails `disk` at the array and — if a spare is available — immediately
  /// begins the online rebuild. Returns true when the rebuild started
  /// (otherwise the array stays degraded until pump() finds a spare).
  bool on_disk_failure(std::uint32_t disk);

  /// degraded -> rebuilding: takes a spare and starts rebuilding the first
  /// failed disk. False when no disk is failed or the pool is empty.
  bool start_rebuild();

  /// Foreground traffic notification: feeds the throttle and the per-state
  /// dwell accounting. Call once per cache/array request.
  void note_foreground(std::uint64_t n = 1);

  /// Runs at most one throttled rebuild step. `urgent` (idle pump) skips the
  /// throttle and uses the full chunk. Returns groups reconstructed. Never
  /// reconstructs a window the stripe barrier could not clear — the step is
  /// deferred and retried on the next pump.
  std::uint64_t pump(IoPlan* plan = nullptr, bool urgent = false);

  /// Pre-step barrier: return true when every dirty group in [begin, end)
  /// has been force-destaged / delta-folded. Returning false defers the step.
  void set_stripe_barrier(std::function<bool(GroupId, GroupId)> barrier) {
    barrier_ = std::move(barrier);
  }

  /// Invoked on every checkpoint change (start, cursor advance, completion);
  /// the sink persists it somewhere that survives power loss.
  void set_checkpoint_sink(std::function<void(const RebuildCheckpoint&)> sink) {
    sink_ = std::move(sink);
  }

  /// Re-arms an interrupted rebuild from a persisted checkpoint. Call after
  /// power restore and BEFORE constructing a recovering cache, so recovery
  /// reads see the not-yet-rebuilt region as down rather than as garbage.
  void resume(const RebuildCheckpoint& cp);

  // ---- Introspection --------------------------------------------------------

  bool rebuild_active() const { return array_->rebuild_active(); }
  /// Cursor position in 1/1000 of the array (1000 == complete/healthy).
  std::uint64_t progress_permille() const;
  std::uint64_t rebuilds_completed() const { return rebuilds_completed_; }
  std::uint64_t groups_rebuilt() const { return groups_rebuilt_; }
  std::uint64_t barrier_deferrals() const { return barrier_deferrals_; }
  /// Foreground ops observed while in `state` (dwell time in ops).
  std::uint64_t dwell_ops(ArrayHealth state) const {
    return dwell_[static_cast<std::size_t>(state)];
  }
  SparePool* spares() const { return spares_; }
  const OnlineRebuildConfig& config() const { return cfg_; }

 private:
  std::uint32_t effective_chunk(bool urgent) const;
  void publish_state() const;
  void publish_checkpoint() const;

  RaidArray* array_;
  OnlineRebuildConfig cfg_;
  SparePool* spares_;  ///< nullptr == unlimited spares
  std::function<bool(GroupId, GroupId)> barrier_;
  std::function<void(const RebuildCheckpoint&)> sink_;
  std::uint64_t ops_since_step_ = 0;
  /// Last state pushed by publish_state(); lets the (const) publisher emit
  /// health/flight transition events only on an actual edge.
  mutable int published_state_ = -1;
  std::uint64_t dwell_[3] = {0, 0, 0};
  std::uint64_t rebuilds_completed_ = 0;
  std::uint64_t groups_rebuilt_ = 0;
  std::uint64_t barrier_deferrals_ = 0;
};

}  // namespace kdd
