#include "raid/scrub.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace kdd {

namespace {

struct ScrubMetrics {
  obs::Counter passes;
  obs::Counter groups;
  obs::Counter repairs;
  obs::Counter wear_deferrals;
};

ScrubMetrics& scrub_metrics() {
  static ScrubMetrics* m = [] {
    auto* sm = new ScrubMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    sm->passes = obs::Counter(&reg, "kdd_scrub_passes_total");
    sm->groups = obs::Counter(&reg, "kdd_scrub_groups_total");
    sm->repairs = obs::Counter(&reg, "kdd_scrub_repairs_total");
    sm->wear_deferrals = obs::Counter(&reg, "kdd_scrub_wear_deferrals_total");
    return sm;
  }();
  return *m;
}

}  // namespace

ScrubScheduler::ScrubScheduler(RaidArray* array, ScrubConfig config)
    : array_(array), cfg_(config) {
  KDD_CHECK(array_ != nullptr);
  KDD_CHECK(cfg_.groups_per_tick > 0);
  writes_at_last_tick_ = array_->total_disk_writes();
}

std::uint64_t ScrubScheduler::tick() {
  if (ops_since_tick_ < cfg_.ops_between_ticks) return 0;
  // Paused while degraded, rebuilding, or unpowered: parity cannot be
  // verified against a missing member, and scrub_range refuses to run across
  // a rebuild cursor.
  if (!array_->powered() || array_->failed_disk_count() > 0 ||
      array_->rebuild_active()) {
    ++paused_ticks_;
    ops_since_tick_ = 0;
    return 0;
  }
  // Wear gate: heavy recent write traffic (destage storm, post-rebuild
  // catch-up) means the media needs a breather, not extra repair writes.
  const std::uint64_t writes_now = array_->total_disk_writes();
  if (cfg_.wear_write_budget > 0 &&
      writes_now - writes_at_last_tick_ > cfg_.wear_write_budget) {
    ++wear_deferrals_;
    scrub_metrics().wear_deferrals.inc();
    writes_at_last_tick_ = writes_now;
    ops_since_tick_ = 0;
    return 0;
  }
  const std::uint64_t total = array_->geometry().num_groups();
  if (total == 0) return 0;
  const GroupId begin = cursor_;
  const GroupId end = std::min<GroupId>(total, begin + cfg_.groups_per_tick);
  // Stale (deferred-parity) groups are skipped: their mismatch is by design
  // and resolving it belongs to the cache's delta fold, not the scrubber.
  const std::uint64_t repaired =
      array_->scrub_and_repair_range(begin, end, /*skip_stale=*/true);
  repairs_ += repaired;
  if (repaired > 0) {
    scrub_metrics().repairs.inc(repaired);
    obs::flight_note(obs::FlightKind::kScrubRepair, "scrub_pass",
                     static_cast<std::int64_t>(repaired),
                     static_cast<std::int64_t>(begin));
  }
  const std::uint64_t scanned = end - begin;
  groups_scrubbed_ += scanned;
  scrub_metrics().groups.inc(scanned);
  cursor_ = end;
  if (cursor_ >= total) {
    cursor_ = 0;
    ++passes_;
    scrub_metrics().passes.inc();
  }
  ops_since_tick_ = 0;
  writes_at_last_tick_ = array_->total_disk_writes();
  return scanned;
}

}  // namespace kdd
