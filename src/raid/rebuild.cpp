#include "raid/rebuild.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace kdd {

namespace {

struct EngineMetrics {
  obs::Gauge array_state;
  obs::Gauge rebuild_progress;
  obs::Gauge spares_available;
  obs::Counter rebuilds_started;
  obs::Counter rebuilds_completed;
  obs::Counter barrier_deferrals;
  obs::Counter dwell_healthy;
  obs::Counter dwell_degraded;
  obs::Counter dwell_rebuilding;
};

EngineMetrics& engine_metrics() {
  static EngineMetrics* m = [] {
    auto* em = new EngineMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    em->array_state = obs::Gauge(&reg, "kdd_array_state");
    em->rebuild_progress = obs::Gauge(&reg, "kdd_rebuild_progress");
    em->spares_available = obs::Gauge(&reg, "kdd_spares_available");
    em->rebuilds_started = obs::Counter(&reg, "kdd_rebuilds_started_total");
    em->rebuilds_completed = obs::Counter(&reg, "kdd_rebuilds_completed_total");
    em->barrier_deferrals = obs::Counter(&reg, "kdd_rebuild_barrier_deferrals_total");
    em->dwell_healthy = obs::Counter(&reg, "kdd_dwell_healthy_ops_total");
    em->dwell_degraded = obs::Counter(&reg, "kdd_dwell_degraded_ops_total");
    em->dwell_rebuilding = obs::Counter(&reg, "kdd_dwell_rebuilding_ops_total");
    return em;
  }();
  return *m;
}

}  // namespace

RebuildEngine::RebuildEngine(RaidArray* array, OnlineRebuildConfig config,
                             SparePool* spares)
    : array_(array), cfg_(config), spares_(spares) {
  KDD_CHECK(array_ != nullptr);
  KDD_CHECK(cfg_.chunk_groups > 0);
  KDD_CHECK(cfg_.min_chunk_groups > 0);
  KDD_CHECK(cfg_.min_chunk_groups <= cfg_.chunk_groups);
  publish_state();
}

ArrayHealth RebuildEngine::health() const {
  if (array_->rebuild_active()) return ArrayHealth::kRebuilding;
  if (array_->failed_disk_count() > 0) return ArrayHealth::kDegraded;
  return ArrayHealth::kHealthy;
}

bool RebuildEngine::on_disk_failure(std::uint32_t disk) {
  array_->fail_disk(disk);
  publish_state();
  return start_rebuild();
}

bool RebuildEngine::start_rebuild() {
  if (array_->rebuild_active()) return false;
  const std::uint32_t n = array_->geometry().num_disks;
  std::uint32_t failed = RaidArray::kNoRebuild;
  for (std::uint32_t d = 0; d < n; ++d) {
    if (array_->disk_failed(d)) {
      failed = d;
      break;
    }
  }
  if (failed == RaidArray::kNoRebuild) return false;
  if (spares_ && !spares_->take()) return false;  // wait for a restock
  array_->rebuild_begin(failed);
  ops_since_step_ = 0;
  engine_metrics().rebuilds_started.inc();
  publish_state();
  publish_checkpoint();
  return true;
}

void RebuildEngine::note_foreground(std::uint64_t n) {
  ops_since_step_ += n;
  const ArrayHealth h = health();
  dwell_[static_cast<std::size_t>(h)] += n;
  switch (h) {
    case ArrayHealth::kHealthy: engine_metrics().dwell_healthy.inc(n); break;
    case ArrayHealth::kDegraded: engine_metrics().dwell_degraded.inc(n); break;
    case ArrayHealth::kRebuilding: engine_metrics().dwell_rebuilding.inc(n); break;
  }
}

std::uint32_t RebuildEngine::effective_chunk(bool urgent) const {
  if (urgent) return cfg_.chunk_groups;
  // Adaptive throttle: the longer the foreground queue kept us away (ops
  // backed up since the last step), the smaller the chunk we steal now.
  if (ops_since_step_ >= cfg_.pressure_window) return cfg_.min_chunk_groups;
  if (ops_since_step_ <= cfg_.ops_between_steps) return cfg_.chunk_groups;
  const std::uint64_t span = cfg_.pressure_window - cfg_.ops_between_steps;
  const std::uint64_t into = ops_since_step_ - cfg_.ops_between_steps;
  const std::uint64_t range = cfg_.chunk_groups - cfg_.min_chunk_groups;
  return static_cast<std::uint32_t>(cfg_.chunk_groups - (range * into) / span);
}

std::uint64_t RebuildEngine::pump(IoPlan* plan, bool urgent) {
  // A dead rail makes every device op fail; stepping (or force-destaging via
  // the barrier) now would misread rejections as media loss. The checkpointed
  // cursor waits for power restore + resume().
  if (!array_->powered()) return 0;
  if (!array_->rebuild_active()) {
    // A spare may have been restocked since the failure: retry the start.
    if (health() != ArrayHealth::kDegraded || !start_rebuild()) return 0;
  }
  if (!urgent && ops_since_step_ < cfg_.ops_between_steps) return 0;
  const std::uint64_t total = array_->geometry().num_groups();
  const GroupId begin = array_->rebuild_cursor();
  const GroupId end = std::min<GroupId>(total, begin + effective_chunk(urgent));
  if (begin < end && barrier_ && !barrier_(begin, end)) {
    // Dirty groups in the window could not be destaged right now (e.g. an
    // in-flight claim by the cleaner pool). Defer; claims are transient.
    ++barrier_deferrals_;
    engine_metrics().barrier_deferrals.inc();
    return 0;
  }
  const std::uint64_t done = array_->rebuild_step(end - begin, plan);
  groups_rebuilt_ += done;
  ops_since_step_ = 0;
  publish_checkpoint();
  if (array_->rebuild_cursor() >= total) {
    array_->rebuild_finish();
    ++rebuilds_completed_;
    engine_metrics().rebuilds_completed.inc();
    publish_state();
    publish_checkpoint();
  }
  return done;
}

void RebuildEngine::resume(const RebuildCheckpoint& cp) {
  KDD_CHECK(cp.active);
  array_->rebuild_resume(cp.disk, cp.cursor);
  ops_since_step_ = 0;
  publish_state();
  publish_checkpoint();
}

std::uint64_t RebuildEngine::progress_permille() const {
  if (!array_->rebuild_active()) {
    return health() == ArrayHealth::kHealthy ? 1000 : 0;
  }
  const std::uint64_t total = array_->geometry().num_groups();
  return total == 0 ? 1000 : (array_->rebuild_cursor() * 1000) / total;
}

void RebuildEngine::publish_state() const {
  EngineMetrics& m = engine_metrics();
  const int state = static_cast<int>(health());
  if (state != published_state_) {
    obs::flight_note(obs::FlightKind::kStateTransition, "array_health", state,
                     published_state_);
    obs::health_array_state(state);
    published_state_ = state;
  }
  m.array_state.set(static_cast<std::int64_t>(health()));
  m.rebuild_progress.set(static_cast<std::int64_t>(progress_permille()));
  if (spares_) m.spares_available.set(spares_->available());
}

void RebuildEngine::publish_checkpoint() const {
  engine_metrics().rebuild_progress.set(
      static_cast<std::int64_t>(progress_permille()));
  if (!sink_) return;
  RebuildCheckpoint cp;
  cp.active = array_->rebuild_active();
  cp.disk = cp.active ? array_->rebuilding_disk() : 0;
  cp.cursor = cp.active ? array_->rebuild_cursor() : 0;
  sink_(cp);
}

}  // namespace kdd
