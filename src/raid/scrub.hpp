// Continuous background scrub scheduler (ISSUE 6): walks the array in small
// rate-limited windows, verifying parity and repairing what it finds via the
// located-repair machinery behind scrub_and_repair.
//
// Pacing rules:
//   * rate-limited — a window is scrubbed only after `ops_between_ticks`
//     foreground ops have elapsed, so scrubbing never competes with a busy
//     foreground,
//   * wear-aware — if the media absorbed more than `wear_write_budget`
//     writes since the last window, the tick is deferred: scrubbing a device
//     that is already burning write endurance (destage storms, rebuild
//     traffic) would add read-disturb and repair-write wear at the worst
//     possible moment,
//   * degraded-aware — while a disk is failed or an online rebuild is in
//     flight the scheduler pauses entirely (parity cannot be verified against
//     a missing member; the rebuild is the repair),
//   * stale-aware — known stale (deferred-parity) groups are skipped: their
//     mismatch is by design and owned by the cache's destage machinery.
#pragma once

#include <cstdint>

#include "raid/raid_array.hpp"

namespace kdd {

struct ScrubConfig {
  std::uint64_t groups_per_tick = 16;
  std::uint64_t ops_between_ticks = 256;  ///< foreground ops between windows
  /// Media writes since the last tick above which the window is deferred
  /// (wear pressure). 0 disables the wear gate.
  std::uint64_t wear_write_budget = 512;
};

class ScrubScheduler {
 public:
  explicit ScrubScheduler(RaidArray* array, ScrubConfig config = {});

  ScrubScheduler(const ScrubScheduler&) = delete;
  ScrubScheduler& operator=(const ScrubScheduler&) = delete;

  /// Foreground traffic notification (feeds the rate limit).
  void note_foreground(std::uint64_t n = 1) { ops_since_tick_ += n; }

  /// Scrubs the next window if one is due. Returns groups scrubbed (0 when
  /// rate-limited, wear-deferred or paused while degraded/rebuilding).
  std::uint64_t tick();

  /// Full passes over the whole array completed so far.
  std::uint64_t passes() const { return passes_; }
  std::uint64_t groups_scrubbed() const { return groups_scrubbed_; }
  std::uint64_t repairs() const { return repairs_; }
  std::uint64_t wear_deferrals() const { return wear_deferrals_; }
  std::uint64_t paused_ticks() const { return paused_ticks_; }
  GroupId cursor() const { return cursor_; }
  const ScrubConfig& config() const { return cfg_; }

 private:
  RaidArray* array_;
  ScrubConfig cfg_;
  GroupId cursor_ = 0;
  std::uint64_t ops_since_tick_ = 0;
  std::uint64_t writes_at_last_tick_ = 0;
  std::uint64_t passes_ = 0;
  std::uint64_t groups_scrubbed_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t wear_deferrals_ = 0;
  std::uint64_t paused_ticks_ = 0;
};

}  // namespace kdd
