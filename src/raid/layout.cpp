#include "raid/layout.hpp"

#include "common/check.hpp"

namespace kdd {

RaidLayout::RaidLayout(const RaidGeometry& geo) : geo_(geo) {
  KDD_CHECK(geo_.num_disks > geo_.parity_disks());
  KDD_CHECK(geo_.chunk_pages > 0);
  KDD_CHECK(geo_.disk_pages >= geo_.chunk_pages);
  if (geo_.level == RaidLevel::kRaid6) KDD_CHECK(geo_.num_disks >= 4);
}

std::uint32_t RaidLayout::parity_disk(std::uint64_t stripe_row) const {
  KDD_DCHECK(geo_.level != RaidLevel::kRaid0);
  // Left-symmetric: parity rotates from the last disk downwards.
  return geo_.num_disks - 1 -
         static_cast<std::uint32_t>(stripe_row % geo_.num_disks);
}

std::uint32_t RaidLayout::q_parity_disk(std::uint64_t stripe_row) const {
  KDD_DCHECK(geo_.level == RaidLevel::kRaid6);
  return (parity_disk(stripe_row) + 1) % geo_.num_disks;
}

std::uint32_t RaidLayout::data_disk(std::uint64_t stripe_row, std::uint32_t idx) const {
  KDD_DCHECK(idx < geo_.data_disks());
  if (geo_.level == RaidLevel::kRaid0) return idx;
  // Data fills the disks after Q (RAID-6) / P (RAID-5), wrapping around —
  // the left-symmetric arrangement that keeps sequential reads balanced.
  const std::uint32_t first =
      geo_.level == RaidLevel::kRaid6 ? (q_parity_disk(stripe_row) + 1) % geo_.num_disks
                                      : (parity_disk(stripe_row) + 1) % geo_.num_disks;
  return (first + idx) % geo_.num_disks;
}

DiskAddr RaidLayout::map(Lba logical) const {
  KDD_DCHECK(logical < geo_.data_pages());
  const std::uint64_t row_capacity =
      static_cast<std::uint64_t>(geo_.data_disks()) * geo_.chunk_pages;
  const std::uint64_t stripe_row = logical / row_capacity;
  const std::uint64_t within = logical % row_capacity;
  const auto idx = static_cast<std::uint32_t>(within / geo_.chunk_pages);
  const std::uint64_t page_in_chunk = within % geo_.chunk_pages;
  return {data_disk(stripe_row, idx), stripe_row * geo_.chunk_pages + page_in_chunk};
}

GroupId RaidLayout::group_of(Lba logical) const {
  KDD_DCHECK(logical < geo_.data_pages());
  const std::uint64_t row_capacity =
      static_cast<std::uint64_t>(geo_.data_disks()) * geo_.chunk_pages;
  const std::uint64_t stripe_row = logical / row_capacity;
  const std::uint64_t page_in_chunk = (logical % row_capacity) % geo_.chunk_pages;
  return stripe_row * geo_.chunk_pages + page_in_chunk;
}

std::uint32_t RaidLayout::index_in_group(Lba logical) const {
  const std::uint64_t row_capacity =
      static_cast<std::uint64_t>(geo_.data_disks()) * geo_.chunk_pages;
  return static_cast<std::uint32_t>((logical % row_capacity) / geo_.chunk_pages);
}

Lba RaidLayout::group_member(GroupId g, std::uint32_t idx) const {
  KDD_DCHECK(idx < geo_.data_disks());
  const std::uint64_t stripe_row = g / geo_.chunk_pages;
  const std::uint64_t page_in_chunk = g % geo_.chunk_pages;
  const std::uint64_t row_capacity =
      static_cast<std::uint64_t>(geo_.data_disks()) * geo_.chunk_pages;
  return stripe_row * row_capacity +
         static_cast<std::uint64_t>(idx) * geo_.chunk_pages + page_in_chunk;
}

DiskAddr RaidLayout::parity_addr(GroupId g) const {
  KDD_DCHECK(geo_.level != RaidLevel::kRaid0);
  const std::uint64_t stripe_row = g / geo_.chunk_pages;
  const std::uint64_t page_in_chunk = g % geo_.chunk_pages;
  return {parity_disk(stripe_row), stripe_row * geo_.chunk_pages + page_in_chunk};
}

DiskAddr RaidLayout::q_parity_addr(GroupId g) const {
  KDD_DCHECK(geo_.level == RaidLevel::kRaid6);
  const std::uint64_t stripe_row = g / geo_.chunk_pages;
  const std::uint64_t page_in_chunk = g % geo_.chunk_pages;
  return {q_parity_disk(stripe_row), stripe_row * geo_.chunk_pages + page_in_chunk};
}

}  // namespace kdd
