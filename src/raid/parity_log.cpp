#include "raid/parity_log.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/page_arena.hpp"

namespace kdd {

ParityLogRaid::ParityLogRaid(RaidArray* array, std::uint64_t log_pages,
                             double apply_threshold)
    : array_(array),
      log_(std::make_unique<MemBlockDevice>(log_pages)),
      apply_threshold_(apply_threshold) {
  KDD_CHECK(array_ != nullptr);
  KDD_CHECK(array_->geometry().level == RaidLevel::kRaid5);
  KDD_CHECK(log_pages > 0);
  KDD_CHECK(apply_threshold_ > 0.0 && apply_threshold_ <= 1.0);
  pending_.reserve(log_pages);
  // Auto-drain on rebuild: reconstructing a disk from parity that is missing
  // logged updates silently corrupts every affected stripe, so the array
  // calls back here before any rebuild touches the media.
  array_->set_pre_rebuild_hook([this](std::uint32_t) {
    apply_log();
    // A rebuild with images still pending would reconstruct from a stale log.
    KDD_CHECK(pending_.empty());
  });
}

ParityLogRaid::~ParityLogRaid() { array_->set_pre_rebuild_hook(nullptr); }

IoStatus ParityLogRaid::read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  // A degraded read reconstructs through parity, which must be current.
  const DiskAddr addr = array_->layout().map(lba);
  if (array_->disk_failed(addr.disk) && !pending_.empty()) apply_log(plan);
  return array_->read_page(lba, out, plan);
}

IoStatus ParityLogRaid::write_page(Lba lba, std::span<const std::uint8_t> data,
                                   IoPlan* plan) {
  if (log_used_ >= log_->num_pages() ||
      static_cast<double>(log_used_) >=
          apply_threshold_ * static_cast<double>(log_->num_pages())) {
    apply_log(plan);
  }
  // Read the old data, compute the parity update image (arena scratch: the
  // append fast path allocates nothing once warm).
  ScratchPage old_data_sp;
  Page& old_data = *old_data_sp;
  const DiskAddr addr = array_->layout().map(lba);
  if (array_->disk_failed(addr.disk)) {
    // Degraded: fall back to the array's general write (parity current after
    // apply_log above, so reconstruction is safe).
    if (!pending_.empty()) apply_log(plan);
    return array_->write_page(lba, data, plan);
  }
  const std::size_t phase = plan ? plan->next_phase() : 0;
  if (array_->disk(addr.disk).read(addr.page, old_data) != IoStatus::kOk) {
    return IoStatus::kFailed;
  }
  if (plan) plan->add(phase, {DeviceOp::Target::kHdd, addr.disk, addr.page, IoKind::kRead});
  xor_into(old_data, data);  // old_data now holds the parity update image

  // Write the new data (without touching parity) and append the image.
  if (array_->write_page_nopar(lba, data, plan) != IoStatus::kOk) {
    return IoStatus::kFailed;
  }
  const std::uint64_t log_page = log_used_++;
  if (log_->write(log_page, old_data) != IoStatus::kOk) return IoStatus::kFailed;
  ++log_appends_;
  if (plan) {
    // The log disk is addressed as HDD index num_disks (sequential appends).
    plan->add(plan->next_phase() == 0 ? 0 : plan->next_phase() - 1,
              {DeviceOp::Target::kHdd, array_->geometry().num_disks, log_page,
               IoKind::kWrite});
  }
  pending_.push_back({array_->layout().group_of(lba),
                      array_->layout().index_in_group(lba), log_page});
  return IoStatus::kOk;
}

std::uint64_t ParityLogRaid::apply_log(IoPlan* plan) {
  if (pending_.empty()) return 0;
  ++applies_;
  // Batch by group: read each image (large sequential log read), fold all
  // images of one group into its parity with a single RMW pair.
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingImage& a, const PendingImage& b) {
              return a.group < b.group || (a.group == b.group && a.log_page < b.log_page);
            });
  const std::size_t read_phase = plan ? plan->next_phase() : 0;
  std::uint64_t groups = 0;
  std::size_t i = 0;
  ScratchPage image_sp;
  Page& image = *image_sp;
  while (i < pending_.size()) {
    const GroupId g = pending_[i].group;
    std::vector<GroupDelta> deltas;
    std::vector<Page> diffs;  // arena-backed, released below
    // Collect all images of this group; images for the same page compose by
    // XOR (old1^new1 ^ old2^new2 == old1^new2 when new1 == old2). First image
    // of a page is read straight into its diff slot — no staging copy.
    std::unordered_map<std::uint32_t, std::size_t> by_index;
    bool read_failed = false;
    while (i < pending_.size() && pending_[i].group == g) {
      const auto it = by_index.find(pending_[i].index);
      Page* dst = nullptr;
      if (it == by_index.end()) {
        by_index[pending_[i].index] = diffs.size();
        diffs.push_back(PageArena::local().acquire());
        dst = &diffs.back();
      } else {
        dst = &image;
      }
      if (log_->read(pending_[i].log_page, *dst) != IoStatus::kOk) {
        read_failed = true;
        break;
      }
      if (plan) {
        plan->add(read_phase, {DeviceOp::Target::kHdd, array_->geometry().num_disks,
                               pending_[i].log_page, IoKind::kRead});
      }
      if (dst == &image) xor_into(diffs[it->second], image);
      ++i;
    }
    if (read_failed) {
      release_scratch_pages(diffs);
      return groups;
    }
    deltas.reserve(diffs.size());
    for (const auto& [index, pos] : by_index) deltas.push_back({index, &diffs[pos]});
    const IoStatus st = array_->update_parity_rmw(g, deltas, plan);
    release_scratch_pages(diffs);
    KDD_CHECK(st == IoStatus::kOk);
    ++groups;
  }
  pending_.clear();
  log_used_ = 0;
  return groups;
}

}  // namespace kdd
