#include "blockdev/ssd_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace kdd {

SsdModel::SsdModel(const SsdConfig& config) : config_(config) {
  KDD_CHECK(config_.logical_pages > 0);
  KDD_CHECK(config_.pages_per_block > 0);
  KDD_CHECK(config_.overprovision > 0.0);
  const double phys_pages_d =
      std::ceil(static_cast<double>(config_.logical_pages) * (1.0 + config_.overprovision));
  num_blocks_ = (static_cast<std::uint64_t>(phys_pages_d) + config_.pages_per_block - 1) /
                    config_.pages_per_block +
                config_.gc_free_block_threshold + 1;
  flash_.resize(physical_pages() * kPageSize, 0);
  l2p_.assign(config_.logical_pages, kInvalid64);
  p2l_.assign(physical_pages(), kInvalid64);
  blocks_.assign(num_blocks_, BlockMeta{});
  free_blocks_.reserve(num_blocks_);
  for (std::uint64_t b = num_blocks_; b-- > 0;) free_blocks_.push_back(b);
}

IoStatus SsdModel::read(Lba page, std::span<std::uint8_t> out) {
  KDD_CHECK(page < config_.logical_pages);
  KDD_CHECK(out.size() == kPageSize);
  if (failed_) return IoStatus::kFailed;
  ++counters_.reads;
  const std::uint64_t phys = l2p_[page];
  if (phys == kInvalid64) {
    std::memset(out.data(), 0, kPageSize);
  } else {
    std::memcpy(out.data(), flash_.data() + phys * kPageSize, kPageSize);
  }
  return IoStatus::kOk;
}

void SsdModel::host_program(Lba page, std::span<const std::uint8_t> data) {
  ++counters_.writes;
  ++host_page_writes_;
  const std::uint64_t old_phys = l2p_[page];
  if (old_phys != kInvalid64) invalidate_physical(old_phys);
  const std::uint64_t phys = allocate_physical_page();
  program(phys, data, /*is_gc_copy=*/false);
  l2p_[page] = phys;
  p2l_[phys] = page;
}

void SsdModel::charge_map_journal() {
  if (config_.map_journal_bytes_per_op == 0) return;
  journal_bytes_accum_ += config_.map_journal_bytes_per_op;
  while (journal_bytes_accum_ >= kPageSize) {
    journal_bytes_accum_ -= kPageSize;
    ++nand_page_writes_;
    ++journal_nand_pages_;
  }
}

IoStatus SsdModel::write(Lba page, std::span<const std::uint8_t> data) {
  KDD_CHECK(page < config_.logical_pages);
  KDD_CHECK(data.size() == kPageSize);
  if (failed_) return IoStatus::kFailed;
  ++host_write_ops_rand_;
  ++host_pages_rand_;
  charge_map_journal();
  host_program(page, data);
  return IoStatus::kOk;
}

IoStatus SsdModel::write_multi(std::span<const PageWrite> batch,
                               std::size_t* pages_done) {
  for (const PageWrite& w : batch) {
    KDD_CHECK(w.page < config_.logical_pages);
    KDD_CHECK(w.data.size() == kPageSize);
  }
  if (failed_) {
    if (pages_done) *pages_done = 0;
    return IoStatus::kFailed;
  }
  if (!batch.empty()) {
    ++host_write_ops_seq_;
    host_pages_seq_ += batch.size();
    charge_map_journal();
    for (const PageWrite& w : batch) host_program(w.page, w.data);
  }
  if (pages_done) *pages_done = batch.size();
  return IoStatus::kOk;
}

void SsdModel::trim(Lba page) {
  KDD_CHECK(page < config_.logical_pages);
  ++counters_.trims;
  if (failed_) return;
  const std::uint64_t phys = l2p_[page];
  if (phys != kInvalid64) {
    invalidate_physical(phys);
    l2p_[page] = kInvalid64;
  }
}

void SsdModel::replace() {
  std::fill(flash_.begin(), flash_.end(), std::uint8_t{0});
  std::fill(l2p_.begin(), l2p_.end(), kInvalid64);
  std::fill(p2l_.begin(), p2l_.end(), kInvalid64);
  blocks_.assign(num_blocks_, BlockMeta{});
  free_blocks_.clear();
  for (std::uint64_t b = num_blocks_; b-- > 0;) free_blocks_.push_back(b);
  active_block_ = kInvalid64;
  failed_ = false;
  host_page_writes_ = nand_page_writes_ = gc_page_copies_ = block_erases_ = 0;
  host_write_ops_rand_ = host_write_ops_seq_ = 0;
  host_pages_rand_ = host_pages_seq_ = 0;
  journal_nand_pages_ = journal_bytes_accum_ = 0;
}

SsdWearStats SsdModel::wear() const {
  SsdWearStats w;
  w.host_page_writes = host_page_writes_;
  w.nand_page_writes = nand_page_writes_;
  w.gc_page_copies = gc_page_copies_;
  w.block_erases = block_erases_;
  w.host_write_ops_rand = host_write_ops_rand_;
  w.host_write_ops_seq = host_write_ops_seq_;
  w.host_pages_rand = host_pages_rand_;
  w.host_pages_seq = host_pages_seq_;
  w.journal_nand_pages = journal_nand_pages_;
  std::uint64_t total = 0;
  for (const auto& b : blocks_) {
    total += b.erase_count;
    w.max_erase_count = std::max(w.max_erase_count, b.erase_count);
  }
  w.mean_erase_count = static_cast<double>(total) / static_cast<double>(num_blocks_);
  return w;
}

std::vector<double> SsdModel::region_erase_counts(std::size_t regions) const {
  if (regions == 0) return {};
  regions = std::min<std::size_t>(regions, num_blocks_);
  std::vector<double> out(regions, 0.0);
  const std::uint64_t span = num_blocks_ / regions;
  for (std::uint64_t b = 0; b < num_blocks_; ++b) {
    const std::size_t r = std::min<std::size_t>(regions - 1, span ? b / span : 0);
    out[r] += static_cast<double>(blocks_[b].erase_count);
  }
  return out;
}

double SsdModel::endurance_consumed() const {
  const double budget =
      static_cast<double>(num_blocks_) * static_cast<double>(config_.pe_cycle_limit);
  return static_cast<double>(block_erases_) / budget;
}

void SsdModel::invalidate_physical(std::uint64_t phys) {
  KDD_DCHECK(p2l_[phys] != kInvalid64);
  p2l_[phys] = kInvalid64;
  BlockMeta& blk = blocks_[phys / config_.pages_per_block];
  KDD_DCHECK(blk.valid_pages > 0);
  --blk.valid_pages;
}

void SsdModel::program(std::uint64_t phys, std::span<const std::uint8_t> data,
                       bool is_gc_copy) {
  std::memcpy(flash_.data() + phys * kPageSize, data.data(), kPageSize);
  ++nand_page_writes_;
  if (is_gc_copy) ++gc_page_copies_;
  BlockMeta& blk = blocks_[phys / config_.pages_per_block];
  ++blk.valid_pages;
  blk.fill_seq = ++program_seq_;
}

std::uint64_t SsdModel::allocate_physical_page() {
  if (!in_gc_) maybe_collect_garbage();
  if (active_block_ == kInvalid64 ||
      blocks_[active_block_].write_ptr == config_.pages_per_block) {
    KDD_CHECK(!free_blocks_.empty());
    active_block_ = free_blocks_.back();
    free_blocks_.pop_back();
    KDD_DCHECK(blocks_[active_block_].write_ptr == 0);
  }
  BlockMeta& blk = blocks_[active_block_];
  const std::uint64_t phys =
      active_block_ * config_.pages_per_block + blk.write_ptr;
  ++blk.write_ptr;
  return phys;
}

void SsdModel::maybe_collect_garbage() {
  if (free_blocks_.size() >= config_.gc_free_block_threshold) return;
  in_gc_ = true;
  // Static wear leveling: at most one cold-block relocation per GC pass
  // (relocating a fully-valid block makes no free-space progress, so it must
  // never be the only thing the loop does).
  if (config_.wear_level_spread > 0) {
    std::uint64_t coldest = kInvalid64;
    std::uint32_t min_erase = 0xffffffffu;
    std::uint32_t max_erase = 0;
    for (std::uint64_t b = 0; b < num_blocks_; ++b) {
      if (b == active_block_) continue;
      if (blocks_[b].write_ptr != config_.pages_per_block) continue;
      min_erase = std::min(min_erase, blocks_[b].erase_count);
      max_erase = std::max(max_erase, blocks_[b].erase_count);
      if (coldest == kInvalid64 ||
          blocks_[b].erase_count < blocks_[coldest].erase_count) {
        coldest = b;
      }
    }
    if (coldest != kInvalid64 && max_erase - min_erase > config_.wear_level_spread) {
      relocate_block(coldest);
    }
  }
  while (free_blocks_.size() < config_.gc_free_block_threshold) {
    collect_one_block();
  }
  in_gc_ = false;
}

void SsdModel::collect_one_block() {
  // Victim selection over fully-written, non-active blocks.
  std::uint64_t victim = kInvalid64;
  double best_score = -1.0;
  for (std::uint64_t b = 0; b < num_blocks_; ++b) {
    if (b == active_block_) continue;
    const BlockMeta& blk = blocks_[b];
    if (blk.write_ptr != config_.pages_per_block) continue;  // free/partial
    double score;
    if (config_.gc_policy == GcPolicy::kGreedy) {
      // Fewest valid pages wins (ties to older blocks via fill_seq).
      score = static_cast<double>(config_.pages_per_block - blk.valid_pages);
    } else {
      // LFS cost-benefit: (1-u) * age / (1+u).
      const double u = static_cast<double>(blk.valid_pages) /
                       static_cast<double>(config_.pages_per_block);
      const double age =
          static_cast<double>(program_seq_ - blk.fill_seq) + 1.0;
      score = (1.0 - u) * age / (1.0 + u);
    }
    if (score > best_score) {
      best_score = score;
      victim = b;
    }
  }
  KDD_CHECK(victim != kInvalid64);
  relocate_block(victim);
}

void SsdModel::relocate_block(std::uint64_t victim) {
  // Relocate valid pages into the active allocation stream.
  std::uint8_t buf[kPageSize];
  for (std::uint32_t i = 0; i < config_.pages_per_block; ++i) {
    const std::uint64_t phys = victim * config_.pages_per_block + i;
    const std::uint64_t logical = p2l_[phys];
    if (logical == kInvalid64) continue;
    std::memcpy(buf, flash_.data() + phys * kPageSize, kPageSize);
    invalidate_physical(phys);
    const std::uint64_t dst = allocate_physical_page();
    program(dst, {buf, kPageSize}, /*is_gc_copy=*/true);
    l2p_[logical] = dst;
    p2l_[dst] = logical;
  }
  KDD_DCHECK(blocks_[victim].valid_pages == 0);
  blocks_[victim].write_ptr = 0;
  ++blocks_[victim].erase_count;
  ++block_erases_;
  free_blocks_.push_back(victim);
}

}  // namespace kdd
