// Block device abstraction (data plane).
//
// All devices operate on fixed 4 KiB pages addressed by page-granular LBAs.
// Timing is deliberately separated from data: the discrete-event simulator
// (src/sim) attaches a timing model to each device, while the data plane here
// stores real bytes so that RAID parity, deltas and recovery can be verified
// end-to-end.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/units.hpp"

namespace kdd {

/// Outcome of a single page I/O. The fault taxonomy follows field failure
/// data (docs/fault_model.md): beyond whole-device death, devices exhibit
/// latent sector errors, transient hiccups and silent corruption — and each
/// class wants a different recovery strategy in the layers above.
enum class IoStatus {
  kOk,
  kFailed,      ///< device has failed (whole-device loss) — no data transferred
  kMediaError,  ///< latent sector error: this page is unreadable until rewritten
  kTransient,   ///< transient error (timeout/UNIT ATTENTION): a retry may succeed
  kCorrupt,     ///< data WAS transferred but failed an integrity check (bit rot)
};

inline const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "kOk";
    case IoStatus::kFailed: return "kFailed";
    case IoStatus::kMediaError: return "kMediaError";
    case IoStatus::kTransient: return "kTransient";
    case IoStatus::kCorrupt: return "kCorrupt";
  }
  return "?";
}

/// Per-device I/O counters (pages, not bytes).
struct DeviceCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t trims = 0;

  std::uint64_t total() const { return reads + writes; }
};

/// One submitted page I/O for the asynchronous interface. Exactly one of
/// `out`/`data` is meaningful, selected by `op`. The buffer must stay valid
/// until the completion callback fires.
struct AsyncIo {
  enum class Op : std::uint8_t { kRead, kWrite };
  Op op = Op::kRead;
  Lba page = 0;
  std::span<std::uint8_t> out{};         ///< kRead destination (kPageSize)
  std::span<const std::uint8_t> data{};  ///< kWrite source (kPageSize)
};

/// Completion callback for submit(): invoked exactly once per submission.
using AsyncCallback = std::function<void(IoStatus)>;

/// One entry of a vectored (scatter-gather) write. The target pages may be
/// scattered in the logical address space — the point of write_multi is that
/// flash devices lay the whole batch down as one physically sequential
/// program burst, so a segment flush costs one host command instead of N.
struct PageWrite {
  Lba page = 0;
  std::span<const std::uint8_t> data{};  ///< kPageSize bytes
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Reads one page at `page` into `out` (must be kPageSize bytes).
  virtual IoStatus read(Lba page, std::span<std::uint8_t> out) = 0;

  /// Writes one page at `page` from `data` (must be kPageSize bytes).
  virtual IoStatus write(Lba page, std::span<const std::uint8_t> data) = 0;

  /// Vectored write: persists `batch` in order as one logical command.
  /// Devices with no native batching fall back to N single writes; devices
  /// that do override it (SsdModel, FaultInjectingDevice) preserve the
  /// prefix-persistence contract: on a non-kOk return, exactly the first
  /// `*pages_done` entries are durable, the failing entry is *at most*
  /// partially persisted, and no later entry touched the media.
  virtual IoStatus write_multi(std::span<const PageWrite> batch,
                               std::size_t* pages_done = nullptr) {
    std::size_t done = 0;
    IoStatus st = IoStatus::kOk;
    for (const PageWrite& w : batch) {
      st = write(w.page, w.data);
      if (st != IoStatus::kOk) break;
      ++done;
    }
    if (pages_done) *pages_done = done;
    return st;
  }

  /// Submit-and-complete interface: enqueue `io` and return; `cb` fires when
  /// the I/O completes. The default is the trivially-correct synchronous
  /// fallback — execute inline, complete before returning — which is exactly
  /// right for the memory- and file-backed devices whose "latency" is the
  /// call itself. Simulator-attached devices override this to defer the
  /// completion by the modelled service time on the event-sim clock
  /// (src/sim/async_queue.hpp); completion order then follows simulated
  /// device time, not submission order.
  virtual void submit(const AsyncIo& io, AsyncCallback cb) {
    const IoStatus st = io.op == AsyncIo::Op::kRead ? read(io.page, io.out)
                                                    : write(io.page, io.data);
    if (cb) cb(st);
  }

  /// Device capacity in pages.
  virtual std::uint64_t num_pages() const = 0;

  /// Marks the logical page as unused (no-op by default; SSDs use this to
  /// avoid garbage-collecting dead cache pages).
  virtual void trim(Lba page) {
    (void)page;
    ++counters_.trims;
  }

  /// Whole-device failure injection, uniform across all device types
  /// (memory-, file- and flash-backed): once failed, all I/O returns kFailed
  /// until repair() — or the type-specific replace(), which models swapping
  /// in a spare — clears the state.
  virtual void fail() { failed_ = true; }
  virtual void repair() { failed_ = false; }
  virtual bool failed() const { return failed_; }

  const DeviceCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 protected:
  DeviceCounters counters_;
  bool failed_ = false;
};

}  // namespace kdd
