// Block device abstraction (data plane).
//
// All devices operate on fixed 4 KiB pages addressed by page-granular LBAs.
// Timing is deliberately separated from data: the discrete-event simulator
// (src/sim) attaches a timing model to each device, while the data plane here
// stores real bytes so that RAID parity, deltas and recovery can be verified
// end-to-end.
#pragma once

#include <cstdint>
#include <span>

#include "common/units.hpp"

namespace kdd {

enum class IoStatus {
  kOk,
  kFailed,  ///< device has failed (failure injection) — no data transferred
};

/// Per-device I/O counters (pages, not bytes).
struct DeviceCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  std::uint64_t total() const { return reads + writes; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Reads one page at `page` into `out` (must be kPageSize bytes).
  virtual IoStatus read(Lba page, std::span<std::uint8_t> out) = 0;

  /// Writes one page at `page` from `data` (must be kPageSize bytes).
  virtual IoStatus write(Lba page, std::span<const std::uint8_t> data) = 0;

  /// Device capacity in pages.
  virtual std::uint64_t num_pages() const = 0;

  /// Marks the logical page as unused (no-op by default; SSDs use this to
  /// avoid garbage-collecting dead cache pages).
  virtual void trim(Lba page) { (void)page; }

  const DeviceCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

 protected:
  DeviceCounters counters_;
};

}  // namespace kdd
