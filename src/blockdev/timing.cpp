#include "blockdev/timing.hpp"

#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace kdd {

HddTimingModel::HddTimingModel(const HddTimingConfig& config) : config_(config) {
  KDD_CHECK(config_.rpm > 0.0);
  KDD_CHECK(config_.transfer_mb_per_s > 0.0);
  revolution_us_ = static_cast<SimTime>(60.0 * 1e6 / config_.rpm);
  transfer_us_per_page_ = static_cast<SimTime>(
      static_cast<double>(kPageSize) / (config_.transfer_mb_per_s * 1e6) * 1e6);
}

SimTime HddTimingModel::service_time(IoKind kind, Lba page, std::uint32_t pages,
                                     Rng& rng) {
  (void)kind;  // reads and writes cost the same with the volatile cache off
  KDD_CHECK(pages >= 1);
  const SimTime transfer = transfer_us_per_page_ * pages;
  if (page == head_page_) {
    // Sequential continuation: the head is already positioned.
    head_page_ = page + pages;
    return transfer;
  }
  const std::uint64_t distance =
      page > head_page_ ? page - head_page_ : head_page_ - page;
  const double frac = std::sqrt(
      std::min(1.0, static_cast<double>(distance) /
                        static_cast<double>(config_.capacity_pages)));
  const SimTime seek =
      config_.track_to_track_seek_us +
      static_cast<SimTime>(frac * static_cast<double>(config_.full_stroke_seek_us -
                                                      config_.track_to_track_seek_us));
  const SimTime rotation = rng.next_below(revolution_us_);
  head_page_ = page + pages;
  return seek + rotation + transfer;
}

SimTime SsdTimingModel::service_time(IoKind kind, Rng& rng) const {
  const SimTime base = kind == IoKind::kRead      ? config_.read_us
                       : kind == IoKind::kWriteSeq ? config_.seq_program_us
                                                   : config_.program_us;
  const SimTime jitter = config_.jitter_us ? rng.next_below(config_.jitter_us) : 0;
  return base + jitter;
}

}  // namespace kdd
