// Device service-time models for the discrete-event simulator.
//
// Calibrated to the paper's testbed class: 7,200 RPM SATA disks (look-ahead
// and volatile write cache disabled via hdparm, Section IV-B1) and a SATA
// MLC SSD with multi-channel internal parallelism.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace kdd {

/// kWrite models a random single-page program; kWriteSeq a page inside a
/// large sequential burst (segment flush), where the device streams pages
/// across planes without per-command setup — cheaper per page.
enum class IoKind { kRead, kWrite, kWriteSeq };

/// 7,200 RPM disk: seek (distance-dependent), rotational latency
/// (uniform in one revolution; sequential hits skip both), transfer.
struct HddTimingConfig {
  double rpm = 7200.0;
  SimTime track_to_track_seek_us = 800;
  SimTime full_stroke_seek_us = 16000;
  double transfer_mb_per_s = 130.0;
  std::uint64_t capacity_pages = 262144ull * 1024;  ///< 1 TB at 4 KiB
};

class HddTimingModel {
 public:
  explicit HddTimingModel(const HddTimingConfig& config);

  /// Service time for an access of `pages` pages at `page`; advances the
  /// modelled head position.
  SimTime service_time(IoKind kind, Lba page, std::uint32_t pages, Rng& rng);

  void reset() { head_page_ = 0; }

 private:
  HddTimingConfig config_;
  Lba head_page_ = 0;
  SimTime revolution_us_;
  SimTime transfer_us_per_page_;
};

/// SSD: fixed-ish read/program latencies with small jitter; the simulator
/// models channel parallelism by running `channels` independent servers.
struct SsdTimingConfig {
  SimTime read_us = 90;
  SimTime program_us = 250;
  /// Per-page cost inside a sequential burst (kWriteSeq): the controller
  /// pipelines data transfer with programming, so each page costs well under
  /// a standalone random program.
  SimTime seq_program_us = 70;
  SimTime jitter_us = 15;
  std::uint32_t channels = 8;
};

class SsdTimingModel {
 public:
  explicit SsdTimingModel(const SsdTimingConfig& config) : config_(config) {}

  SimTime service_time(IoKind kind, Rng& rng) const;

  const SsdTimingConfig& config() const { return config_; }

 private:
  SsdTimingConfig config_;
};

}  // namespace kdd
