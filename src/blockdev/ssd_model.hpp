// Flash SSD model: a page-mapped FTL over simulated NAND with real data,
// program/erase accounting, greedy garbage collection and wear statistics.
//
// This is the endurance substrate for the paper's headline claim — KDD
// extends SSD cache lifetime by writing less. The model exposes both host
// write counters (what the cache issues) and NAND-level counters (after FTL
// write amplification), plus an endurance estimate from per-block erase
// counts against a P/E cycle budget.
#pragma once

#include <cstdint>
#include <vector>

#include "blockdev/block_device.hpp"

namespace kdd {

/// GC victim selection policy.
enum class GcPolicy : std::uint8_t {
  kGreedy,      ///< fewest valid pages (min write amplification now)
  kCostBenefit, ///< LFS-style (1-u)*age/(1+u): trades WA for wear spread
};

struct SsdConfig {
  std::uint64_t logical_pages = 262144;  ///< exported capacity (1 GiB at 4 KiB)
  std::uint32_t pages_per_block = 64;
  double overprovision = 0.07;           ///< extra physical space fraction
  std::uint32_t pe_cycle_limit = 3000;   ///< MLC-class endurance per block
  std::uint32_t gc_free_block_threshold = 4;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  /// Static wear leveling: when the erase-count spread exceeds this, GC
  /// occasionally victimises the coldest (least-erased) full block to move
  /// its static data off. 0 disables.
  std::uint32_t wear_level_spread = 0;
  /// FTL mapping-journal overhead charged per host write *command* (not per
  /// page): every command also persists this many bytes of L2P journal, folded
  /// into nand_page_writes once a page's worth accumulates. This is the
  /// mechanism behind the segment-staging wear credit — a 256-page vectored
  /// write pays one journal update where 256 random writes pay 256. 0 (the
  /// default) disables the model so WA baselines are unchanged.
  std::uint32_t map_journal_bytes_per_op = 0;
};

struct SsdWearStats {
  std::uint64_t host_page_writes = 0;
  std::uint64_t nand_page_writes = 0;  ///< host writes + GC copies (+ journal)
  std::uint64_t gc_page_copies = 0;
  std::uint64_t block_erases = 0;
  double mean_erase_count = 0.0;
  std::uint32_t max_erase_count = 0;

  // Host write-command accounting, split by access pattern: write() commands
  // are random (one page each), write_multi() commands are sequential (the
  // FTL programs the whole batch as one burst). Ops count commands, pages
  // count 4 KiB pages; bytes are pages * kPageSize.
  std::uint64_t host_write_ops_rand = 0;
  std::uint64_t host_write_ops_seq = 0;
  std::uint64_t host_pages_rand = 0;
  std::uint64_t host_pages_seq = 0;
  std::uint64_t journal_nand_pages = 0;  ///< mapping-journal share of nand writes

  std::uint64_t host_write_ops() const { return host_write_ops_rand + host_write_ops_seq; }
  std::uint64_t host_bytes_rand() const { return host_pages_rand * kPageSize; }
  std::uint64_t host_bytes_seq() const { return host_pages_seq * kPageSize; }

  double write_amplification() const {
    return host_page_writes
               ? static_cast<double>(nand_page_writes) / static_cast<double>(host_page_writes)
               : 1.0;
  }
};

class SsdModel final : public BlockDevice {
 public:
  explicit SsdModel(const SsdConfig& config);

  IoStatus read(Lba page, std::span<std::uint8_t> out) override;
  IoStatus write(Lba page, std::span<const std::uint8_t> data) override;
  /// Native vectored write: one host command programs the whole batch into
  /// the active block stream back-to-back (physically sequential), paying at
  /// most one mapping-journal update for the entire command.
  IoStatus write_multi(std::span<const PageWrite> batch,
                       std::size_t* pages_done = nullptr) override;
  std::uint64_t num_pages() const override { return config_.logical_pages; }
  void trim(Lba page) override;

  /// Swap in a fresh device: blank flash, zero wear, mappings cleared.
  /// (Whole-device failure injection itself lives on BlockDevice::fail(),
  /// as in Section III-E2.)
  void replace();

  SsdWearStats wear() const;

  /// Fraction of total endurance consumed, in [0, 1+): total erases divided
  /// by (blocks * pe_cycle_limit). The paper's "lifetime improvement" of one
  /// policy over another is the inverse ratio of this value at equal work.
  double endurance_consumed() const;

  /// Total erase count of each of `regions` equal spans of physical blocks
  /// (the last region absorbs the remainder). Feeds the health engine's
  /// wear-imbalance rule: uneven per-region erase totals mean GC is burning
  /// one part of the device.
  std::vector<double> region_erase_counts(std::size_t regions) const;

  const SsdConfig& config() const { return config_; }
  std::uint64_t physical_blocks() const { return num_blocks_; }

 private:
  static constexpr std::uint32_t kInvalid32 = 0xffffffffu;
  static constexpr std::uint64_t kInvalid64 = ~0ull;

  struct BlockMeta {
    std::uint32_t valid_pages = 0;
    std::uint32_t write_ptr = 0;  ///< next free page slot within the block
    std::uint32_t erase_count = 0;
    std::uint64_t fill_seq = 0;   ///< program sequence when last written (age proxy)
  };

  std::uint64_t physical_pages() const { return num_blocks_ * config_.pages_per_block; }
  std::uint64_t allocate_physical_page();
  void maybe_collect_garbage();
  void collect_one_block();
  /// Copies a block's valid pages into the active stream and erases it.
  void relocate_block(std::uint64_t victim);
  void invalidate_physical(std::uint64_t phys);
  void program(std::uint64_t phys, std::span<const std::uint8_t> data, bool is_gc_copy);
  /// Moves one logical page into the active stream (shared by write paths).
  void host_program(Lba page, std::span<const std::uint8_t> data);
  /// Charges one host command's worth of mapping-journal bytes.
  void charge_map_journal();

  SsdConfig config_;
  std::uint64_t num_blocks_;
  std::vector<std::uint8_t> flash_;          ///< physical page contents
  std::vector<std::uint64_t> l2p_;           ///< logical -> physical (kInvalid64 = unmapped)
  std::vector<std::uint64_t> p2l_;           ///< physical -> logical
  std::vector<BlockMeta> blocks_;
  std::vector<std::uint64_t> free_blocks_;   ///< LIFO pool of erased blocks
  std::uint64_t active_block_ = kInvalid64;
  bool in_gc_ = false;

  std::uint64_t host_page_writes_ = 0;
  std::uint64_t nand_page_writes_ = 0;
  std::uint64_t gc_page_copies_ = 0;
  std::uint64_t block_erases_ = 0;
  std::uint64_t program_seq_ = 0;  ///< global program counter (GC age proxy)

  std::uint64_t host_write_ops_rand_ = 0;
  std::uint64_t host_write_ops_seq_ = 0;
  std::uint64_t host_pages_rand_ = 0;
  std::uint64_t host_pages_seq_ = 0;
  std::uint64_t journal_nand_pages_ = 0;
  std::uint64_t journal_bytes_accum_ = 0;
};

}  // namespace kdd
