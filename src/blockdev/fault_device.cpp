#include "blockdev/fault_device.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace kdd {

namespace {

/// Global-registry mirrors of FaultCounters, so fault activity shows up in
/// the Prometheus/JSONL exports without polling every decorator instance.
struct FaultMetrics {
  obs::Counter media_errors_injected;
  obs::Counter media_error_reads;
  obs::Counter media_errors_healed;
  obs::Counter transient_errors;
  obs::Counter torn_writes;
  obs::Counter bit_rot_injected;
  obs::Counter corruptions_detected;
  obs::Counter power_cut_rejects;
};

FaultMetrics& fault_metrics() {
  static FaultMetrics* m = [] {
    auto* fm = new FaultMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    fm->media_errors_injected =
        obs::Counter(&reg, "kdd_fault_media_errors_injected_total");
    fm->media_error_reads = obs::Counter(&reg, "kdd_fault_media_error_reads_total");
    fm->media_errors_healed =
        obs::Counter(&reg, "kdd_fault_media_errors_healed_total");
    fm->transient_errors = obs::Counter(&reg, "kdd_fault_transient_errors_total");
    fm->torn_writes = obs::Counter(&reg, "kdd_fault_torn_writes_total");
    fm->bit_rot_injected = obs::Counter(&reg, "kdd_fault_bit_rot_injected_total");
    fm->corruptions_detected =
        obs::Counter(&reg, "kdd_fault_corruptions_detected_total");
    fm->power_cut_rejects = obs::Counter(&reg, "kdd_fault_power_cut_rejects_total");
    return fm;
  }();
  return *m;
}

}  // namespace

FaultInjectingDevice::FaultInjectingDevice(BlockDevice* inner, FaultConfig config)
    : inner_(inner),
      config_(config),
      rng_(config.seed),
      rail_(std::make_shared<PowerRail>()) {
  KDD_CHECK(inner != nullptr);
}

std::uint64_t FaultInjectingDevice::page_checksum(std::span<const std::uint8_t> data) {
  // 64-bit FNV-1a: fast enough for the 4 KiB hot path, strong enough that a
  // stale checksum reliably flags bit rot (models a T10-DIF-style tag).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

void FaultInjectingDevice::attach_rail(std::shared_ptr<PowerRail> rail) {
  KDD_CHECK(rail != nullptr);
  rail_ = std::move(rail);
}

void FaultInjectingDevice::inject_media_error(Lba page) {
  KDD_CHECK(page < inner_->num_pages());
  if (media_errors_.insert(page).second) {
    ++fault_counters_.media_errors_injected;
    fault_metrics().media_errors_injected.inc();
    KDD_LOG(Debug, "fault: latent sector error injected page=%llu",
            static_cast<unsigned long long>(page));
  }
}

void FaultInjectingDevice::inject_bit_rot(Lba page, std::uint8_t xor_mask) {
  KDD_CHECK(page < inner_->num_pages());
  std::array<std::uint8_t, kPageSize> buf;
  const IoStatus st = inner_->read(page, buf);
  KDD_CHECK(st == IoStatus::kOk);
  for (auto& b : buf) b ^= xor_mask;
  KDD_CHECK(inner_->write(page, buf) == IoStatus::kOk);
  // Deliberately leave checksums_ stale: the corruption is silent.
  ++fault_counters_.bit_rot_injected;
  fault_metrics().bit_rot_injected.inc();
  KDD_LOG(Debug, "fault: bit rot injected page=%llu mask=0x%02x",
          static_cast<unsigned long long>(page), xor_mask);
}

void FaultInjectingDevice::arm_power_cut(std::uint64_t after_writes) {
  KDD_CHECK(after_writes != kNotArmed);
  cut_countdown_ = after_writes;
}

void FaultInjectingDevice::clear_faults() {
  media_errors_.clear();
  checksums_.clear();
}

IoStatus FaultInjectingDevice::read(Lba page, std::span<std::uint8_t> out) {
  KDD_CHECK(page < inner_->num_pages());
  if (!rail_->on()) {
    ++fault_counters_.power_cut_rejects;
    fault_metrics().power_cut_rejects.inc();
    return IoStatus::kFailed;
  }
  if (failed()) return IoStatus::kFailed;
  if (config_.transient_read_prob > 0.0 &&
      std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
          config_.transient_read_prob) {
    ++fault_counters_.transient_errors;
    fault_metrics().transient_errors.inc();
    return IoStatus::kTransient;
  }
  if (media_errors_.contains(page)) {
    ++fault_counters_.media_error_reads;
    fault_metrics().media_error_reads.inc();
    obs::flight_note(obs::FlightKind::kFault, "media_error_read",
                     static_cast<std::int64_t>(page));
    KDD_LOG(Info, "fault: read hit latent sector error page=%llu",
            static_cast<unsigned long long>(page));
    return IoStatus::kMediaError;
  }
  ++counters_.reads;
  const IoStatus st = inner_->read(page, out);
  if (st != IoStatus::kOk) return st;
  if (config_.verify_reads) {
    const auto it = checksums_.find(page);
    if (it != checksums_.end() && it->second != page_checksum(out)) {
      ++fault_counters_.corruptions_detected;
      fault_metrics().corruptions_detected.inc();
      obs::flight_note(obs::FlightKind::kFault, "checksum_mismatch",
                       static_cast<std::int64_t>(page));
      KDD_LOG(Warn, "fault: checksum mismatch (bit rot?) page=%llu",
              static_cast<unsigned long long>(page));
      return IoStatus::kCorrupt;  // data was transferred; caller may inspect
    }
  }
  return IoStatus::kOk;
}

IoStatus FaultInjectingDevice::do_torn_write(Lba page,
                                             std::span<const std::uint8_t> data) {
  // A power cut mid-write persists a sector-granular prefix of the new data;
  // the tail keeps the old contents. Each sector's own ECC is internally
  // consistent, so the device cannot detect the tear — only a higher-level
  // checksum (e.g. the metadata log's per-entry CRC) can.
  std::array<std::uint8_t, kPageSize> torn;
  const IoStatus old = inner_->read(page, torn);
  if (old != IoStatus::kOk) std::memset(torn.data(), 0, torn.size());
  const std::uint32_t sectors = kPageSize / kSectorSize;
  const std::uint32_t keep =
      std::uniform_int_distribution<std::uint32_t>(0, sectors - 1)(rng_);
  std::memcpy(torn.data(), data.data(), keep * kSectorSize);
  const IoStatus st = inner_->write(page, torn);
  if (st == IoStatus::kOk) {
    checksums_[page] = page_checksum(torn);
    ++media_writes_;
  }
  ++fault_counters_.torn_writes;
  fault_metrics().torn_writes.inc();
  KDD_LOG(Warn, "fault: torn write page=%llu (power rail cut)",
          static_cast<unsigned long long>(page));
  obs::flight_note_and_dump(obs::FlightKind::kPowerCut, "torn_write",
                            static_cast<std::int64_t>(page));
  disarm_power_cut();
  rail_->cut();
  // The host never sees an ack for a torn write: the power died.
  return IoStatus::kFailed;
}

IoStatus FaultInjectingDevice::write(Lba page, std::span<const std::uint8_t> data) {
  KDD_CHECK(page < inner_->num_pages());
  KDD_CHECK(data.size() == kPageSize);
  if (!rail_->on()) {
    ++fault_counters_.power_cut_rejects;
    fault_metrics().power_cut_rejects.inc();
    return IoStatus::kFailed;
  }
  if (failed()) return IoStatus::kFailed;
  if (config_.transient_write_prob > 0.0 &&
      std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
          config_.transient_write_prob) {
    ++fault_counters_.transient_errors;
    fault_metrics().transient_errors.inc();
    return IoStatus::kTransient;
  }
  ++counters_.writes;
  if (cut_countdown_ != kNotArmed) {
    if (cut_countdown_ == 0) return do_torn_write(page, data);
    --cut_countdown_;
  }
  const IoStatus st = inner_->write(page, data);
  if (st != IoStatus::kOk) return st;
  ++media_writes_;
  checksums_[page] = page_checksum(data);
  if (media_errors_.erase(page) > 0) {
    ++fault_counters_.media_errors_healed;
    fault_metrics().media_errors_healed.inc();
    KDD_LOG(Info, "fault: latent sector error healed by rewrite page=%llu",
            static_cast<unsigned long long>(page));
  }
  return IoStatus::kOk;
}

IoStatus FaultInjectingDevice::write_multi(std::span<const PageWrite> batch,
                                           std::size_t* pages_done) {
  for (const PageWrite& w : batch) {
    KDD_CHECK(w.page < inner_->num_pages());
    KDD_CHECK(w.data.size() == kPageSize);
  }
  std::size_t done = 0;
  IoStatus st = IoStatus::kOk;
  // Accepted pages accumulate in `run` and reach the inner device in batched
  // write_multi calls, so a clean vector still counts as one sequential host
  // command downstream. A fault splits the vector: the run so far is flushed
  // (those pages are durable), the faulting page is handled exactly like the
  // single-write path would handle it, and the tail never touches the media.
  std::vector<PageWrite> run;
  run.reserve(batch.size());
  auto flush_run = [&] {
    if (run.empty()) return;
    std::size_t inner_done = 0;
    const IoStatus inner_st = inner_->write_multi(run, &inner_done);
    for (std::size_t k = 0; k < inner_done; ++k) {
      ++media_writes_;
      checksums_[run[k].page] = page_checksum(run[k].data);
      if (media_errors_.erase(run[k].page) > 0) {
        ++fault_counters_.media_errors_healed;
        fault_metrics().media_errors_healed.inc();
        KDD_LOG(Info, "fault: latent sector error healed by rewrite page=%llu",
                static_cast<unsigned long long>(run[k].page));
      }
    }
    done += inner_done;
    if (inner_st != IoStatus::kOk && st == IoStatus::kOk) st = inner_st;
    run.clear();
  };
  for (const PageWrite& w : batch) {
    if (!rail_->on()) {
      flush_run();
      ++fault_counters_.power_cut_rejects;
      fault_metrics().power_cut_rejects.inc();
      if (st == IoStatus::kOk) st = IoStatus::kFailed;
      break;
    }
    if (failed()) {
      flush_run();
      if (st == IoStatus::kOk) st = IoStatus::kFailed;
      break;
    }
    if (config_.transient_write_prob > 0.0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
            config_.transient_write_prob) {
      flush_run();
      ++fault_counters_.transient_errors;
      fault_metrics().transient_errors.inc();
      if (st == IoStatus::kOk) st = IoStatus::kTransient;
      break;
    }
    ++counters_.writes;
    if (cut_countdown_ != kNotArmed) {
      if (cut_countdown_ == 0) {
        flush_run();
        if (st == IoStatus::kOk) st = do_torn_write(w.page, w.data);
        break;
      }
      --cut_countdown_;
    }
    run.push_back(w);
  }
  if (st == IoStatus::kOk) flush_run();
  if (pages_done) *pages_done = done;
  return st;
}

void FaultInjectingDevice::trim(Lba page) {
  KDD_CHECK(page < inner_->num_pages());
  ++counters_.trims;
  if (!rail_->on() || failed()) return;
  media_errors_.erase(page);
  checksums_.erase(page);
  inner_->trim(page);
}

}  // namespace kdd
