#include "blockdev/mem_device.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace kdd {

MemBlockDevice::MemBlockDevice(std::uint64_t pages)
    : pages_(pages), data_(pages * kPageSize, 0) {
  KDD_CHECK(pages > 0);
}

IoStatus MemBlockDevice::read(Lba page, std::span<std::uint8_t> out) {
  KDD_CHECK(page < pages_);
  KDD_CHECK(out.size() == kPageSize);
  if (failed_) return IoStatus::kFailed;
  ++counters_.reads;
  std::memcpy(out.data(), data_.data() + page * kPageSize, kPageSize);
  return IoStatus::kOk;
}

IoStatus MemBlockDevice::write(Lba page, std::span<const std::uint8_t> data) {
  KDD_CHECK(page < pages_);
  KDD_CHECK(data.size() == kPageSize);
  if (failed_) return IoStatus::kFailed;
  ++counters_.writes;
  std::memcpy(data_.data() + page * kPageSize, data.data(), kPageSize);
  return IoStatus::kOk;
}

IoStatus MemBlockDevice::write_multi(std::span<const PageWrite> batch,
                                     std::size_t* pages_done) {
  // One bounds/failure check up front, then a straight memcpy loop — the
  // memory device's equivalent of a single multi-page DMA.
  for (const PageWrite& w : batch) {
    KDD_CHECK(w.page < pages_);
    KDD_CHECK(w.data.size() == kPageSize);
  }
  if (failed_) {
    if (pages_done) *pages_done = 0;
    return IoStatus::kFailed;
  }
  for (const PageWrite& w : batch) {
    ++counters_.writes;
    std::memcpy(data_.data() + w.page * kPageSize, w.data.data(), kPageSize);
  }
  if (pages_done) *pages_done = batch.size();
  return IoStatus::kOk;
}

void MemBlockDevice::replace() {
  std::fill(data_.begin(), data_.end(), std::uint8_t{0});
  failed_ = false;
}

std::span<const std::uint8_t> MemBlockDevice::raw_page(Lba page) const {
  KDD_CHECK(page < pages_);
  return {data_.data() + page * kPageSize, kPageSize};
}

void MemBlockDevice::corrupt_page(Lba page, std::uint8_t xor_mask) {
  KDD_CHECK(page < pages_);
  for (std::uint32_t i = 0; i < kPageSize; ++i) {
    data_[page * kPageSize + i] ^= xor_mask;
  }
}

}  // namespace kdd
