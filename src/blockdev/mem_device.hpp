// Memory-backed block device with failure injection. Models an HDD's data
// plane for the user-space RAID prototype; the HDD *timing* model lives in
// hdd_model.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "blockdev/block_device.hpp"

namespace kdd {

class MemBlockDevice final : public BlockDevice {
 public:
  explicit MemBlockDevice(std::uint64_t pages);

  IoStatus read(Lba page, std::span<std::uint8_t> out) override;
  IoStatus write(Lba page, std::span<const std::uint8_t> data) override;
  IoStatus write_multi(std::span<const PageWrite> batch,
                       std::size_t* pages_done = nullptr) override;
  std::uint64_t num_pages() const override { return pages_; }

  /// Replaces the device with a blank one (models swapping in a spare disk).
  void replace();

  /// Direct access for tests/scrubbing (bypasses failure state and counters).
  std::span<const std::uint8_t> raw_page(Lba page) const;
  void corrupt_page(Lba page, std::uint8_t xor_mask);

 private:
  std::uint64_t pages_;
  std::vector<std::uint8_t> data_;
};

}  // namespace kdd
