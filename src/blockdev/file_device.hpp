// File-backed block device: the same interface as MemBlockDevice but with
// contents persisted to a regular file via pread/pwrite, so example
// deployments survive process restarts. Pages never written read as zeros
// (the file is sparse).
#pragma once

#include <string>

#include "blockdev/block_device.hpp"

namespace kdd {

class FileBlockDevice final : public BlockDevice {
 public:
  /// Opens (or creates) `path` sized for `pages` pages. Throws
  /// std::runtime_error if the file cannot be opened.
  FileBlockDevice(const std::string& path, std::uint64_t pages);
  ~FileBlockDevice() override;

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  IoStatus read(Lba page, std::span<std::uint8_t> out) override;
  IoStatus write(Lba page, std::span<const std::uint8_t> data) override;
  std::uint64_t num_pages() const override { return pages_; }

  void fail() { failed_ = true; }
  bool failed() const { return failed_; }

  /// Flushes dirty file pages to stable storage (fsync).
  bool sync();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t pages_;
  int fd_ = -1;
  bool failed_ = false;
};

}  // namespace kdd
