// File-backed block device: the same interface as MemBlockDevice but with
// contents persisted to a regular file via pread/pwrite, so example
// deployments survive process restarts. Pages never written read as zeros
// (the file is sparse).
#pragma once

#include <string>

#include "blockdev/block_device.hpp"

namespace kdd {

class FileBlockDevice final : public BlockDevice {
 public:
  /// Opens (or creates) `path` sized for `pages` pages. Throws
  /// std::runtime_error if the file cannot be opened.
  FileBlockDevice(const std::string& path, std::uint64_t pages);
  ~FileBlockDevice() override;

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  IoStatus read(Lba page, std::span<std::uint8_t> out) override;
  IoStatus write(Lba page, std::span<const std::uint8_t> data) override;
  /// Vectored write. Runs of file-contiguous pages within the batch are
  /// submitted as one pwritev each, so a sealed segment whose pages happen to
  /// be adjacent costs one syscall; scattered pages degrade to per-run calls.
  IoStatus write_multi(std::span<const PageWrite> batch,
                       std::size_t* pages_done = nullptr) override;
  std::uint64_t num_pages() const override { return pages_; }

  /// Deallocates the page's file extent (punch-hole where supported, else an
  /// explicit zero write), so trimmed pages read back as zeros — the same
  /// observable behaviour MemBlockDevice::replace gives a blank disk.
  void trim(Lba page) override;

  /// Flushes dirty file pages to stable storage (fsync).
  bool sync();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t pages_;
  int fd_ = -1;
};

}  // namespace kdd
