#include "blockdev/file_device.hpp"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/check.hpp"

namespace kdd {

FileBlockDevice::FileBlockDevice(const std::string& path, std::uint64_t pages)
    : path_(path), pages_(pages) {
  KDD_CHECK(pages_ > 0);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("FileBlockDevice: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(pages_ * kPageSize)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("FileBlockDevice: cannot size " + path);
  }
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

IoStatus FileBlockDevice::read(Lba page, std::span<std::uint8_t> out) {
  KDD_CHECK(page < pages_);
  KDD_CHECK(out.size() == kPageSize);
  if (failed_) return IoStatus::kFailed;
  ++counters_.reads;
  std::size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pread(fd_, out.data() + done, kPageSize - done,
                              static_cast<off_t>(page * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kFailed;
    }
    if (n == 0) {  // past EOF of a sparse region: zeros
      std::memset(out.data() + done, 0, kPageSize - done);
      break;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus FileBlockDevice::write(Lba page, std::span<const std::uint8_t> data) {
  KDD_CHECK(page < pages_);
  KDD_CHECK(data.size() == kPageSize);
  if (failed_) return IoStatus::kFailed;
  ++counters_.writes;
  std::size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, kPageSize - done,
                               static_cast<off_t>(page * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kFailed;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus FileBlockDevice::write_multi(std::span<const PageWrite> batch,
                                      std::size_t* pages_done) {
  for (const PageWrite& w : batch) {
    KDD_CHECK(w.page < pages_);
    KDD_CHECK(w.data.size() == kPageSize);
  }
  std::size_t done = 0;
  IoStatus st = IoStatus::kOk;
  if (failed_) st = IoStatus::kFailed;
  std::size_t i = 0;
  while (st == IoStatus::kOk && i < batch.size()) {
    // Coalesce a run of file-contiguous pages into one pwritev.
    constexpr std::size_t kMaxIov = 64;
    std::size_t run = 1;
    while (i + run < batch.size() && run < kMaxIov &&
           batch[i + run].page == batch[i + run - 1].page + 1) {
      ++run;
    }
    if (run == 1) {
      st = write(batch[i].page, batch[i].data);
      if (st == IoStatus::kOk) ++done;
      ++i;
      continue;
    }
    struct iovec iov[kMaxIov];
    for (std::size_t k = 0; k < run; ++k) {
      iov[k].iov_base = const_cast<std::uint8_t*>(batch[i + k].data.data());
      iov[k].iov_len = kPageSize;
    }
    std::size_t bytes = 0;
    const std::size_t want = run * kPageSize;
    off_t off = static_cast<off_t>(batch[i].page * kPageSize);
    std::size_t first = 0;
    while (bytes < want) {
      const ssize_t n = ::pwritev(fd_, iov + first, static_cast<int>(run - first), off);
      if (n < 0) {
        if (errno == EINTR) continue;
        st = IoStatus::kFailed;
        break;
      }
      bytes += static_cast<std::size_t>(n);
      off += n;
      // Advance past fully-written iovecs; shrink a partially-written one.
      std::size_t adv = static_cast<std::size_t>(n);
      while (adv > 0 && adv >= iov[first].iov_len) {
        adv -= iov[first].iov_len;
        ++first;
      }
      if (adv > 0) {
        iov[first].iov_base = static_cast<std::uint8_t*>(iov[first].iov_base) + adv;
        iov[first].iov_len -= adv;
      }
    }
    const std::size_t full_pages = bytes / kPageSize;
    counters_.writes += full_pages;
    done += full_pages;
    i += run;
  }
  if (pages_done) *pages_done = done;
  return st;
}

void FileBlockDevice::trim(Lba page) {
  KDD_CHECK(page < pages_);
  ++counters_.trims;
  if (failed_ || fd_ < 0) return;
#ifdef FALLOC_FL_PUNCH_HOLE
  if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                  static_cast<off_t>(page * kPageSize),
                  static_cast<off_t>(kPageSize)) == 0) {
    return;
  }
#endif
  // Fallback (filesystem without hole punching): explicit zero write so the
  // trimmed page still reads back as zeros.
  static const std::uint8_t zeros[kPageSize] = {};
  std::size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pwrite(fd_, zeros + done, kPageSize - done,
                               static_cast<off_t>(page * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    done += static_cast<std::size_t>(n);
  }
}

bool FileBlockDevice::sync() {
  if (failed_ || fd_ < 0) return false;
  return ::fsync(fd_) == 0;
}

}  // namespace kdd
