// FaultInjectingDevice: a decorator wrapping any BlockDevice with seeded,
// scriptable partial faults — the fault classes that dominate field failure
// data but that whole-device failure injection (BlockDevice::fail) cannot
// express:
//
//   * latent sector errors   — a page is unreadable (kMediaError) until it is
//                              rewritten; a successful write heals it, which
//                              is exactly what RAID read-error repair does.
//   * transient errors       — with a configured probability an op fails with
//                              kTransient without touching the media; a retry
//                              (src/blockdev/retry.hpp) absorbs it.
//   * torn writes            — armed by a power-cut trigger: the Nth
//                              subsequent media write persists only a sector
//                              prefix of the new data, then the shared
//                              PowerRail drops and every device on it fails
//                              all I/O until power_restore().
//   * silent bit rot         — inject_bit_rot flips bits behind the
//                              checksum's back; with verify_reads enabled the
//                              per-page checksum (modelling T10-DIF / on-disk
//                              ECC) surfaces it as kCorrupt (data is still
//                              transferred so scrubbers can inspect it).
//
// Every fault class has a counter, so tests can assert not just that the
// stack survived, but that the intended healing path actually ran.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "blockdev/block_device.hpp"

namespace kdd {

/// Shared power domain. Several devices (e.g. all RAID disks plus the cache
/// SSD) attach to one rail; a torn write on any of them cuts power to all.
class PowerRail {
 public:
  bool on() const { return on_; }
  void cut() { on_ = false; }
  void restore() { on_ = true; }

 private:
  bool on_ = true;
};

struct FaultConfig {
  double transient_read_prob = 0.0;
  double transient_write_prob = 0.0;
  /// Verify a per-page checksum on every read; mismatches (bit rot, or writes
  /// that bypassed the decorator) surface as kCorrupt.
  bool verify_reads = false;
  std::uint64_t seed = 1;
};

struct FaultCounters {
  std::uint64_t media_errors_injected = 0;
  std::uint64_t media_error_reads = 0;    ///< reads that hit a latent sector error
  std::uint64_t media_errors_healed = 0;  ///< latent errors cleared by a rewrite
  std::uint64_t transient_errors = 0;     ///< injected transient failures
  std::uint64_t torn_writes = 0;          ///< power-cut partial page writes
  std::uint64_t bit_rot_injected = 0;
  std::uint64_t corruptions_detected = 0; ///< checksum mismatches -> kCorrupt
  std::uint64_t power_cut_rejects = 0;    ///< ops rejected while the rail is down
};

class FaultInjectingDevice final : public BlockDevice {
 public:
  /// Wraps `inner` (not owned). A private PowerRail is created; attach_rail
  /// replaces it to share one power domain across devices.
  explicit FaultInjectingDevice(BlockDevice* inner, FaultConfig config = {});

  IoStatus read(Lba page, std::span<std::uint8_t> out) override;
  IoStatus write(Lba page, std::span<const std::uint8_t> data) override;
  /// Vectored write with per-page fault semantics: each entry passes the same
  /// rail/transient/power-cut checks a single write would, in order, so an
  /// armed power cut can fire *mid-vector* — the preceding entries persist
  /// fully (flushed to the inner device in batched runs, preserving its
  /// sequential-write accounting), the countdown-th page is torn exactly like
  /// a single torn write, and no later entry touches the media.
  IoStatus write_multi(std::span<const PageWrite> batch,
                       std::size_t* pages_done = nullptr) override;
  std::uint64_t num_pages() const override { return inner_->num_pages(); }
  void trim(Lba page) override;

  /// Whole-device failure forwards to the wrapped device so that code holding
  /// either handle observes a consistent state.
  void fail() override { inner_->fail(); }
  void repair() override { inner_->repair(); }
  bool failed() const override { return inner_->failed(); }

  // ---- Scriptable faults ----------------------------------------------------

  /// Marks `page` as a latent sector error: reads return kMediaError until a
  /// successful write to the page heals it.
  void inject_media_error(Lba page);

  /// Silently XORs `xor_mask` into every byte of the page on media, without
  /// updating the stored checksum — detectable only via verify_reads or
  /// parity cross-checks.
  void inject_bit_rot(Lba page, std::uint8_t xor_mask);

  /// Arms the power-cut trigger: `after_writes` subsequent media writes pass
  /// through normally, then the next one is torn (sector-prefix persisted)
  /// and the rail cuts.
  void arm_power_cut(std::uint64_t after_writes);
  void disarm_power_cut() { cut_countdown_ = kNotArmed; }
  bool power_cut_armed() const { return cut_countdown_ != kNotArmed; }

  void attach_rail(std::shared_ptr<PowerRail> rail);
  const std::shared_ptr<PowerRail>& rail() const { return rail_; }
  void power_restore() { rail_->restore(); }
  /// False while the shared rail is down (every op is being rejected). Lets
  /// long-running maintenance (rebuild, scrub) stop cleanly at a power cut
  /// instead of misreading the rejections as media loss.
  bool powered() const { return !rail_ || rail_->on(); }

  /// Forgets all per-page fault state (latent errors, checksums) — required
  /// after the media behind the decorator is swapped (disk replace/rebuild).
  void clear_faults();

  // ---- Introspection --------------------------------------------------------

  const FaultCounters& fault_counters() const { return fault_counters_; }
  std::uint64_t pending_media_errors() const { return media_errors_.size(); }
  /// Writes that reached the media (incl. the torn one). The torture harness
  /// uses this from a dry run to choose a uniform crash-point index.
  std::uint64_t media_writes() const { return media_writes_; }

  BlockDevice* inner() { return inner_; }

 private:
  static constexpr std::uint64_t kNotArmed = ~0ull;
  static constexpr std::uint32_t kSectorSize = 512;

  static std::uint64_t page_checksum(std::span<const std::uint8_t> data);
  IoStatus do_torn_write(Lba page, std::span<const std::uint8_t> data);

  BlockDevice* inner_;
  FaultConfig config_;
  std::mt19937_64 rng_;
  std::shared_ptr<PowerRail> rail_;
  std::unordered_set<Lba> media_errors_;
  std::unordered_map<Lba, std::uint64_t> checksums_;
  std::uint64_t cut_countdown_ = kNotArmed;
  std::uint64_t media_writes_ = 0;
  FaultCounters fault_counters_;
};

}  // namespace kdd
