// Bounded-retry helper for transient device errors.
//
// kTransient means "the op did not happen, but trying again may work"
// (timeouts, UNIT ATTENTION-class hiccups). The helper retries with a
// deterministic linear backoff and reports the total backoff so callers can
// charge it into the event-sim clock via IoPlan::add_retry_delay — retries
// cost simulated time, not just extra device ops.
#pragma once

#include <cstdint>
#include <utility>

#include "blockdev/block_device.hpp"
#include "common/units.hpp"

namespace kdd {

struct RetryPolicy {
  std::uint32_t max_attempts = 4;  ///< 1 initial try + 3 retries
  SimTime backoff_base_us = 100;   ///< attempt k waits k * base before retrying
};

struct RetryResult {
  IoStatus status = IoStatus::kOk;
  std::uint32_t attempts = 0;
  SimTime backoff_us = 0;  ///< total simulated wait spent between attempts
};

/// Invokes `op` (an IoStatus() callable) up to policy.max_attempts times while
/// it keeps returning kTransient. If the retry budget is exhausted the status
/// is demoted to kFailed — a transient error that never clears is
/// indistinguishable from a hard failure to the layer above.
template <typename Fn>
RetryResult with_retry(Fn&& op, const RetryPolicy& policy = {}) {
  RetryResult r;
  const std::uint32_t budget = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (std::uint32_t attempt = 1; attempt <= budget; ++attempt) {
    r.attempts = attempt;
    r.status = op();
    if (r.status != IoStatus::kTransient) return r;
    if (attempt < budget) r.backoff_us += policy.backoff_base_us * attempt;
  }
  r.status = IoStatus::kFailed;
  return r;
}

}  // namespace kdd
