// Bounded-retry helper for transient device errors.
//
// kTransient means "the op did not happen, but trying again may work"
// (timeouts, UNIT ATTENTION-class hiccups). The helper retries with a
// deterministic backoff and reports the total backoff so callers can
// charge it into the event-sim clock via IoPlan::add_retry_delay — retries
// cost simulated time, not just extra device ops.
//
// Two backoff modes:
//   * jitter_seed == 0 — legacy linear backoff (attempt k waits k * base).
//   * jitter_seed != 0 — decorrelated jitter (AWS-style): each wait is drawn
//     uniformly from [base, min(cap, 3 * previous_wait)]. During a
//     transient-fault storm (e.g. every disk hiccuping while a rebuild
//     hammers the array) linear backoff makes all callers retry in lockstep,
//     re-colliding on every attempt; the jittered waits decorrelate them.
//     The stream is seeded, so a given run is still reproducible.
//
// Every exhausted retry budget increments kdd_retry_exhausted_total in the
// global metrics registry, so storms that overwhelm the budget are visible
// in telemetry rather than silently demoted to kFailed.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "blockdev/block_device.hpp"
#include "common/units.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace kdd {

struct RetryPolicy {
  std::uint32_t max_attempts = 4;  ///< 1 initial try + 3 retries
  SimTime backoff_base_us = 100;   ///< linear slope / jitter lower bound
  SimTime backoff_cap_us = 2000;   ///< jittered waits never exceed this
  /// 0 = legacy deterministic linear backoff; non-zero seeds the
  /// decorrelated-jitter stream (reproducible per run, decorrelated across
  /// concurrent retry loops).
  std::uint64_t jitter_seed = 0;
};

struct RetryResult {
  IoStatus status = IoStatus::kOk;
  std::uint32_t attempts = 0;
  SimTime backoff_us = 0;  ///< total simulated wait spent between attempts
};

namespace retry_detail {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-process retry-loop sequence number: mixed into the seed so that two
/// concurrent retry loops with the same policy draw different jitter streams
/// (that is the decorrelation), while a fixed call order stays reproducible.
inline std::uint64_t next_stream() {
  static std::atomic<std::uint64_t> seq{0};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

inline void count_exhausted() {
  static const obs::Counter counter(&obs::MetricsRegistry::global(),
                                    "kdd_retry_exhausted_total");
  counter.inc();
  // A drained retry budget is a black-box trigger: record and dump so the
  // ring still holds the lead-up when the caller surfaces the failure.
  obs::flight_note_and_dump(obs::FlightKind::kRetryExhausted,
                            "retry_exhausted");
}

}  // namespace retry_detail

/// Invokes `op` (an IoStatus() callable) up to policy.max_attempts times while
/// it keeps returning kTransient. If the retry budget is exhausted the status
/// is demoted to kFailed — a transient error that never clears is
/// indistinguishable from a hard failure to the layer above.
template <typename Fn>
RetryResult with_retry(Fn&& op, const RetryPolicy& policy = {}) {
  RetryResult r;
  const std::uint32_t budget = policy.max_attempts > 0 ? policy.max_attempts : 1;
  std::uint64_t rng = 0;
  SimTime prev_wait = policy.backoff_base_us;
  for (std::uint32_t attempt = 1; attempt <= budget; ++attempt) {
    r.attempts = attempt;
    r.status = op();
    if (r.status != IoStatus::kTransient) return r;
    if (attempt < budget) {
      if (policy.jitter_seed == 0) {
        r.backoff_us += policy.backoff_base_us * attempt;
      } else {
        if (rng == 0) {
          rng = retry_detail::splitmix64(policy.jitter_seed ^
                                         retry_detail::next_stream());
        }
        rng = retry_detail::splitmix64(rng);
        const SimTime lo = policy.backoff_base_us;
        const SimTime hi =
            std::min<SimTime>(policy.backoff_cap_us,
                              std::max<SimTime>(lo, prev_wait * 3));
        const SimTime wait = hi > lo ? lo + rng % (hi - lo + 1) : lo;
        r.backoff_us += wait;
        prev_wait = wait;
      }
    }
  }
  r.status = IoStatus::kFailed;
  retry_detail::count_exhausted();
  return r;
}

}  // namespace kdd
