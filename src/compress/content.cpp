#include "compress/content.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace kdd {

ContentGenerator::ContentGenerator(std::uint64_t seed) : seed_(seed) {}

Page ContentGenerator::base_page(Lba lba) const {
  // Derive a per-page stream from (seed, lba) so regeneration is stable.
  Rng rng(seed_ * 0x9e3779b97f4a7c15ull ^ (lba + 1) * 0xda942042e4dd58b5ull);
  Page p(kPageSize);
  for (std::size_t i = 0; i < kPageSize; i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(p.data() + i, &v, 8);
  }
  return p;
}

Page ContentGenerator::mutate(const Page& old, double target_ratio, Rng& rng) const {
  KDD_CHECK(old.size() == kPageSize);
  const double ratio = std::clamp(target_ratio, 0.01, 1.0);
  // The XOR delta is nonzero only on mutated bytes; the LZ stream spends
  // roughly one byte per mutated byte plus ~5 bytes per zero-gap token, so
  // budget slightly below the target and use runs of 24-40 bytes.
  auto budget = static_cast<std::size_t>(ratio * kPageSize * 0.92);
  Page out = old;
  while (budget > 0) {
    const std::size_t run = std::min<std::size_t>(budget, 24 + rng.next_below(17));
    const std::size_t start = rng.next_below(kPageSize - run + 1);
    for (std::size_t i = 0; i < run; ++i) {
      out[start + i] = static_cast<std::uint8_t>(rng.next_u64());
    }
    budget -= run;
  }
  return out;
}

}  // namespace kdd
