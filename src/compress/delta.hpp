// Delta codec: a delta is the LZ-compressed XOR of two versions of a page
// (Section II-C / III-A of the paper). Applying a delta to the old version
// reproduces the new version; XORing a stale parity block with the *raw*
// (decompressed) delta yields the fresh parity, which is what KDD's cleaning
// thread relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace kdd {

/// A compressed page delta. `payload` is the LZ stream unless compression
/// failed to save space, in which case the raw XOR is stored (`raw == true`).
struct Delta {
  bool raw = false;
  std::vector<std::uint8_t> payload;

  /// Bytes this delta occupies when packed into a DEZ page (payload + header).
  std::size_t packed_size() const { return payload.size() + kHeaderSize; }

  /// Serialized header: 1 flag byte + 2-byte payload length.
  static constexpr std::size_t kHeaderSize = 3;
};

/// Computes the delta between two equally-sized page versions.
Delta make_delta(std::span<const std::uint8_t> old_version,
                 std::span<const std::uint8_t> new_version);

/// Out-parameter variant of make_delta: reuses `out.payload`'s capacity and
/// the thread-local scratch arena, so a warm hot path computes deltas with
/// zero allocations. Page-sized inputs only.
void make_delta_into(std::span<const std::uint8_t> old_version,
                     std::span<const std::uint8_t> new_version, Delta& out);

/// Reconstructs the new version: old XOR decompress(delta).
Page apply_delta(std::span<const std::uint8_t> old_version, const Delta& delta);

/// Allocation-free apply: writes the new version into caller-owned `out`
/// (same size as `old_version`). Raw deltas are fused (out = old ^ payload)
/// without any staging copy.
void apply_delta_into(std::span<const std::uint8_t> old_version, const Delta& delta,
                      std::span<std::uint8_t> out);

/// Decompresses the delta into the raw XOR difference page.
Page delta_to_xor(const Delta& delta, std::size_t page_size = kPageSize);

/// Allocation-free variant: decompresses into caller-owned `out` (whose size
/// is the page size). Returns false if the delta does not decode to exactly
/// out.size() bytes.
bool delta_to_xor_into(const Delta& delta, std::span<std::uint8_t> out);

/// Zero-copy XOR view of a delta: for a raw delta the stored payload *is*
/// the XOR page and is aliased directly (no copy); otherwise the payload is
/// decompressed into `scratch` (resized to kPageSize if needed) and a
/// reference to `scratch` is returned. The view is invalidated when `delta`
/// or `scratch` is mutated or destroyed.
const Page& delta_xor_view(const Delta& delta, Page& scratch);

/// Serializes `delta` into `out` at `offset`; returns bytes written.
/// Used when packing multiple deltas into one DEZ page.
std::size_t pack_delta(const Delta& delta, std::span<std::uint8_t> out,
                       std::size_t offset);

/// Parses a delta previously written by pack_delta. Returns false if the
/// buffer does not contain a well-formed delta at `offset`.
bool unpack_delta(std::span<const std::uint8_t> in, std::size_t offset, Delta& out);

}  // namespace kdd
