// Synthetic page contents with controllable content locality.
//
// The paper's prototype relies on real application data whose consecutive
// versions differ by 5-20 % of their bits (Section II-C). We cannot ship
// those data sets, so this generator synthesizes page versions whose XOR
// delta LZ-compresses to a chosen target ratio — the property every KDD
// code path actually depends on.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace kdd {

class ContentGenerator {
 public:
  explicit ContentGenerator(std::uint64_t seed = 1);

  /// Deterministic pseudorandom (incompressible) base content for a page.
  Page base_page(Lba lba) const;

  /// Produces a new version of `old` whose delta compresses to roughly
  /// `target_ratio` * page size (clamped to [0.01, 1.0]). Mutations are
  /// scattered short runs of fresh random bytes, mimicking in-place record
  /// updates inside a block.
  Page mutate(const Page& old, double target_ratio, Rng& rng) const;

 private:
  std::uint64_t seed_;
};

}  // namespace kdd
