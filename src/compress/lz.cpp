#include "compress/lz.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace kdd {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainProbes = 16;

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Length of the common prefix of a and b, where b may read up to `limit`
/// bytes. Word-at-a-time with a ctz finish: the match-extension loop is the
/// hottest part of the compressor on delta pages (long runs of equal bytes).
std::size_t common_prefix(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t limit) {
  std::size_t len = 0;
  while (len + 8 <= limit) {
    const std::uint64_t diff = read_u64(a + len) ^ read_u64(b + len);
    if (diff != 0) {
      return len + static_cast<std::size_t>(std::countr_zero(diff)) / 8;
    }
    len += 8;
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

void put_length(std::vector<std::uint8_t>& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

/// Hash-chain match finder with buffers reused across calls (per thread).
/// The head table is invalidated by epoch stamping instead of clearing, so a
/// 4 KiB page costs zero table initialisation; prev[] entries are only ever
/// read for positions inserted in the current epoch, so it needs sizing only.
struct MatchFinder {
  struct Head {
    std::uint32_t epoch = 0;
    std::int32_t pos = -1;
  };
  std::vector<Head> head;
  std::vector<std::int32_t> prev;
  std::uint32_t epoch = 0;

  void begin(std::size_t n) {
    if (head.size() != kHashSize) head.assign(kHashSize, Head{});
    if (prev.size() < n) prev.resize(n);
    ++epoch;
    if (epoch == 0) {  // wrapped: stale stamps could alias, hard-reset once
      head.assign(kHashSize, Head{});
      epoch = 1;
    }
  }

  std::int32_t first(std::uint32_t h) const {
    return head[h].epoch == epoch ? head[h].pos : -1;
  }

  void insert(std::uint32_t h, std::size_t pos) {
    prev[pos] = first(h);
    head[h].epoch = epoch;
    head[h].pos = static_cast<std::int32_t>(pos);
  }

  static MatchFinder& local() {
    thread_local MatchFinder mf;
    return mf;
  }
};

}  // namespace

std::size_t lz_max_compressed_size(std::size_t src_size) {
  // Worst case: all literals — token byte + extension bytes + literals.
  return src_size + src_size / 255 + 16;
}

void lz_compress_into(std::span<const std::uint8_t> src,
                      std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(src.size() / 2 + 16);

  const std::uint8_t* base = src.data();
  const std::size_t n = src.size();

  MatchFinder& mf = MatchFinder::local();
  mf.begin(n);

  std::size_t literal_start = 0;
  std::size_t pos = 0;

  auto emit = [&](std::size_t match_len, std::size_t offset) {
    const std::size_t lit = pos - literal_start;
    const std::uint8_t lit_nibble = static_cast<std::uint8_t>(lit < 15 ? lit : 15);
    const bool has_match = match_len > 0;
    std::size_t match_extra = 0;
    std::uint8_t match_nibble = 0;
    if (has_match) {
      const std::size_t code = match_len - kMinMatch;
      match_nibble = static_cast<std::uint8_t>(code < 15 ? code : 15);
      match_extra = code;
    }
    out.push_back(static_cast<std::uint8_t>((lit_nibble << 4) | match_nibble));
    if (lit >= 15) put_length(out, lit - 15);
    out.insert(out.end(), base + literal_start, base + literal_start + lit);
    if (has_match) {
      out.push_back(static_cast<std::uint8_t>(offset & 0xff));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      if (match_nibble == 15) put_length(out, match_extra - 15);
    }
  };

  // Hoisted raw pointers: `out` is a byte vector, and stores through
  // std::uint8_t* may alias anything, so keeping the finder state behind
  // member accessors forces reloads inside the hot loop.
  MatchFinder::Head* const head = mf.head.data();
  std::int32_t* const prev = mf.prev.data();
  const std::uint32_t epoch = mf.epoch;

  while (pos + kMinMatch <= n) {
    const std::uint32_t cur4 = read_u32(base + pos);
    const std::uint32_t h = hash4(cur4);
    const MatchFinder::Head head_h = head[h];
    std::int32_t cand = head_h.epoch == epoch ? head_h.pos : -1;
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    int probes = kMaxChainProbes;
    while (cand >= 0 && probes-- > 0) {
      const std::size_t cpos = static_cast<std::size_t>(cand);
      const std::size_t off = pos - cpos;
      if (off > kMaxOffset) break;
      // Reject quickly: a candidate that cannot beat best_len is skipped
      // before the (expensive) full extension.
      if (read_u32(base + cpos) == cur4 &&
          (best_len == 0 || (pos + best_len < n &&
                             base[cpos + best_len] == base[pos + best_len]))) {
        const std::size_t len =
            kMinMatch + common_prefix(base + cpos + kMinMatch,
                                      base + pos + kMinMatch,
                                      n - pos - kMinMatch);
        if (len > best_len) {
          best_len = len;
          best_off = off;
        }
      }
      cand = prev[cpos];
    }
    prev[pos] = head_h.epoch == epoch ? head_h.pos : -1;
    head[h] = {epoch, static_cast<std::int32_t>(pos)};
    if (best_len >= kMinMatch) {
      emit(best_len, best_off);
      // Insert hash entries for the matched region (sparsely, every other
      // byte, to bound compression cost on long runs).
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= n && p < end; p += 2) {
        const std::uint32_t hh = hash4(read_u32(base + p));
        const MatchFinder::Head hp = head[hh];
        prev[p] = hp.epoch == epoch ? hp.pos : -1;
        head[hh] = {epoch, static_cast<std::int32_t>(p)};
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  pos = n;
  emit(0, 0);  // final literal-only token (may carry zero literals)
}

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> src) {
  std::vector<std::uint8_t> out;
  lz_compress_into(src, out);
  return out;
}

bool lz_decompress(std::span<const std::uint8_t> src, std::size_t expected_size,
                   std::vector<std::uint8_t>& out) {
  out.resize(expected_size);
  const bool ok = lz_decompress_into(src, out);
  if (!ok) out.clear();
  return ok;
}

bool lz_decompress_into(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> out) {
  const std::size_t expected_size = out.size();
  std::uint8_t* const ob = out.data();
  std::size_t op = 0;  // write cursor
  std::size_t ip = 0;
  const std::size_t in_n = src.size();

  auto read_length = [&](std::size_t base_len) -> std::size_t {
    std::size_t len = base_len;
    while (true) {
      if (ip >= in_n) return SIZE_MAX;
      const std::uint8_t b = src[ip++];
      len += b;
      if (b != 255) return len;
    }
  };

  while (ip < in_n) {
    const std::uint8_t token = src[ip++];
    std::size_t lit = token >> 4;
    if (lit == 15) {
      lit = read_length(15);
      if (lit == SIZE_MAX) return false;
    }
    if (ip + lit > in_n || op + lit > expected_size) return false;
    std::memcpy(ob + op, src.data() + ip, lit);
    op += lit;
    ip += lit;
    if (op == expected_size) {
      return ip == in_n;  // final token carries no match
    }
    if (ip + 2 > in_n) return false;
    const std::size_t offset =
        static_cast<std::size_t>(src[ip]) | (static_cast<std::size_t>(src[ip + 1]) << 8);
    ip += 2;
    if (offset == 0 || offset > op) return false;
    std::size_t mlen = token & 0x0f;
    if (mlen == 15) {
      mlen = read_length(15);
      if (mlen == SIZE_MAX) return false;
    }
    mlen += kMinMatch;
    if (op + mlen > expected_size) return false;
    const std::size_t from = op - offset;
    if (offset >= mlen) {
      // Non-overlapping: single bulk copy.
      std::memcpy(ob + op, ob + from, mlen);
      op += mlen;
    } else {
      // Overlapping match (offset 1 encodes runs): byte-by-byte semantics.
      for (std::size_t i = 0; i < mlen; ++i) ob[op + i] = ob[from + i];
      op += mlen;
    }
  }
  return op == expected_size;
}

}  // namespace kdd
