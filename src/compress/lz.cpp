#include "compress/lz.hpp"

#include <cstring>

#include "common/check.hpp"

namespace kdd {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainProbes = 16;

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(std::vector<std::uint8_t>& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

}  // namespace

std::size_t lz_max_compressed_size(std::size_t src_size) {
  // Worst case: all literals — token byte + extension bytes + literals.
  return src_size + src_size / 255 + 16;
}

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> src) {
  std::vector<std::uint8_t> out;
  out.reserve(src.size() / 2 + 16);

  const std::uint8_t* base = src.data();
  const std::size_t n = src.size();

  // head[h] is the most recent position hashed to h; prev[i] chains backwards.
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(n, -1);

  std::size_t literal_start = 0;
  std::size_t pos = 0;

  auto emit = [&](std::size_t match_len, std::size_t offset) {
    const std::size_t lit = pos - literal_start;
    const std::uint8_t lit_nibble = static_cast<std::uint8_t>(lit < 15 ? lit : 15);
    const bool has_match = match_len > 0;
    std::size_t match_extra = 0;
    std::uint8_t match_nibble = 0;
    if (has_match) {
      const std::size_t code = match_len - kMinMatch;
      match_nibble = static_cast<std::uint8_t>(code < 15 ? code : 15);
      match_extra = code;
    }
    out.push_back(static_cast<std::uint8_t>((lit_nibble << 4) | match_nibble));
    if (lit >= 15) put_length(out, lit - 15);
    out.insert(out.end(), base + literal_start, base + literal_start + lit);
    if (has_match) {
      out.push_back(static_cast<std::uint8_t>(offset & 0xff));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      if (match_nibble == 15) put_length(out, match_extra - 15);
    }
  };

  while (pos + kMinMatch <= n) {
    const std::uint32_t h = hash4(read_u32(base + pos));
    std::int32_t cand = head[h];
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    int probes = kMaxChainProbes;
    while (cand >= 0 && probes-- > 0) {
      const std::size_t cpos = static_cast<std::size_t>(cand);
      const std::size_t off = pos - cpos;
      if (off > kMaxOffset) break;
      if (read_u32(base + cpos) == read_u32(base + pos)) {
        std::size_t len = kMinMatch;
        while (pos + len < n && base[cpos + len] == base[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = off;
        }
      }
      cand = prev[cpos];
    }
    prev[pos] = head[h];
    head[h] = static_cast<std::int32_t>(pos);
    if (best_len >= kMinMatch) {
      emit(best_len, best_off);
      // Insert hash entries for the matched region (sparsely, every other
      // byte, to bound compression cost on long runs).
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= n && p < end; p += 2) {
        const std::uint32_t hh = hash4(read_u32(base + p));
        prev[p] = head[hh];
        head[hh] = static_cast<std::int32_t>(p);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  pos = n;
  emit(0, 0);  // final literal-only token (may carry zero literals)
  return out;
}

bool lz_decompress(std::span<const std::uint8_t> src, std::size_t expected_size,
                   std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(expected_size);
  std::size_t ip = 0;
  const std::size_t in_n = src.size();

  auto read_length = [&](std::size_t base_len) -> std::size_t {
    std::size_t len = base_len;
    while (true) {
      if (ip >= in_n) return SIZE_MAX;
      const std::uint8_t b = src[ip++];
      len += b;
      if (b != 255) return len;
    }
  };

  while (ip < in_n) {
    const std::uint8_t token = src[ip++];
    std::size_t lit = token >> 4;
    if (lit == 15) {
      lit = read_length(15);
      if (lit == SIZE_MAX) return false;
    }
    if (ip + lit > in_n || out.size() + lit > expected_size) return false;
    out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(ip),
               src.begin() + static_cast<std::ptrdiff_t>(ip + lit));
    ip += lit;
    if (out.size() == expected_size) {
      return ip == in_n;  // final token carries no match
    }
    if (ip + 2 > in_n) return false;
    const std::size_t offset =
        static_cast<std::size_t>(src[ip]) | (static_cast<std::size_t>(src[ip + 1]) << 8);
    ip += 2;
    if (offset == 0 || offset > out.size()) return false;
    std::size_t mlen = token & 0x0f;
    if (mlen == 15) {
      mlen = read_length(15);
      if (mlen == SIZE_MAX) return false;
    }
    mlen += kMinMatch;
    if (out.size() + mlen > expected_size) return false;
    // Byte-by-byte copy: matches may overlap their own output.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < mlen; ++i) out.push_back(out[from + i]);
  }
  return out.size() == expected_size;
}

}  // namespace kdd
