#include "compress/delta.hpp"

#include <cstring>

#include "common/check.hpp"
#include "compress/lz.hpp"

namespace kdd {

Delta make_delta(std::span<const std::uint8_t> old_version,
                 std::span<const std::uint8_t> new_version) {
  KDD_CHECK(old_version.size() == new_version.size());
  const Page diff = xor_pages(old_version, new_version);
  Delta d;
  d.payload = lz_compress(diff);
  if (d.payload.size() >= diff.size()) {
    d.raw = true;
    d.payload.assign(diff.begin(), diff.end());
  }
  return d;
}

Page delta_to_xor(const Delta& delta, std::size_t page_size) {
  if (delta.raw) {
    KDD_CHECK(delta.payload.size() == page_size);
    return Page(delta.payload.begin(), delta.payload.end());
  }
  Page diff;
  const bool ok = lz_decompress(delta.payload, page_size, diff);
  KDD_CHECK(ok);
  return diff;
}

Page apply_delta(std::span<const std::uint8_t> old_version, const Delta& delta) {
  Page out = delta_to_xor(delta, old_version.size());
  xor_into(out, old_version);
  return out;
}

std::size_t pack_delta(const Delta& delta, std::span<std::uint8_t> out,
                       std::size_t offset) {
  const std::size_t need = delta.packed_size();
  KDD_CHECK(offset + need <= out.size());
  KDD_CHECK(delta.payload.size() <= 0xffff);
  out[offset] = delta.raw ? 1 : 0;
  out[offset + 1] = static_cast<std::uint8_t>(delta.payload.size() & 0xff);
  out[offset + 2] = static_cast<std::uint8_t>(delta.payload.size() >> 8);
  std::memcpy(out.data() + offset + Delta::kHeaderSize, delta.payload.data(),
              delta.payload.size());
  return need;
}

bool unpack_delta(std::span<const std::uint8_t> in, std::size_t offset, Delta& out) {
  if (offset + Delta::kHeaderSize > in.size()) return false;
  const std::uint8_t flag = in[offset];
  if (flag > 1) return false;
  const std::size_t len = static_cast<std::size_t>(in[offset + 1]) |
                          (static_cast<std::size_t>(in[offset + 2]) << 8);
  if (offset + Delta::kHeaderSize + len > in.size()) return false;
  out.raw = flag == 1;
  out.payload.assign(in.begin() + static_cast<std::ptrdiff_t>(offset + Delta::kHeaderSize),
                     in.begin() + static_cast<std::ptrdiff_t>(offset + Delta::kHeaderSize + len));
  return true;
}

}  // namespace kdd
