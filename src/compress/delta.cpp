#include "compress/delta.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/page_arena.hpp"
#include "compress/lz.hpp"

namespace kdd {

void make_delta_into(std::span<const std::uint8_t> old_version,
                     std::span<const std::uint8_t> new_version, Delta& out) {
  KDD_CHECK(old_version.size() == new_version.size());
  KDD_CHECK(old_version.size() == kPageSize);
  // Scratch diff page from the thread-local arena; fused XOR (no copy+xor).
  ScratchPage diff;
  xor_pages3(diff, old_version, new_version);
  lz_compress_into(*diff, out.payload);
  out.raw = false;
  if (out.payload.size() >= diff->size()) {
    // Compression did not pay: store the raw XOR. assign() reuses the
    // payload's existing capacity (one copy; the historical path copied the
    // diff here *and again* on every delta_to_xor).
    out.raw = true;
    out.payload.assign(diff->begin(), diff->end());
  }
}

Delta make_delta(std::span<const std::uint8_t> old_version,
                 std::span<const std::uint8_t> new_version) {
  Delta d;
  make_delta_into(old_version, new_version, d);
  return d;
}

bool delta_to_xor_into(const Delta& delta, std::span<std::uint8_t> out) {
  if (delta.raw) {
    if (delta.payload.size() != out.size()) return false;
    std::memcpy(out.data(), delta.payload.data(), out.size());
    return true;
  }
  return lz_decompress_into(delta.payload, out);
}

Page delta_to_xor(const Delta& delta, std::size_t page_size) {
  Page diff(page_size);
  KDD_CHECK(delta_to_xor_into(delta, diff));
  return diff;
}

const Page& delta_xor_view(const Delta& delta, Page& scratch) {
  if (delta.raw) {
    KDD_CHECK(delta.payload.size() == kPageSize);
    return delta.payload;  // alias the stored raw XOR — zero copies
  }
  if (scratch.size() != kPageSize) scratch.resize(kPageSize);
  KDD_CHECK(lz_decompress_into(delta.payload, scratch));
  return scratch;
}

void apply_delta_into(std::span<const std::uint8_t> old_version, const Delta& delta,
                      std::span<std::uint8_t> out) {
  KDD_CHECK(old_version.size() == out.size());
  if (delta.raw) {
    // Raw XOR payload: fuse directly with the old version, no staging copy.
    KDD_CHECK(delta.payload.size() == out.size());
    xor_pages3(out, old_version, delta.payload);
    return;
  }
  KDD_CHECK(lz_decompress_into(delta.payload, out));
  xor_into(out, old_version);
}

Page apply_delta(std::span<const std::uint8_t> old_version, const Delta& delta) {
  Page out(old_version.size());
  apply_delta_into(old_version, delta, out);
  return out;
}

std::size_t pack_delta(const Delta& delta, std::span<std::uint8_t> out,
                       std::size_t offset) {
  const std::size_t need = delta.packed_size();
  KDD_CHECK(offset + need <= out.size());
  KDD_CHECK(delta.payload.size() <= 0xffff);
  out[offset] = delta.raw ? 1 : 0;
  out[offset + 1] = static_cast<std::uint8_t>(delta.payload.size() & 0xff);
  out[offset + 2] = static_cast<std::uint8_t>(delta.payload.size() >> 8);
  std::memcpy(out.data() + offset + Delta::kHeaderSize, delta.payload.data(),
              delta.payload.size());
  return need;
}

bool unpack_delta(std::span<const std::uint8_t> in, std::size_t offset, Delta& out) {
  if (offset + Delta::kHeaderSize > in.size()) return false;
  const std::uint8_t flag = in[offset];
  if (flag > 1) return false;
  const std::size_t len = static_cast<std::size_t>(in[offset + 1]) |
                          (static_cast<std::size_t>(in[offset + 2]) << 8);
  if (offset + Delta::kHeaderSize + len > in.size()) return false;
  out.raw = flag == 1;
  out.payload.assign(in.begin() + static_cast<std::ptrdiff_t>(offset + Delta::kHeaderSize),
                     in.begin() + static_cast<std::ptrdiff_t>(offset + Delta::kHeaderSize + len));
  return true;
}

}  // namespace kdd
