// From-scratch byte-oriented LZ77 codec (LZ4-style token format with
// hash-chain match finding). Stands in for the LZO library the paper's
// prototype uses for delta compression — same role, same asymptotics.
//
// Format (per token):
//   1 byte:  high nibble = literal count  (15 => extension bytes follow)
//            low nibble  = match length-4 (15 => extension bytes follow)
//   <literal count extension bytes>  each 255 adds 255, terminator < 255
//   <literals>
//   2 bytes: little-endian match offset (1..65535), omitted for the final
//            token (which carries literals only, low nibble = 0)
//   <match length extension bytes>
//
// Minimum match length is 4; matches may overlap their own output (offset 1
// encodes runs), which makes mostly-zero XOR deltas collapse to a few bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kdd {

/// Compresses src. The output is self-delimiting given the original size.
std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> src);

/// Compresses src into `out` (cleared first), reusing its capacity. The
/// hash-chain match finder is thread-local and reused across calls, so a
/// warm steady state compresses without any allocation.
void lz_compress_into(std::span<const std::uint8_t> src,
                      std::vector<std::uint8_t>& out);

/// Decompresses src into exactly expected_size bytes.
/// Returns false (and leaves out unspecified) on malformed input.
bool lz_decompress(std::span<const std::uint8_t> src, std::size_t expected_size,
                   std::vector<std::uint8_t>& out);

/// Decompresses src into exactly out.size() bytes of caller-owned storage
/// (no allocation). Returns false on malformed input; `out` contents are
/// then unspecified.
bool lz_decompress_into(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> out);

/// Upper bound on compressed size for a given input size.
std::size_t lz_max_compressed_size(std::size_t src_size);

}  // namespace kdd
