// Types for the asynchronous submission/completion request engine.
//
// The synchronous front door (ConcurrentCache::read/write) runs every
// request to completion on the submitter's thread, so submitter-side
// throughput is bounded by the single policy mutex no matter how many
// clients there are. The async engine decouples the two halves: a submitter
// *enqueues* an outstanding-request context into a per-shard submission
// queue and returns immediately; engine workers drain the shards, execute
// each request under the usual stripe -> policy locking, and complete it
// via callback. Admission control (bounded per-shard queues plus global
// high/low watermarks) keeps deep client queue depths — the fig10/fig11
// FIO sweeps go to QD=256 — from burying the cleaner pool in deferred work.
//
// This header holds the knobs and the optional policy-side hook; the engine
// itself lives inside ConcurrentCache (kdd/concurrent.hpp), which owns the
// queues, the workers and the completion bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "cache/policy.hpp"
#include "compress/delta.hpp"

namespace kdd {

/// Completion callback: invoked exactly once per accepted submission, on an
/// engine worker thread, after the request executed. The read/write buffers
/// handed to submit_read (output) must stay alive until the callback fires;
/// write payloads are copied at submit time and may be reused immediately.
using AsyncCompletion = std::function<void(IoStatus)>;

/// Engine sizing and admission-control knobs.
struct AsyncEngineOptions {
  /// Worker threads draining the submission queues. 0 disables the engine
  /// (submit_* then KDD_CHECK-fails; the sync front door is unaffected).
  std::uint32_t workers = 0;
  /// Bounded in-flight per shard: a submitter targeting a shard whose queue
  /// holds this many requests blocks (submit) or is rejected (try_submit).
  std::size_t shard_queue_depth = 64;
  /// Global watermarks: at >= high total outstanding requests, submit()
  /// blocks (and try_submit rejects) until completions bring the total back
  /// under low. high must be > low > 0.
  std::size_t high_watermark = 1024;
  std::size_t low_watermark = 512;
};

/// Lock-free-ish counters describing the engine's lifetime activity,
/// sampled without stopping the workers.
struct AsyncEngineStats {
  std::uint64_t submitted = 0;   ///< accepted submissions
  std::uint64_t completed = 0;   ///< completions fired
  std::uint64_t rejected = 0;    ///< try_submit refusals + quiesced submits
  std::uint64_t stalls = 0;      ///< submit() calls that had to block
  std::uint64_t inflight = 0;    ///< submitted - completed at sample time
};

/// Optional policy-side hook that lets the engine (and the sync front door)
/// hold the policy mutex only for admission/placement decisions: the
/// expensive write-hit delta computation (DAZ read-back diff + LZ compress,
/// the dominant per-request CPU cost) moves outside the lock.
///
/// Protocol, always under the request's stripe lock (which serialises every
/// request of the parity group, so the slot's contents cannot change under
/// the speculation — see docs/performance.md):
///   1. [policy lock]  snap = write_snapshot(lba, base)  — copy the DAZ base
///   2. [NO locks]     delta = make_delta(base, data)    — the parallel part
///   3. [policy lock]  write_prepared(lba, data, snap, delta)
/// write_prepared revalidates the snapshot against live state (concurrent
/// activity on *other* stripes may have evicted, cleaned or healed the slot)
/// and falls back to the plain write() path — recomputing the delta inline —
/// on any mismatch, so the result is byte-equivalent to the synchronous path
/// in every case.
class SpeculativeWriteSource {
 public:
  struct Snapshot {
    std::uint32_t idx = 0;     ///< slot index the base was captured from
    std::uint8_t state = 0;    ///< PageState at capture time
    bool valid = false;        ///< false: don't speculate, take write()
  };
  struct PreparedDelta {
    Delta blob;
    std::uint32_t packed = 0;  ///< blob.packed_size() at compute time
  };

  virtual ~SpeculativeWriteSource() = default;

  /// Under the policy mutex: if `lba` is currently a write hit whose delta
  /// can be computed outside the lock (real data plane, readable DAZ base),
  /// copies the base page into `base` (kPageSize) and returns a valid
  /// snapshot; otherwise returns valid = false.
  virtual Snapshot write_snapshot(Lba lba, std::span<std::uint8_t> base) = 0;

  /// Under the policy mutex again: consume a delta computed outside the
  /// lock. Must behave exactly like write() when the snapshot no longer
  /// matches live state.
  virtual IoStatus write_prepared(Lba lba, std::span<const std::uint8_t> data,
                                  const Snapshot& snap, PreparedDelta&& delta,
                                  IoPlan* plan) = 0;
};

}  // namespace kdd
