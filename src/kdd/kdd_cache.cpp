#include "kdd/kdd_cache.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"
#include "common/page_arena.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kdd {

namespace {

CacheLayoutPlan kdd_layout(const PolicyConfig& config) {
  return plan_cache_layout(config, /*needs_metadata=*/true);
}

/// Global-registry mirrors of KDD's self-healing counters (the per-instance
/// members stay authoritative for tests; these feed the exporters).
struct KddMetrics {
  obs::Counter media_fallbacks;
  obs::Counter delta_fallbacks;
  obs::Counter groups_healed;
  obs::Counter recoveries;
  obs::Counter degraded_cache_hits;   ///< lost pages served from cache
  obs::Counter degraded_delta_folds;  ///< fold-then-retry degraded recoveries
  obs::Histogram destage_batch_groups;  ///< groups per committed destage batch
  // Elastic delta zone (kdd_dez_*): occupancy/fragmentation gauges plus the
  // GC and boundary-adaptation activity counters.
  obs::Counter gc_passes;
  obs::Counter gc_pages_reclaimed;
  obs::Counter gc_deltas_relocated;
  obs::Counter boundary_moves;
  obs::Gauge dez_live_bytes;
  obs::Gauge dez_dead_bytes;
  obs::Gauge dez_boundary_pages;
  obs::Gauge dez_spare_pages;
};

KddMetrics& kdd_metrics() {
  static KddMetrics* m = [] {
    auto* km = new KddMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    km->media_fallbacks = obs::Counter(&reg, "kdd_media_fallbacks_total");
    km->delta_fallbacks = obs::Counter(&reg, "kdd_delta_fallbacks_total");
    km->groups_healed = obs::Counter(&reg, "kdd_groups_healed_total");
    km->recoveries = obs::Counter(&reg, "kdd_recoveries_total");
    km->degraded_cache_hits =
        obs::Counter(&reg, "kdd_degraded_cache_hits_total");
    km->degraded_delta_folds =
        obs::Counter(&reg, "kdd_degraded_delta_folds_total");
    km->destage_batch_groups =
        obs::Histogram(&reg, "kdd_destage_batch_groups");
    km->gc_passes = obs::Counter(&reg, "kdd_dez_gc_passes_total");
    km->gc_pages_reclaimed =
        obs::Counter(&reg, "kdd_dez_gc_pages_reclaimed_total");
    km->gc_deltas_relocated =
        obs::Counter(&reg, "kdd_dez_gc_deltas_relocated_total");
    km->boundary_moves = obs::Counter(&reg, "kdd_dez_boundary_moves_total");
    km->dez_live_bytes = obs::Gauge(&reg, "kdd_dez_live_bytes");
    km->dez_dead_bytes = obs::Gauge(&reg, "kdd_dez_dead_bytes");
    km->dez_boundary_pages = obs::Gauge(&reg, "kdd_dez_boundary_pages");
    km->dez_spare_pages = obs::Gauge(&reg, "kdd_dez_elastic_spare_pages");
    return km;
  }();
  return *m;
}

}  // namespace

KddCache::KddCache(const PolicyConfig& config, const RaidGeometry& geo,
                   NvramState* nvram)
    : BlockCacheBase(config, geo, kdd_layout(config).metadata_pages,
                     kdd_layout(config).cache_pages),
      owned_nvram_(nvram ? nullptr
                         : std::make_unique<NvramState>(config.staging_buffer_bytes,
                                                        config.metadata_buffer_entries)),
      nvram_(nvram ? nvram : owned_nvram_.get()),
      log_(&ssd_, nvram_, &sets_, config.log_gc_threshold),
      sampler_(GaussianRatioSampler::for_mean(config.delta_ratio_mean)),
      rng_(config.seed) {
  if (config.selective_admission) {
    ghost_ = std::make_unique<GhostLru>(sets_.pages());
  }
  dez_space_.reset(sets_.pages());
  comp_ewma_ = config.delta_ratio_mean;
  if (config.adaptive_boundary) {
    boundary_ghost_ = std::make_unique<GhostLru>(sets_.pages());
    dez_limit_pages_ = boundary_target_pages();
  }
  refresh_dez_gauges();
  if (config.segment_staging) {
    setup_segment_staging();
    ssd_.activate_segment_staging();  // counter mode: nothing to recover
  }
}

KddCache::KddCache(const PolicyConfig& config, RaidArray* array, SsdModel* ssd,
                   NvramState* nvram, bool do_recover)
    : BlockCacheBase(config, array, ssd, kdd_layout(config).metadata_pages,
                     kdd_layout(config).cache_pages),
      owned_nvram_(nvram ? nullptr
                         : std::make_unique<NvramState>(config.staging_buffer_bytes,
                                                        config.metadata_buffer_entries)),
      nvram_(nvram ? nvram : owned_nvram_.get()),
      log_(&ssd_, nvram_, &sets_, config.log_gc_threshold),
      sampler_(GaussianRatioSampler::for_mean(config.delta_ratio_mean)),
      rng_(config.seed) {
  if (config.selective_admission) {
    ghost_ = std::make_unique<GhostLru>(sets_.pages());
  }
  dez_space_.reset(sets_.pages());
  comp_ewma_ = config.delta_ratio_mean;
  if (config.adaptive_boundary) {
    boundary_ghost_ = std::make_unique<GhostLru>(sets_.pages());
    dez_limit_pages_ = boundary_target_pages();
  }
  // Staging is enabled (so recover() can replay the in-flight segment) but
  // only activated once the cache state is consistent: recovery's own reads
  // and healing writes must hit the device directly.
  if (config.segment_staging) setup_segment_staging();
  if (do_recover) recover();
  if (config.segment_staging) ssd_.activate_segment_staging();
  refresh_dez_gauges();
}

KddCache::~KddCache() {
  // The engine outlives the cache in crash/recovery rigs; drop the hooks that
  // point into this instance.
  if (rebuild_) {
    rebuild_->set_stripe_barrier(nullptr);
    rebuild_->set_checkpoint_sink(nullptr);
  }
}

void KddCache::setup_segment_staging() {
  const CacheLayoutPlan plan = kdd_layout(config_);
  SegmentConfig sc;
  sc.segment_pages = config_.segment_pages;
  sc.ring_pages = plan.segment_ring_pages;
  sc.ring_base = plan.metadata_pages + plan.cache_pages;
  ssd_.enable_segment_staging(sc, &nvram_->segment_seq);
}

void KddCache::bind_rebuild_engine(RebuildEngine* engine) {
  KDD_CHECK(engine == nullptr || raid_.real());
  rebuild_ = engine;
  if (engine == nullptr) return;
  engine->set_stripe_barrier([this](GroupId begin, GroupId end) {
    return destage_range(begin, end, nullptr);
  });
  engine->set_checkpoint_sink([this](const RebuildCheckpoint& cp) {
    nvram_->rebuild_disk = cp.disk;
    nvram_->rebuild_cursor = cp.cursor;
    nvram_->rebuild_active = cp.active;
  });
}

bool KddCache::handle_disk_failure_online(std::uint32_t disk) {
  KDD_CHECK(raid_.real());
  KDD_CHECK(rebuild_ != nullptr);
  const obs::TraceContextScope trace(obs::Stage::kRecovery, /*always_sample=*/true);
  KDD_LOG(Info, "disk %u failed: degraded mode, online rebuild", disk);
  return rebuild_->on_disk_failure(disk);
}

bool KddCache::destage_range(GroupId begin, GroupId end, IoPlan* plan) {
  std::vector<GroupId> in_range;
  for (const auto& [g, n] : dirty_groups_) {
    if (g >= begin && g < end) in_range.push_back(g);
  }
  bool all_clear = true;
  for (const GroupId g : in_range) {
    if (!dirty_groups_.contains(g)) continue;  // cleaned by an earlier fold
    if (claimed_groups_.contains(g)) {
      // In-flight destage claim (cleaner pool): the claim owner will fold it;
      // tell the engine to retry this window on the next pump.
      all_clear = false;
      continue;
    }
    if (!clean_group(g, plan)) all_clear = false;
  }
  // Stripe barrier contract: the rebuild engine is about to trust the SSD
  // contents for this window, so nothing may linger in the RAM segment.
  ssd_.force_seal(plan);
  return all_clear;
}

bool KddCache::page_down(Lba lba) {
  return raid_.real() && raid_.array()->page_down(lba);
}

bool KddCache::admit(Lba lba) {
  if (!ghost_) return true;
  return ghost_->touch_and_check(lba);
}

void KddCache::note_media_fallback(const char* what) {
  ++media_fallbacks_;
  kdd_metrics().media_fallbacks.inc();
  KDD_LOG(Debug, "media fallback: %s", what);
}

void KddCache::add_map_entry(std::uint32_t idx, IoPlan* plan) {
  const CacheSets::CacheSlot& s = sets_.slot(idx);
  MetadataEntry e;
  e.daz_idx = idx;
  e.lba_raid = s.lba;
  e.state = s.state;
  if (s.state == PageState::kOld) {
    KDD_CHECK(s.dez_idx != CacheSets::kStaged);  // persisted only after commit
    e.dez_idx = s.dez_idx;
    e.dez_off = s.dez_off;
    e.dez_len = s.dez_len;
  }
  log_.add_entry(e, plan);
}

void KddCache::on_evict_slot(std::uint32_t idx) {
  MetadataEntry e;
  e.daz_idx = idx;
  e.lba_raid = kInvalidLba;
  e.state = PageState::kFree;
  log_.add_entry(e, nullptr);
}

// ---------------------------------------------------------------------------
// Delta plumbing
// ---------------------------------------------------------------------------

KddCache::DeltaInfo KddCache::compute_delta(std::uint32_t daz_idx,
                                            std::span<const std::uint8_t> data,
                                            IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kDeltaEncode);
  DeltaInfo info;
  if (ssd_.real()) {
    ScratchPage old_version;  // arena scratch: no allocation once warm
    if (ssd_.read_data(daz_idx, *old_version, plan) != IoStatus::kOk) {
      info.ok = false;  // DAZ base unreadable: no delta can be formed
      return info;
    }
    make_delta_into(*old_version, data, info.blob);
    info.packed = static_cast<std::uint32_t>(info.blob.packed_size());
  } else {
    ssd_.read_data(daz_idx, {}, plan);  // the prototype reads the old version
    const double ratio = sampler_.sample(rng_);
    const auto payload = static_cast<std::uint32_t>(
        std::max(1.0, std::round(ratio * static_cast<double>(kPageSize))));
    info.packed = payload + static_cast<std::uint32_t>(Delta::kHeaderSize);
  }
  return info;
}

bool KddCache::load_delta(const CacheSets::CacheSlot& slot, Delta& out, IoPlan* plan) {
  KDD_CHECK(slot.state == PageState::kOld);
  if (slot.dez_idx == CacheSets::kStaged) {
    const StagedDelta* staged = nvram_->staging.find(slot.lba);
    if (staged == nullptr) return false;
    out = staged->blob;
    return true;
  }
  ScratchPage dez_page;
  if (ssd_.read_data(slot.dez_idx, *dez_page, plan) != IoStatus::kOk) return false;
  Delta d;
  if (!unpack_delta(*dez_page, slot.dez_off, d)) return false;
  if (d.packed_size() != slot.dez_len) return false;
  out = std::move(d);
  return true;
}

void KddCache::charge_delta_read(const CacheSets::CacheSlot& slot, IoPlan* plan) {
  if (slot.dez_idx != CacheSets::kStaged) ssd_.read_data(slot.dez_idx, {}, plan);
}

void KddCache::stage_delta(Lba lba, std::uint32_t daz_idx, DeltaInfo info,
                           IoPlan* plan) {
  KDD_CHECK(info.packed <= kPageSize);
  nvram_->staging.erase(lba);
  if (!nvram_->staging.fits(info.packed)) commit_staging(plan);
  StagedDelta d;
  d.lba = lba;
  d.daz_idx = daz_idx;
  d.packed_size = info.packed;
  d.blob = std::move(info.blob);
  nvram_->staging.put(std::move(d));
  sets_.slot(daz_idx).dez_idx = CacheSets::kStaged;
  sets_.slot(daz_idx).dez_off = 0;
  sets_.slot(daz_idx).dez_len = static_cast<std::uint16_t>(info.packed);
}

KddCache::DezWriteResult KddCache::write_dez_run(std::uint32_t dest, bool append,
                                                 std::span<DezItem> run,
                                                 SsdWriteKind kind, IoPlan* plan) {
  KDD_CHECK(!run.empty());
  // Page image. Zeroed so the gaps between packed deltas never leak stale
  // scratch bytes to media; arena-backed so committing is allocation-free
  // once warm. Appends read-modify-write the extent so the deltas already
  // packed before the tail are preserved.
  ScratchPage content_sp(ScratchPage::kZeroed);
  Page& content = *content_sp;
  std::size_t off = 0;
  if (append) {
    KDD_CHECK(sets_.slot(dest).state == PageState::kDelta);
    KDD_CHECK(dez_space_.tracked(dest) && dez_space_.extent(dest).open);
    off = dez_space_.extent(dest).tail;
    if (ssd_.real()) {
      if (ssd_.read_data(dest, content, plan) != IoStatus::kOk) {
        return DezWriteResult::kDestUnreadable;
      }
    } else {
      ssd_.read_data(dest, {}, plan);
    }
  }
  for (const DezItem& item : run) {
    if (ssd_.real()) {
      const std::size_t written = pack_delta(*item.blob, content, off);
      KDD_CHECK(written == item.packed);
    }
    off += item.packed;
  }
  KDD_CHECK(off <= kPageSize);
  // Write the DEZ page *before* persisting any mapping to it: a torn or
  // failed commit must never leave metadata pointing at garbage deltas.
  const IoStatus wst =
      ssd_.write_data(dest, kind,
                      ssd_.real() ? std::span<const std::uint8_t>(content)
                                  : std::span<const std::uint8_t>{},
                      plan);
  if (wst != IoStatus::kOk) return DezWriteResult::kUnwritable;
  if (!append) dez_space_.open_page(dest);
  for (const DezItem& item : run) {
    const std::uint32_t at = dez_space_.append(dest, item.packed);
    CacheSets::CacheSlot& daz = sets_.slot(item.daz_idx);
    KDD_CHECK(daz.state == PageState::kOld && daz.lba == item.lba);
    daz.dez_idx = dest;
    daz.dez_off = static_cast<std::uint16_t>(at);
    daz.dez_len = static_cast<std::uint16_t>(item.packed);
    add_map_entry(item.daz_idx, plan);
  }
  if (append) {
    sets_.slot(dest).valid_count =
        static_cast<std::uint16_t>(sets_.slot(dest).valid_count + run.size());
  } else {
    sets_.set_state(dest, PageState::kDelta);
    sets_.slot(dest).valid_count = static_cast<std::uint16_t>(run.size());
    ++dez_pages_;
    // Fixed layout: DEZ pages are write-once, so the leftover tail room is
    // never offered again. Elastic keeps the extent open for later commits.
    if (!config_.dez_elastic) dez_space_.close_page(dest);
  }
  return DezWriteResult::kOk;
}

void KddCache::heal_dez_page(std::uint32_t dez_idx, IoPlan* plan) {
  std::unordered_set<GroupId> groups;
  for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
    const CacheSets::CacheSlot& s = sets_.slot(i);
    if (s.state == PageState::kOld && s.dez_idx == dez_idx) {
      groups.insert(raid_.layout().group_of(s.lba));
    }
  }
  for (const GroupId g : groups) heal_group(g, plan);
}

void KddCache::commit_staging(IoPlan* plan) {
  std::vector<StagedDelta> all = nvram_->staging.take_all();
  if (all.empty()) return;
  const obs::SpanScope span(obs::Stage::kDezCommit);

  std::vector<DezItem> items(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    items[i].daz_idx = all[i].daz_idx;
    items[i].lba = all[i].lba;
    items[i].packed = all[i].packed_size;
    items[i].blob = &all[i].blob;
  }
  const auto fold_run = [&](std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      DeltaInfo info;
      info.packed = all[i].packed_size;
      info.blob = std::move(all[i].blob);
      resolve_and_drop(all[i].daz_idx, &info, plan);
    }
  };

  std::size_t pos = 0;
  // Elastic placement: fill the tail slack of open extents before burning
  // fresh cache pages. FIFO order is preserved — the head delta picks the
  // destination (best fit by size class) and followers ride while they fit.
  while (config_.dez_elastic && pos < all.size()) {
    const std::uint32_t dest = dez_space_.find_open(items[pos].packed);
    if (dest == DezSpace::kNone) break;
    const std::uint32_t room = dez_space_.extent(dest).remaining();
    std::size_t end = pos;
    std::size_t bytes = 0;
    while (end < items.size() && bytes + items[end].packed <= room) {
      bytes += items[end].packed;
      ++end;
    }
    KDD_CHECK(end > pos);
    const DezWriteResult st =
        write_dez_run(dest, /*append=*/true,
                      std::span<DezItem>(items).subspan(pos, end - pos),
                      SsdWriteKind::kDeltaCommit, plan);
    if (st == DezWriteResult::kDestUnreadable) {
      // Cannot append without clobbering what is already packed there: stop
      // offering this extent and retry placement for the same head delta.
      note_media_fallback("dez extent unreadable for append");
      dez_space_.close_page(dest);
      continue;
    }
    if (st == DezWriteResult::kUnwritable) {
      // Torn rewrite of a live extent: its pre-existing deltas are gone.
      // Heal their groups from the RAID copy (always current), then fold
      // this run's deltas into parity synchronously.
      note_media_fallback("dez extent unwritable at append");
      heal_dez_page(dest, plan);
      fold_run(pos, end);
      pos = end;
      continue;
    }
    pos = end;
  }

  // First-fit packing into fresh DEZ pages, preserving FIFO order.
  while (pos < all.size()) {
    std::size_t end = pos;
    std::size_t bytes = 0;
    while (end < all.size() && bytes + all[end].packed_size <= kPageSize) {
      bytes += all[end].packed_size;
      ++end;
    }
    KDD_CHECK(end > pos);
    std::uint32_t dez = alloc_dez_slot(plan);
    if (dez == CacheSets::kNone && config_.dez_gc) {
      // Under true capacity pressure the fastest page source is the GC
      // itself: compacting a fragmented extent frees a whole cache page.
      maybe_gc(plan);
      dez = alloc_dez_slot(plan);
    }
    if (dez == CacheSets::kNone) {
      // Emergency: no DEZ page obtainable — fold the remaining deltas into
      // parity synchronously and drop their pages.
      fold_run(pos, all.size());
      return;
    }
    const DezWriteResult st =
        write_dez_run(dez, /*append=*/false,
                      std::span<DezItem>(items).subspan(pos, end - pos),
                      SsdWriteKind::kDeltaCommit, plan);
    if (st != DezWriteResult::kOk) {
      // DEZ page unwritable (media error / power loss): fold this batch's
      // deltas into parity synchronously instead of mapping a bad page.
      note_media_fallback("dez page unwritable at commit");
      ssd_.trim_data(dez);
      fold_run(pos, end);
    }
    pos = end;
  }
  refresh_dez_gauges();
}

// ---------------------------------------------------------------------------
// Delta-zone GC/defrag and the adaptive DAZ/DEZ boundary (ROADMAP item 3)
// ---------------------------------------------------------------------------

void KddCache::maybe_gc(IoPlan* plan) {
  if (!config_.dez_gc || in_gc_) return;
  const std::vector<std::uint32_t> victims = dez_space_.pick_victims(
      config_.dez_gc_dead_ratio, config_.dez_gc_max_victims);
  if (victims.empty()) return;
  in_gc_ = true;
  const obs::SpanScope span(obs::Stage::kClean);
  ++gc_passes_;
  kdd_metrics().gc_passes.inc();
  for (const std::uint32_t v : victims) gc_relocate_page(v, plan);
  in_gc_ = false;
  refresh_dez_gauges();
}

void KddCache::gc_relocate_page(std::uint32_t victim, IoPlan* plan) {
  // Revalidate: an earlier victim's relocation (or a heal it triggered) may
  // already have freed or mutated this page.
  if (!dez_space_.tracked(victim)) return;
  if (sets_.slot(victim).state != PageState::kDelta) return;

  // Collect the live references, in packing order so the relocation is a
  // sequential sweep of the victim.
  std::vector<DezItem> items;
  for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
    const CacheSets::CacheSlot& s = sets_.slot(i);
    if (s.state == PageState::kOld && s.dez_idx == victim) {
      DezItem it;
      it.daz_idx = i;
      it.lba = s.lba;
      it.packed = s.dez_len;
      items.push_back(it);
    }
  }
  if (items.empty()) return;
  std::sort(items.begin(), items.end(), [this](const DezItem& a, const DezItem& b) {
    return sets_.slot(a.daz_idx).dez_off < sets_.slot(b.daz_idx).dez_off;
  });

  // Unpack the live deltas up front (prototype mode): the blobs must outlive
  // every destination write, and an unreadable/torn victim means the live
  // deltas are already lost — heal their groups from the RAID copy instead.
  std::vector<Delta> blobs(items.size());
  if (ssd_.real()) {
    ScratchPage victim_sp;
    if (ssd_.read_data(victim, *victim_sp, plan) != IoStatus::kOk) {
      note_media_fallback("gc victim unreadable");
      heal_dez_page(victim, plan);
      return;
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
      const CacheSets::CacheSlot& s = sets_.slot(items[i].daz_idx);
      if (!unpack_delta(*victim_sp, s.dez_off, blobs[i]) ||
          blobs[i].packed_size() != s.dez_len) {
        note_media_fallback("gc victim delta corrupt");
        heal_dez_page(victim, plan);
        return;
      }
    }
  } else {
    // Counter mode still pays for reading the victim once.
    ssd_.read_data(victim, {}, plan);
  }
  for (std::size_t i = 0; i < items.size(); ++i) items[i].blob = &blobs[i];

  // The victim must never be offered as a relocation destination.
  dez_space_.close_page(victim);

  std::size_t pos = 0;
  while (pos < items.size()) {
    std::uint32_t dest = dez_space_.find_open(items[pos].packed);
    bool append = dest != DezSpace::kNone;
    if (append && dest == victim) {  // paranoia: closed above, never offered
      append = false;
      dest = DezSpace::kNone;
    }
    if (!append) {
      dest = alloc_dez_slot(plan);
      if (dest == CacheSets::kNone) return;  // leave the rest in the victim
    }
    const std::uint32_t room =
        append ? dez_space_.extent(dest).remaining()
               : static_cast<std::uint32_t>(kPageSize);
    std::size_t end = pos;
    std::size_t bytes = 0;
    while (end < items.size() && bytes + items[end].packed <= room) {
      bytes += items[end].packed;
      ++end;
    }
    KDD_CHECK(end > pos);
    if (gc_write_hook_) gc_write_hook_();
    const DezWriteResult st =
        write_dez_run(dest, append,
                      std::span<DezItem>(items).subspan(pos, end - pos),
                      SsdWriteKind::kGcRelocate, plan);
    if (st == DezWriteResult::kDestUnreadable) {
      // Cannot RMW this destination extent: stop offering it, retry placement.
      note_media_fallback("gc destination unreadable");
      dez_space_.close_page(dest);
      continue;
    }
    if (st == DezWriteResult::kUnwritable) {
      note_media_fallback("gc destination unwritable");
      if (append) {
        // Torn rewrite destroyed the destination's pre-existing deltas; the
        // victim's deltas are untouched (no state was changed).
        heal_dez_page(dest, plan);
      } else {
        ssd_.trim_data(dest);
      }
      return;  // abort this victim; the remaining deltas stay where they are
    }
    // Moved: the mappings now point at `dest`; account the holes they left.
    CacheSets::CacheSlot& vslot = sets_.slot(victim);
    for (std::size_t i = pos; i < end; ++i) {
      dez_space_.on_dead(victim, items[i].packed);
      KDD_CHECK(vslot.valid_count > 0);
      --vslot.valid_count;
      ++gc_deltas_relocated_;
      kdd_metrics().gc_deltas_relocated.inc();
    }
    if (vslot.valid_count == 0) {
      ssd_.trim_data(victim);
      sets_.reset_slot(victim);
      dez_space_.on_free(victim);
      KDD_CHECK(dez_pages_ > 0);
      --dez_pages_;
      ++gc_pages_reclaimed_;
      kdd_metrics().gc_pages_reclaimed.inc();
    }
    pos = end;
  }
}

void KddCache::note_compressibility(double packed_ratio) {
  const double w = config_.boundary_ewma;
  comp_ewma_ = (1.0 - w) * comp_ewma_ + w * std::min(1.0, packed_ratio);
}

void KddCache::note_boundary_miss(Lba lba) {
  if (!boundary_ghost_) return;
  ++boundary_epoch_misses_;
  if (boundary_ghost_->touch_and_check(lba)) ++boundary_epoch_ghost_hits_;
}

std::uint64_t KddCache::boundary_target_pages() const {
  // Compressibility steers the share of cache pages the delta zone may hold:
  // highly compressible deltas (EWMA near 0.2 of a page) earn up to 30% of
  // the cache, incompressible ones (EWMA at 0.75+) shrink the zone to 4% —
  // a DEZ full of near-page-size deltas is strictly worse than DAZ residency.
  const double t = std::clamp((0.75 - comp_ewma_) / (0.75 - 0.20), 0.0, 1.0);
  double frac = 0.04 + t * (0.30 - 0.04);
  // Ghost-LRU marginal utility: when over half of this epoch's misses would
  // have hit with a slightly larger DAZ, trade delta capacity for residency.
  if (boundary_epoch_misses_ >= 16 &&
      boundary_epoch_ghost_hits_ * 2 > boundary_epoch_misses_) {
    frac *= 0.75;
  }
  const auto target =
      static_cast<std::uint64_t>(frac * static_cast<double>(sets_.pages()));
  return std::max<std::uint64_t>(1, target);
}

void KddCache::update_boundary(IoPlan* plan) {
  if (!config_.adaptive_boundary) return;
  if (op_counter_ - last_boundary_op_ < config_.boundary_epoch_ops) return;
  last_boundary_op_ = op_counter_;
  const std::uint64_t target = boundary_target_pages();
  // Dead band + bounded step + two-epoch confirmation: the EWMA ripple from
  // alternating compressibility lands the target just outside the dead band
  // on *alternating* sides, so requiring the same out-of-band direction in two
  // consecutive epochs kills the flip-flop without delaying a genuine phase
  // shift by more than one epoch (tests/test_elastic.cpp pins this down).
  const std::uint64_t dead_band = std::max<std::uint64_t>(1, sets_.pages() / 64);
  const std::uint64_t step = std::max<std::uint64_t>(1, sets_.pages() / 32);
  const std::uint64_t cur = dez_limit_pages_;
  std::int8_t dir = 0;
  if (target > cur && target - cur > dead_band) {
    dir = 1;
  } else if (cur > target && cur - target > dead_band) {
    dir = -1;
  }
  std::uint64_t next = cur;
  if (dir != 0 && dir == boundary_pending_dir_) {
    next = dir > 0 ? std::min(cur + step, target)
                   : (cur > step ? std::max(cur - step, target) : target);
  }
  boundary_pending_dir_ = dir;
  if (next != cur) {
    dez_limit_pages_ = next;
    ++boundary_moves_;
    kdd_metrics().boundary_moves.inc();
  }
  boundary_epoch_misses_ = 0;
  boundary_epoch_ghost_hits_ = 0;
  // Shrinking below current usage makes the GC the enforcement arm: compact
  // fragmented extents until the zone fits the new boundary.
  if (config_.dez_gc && dez_pages_ > dez_limit_pages_) maybe_gc(bg_or(plan));
  refresh_dez_gauges();
}

std::uint32_t KddCache::delta_admit_limit() const {
  // A saturated delta zone stops admitting marginal (barely-compressible)
  // deltas: they would evict twice their value in DAZ pages. They go
  // write-through instead, exactly like incompressible ones.
  if (config_.adaptive_boundary && dez_limit_pages_ > 0 &&
      dez_pages_ >= dez_limit_pages_) {
    return static_cast<std::uint32_t>(kPageSize / 2);
  }
  return static_cast<std::uint32_t>(kPageSize);
}

std::uint64_t KddCache::elastic_spare_pages() const {
  if (!config_.adaptive_boundary || dez_limit_pages_ == 0) return 0;
  return dez_pages_ < dez_limit_pages_ ? dez_limit_pages_ - dez_pages_ : 0;
}

std::uint64_t KddCache::effective_clean_high_pages() const {
  const auto high = static_cast<std::uint64_t>(
      config_.clean_high_watermark * static_cast<double>(sets_.pages()));
  const std::uint64_t spare = elastic_spare_pages();
  if (spare == 0 || sets_.pages() == 0) return high;
  // Degraded/rebuilding arrays get the whole spare — deferring parity work
  // off the critical path is exactly what the reclaimed capacity is for.
  // Healthy arrays keep most of it as destage-burst headroom.
  const bool stressed = rebuild_ && rebuild_->health() != ArrayHealth::kHealthy;
  const std::uint64_t boost = stressed ? spare : spare / 4;
  return std::min(high + boost, static_cast<std::uint64_t>(sets_.pages()) - 1);
}

void KddCache::refresh_dez_gauges() {
  KddMetrics& m = kdd_metrics();
  m.dez_live_bytes.set(static_cast<std::int64_t>(dez_space_.live_bytes()));
  m.dez_dead_bytes.set(static_cast<std::int64_t>(dez_space_.dead_bytes()));
  m.dez_boundary_pages.set(static_cast<std::int64_t>(dez_limit_pages_));
  m.dez_spare_pages.set(static_cast<std::int64_t>(elastic_spare_pages()));
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

std::uint32_t KddCache::alloc_daz_slot(std::uint32_t set, IoPlan* plan) {
  (void)plan;
  std::uint32_t idx = sets_.find_free(set);
  if (idx == CacheSets::kNone) idx = evict_lru_clean(set);
  return idx;
}

std::uint32_t KddCache::alloc_dez_slot(IoPlan* plan) {
  // Power-of-k-choices approximation of "the set with the least DEZ pages"
  // (Section III-B): sample k sets, prefer a free page in the least-DEZ one.
  constexpr int kProbes = 8;
  std::uint32_t best_free = CacheSets::kNone;
  std::uint32_t best_free_dez = 0xffffffffu;
  std::uint32_t best_evict = CacheSets::kNone;
  std::uint32_t best_evict_dez = 0xffffffffu;
  for (int p = 0; p < kProbes; ++p) {
    const auto s = static_cast<std::uint32_t>(rng_.next_below(sets_.num_sets()));
    if (sets_.free_count(s) > 0 && sets_.dez_count(s) < best_free_dez) {
      best_free = s;
      best_free_dez = sets_.dez_count(s);
    }
    if (sets_.lru_tail(s) != CacheSets::kNone && sets_.dez_count(s) < best_evict_dez) {
      best_evict = s;
      best_evict_dez = sets_.dez_count(s);
    }
  }
  if (best_free != CacheSets::kNone) return sets_.find_free(best_free);
  if (best_evict != CacheSets::kNone) return evict_lru_clean(best_evict);
  // Fall back to a linear scan before giving up entirely.
  for (std::uint32_t s = 0; s < sets_.num_sets(); ++s) {
    if (sets_.free_count(s) > 0) return sets_.find_free(s);
    if (sets_.lru_tail(s) != CacheSets::kNone) return evict_lru_clean(s);
  }
  (void)plan;
  return CacheSets::kNone;
}

// ---------------------------------------------------------------------------
// Delta invalidation / reclamation
// ---------------------------------------------------------------------------

void KddCache::invalidate_delta(std::uint32_t daz_idx, IoPlan* plan) {
  (void)plan;
  CacheSets::CacheSlot& slot = sets_.slot(daz_idx);
  if (slot.dez_idx == CacheSets::kStaged) {
    nvram_->staging.erase(slot.lba);
  } else if (slot.dez_idx != CacheSets::kNone) {
    CacheSets::CacheSlot& dez = sets_.slot(slot.dez_idx);
    KDD_CHECK(dez.state == PageState::kDelta);
    KDD_CHECK(dez.valid_count > 0);
    dez_space_.on_dead(slot.dez_idx, slot.dez_len);
    if (--dez.valid_count == 0) {
      ssd_.trim_data(slot.dez_idx);
      sets_.reset_slot(slot.dez_idx);
      dez_space_.on_free(slot.dez_idx);
      KDD_CHECK(dez_pages_ > 0);
      --dez_pages_;
    }
  }
  slot.dez_idx = CacheSets::kNone;
  slot.dez_off = slot.dez_len = 0;
}

void KddCache::drop_old_page(std::uint32_t daz_idx, IoPlan* plan) {
  CacheSets::CacheSlot& slot = sets_.slot(daz_idx);
  KDD_CHECK(slot.state == PageState::kOld);
  note_group_repair(raid_.layout().group_of(slot.lba));
  KDD_CHECK(old_pages_ > 0);
  --old_pages_;
  ssd_.trim_data(daz_idx);
  sets_.reset_slot(daz_idx);
  on_evict_slot(daz_idx);
  (void)plan;
}

void KddCache::resolve_and_drop(std::uint32_t daz_idx, const DeltaInfo* override_delta,
                                IoPlan* plan) {
  CacheSets::CacheSlot& slot = sets_.slot(daz_idx);
  // A heal_group triggered by an earlier page of the same batch may already
  // have dropped this page — nothing left to resolve.
  if (slot.state != PageState::kOld) return;
  const GroupId g = raid_.layout().group_of(slot.lba);
  const std::uint32_t index = raid_.layout().index_in_group(slot.lba);

  // delta_xor_view aliases a raw payload directly (zero-copy) and only
  // decompresses into the arena scratch for LZ-compressed deltas.
  Page placeholder;  // prototype mode: the RMW never dereferences the diff
  ScratchPage scratch_sp;
  Delta d;
  const Page* xor_diff = &placeholder;
  if (ssd_.real()) {
    if (override_delta) {
      xor_diff = &delta_xor_view(override_delta->blob, *scratch_sp);
    } else {
      if (!load_delta(slot, d, plan)) {
        // Delta lost to a cache-media fault: RMW would fold garbage into
        // parity. Discard the group's deltas and reconstruct parity instead.
        note_media_fallback("delta unreadable at resolve");
        heal_group(g, plan);
        return;
      }
      xor_diff = &delta_xor_view(d, *scratch_sp);
    }
  } else if (!override_delta) {
    charge_delta_read(slot, plan);
  }
  const GroupDelta gd{index, xor_diff};
  const bool last_in_group =
      dirty_groups_.count(g) != 0 && dirty_groups_.at(g) == 1;
  const IoStatus st =
      raid_.update_parity_rmw(g, std::span<const GroupDelta>(&gd, 1), plan,
                              /*finalize=*/last_in_group);
  if (st != IoStatus::kOk) {
    note_media_fallback("parity rmw failed at resolve");
    heal_group(g, plan);
    return;
  }
  // Always discard the superseded delta: for a staged one this erases it from
  // the NVRAM buffer (a no-op if the caller already drained staging), for a
  // DEZ-resident one it decrements the page's valid count.
  invalidate_delta(daz_idx, plan);
  drop_old_page(daz_idx, plan);
}

void KddCache::note_old_transition(std::uint32_t daz_idx) {
  const CacheSets::CacheSlot& slot = sets_.slot(daz_idx);
  const GroupId g = raid_.layout().group_of(slot.lba);
  if (++dirty_groups_[g] == 1) stale_since_[g] = op_counter_;
  ++old_pages_;
}

void KddCache::note_group_repair(GroupId g) {
  const auto it = dirty_groups_.find(g);
  KDD_CHECK(it != dirty_groups_.end() && it->second > 0);
  if (--it->second > 0) return;
  dirty_groups_.erase(it);
  const auto since = stale_since_.find(g);
  if (since != stale_since_.end()) {
    staleness_ages_.record(op_counter_ - since->second);
    stale_since_.erase(since);
  }
}

void KddCache::heal_group(GroupId g, IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kHeal);
  KDD_LOG(Warn, "heal_group g=%llu: discarding pending deltas, "
          "reconstructing parity from data members",
          static_cast<unsigned long long>(g));
  // Every pending delta of `g` is discarded: the RAID copy of each data
  // member is always current (writes reach the array via write_page_nopar
  // *before* their delta is staged), so parity can be regenerated from the
  // data members alone — no cache state is needed.
  const RaidLayout& layout = raid_.layout();
  const std::uint32_t set = set_for(layout.group_member(g, 0));
  const std::uint32_t base = set * sets_.ways();
  for (std::uint32_t w = 0; w < sets_.ways(); ++w) {
    const std::uint32_t idx = base + w;
    const CacheSets::CacheSlot& s = sets_.slot(idx);
    if (s.state == PageState::kOld && layout.group_of(s.lba) == g) {
      invalidate_delta(idx, plan);
      drop_old_page(idx, plan);
    }
  }
  ++groups_healed_;
  kdd_metrics().groups_healed.inc();
  if (raid_.group_stale(g)) {
    // Best effort: if the reconstruct itself fails (e.g. power loss mid
    // request) the group simply stays stale for recovery to resync.
    std::vector<const Page*> none(layout.geometry().data_disks(), nullptr);
    (void)raid_.update_parity_reconstruct_cached(g, none, plan);
  }
}

// ---------------------------------------------------------------------------
// Request paths
// ---------------------------------------------------------------------------

IoStatus KddCache::read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const obs::TraceContextScope trace;  // request root span + ambient context
  ++op_counter_;
  if (rebuild_) {
    rebuild_->note_foreground();
    if (rebuild_->health() != ArrayHealth::kHealthy) rebuild_->pump(plan);
  }
  const std::uint32_t set = set_for(lba);
  std::uint32_t idx;
  {
    const obs::SpanScope lookup(obs::Stage::kCacheLookup);
    idx = sets_.find_data(set, lba);
  }
  if (idx != CacheSets::kNone) {
    ++stats_.read_hits;
    obs::health_cache_hit();
    if (page_down(lba)) {
      // The page's member is failed or not yet past the rebuild cursor, but
      // its newest version is cache-resident (data, or DAZ base + delta):
      // the degraded read never touches the array.
      ++degraded_cache_hits_;
      kdd_metrics().degraded_cache_hits.inc();
    }
    CacheSets::CacheSlot& slot = sets_.slot(idx);
    if (slot.state == PageState::kClean) {
      sets_.lru_touch(idx);
      const IoStatus st = ssd_.read_data(idx, out, plan);
      if (st == IoStatus::kOk) return IoStatus::kOk;
      // Cache copy unreadable — a clean page is by definition a copy of the
      // RAID contents, so serve from the array and retire the bad slot.
      note_media_fallback("clean daz page unreadable on read hit");
      ssd_.trim_data(idx);
      sets_.reset_slot(idx);
      on_evict_slot(idx);
      return raid_.read_page(lba, out, plan);
    }
    // Old page: combine the DAZ copy with its latest delta (Section III-A).
    KDD_DCHECK(slot.state == PageState::kOld);
    if (ssd_.real()) {
      ScratchPage daz;
      Delta d;
      if (ssd_.read_data(idx, *daz, plan) != IoStatus::kOk ||
          !load_delta(slot, d, plan)) {
        // DAZ base or delta unreadable. The array already holds the newest
        // contents (write hits go to RAID before delta staging), so heal the
        // group and serve from the array.
        note_media_fallback("old page/delta unreadable on read hit");
        heal_group(raid_.layout().group_of(lba), plan);
        return raid_.read_page(lba, out, plan);
      }
      // Combine straight into the caller's buffer: no staging copy.
      apply_delta_into(*daz, d, out);
    } else {
      ssd_.read_data(idx, {}, plan);
      charge_delta_read(slot, plan);
    }
    return IoStatus::kOk;
  }
  ++stats_.read_misses;
  obs::health_cache_miss();
  note_boundary_miss(lba);
  IoStatus st = raid_.read_page(lba, out, plan);
  if (st != IoStatus::kOk && page_down(lba)) {
    // Degraded miss in a stale group: the array refuses to reconstruct a
    // lost member from stale parity (it would fabricate old data). Fold the
    // group's pending deltas — parity becomes current — and retry the
    // reconstructing read.
    const GroupId g = raid_.layout().group_of(lba);
    if (dirty_groups_.contains(g) && !claimed_groups_.contains(g)) {
      clean_group(g, plan);
      st = raid_.read_page(lba, out, plan);
      if (st == IoStatus::kOk) {
        ++degraded_delta_folds_;
        kdd_metrics().degraded_delta_folds.inc();
      }
    }
  }
  if (st != IoStatus::kOk) return st;
  if (!admit(lba)) return IoStatus::kOk;  // LARC: first touch stays ghost-only
  const std::uint32_t slot = alloc_daz_slot(set, plan);
  if (slot == CacheSets::kNone) return IoStatus::kOk;  // set pinned solid
  if (ssd_.write_data(slot, SsdWriteKind::kReadFill, out, plan) != IoStatus::kOk) {
    // Admission failed (torn / failed cache write): never map a bad page.
    note_media_fallback("read-fill admission write failed");
    ssd_.trim_data(slot);
    sets_.reset_slot(slot);
    return IoStatus::kOk;
  }
  sets_.slot(slot).lba = lba;
  sets_.set_state(slot, PageState::kClean);
  add_map_entry(slot, plan);
  return IoStatus::kOk;
}

IoStatus KddCache::degraded_write_page(Lba lba, std::span<const std::uint8_t> data,
                                       IoPlan* plan) {
  IoStatus st = raid_.write_page(lba, data, plan);
  if (st != IoStatus::kOk) {
    // The array refuses to launder a lost member of a stale group through
    // reconstruction. Fold the group's pending deltas — parity becomes
    // current, reconstruction becomes safe — and retry.
    const GroupId g = raid_.layout().group_of(lba);
    if (dirty_groups_.contains(g) && !claimed_groups_.contains(g)) {
      clean_group(g, plan);
      st = raid_.write_page(lba, data, plan);
      if (st == IoStatus::kOk) {
        ++degraded_delta_folds_;
        kdd_metrics().degraded_delta_folds.inc();
      }
    }
  }
  return st;
}

void KddCache::write_preamble(IoPlan* plan) {
  ++op_counter_;
  if (rebuild_) {
    rebuild_->note_foreground();
    if (rebuild_->health() != ArrayHealth::kHealthy) rebuild_->pump(plan);
  }
  update_boundary(plan);
}

IoStatus KddCache::write(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan) {
  const obs::TraceContextScope trace;  // request root span + ambient context
  write_preamble(plan);
  return write_inner(lba, data, plan);
}

IoStatus KddCache::write_inner(Lba lba, std::span<const std::uint8_t> data,
                               IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  std::uint32_t idx;
  {
    const obs::SpanScope lookup(obs::Stage::kCacheLookup);
    idx = sets_.find_data(set, lba);
  }

  if (idx == CacheSets::kNone) {
    // Write miss: conventional parity update (degraded-capable: folds the
    // group's deltas and retries when the array refuses), then admit.
    ++stats_.write_misses;
    obs::health_cache_miss();
    note_boundary_miss(lba);
    const IoStatus st = degraded_write_page(lba, data, plan);
    if (st != IoStatus::kOk) return st;
    if (!admit(lba)) return IoStatus::kOk;
    const std::uint32_t slot = alloc_daz_slot(set, plan);
    if (slot == CacheSets::kNone) return IoStatus::kOk;
    if (ssd_.write_data(slot, SsdWriteKind::kWriteAlloc, data, plan) !=
        IoStatus::kOk) {
      note_media_fallback("write-alloc admission write failed");
      ssd_.trim_data(slot);
      sets_.reset_slot(slot);
      return IoStatus::kOk;  // the array already has the data
    }
    sets_.slot(slot).lba = lba;
    sets_.set_state(slot, PageState::kClean);
    add_map_entry(slot, plan);
    return IoStatus::kOk;
  }

  ++stats_.write_hits;
  obs::health_cache_hit();
  return write_hit_locked(lba, data, set, idx, compute_delta(idx, data, plan),
                          plan);
}

IoStatus KddCache::write_hit_locked(Lba lba, std::span<const std::uint8_t> data,
                                    std::uint32_t set, std::uint32_t idx,
                                    DeltaInfo info, IoPlan* plan) {
  CacheSets::CacheSlot& slot = sets_.slot(idx);
  if (info.ok) {
    note_compressibility(static_cast<double>(info.packed) /
                         static_cast<double>(kPageSize));
  }

  if (slot.state == PageState::kClean) {
    if (!info.ok) {
      // DAZ copy unreadable: write through first, then rewrite the cache
      // copy with the new contents (which also heals a latent sector error).
      // Array-before-cache order matters: a degraded write may fold this
      // group's deltas, and the fold must not see a cache copy that is ahead
      // of the member's disk contents (it would bake the unwritten update
      // into parity, which the array write would then re-apply).
      note_media_fallback("daz base unreadable on clean write hit");
      const IoStatus st = degraded_write_page(lba, data, plan);
      if (st != IoStatus::kOk) {
        // Unreadable copy, array rejected the write: retire the slot.
        ssd_.trim_data(idx);
        sets_.reset_slot(idx);
        on_evict_slot(idx);
        return st;
      }
      if (ssd_.write_data(idx, SsdWriteKind::kWriteUpdate, data, plan) ==
          IoStatus::kOk) {
        sets_.lru_touch(idx);
      } else {
        ssd_.trim_data(idx);
        sets_.reset_slot(idx);
        on_evict_slot(idx);
      }
      return IoStatus::kOk;
    }
    if (info.packed > delta_admit_limit()) {
      // Incompressible delta: no benefit in deferring — stay write-through
      // (degraded-capable: folds the group and retries when the array
      // refuses). Array first, cache refresh second — see above.
      ++delta_fallbacks_;
      kdd_metrics().delta_fallbacks.inc();
      const IoStatus st = degraded_write_page(lba, data, plan);
      if (st != IoStatus::kOk) return st;  // cache still matches the disk
      if (ssd_.write_data(idx, SsdWriteKind::kWriteUpdate, data, plan) ==
          IoStatus::kOk) {
        sets_.lru_touch(idx);
      } else {
        note_media_fallback("write-update rewrite failed");
        ssd_.trim_data(idx);
        sets_.reset_slot(idx);
        on_evict_slot(idx);
      }
      return IoStatus::kOk;
    }
    const IoStatus st = raid_.write_page_nopar(lba, data, plan);
    if (st != IoStatus::kOk) {
      if (!page_down(lba)) return st;
      // The page's member is down (failed disk / ahead of the rebuild
      // cursor): the nopar fast path would strand the new data on a lost
      // disk. Write through conventionally — the array reconstructs around
      // the lost member — and refresh the clean DAZ copy so degraded reads
      // keep hitting the cache.
      const IoStatus wst = degraded_write_page(lba, data, plan);
      if (wst != IoStatus::kOk) return wst;
      if (ssd_.write_data(idx, SsdWriteKind::kWriteUpdate, data, plan) ==
          IoStatus::kOk) {
        sets_.lru_touch(idx);
      } else {
        note_media_fallback("degraded write-through rewrite failed");
        ssd_.trim_data(idx);
        sets_.reset_slot(idx);
        on_evict_slot(idx);
      }
      return IoStatus::kOk;
    }
    sets_.set_state(idx, PageState::kOld);
    note_old_transition(idx);
    stage_delta(lba, idx, std::move(info), plan);
    maybe_clean(plan);
    return IoStatus::kOk;
  }

  KDD_DCHECK(slot.state == PageState::kOld);
  if (!info.ok) {
    // The old page's DAZ base is gone, so neither the previous delta chain
    // nor a new delta can be trusted. Heal the whole group (the array holds
    // the newest data), then write conventionally and re-admit clean.
    note_media_fallback("daz base unreadable on old write hit");
    heal_group(raid_.layout().group_of(lba), plan);
    const IoStatus st = degraded_write_page(lba, data, plan);
    if (st != IoStatus::kOk) return st;
    const std::uint32_t ns = alloc_daz_slot(set, plan);
    if (ns == CacheSets::kNone) return IoStatus::kOk;
    if (ssd_.write_data(ns, SsdWriteKind::kWriteAlloc, data, plan) !=
        IoStatus::kOk) {
      ssd_.trim_data(ns);
      sets_.reset_slot(ns);
      return IoStatus::kOk;
    }
    sets_.slot(ns).lba = lba;
    sets_.set_state(ns, PageState::kClean);
    add_map_entry(ns, plan);
    return IoStatus::kOk;
  }
  // compute_delta() diffs against the DAZ copy, so `info` is exactly the
  // delta the stale parity needs — the previous delta is superseded.
  const IoStatus st = raid_.write_page_nopar(lba, data, plan);
  if (st != IoStatus::kOk) {
    if (!page_down(lba)) return st;
    // Old page on a down member. Fold the group's deltas first (the old
    // page's previous version is still encoded in the stale parity), then
    // write through conventionally and re-admit the newest version.
    const GroupId g = raid_.layout().group_of(lba);
    if (dirty_groups_.contains(g) && !claimed_groups_.contains(g)) {
      clean_group(g, plan);
      ++degraded_delta_folds_;
      kdd_metrics().degraded_delta_folds.inc();
    }
    const IoStatus wst = degraded_write_page(lba, data, plan);
    if (wst != IoStatus::kOk) return wst;
    // clean_group either reclaimed the slot as clean (scheme 1) or dropped
    // it (scheme 2); refresh what survives, else admit fresh.
    const std::uint32_t cur = sets_.find_data(set, lba);
    if (cur != CacheSets::kNone) {
      if (ssd_.write_data(cur, SsdWriteKind::kWriteUpdate, data, plan) ==
          IoStatus::kOk) {
        sets_.lru_touch(cur);
      } else {
        note_media_fallback("degraded write-through rewrite failed");
        ssd_.trim_data(cur);
        sets_.reset_slot(cur);
        on_evict_slot(cur);
      }
      return IoStatus::kOk;
    }
    const std::uint32_t ns = alloc_daz_slot(set, plan);
    if (ns == CacheSets::kNone) return IoStatus::kOk;
    if (ssd_.write_data(ns, SsdWriteKind::kWriteAlloc, data, plan) !=
        IoStatus::kOk) {
      ssd_.trim_data(ns);
      sets_.reset_slot(ns);
      return IoStatus::kOk;
    }
    sets_.slot(ns).lba = lba;
    sets_.set_state(ns, PageState::kClean);
    add_map_entry(ns, plan);
    return IoStatus::kOk;
  }
  if (info.packed > delta_admit_limit()) {
    ++delta_fallbacks_;
  kdd_metrics().delta_fallbacks.inc();
    resolve_and_drop(idx, &info, plan);
    return IoStatus::kOk;
  }
  invalidate_delta(idx, plan);
  stage_delta(lba, idx, std::move(info), plan);
  maybe_clean(plan);
  return IoStatus::kOk;
}

// ---------------------------------------------------------------------------
// Speculative write split (SpeculativeWriteSource)
// ---------------------------------------------------------------------------

SpeculativeWriteSource::Snapshot KddCache::write_snapshot(
    Lba lba, std::span<std::uint8_t> base) {
  Snapshot snap;
  // Counter mode samples delta sizes from rng_ in request order, so a
  // speculated request would perturb every later draw: never speculate.
  if (!ssd_.real()) return snap;
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  if (idx == CacheSets::kNone) return snap;
  const CacheSets::CacheSlot& slot = sets_.slot(idx);
  if (slot.state != PageState::kClean && slot.state != PageState::kOld) {
    return snap;
  }
  // This read replaces the one compute_delta would have issued, so the SSD
  // accounting of a successfully-speculated hit matches the inline path
  // exactly. An unreadable base is not a reason to fail here — returning an
  // invalid snapshot routes the request through write_inner(), which
  // re-reads and takes the media-fallback path.
  if (ssd_.read_data(idx, base, nullptr) != IoStatus::kOk) return snap;
  snap.idx = idx;
  snap.state = static_cast<std::uint8_t>(slot.state);
  snap.valid = true;
  return snap;
}

IoStatus KddCache::write_prepared(Lba lba, std::span<const std::uint8_t> data,
                                  const Snapshot& snap, PreparedDelta&& delta,
                                  IoPlan* plan) {
  const obs::TraceContextScope trace;
  write_preamble(plan);
  if (!snap.valid) return write_inner(lba, data, plan);
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  // Revalidate after the preamble: a rebuild pump (like any activity on other
  // parity groups between snapshot and now — eviction, cleaning, healing) may
  // have moved or retired the slot. The caller's stripe lock guarantees no
  // same-group request intervened, so idx + state matching means the DAZ base
  // the delta was diffed against is still the slot's exact contents.
  if (idx != snap.idx ||
      static_cast<std::uint8_t>(sets_.slot(idx).state) != snap.state) {
    return write_inner(lba, data, plan);  // recompute the delta inline
  }
  ++stats_.write_hits;
  obs::health_cache_hit();
  DeltaInfo info;
  info.blob = std::move(delta.blob);
  info.packed = delta.packed;
  return write_hit_locked(lba, data, set, idx, std::move(info), plan);
}

// ---------------------------------------------------------------------------
// Cleaning (Section III-D)
// ---------------------------------------------------------------------------

void KddCache::drain_groups_legacy(std::uint64_t target_pages, IoPlan* plan) {
  // Starvation fix: the old loop restarted at dirty_groups_.begin() every
  // iteration, so whichever group hashed to the first bucket was recleaned
  // over and over while groups later in iteration order waited indefinitely
  // under a steady dirtying load. Draining a snapshot gives every dirty
  // group a turn before any group is visited twice; the outer loop re-snaps
  // only when a full pass made progress (groups dirtied mid-pass).
  bool progress = true;
  while (progress && old_pages_ + dez_pages_ > target_pages &&
         !dirty_groups_.empty()) {
    progress = false;
    std::vector<GroupId> snapshot;
    snapshot.reserve(dirty_groups_.size());
    for (const auto& [g, n] : dirty_groups_) snapshot.push_back(g);
    for (const GroupId g : snapshot) {
      if (old_pages_ + dez_pages_ <= target_pages) return;
      if (!dirty_groups_.contains(g) || claimed_groups_.contains(g)) continue;
      if (clean_group(g, plan)) progress = true;
    }
  }
}

void KddCache::maybe_clean(IoPlan* plan) {
  if (cleaning_ || external_cleaner_) return;
  maybe_gc(bg_or(plan));
  const std::uint64_t high = effective_clean_high_pages();
  if (old_pages_ + dez_pages_ <= high) return;
  cleaning_ = true;
  const obs::SpanScope span(obs::Stage::kClean);
  IoPlan* clean_plan = bg_or(plan);  // cleaning runs in the background thread
  const auto low = static_cast<std::uint64_t>(
      config_.clean_low_watermark * static_cast<double>(sets_.pages()));
  if (config_.destage_batching) {
    while (old_pages_ + dez_pages_ > low && !dirty_groups_.empty()) {
      if (!destage_batch_once(clean_plan)) break;
    }
  } else {
    drain_groups_legacy(low, clean_plan);
  }
  ++stats_.cleanings;
  cleaning_ = false;
}

void KddCache::clean_all(IoPlan* plan) {
  if (cleaning_) return;
  cleaning_ = true;
  // No kClean span here: the callers (on_idle, flush, failure handling)
  // install the root that attributes this pass.
  if (config_.destage_batching) {
    while (!dirty_groups_.empty() &&
           claimed_groups_.size() < dirty_groups_.size()) {
      if (!destage_batch_once(plan)) break;
    }
  } else {
    drain_groups_legacy(0, plan);
  }
  cleaning_ = false;
}

bool KddCache::destage_batch_once(IoPlan* plan) {
  const std::vector<GroupId> groups = destage_claim(destage_batch_size());
  if (groups.empty()) return false;
  std::unique_ptr<DestageUnit> unit = destage_prepare(groups, plan);
  if (!unit) return false;
  unit->fold();
  destage_commit(*unit, plan);
  return true;
}

bool KddCache::clean_group(GroupId g, IoPlan* plan) {
  const RaidLayout& layout = raid_.layout();
  const std::uint32_t dd = layout.geometry().data_disks();
  const std::uint32_t set = set_for(layout.group_member(g, 0));
  const std::uint32_t base = set * sets_.ways();

  std::vector<std::uint32_t> old_slots;
  for (std::uint32_t w = 0; w < sets_.ways(); ++w) {
    const CacheSets::CacheSlot& s = sets_.slot(base + w);
    if (s.state == PageState::kOld && layout.group_of(s.lba) == g) {
      old_slots.push_back(base + w);
    }
  }
  KDD_CHECK(!old_slots.empty());

  // Reconstruct-write only if every data member of the stripe is resident
  // (Section III-D); otherwise RMW folds the deltas into the stale parity.
  bool all_cached = true;
  std::vector<std::uint32_t> member_slots(dd, CacheSets::kNone);
  for (std::uint32_t k = 0; k < dd; ++k) {
    member_slots[k] = sets_.find_data(set, layout.group_member(g, k));
    if (member_slots[k] == CacheSets::kNone) {
      all_cached = false;
      break;
    }
  }

  const bool real = ssd_.real();
  if (all_cached) {
    // Member images live in arena scratch (released on every exit path,
    // including the heal_group early returns).
    ScratchPages data_sp(dd);
    std::vector<Page>& data = data_sp.vec();
    ScratchPage xor_scratch;
    std::vector<const Page*> ptrs(dd, nullptr);
    for (std::uint32_t k = 0; k < dd; ++k) {
      const CacheSets::CacheSlot& ms = sets_.slot(member_slots[k]);
      if (real) {
        if (ssd_.read_data(member_slots[k], data[k], plan) != IoStatus::kOk) {
          // Unreadable cache copy: leave ptrs[k] null so the array reads the
          // member from disk (which is current for clean AND old pages).
          note_media_fallback("member daz unreadable while cleaning");
          continue;
        }
        if (ms.state == PageState::kOld) {
          Delta d;
          if (!load_delta(ms, d, plan)) {
            note_media_fallback("member delta unreadable while cleaning");
            continue;
          }
          // Fold the delta in place: DAZ base ^ raw XOR == current version.
          xor_into(data[k], delta_xor_view(d, *xor_scratch));
        }
      } else {
        ssd_.read_data(member_slots[k], {}, plan);
        if (ms.state == PageState::kOld) charge_delta_read(ms, plan);
      }
      ptrs[k] = &data[k];
    }
    const IoStatus st = raid_.update_parity_reconstruct_cached(g, ptrs, plan);
    if (st != IoStatus::kOk) {
      note_media_fallback("reconstruct-write failed while cleaning");
      heal_group(g, plan);
      return !dirty_groups_.contains(g);
    }
  } else {
    ScratchPages diffs_sp(old_slots.size());
    std::vector<Page>& diffs = diffs_sp.vec();
    std::vector<GroupDelta> deltas;
    deltas.reserve(old_slots.size());
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      const CacheSets::CacheSlot& s = sets_.slot(old_slots[i]);
      if (real) {
        Delta d;
        if (!load_delta(s, d, plan)) {
          // One lost delta poisons the whole RMW: heal the group instead.
          note_media_fallback("delta unreadable for cleaning rmw");
          heal_group(g, plan);
          return !dirty_groups_.contains(g);
        }
        KDD_CHECK(delta_to_xor_into(d, diffs[i]));
      } else {
        charge_delta_read(s, plan);
      }
      deltas.push_back({layout.index_in_group(s.lba), &diffs[i]});
    }
    const IoStatus st = raid_.update_parity_rmw(g, deltas, plan);
    if (st != IoStatus::kOk) {
      note_media_fallback("parity rmw failed while cleaning");
      heal_group(g, plan);
      return !dirty_groups_.contains(g);
    }
  }

  // Reclaim (Section III-D): scheme 1 rewrites the combined page as clean;
  // scheme 2 (the paper's choice) simply drops old pages and their deltas.
  ScratchPage reclaim_sp;  // hoisted: one borrow for the whole reclaim loop
  ScratchPage reclaim_xor_sp;
  for (const std::uint32_t os : old_slots) {
    CacheSets::CacheSlot& s = sets_.slot(os);
    if (config_.reclaim_as_clean) {
      if (real) {
        Page& current = *reclaim_sp;
        Delta d;
        const bool readable = ssd_.read_data(os, current, plan) == IoStatus::kOk &&
                              load_delta(s, d, plan);
        if (!readable) {
          // Cannot rebuild the combined page: fall back to scheme-2 drop
          // (parity for the group is already up to date at this point).
          note_media_fallback("combined page unreadable at reclaim");
          invalidate_delta(os, plan);
          drop_old_page(os, plan);
          continue;
        }
        // DAZ base ^ raw XOR == combined page, computed in place.
        xor_into(current, delta_xor_view(d, *reclaim_xor_sp));
        invalidate_delta(os, plan);
        if (ssd_.write_data(os, SsdWriteKind::kWriteUpdate, current, plan) !=
            IoStatus::kOk) {
          note_media_fallback("reclaim rewrite failed");
          drop_old_page(os, plan);
          continue;
        }
      } else {
        ssd_.read_data(os, {}, plan);
        charge_delta_read(s, plan);
        invalidate_delta(os, plan);
        ssd_.write_data(os, SsdWriteKind::kWriteUpdate, {}, plan);
      }
      sets_.set_state(os, PageState::kClean);
      add_map_entry(os, plan);
      note_group_repair(raid_.layout().group_of(s.lba));
      --old_pages_;
    } else {
      invalidate_delta(os, plan);
      drop_old_page(os, plan);
    }
  }
  ++stats_.groups_cleaned;
  return !dirty_groups_.contains(g);
}

// ---------------------------------------------------------------------------
// Batched destage pipeline (DestageSource; see kdd/destage.hpp)
// ---------------------------------------------------------------------------

/// Self-contained destage work unit. `prepare` snapshots everything fold()
/// needs — captured Delta blobs and, for reconstruct-flavour groups, the DAZ
/// member images — so fold() runs with no policy lock and no access to live
/// cache state. Commit revalidates each captured page before acting on it.
class KddCache::BatchUnit final : public DestageUnit {
 public:
  struct PageWork {
    std::uint32_t daz_idx = 0;
    Lba lba = kInvalidLba;
    std::uint32_t index = 0;  ///< data index within the parity group
    Delta blob;               ///< delta captured at prepare (real mode)
    Page xor_diff;            ///< raw XOR diff, produced by fold()
    bool have_blob = false;
  };
  /// Reconstruct flavour only: one entry per data member of the stripe.
  struct MemberWork {
    std::uint32_t slot = 0;
    Page image;      ///< DAZ image captured at prepare (real mode)
    bool ok = false; ///< readable; when false the array reads the disk copy
  };
  struct GroupWork {
    GroupId group = 0;
    bool reconstruct = false;  ///< all members cached: reconstruct-write
    bool needs_heal = false;   ///< a delta was unloadable: commit heals
    std::vector<PageWork> pages;      ///< every old page of the group
    std::vector<MemberWork> members;  ///< reconstruct flavour, size data_disks
  };

  /// Stage 2 — pure compute over the snapshot, no lock: decompress every
  /// captured delta into its raw XOR diff; for reconstruct-flavour groups
  /// additionally fold each diff into its member image (DAZ base ^ raw XOR ==
  /// current version).
  void fold() override {
    const obs::SpanScope span(obs::Stage::kXorFold);
    if (!real_) return;
    for (GroupWork& gw : work_) {
      if (gw.needs_heal) continue;
      for (PageWork& pw : gw.pages) {
        if (!pw.have_blob) continue;
        pw.xor_diff = make_page();
        KDD_CHECK(delta_to_xor_into(pw.blob, pw.xor_diff));
        if (gw.reconstruct && gw.members[pw.index].ok) {
          xor_into(gw.members[pw.index].image, pw.xor_diff);
        }
      }
    }
  }

  std::span<const GroupId> groups() const override { return groups_; }

  std::vector<GroupId> groups_;
  std::vector<GroupWork> work_;
  bool real_ = false;
};

std::size_t KddCache::destage_batch_size() const {
  if (config_.destage_batch_groups > 0) return config_.destage_batch_groups;
  const auto high = static_cast<std::uint64_t>(
      config_.clean_high_watermark * static_cast<double>(sets_.pages()));
  const auto low = static_cast<std::uint64_t>(
      config_.clean_low_watermark * static_cast<double>(sets_.pages()));
  // Autosize from the watermark gap: each cleaned group frees its old pages
  // plus (amortised) its DEZ share, so a quarter-gap batch brings a cleaner
  // that woke at the high watermark back under low in a handful of pipeline
  // passes without claiming the whole dirty set at once.
  const std::uint64_t gap = high > low ? high - low : 1;
  return std::clamp<std::size_t>(static_cast<std::size_t>(gap / 4), 4, 64);
}

bool KddCache::destage_pending() const {
  const std::uint64_t high = effective_clean_high_pages();
  return old_pages_ + dez_pages_ > high &&
         claimed_groups_.size() < dirty_groups_.size();
}

std::vector<GroupId> KddCache::destage_claim(std::size_t max_groups) {
  std::vector<GroupId> cands;
  if (max_groups == 0) return cands;
  cands.reserve(dirty_groups_.size());
  for (const auto& [g, n] : dirty_groups_) {
    if (!claimed_groups_.contains(g)) cands.push_back(g);
  }
  // Disk-layout order: a batch destaged in (parity disk, parity page) order
  // walks each spindle sequentially instead of hopping between rotations.
  const RaidLayout& layout = raid_.layout();
  const bool has_parity = layout.geometry().parity_disks() > 0;
  std::sort(cands.begin(), cands.end(), [&](GroupId a, GroupId b) {
    if (has_parity) {
      const DiskAddr pa = layout.parity_addr(a);
      const DiskAddr pb = layout.parity_addr(b);
      if (pa.disk != pb.disk) return pa.disk < pb.disk;
      if (pa.page != pb.page) return pa.page < pb.page;
    }
    return a < b;
  });
  if (cands.size() > max_groups) cands.resize(max_groups);
  for (const GroupId g : cands) claimed_groups_.insert(g);
  return cands;
}

void KddCache::destage_abandon(std::span<const GroupId> groups) {
  for (const GroupId g : groups) claimed_groups_.erase(g);
}

std::unique_ptr<DestageUnit> KddCache::destage_prepare(
    std::span<const GroupId> groups, IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kDeltaLoad);
  const RaidLayout& layout = raid_.layout();
  const std::uint32_t dd = layout.geometry().data_disks();
  const bool real = ssd_.real();

  auto unit = std::make_unique<BatchUnit>();
  unit->real_ = real;
  for (const GroupId g : groups) {
    KDD_CHECK(claimed_groups_.contains(g));
    if (!dirty_groups_.contains(g)) {
      // Resolved behind the pipeline's back (emergency synchronous fold):
      // nothing left to destage, release the claim.
      claimed_groups_.erase(g);
      continue;
    }
    BatchUnit::GroupWork gw;
    gw.group = g;
    const std::uint32_t set = set_for(layout.group_member(g, 0));
    const std::uint32_t base = set * sets_.ways();
    for (std::uint32_t w = 0; w < sets_.ways(); ++w) {
      const CacheSets::CacheSlot& s = sets_.slot(base + w);
      if (s.state == PageState::kOld && layout.group_of(s.lba) == g) {
        BatchUnit::PageWork pw;
        pw.daz_idx = base + w;
        pw.lba = s.lba;
        pw.index = layout.index_in_group(s.lba);
        gw.pages.push_back(std::move(pw));
      }
    }
    KDD_CHECK(!gw.pages.empty());

    // Reconstruct-write when every data member is cache-resident
    // (Section III-D), exactly like the per-group cleaner.
    std::vector<std::uint32_t> member_slots(dd, CacheSets::kNone);
    gw.reconstruct = true;
    for (std::uint32_t k = 0; k < dd; ++k) {
      member_slots[k] = sets_.find_data(set, layout.group_member(g, k));
      if (member_slots[k] == CacheSets::kNone) {
        gw.reconstruct = false;
        break;
      }
    }

    if (gw.reconstruct) {
      gw.members.resize(dd);
      for (std::uint32_t k = 0; k < dd; ++k) {
        BatchUnit::MemberWork& mw = gw.members[k];
        mw.slot = member_slots[k];
        if (real) {
          mw.image = make_page();
          if (ssd_.read_data(mw.slot, mw.image, plan) != IoStatus::kOk) {
            // Unreadable cache copy: leave ok false so the array reads the
            // member from disk (current for clean AND old pages).
            note_media_fallback("member daz unreadable while cleaning");
            continue;
          }
          mw.ok = true;
        } else {
          ssd_.read_data(mw.slot, {}, plan);
          mw.ok = true;
        }
      }
      for (BatchUnit::PageWork& pw : gw.pages) {
        const CacheSets::CacheSlot& s = sets_.slot(pw.daz_idx);
        if (real) {
          if (!load_delta(s, pw.blob, plan)) {
            note_media_fallback("member delta unreadable while cleaning");
            gw.members[pw.index].ok = false;  // disk copy stands in
            continue;
          }
          pw.have_blob = true;
        } else {
          charge_delta_read(s, plan);
        }
      }
    } else {
      for (BatchUnit::PageWork& pw : gw.pages) {
        const CacheSets::CacheSlot& s = sets_.slot(pw.daz_idx);
        if (real) {
          if (!load_delta(s, pw.blob, plan)) {
            // One lost delta poisons the whole RMW: commit heals the group.
            note_media_fallback("delta unreadable for cleaning rmw");
            gw.needs_heal = true;
            break;
          }
          pw.have_blob = true;
        } else {
          charge_delta_read(s, plan);
        }
      }
    }
    unit->groups_.push_back(g);
    unit->work_.push_back(std::move(gw));
  }
  if (unit->groups_.empty()) return nullptr;
  return unit;
}

void KddCache::destage_commit(DestageUnit& u, IoPlan* plan) {
  auto& unit = static_cast<BatchUnit&>(u);
  const obs::SpanScope span(obs::Stage::kDestageWrite);
  const bool real = ssd_.real();
  kdd_metrics().destage_batch_groups.observe(unit.groups_.size());

  // Pass 1 — revalidate against live slot state and update parity. Groups
  // whose pages were all resolved behind the pipeline (no longer dirty) are
  // skipped; individual pages resolved behind the pipeline are dropped from
  // the group so their diff is never double-applied. Reconstruct-flavour
  // groups commit one by one; RMW-flavour groups coalesce into a single
  // batched call (one parity read + one fold + one parity write per group).
  std::vector<BatchUnit::GroupWork*> rmw_groups;
  std::vector<std::vector<GroupDelta>> rmw_deltas;  // stable inner buffers
  std::vector<BatchUnit::GroupWork*> reclaimable;
  rmw_groups.reserve(unit.work_.size());
  rmw_deltas.reserve(unit.work_.size());
  reclaimable.reserve(unit.work_.size());
  for (BatchUnit::GroupWork& gw : unit.work_) {
    if (!dirty_groups_.contains(gw.group)) continue;
    if (gw.needs_heal) {
      heal_group(gw.group, plan);
      continue;
    }
    std::erase_if(gw.pages, [&](const BatchUnit::PageWork& pw) {
      const CacheSets::CacheSlot& s = sets_.slot(pw.daz_idx);
      return s.state != PageState::kOld || s.lba != pw.lba;
    });
    if (gw.pages.empty()) continue;  // nothing left that we captured
    if (gw.reconstruct) {
      std::vector<const Page*> ptrs(gw.members.size(), nullptr);
      for (std::size_t k = 0; k < gw.members.size(); ++k) {
        if (real && gw.members[k].ok) ptrs[k] = &gw.members[k].image;
      }
      const IoStatus st =
          raid_.update_parity_reconstruct_cached(gw.group, ptrs, plan);
      if (st != IoStatus::kOk) {
        note_media_fallback("reconstruct-write failed while cleaning");
        heal_group(gw.group, plan);
        continue;
      }
      reclaimable.push_back(&gw);
    } else {
      std::vector<GroupDelta> deltas;
      if (real) {
        deltas.reserve(gw.pages.size());
        for (const BatchUnit::PageWork& pw : gw.pages) {
          KDD_CHECK(pw.have_blob);
          deltas.push_back({pw.index, &pw.xor_diff});
        }
      }
      rmw_deltas.push_back(std::move(deltas));
      rmw_groups.push_back(&gw);
    }
  }
  if (!rmw_groups.empty()) {
    std::vector<GroupParityUpdate> updates(rmw_groups.size());
    for (std::size_t i = 0; i < rmw_groups.size(); ++i) {
      updates[i].group = rmw_groups[i]->group;
      updates[i].deltas = rmw_deltas[i];
      updates[i].finalize = true;
    }
    std::vector<GroupId> failed;
    (void)raid_.update_parity_rmw_batch(updates, plan, &failed);
    for (BatchUnit::GroupWork* gw : rmw_groups) {
      if (std::find(failed.begin(), failed.end(), gw->group) != failed.end()) {
        note_media_fallback("parity rmw failed while cleaning");
        heal_group(gw->group, plan);
        continue;
      }
      reclaimable.push_back(gw);
    }
  }

  // Pass 2 — reclaim (Section III-D): scheme 1 rewrites the combined page as
  // clean (DAZ base ^ raw XOR, using the diff fold() already produced);
  // scheme 2 drops old pages and their deltas.
  ScratchPage reclaim_sp;  // hoisted: one borrow for the whole reclaim loop
  for (BatchUnit::GroupWork* gw : reclaimable) {
    for (BatchUnit::PageWork& pw : gw->pages) {
      CacheSets::CacheSlot& s = sets_.slot(pw.daz_idx);
      if (config_.reclaim_as_clean) {
        if (real) {
          Page& current = *reclaim_sp;
          const bool readable =
              pw.have_blob &&
              ssd_.read_data(pw.daz_idx, current, plan) == IoStatus::kOk;
          if (!readable) {
            // Cannot rebuild the combined page: fall back to scheme-2 drop
            // (parity for the group is already up to date at this point).
            note_media_fallback("combined page unreadable at reclaim");
            invalidate_delta(pw.daz_idx, plan);
            drop_old_page(pw.daz_idx, plan);
            continue;
          }
          xor_into(current, pw.xor_diff);
          invalidate_delta(pw.daz_idx, plan);
          if (ssd_.write_data(pw.daz_idx, SsdWriteKind::kWriteUpdate, current,
                              plan) != IoStatus::kOk) {
            note_media_fallback("reclaim rewrite failed");
            drop_old_page(pw.daz_idx, plan);
            continue;
          }
        } else {
          ssd_.read_data(pw.daz_idx, {}, plan);
          charge_delta_read(s, plan);
          invalidate_delta(pw.daz_idx, plan);
          ssd_.write_data(pw.daz_idx, SsdWriteKind::kWriteUpdate, {}, plan);
        }
        sets_.set_state(pw.daz_idx, PageState::kClean);
        add_map_entry(pw.daz_idx, plan);
        note_group_repair(raid_.layout().group_of(s.lba));
        --old_pages_;
      } else {
        invalidate_delta(pw.daz_idx, plan);
        drop_old_page(pw.daz_idx, plan);
      }
    }
    ++stats_.groups_cleaned;
  }

  for (const GroupId g : unit.groups_) claimed_groups_.erase(g);
  refresh_dez_gauges();
}

void KddCache::flush(IoPlan* plan) {
  const obs::TraceContextScope trace(obs::Stage::kClean);  // background root
  clean_all(plan);
  KDD_CHECK(nvram_->staging.empty());
  log_.commit_buffer(plan);
  // Flush barrier: every committed page must be on the SSD, not in RAM.
  ssd_.force_seal(plan);
}

void KddCache::on_idle(IoPlan* plan) {
  // Background root: nested cleaning spans sample at the request period
  // instead of recording every pass wholesale.
  const obs::TraceContextScope trace(obs::Stage::kClean);
  clean_all(plan);
  // Idle time is also the cheapest time to compact fragmented DEZ extents.
  maybe_gc(plan);
  // An idle device is the cheapest time to drain a partial segment, and it
  // bounds how long a committed page can sit in RAM.
  ssd_.force_seal(plan);
  // A quiet array is the cheapest time to make rebuild progress: one full
  // unthrottled chunk per idle event.
  if (rebuild_ && rebuild_->health() != ArrayHealth::kHealthy) {
    rebuild_->pump(plan, /*urgent=*/true);
  }
}

// ---------------------------------------------------------------------------
// Failure handling (Section III-E)
// ---------------------------------------------------------------------------

std::uint64_t KddCache::handle_disk_failure(std::uint32_t disk) {
  KDD_CHECK(raid_.real());
  // Forced root: failure handling is rare and high-value, so it is traced
  // even under aggressive request sampling.
  const obs::TraceContextScope trace(obs::Stage::kRecovery, /*always_sample=*/true);
  KDD_LOG(Info, "disk %u failed: cleaning stale parity, then rebuilding", disk);
  raid_.array()->fail_disk(disk);
  // First bring every stale parity up to date through the parity_update
  // interface, then rebuild at the RAID layer.
  clean_all(nullptr);
  ssd_.force_seal(nullptr);
  return raid_.array()->rebuild_disk(disk);
}

std::uint64_t KddCache::handle_ssd_failure() {
  KDD_CHECK(raid_.real() && ssd_.real());
  const obs::TraceContextScope trace(obs::Stage::kRecovery, /*always_sample=*/true);
  KDD_LOG(Info, "cache ssd failed: resyncing stale groups, restarting cold");
  ssd_.device()->fail();
  // Data blocks were always dispatched to RAID, so reconstruct-write over the
  // stale groups resynchronises the array without the cache.
  const std::uint64_t resynced = raid_.array()->resync_all_stale();
  // Swap in a fresh cache device and restart cold.
  ssd_.replace_device();
  for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
    if (sets_.slot(i).state != PageState::kFree) sets_.reset_slot(i);
    sets_.slot(i).home_log_page = CacheSets::kNoHome;
  }
  nvram_->staging.take_all();
  nvram_->metadata.drain();
  nvram_->log_head = nvram_->log_tail = 0;
  dirty_groups_.clear();
  stale_since_.clear();
  old_pages_ = dez_pages_ = 0;
  dez_space_.clear();
  refresh_dez_gauges();
  return resynced;
}

// ---------------------------------------------------------------------------
// Invariant checking (test support)
// ---------------------------------------------------------------------------

void KddCache::check_invariants() const {
  std::unordered_map<std::uint32_t, std::uint16_t> dez_refs;  // dez slot -> #old refs
  std::unordered_map<std::uint32_t, std::uint64_t> dez_ref_bytes;
  std::unordered_map<GroupId, std::uint32_t> group_old;
  std::uint64_t old_count = 0;
  std::uint64_t dez_count = 0;
  std::uint64_t staged_refs = 0;

  for (std::uint32_t set = 0; set < sets_.num_sets(); ++set) {
    std::uint32_t free_in_set = 0;
    std::uint32_t dez_in_set = 0;
    for (std::uint32_t w = 0; w < sets_.ways(); ++w) {
      const std::uint32_t idx = set * sets_.ways() + w;
      const CacheSets::CacheSlot& s = sets_.slot(idx);
      switch (s.state) {
        case PageState::kFree:
          ++free_in_set;
          break;
        case PageState::kClean:
          KDD_CHECK(s.lba != kInvalidLba);
          // Clean pages carry no delta.
          KDD_CHECK(s.dez_idx == CacheSets::kNone);
          break;
        case PageState::kOld: {
          KDD_CHECK(s.lba != kInvalidLba);
          ++old_count;
          ++group_old[raid_.layout().group_of(s.lba)];
          if (s.dez_idx == CacheSets::kStaged) {
            const StagedDelta* d = nvram_->staging.find(s.lba);
            KDD_CHECK(d != nullptr);
            KDD_CHECK(d->daz_idx == idx);
            ++staged_refs;
          } else {
            KDD_CHECK(s.dez_idx != CacheSets::kNone);
            KDD_CHECK(sets_.slot(s.dez_idx).state == PageState::kDelta);
            KDD_CHECK(s.dez_off + s.dez_len <= kPageSize);
            ++dez_refs[s.dez_idx];
            dez_ref_bytes[s.dez_idx] += s.dez_len;
          }
          break;
        }
        case PageState::kDelta:
          ++dez_in_set;
          ++dez_count;
          break;
        case PageState::kOldVersion:
        case PageState::kNewVersion:
          KDD_CHECK(false);  // LeavO-only states never appear in KDD
          break;
      }
    }
    KDD_CHECK(free_in_set == sets_.free_count(set));
    KDD_CHECK(dez_in_set == sets_.dez_count(set));
  }

  KDD_CHECK(old_count == old_pages_);
  KDD_CHECK(dez_count == dez_pages_);
  // Every staged delta belongs to exactly one old page and vice versa.
  KDD_CHECK(staged_refs == nvram_->staging.size());
  // DEZ valid counts match the number of live references, and the extent
  // accounting (live bytes / counts per DEZ page) matches the slot mappings.
  for (const auto& [dez_idx, refs] : dez_refs) {
    KDD_CHECK(sets_.slot(dez_idx).valid_count == refs);
    KDD_CHECK(dez_space_.tracked(dez_idx));
    const DezSpace::Extent& e = dez_space_.extent(dez_idx);
    KDD_CHECK(e.live_count == refs);
    KDD_CHECK(e.live_bytes == dez_ref_bytes.at(dez_idx));
    KDD_CHECK(e.live_bytes <= e.tail && e.tail <= kPageSize);
  }
  std::uint64_t referenced_dez = dez_refs.size();
  KDD_CHECK(referenced_dez == dez_count);  // no orphaned DEZ pages
  KDD_CHECK(dez_space_.pages() == dez_count);
  // Dirty-group bookkeeping matches slot states, and stale groups at the
  // RAID layer are exactly the groups with pending deltas.
  KDD_CHECK(group_old.size() == dirty_groups_.size());
  for (const auto& [g, n] : group_old) {
    const auto it = dirty_groups_.find(g);
    KDD_CHECK(it != dirty_groups_.end() && it->second == n);
    KDD_CHECK(raid_.group_stale(g));
  }
  KDD_CHECK(raid_.stale_group_count() == dirty_groups_.size());
}

// ---------------------------------------------------------------------------
// Power-failure recovery (Section III-E1)
// ---------------------------------------------------------------------------

void KddCache::recover() {
  KDD_CHECK(ssd_.real());
  // Forced root: power-failure recovery runs once and must show up in the
  // trace regardless of the sampling period.
  const obs::TraceContextScope trace(obs::Stage::kRecovery, /*always_sample=*/true);
  kdd_metrics().recoveries.inc();
  // 0. Segment staging: accept or discard the segment whose flush may have
  //    been in flight at the cut. Must run before the log replay and the
  //    torn-page audit — a discarded segment marks exactly its listed pages
  //    unreadable, which the steps below then skip, retire or heal.
  ssd_.recover_staging();
  // 1. Head/tail counters come from NVRAM (already in nvram_). Rebuild the
  //    log's in-memory page lists and replay the committed entries.
  log_.rebuild_after_recovery();
  std::vector<MetadataEntry> entries = log_.replay();
  // 2. Overlay the NVRAM metadata buffer (newer than anything in the log).
  for (const MetadataEntry& e : nvram_->metadata.entries()) entries.push_back(e);

  // Later entries override earlier ones per slot.
  std::unordered_map<std::uint32_t, MetadataEntry> latest;
  for (const MetadataEntry& e : entries) latest[e.daz_idx] = e;

  for (const auto& [idx, e] : latest) {
    if (e.state == PageState::kFree) continue;
    KDD_CHECK(e.state == PageState::kClean || e.state == PageState::kOld);
    CacheSets::CacheSlot& s = sets_.slot(idx);
    s.lba = e.lba_raid;
    sets_.set_state(idx, e.state);
    if (e.state == PageState::kOld) {
      s.dez_idx = e.dez_idx;
      s.dez_off = e.dez_off;
      s.dez_len = e.dez_len;
      note_old_transition(idx);
    }
  }
  // 3. Recompute DEZ page states and valid counts from the old pages, and
  //    rebuild the extent census (tail is the max mapped end offset — a lower
  //    bound on bytes ever packed, so restored extents stay closed; see
  //    DezSpace::restore_page).
  struct ExtentCensus {
    std::uint32_t tail = 0, live_bytes = 0, live_count = 0;
  };
  std::unordered_map<std::uint32_t, ExtentCensus> census;
  for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
    const CacheSets::CacheSlot& s = sets_.slot(i);
    if (s.state != PageState::kOld) continue;
    if (s.dez_idx == CacheSets::kNone || s.dez_idx == CacheSets::kStaged) continue;
    ExtentCensus& c = census[s.dez_idx];
    c.tail = std::max(c.tail, static_cast<std::uint32_t>(s.dez_off + s.dez_len));
    c.live_bytes += s.dez_len;
    ++c.live_count;
  }
  // Mixed-generation audit. A mapping's supersede (a destage record or a GC
  // relocation) can ride a metadata-log page that died with the torn segment
  // after the NVRAM buffer evicted it, while mappings minted later survive in
  // NVRAM — so the replay can resurrect a stale mapping generation alongside
  // a durable newer one for the same DEZ page. That surfaces as a census that
  // is self-inconsistent: summed live bytes exceeding the max end offset, or
  // an end offset past the page. None of the extent's mappings can be told
  // apart by generation, and the RAID copy of every mapped page is current
  // (write_page_nopar lands before any delta is staged), so drop every
  // mapping into the extent; the affected groups resync from data below.
  std::unordered_set<std::uint32_t> mixed;
  for (const auto& [dez_idx, c] : census) {
    if (c.tail > kPageSize || c.live_bytes > c.tail) mixed.insert(dez_idx);
  }
  for (const std::uint32_t dez_idx : mixed) {
    census.erase(dez_idx);
    note_media_fallback("mixed-generation dez mappings at recovery");
    ssd_.trim_data(dez_idx);
    for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
      CacheSets::CacheSlot& s = sets_.slot(i);
      if (s.state != PageState::kOld || s.dez_idx != dez_idx) continue;
      s.dez_idx = CacheSets::kNone;
      s.dez_off = 0;
      s.dez_len = 0;
      drop_old_page(i, nullptr);
    }
  }
  for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
    const CacheSets::CacheSlot& s = sets_.slot(i);
    if (s.state != PageState::kOld) continue;
    if (s.dez_idx == CacheSets::kNone || s.dez_idx == CacheSets::kStaged) continue;
    CacheSets::CacheSlot& dez = sets_.slot(s.dez_idx);
    if (dez.state != PageState::kDelta) {
      sets_.set_state(s.dez_idx, PageState::kDelta);
      dez.valid_count = 0;
      ++dez_pages_;
    }
    ++dez.valid_count;
  }
  for (const auto& [dez_idx, c] : census) {
    dez_space_.restore_page(dez_idx, c.tail, c.live_bytes, c.live_count);
  }
  // 4. Overlay the staged deltas from NVRAM: they supersede any DEZ-resident
  //    delta recorded in the log for the same page. A staged delta whose slot
  //    does not match (the crash hit between NVRAM staging and the metadata
  //    append) is an orphan: its page cannot be trusted, so the whole group
  //    is healed from the RAID copy.
  std::vector<Lba> orphaned;
  for (const StagedDelta& sd : nvram_->staging.entries()) {
    CacheSets::CacheSlot& s = sets_.slot(sd.daz_idx);
    if (s.lba != sd.lba ||
        (s.state != PageState::kClean && s.state != PageState::kOld)) {
      orphaned.push_back(sd.lba);
      continue;
    }
    if (s.state == PageState::kClean) {
      sets_.set_state(sd.daz_idx, PageState::kOld);
      note_old_transition(sd.daz_idx);
    } else {
      if (s.dez_idx != CacheSets::kStaged && s.dez_idx != CacheSets::kNone) {
        CacheSets::CacheSlot& dez = sets_.slot(s.dez_idx);
        KDD_CHECK(dez.state == PageState::kDelta && dez.valid_count > 0);
        dez_space_.on_dead(s.dez_idx, s.dez_len);
        if (--dez.valid_count == 0) {
          ssd_.trim_data(s.dez_idx);
          sets_.reset_slot(s.dez_idx);
          dez_space_.on_free(s.dez_idx);
          --dez_pages_;
        }
      }
    }
    s.dez_idx = CacheSets::kStaged;
    s.dez_off = 0;
    s.dez_len = static_cast<std::uint16_t>(sd.packed_size);
  }
  for (const Lba lba : orphaned) {
    note_media_fallback("orphaned staged delta at recovery");
    nvram_->staging.erase(lba);
    heal_group(raid_.layout().group_of(lba), nullptr);
  }

  // 5. Torn-page audit (prototype mode): a power cut can tear the very DAZ or
  //    DEZ page whose write was in flight, and the device itself cannot
  //    detect it. The RAID copy is the ground truth for every mapped page
  //    (clean == the RAID contents; old + delta == the RAID contents), so
  //    cross-check each slot and retire/heal whatever fails.
  if (raid_.real()) {
    Page truth = make_page();
    Page daz = make_page();
    std::unordered_set<GroupId> bad_groups;
    for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
      const CacheSets::CacheSlot& s = sets_.slot(i);
      // When the page's member is down (crash landed mid-rebuild), the array
      // cannot produce the truth — the cache copy IS the authority for that
      // page. The checksummed SSD read stands in as the audit: a torn DAZ or
      // delta write surfaces as a device-level read failure.
      if (s.state == PageState::kClean) {
        bool good = ssd_.read_data(i, daz, nullptr) == IoStatus::kOk;
        if (good && !page_down(s.lba)) {
          good = raid_.read_page(s.lba, truth, nullptr) == IoStatus::kOk &&
                 std::equal(daz.begin(), daz.end(), truth.begin());
        }
        if (!good) {
          note_media_fallback("clean page failed torn-page audit");
          ssd_.trim_data(i);
          sets_.reset_slot(i);
          on_evict_slot(i);
        }
      } else if (s.state == PageState::kOld) {
        Delta d;
        bool good = ssd_.read_data(i, daz, nullptr) == IoStatus::kOk &&
                    load_delta(s, d, nullptr);
        if (good && !page_down(s.lba)) {
          good = raid_.read_page(s.lba, truth, nullptr) == IoStatus::kOk;
          if (good) {
            const Page current = apply_delta(daz, d);
            good = std::equal(current.begin(), current.end(), truth.begin());
          }
        }
        if (!good) bad_groups.insert(raid_.layout().group_of(s.lba));
      }
    }
    for (const GroupId g : bad_groups) {
      note_media_fallback("old page failed torn-page audit");
      heal_group(g, nullptr);
    }

    // 6. Any group left stale at the RAID layer without a matching pending
    //    delta (its staged delta died with the in-flight request) is resynced
    //    from data — the array's contents are always current.
    for (const GroupId g : raid_.array()->stale_groups()) {
      if (!dirty_groups_.contains(g)) raid_.array()->resync_group(g);
    }
  }
  KDD_LOG(Info,
          "recovery complete: old=%llu dez=%llu staged=%llu dirty_groups=%zu "
          "healed=%llu",
          static_cast<unsigned long long>(old_pages_),
          static_cast<unsigned long long>(dez_pages_),
          static_cast<unsigned long long>(nvram_->staging.size()),
          dirty_groups_.size(), static_cast<unsigned long long>(groups_healed_));
}

}  // namespace kdd
