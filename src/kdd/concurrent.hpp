// Thread-safe cache facade with a real background cleaning thread.
//
// The paper's prototype runs parity updating / page reclaiming "in a
// background cleaning thread ... triggered by several system events"
// (Section III-D). This facade provides exactly that for any CachePolicy:
// callers issue read/write/flush from any thread; a dedicated cleaner thread
// wakes periodically and, when the cache has been idle long enough, runs the
// policy's on_idle() pass (parity updates, reclamation).
//
// Locking model (two tiers, see docs/performance.md):
//   * A striped front lock keyed by parity group. Requests to the same
//     stripe serialise against each other *before* touching the policy, so
//     per-group request order is a total order no matter how many submitter
//     threads there are — the property the deterministic multi-threaded
//     replay mode relies on. Requests to different stripes only contend on
//     the inner policy mutex.
//   * One inner mutex serialises policy access — the policies' in-memory
//     structures (primary map, NVRAM buffers) are small compared to device
//     I/O, so a single lock matches how the kernel prototype serialises its
//     map updates. The cleaner competes for the same lock and therefore
//     never races request processing.
//
// Lock order is always stripe -> policy; the cleaner takes only the policy
// mutex. The idle clock and the front-door counters are atomics so neither
// the hot request path nor stats() takes any extra lock for them.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "cache/policy.hpp"
#include "raid/layout.hpp"

namespace kdd {

class ConcurrentCache {
 public:
  /// Number of front-lock stripes. Parity groups hash onto stripes, so two
  /// requests contend at the front door only when their groups collide
  /// modulo this. Power of two; 16 comfortably exceeds the core counts the
  /// replay harness drives.
  static constexpr std::size_t kStripes = 16;

  /// Lock-free front-door counters (sampled without the policy mutex).
  /// Merged from per-stripe shards, so hot-path recording never shares a
  /// cache line across stripes and nothing is dropped under contention.
  struct FrontStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_errors = 0;   ///< non-OK statuses returned to callers
    std::uint64_t write_errors = 0;
    std::uint64_t flushes = 0;
  };

  /// `policy` is not owned and must outlive the facade. `idle_wakeup` is the
  /// cleaner's polling period; an idle pass runs when no request arrived for
  /// one full period. Without a layout, stripes are keyed by raw LBA.
  explicit ConcurrentCache(CachePolicy* policy,
                           std::chrono::milliseconds idle_wakeup =
                               std::chrono::milliseconds(50));

  /// Stripe-aware overload: front locks are keyed by `layout->group_of(lba)`
  /// so every request touching one parity group funnels through one stripe.
  /// `layout` is not owned and must outlive the facade.
  ConcurrentCache(CachePolicy* policy, const RaidLayout* layout,
                  std::chrono::milliseconds idle_wakeup =
                      std::chrono::milliseconds(50));

  ~ConcurrentCache();

  ConcurrentCache(const ConcurrentCache&) = delete;
  ConcurrentCache& operator=(const ConcurrentCache&) = delete;

  IoStatus read(Lba lba, std::span<std::uint8_t> out);
  IoStatus write(Lba lba, std::span<const std::uint8_t> data);

  /// Drains all deferred state (blocking).
  void flush();

  /// Exact policy stats (takes the policy mutex; waits for in-flight
  /// requests). Also refreshes the lock-free snapshot below.
  CacheStats stats() const;

  /// Last published policy stats — refreshed by every cleaner idle pass,
  /// flush() and stats() call — WITHOUT touching the policy mutex, so
  /// telemetry can poll it while requests are in flight. Values trail the
  /// exact stats by at most one cleaner period.
  CacheStats stats_snapshot() const;

  /// Front-door request counters, merged across the per-stripe shards
  /// (relaxed atomic reads; never blocks on the policy).
  FrontStats front_stats() const;

  /// Number of idle passes the cleaner has run.
  std::uint64_t cleaner_passes() const { return cleaner_passes_.load(); }

 private:
  /// Per-stripe front-door counters, cache-line separated so the 16 stripes
  /// never false-share while recording.
  struct alignas(64) StripeShard {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> read_errors{0};
    std::atomic<std::uint64_t> write_errors{0};
  };

  void cleaner_main();
  std::size_t stripe_of(Lba lba) const;
  void touch_idle_clock();
  /// Copies the policy's stats into the lock-free snapshot slot. Caller must
  /// hold mu_.
  void publish_snapshot_locked() const;

  CachePolicy* policy_;
  const RaidLayout* layout_;  // may be null: stripe by raw LBA
  const std::chrono::milliseconds idle_wakeup_;

  // Front tier: striped by parity group.
  std::array<std::mutex, kStripes> stripe_mu_;
  std::array<StripeShard, kStripes> shards_;
  std::atomic<std::uint64_t> flushes_{0};

  // Published-stats slot: written under snap_mu_ by whoever holds mu_,
  // read by stats_snapshot() with only snap_mu_ (policy mutex never needed).
  mutable std::mutex snap_mu_;
  mutable CacheStats last_snapshot_;

  // Inner tier: the policy mutex (also guards stop_ for the cleaner's cv).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Idle clock: steady_clock ticks of the most recent request, updated with
  // a relaxed store on the hot path and read by the cleaner without mu_.
  std::atomic<std::chrono::steady_clock::rep> last_request_ns_;

  std::atomic<std::uint64_t> cleaner_passes_{0};
  std::thread cleaner_;  // last member: starts after everything is ready
};

}  // namespace kdd
