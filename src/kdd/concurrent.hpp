// Thread-safe cache facade with a real background cleaning thread.
//
// The paper's prototype runs parity updating / page reclaiming "in a
// background cleaning thread ... triggered by several system events"
// (Section III-D). This facade provides exactly that for any CachePolicy:
// callers issue read/write/flush from any thread; a dedicated cleaner thread
// wakes periodically and, when the cache has been idle long enough, runs the
// policy's on_idle() pass (parity updates, reclamation).
//
// Locking model: one mutex serialises policy access — the policies'
// in-memory structures (primary map, NVRAM buffers) are small compared to
// device I/O, so a single lock matches how the kernel prototype serialises
// its map updates. The cleaner competes for the same lock and therefore
// never races request processing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "cache/policy.hpp"

namespace kdd {

class ConcurrentCache {
 public:
  /// `policy` is not owned and must outlive the facade. `idle_wakeup` is the
  /// cleaner's polling period; an idle pass runs when no request arrived for
  /// one full period.
  explicit ConcurrentCache(CachePolicy* policy,
                           std::chrono::milliseconds idle_wakeup =
                               std::chrono::milliseconds(50));
  ~ConcurrentCache();

  ConcurrentCache(const ConcurrentCache&) = delete;
  ConcurrentCache& operator=(const ConcurrentCache&) = delete;

  IoStatus read(Lba lba, std::span<std::uint8_t> out);
  IoStatus write(Lba lba, std::span<const std::uint8_t> data);

  /// Drains all deferred state (blocking).
  void flush();

  CacheStats stats() const;

  /// Number of idle passes the cleaner has run.
  std::uint64_t cleaner_passes() const { return cleaner_passes_.load(); }

 private:
  void cleaner_main();

  CachePolicy* policy_;
  const std::chrono::milliseconds idle_wakeup_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::chrono::steady_clock::time_point last_request_;
  std::atomic<std::uint64_t> cleaner_passes_{0};
  std::thread cleaner_;  // last member: starts after everything is ready
};

}  // namespace kdd
