// Thread-safe cache facade with a real background cleaning thread.
//
// The paper's prototype runs parity updating / page reclaiming "in a
// background cleaning thread ... triggered by several system events"
// (Section III-D). This facade provides exactly that for any CachePolicy:
// callers issue read/write/flush from any thread; a dedicated cleaner thread
// wakes periodically and, when the cache has been idle long enough, runs the
// policy's on_idle() pass (parity updates, reclamation).
//
// Locking model (two tiers, see docs/performance.md):
//   * A striped front lock keyed by parity group. Requests to the same
//     stripe serialise against each other *before* touching the policy, so
//     per-group request order is a total order no matter how many submitter
//     threads there are — the property the deterministic multi-threaded
//     replay mode relies on. Requests to different stripes only contend on
//     the inner policy mutex.
//   * One inner mutex serialises policy access — the policies' in-memory
//     structures (primary map, NVRAM buffers) are small compared to device
//     I/O, so a single lock matches how the kernel prototype serialises its
//     map updates. The cleaner competes for the same lock and therefore
//     never races request processing.
//
// Lock order is always stripe -> policy; the cleaner takes only the policy
// mutex. The idle clock and the front-door counters are atomics so neither
// the hot request path nor stats() takes any extra lock for them.
//
// Cleaner pool (optional, cleaner_threads > 0 and a DestageSource policy):
// the idle cleaner becomes a *feeder* that claims dirty parity groups under
// the policy lock, partitions them into per-stripe work queues, and N worker
// threads drive the three-stage destage pipeline (kdd/destage.hpp) per job:
//
//   stripe lock -> [policy lock: prepare] -> fold (NO policy lock)
//               -> [policy lock: commit]  -> stripe unlock
//
// Holding the job's stripe lock across all three stages freezes foreground
// requests to the claimed groups, so prepare's snapshot stays describable by
// commit's revalidation; releasing the policy lock for fold() is where the
// parallelism comes from — the XOR/decompress compute of up to N batches
// overlaps with each other and with foreground requests on other stripes.
// Workers prefer jobs from their home stripe range and steal from the rest.
// In-flight work is bounded (the feeder refills only while fewer than
// `threads` jobs are outstanding); flush() pauses refills, drains the queues
// to a deterministic barrier, then runs the policy's own flush inline.
//
// Lock order with the pool: feeder takes policy -> queue; workers take
// queue (released) -> stripe -> policy. Nobody holds queue while waiting on
// stripe/policy in the other direction, so the order is acyclic.
//
// Async request engine (optional, start_async()): submitters enqueue
// outstanding-request contexts into per-shard submission queues (shard ==
// front-lock stripe) and return immediately; engine workers claim a shard,
// drain its queue FIFO and execute each request through the same
// stripe -> policy path as the sync front door, completing via callback.
// One worker per shard at a time plus FIFO drain preserves the per-parity-
// group total order the deterministic replay relies on. Admission control
// bounds the damage of deep client queue depths: per-shard queues are
// bounded, and a global high watermark closes the submission gate until
// completions bring the total outstanding back under the low watermark
// (submit() blocks, try_submit() rejects). See docs/performance.md.
//
// On write hits the engine — and the sync front door — splits the request
// through the policy's SpeculativeWriteSource hook when it implements one:
// snapshot the delta base under the policy mutex, LZ-compress the delta with
// the mutex RELEASED (only the request's stripe lock held), then revalidate
// and commit under the mutex. The compression is the dominant per-request
// CPU cost, so this is what lets N submitters/workers scale past the single
// policy mutex. The engine's locks (amu_) are leaf: never held while taking
// stripe/policy, and vice versa never needed by the sync path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/policy.hpp"
#include "common/bytes.hpp"
#include "kdd/destage.hpp"
#include "kdd/request_engine.hpp"
#include "raid/layout.hpp"

namespace kdd {

class ConcurrentCache {
 public:
  /// Number of front-lock stripes. Parity groups hash onto stripes, so two
  /// requests contend at the front door only when their groups collide
  /// modulo this. Power of two; 16 comfortably exceeds the core counts the
  /// replay harness drives.
  static constexpr std::size_t kStripes = 16;

  /// Lock-free front-door counters (sampled without the policy mutex).
  /// Merged from per-stripe shards, so hot-path recording never shares a
  /// cache line across stripes and nothing is dropped under contention.
  struct FrontStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_errors = 0;   ///< non-OK statuses returned to callers
    std::uint64_t write_errors = 0;
    std::uint64_t flushes = 0;
  };

  /// `policy` is not owned and must outlive the facade. `idle_wakeup` is the
  /// cleaner's polling period; an idle pass runs when no request arrived for
  /// one full period. Without a layout, stripes are keyed by raw LBA.
  explicit ConcurrentCache(CachePolicy* policy,
                           std::chrono::milliseconds idle_wakeup =
                               std::chrono::milliseconds(50));

  /// Stripe-aware overload: front locks are keyed by `layout->group_of(lba)`
  /// so every request touching one parity group funnels through one stripe.
  /// `layout` is not owned and must outlive the facade.
  ///
  /// `cleaner_threads` > 0 starts the parallel cleaner pool *if* the policy
  /// implements DestageSource (KDD does); the policy's own inline watermark
  /// cleaning is rerouted to the pool via set_external_cleaner. Policies
  /// without a DestageSource silently fall back to the single idle cleaner.
  ConcurrentCache(CachePolicy* policy, const RaidLayout* layout,
                  std::chrono::milliseconds idle_wakeup =
                      std::chrono::milliseconds(50),
                  std::uint32_t cleaner_threads = 0);

  ~ConcurrentCache();

  ConcurrentCache(const ConcurrentCache&) = delete;
  ConcurrentCache& operator=(const ConcurrentCache&) = delete;

  IoStatus read(Lba lba, std::span<std::uint8_t> out);
  IoStatus write(Lba lba, std::span<const std::uint8_t> data);

  /// Drains all deferred state (blocking): outstanding async requests first,
  /// then the cleaner pool's drain barrier and the policy's own flush.
  void flush();

  // -- Async submission/completion engine -----------------------------------

  /// Starts the engine (once; opts.workers >= 1). Until then submit_* must
  /// not be called; the sync read()/write() front door works either way.
  void start_async(const AsyncEngineOptions& opts);
  bool async_started() const { return !engine_workers_.empty(); }

  /// Enqueues a request and returns; `cb` fires exactly once on an engine
  /// worker once the request executed. Blocks while the target shard queue
  /// is full or the global high watermark has closed the gate; returns false
  /// only when submissions are quiesced (cb is then never invoked). `out`
  /// must stay alive until completion; `data` is copied at submit time.
  bool submit_read(Lba lba, std::span<std::uint8_t> out, AsyncCompletion cb);
  bool submit_write(Lba lba, std::span<const std::uint8_t> data,
                    AsyncCompletion cb);

  /// Non-blocking variants: false (and kdd_admission_rejected_total) when
  /// the shard queue is full, the gate is closed, or submissions are
  /// quiesced. The callback is never invoked on rejection.
  bool try_submit_read(Lba lba, std::span<std::uint8_t> out, AsyncCompletion cb);
  bool try_submit_write(Lba lba, std::span<const std::uint8_t> data,
                        AsyncCompletion cb);

  /// Blocks until every accepted submission has completed. Does not stop new
  /// submissions — callers wanting a stable zero quiesce first.
  void drain_async();

  /// Quiesce discipline (destructor, handle_disk_failure_online): reject new
  /// submissions, then wait for all in-flight requests to complete. Balanced
  /// by resume_submissions(); nestable (a counter, not a flag).
  void quiesce_submissions();
  void resume_submissions();

  /// Engine lifetime counters (relaxed reads; inflight is exact only after a
  /// drain). All zero when the engine was never started.
  AsyncEngineStats async_stats() const;

  /// Online disk-failure handler for async/sync mixed operation: quiesces the
  /// submission queues (reject new, complete in-flight), hands the failure to
  /// the policy's rebuild engine — its stripe barrier then runs against a
  /// quiesced front end — and resumes submissions. Requires a KddCache policy
  /// with a bound RebuildEngine. Returns what the engine's on_disk_failure
  /// returned (false: no spare, array stays degraded).
  bool handle_disk_failure_online(std::uint32_t disk);

  /// Exact policy stats (takes the policy mutex; waits for in-flight
  /// requests). Also refreshes the lock-free snapshot below.
  CacheStats stats() const;

  /// Last published policy stats — refreshed by every cleaner idle pass,
  /// flush() and stats() call — WITHOUT touching the policy mutex, so
  /// telemetry can poll it while requests are in flight. Values trail the
  /// exact stats by at most one cleaner period.
  CacheStats stats_snapshot() const;

  /// Front-door request counters, merged across the per-stripe shards
  /// (relaxed atomic reads; never blocks on the policy).
  FrontStats front_stats() const;

  /// Number of idle passes the cleaner has run.
  std::uint64_t cleaner_passes() const { return cleaner_passes_.load(); }

  /// Pool introspection: worker count (0 = pool disabled) and destage
  /// batches committed by pool workers since construction.
  std::size_t pool_threads() const { return pool_.size(); }
  std::uint64_t pool_batches() const {
    return pool_batches_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-stripe front-door counters, cache-line separated so the 16 stripes
  /// never false-share while recording.
  struct alignas(64) StripeShard {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> read_errors{0};
    std::atomic<std::uint64_t> write_errors{0};
  };

  /// One stripe's worth of claimed parity groups, processed by one worker
  /// under that stripe's front lock.
  struct DestageJob {
    std::size_t stripe = 0;
    std::vector<GroupId> groups;
  };

  /// One outstanding async request. Write payloads are owned copies (the
  /// submitter's buffer is reusable the moment submit returns); read outputs
  /// are caller-owned spans that must outlive the completion.
  struct AsyncRequest {
    Lba lba = 0;
    bool is_read = false;
    std::span<std::uint8_t> out{};
    Page payload;
    AsyncCompletion cb;
    std::chrono::steady_clock::rep enqueue_ns = 0;
  };

  void cleaner_main();
  std::size_t stripe_of(Lba lba) const;
  std::size_t stripe_of_group(GroupId g) const;
  void touch_idle_clock();
  /// Executes one request under stripe -> policy locking (the shared body of
  /// the sync front door and the engine workers). exec_write routes through
  /// the policy's SpeculativeWriteSource hook when available.
  IoStatus exec_read(Lba lba, std::span<std::uint8_t> out);
  IoStatus exec_write(Lba lba, std::span<const std::uint8_t> data);
  /// Common submit path; `block` selects submit() vs try_submit() semantics.
  bool submit_request(AsyncRequest&& rq, bool block);
  /// First claimable shard (not busy, non-empty) starting at `home`;
  /// kStripes if none. Caller holds amu_.
  std::size_t claimable_shard(std::size_t home) const;
  void engine_main(std::size_t worker);
  /// Copies the policy's stats into the lock-free snapshot slot. Caller must
  /// hold mu_.
  void publish_snapshot_locked() const;

  // -- Cleaner pool ---------------------------------------------------------
  /// Feeder step: claims dirty groups and queues per-stripe jobs. Caller
  /// must hold mu_ (takes queue_mu_ inside: lock order policy -> queue).
  /// `force` claims even below the high watermark (idle-triggered drain).
  void refill_pool_locked(bool force);
  /// Worker loop: pop (home range first, then steal), run the pipeline.
  void pool_main(std::size_t worker);
  /// Runs one job: stripe lock, prepare under mu_, fold unlocked, commit
  /// under mu_.
  void run_destage_job(const DestageJob& job);
  /// Wakes the feeder immediately when deferred work passed the watermark
  /// (callers: write path, after releasing mu_).
  void nudge_feeder();

  CachePolicy* policy_;
  const RaidLayout* layout_;  // may be null: stripe by raw LBA
  /// The policy's speculative-write hook (null: no speculation). Resolved
  /// once at construction; KddCache implements it in prototype mode.
  SpeculativeWriteSource* spec_ = nullptr;
  const std::chrono::milliseconds idle_wakeup_;

  // Front tier: striped by parity group.
  std::array<std::mutex, kStripes> stripe_mu_;
  std::array<StripeShard, kStripes> shards_;
  std::atomic<std::uint64_t> flushes_{0};

  // Published-stats slot: written under snap_mu_ by whoever holds mu_,
  // read by stats_snapshot() with only snap_mu_ (policy mutex never needed).
  mutable std::mutex snap_mu_;
  mutable CacheStats last_snapshot_;

  // Inner tier: the policy mutex (also guards stop_ for the cleaner's cv).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Idle clock: steady_clock ticks of the most recent request, updated with
  // a relaxed store on the hot path and read by the cleaner without mu_.
  std::atomic<std::chrono::steady_clock::rep> last_request_ns_;

  std::atomic<std::uint64_t> cleaner_passes_{0};

  // Cleaner pool state. queue_mu_ guards the queues and the job counters;
  // it is strictly *inner* to mu_ for the feeder and never held while a
  // worker acquires stripe/policy locks.
  DestageSource* destage_ = nullptr;  ///< policy as DestageSource (may be null)
  std::size_t pool_size_ = 0;  ///< set before any worker starts (stable)
  std::mutex queue_mu_;
  std::array<std::deque<DestageJob>, kStripes> queues_;
  std::size_t queued_jobs_ = 0;
  std::size_t inflight_jobs_ = 0;
  bool pool_stop_ = false;
  std::condition_variable queue_cv_;  ///< workers: work available / stop
  std::condition_variable drain_cv_;  ///< flush: queues empty && none inflight
  std::atomic<int> refill_pause_{0};  ///< >0: flush draining, feeder holds off
  std::atomic<std::uint64_t> pool_batches_{0};
  std::vector<std::thread> pool_;

  // Async engine state. amu_ guards the submission queues, the shard-busy
  // flags and the admission counters; it is a LEAF lock (never held while
  // acquiring stripe/policy/queue locks). The gate bool implements the
  // high/low watermark hysteresis; quiesce is a counter so nested quiesce
  // sections (drill rigs) compose.
  AsyncEngineOptions aopts_;
  std::mutex amu_;
  std::condition_variable submit_cv_;       ///< submitters: space / gate open
  std::condition_variable engine_cv_;       ///< workers: work available / stop
  std::condition_variable async_drain_cv_;  ///< drain/quiesce: inflight == 0
  std::array<std::deque<AsyncRequest>, kStripes> async_q_;
  std::array<bool, kStripes> shard_busy_{};  ///< claimed by a worker
  std::size_t async_inflight_ = 0;           ///< queued + executing
  bool gate_closed_ = false;
  int quiesced_ = 0;
  bool engine_stop_ = false;
  std::atomic<std::uint64_t> async_submitted_{0};
  std::atomic<std::uint64_t> async_completed_{0};
  std::atomic<std::uint64_t> async_rejected_{0};
  std::atomic<std::uint64_t> async_stalls_{0};
  std::vector<std::thread> engine_workers_;

  std::thread cleaner_;  // last member: starts after everything is ready
};

}  // namespace kdd
