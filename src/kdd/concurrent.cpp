#include "kdd/concurrent.hpp"

#include "common/check.hpp"

namespace kdd {

ConcurrentCache::ConcurrentCache(CachePolicy* policy,
                                 std::chrono::milliseconds idle_wakeup)
    : policy_(policy),
      idle_wakeup_(idle_wakeup),
      last_request_(std::chrono::steady_clock::now()),
      cleaner_([this] { cleaner_main(); }) {
  KDD_CHECK(policy_ != nullptr);
}

ConcurrentCache::~ConcurrentCache() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  cleaner_.join();
}

IoStatus ConcurrentCache::read(Lba lba, std::span<std::uint8_t> out) {
  const std::lock_guard<std::mutex> lock(mu_);
  last_request_ = std::chrono::steady_clock::now();
  return policy_->read(lba, out, nullptr);
}

IoStatus ConcurrentCache::write(Lba lba, std::span<const std::uint8_t> data) {
  const std::lock_guard<std::mutex> lock(mu_);
  last_request_ = std::chrono::steady_clock::now();
  return policy_->write(lba, data, nullptr);
}

void ConcurrentCache::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  policy_->flush(nullptr);
}

CacheStats ConcurrentCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return policy_->stats();
}

void ConcurrentCache::cleaner_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, idle_wakeup_);
    if (stop_) break;
    const auto idle_for = std::chrono::steady_clock::now() - last_request_;
    if (idle_for >= idle_wakeup_) {
      policy_->on_idle(nullptr);
      cleaner_passes_.fetch_add(1);
    }
  }
}

}  // namespace kdd
