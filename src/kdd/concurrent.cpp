#include "kdd/concurrent.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"
#include "obs/span.hpp"

namespace kdd {

namespace {

std::chrono::steady_clock::rep now_ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

ConcurrentCache::ConcurrentCache(CachePolicy* policy,
                                 std::chrono::milliseconds idle_wakeup)
    : ConcurrentCache(policy, nullptr, idle_wakeup, 0) {}

ConcurrentCache::ConcurrentCache(CachePolicy* policy, const RaidLayout* layout,
                                 std::chrono::milliseconds idle_wakeup,
                                 std::uint32_t cleaner_threads)
    : policy_(policy),
      layout_(layout),
      idle_wakeup_(idle_wakeup),
      last_request_ns_(now_ticks()) {
  KDD_CHECK(policy_ != nullptr);
  if (cleaner_threads > 0) {
    destage_ = dynamic_cast<DestageSource*>(policy_);
    if (destage_ != nullptr) {
      // The pool owns destage from here on: the policy's inline watermark
      // passes become no-ops so foreground requests never serialise behind
      // a whole cleaning pass again.
      destage_->set_external_cleaner(true);
      pool_size_ = cleaner_threads;
      pool_.reserve(cleaner_threads);
      for (std::uint32_t w = 0; w < cleaner_threads; ++w) {
        pool_.emplace_back([this, w] { pool_main(w); });
      }
    }
  }
  // Started last: the cleaner doubles as the pool feeder and reads the pool
  // state set up above.
  cleaner_ = std::thread([this] { cleaner_main(); });
}

ConcurrentCache::~ConcurrentCache() {
  // Stop the feeder first so no new jobs are queued, then the workers.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  cleaner_.join();
  if (!pool_.empty()) {
    {
      const std::lock_guard<std::mutex> qlock(queue_mu_);
      pool_stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
    // Workers exit immediately on stop; release the claims of any jobs they
    // left behind so a later flush of the policy sees no phantom claims.
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& q : queues_) {
      for (const DestageJob& job : q) destage_->destage_abandon(job.groups);
      q.clear();
    }
    queued_jobs_ = 0;
  }
}

std::size_t ConcurrentCache::stripe_of(Lba lba) const {
  const std::uint64_t key = layout_ ? layout_->group_of(lba) : lba;
  // kStripes is a power of two; mix the key a little so striped workloads
  // whose groups advance in lockstep still spread across stripes.
  return static_cast<std::size_t>((key ^ (key >> 7)) & (kStripes - 1));
}

std::size_t ConcurrentCache::stripe_of_group(GroupId g) const {
  // Must agree with stripe_of() for LBAs of the same group (the front door
  // keys stripes by group when a layout is installed).
  return static_cast<std::size_t>((g ^ (g >> 7)) & (kStripes - 1));
}

void ConcurrentCache::touch_idle_clock() {
  last_request_ns_.store(now_ticks(), std::memory_order_relaxed);
}

IoStatus ConcurrentCache::read(Lba lba, std::span<std::uint8_t> out) {
  const std::size_t s = stripe_of(lba);
  const std::lock_guard<std::mutex> stripe(stripe_mu_[s]);
  shards_[s].reads.fetch_add(1, std::memory_order_relaxed);
  touch_idle_clock();
  const std::lock_guard<std::mutex> lock(mu_);
  const IoStatus st = policy_->read(lba, out, nullptr);
  if (st != IoStatus::kOk) {
    shards_[s].read_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

IoStatus ConcurrentCache::write(Lba lba, std::span<const std::uint8_t> data) {
  const std::size_t s = stripe_of(lba);
  const std::lock_guard<std::mutex> stripe(stripe_mu_[s]);
  shards_[s].writes.fetch_add(1, std::memory_order_relaxed);
  touch_idle_clock();
  bool kick = false;
  IoStatus st;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    st = policy_->write(lba, data, nullptr);
    // With the pool active the policy's inline watermark pass is a no-op, so
    // the write path itself must wake the feeder once deferred work piles up.
    kick = destage_ != nullptr && !pool_.empty() && destage_->destage_pending();
  }
  if (st != IoStatus::kOk) {
    shards_[s].write_errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (kick) nudge_feeder();
  return st;
}

void ConcurrentCache::nudge_feeder() { cv_.notify_one(); }

void ConcurrentCache::flush() {
  touch_idle_clock();
  flushes_.fetch_add(1, std::memory_order_relaxed);
  if (!pool_.empty()) {
    // Deterministic drain barrier: pause refills, wait until every queued
    // and in-flight job has committed (or been abandoned), then run the
    // policy's own flush inline while *holding* mu_ — the feeder cannot
    // start a refill without mu_, so the re-check under mu_ closes the race
    // where a refill that had already passed the pause check queues one
    // last wave of jobs after our first drain wait. Claims are all released
    // at the barrier, so the inline clean_all drains whatever the pool had
    // not reached yet.
    refill_pause_.fetch_add(1, std::memory_order_acq_rel);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      bool drained;
      {
        const std::lock_guard<std::mutex> qlock(queue_mu_);
        drained = queued_jobs_ == 0 && inflight_jobs_ == 0;
      }
      if (drained) break;
      lock.unlock();
      {
        std::unique_lock<std::mutex> qlock(queue_mu_);
        drain_cv_.wait(qlock, [this] {
          return queued_jobs_ == 0 && inflight_jobs_ == 0;
        });
      }
      lock.lock();  // re-check: a paused feeder can no longer refill
    }
    policy_->flush(nullptr);
    publish_snapshot_locked();
    lock.unlock();
    refill_pause_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  policy_->flush(nullptr);
  publish_snapshot_locked();
}

void ConcurrentCache::publish_snapshot_locked() const {
  CacheStats s = policy_->stats();
  const std::lock_guard<std::mutex> snap(snap_mu_);
  last_snapshot_ = s;
}

CacheStats ConcurrentCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  publish_snapshot_locked();
  const std::lock_guard<std::mutex> snap(snap_mu_);
  return last_snapshot_;
}

CacheStats ConcurrentCache::stats_snapshot() const {
  const std::lock_guard<std::mutex> snap(snap_mu_);
  return last_snapshot_;
}

ConcurrentCache::FrontStats ConcurrentCache::front_stats() const {
  FrontStats out;
  for (const StripeShard& sh : shards_) {
    out.reads += sh.reads.load(std::memory_order_relaxed);
    out.writes += sh.writes.load(std::memory_order_relaxed);
    out.read_errors += sh.read_errors.load(std::memory_order_relaxed);
    out.write_errors += sh.write_errors.load(std::memory_order_relaxed);
  }
  out.flushes = flushes_.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Cleaner pool
// ---------------------------------------------------------------------------

void ConcurrentCache::refill_pool_locked(bool force) {
  if (refill_pause_.load(std::memory_order_acquire) > 0) return;
  if (!force && !destage_->destage_pending()) return;
  {
    // Bounded in-flight: keep roughly one job per worker outstanding. The
    // claim below adds at most kStripes jobs, so total claims stay bounded
    // by (hint * workers) groups per wave.
    const std::lock_guard<std::mutex> qlock(queue_mu_);
    if (queued_jobs_ + inflight_jobs_ >= pool_size_) return;
  }
  const std::size_t target = destage_->destage_batch_hint() * pool_size_;
  const std::vector<GroupId> groups = destage_->destage_claim(target);
  if (groups.empty()) return;
  // Partition the disk-layout-ordered claim into per-stripe jobs; order
  // within a job is preserved, so each worker still walks its parity pages
  // in layout order.
  std::array<std::vector<GroupId>, kStripes> per_stripe;
  for (const GroupId g : groups) {
    per_stripe[stripe_of_group(g)].push_back(g);
  }
  {
    const std::lock_guard<std::mutex> qlock(queue_mu_);
    for (std::size_t s = 0; s < kStripes; ++s) {
      if (per_stripe[s].empty()) continue;
      queues_[s].push_back(DestageJob{s, std::move(per_stripe[s])});
      ++queued_jobs_;
    }
  }
  queue_cv_.notify_all();
}

void ConcurrentCache::run_destage_job(const DestageJob& job) {
  // Background root: the pipeline's stage spans sample at the request period
  // and attribute to a kClean root, exactly like the inline cleaner.
  const obs::TraceContextScope trace(obs::Stage::kClean);
  // The stripe lock freezes foreground requests to the claimed groups across
  // all three stages (see kdd/destage.hpp).
  const std::lock_guard<std::mutex> stripe(stripe_mu_[job.stripe]);
  std::unique_ptr<DestageUnit> unit;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    unit = destage_->destage_prepare(job.groups, nullptr);
  }
  if (unit == nullptr) return;  // nothing left; claims already released
  unit->fold();  // stage 2: no policy lock — this is the parallel section
  {
    const std::lock_guard<std::mutex> lock(mu_);
    destage_->destage_commit(*unit, nullptr);
  }
  pool_batches_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentCache::pool_main(std::size_t worker) {
  // Home range: worker w prefers stripes [w*K/N, (w+1)*K/N) and steals from
  // the rest only when its own range is empty.
  const std::size_t home = (worker * kStripes) / pool_size_;
  std::unique_lock<std::mutex> qlock(queue_mu_);
  while (true) {
    queue_cv_.wait(qlock, [this] { return pool_stop_ || queued_jobs_ > 0; });
    if (pool_stop_) return;  // leftover jobs are abandoned by the destructor
    DestageJob job;
    bool found = false;
    for (std::size_t i = 0; i < kStripes; ++i) {
      const std::size_t s = (home + i) % kStripes;
      if (queues_[s].empty()) continue;
      job = std::move(queues_[s].front());
      queues_[s].pop_front();
      found = true;
      break;
    }
    if (!found) continue;  // raced with another worker; wait again
    --queued_jobs_;
    ++inflight_jobs_;
    qlock.unlock();
    run_destage_job(job);
    qlock.lock();
    --inflight_jobs_;
    if (queued_jobs_ == 0 && inflight_jobs_ == 0) drain_cv_.notify_all();
  }
}

void ConcurrentCache::cleaner_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, idle_wakeup_);
    if (stop_) break;
    // The idle clock is an atomic outside mu_, so a request that is blocked
    // on mu_ right now has already stamped it and defers this pass.
    const auto last = std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            last_request_ns_.load(std::memory_order_relaxed)));
    const auto idle_for = std::chrono::steady_clock::now() - last;
    const bool idle = idle_for >= idle_wakeup_;
    if (destage_ != nullptr && pool_size_ > 0) {
      // Pool mode: this thread is the feeder. Refill on every wake-up —
      // destage has to keep pace with the foreground load, not wait for
      // idleness — and when the system *is* idle, force a full drain wave
      // (the paper's idle-triggered cleaning) through the pool instead of
      // running the policy's inline pass.
      refill_pool_locked(/*force=*/idle);
      if (idle) {
        cleaner_passes_.fetch_add(1);
        publish_snapshot_locked();
      }
      continue;
    }
    if (idle) {
      policy_->on_idle(nullptr);
      cleaner_passes_.fetch_add(1);
      publish_snapshot_locked();  // refresh the lock-free stats snapshot
    }
  }
}

}  // namespace kdd
