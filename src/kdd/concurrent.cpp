#include "kdd/concurrent.hpp"

#include "common/check.hpp"

namespace kdd {

namespace {

std::chrono::steady_clock::rep now_ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

ConcurrentCache::ConcurrentCache(CachePolicy* policy,
                                 std::chrono::milliseconds idle_wakeup)
    : ConcurrentCache(policy, nullptr, idle_wakeup) {}

ConcurrentCache::ConcurrentCache(CachePolicy* policy, const RaidLayout* layout,
                                 std::chrono::milliseconds idle_wakeup)
    : policy_(policy),
      layout_(layout),
      idle_wakeup_(idle_wakeup),
      last_request_ns_(now_ticks()),
      cleaner_([this] { cleaner_main(); }) {
  KDD_CHECK(policy_ != nullptr);
}

ConcurrentCache::~ConcurrentCache() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  cleaner_.join();
}

std::size_t ConcurrentCache::stripe_of(Lba lba) const {
  const std::uint64_t key = layout_ ? layout_->group_of(lba) : lba;
  // kStripes is a power of two; mix the key a little so striped workloads
  // whose groups advance in lockstep still spread across stripes.
  return static_cast<std::size_t>((key ^ (key >> 7)) & (kStripes - 1));
}

void ConcurrentCache::touch_idle_clock() {
  last_request_ns_.store(now_ticks(), std::memory_order_relaxed);
}

IoStatus ConcurrentCache::read(Lba lba, std::span<std::uint8_t> out) {
  const std::size_t s = stripe_of(lba);
  const std::lock_guard<std::mutex> stripe(stripe_mu_[s]);
  shards_[s].reads.fetch_add(1, std::memory_order_relaxed);
  touch_idle_clock();
  const std::lock_guard<std::mutex> lock(mu_);
  const IoStatus st = policy_->read(lba, out, nullptr);
  if (st != IoStatus::kOk) {
    shards_[s].read_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

IoStatus ConcurrentCache::write(Lba lba, std::span<const std::uint8_t> data) {
  const std::size_t s = stripe_of(lba);
  const std::lock_guard<std::mutex> stripe(stripe_mu_[s]);
  shards_[s].writes.fetch_add(1, std::memory_order_relaxed);
  touch_idle_clock();
  const std::lock_guard<std::mutex> lock(mu_);
  const IoStatus st = policy_->write(lba, data, nullptr);
  if (st != IoStatus::kOk) {
    shards_[s].write_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

void ConcurrentCache::flush() {
  touch_idle_clock();
  flushes_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  policy_->flush(nullptr);
  publish_snapshot_locked();
}

void ConcurrentCache::publish_snapshot_locked() const {
  CacheStats s = policy_->stats();
  const std::lock_guard<std::mutex> snap(snap_mu_);
  last_snapshot_ = s;
}

CacheStats ConcurrentCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  publish_snapshot_locked();
  const std::lock_guard<std::mutex> snap(snap_mu_);
  return last_snapshot_;
}

CacheStats ConcurrentCache::stats_snapshot() const {
  const std::lock_guard<std::mutex> snap(snap_mu_);
  return last_snapshot_;
}

ConcurrentCache::FrontStats ConcurrentCache::front_stats() const {
  FrontStats out;
  for (const StripeShard& sh : shards_) {
    out.reads += sh.reads.load(std::memory_order_relaxed);
    out.writes += sh.writes.load(std::memory_order_relaxed);
    out.read_errors += sh.read_errors.load(std::memory_order_relaxed);
    out.write_errors += sh.write_errors.load(std::memory_order_relaxed);
  }
  out.flushes = flushes_.load(std::memory_order_relaxed);
  return out;
}

void ConcurrentCache::cleaner_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, idle_wakeup_);
    if (stop_) break;
    // The idle clock is an atomic outside mu_, so a request that is blocked
    // on mu_ right now has already stamped it and defers this pass.
    const auto last = std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            last_request_ns_.load(std::memory_order_relaxed)));
    const auto idle_for = std::chrono::steady_clock::now() - last;
    if (idle_for >= idle_wakeup_) {
      policy_->on_idle(nullptr);
      cleaner_passes_.fetch_add(1);
      publish_snapshot_locked();  // refresh the lock-free stats snapshot
    }
  }
}

}  // namespace kdd
