#include "kdd/concurrent.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"
#include "compress/delta.hpp"
#include "kdd/kdd_cache.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kdd {

namespace {

std::chrono::steady_clock::rep now_ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

/// Global-registry mirrors of the async engine's admission telemetry
/// (docs/observability.md): outstanding requests, submission-queue wait and
/// admission rejections. The per-instance AsyncEngineStats counters stay
/// authoritative for tests; these feed the exporters.
struct EngineMetrics {
  obs::Gauge inflight;         ///< kdd_inflight_requests
  obs::Histogram queue_wait;   ///< kdd_queue_wait_ns
  obs::Counter rejected;       ///< kdd_admission_rejected_total
};

EngineMetrics& engine_metrics() {
  static EngineMetrics* m = [] {
    auto* em = new EngineMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    em->inflight = obs::Gauge(&reg, "kdd_inflight_requests");
    em->queue_wait = obs::Histogram(&reg, "kdd_queue_wait_ns");
    em->rejected = obs::Counter(&reg, "kdd_admission_rejected_total");
    return em;
  }();
  return *m;
}

}  // namespace

ConcurrentCache::ConcurrentCache(CachePolicy* policy,
                                 std::chrono::milliseconds idle_wakeup)
    : ConcurrentCache(policy, nullptr, idle_wakeup, 0) {}

ConcurrentCache::ConcurrentCache(CachePolicy* policy, const RaidLayout* layout,
                                 std::chrono::milliseconds idle_wakeup,
                                 std::uint32_t cleaner_threads)
    : policy_(policy),
      layout_(layout),
      spec_(dynamic_cast<SpeculativeWriteSource*>(policy)),
      idle_wakeup_(idle_wakeup),
      last_request_ns_(now_ticks()) {
  KDD_CHECK(policy_ != nullptr);
  if (cleaner_threads > 0) {
    destage_ = dynamic_cast<DestageSource*>(policy_);
    if (destage_ != nullptr) {
      // The pool owns destage from here on: the policy's inline watermark
      // passes become no-ops so foreground requests never serialise behind
      // a whole cleaning pass again.
      destage_->set_external_cleaner(true);
      pool_size_ = cleaner_threads;
      pool_.reserve(cleaner_threads);
      for (std::uint32_t w = 0; w < cleaner_threads; ++w) {
        pool_.emplace_back([this, w] { pool_main(w); });
      }
    }
  }
  // Started last: the cleaner doubles as the pool feeder and reads the pool
  // state set up above.
  cleaner_ = std::thread([this] { cleaner_main(); });
}

ConcurrentCache::~ConcurrentCache() {
  // Quiesce the async engine first: reject new submissions, complete every
  // in-flight request (their callbacks may still reference live client
  // state), then stop the workers. Only after the front end is quiet do the
  // cleaner feeder and pool come down.
  if (!engine_workers_.empty()) {
    quiesce_submissions();
    {
      const std::lock_guard<std::mutex> alock(amu_);
      engine_stop_ = true;
    }
    engine_cv_.notify_all();
    submit_cv_.notify_all();
    for (std::thread& t : engine_workers_) t.join();
  }
  // Stop the feeder first so no new jobs are queued, then the workers.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  cleaner_.join();
  if (!pool_.empty()) {
    {
      const std::lock_guard<std::mutex> qlock(queue_mu_);
      pool_stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
    // Workers exit immediately on stop; release the claims of any jobs they
    // left behind so a later flush of the policy sees no phantom claims.
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& q : queues_) {
      for (const DestageJob& job : q) destage_->destage_abandon(job.groups);
      q.clear();
    }
    queued_jobs_ = 0;
  }
}

std::size_t ConcurrentCache::stripe_of(Lba lba) const {
  const std::uint64_t key = layout_ ? layout_->group_of(lba) : lba;
  // kStripes is a power of two; mix the key a little so striped workloads
  // whose groups advance in lockstep still spread across stripes.
  return static_cast<std::size_t>((key ^ (key >> 7)) & (kStripes - 1));
}

std::size_t ConcurrentCache::stripe_of_group(GroupId g) const {
  // Must agree with stripe_of() for LBAs of the same group (the front door
  // keys stripes by group when a layout is installed).
  return static_cast<std::size_t>((g ^ (g >> 7)) & (kStripes - 1));
}

void ConcurrentCache::touch_idle_clock() {
  last_request_ns_.store(now_ticks(), std::memory_order_relaxed);
}

IoStatus ConcurrentCache::read(Lba lba, std::span<std::uint8_t> out) {
  return exec_read(lba, out);
}

IoStatus ConcurrentCache::write(Lba lba, std::span<const std::uint8_t> data) {
  return exec_write(lba, data);
}

IoStatus ConcurrentCache::exec_read(Lba lba, std::span<std::uint8_t> out) {
  const std::size_t s = stripe_of(lba);
  const std::lock_guard<std::mutex> stripe(stripe_mu_[s]);
  shards_[s].reads.fetch_add(1, std::memory_order_relaxed);
  touch_idle_clock();
  const std::lock_guard<std::mutex> lock(mu_);
  const IoStatus st = policy_->read(lba, out, nullptr);
  if (st != IoStatus::kOk) {
    shards_[s].read_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

IoStatus ConcurrentCache::exec_write(Lba lba, std::span<const std::uint8_t> data) {
  const std::size_t s = stripe_of(lba);
  const std::lock_guard<std::mutex> stripe(stripe_mu_[s]);
  shards_[s].writes.fetch_add(1, std::memory_order_relaxed);
  touch_idle_clock();
  bool kick = false;
  IoStatus st;
  {
    SpeculativeWriteSource::Snapshot snap;
    thread_local Page spec_base;  // delta base scratch, one page per thread
    if (spec_ != nullptr && data.size() == kPageSize) {
      if (spec_base.size() != kPageSize) spec_base.assign(kPageSize, 0);
      const std::lock_guard<std::mutex> lock(mu_);
      snap = spec_->write_snapshot(lba, spec_base);
    }
    if (snap.valid) {
      // Write-hit split: the delta compression — the dominant per-request
      // CPU cost — runs here with only the stripe lock held. The stripe lock
      // excludes every same-parity-group request, so the snapshot can only
      // be perturbed by cross-stripe activity, which write_prepared detects
      // (and then recomputes inline).
      SpeculativeWriteSource::PreparedDelta pd;
      make_delta_into(spec_base, data, pd.blob);
      pd.packed = static_cast<std::uint32_t>(pd.blob.packed_size());
      const std::lock_guard<std::mutex> lock(mu_);
      st = spec_->write_prepared(lba, data, snap, std::move(pd), nullptr);
      kick = destage_ != nullptr && !pool_.empty() && destage_->destage_pending();
    } else {
      const std::lock_guard<std::mutex> lock(mu_);
      st = policy_->write(lba, data, nullptr);
      // With the pool active the policy's inline watermark pass is a no-op,
      // so the write path itself must wake the feeder once deferred work
      // piles up.
      kick = destage_ != nullptr && !pool_.empty() && destage_->destage_pending();
    }
  }
  if (st != IoStatus::kOk) {
    shards_[s].write_errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (kick) nudge_feeder();
  return st;
}

void ConcurrentCache::nudge_feeder() { cv_.notify_one(); }

void ConcurrentCache::flush() {
  // Async requests drain first (holding no locks): a request still queued at
  // the flush barrier could re-dirty groups behind the pool drain below.
  drain_async();
  touch_idle_clock();
  flushes_.fetch_add(1, std::memory_order_relaxed);
  if (!pool_.empty()) {
    // Deterministic drain barrier: pause refills, wait until every queued
    // and in-flight job has committed (or been abandoned), then run the
    // policy's own flush inline while *holding* mu_ — the feeder cannot
    // start a refill without mu_, so the re-check under mu_ closes the race
    // where a refill that had already passed the pause check queues one
    // last wave of jobs after our first drain wait. Claims are all released
    // at the barrier, so the inline clean_all drains whatever the pool had
    // not reached yet.
    refill_pause_.fetch_add(1, std::memory_order_acq_rel);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      bool drained;
      {
        const std::lock_guard<std::mutex> qlock(queue_mu_);
        drained = queued_jobs_ == 0 && inflight_jobs_ == 0;
      }
      if (drained) break;
      lock.unlock();
      {
        std::unique_lock<std::mutex> qlock(queue_mu_);
        drain_cv_.wait(qlock, [this] {
          return queued_jobs_ == 0 && inflight_jobs_ == 0;
        });
      }
      lock.lock();  // re-check: a paused feeder can no longer refill
    }
    policy_->flush(nullptr);
    publish_snapshot_locked();
    lock.unlock();
    refill_pause_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  policy_->flush(nullptr);
  publish_snapshot_locked();
}

void ConcurrentCache::publish_snapshot_locked() const {
  CacheStats s = policy_->stats();
  const std::lock_guard<std::mutex> snap(snap_mu_);
  last_snapshot_ = s;
}

CacheStats ConcurrentCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  publish_snapshot_locked();
  const std::lock_guard<std::mutex> snap(snap_mu_);
  return last_snapshot_;
}

CacheStats ConcurrentCache::stats_snapshot() const {
  const std::lock_guard<std::mutex> snap(snap_mu_);
  return last_snapshot_;
}

ConcurrentCache::FrontStats ConcurrentCache::front_stats() const {
  FrontStats out;
  for (const StripeShard& sh : shards_) {
    out.reads += sh.reads.load(std::memory_order_relaxed);
    out.writes += sh.writes.load(std::memory_order_relaxed);
    out.read_errors += sh.read_errors.load(std::memory_order_relaxed);
    out.write_errors += sh.write_errors.load(std::memory_order_relaxed);
  }
  out.flushes = flushes_.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Async submission/completion engine
// ---------------------------------------------------------------------------

void ConcurrentCache::start_async(const AsyncEngineOptions& opts) {
  KDD_CHECK(engine_workers_.empty());
  KDD_CHECK(opts.workers >= 1);
  KDD_CHECK(opts.shard_queue_depth >= 1);
  KDD_CHECK(opts.high_watermark > opts.low_watermark);
  KDD_CHECK(opts.low_watermark >= 1);
  aopts_ = opts;
  engine_workers_.reserve(opts.workers);
  for (std::uint32_t w = 0; w < opts.workers; ++w) {
    engine_workers_.emplace_back([this, w] { engine_main(w); });
  }
}

bool ConcurrentCache::submit_request(AsyncRequest&& rq, bool block) {
  KDD_CHECK(!engine_workers_.empty());
  const std::size_t s = stripe_of(rq.lba);
  std::unique_lock<std::mutex> lock(amu_);
  bool stalled = false;
  while (true) {
    if (quiesced_ > 0 || engine_stop_) {
      async_rejected_.fetch_add(1, std::memory_order_relaxed);
      engine_metrics().rejected.inc();
      obs::health_admission_reject();
      return false;
    }
    if (!gate_closed_ && async_q_[s].size() < aopts_.shard_queue_depth) break;
    if (!block) {
      async_rejected_.fetch_add(1, std::memory_order_relaxed);
      engine_metrics().rejected.inc();
      obs::health_admission_reject();
      return false;
    }
    stalled = true;
    submit_cv_.wait(lock);
  }
  if (stalled) async_stalls_.fetch_add(1, std::memory_order_relaxed);
  rq.enqueue_ns = now_ticks();
  async_q_[s].push_back(std::move(rq));
  ++async_inflight_;
  if (async_inflight_ >= aopts_.high_watermark) gate_closed_ = true;
  async_submitted_.fetch_add(1, std::memory_order_relaxed);
  engine_metrics().inflight.set(static_cast<std::int64_t>(async_inflight_));
  obs::health_submission();
  obs::health_inflight(static_cast<std::int64_t>(async_inflight_));
  lock.unlock();
  engine_cv_.notify_one();
  return true;
}

bool ConcurrentCache::submit_read(Lba lba, std::span<std::uint8_t> out,
                                  AsyncCompletion cb) {
  AsyncRequest rq;
  rq.lba = lba;
  rq.is_read = true;
  rq.out = out;
  rq.cb = std::move(cb);
  return submit_request(std::move(rq), /*block=*/true);
}

bool ConcurrentCache::submit_write(Lba lba, std::span<const std::uint8_t> data,
                                   AsyncCompletion cb) {
  AsyncRequest rq;
  rq.lba = lba;
  rq.payload.assign(data.begin(), data.end());
  rq.cb = std::move(cb);
  return submit_request(std::move(rq), /*block=*/true);
}

bool ConcurrentCache::try_submit_read(Lba lba, std::span<std::uint8_t> out,
                                      AsyncCompletion cb) {
  AsyncRequest rq;
  rq.lba = lba;
  rq.is_read = true;
  rq.out = out;
  rq.cb = std::move(cb);
  return submit_request(std::move(rq), /*block=*/false);
}

bool ConcurrentCache::try_submit_write(Lba lba,
                                       std::span<const std::uint8_t> data,
                                       AsyncCompletion cb) {
  AsyncRequest rq;
  rq.lba = lba;
  rq.payload.assign(data.begin(), data.end());
  rq.cb = std::move(cb);
  return submit_request(std::move(rq), /*block=*/false);
}

std::size_t ConcurrentCache::claimable_shard(std::size_t home) const {
  for (std::size_t i = 0; i < kStripes; ++i) {
    const std::size_t s = (home + i) % kStripes;
    if (!shard_busy_[s] && !async_q_[s].empty()) return s;
  }
  return kStripes;
}

void ConcurrentCache::engine_main(std::size_t worker) {
  // Home range mirrors the cleaner pool: worker w starts its claim scan at a
  // distinct shard so workers spread instead of piling onto shard 0.
  const std::size_t home =
      (worker * kStripes) / std::max<std::size_t>(std::size_t{1}, aopts_.workers);
  std::unique_lock<std::mutex> lock(amu_);
  std::deque<AsyncRequest> batch;
  while (true) {
    std::size_t shard = kStripes;
    engine_cv_.wait(lock, [&] {
      shard = claimable_shard(home);
      return engine_stop_ || shard != kStripes;
    });
    // Drain-before-exit: on stop, finish whatever is still queued (the
    // destructor quiesces first, so normally nothing is).
    if (shard == kStripes) {
      if (engine_stop_) return;
      continue;
    }
    // Claim the whole shard FIFO: one worker per shard at a time, requests
    // executed in submission order — per-parity-group order stays total.
    shard_busy_[shard] = true;
    batch.swap(async_q_[shard]);
    lock.unlock();

    const auto dequeue_ns = now_ticks();
    for (AsyncRequest& rq : batch) {
      const auto wait_ns =
          static_cast<std::uint64_t>(std::max<std::chrono::steady_clock::rep>(
              0, dequeue_ns - rq.enqueue_ns));
      engine_metrics().queue_wait.observe(wait_ns);
      obs::health_queue_wait(wait_ns);
      const IoStatus st = rq.is_read ? exec_read(rq.lba, rq.out)
                                     : exec_write(rq.lba, rq.payload);
      if (rq.cb) rq.cb(st);
      async_completed_.fetch_add(1, std::memory_order_relaxed);
      obs::health_completion();
      {
        const std::lock_guard<std::mutex> g(amu_);
        --async_inflight_;
        engine_metrics().inflight.set(
            static_cast<std::int64_t>(async_inflight_));
        obs::health_inflight(static_cast<std::int64_t>(async_inflight_));
        if (gate_closed_ && async_inflight_ <= aopts_.low_watermark) {
          gate_closed_ = false;
          submit_cv_.notify_all();
        }
        if (async_inflight_ == 0) async_drain_cv_.notify_all();
      }
    }
    batch.clear();

    lock.lock();
    shard_busy_[shard] = false;
    // The shard may have refilled while busy; whoever is idle picks it up.
    // Submitters blocked on this shard's depth bound see the space we freed.
    if (!async_q_[shard].empty()) engine_cv_.notify_one();
    submit_cv_.notify_all();
  }
}

void ConcurrentCache::drain_async() {
  std::unique_lock<std::mutex> lock(amu_);
  async_drain_cv_.wait(lock, [this] { return async_inflight_ == 0; });
}

void ConcurrentCache::quiesce_submissions() {
  std::unique_lock<std::mutex> lock(amu_);
  ++quiesced_;
  // Blocked submitters must observe the quiesce and return false — they hold
  // client buffers whose completions would otherwise never fire.
  submit_cv_.notify_all();
  async_drain_cv_.wait(lock, [this] { return async_inflight_ == 0; });
}

void ConcurrentCache::resume_submissions() {
  {
    const std::lock_guard<std::mutex> lock(amu_);
    KDD_CHECK(quiesced_ > 0);
    --quiesced_;
  }
  submit_cv_.notify_all();
}

AsyncEngineStats ConcurrentCache::async_stats() const {
  AsyncEngineStats s;
  s.submitted = async_submitted_.load(std::memory_order_relaxed);
  s.completed = async_completed_.load(std::memory_order_relaxed);
  s.rejected = async_rejected_.load(std::memory_order_relaxed);
  s.stalls = async_stalls_.load(std::memory_order_relaxed);
  s.inflight = s.submitted - s.completed;
  return s;
}

bool ConcurrentCache::handle_disk_failure_online(std::uint32_t disk) {
  auto* kdd = dynamic_cast<KddCache*>(policy_);
  KDD_CHECK(kdd != nullptr);
  // Quiesce discipline: no request may be in flight when the disk drops —
  // the rebuild engine's stripe barrier assumes it sees a settled dirty-group
  // map, and a half-executed request completing mid-barrier would race it.
  // Sync front-door requests are unaffected (they serialise on mu_ below).
  quiesce_submissions();
  bool started;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // The quiesce barrier also covers the staging segment: with submissions
    // parked, seal whatever is open so the rebuild engine's stripe windows
    // start from an SSD that holds every committed page.
    kdd->force_seal(nullptr);
    started = kdd->handle_disk_failure_online(disk);
  }
  resume_submissions();
  return started;
}

// ---------------------------------------------------------------------------
// Cleaner pool
// ---------------------------------------------------------------------------

void ConcurrentCache::refill_pool_locked(bool force) {
  if (refill_pause_.load(std::memory_order_acquire) > 0) return;
  if (!force && !destage_->destage_pending()) return;
  {
    // Bounded in-flight: keep roughly one job per worker outstanding. The
    // claim below adds at most kStripes jobs, so total claims stay bounded
    // by (hint * workers) groups per wave.
    const std::lock_guard<std::mutex> qlock(queue_mu_);
    if (queued_jobs_ + inflight_jobs_ >= pool_size_) return;
  }
  const std::size_t target = destage_->destage_batch_hint() * pool_size_;
  const std::vector<GroupId> groups = destage_->destage_claim(target);
  if (groups.empty()) return;
  // Partition the disk-layout-ordered claim into per-stripe jobs; order
  // within a job is preserved, so each worker still walks its parity pages
  // in layout order.
  std::array<std::vector<GroupId>, kStripes> per_stripe;
  for (const GroupId g : groups) {
    per_stripe[stripe_of_group(g)].push_back(g);
  }
  {
    const std::lock_guard<std::mutex> qlock(queue_mu_);
    for (std::size_t s = 0; s < kStripes; ++s) {
      if (per_stripe[s].empty()) continue;
      queues_[s].push_back(DestageJob{s, std::move(per_stripe[s])});
      ++queued_jobs_;
    }
  }
  queue_cv_.notify_all();
}

void ConcurrentCache::run_destage_job(const DestageJob& job) {
  // Background root: the pipeline's stage spans sample at the request period
  // and attribute to a kClean root, exactly like the inline cleaner.
  const obs::TraceContextScope trace(obs::Stage::kClean);
  // The stripe lock freezes foreground requests to the claimed groups across
  // all three stages (see kdd/destage.hpp).
  const std::lock_guard<std::mutex> stripe(stripe_mu_[job.stripe]);
  std::unique_ptr<DestageUnit> unit;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    unit = destage_->destage_prepare(job.groups, nullptr);
  }
  if (unit == nullptr) return;  // nothing left; claims already released
  unit->fold();  // stage 2: no policy lock — this is the parallel section
  {
    const std::lock_guard<std::mutex> lock(mu_);
    destage_->destage_commit(*unit, nullptr);
  }
  pool_batches_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentCache::pool_main(std::size_t worker) {
  // Home range: worker w prefers stripes [w*K/N, (w+1)*K/N) and steals from
  // the rest only when its own range is empty.
  const std::size_t home = (worker * kStripes) / pool_size_;
  std::unique_lock<std::mutex> qlock(queue_mu_);
  while (true) {
    queue_cv_.wait(qlock, [this] { return pool_stop_ || queued_jobs_ > 0; });
    if (pool_stop_) return;  // leftover jobs are abandoned by the destructor
    DestageJob job;
    bool found = false;
    for (std::size_t i = 0; i < kStripes; ++i) {
      const std::size_t s = (home + i) % kStripes;
      if (queues_[s].empty()) continue;
      job = std::move(queues_[s].front());
      queues_[s].pop_front();
      found = true;
      break;
    }
    if (!found) continue;  // raced with another worker; wait again
    --queued_jobs_;
    ++inflight_jobs_;
    qlock.unlock();
    run_destage_job(job);
    qlock.lock();
    --inflight_jobs_;
    if (queued_jobs_ == 0 && inflight_jobs_ == 0) drain_cv_.notify_all();
  }
}

void ConcurrentCache::cleaner_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, idle_wakeup_);
    if (stop_) break;
    // The idle clock is an atomic outside mu_, so a request that is blocked
    // on mu_ right now has already stamped it and defers this pass.
    const auto last = std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            last_request_ns_.load(std::memory_order_relaxed)));
    const auto idle_for = std::chrono::steady_clock::now() - last;
    const bool idle = idle_for >= idle_wakeup_;
    if (destage_ != nullptr && pool_size_ > 0) {
      // Pool mode: this thread is the feeder. Refill on every wake-up —
      // destage has to keep pace with the foreground load, not wait for
      // idleness — and when the system *is* idle, force a full drain wave
      // (the paper's idle-triggered cleaning) through the pool instead of
      // running the policy's inline pass.
      refill_pool_locked(/*force=*/idle);
      if (idle) {
        cleaner_passes_.fetch_add(1);
        publish_snapshot_locked();
      }
      continue;
    }
    if (idle) {
      policy_->on_idle(nullptr);
      cleaner_passes_.fetch_add(1);
      publish_snapshot_locked();  // refresh the lock-free stats snapshot
    }
  }
}

}  // namespace kdd
