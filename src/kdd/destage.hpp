// Destage-engine seam between a cache policy and the parallel cleaner pool.
//
// KDD's deferred parity work (Section III-D) is a three-stage pipeline:
//
//   1. prepare  — snapshot the dirty groups' delta sources (NVRAM staged
//                 blobs, DEZ-resident packed deltas) into a self-contained
//                 work unit. Touches policy state: runs under the policy
//                 lock.
//   2. fold     — decompress every delta and accumulate the raw per-member
//                 XOR diffs. Pure compute over the snapshot: runs with NO
//                 policy lock, which is exactly what the cleaner pool
//                 parallelises across workers.
//   3. commit   — fold the accumulated diffs into the stale parity with one
//                 batched RMW (one parity read + one XOR-accumulate + one
//                 parity write per group) and reclaim the old/DEZ pages.
//                 Touches policy + RAID state: runs under the policy lock.
//
// The pool claims groups (destage_claim) before queueing them so that the
// policy's own inline/idle cleaning passes skip in-flight groups; commit or
// abandon releases the claim. Between prepare and commit the caller must
// hold whatever lock serialises foreground requests to the claimed groups
// (ConcurrentCache holds the group's striped front lock across all three
// stages); commit revalidates every page against live slot state anyway, so
// pages resolved behind the pipeline's back (e.g. the emergency synchronous
// fold in commit_staging) are skipped, never double-applied.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "raid/io_plan.hpp"
#include "raid/layout.hpp"

namespace kdd {

/// Opaque, self-contained destage work unit produced by destage_prepare.
/// fold() is thread-safe with respect to the producing policy: it touches
/// only the snapshot captured at prepare time.
class DestageUnit {
 public:
  virtual ~DestageUnit() = default;

  /// Stage 2: decompress + XOR-fold every captured delta. Requires no lock.
  virtual void fold() = 0;

  /// Parity groups covered by this unit (claimed until commit/abandon).
  virtual std::span<const GroupId> groups() const = 0;
};

/// Implemented by policies (KDD) whose background cleaning the
/// ConcurrentCache cleaner pool can drive. All methods except
/// DestageUnit::fold must be called under the policy lock.
class DestageSource {
 public:
  virtual ~DestageSource() = default;

  /// Claims up to `max_groups` dirty, unclaimed parity groups and returns
  /// them in disk-layout order (parity disk, then parity page): a batch
  /// destaged in this order walks each spindle sequentially. Claimed groups
  /// are skipped by the policy's own cleaning passes until released.
  virtual std::vector<GroupId> destage_claim(std::size_t max_groups) = 0;

  /// Stage 1: snapshots the delta sources of `groups` (all must be claimed).
  /// Returns null when none of the groups has pending work any more (their
  /// claims are released). Groups whose deltas cannot be loaded are marked
  /// for healing inside the unit; commit performs the heal.
  virtual std::unique_ptr<DestageUnit> destage_prepare(
      std::span<const GroupId> groups, IoPlan* plan) = 0;

  /// Stage 3: batched parity RMW + reclaim + claim release for every group
  /// in the unit. Revalidates each captured page against live slot state.
  virtual void destage_commit(DestageUnit& unit, IoPlan* plan) = 0;

  /// Releases claims without destaging (pool shutdown, prepare skipped).
  virtual void destage_abandon(std::span<const GroupId> groups) = 0;

  /// True when deferred work exceeds the cleaning high watermark — the
  /// pool's wake-up signal.
  virtual bool destage_pending() const = 0;

  /// Preferred groups-per-batch (the policy's watermark-gap autosize). A
  /// pool claims about hint * workers groups per refill.
  virtual std::size_t destage_batch_hint() const { return 8; }

  /// Routes the policy's watermark cleaning to an external driver: inline
  /// maybe_clean passes become no-ops and the pool owns destage entirely.
  virtual void set_external_cleaner(bool external) = 0;
};

}  // namespace kdd
